package faults

import (
	"bladerunner/internal/metrics"
	"bladerunner/internal/region"
	"bladerunner/internal/sim"
)

// RegionFaults injects region-scoped failures: a whole datacenter region
// going dark, an inter-region link partitioning (and healing), and
// brownouts (latency inflation without loss). Each fault is ONE event —
// the topology flips first (so routers and the dial gate refuse the dead
// paths), then every established connection crossing the failure boundary
// is severed atomically via the grouped cut primitives, closing the
// half-cut window a per-target loop would leave.
//
// The import direction is deliberate: faults drives region, never the
// reverse — the region plane stays usable without the fault machinery.
type RegionFaults struct {
	// Net is the fault plane carrying the cluster's dialable targets.
	Net *FaultNetwork
	// Gate severs cross-region connections and refuses cross-region dials.
	Gate *region.Gate
	// Topo is the authoritative up/down + latency state.
	Topo *region.Topology

	// RegionCuts counts CutRegion calls; Partitions counts PartitionLink
	// calls; Brownouts counts SetBrownout activations.
	RegionCuts metrics.Counter
	Partitions metrics.Counter
	Brownouts  metrics.Counter
}

// NewRegionFaults wires the region fault plane.
func NewRegionFaults(net *FaultNetwork, gate *region.Gate, topo *region.Topology) *RegionFaults {
	return &RegionFaults{Net: net, Gate: gate, Topo: topo}
}

// CutRegion takes region r entirely down: the topology marks it dead
// (routers stop offering it, the replication plane parks its links), every
// cross-region connection touching it is severed, and every dialable
// target homed in it goes hard down as one atomic group cut.
func (rf *RegionFaults) CutRegion(r string) {
	rf.RegionCuts.Inc()
	rf.Topo.SetRegionDown(r, true)
	rf.Gate.SeverRegion(r)
	if targets := rf.Gate.TargetsIn(r); len(targets) > 0 {
		rf.Net.CutGroup(targets...)
	}
}

// HealRegion brings region r back: targets become dialable again (as one
// group event) and the topology reopens its links, releasing any parked
// replication backlog. Severed streams stay dead — recovery is the
// client's resubscribe, exactly as with host-level Cut/Heal.
func (rf *RegionFaults) HealRegion(r string) {
	if targets := rf.Gate.TargetsIn(r); len(targets) > 0 {
		rf.Net.HealGroup(targets...)
	}
	rf.Topo.SetRegionDown(r, false)
}

// PartitionLink partitions the region pair a↔b in both directions: new
// cross-region dials between them fail, established connections die, and
// event replication parks until HealLink. Both regions stay up — each
// keeps serving its own devices from its own Pylon.
func (rf *RegionFaults) PartitionLink(a, b string) {
	rf.Partitions.Inc()
	rf.Topo.SetLinkDown(a, b, true)
	rf.Topo.SetLinkDown(b, a, true)
	rf.Gate.SeverLink(a, b)
	rf.Gate.SeverLink(b, a)
}

// PartitionOneWay partitions only the a→b direction — the asymmetric
// partition where b's traffic toward a still flows.
func (rf *RegionFaults) PartitionOneWay(a, b string) {
	rf.Partitions.Inc()
	rf.Topo.SetLinkDown(a, b, true)
	rf.Gate.SeverLink(a, b)
}

// HealLink heals the a↔b partition in both directions; parked replication
// backlog drains in order, converging the two regions' views.
func (rf *RegionFaults) HealLink(a, b string) {
	rf.Topo.SetLinkDown(a, b, false)
	rf.Topo.SetLinkDown(b, a, false)
}

// Brownout inflates the a→b link by an extra sampled duration per
// operation — slow but not dead. Pass the reverse call for a symmetric
// brownout. ClearBrownout removes it.
func (rf *RegionFaults) Brownout(a, b string, extra sim.Dist) {
	rf.Brownouts.Inc()
	rf.Topo.SetBrownout(a, b, extra)
}

// ClearBrownout removes the a→b brownout.
func (rf *RegionFaults) ClearBrownout(a, b string) {
	rf.Topo.SetBrownout(a, b, nil)
}
