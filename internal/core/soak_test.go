package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/device"
	"bladerunner/internal/socialgraph"
)

// TestMixedWorkloadSoak drives every application through the full
// deployment concurrently — the "over 100 applications onboarded" reality
// in miniature — and checks the system-wide invariants: no lost Pylon
// accounting, decisions >= deliveries, every app delivered something, and
// the cluster tears down cleanly.
func TestMixedWorkloadSoak(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Graph.Users = 300
	cfg.Graph.MeanFriends = 15
	cfg.Graph.BlockProb = 0
	c, err := NewCluster(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	c.Apps.LVC.RateLimit = 10 * time.Millisecond
	c.Apps.LVC.RankBeforePublish = false
	c.Apps.LVC.MinScore = 0
	c.Apps.ActiveStatus.BatchInterval = 20 * time.Millisecond
	c.Apps.Reactions.FlushInterval = 20 * time.Millisecond

	// One viewer device per application, plus a messenger thread.
	type sub struct {
		app  string
		expr string
		dev  *device.Device
		st   *device.Stream
	}
	alice := c.NewDevice(101)
	defer alice.Close()
	out, err := alice.Mutate(`createThread(members: "101,1")`)
	if err != nil {
		t.Fatal(err)
	}
	var tid uint64
	_ = json.Unmarshal(out, &tid)

	viewer, friend := friendPairCore(t, c.Graph)
	subs := []*sub{
		{app: apps.AppLiveComments, expr: "liveVideoComments(videoID: 7)"},
		{app: apps.AppFeedComments, expr: "feedPostComments(postID: 9)"},
		{app: apps.AppTyping, expr: "typingIndicator(threadID: 4, peer: 44)"},
		{app: apps.AppActiveStatus, expr: "activeStatus"},
		{app: apps.AppStories, expr: "storiesTray"},
		{app: apps.AppMessenger, expr: "messenger"},
		{app: apps.AppReactions, expr: "liveVideoReactions(videoID: 7)"},
		{app: apps.AppNotifications, expr: "websiteNotifications"},
	}
	received := make(map[string]*atomic.Int64)
	for _, s := range subs {
		user := socialgraph.UserID(1)
		if s.app == apps.AppActiveStatus || s.app == apps.AppStories {
			user = viewer // needs friends
		}
		s.dev = c.NewDevice(user)
		defer s.dev.Close()
		if err := s.dev.Connect(); err != nil {
			t.Fatal(err)
		}
		st, err := s.dev.Subscribe(s.app, s.expr, nil)
		if err != nil {
			t.Fatalf("%s: %v", s.app, err)
		}
		s.st = st
		ctr := &atomic.Int64{}
		received[s.app] = ctr
		go func(app string, st *device.Stream, ctr *atomic.Int64) {
			for range st.Updates {
				ctr.Add(1)
			}
		}(s.app, st, ctr)
	}

	// Wait until every app's serving host registered its topics.
	waitFor(t, "all subscriptions live", func() bool {
		var live int64
		for _, h := range c.Hosts {
			live += h.StreamsOpened.Value() - h.StreamsClosed.Value()
		}
		return live == int64(len(subs))
	})
	// ActiveStatus/Stories fan out one topic per friend; make sure the
	// friend topics exist before driving load.
	waitFor(t, "friend topics", func() bool {
		return len(c.Pylon.Subscribers(apps.StatusTopic(friend))) >= 1 &&
			len(c.Pylon.Subscribers(apps.StoriesTopic(uint64(friend)))) >= 1
	})

	// Drive 2 rounds x concurrent mutators across all apps.
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(99))
	mutate := func(user socialgraph.UserID, expr string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := c.NewDevice(user)
			defer d.Close()
			if _, err := d.Mutate(expr); err != nil {
				t.Errorf("%s: %v", expr, err)
			}
		}()
	}
	for round := 0; round < 2; round++ {
		for i := 0; i < 5; i++ {
			author := socialgraph.UserID(150 + rng.Intn(100))
			mutate(author, fmt.Sprintf(`postComment(videoID: 7, text: "soak c%d-%d")`, round, i))
			mutate(author, fmt.Sprintf(`postFeedComment(postID: 9, text: "soak f%d-%d")`, round, i))
			mutate(author, fmt.Sprintf(`reactToVideo(videoID: 7, kind: "like")`))
		}
		mutate(44, `setTyping(threadID: 4, on: "true")`)
		mutate(friend, "reportActive")
		mutate(friend, fmt.Sprintf(`postStory(content: "soak story %d")`, round))
		mutate(101, fmt.Sprintf(`sendMessage(threadID: %d, text: "soak m%d")`, tid, round))
		mutate(102, `notify(user: 1, kind: "mention", text: "soak")`)
		wg.Wait()
		time.Sleep(50 * time.Millisecond)
	}
	// Let timers (rate limits, batch flushes) drain.
	time.Sleep(300 * time.Millisecond)
	c.Quiesce()

	// Every application delivered at least one update to its viewer.
	for app, ctr := range received {
		if ctr.Load() == 0 {
			t.Errorf("app %s delivered nothing", app)
		}
	}
	// System invariants.
	if c.TotalDeliveries() > c.TotalDecisions() {
		t.Errorf("deliveries %d > decisions %d", c.TotalDeliveries(), c.TotalDecisions())
	}
	if c.Pylon.Publishes.Value() == 0 || c.Pylon.Deliveries.Value() == 0 {
		t.Error("pylon accounting empty")
	}
	if c.WAS.PrivacyChecks.Value() == 0 {
		t.Error("no privacy checks ran")
	}
	// TAO point reads dominate (payload fetches), with zero poll-style
	// range reads from the streaming path beyond app-internal queries.
	if c.TAO.Stats().PointQueries.Value() == 0 {
		t.Error("no TAO point queries")
	}
}

func friendPairCore(t *testing.T, g *socialgraph.Graph) (socialgraph.UserID, socialgraph.UserID) {
	t.Helper()
	for id := socialgraph.UserID(1); id <= socialgraph.UserID(g.NumUsers()); id++ {
		if fs := g.Friends(id); len(fs) > 0 {
			return id, fs[0]
		}
	}
	t.Fatal("no friends in graph")
	return 0, 0
}
