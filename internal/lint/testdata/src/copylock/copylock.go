// Package copylock is a brlint fixture for the mutex-by-value rule: values
// whose type (transitively) contains a sync lock or sync/atomic value must
// not be copied — by receiver, parameter, result, assignment, composite
// literal, call argument, return, or range value. Pointers and fresh
// zero-value construction pass.
package copylock

import (
	"sync"
	"sync/atomic"
)

type Guarded struct {
	mu sync.Mutex
	n  int
}

// Nested embeds a lock two levels down; containment is transitive.
type Nested struct {
	inner Guarded
}

type Counter struct {
	hits atomic.Int64
}

func ByValueParam(g Guarded) int { // want `mutex-by-value: parameter passes a value containing sync.Mutex by value`
	return g.n
}

func (g Guarded) ValueReceiver() int { // want `mutex-by-value: method receiver passes a value containing sync.Mutex by value`
	return g.n
}

func ByValueNested(n Nested) int { // want `mutex-by-value: parameter passes a value containing sync.Mutex by value`
	return n.inner.n
}

func AtomicParam(c Counter) int64 { // want `mutex-by-value: parameter passes a value containing atomic.Int64 by value`
	return c.hits.Load()
}

func CopyAssign(g *Guarded) int {
	cp := *g // want `mutex-by-value: assignment copies a value containing sync.Mutex`
	return cp.n
}

func CopyInLiteral(g *Guarded) int {
	all := []Guarded{*g} // want `mutex-by-value: composite literal copies a value containing sync.Mutex`
	return all[0].n
}

func (g *Guarded) Snapshot() Guarded { // want `mutex-by-value: result passes a value containing sync.Mutex by value`
	return *g // want `mutex-by-value: return copies a value containing sync.Mutex`
}

func RangeCopies(list []Guarded) int {
	total := 0
	for _, g := range list { // want `mutex-by-value: range value copies a value containing sync.Mutex`
		total += g.n
	}
	return total
}

// PointerFine: pointers to lock-containing values move freely.
func PointerFine(g *Guarded) *Guarded {
	return g
}

// FreshValueFine: constructing a zero value with a literal is not a copy of
// an existing (possibly locked) value.
func FreshValueFine() *Guarded {
	fresh := Guarded{n: 1}
	return &fresh
}

// RangeByIndexFine: ranging over indices avoids the element copy.
func RangeByIndexFine(list []Guarded) int {
	total := 0
	for i := range list {
		total += list[i].n
	}
	return total
}

// Allowed demonstrates the escape hatch on the line above a declaration.
//
//brlint:allow(mutex-by-value) fixture: value is copied before its lock is ever used
func Allowed(g Guarded) int {
	return g.n
}
