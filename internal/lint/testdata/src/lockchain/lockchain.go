// Package lockchain is a brlint fixture for the interprocedural half of
// the no-lock-across-block rule: a critical section that calls a helper
// which blocks — directly or further down the call chain, including
// through a module interface — is reported at the call site with the chain
// down to the blocking operation. Helpers that only do non-blocking work
// (select with default), calls made after unlocking, and goroutine spawns
// must pass.
package lockchain

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// wait blocks: the receive is the chain's terminal fact.
func (b *box) wait() {
	<-b.ch
}

// waitDeep blocks two hops down.
func (b *box) waitDeep() {
	b.wait()
}

// poke never blocks: select with default.
func (b *box) poke() {
	select {
	case b.ch <- 1:
		b.n++
	default:
		b.n--
	}
}

func (b *box) DirectChain() {
	b.mu.Lock()
	b.wait() // want `no-lock-across-block: call to \(\*lint/testdata/src/lockchain.box\).wait, which blocks: channel receive at lockchain.go:\d+ while holding b.mu`
	b.mu.Unlock()
}

func (b *box) DeepChain() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.waitDeep() // want `no-lock-across-block: call to \(\*lint/testdata/src/lockchain.box\).waitDeep, which blocks: call to \(\*lint/testdata/src/lockchain.box\).wait, which blocks: channel receive at lockchain.go:\d+ at lockchain.go:\d+ while holding b.mu`
}

// waiter resolves to *box through the module method-set index: interface
// dispatch under a lock checks every implementation.
type waiter interface{ wait() }

func (b *box) IfaceChain(w waiter) {
	b.mu.Lock()
	defer b.mu.Unlock()
	w.wait() // want `no-lock-across-block: call to \(\*lint/testdata/src/lockchain.box\).wait, which blocks: channel receive at lockchain.go:\d+ while holding b.mu`
}

// NonBlockingHelper: the helper's select has a default, its summary is
// clean.
func (b *box) NonBlockingHelper() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.poke()
}

// AfterUnlock: the blocking call runs outside the critical section.
func (b *box) AfterUnlock() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.wait()
}

// Spawned: `go` hands the blocking call to another goroutine; the lock
// holder does not block.
func (b *box) Spawned() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go b.wait()
}

// Allowed demonstrates the audited escape hatch.
func (b *box) Allowed() {
	b.mu.Lock()
	//brlint:allow(no-lock-across-block) fixture: the channel is buffered and its producer never takes b.mu, so the receive cannot deadlock
	b.wait()
	b.mu.Unlock()
}
