package experiments

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/burst"
	"bladerunner/internal/core"
	"bladerunner/internal/device"
	"bladerunner/internal/faults"
	"bladerunner/internal/metrics"
	"bladerunner/internal/region"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
)

// GeoFailover measures the multi-region plane's disaster path on the live
// stack: a fleet of messenger streams homed in one region loses that whole
// region, and each stream must be rewritten onto a healthy one (§4's
// repair-from-stored-request axiom crossing the region boundary). Reported:
//
//   - per-stream failover time — region cut until the first payload
//     authored AFTER the cut renders on the device — as a CDF, and
//   - the cross-region replication lag distribution the event plane
//     sustained while streams were being served remotely, as a CDF.
//
// The run is live (real TAO/Pylon/WAS/BRASS/BURST over in-process pipes
// with sampled inter-region latency), so the failover times measure the
// actual recovery machinery — device backoff, POP rotation, sticky-BRASS
// rewrite, messenger catch-up — not a model of it.
func GeoFailover(seed int64) Result {
	return GeoFailoverOn(sim.RealClock{}, seed)
}

// GeoFailoverOn runs the geo-failover measurement against an explicit
// Scheduler; every wait and timestamp goes through sched.
func GeoFailoverOn(sched sim.Scheduler, seed int64) Result {
	const (
		receivers = 12
		victim    = "eu-west"
		tick      = 2 * time.Millisecond
		deadline  = 15 * time.Second
	)

	cfg := core.DefaultConfig()
	cfg.Regions = []string{"us-east", "eu-west", "ap-south"}
	cfg.POPs = 3
	cfg.Graph.Users = 100
	cfg.Graph.BlockProb = 0
	cfg.Geo = &region.Config{
		DefaultLatency: sim.Uniform{Lo: 100 * time.Microsecond, Hi: 500 * time.Microsecond},
		DefaultReplLag: sim.Uniform{Lo: 1 * time.Millisecond, Hi: 4 * time.Millisecond},
		Seed:           seed,
	}
	c := core.MustNewCluster(cfg, nil)
	defer c.Close()
	fn := faults.NewFaultNetwork(c.Net, nil, seed)
	rf := faults.NewRegionFaults(fn, c.Gate, c.Topo)

	// Author homed in the primary region; receivers homed in the victim.
	author := c.NewDevice(socialgraph.UserID(90))
	defer author.Close()

	type recvState struct {
		dev    *device.Device
		st     *device.Stream
		thread uint64
		// maxSeq is the largest mailbox seq rendered; recoveredAt is set
		// when the first post-cut payload (seq >= 2) lands.
		mu          sync.Mutex
		maxSeq      uint64
		recoveredAt time.Duration
	}
	var cutAt time.Time // set (before the region cut) before watchers read it
	states := make([]*recvState, receivers)
	var wg sync.WaitGroup
	for i := range states {
		uid := socialgraph.UserID(3*i + 1) // uid%3 == 1 → homed eu-west
		d := c.NewDeviceVia(fn, device.Config{
			User:        uid,
			Backoff:     faults.BackoffPolicy{Base: 10 * time.Millisecond, Max: 160 * time.Millisecond},
			BackoffSeed: seed*1000 + int64(uid),
		})
		if err := d.Connect(); err != nil {
			panic(err)
		}
		st, err := d.Subscribe(apps.AppMessenger, "messenger", nil)
		if err != nil {
			panic(err)
		}
		out, err := author.Mutate(fmt.Sprintf(`createThread(members: "90,%d")`, uid))
		if err != nil {
			panic(err)
		}
		s := &recvState{dev: d, st: st}
		_ = json.Unmarshal(out, &s.thread)
		states[i] = s
		wg.Add(2)
		go func() {
			defer wg.Done()
			for delta := range st.Updates {
				var m apps.MessagePayload
				_ = json.Unmarshal(delta.Payload, &m)
				s.mu.Lock()
				if m.Seq > s.maxSeq {
					s.maxSeq = m.Seq
				}
				if m.Seq >= 2 && s.recoveredAt == 0 {
					s.recoveredAt = sched.Now().Sub(cutAt)
				}
				s.mu.Unlock()
			}
		}()
		go func() {
			defer wg.Done()
			for range st.Flow {
			}
		}()
	}
	defer func() {
		for _, s := range states {
			s.dev.Close()
		}
		wg.Wait()
	}()

	servedFrom := func(s *recvState) string {
		return c.Gate.RegionOf(s.st.Request().Header[burst.HdrStickyBRASS])
	}
	waitUntil := func(cond func() bool) bool {
		limit := sched.Now().Add(deadline)
		for sched.Now().Before(limit) {
			if cond() {
				return true
			}
			sim.Sleep(sched, time.Millisecond)
		}
		return false
	}

	// Settle: every stream served from its home region, baseline message
	// (seq 1 per thread) delivered end-to-end.
	waitUntil(func() bool {
		for _, s := range states {
			if servedFrom(s) != victim {
				return false
			}
		}
		return true
	})
	for _, s := range states {
		if _, err := author.Mutate(fmt.Sprintf(
			`sendMessage(threadID: %d, text: "baseline")`, s.thread)); err != nil {
			panic(err)
		}
	}
	waitUntil(func() bool {
		for _, s := range states {
			s.mu.Lock()
			ok := s.maxSeq >= 1
			s.mu.Unlock()
			if !ok {
				return false
			}
		}
		return true
	})

	// Cut the victim region and keep authoring: each stream's failover
	// time is the gap until a post-cut payload renders on the device.
	cutAt = sched.Now()
	rf.CutRegion(victim)
	senderDone := make(chan struct{})
	var senderWG sync.WaitGroup
	senderWG.Add(1)
	go func() {
		defer senderWG.Done()
		for n := 0; ; n++ {
			select {
			case <-senderDone:
				return
			case <-sim.Timeout(sched, tick):
			}
			for _, s := range states {
				s.mu.Lock()
				pending := s.recoveredAt == 0
				s.mu.Unlock()
				if pending {
					_, _ = author.Mutate(fmt.Sprintf(
						`sendMessage(threadID: %d, text: "tick-%d")`, s.thread, n))
				}
			}
		}
	}()
	allOver := waitUntil(func() bool {
		for _, s := range states {
			s.mu.Lock()
			ok := s.recoveredAt != 0
			s.mu.Unlock()
			if !ok {
				return false
			}
		}
		return true
	})
	close(senderDone)
	senderWG.Wait()

	failover := metrics.NewHistogram()
	recovered := 0
	remoteServed := 0
	for _, s := range states {
		s.mu.Lock()
		if s.recoveredAt != 0 {
			recovered++
			failover.Observe(s.recoveredAt)
		}
		s.mu.Unlock()
		if r := servedFrom(s); r != "" && r != victim {
			remoteServed++
		}
	}
	// Snapshot replication lag BEFORE healing: post-heal backlog drains
	// carry partition-length waits that belong to the heal story, not the
	// steady cross-region lag distribution.
	replCDF := c.Plane.ReplLag.CDF(40)
	replP50 := c.Plane.ReplLag.Percentile(50)
	replP99 := c.Plane.ReplLag.Percentile(99)
	replDelivered := c.Plane.ReplDelivered.Value()

	rf.HealRegion(victim)
	healed := c.Plane.FlushWait(deadline)

	r := Result{ID: "geofailover", Title: fmt.Sprintf(
		"Geo-failover: %d streams lose region %s (live stack, 3 regions)", receivers, victim)}
	r.AddRow("streams failed over", "all (no session restart)",
		fmt.Sprintf("%d/%d", recovered, receivers),
		"post-cut payload rendered via a rewritten cross-region stream")
	r.AddRow("streams served cross-region after cut", "-",
		fmt.Sprintf("%d/%d", remoteServed, receivers), "sticky BRASS rewritten to a healthy region")
	if failover.Count() > 0 {
		r.AddRow("failover time p50", "-", failover.Percentile(50).Round(time.Millisecond).String(),
			"region cut → first post-cut payload on device")
		r.AddRow("failover time p95", "-", failover.Percentile(95).Round(time.Millisecond).String(), "")
		r.AddRow("failover time max", "-", failover.Max().Round(time.Millisecond).String(),
			"bounded by device backoff cap + catch-up")
	}
	r.AddRow("cross-region repl lag p50 / p99", "-",
		fmt.Sprintf("%v / %v", replP50.Round(100*time.Microsecond), replP99.Round(100*time.Microsecond)),
		fmt.Sprintf("%d events replicated during the outage (pre-heal)", replDelivered))
	r.AddRow("partition backlog drained after heal", "gap-free convergence",
		fmt.Sprintf("%v", healed), "Plane.FlushWait after HealRegion")
	if !allOver {
		r.AddRow("WARNING", "-", "not all streams failed over before the deadline", "")
	}

	fo := make([]SeriesPoint, 0, 40)
	for _, p := range failover.CDF(40) {
		fo = append(fo, SeriesPoint{X: p.Value.Seconds(), Y: p.Fraction})
	}
	r.AddSeries("failover_time_cdf", fo)
	rl := make([]SeriesPoint, 0, len(replCDF))
	for _, p := range replCDF {
		rl = append(rl, SeriesPoint{X: p.Value.Seconds(), Y: p.Fraction})
	}
	r.AddSeries("repl_lag_cdf", rl)
	return r
}
