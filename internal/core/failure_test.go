package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/burst"
	"bladerunner/internal/device"
	"bladerunner/internal/pylon"
	"bladerunner/internal/socialgraph"
)

// Failure-injection tests: the paper's §4 failure axioms exercised on the
// full wired deployment.

// TestPylonQuorumLossBlocksNewSubscriptions kills enough KV replicas to
// break the subscription quorum for a topic: new subscriptions must fail
// (CP), while event delivery for already-subscribed topics continues until
// all replicas are gone (AP).
func TestPylonQuorumLossBlocksNewSubscriptions(t *testing.T) {
	c := newCluster(t)
	// Subscribe one stream successfully first.
	viewer := c.NewDevice(5)
	defer viewer.Close()
	if err := viewer.Connect(); err != nil {
		t.Fatal(err)
	}
	st, err := viewer.Subscribe(apps.AppFeedComments, "feedPostComments(postID: 42)", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = st
	topic := apps.PostTopic(42)
	waitFor(t, "subscription", func() bool { return len(c.Pylon.Subscribers(topic)) >= 1 })

	// Break the quorum for a *different* topic's replicas.
	victim := apps.PostTopic(43)
	replicas := c.KV.ReplicasFor(string(victim))
	replicas[0].SetUp(false)
	replicas[1].SetUp(false)
	if c.KV.QuorumAvailable(string(victim)) {
		t.Fatal("quorum still available after killing 2 replicas")
	}
	// A direct Pylon subscribe for the victim topic fails CP-style.
	if err := c.Pylon.Subscribe(victim, c.Hosts[0].ID()); !errors.Is(err, pylon.ErrNoQuorum) {
		t.Errorf("subscribe with broken quorum: %v", err)
	}

	// Delivery on the healthy topic still works (AP for data).
	author := c.NewDevice(6)
	defer author.Close()
	if _, err := author.Mutate(`postFeedComment(postID: 42, text: "still flowing")`); err != nil {
		t.Fatal(err)
	}
	select {
	case <-st.Updates:
	case <-time.After(10 * time.Second):
		t.Fatal("healthy topic delivery stalled during unrelated quorum loss")
	}

	// Replicas recover; the victim topic becomes subscribable again.
	replicas[0].SetUp(true)
	replicas[1].SetUp(true)
	if err := c.Pylon.Subscribe(victim, c.Hosts[0].ID()); err != nil {
		t.Errorf("subscribe after recovery: %v", err)
	}
}

// TestPOPFailureReconnectStorm drops a POP serving several devices; every
// device must reconnect through the alternate POP and its streams must
// keep delivering.
func TestPOPFailureReconnectStorm(t *testing.T) {
	c := newCluster(t)
	const n = 6
	devices := make([]*device.Device, n)
	streams := make([]*device.Stream, n)
	for i := 0; i < n; i++ {
		devices[i] = c.NewDevice(socialgraph.UserID(20 + i))
		defer devices[i].Close()
		if err := devices[i].Connect(); err != nil {
			t.Fatal(err)
		}
		st, err := devices[i].Subscribe(apps.AppFeedComments, "feedPostComments(postID: 88)", nil)
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = st
	}
	waitFor(t, "all initial streams open", func() bool {
		var opened int64
		for _, h := range c.Hosts {
			opened += h.StreamsOpened.Value()
		}
		return opened == n && len(c.Pylon.Subscribers(apps.PostTopic(88))) >= 1
	})

	// Kill pop-0: every device connected through it loses its session.
	c.Net.SetDown("pop-0", true)
	c.POPs[0].Close()

	// All devices reconnect (through pop-1) and resubscribe.
	waitFor(t, "reconnect storm settles", func() bool {
		for _, d := range devices {
			if !d.Connected() {
				return false
			}
		}
		return true
	})

	// Delivery works for every device after the storm. Wait until every
	// stream's serving host (identified by the sticky-routing header its
	// BRASS rewrote) is re-registered with Pylon, then post.
	waitFor(t, "resubscribed", func() bool {
		total := 0
		for _, d := range devices {
			total += d.Streams()
		}
		if total != n {
			return false
		}
		subs := map[string]bool{}
		for _, s := range c.Pylon.Subscribers(apps.PostTopic(88)) {
			subs[s] = true
		}
		for _, st := range streams {
			host := st.Request().Header[burst.HdrStickyBRASS]
			if host == "" || !subs[host] {
				return false
			}
		}
		// And the storm has fully settled server-side: all n original
		// streams closed and all n replacements opened (anything less
		// can transiently balance to n live streams mid-storm).
		var opened, closed int64
		for _, h := range c.Hosts {
			opened += h.StreamsOpened.Value()
			closed += h.StreamsClosed.Value()
		}
		return closed == n && opened == 2*n
	})
	author := c.NewDevice(90)
	defer author.Close()
	if _, err := author.Mutate(`postFeedComment(postID: 88, text: "after the storm")`); err != nil {
		t.Fatal(err)
	}
	for i, st := range streams {
		select {
		case d := <-st.Updates:
			var p apps.CommentPayload
			_ = json.Unmarshal(d.Payload, &p)
			if p.Text != "after the storm" {
				t.Errorf("device %d got %q", i, p.Text)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("device %d never recovered delivery", i)
		}
	}
}

// TestMessengerSurvivesProxyFailure runs the reliable application across a
// mid-path (reverse proxy) failure: the POP repairs the stream to another
// proxy and the mailbox catch-up closes any gap.
func TestMessengerSurvivesProxyFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProxiesPerRegion = 2 // need an alternate proxy in-region
	cfg.Graph.Users = 100
	cfg.Graph.BlockProb = 0
	c, err := NewCluster(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	alice, bob := socialgraph.UserID(1), socialgraph.UserID(2)
	aliceDev := c.NewDevice(alice)
	defer aliceDev.Close()
	out, err := aliceDev.Mutate(`createThread(members: "1,2")`)
	if err != nil {
		t.Fatal(err)
	}
	var tid uint64
	_ = json.Unmarshal(out, &tid)

	bobDev := c.NewDevice(bob)
	defer bobDev.Close()
	if err := bobDev.Connect(); err != nil {
		t.Fatal(err)
	}
	st, err := bobDev.Subscribe(apps.AppMessenger, "messenger", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "mailbox subscription", func() bool {
		return len(c.Pylon.Subscribers(apps.MailboxTopic(bob))) >= 1
	})

	recv := func(what string) apps.MessagePayload {
		t.Helper()
		deadline := time.After(10 * time.Second)
		for {
			select {
			case d := <-st.Updates:
				var m apps.MessagePayload
				_ = json.Unmarshal(d.Payload, &m)
				return m
			case <-deadline:
				t.Fatalf("timed out: %s", what)
			}
		}
	}
	send := func(text string) {
		t.Helper()
		if _, err := aliceDev.Mutate(fmt.Sprintf(`sendMessage(threadID: %d, text: "%s")`, tid, text)); err != nil {
			t.Fatal(err)
		}
	}

	send("one")
	if m := recv("msg one"); m.Seq != 1 {
		t.Fatalf("first message seq = %d", m.Seq)
	}

	// Kill every proxy in one region; POP repairs through the rest.
	c.Net.SetDown("proxy-us-east-0", true)
	c.Proxies[0].Close()

	// Messages sent during/after the failure still arrive, possibly via
	// the mailbox catch-up on the repaired stream. If the resume-token
	// rewrite was in flight when the proxy died, earlier messages may be
	// re-delivered (at-least-once on repair) — the device dedups by
	// sequence number, exactly as the paper prescribes.
	send("two")
	send("three")
	got := map[uint64]string{}
	lastSeq := uint64(1) // device-side dedup cursor
	deadline := time.Now().Add(15 * time.Second)
	for got[3] == "" && time.Now().Before(deadline) {
		select {
		case d := <-st.Updates:
			var m apps.MessagePayload
			_ = json.Unmarshal(d.Payload, &m)
			if m.Seq <= lastSeq {
				continue // duplicate from the repair window
			}
			lastSeq = m.Seq
			got[m.Seq] = m.Text
		case <-time.After(200 * time.Millisecond):
		}
	}
	if got[2] != "two" || got[3] != "three" {
		t.Errorf("post-failure messages = %v", got)
	}
}
