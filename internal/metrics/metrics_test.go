package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Error("empty histogram not zero-valued")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if got, want := h.Mean(), 50500*time.Microsecond; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	p50 := h.Percentile(50)
	if p50 < 49*time.Millisecond || p50 > 52*time.Millisecond {
		t.Errorf("P50 = %v", p50)
	}
	if h.Percentile(0) != time.Millisecond {
		t.Errorf("P0 = %v", h.Percentile(0))
	}
	if h.Percentile(100) != 100*time.Millisecond {
		t.Errorf("P100 = %v", h.Percentile(100))
	}
}

func TestHistogramReservoirDownsamples(t *testing.T) {
	h := NewHistogramSize(100)
	for i := 0; i < 100000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100000 {
		t.Errorf("Count = %d", h.Count())
	}
	// Median of uniform [0,100ms) should be near 50ms even when sampled.
	p50 := h.Percentile(50)
	if p50 < 30*time.Millisecond || p50 > 70*time.Millisecond {
		t.Errorf("sampled P50 = %v, want ~50ms", p50)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", h.Count())
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	cdf := h.CDF(10)
	if len(cdf) != 10 {
		t.Fatalf("CDF len = %d", len(cdf))
	}
	prev := time.Duration(-1)
	for _, p := range cdf {
		if p.Value < prev {
			t.Errorf("CDF not monotone: %v after %v", p.Value, prev)
		}
		prev = p.Value
	}
	if cdf[9].Fraction != 1.0 {
		t.Errorf("last fraction = %v", cdf[9].Fraction)
	}
	if got := cdf[4].Value; got < 450*time.Millisecond || got > 550*time.Millisecond {
		t.Errorf("CDF 50%% value = %v", got)
	}
	if h2 := NewHistogram(); h2.CDF(5) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Second)
	}
	got := h.Buckets([]time.Duration{25 * time.Second, 50 * time.Second, 75 * time.Second})
	want := []int64{25, 25, 25, 25}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Buckets = %v, want %v", got, want)
		}
	}
}

func TestHistogramSnapshotOrdering(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 10000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if !(s.P50 <= s.P75 && s.P75 <= s.P90 && s.P90 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Errorf("percentiles out of order: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

// Property: mean is always between min and max.
func TestHistogramMeanBoundedProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Observe(time.Duration(v))
		}
		m := h.Mean()
		return m >= h.Min() && m <= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d", c.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Errorf("Value = %d", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Value = %d", g.Value())
	}
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("pubs")
	c1.Inc()
	if r.Counter("pubs").Value() != 1 {
		t.Error("Counter not shared by name")
	}
	h1 := r.Histogram("lat")
	h1.Observe(time.Second)
	if r.Histogram("lat").Count() != 1 {
		t.Error("Histogram not shared by name")
	}
	g1 := r.Gauge("streams")
	g1.Set(3)
	if r.Gauge("streams").Value() != 3 {
		t.Error("Gauge not shared by name")
	}
	names := r.CounterNames()
	if len(names) != 1 || names[0] != "pubs" {
		t.Errorf("CounterNames = %v", names)
	}
	hn := r.HistogramNames()
	if len(hn) != 1 || hn[0] != "lat" {
		t.Errorf("HistogramNames = %v", hn)
	}
}

var tsStart = time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(tsStart, 15*time.Minute, 96) // 24h of 15-min buckets
	if ts.Buckets() != 96 || ts.Width() != 15*time.Minute || !ts.Start().Equal(tsStart) {
		t.Fatal("constructor fields wrong")
	}
	ts.Inc(tsStart)                        // bucket 0
	ts.Inc(tsStart.Add(14 * time.Minute))  // bucket 0
	ts.Add(tsStart.Add(16*time.Minute), 5) // bucket 1
	ts.Inc(tsStart.Add(-time.Minute))      // dropped
	ts.Inc(tsStart.Add(24 * time.Hour))    // dropped
	if ts.Sum(0) != 2 || ts.Count(0) != 2 {
		t.Errorf("bucket0 sum=%v count=%v", ts.Sum(0), ts.Count(0))
	}
	if ts.Sum(1) != 5 || ts.Mean(1) != 5 {
		t.Errorf("bucket1 sum=%v mean=%v", ts.Sum(1), ts.Mean(1))
	}
	if ts.Mean(2) != 0 {
		t.Errorf("empty bucket mean = %v", ts.Mean(2))
	}
	if got := ts.RatePerMinute(1); got != 5.0/15.0 {
		t.Errorf("RatePerMinute = %v", got)
	}
	if got := ts.GrandTotal(); got != 7 {
		t.Errorf("GrandTotal = %v", got)
	}
	if !ts.BucketTime(4).Equal(tsStart.Add(time.Hour)) {
		t.Errorf("BucketTime(4) = %v", ts.BucketTime(4))
	}
	if tot := ts.Totals(); len(tot) != 96 || tot[0] != 2 {
		t.Errorf("Totals = %v...", tot[:3])
	}
}

func TestTimeSeriesPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero width")
		}
	}()
	NewTimeSeries(tsStart, 0, 10)
}

func TestNewHistogramSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for size 0")
		}
	}()
	NewHistogramSize(0)
}
