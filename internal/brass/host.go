package brass

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"sync"
	"time"

	"bladerunner/internal/burst"
	"bladerunner/internal/cache"
	"bladerunner/internal/durlog"
	"bladerunner/internal/faults"
	"bladerunner/internal/metrics"
	"bladerunner/internal/overload"
	"bladerunner/internal/pylon"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/trace"
)

// ErrUnknownApp is returned when a stream names an unregistered application.
var ErrUnknownApp = errors.New("brass: unknown application")

// ErrHostFull is returned when spooling an instance would exceed the
// host's MaxInstances capacity.
var ErrHostFull = errors.New("brass: host at instance capacity")

// HostConfig parameterizes a BRASS host.
type HostConfig struct {
	// ID is the host's identity with Pylon and in sticky-routing headers.
	ID string
	// Region labels the host's datacenter region.
	Region string
	// StickyRouting controls whether the host rewrites HdrStickyBRASS
	// into every new stream (paper §3.5 "Sticky routing"). On by default
	// in NewHost.
	StickyRouting bool
	// PerStreamInstances spools up a dedicated application instance for
	// every request-stream instead of sharing one instance per app — the
	// lower-scale variant §7 suggests for better isolation. Instances
	// despool automatically when their stream closes.
	PerStreamInstances bool
	// MaxInstances caps concurrently running instances on this host
	// (the paper limits BRASSes to two per core to curb context
	// switching). 0 = unlimited. Streams that would exceed the cap are
	// rejected; the router places them elsewhere.
	MaxInstances int
	// SubscribeBackoff paces the subscription manager's background retries
	// when Pylon registration fails transiently (quorum loss, no server).
	// Zero fields take faults.DefaultBackoff values.
	SubscribeBackoff faults.BackoffPolicy
	// BackoffSeed seeds the retry jitter RNG; 0 derives a seed from ID so
	// a fleet of hosts decorrelates deterministically.
	BackoffSeed int64
	// PayloadCacheSize caps the host's shared hot-event payload cache
	// (entries). 0 takes DefaultPayloadCacheSize; negative disables
	// payload caching and coalescing entirely (every stream fetches from
	// the WAS independently, the pre-fast-path behaviour).
	PayloadCacheSize int
	// PayloadCacheTTL bounds how long resolved payload bytes may be
	// served without re-reading TAO. 0 takes DefaultPayloadCacheTTL.
	PayloadCacheTTL time.Duration
	// Tracer, when set, closes brass.deliver / brass.fetch / burst.flush
	// spans for sampled events on this host. nil disables tracing.
	Tracer *trace.Tracer
	// LoopQueueDepth bounds each instance's event-loop queue: a saturated
	// loop sheds its oldest Data-class task (event deliveries) and signals
	// FlowDegraded to the instance's streams. 0 takes the default
	// (taskBuffer); negative means unbounded (no shedding).
	LoopQueueDepth int
	// DeliverRate, when > 0, enables token-bucket admission control on
	// Pylon→host delivery: events arriving faster than DeliverRate per
	// second (above a burst of DeliverBurst, default DeliverRate) are shed
	// before any instance work happens. Sheds are counted on the host
	// admission controller and annotated on the event's trace.
	DeliverRate float64
	// DeliverBurst is the host admission bucket depth (0 = DeliverRate).
	DeliverBurst float64
	// StreamDeliverRate, when > 0, enables a per-stream delivery token
	// bucket: payload batches Pushed faster than this are shed (control
	// deltas always pass), with FlowDegraded/FlowRecovered emitted on the
	// transitions and the bucket state persisted into the stream header so
	// a failover replacement stream resumes the same admission state.
	StreamDeliverRate float64
	// StreamDeliverBurst is the per-stream bucket depth (0 = rate).
	StreamDeliverBurst float64
	// Durlog, when non-nil, gives the host a durable per-topic delta log
	// (internal/durlog): applications listed in DurlogApps append every
	// delivered delta and serve cursor catch-up reads from it, so a
	// resuming stream replays the missed suffix from the edge instead of
	// issuing a WAS point query. A nil Clock in the config takes the
	// host's scheduler.
	Durlog *durlog.Config
	// DurlogApps names the applications the log is enabled for (per-app
	// opt-in: Messenger wants durable resume; TypingIndicator, whose state
	// is worthless milliseconds later, does not).
	DurlogApps []string
}

// Host is one BRASS host: a multi-tenant machine running one instance per
// active application, a Pylon subscription manager, and the BURST server
// endpoints for the streams routed to it.
type Host struct {
	cfg   HostConfig
	pylon PubSub
	was   Backend
	sched sim.Scheduler

	mu        sync.Mutex
	apps      map[string]Application
	instances map[string]*Instance
	// topicHostRefs counts, per topic, how many local instances hold a
	// Pylon interest: the subscription manager registers with Pylon only
	// on the 0→1 transition and unregisters on 1→0 (footnote 10).
	topicHostRefs map[pylon.Topic]map[*Instance]bool
	// pendingSubs tracks topics whose Pylon registration failed transiently
	// and is being re-established in the background by the subscription
	// manager; the local refs stay live meanwhile.
	pendingSubs map[pylon.Topic]*subRetry
	nextSubSalt int64
	sessions    map[*burst.ServerSession]bool
	perStream   map[*Instance]bool
	closed      bool

	subBackoff *faults.Backoff

	// payloadCache and payloadFlight implement the hot-event payload fast
	// path (see payload.go). payloadCache is nil when disabled.
	payloadCache  *cache.LRU[payloadKey, []byte]
	payloadFlight cache.Group[payloadKey, []byte]

	// Admit is the host-level delivery admission controller (nil when
	// DeliverRate is unset — the nil receiver admits everything for free).
	// Its Admitted/Shed counters are exported for tests and experiments.
	Admit *overload.Admission

	// dlog is the host's durable per-topic log (nil when disabled);
	// dlogApps is the per-app opt-in set from HostConfig.DurlogApps.
	dlog     *durlog.Log
	dlogApps map[string]bool

	// Metrics (exported so experiments and tests can assert on them).
	Decisions          metrics.Counter
	Deliveries         metrics.Counter
	Filtered           metrics.Counter
	StreamsOpened      metrics.Counter
	StreamsClosed      metrics.Counter
	InstancesSpun      metrics.Counter
	InstancesDespooled metrics.Counter
	LoopOverflows      metrics.Counter
	PylonSubs          metrics.Counter
	PylonSubDedups     metrics.Counter // Pylon registrations avoided by the manager
	PylonSubRetries    metrics.Counter // background re-subscription attempts
	WASFetches         metrics.Counter // stream-level payload fetch requests
	PayloadCacheHits   metrics.Counter // fetches served from the payload cache
	PayloadCacheMisses metrics.Counter // fetches that had to resolve via the WAS
	CoalescedFetches   metrics.Counter // fetches that shared another caller's WAS read
	FlowSignals        metrics.Counter // FlowDegraded/FlowRecovered control deltas emitted
	StreamSheds        metrics.Counter // payload deltas shed by per-stream admission
	LogResumes         metrics.Counter // cursor catch-up reads served from the durable log
	LogExpired         metrics.Counter // cursor reads refused with ErrCursorExpired
	LogCatchUpDeltas   metrics.Counter // payload deltas delivered via log catch-up batches
}

// subRetry is one topic's background re-subscription state.
type subRetry struct {
	bo     *faults.Backoff
	cancel func()
}

// NewHost builds a BRASS host and registers it with Pylon. pyl and wasrv
// are interfaces so the host runs identically against in-process services
// and control-protocol clients; pass a nil interface (not a typed-nil
// pointer) to omit one.
func NewHost(cfg HostConfig, pyl PubSub, wasrv Backend, sched sim.Scheduler) *Host {
	if cfg.ID == "" {
		panic("brass: host needs an ID")
	}
	if sched == nil {
		sched = sim.RealClock{}
	}
	seed := cfg.BackoffSeed
	if seed == 0 {
		hsh := fnv.New64a()
		_, _ = hsh.Write([]byte(cfg.ID))
		seed = int64(hsh.Sum64())
	}
	h := &Host{
		cfg:           cfg,
		pylon:         pyl,
		was:           wasrv,
		sched:         sched,
		apps:          make(map[string]Application),
		instances:     make(map[string]*Instance),
		topicHostRefs: make(map[pylon.Topic]map[*Instance]bool),
		pendingSubs:   make(map[pylon.Topic]*subRetry),
		sessions:      make(map[*burst.ServerSession]bool),
		perStream:     make(map[*Instance]bool),
		subBackoff:    faults.NewBackoff(cfg.SubscribeBackoff, seed),
	}
	if cfg.PayloadCacheSize >= 0 {
		size := cfg.PayloadCacheSize
		if size == 0 {
			size = DefaultPayloadCacheSize
		}
		ttl := cfg.PayloadCacheTTL
		if ttl == 0 {
			ttl = DefaultPayloadCacheTTL
		}
		// Seeded off the host identity so a fleet decorrelates its TTL
		// refreshes deterministically.
		h.payloadCache = cache.NewLRU[payloadKey, []byte](size, ttl, 0.25, sched, seed)
	}
	if cfg.Durlog != nil {
		dcfg := *cfg.Durlog
		if dcfg.Clock == nil {
			dcfg.Clock = sched
		}
		h.dlog = durlog.New(dcfg)
		h.dlogApps = make(map[string]bool, len(cfg.DurlogApps))
		for _, app := range cfg.DurlogApps {
			h.dlogApps[app] = true
		}
	}
	if cfg.DeliverRate > 0 {
		dburst := cfg.DeliverBurst
		if dburst == 0 {
			dburst = cfg.DeliverRate
		}
		// Seeded off the host identity: a fleet's admission buckets start
		// at decorrelated fill levels, so a synchronized storm does not
		// trip every host's shed at the same instant.
		h.Admit = overload.NewAdmission(cfg.DeliverRate, dburst, sched, seed)
	}
	if pyl != nil {
		pyl.RegisterHost(h)
	}
	return h
}

// ID implements pylon.Subscriber.
func (h *Host) ID() string { return h.cfg.ID }

// Region returns the host's region label.
func (h *Host) Region() string { return h.cfg.Region }

// RegisterApp makes an application available on this host. Instances spool
// up lazily when the first stream arrives.
func (h *Host) RegisterApp(app Application) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.apps[app.Name()] = app
}

// Instance returns the running instance for app, spooling one up if the
// application is registered (the "serverless" behaviour of §1).
func (h *Host) Instance(appName string) (*Instance, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.instanceLocked(appName)
}

func (h *Host) instanceLocked(appName string) (*Instance, error) {
	if h.closed {
		return nil, fmt.Errorf("brass: host %s closed", h.cfg.ID)
	}
	app, ok := h.apps[appName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownApp, appName)
	}
	if h.cfg.PerStreamInstances {
		// One instance per stream: never shared, never cached.
		if h.atCapacityLocked() {
			return nil, fmt.Errorf("%w (%d)", ErrHostFull, h.cfg.MaxInstances)
		}
		inst := newInstance(h, app)
		h.perStream[inst] = true
		h.InstancesSpun.Inc()
		return inst, nil
	}
	if inst, ok := h.instances[appName]; ok {
		return inst, nil
	}
	if h.atCapacityLocked() {
		return nil, fmt.Errorf("%w (%d)", ErrHostFull, h.cfg.MaxInstances)
	}
	inst := newInstance(h, app)
	h.instances[appName] = inst
	h.InstancesSpun.Inc()
	return inst, nil
}

// atCapacityLocked reports whether another instance would exceed the cap.
func (h *Host) atCapacityLocked() bool {
	return h.cfg.MaxInstances > 0 &&
		len(h.instances)+len(h.perStream) >= h.cfg.MaxInstances
}

// despool tears down a per-stream instance once its stream has closed.
// Runs off the instance's own loop to avoid self-join deadlock.
func (h *Host) despool(inst *Instance) {
	h.mu.Lock()
	if !h.perStream[inst] {
		h.mu.Unlock()
		return
	}
	delete(h.perStream, inst)
	h.mu.Unlock()
	go func() {
		inst.stop()
		h.InstancesDespooled.Inc()
	}()
}

// RunningInstances returns the number of spooled-up instances.
func (h *Host) RunningInstances() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.instances) + len(h.perStream)
}

// Deliver implements pylon.Subscriber: the host's subscription manager fans
// the event out to every local instance interested in the topic. Host
// admission runs first: an over-rate event is shed here, before any
// instance queueing or app work (the nil check is free when disabled).
//
// audited allocation.
//
//brlint:hotpath per-event BRASS fan-out; the instance snapshot is the one
func (h *Host) Deliver(ev pylon.Event) {
	if !h.Admit.Allow() {
		sp := h.cfg.Tracer.Start(ev.Trace, trace.HopDeliver, trace.HopFanout)
		sp.Drop("host-admission")
		sp.End()
		return
	}
	h.mu.Lock()
	set := h.topicHostRefs[ev.Topic]
	//brlint:allow(hot-path-alloc) per-delivery instance snapshot: deliveries must run outside h.mu (no-lock-across-block), and the slice is bounded by co-resident instances per topic
	instances := make([]*Instance, 0, len(set))
	for inst := range set {
		//brlint:allow(hot-path-alloc) same audited snapshot: capacity is pre-sized by the make above, the append never grows it
		instances = append(instances, inst)
	}
	h.mu.Unlock()
	for _, inst := range instances {
		inst.deliver(ev)
	}
}

// subscribeTopic is called by an instance on its first local reference to
// topic. The manager registers with Pylon only if no other instance on this
// host already subscribed.
func (h *Host) subscribeTopic(topic pylon.Topic, inst *Instance) error {
	h.mu.Lock()
	set := h.topicHostRefs[topic]
	needPylon := len(set) == 0
	if set == nil {
		set = make(map[*Instance]bool)
		h.topicHostRefs[topic] = set
	}
	set[inst] = true
	h.mu.Unlock()

	if !needPylon {
		h.PylonSubDedups.Inc()
		return nil
	}
	if h.pylon == nil {
		return nil
	}
	if err := h.pylon.Subscribe(topic, h.cfg.ID); err != nil {
		if transientPylonErr(err) {
			// Pylon is transiently unreachable (quorum loss, no server)
			// but the instance's interest is real: keep the local ref and
			// let the subscription manager re-establish the registration
			// in the background — the host-side half of "streams are
			// repairable" (§4). The stream lives on without deltas until
			// the retry lands.
			h.scheduleSubRetry(topic)
			return nil
		}
		h.mu.Lock()
		delete(set, inst)
		if len(set) == 0 {
			delete(h.topicHostRefs, topic)
		}
		h.mu.Unlock()
		return err
	}
	h.PylonSubs.Inc()
	return nil
}

// transientPylonErr reports whether a Pylon registration failure is worth
// retrying: the subscriber store lost quorum or no Pylon server answered.
// ErrUnknownSubscriber is permanent — this host is not registered.
func transientPylonErr(err error) bool {
	return errors.Is(err, pylon.ErrNoQuorum) || errors.Is(err, pylon.ErrUnavailable)
}

// scheduleSubRetry arms (or keeps) a background retry for topic's Pylon
// registration.
func (h *Host) scheduleSubRetry(topic pylon.Topic) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || h.pendingSubs[topic] != nil {
		return
	}
	h.nextSubSalt++
	sr := &subRetry{bo: h.subBackoff.Child(h.nextSubSalt)}
	h.pendingSubs[topic] = sr
	h.armSubRetryLocked(topic, sr)
}

func (h *Host) armSubRetryLocked(topic pylon.Topic, sr *subRetry) {
	sr.cancel = h.sched.After(sr.bo.Next(), func() { h.retrySubscribe(topic, sr) })
}

func (h *Host) retrySubscribe(topic pylon.Topic, sr *subRetry) {
	h.mu.Lock()
	if h.closed || h.pendingSubs[topic] != sr {
		h.mu.Unlock()
		return
	}
	if len(h.topicHostRefs[topic]) == 0 {
		// Local interest evaporated while the retry was pending.
		delete(h.pendingSubs, topic)
		h.mu.Unlock()
		return
	}
	h.mu.Unlock()

	h.PylonSubRetries.Inc()
	err := h.pylon.Subscribe(topic, h.cfg.ID)

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || h.pendingSubs[topic] != sr {
		return
	}
	switch {
	case err == nil:
		delete(h.pendingSubs, topic)
		h.PylonSubs.Inc()
	case transientPylonErr(err):
		h.armSubRetryLocked(topic, sr)
	default:
		// Permanent (e.g. the host was deregistered): stop retrying.
		delete(h.pendingSubs, topic)
	}
}

// unsubscribeTopic drops an instance's interest; the last local reference
// unregisters the host from Pylon.
func (h *Host) unsubscribeTopic(topic pylon.Topic, inst *Instance) {
	h.mu.Lock()
	set := h.topicHostRefs[topic]
	delete(set, inst)
	last := set != nil && len(set) == 0
	if last {
		delete(h.topicHostRefs, topic)
		if sr := h.pendingSubs[topic]; sr != nil {
			if sr.cancel != nil {
				sr.cancel()
			}
			delete(h.pendingSubs, topic)
		}
	}
	h.mu.Unlock()
	if last && h.pylon != nil {
		_ = h.pylon.Unsubscribe(topic, h.cfg.ID)
	}
}

// DurLog returns the host's durable per-topic log (nil when disabled).
// Tests and experiments read its counters; applications go through the
// Runtime's Log* accessors instead.
func (h *Host) DurLog() *durlog.Log { return h.dlog }

// PendingSubs returns how many topics are awaiting a background Pylon
// re-subscription (tests and experiments).
func (h *Host) PendingSubs() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.pendingSubs)
}

// TopicRefs returns how many local instances reference topic (tests).
func (h *Host) TopicRefs(topic pylon.Topic) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.topicHostRefs[topic])
}

// AcceptSession attaches an inbound BURST transport (from a proxy or,
// in tests, directly from a device) to this host.
func (h *Host) AcceptSession(name string, rwc io.ReadWriteCloser) *burst.ServerSession {
	var ss *burst.ServerSession
	ss = burst.NewServerSession(name, rwc, hostSessionHandler{h: h, get: func() *burst.ServerSession { return ss }})
	h.mu.Lock()
	h.sessions[ss] = true
	h.mu.Unlock()
	return ss
}

// Close despools all instances and closes all sessions.
func (h *Host) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	for topic, sr := range h.pendingSubs {
		if sr.cancel != nil {
			sr.cancel()
		}
		delete(h.pendingSubs, topic)
	}
	instances := make([]*Instance, 0, len(h.instances)+len(h.perStream))
	for _, inst := range h.instances {
		instances = append(instances, inst)
	}
	for inst := range h.perStream {
		instances = append(instances, inst)
	}
	h.perStream = make(map[*Instance]bool)
	sessions := make([]*burst.ServerSession, 0, len(h.sessions))
	for s := range h.sessions {
		sessions = append(sessions, s)
	}
	h.mu.Unlock()
	for _, s := range sessions {
		_ = s.Close()
	}
	for _, inst := range instances {
		inst.stop()
	}
	if h.pylon != nil {
		h.pylon.RemoveHost(h.cfg.ID)
	}
}

type hostSessionHandler struct {
	h   *Host
	get func() *burst.ServerSession
}

func (hh hostSessionHandler) OnSubscribe(bst *burst.ServerStream, sub burst.Subscribe) {
	h := hh.h
	appName := sub.Header[burst.HdrApp]
	inst, err := h.Instance(appName)
	if err != nil {
		_ = bst.Terminate(err.Error())
		return
	}
	st := &Stream{
		burst:  bst,
		inst:   inst,
		topics: make(map[pylon.Topic]bool),
	}
	if uidStr, ok := sub.Header[burst.HdrUser]; ok {
		if uid, err := strconv.ParseUint(uidStr, 10, 64); err == nil {
			st.Viewer = socialgraph.UserID(uid)
		}
	}
	bst.State = st
	if h.cfg.StreamDeliverRate > 0 {
		rate := h.cfg.StreamDeliverRate
		dburst := h.cfg.StreamDeliverBurst
		if dburst == 0 {
			dburst = rate
		}
		st.admit = overload.TokenBucket{Rate: rate, Burst: dburst}
		// A failover replacement stream carries the old stream's bucket in
		// its rewritten header; restoring (clamped to now) keeps a device
		// from doubling its delivery rate by bouncing between hosts.
		st.admit.RestoreHeaderState(sub.Header[HdrAdmissionState], h.sched.Now())
	}
	// Sticky routing: pin this host into the reconnect state immediately
	// (paper §3.5). Proxies snooping the batch update their copy too.
	if h.cfg.StickyRouting {
		_ = bst.RewriteHeaderField(burst.HdrStickyBRASS, h.cfg.ID)
	}
	inst.openStream(st)
}

func (hh hostSessionHandler) OnCancel(bst *burst.ServerStream, c burst.Cancel) {
	if st, ok := bst.State.(*Stream); ok {
		st.inst.closeStream(st, "cancelled: "+c.Reason)
	}
}

func (hh hostSessionHandler) OnAck(bst *burst.ServerStream, a burst.Ack) {
	if st, ok := bst.State.(*Stream); ok {
		st.inst.post(func() { st.inst.impl.OnAck(st, a.Seq) })
	}
}

func (hh hostSessionHandler) OnSessionClose(streams []*burst.ServerStream, err error) {
	h := hh.h
	h.mu.Lock()
	if ss := hh.get(); ss != nil {
		delete(h.sessions, ss)
	}
	h.mu.Unlock()
	reason := "session closed"
	switch {
	case errors.Is(err, io.EOF):
		// Clean peer close (device or downstream proxy hung up on
		// purpose) — not a failure.
		reason = "peer closed session"
	case err != nil:
		reason = "session failed: " + err.Error()
	}
	for _, bst := range streams {
		if st, ok := bst.State.(*Stream); ok {
			st.inst.closeStream(st, reason)
		}
	}
}

// Quiesce blocks until every instance's event loop has drained the work
// posted before the call. Tests use it to avoid sleeps.
func (h *Host) Quiesce() {
	h.mu.Lock()
	instances := make([]*Instance, 0, len(h.instances)+len(h.perStream))
	for _, inst := range h.instances {
		instances = append(instances, inst)
	}
	for inst := range h.perStream {
		instances = append(instances, inst)
	}
	h.mu.Unlock()
	for _, inst := range instances {
		inst.call(func() {})
	}
}

// FilterRate returns the fraction of decisions that did not result in a
// delivery — the paper reports ~80% of messages are filtered out at BRASS.
func (h *Host) FilterRate() float64 {
	d := h.Decisions.Value()
	if d == 0 {
		return 0
	}
	return 1 - float64(h.Deliveries.Value())/float64(d)
}

var _ pylon.Subscriber = (*Host)(nil)
