package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"bladerunner/internal/metrics"
)

// Node is one span placed in an assembled trace tree.
type Node struct {
	SpanData
	Children []*Node
}

// Trace is the assembled cross-process view of one sampled mutation.
type Trace struct {
	ID    ID
	Roots []*Node
	Spans []SpanData // all spans of the trace, assembly order
}

// Assemble groups spans by trace ID and builds one tree per trace. A span
// attaches to the candidate parent whose Hop equals its Parent field,
// preferring (in order) a parent in the same process, then the latest
// parent that started at or before the child; spans whose parent hop never
// arrived become extra roots, so partial traces (drops, ring evictions)
// still render. Traces are returned ordered by first span start, then ID.
func Assemble(spans []SpanData) []*Trace {
	byID := make(map[ID]*Trace)
	var order []*Trace
	for _, d := range spans {
		if d.Trace == 0 {
			continue
		}
		t := byID[d.Trace]
		if t == nil {
			t = &Trace{ID: d.Trace}
			byID[d.Trace] = t
			order = append(order, t)
		}
		t.Spans = append(t.Spans, d)
	}
	for _, t := range order {
		t.build()
	}
	sort.SliceStable(order, func(i, j int) bool {
		si, sj := order[i].start(), order[j].start()
		if !si.Equal(sj) {
			return si.Before(sj)
		}
		return order[i].ID < order[j].ID
	})
	return order
}

func (t *Trace) start() time.Time {
	var min time.Time
	for i, d := range t.Spans {
		if i == 0 || d.Start.Before(min) {
			min = d.Start
		}
	}
	return min
}

func (t *Trace) build() {
	nodes := make([]*Node, len(t.Spans))
	for i := range t.Spans {
		nodes[i] = &Node{SpanData: t.Spans[i]}
	}
	for _, n := range nodes {
		p := bestParent(nodes, n)
		if p == nil {
			t.Roots = append(t.Roots, n)
			continue
		}
		p.Children = append(p.Children, n)
	}
	var sortKids func(n *Node)
	sortKids = func(n *Node) {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return childLess(n.Children[i], n.Children[j])
		})
		for _, c := range n.Children {
			sortKids(c)
		}
	}
	sort.SliceStable(t.Roots, func(i, j int) bool { return childLess(t.Roots[i], t.Roots[j]) })
	for _, r := range t.Roots {
		sortKids(r)
	}
}

// childLess orders siblings canonically — by hop, then process, then
// stream annotation — deliberately ignoring timestamps so two runs of the
// same seeded workload produce byte-identical trees even though wall-clock
// timings differ.
func childLess(a, b *Node) bool {
	if a.Hop != b.Hop {
		return a.Hop < b.Hop
	}
	if a.Proc != b.Proc {
		return a.Proc < b.Proc
	}
	return a.Attr("stream") < b.Attr("stream")
}

func bestParent(nodes []*Node, child *Node) *Node {
	if child.Parent == "" {
		return nil
	}
	var best *Node
	better := func(cand *Node) bool {
		if best == nil {
			return true
		}
		candProc := cand.Proc == child.Proc
		bestProc := best.Proc == child.Proc
		if candProc != bestProc {
			return candProc
		}
		candBefore := !cand.Start.After(child.Start)
		bestBefore := !best.Start.After(child.Start)
		if candBefore != bestBefore {
			return candBefore
		}
		return cand.Start.After(best.Start) // latest-started eligible parent
	}
	for _, n := range nodes {
		if n == child || n.Hop != child.Parent {
			continue
		}
		if better(n) {
			best = n
		}
	}
	return best
}

// Hops returns the set of hop names present in the trace, sorted.
func (t *Trace) Hops() []string {
	seen := make(map[string]bool)
	for _, d := range t.Spans {
		seen[d.Hop] = true
	}
	out := make([]string, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Covers reports whether the trace contains every listed hop.
func (t *Trace) Covers(hops ...string) bool {
	seen := make(map[string]bool)
	for _, d := range t.Spans {
		seen[d.Hop] = true
	}
	for _, h := range hops {
		if !seen[h] {
			return false
		}
	}
	return true
}

// Tree renders the canonical form of the trace: one line per span with
// hop, process, and sorted annotations — no timestamps, no IDs — indented
// by depth. Identical seeded runs yield identical Tree output; that
// equality is what cmd/brtrace -verify asserts.
func (t *Trace) Tree() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Hop)
		b.WriteString(" [")
		b.WriteString(n.Proc)
		b.WriteString("]")
		if len(n.Attrs) > 0 {
			attrs := append([]Attr(nil), n.Attrs...)
			sort.Slice(attrs, func(i, j int) bool {
				if attrs[i].Key != attrs[j].Key {
					return attrs[i].Key < attrs[j].Key
				}
				return attrs[i].Value < attrs[j].Value
			})
			for _, a := range attrs {
				fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
			}
		}
		b.WriteString("\n")
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		walk(r, 0)
	}
	return b.String()
}

// Forest renders the canonical trees of all traces, in assembly order —
// the unit of comparison for determinism checks.
func Forest(traces []*Trace) string {
	var b strings.Builder
	for i, t := range traces {
		fmt.Fprintf(&b, "--- trace %d ---\n%s", i, t.Tree())
	}
	return b.String()
}

// Breakdown aggregates per-hop latency histograms from spans, wiring each
// observation into the metrics histogram together with its trace ID as an
// exemplar, so a suspicious percentile can be chased back to a concrete
// trace.
type Breakdown struct {
	mu   sync.Mutex
	hops map[string]*metrics.Histogram
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{hops: make(map[string]*metrics.Histogram)}
}

// Record folds spans into the per-hop histograms.
func (b *Breakdown) Record(spans []SpanData) {
	for _, d := range spans {
		b.Hist(d.Hop).ObserveExemplar(d.Duration(), uint64(d.Trace))
	}
}

// Hist returns (creating if needed) the histogram for one hop.
func (b *Breakdown) Hist(hop string) *metrics.Histogram {
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.hops[hop]
	if h == nil {
		h = metrics.NewHistogram()
		b.hops[hop] = h
	}
	return h
}

// HopStat is one hop's latency summary, as exported by cmd/brbench.
type HopStat struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Stats returns the per-hop summaries keyed by hop name.
func (b *Breakdown) Stats() map[string]HopStat {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]HopStat, len(b.hops))
	for hop, h := range b.hops {
		s := h.Snapshot()
		out[hop] = HopStat{Count: s.Count, Mean: s.Mean, P50: s.P50, P95: s.P95, P99: s.P99, Max: s.Max}
	}
	return out
}

// hopOrder fixes the table row order to pipeline position; unknown hops
// sort after, lexically.
var hopOrder = map[string]int{
	HopPublish: 0, HopFanout: 1, HopDeliver: 2, HopFetch: 3,
	HopPrivacy: 4, HopResolve: 5, HopFlush: 6, HopRelay: 7, HopApply: 8,
}

// Table renders the breakdown as an aligned text table in pipeline order.
func (b *Breakdown) Table() string {
	b.mu.Lock()
	hops := make([]string, 0, len(b.hops))
	for hop := range b.hops {
		hops = append(hops, hop)
	}
	b.mu.Unlock()
	sort.Slice(hops, func(i, j int) bool {
		oi, iok := hopOrder[hops[i]]
		oj, jok := hopOrder[hops[j]]
		if iok && jok {
			return oi < oj
		}
		if iok != jok {
			return iok
		}
		return hops[i] < hops[j]
	})
	var out strings.Builder
	fmt.Fprintf(&out, "%-14s %8s %12s %12s %12s %12s\n", "hop", "count", "mean", "p50", "p95", "max")
	for _, hop := range hops {
		s := b.Hist(hop).Snapshot()
		fmt.Fprintf(&out, "%-14s %8d %12v %12v %12v %12v\n",
			hop, s.Count, round(s.Mean), round(s.P50), round(s.P95), round(s.Max))
	}
	return out.String()
}

func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d.Round(100 * time.Nanosecond)
	}
}
