package brass

import (
	"time"

	"bladerunner/internal/pylon"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/trace"
)

// Hot-event payload sharing (paper §3.2: metadata-only publish + fetch-back
// design). When one hot event fans out to many viewers on the same BRASS
// host, every stream needs the same payload bytes but its own privacy
// decision. The host therefore runs the WAS privacy check per viewer and
// shares only the TAO read: concurrent fetches for one event coalesce into
// a single WAS call (singleflight), and the resolved bytes sit in a small
// TTL-bounded LRU so late-arriving streams of the same event skip the WAS
// entirely. Cached payload byte slices are shared across streams and must
// be treated as immutable by application code.

// payloadKey identifies one event's payload on one application. Event IDs
// are unique per publish, so the key never aliases two payloads.
type payloadKey struct {
	app string
	id  uint64
	ref uint64
}

// DefaultPayloadCacheSize is the per-host payload cache capacity used when
// HostConfig.PayloadCacheSize is 0.
const DefaultPayloadCacheSize = 1024

// DefaultPayloadCacheTTL bounds payload reuse when HostConfig.PayloadCacheTTL
// is 0: long enough to cover one hot event's fan-out burst, short enough
// that an edited payload converges within a couple of seconds.
const DefaultPayloadCacheTTL = 2 * time.Second

// fetchPayload is the host-level payload fetch every stream routes through:
// per-viewer privacy check, then cache → singleflight → WAS.
func (h *Host) fetchPayload(app string, viewer socialgraph.UserID, ev pylon.Event) ([]byte, error) {
	sp := h.cfg.Tracer.Start(ev.Trace, trace.HopFetch, trace.HopDeliver)
	defer sp.End()
	sp.Annotate("host", h.cfg.ID)
	sp.Annotate("app", app)
	h.WASFetches.Inc()
	if h.payloadCache == nil {
		sp.Annotate("cache", "disabled")
		return h.was.FetchPayloadIn(h.cfg.Region, app, viewer, ev)
	}
	// The privacy check is mandatory per viewer; only the TAO read below
	// is shared.
	if err := h.was.CheckEventVisibility(viewer, ev); err != nil {
		sp.Annotate("denied", "privacy")
		return nil, err
	}
	key := payloadKey{app: app, id: ev.ID, ref: ev.Ref}
	if b, ok := h.payloadCache.Get(key); ok {
		h.PayloadCacheHits.Inc()
		sp.Annotate("cache", "hit")
		return b, nil
	}
	h.PayloadCacheMisses.Inc()
	b, err, joined := h.payloadFlight.Do(key, func() ([]byte, error) {
		// Payload reads come from the host's region-local TAO tier; only
		// the privacy check above needed the authoritative graph.
		b, err := h.was.ResolvePayloadIn(h.cfg.Region, app, ev)
		if err == nil {
			h.payloadCache.Put(key, b)
		}
		return b, err
	})
	if joined {
		// This caller waited on another stream's in-flight WAS read
		// (singleflight) instead of issuing its own.
		h.CoalescedFetches.Inc()
		sp.Annotate("cache", "coalesced")
	} else {
		sp.Annotate("cache", "miss")
	}
	return b, err
}
