// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) from this repository's implementation, printing
// paper-reported values next to measured ones. See DESIGN.md §5 for the
// experiment index and EXPERIMENTS.md for a recorded run.
//
// Two kinds of experiments exist:
//
//   - Live-stack experiments (the LVC switchover, the ablations) drive the
//     actual components — TAO, Pylon, WAS, BRASS, BURST — and read their
//     instrumentation.
//   - Model-composition experiments (the latency tables/figures and the
//     fleet-scale diurnal curves) run the discrete-event kernel over the
//     calibrated workload generators and per-component latency models,
//     because a laptop cannot host hundreds of millions of devices. The
//     models are the ones documented in DESIGN.md §4; what is verified is
//     that the *composition* of the system's structure with those inputs
//     reproduces the paper's end-to-end shapes.
package experiments

import (
	"fmt"
	"strings"
)

// Row is one reported comparison line.
type Row struct {
	Label    string
	Paper    string // value reported in the paper ("-" when not reported)
	Measured string
	Note     string
}

// SeriesPoint is one point of a figure's curve.
type SeriesPoint struct {
	X float64
	Y float64
}

// Result is one regenerated table or figure.
type Result struct {
	ID    string // "table1", "fig6", ...
	Title string
	Rows  []Row
	// Series holds the full curves for figures, keyed by curve name.
	Series map[string][]SeriesPoint
}

// String renders the result as an aligned text table.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	labelW, paperW, measW := len("metric"), len("paper"), len("measured")
	for _, row := range r.Rows {
		labelW = maxInt(labelW, len(row.Label))
		paperW = maxInt(paperW, len(row.Paper))
		measW = maxInt(measW, len(row.Measured))
	}
	fmt.Fprintf(&b, "%-*s  %*s  %*s  %s\n", labelW, "metric", paperW, "paper", measW, "measured", "note")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-*s  %*s  %*s  %s\n",
			labelW, row.Label, paperW, row.Paper, measW, row.Measured, row.Note)
	}
	return b.String()
}

// AddRow appends a comparison row.
func (r *Result) AddRow(label, paper, measured, note string) {
	r.Rows = append(r.Rows, Row{Label: label, Paper: paper, Measured: measured, Note: note})
}

// AddSeries attaches a named curve.
func (r *Result) AddSeries(name string, pts []SeriesPoint) {
	if r.Series == nil {
		r.Series = make(map[string][]SeriesPoint)
	}
	r.Series[name] = pts
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }

// All runs every experiment at the default scale and returns the results
// in paper order.
func All(seed int64) []Result {
	return []Result{
		Table1(seed, 2_000_000),
		Figure6(seed, 100_000),
		Table2(seed, 500_000),
		Figure7(seed, 200_000),
		Figure8(seed),
		Table3(seed, 100_000),
		Figure9(seed, 100_000),
		Figure10(seed),
		Switchover(seed),
		ReconnectStorm(seed),
		HotFanout(seed),
		TraceHops(seed),
		OverloadStorm(seed),
		GeoFailover(seed),
		DurlogResume(seed),
	}
}
