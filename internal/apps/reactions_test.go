package apps

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"bladerunner/internal/socialgraph"
)

func TestReactionsAggregation(t *testing.T) {
	e := newEnv(t)
	e.suite.Reactions.FlushInterval = 30 * time.Millisecond
	cli := e.dial(t)
	viewer := socialgraph.UserID(40)
	st := e.subscribe(t, cli, AppReactions, "liveVideoReactions(videoID: 77)", viewer, nil)
	waitFor(t, "sub", func() bool {
		return len(e.pylon.Subscribers(ReactionsTopic(77))) == 1
	})

	// A burst of 30 reactions of mixed kinds.
	for i := 0; i < 30; i++ {
		kind := []string{"like", "love", "wow"}[i%3]
		author := socialgraph.UserID(50 + i)
		if _, err := e.was.Mutate(author,
			fmt.Sprintf(`reactToVideo(videoID: 77, kind: "%s")`, kind)); err != nil {
			t.Fatal(err)
		}
	}

	// The device receives aggregated counters, not 30 events.
	total := map[string]int64{}
	batches := 0
	deadline := time.After(5 * time.Second)
	for sum(total) < 30 {
		select {
		case delta := <-st.Events:
			for _, d := range delta {
				var agg ReactionAggregate
				if err := json.Unmarshal(d.Payload, &agg); err != nil {
					t.Fatal(err)
				}
				if agg.VideoID != 77 {
					t.Errorf("video = %d", agg.VideoID)
				}
				batches++
				for k, v := range agg.Counts {
					total[k] += v
				}
			}
		case <-deadline:
			t.Fatalf("aggregates incomplete: %v (batches=%d)", total, batches)
		}
	}
	if total["like"] != 10 || total["love"] != 10 || total["wow"] != 10 {
		t.Errorf("counts = %v", total)
	}
	if batches >= 30 {
		t.Errorf("received %d batches for 30 reactions — not aggregated", batches)
	}
}

func sum(m map[string]int64) int64 {
	var t int64
	for _, v := range m {
		t += v
	}
	return t
}

func TestReactionsRejectUnknownKind(t *testing.T) {
	e := newEnv(t)
	if _, err := e.was.Mutate(1, `reactToVideo(videoID: 1, kind: "meh")`); err == nil {
		t.Error("unknown reaction kind accepted")
	}
}

func TestReactionsNoFlushWhenIdle(t *testing.T) {
	e := newEnv(t)
	e.suite.Reactions.FlushInterval = 10 * time.Millisecond
	cli := e.dial(t)
	st := e.subscribe(t, cli, AppReactions, "liveVideoReactions(videoID: 78)", 41, nil)
	waitFor(t, "sub", func() bool {
		return len(e.pylon.Subscribers(ReactionsTopic(78))) == 1
	})
	select {
	case b := <-st.Events:
		t.Errorf("idle stream pushed %+v", b)
	case <-time.After(100 * time.Millisecond):
	}
}
