// Package edge implements the stream-routing path between devices and
// BRASS hosts: POPs (points of presence) at the network edge and reverse
// proxies at the datacenter edge (paper §3.5, §4). Both are instances of
// the same Proxy type — a stream-level BURST relay that:
//
//   - routes each request-stream independently to an upstream chosen by a
//     pluggable Router (topic-based, load-based, or sticky);
//   - keeps a copy of each stream's current subscription request, updated
//     as rewrite deltas pass through, so it can repair streams after an
//     upstream failure (axiom 2 of §4);
//   - propagates flow_status deltas downstream so every participant learns
//     about failures and recoveries (axiom 1);
//   - garbage-collects stream state when the stream terminates or the
//     downstream connection dies.
package edge

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Dialer opens a byte transport to a named upstream target.
type Dialer interface {
	Dial(target string) (io.ReadWriteCloser, error)
}

// ErrNoRoute is returned when a router cannot place a stream.
var ErrNoRoute = errors.New("edge: no route for stream")

// ErrUnknownTarget is returned when dialing an unregistered target.
var ErrUnknownTarget = errors.New("edge: unknown target")

// PipeNetwork is an in-process "network": targets register an accept
// callback, and Dial hands them one end of a net.Pipe. It stands in for
// the datacenter fabric in tests, examples, and the live cluster.
//
// Open pipes are tracked per target so SetDown can sever established
// connections, not just reject new dials — "host down" kills the sessions
// already running through it, exactly like a real machine failure.
type PipeNetwork struct {
	mu      sync.Mutex
	targets map[string]func(io.ReadWriteCloser)
	down    map[string]bool
	dials   map[string]int
	conns   map[string]map[*pipePair]bool
}

// NewPipeNetwork returns an empty network.
func NewPipeNetwork() *PipeNetwork {
	return &PipeNetwork{
		targets: make(map[string]func(io.ReadWriteCloser)),
		down:    make(map[string]bool),
		dials:   make(map[string]int),
		conns:   make(map[string]map[*pipePair]bool),
	}
}

// pipePair is one dialed connection's two pipe ends, tracked for severing.
type pipePair struct {
	n      *PipeNetwork
	target string
	c, s   net.Conn

	// closedC/closedS are guarded by n.mu; the pair unregisters itself
	// once both ends have closed.
	closedC, closedS bool
}

// closeEnd closes one end and unregisters the pair when both are gone.
func (pp *pipePair) closeEnd(client bool) error {
	pp.n.mu.Lock()
	if client {
		pp.closedC = true
	} else {
		pp.closedS = true
	}
	if pp.closedC && pp.closedS {
		delete(pp.n.conns[pp.target], pp)
	}
	pp.n.mu.Unlock()
	if client {
		return pp.c.Close()
	}
	return pp.s.Close()
}

// sever closes both ends (failure injection: the target machine died).
func (pp *pipePair) sever() {
	pp.n.mu.Lock()
	pp.closedC, pp.closedS = true, true
	delete(pp.n.conns[pp.target], pp)
	pp.n.mu.Unlock()
	_ = pp.c.Close()
	_ = pp.s.Close()
}

// pipeEnd is one side of a tracked pipe; Close releases only this end so
// the peer still observes an orderly EOF.
type pipeEnd struct {
	net.Conn
	pair   *pipePair
	client bool
}

// Close closes this end of the pipe.
func (e pipeEnd) Close() error { return e.pair.closeEnd(e.client) }

// Register makes target dialable; accept receives the server end of each
// new connection.
func (n *PipeNetwork) Register(target string, accept func(io.ReadWriteCloser)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.targets[target] = accept
}

// Unregister removes a target (host decommissioned).
func (n *PipeNetwork) Unregister(target string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.targets, target)
}

// SetDown marks a target unreachable without unregistering it (failure
// injection: the host exists but connections fail). Taking a target down
// also severs every established connection to it — its sessions die like
// the machine did, so "down" means down, not merely "no new dials".
func (n *PipeNetwork) SetDown(target string, down bool) {
	n.mu.Lock()
	n.down[target] = down
	var pairs []*pipePair
	if down {
		for pp := range n.conns[target] {
			pairs = append(pairs, pp)
		}
	}
	n.mu.Unlock()
	for _, pp := range pairs {
		pp.sever()
	}
}

// SetDownGroup flips the down state of many targets atomically: every down
// flag changes under ONE lock acquisition, so no concurrent Dial or
// DownStates call can observe a half-cut group — the whole region fails (or
// heals) as one event. The established connections of newly-down targets
// are severed after the flags are published, exactly as SetDown does.
//
// A region-cut implemented as a loop of per-target SetDown calls has a
// window where some of the region's targets refuse dials and others still
// accept them; routing decisions made inside that window land streams on
// hosts that are about to die. SetDownGroup closes the window.
func (n *PipeNetwork) SetDownGroup(down bool, targets ...string) {
	n.mu.Lock()
	var pairs []*pipePair
	for _, target := range targets {
		n.down[target] = down
		if down {
			for pp := range n.conns[target] {
				pairs = append(pairs, pp)
			}
		}
	}
	n.mu.Unlock()
	for _, pp := range pairs {
		pp.sever()
	}
}

// DownStates returns the down flags of targets as one atomic snapshot —
// all flags are read under a single lock acquisition, so a concurrent
// SetDownGroup is observed either entirely or not at all.
func (n *PipeNetwork) DownStates(targets ...string) []bool {
	out := make([]bool, len(targets))
	n.mu.Lock()
	for i, target := range targets {
		out[i] = n.down[target]
	}
	n.mu.Unlock()
	return out
}

// Dial implements Dialer.
func (n *PipeNetwork) Dial(target string) (io.ReadWriteCloser, error) {
	n.mu.Lock()
	accept, ok := n.targets[target]
	isDown := n.down[target]
	if ok && !isDown {
		n.dials[target]++
	}
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTarget, target)
	}
	if isDown {
		return nil, fmt.Errorf("edge: target %q unreachable", target)
	}
	c, s := net.Pipe()
	pp := &pipePair{n: n, target: target, c: c, s: s}
	n.mu.Lock()
	set := n.conns[target]
	if set == nil {
		set = make(map[*pipePair]bool)
		n.conns[target] = set
	}
	set[pp] = true
	// Re-check: a concurrent SetDown(true) between the availability check
	// and registration must not leave this pair alive.
	wentDown := n.down[target]
	n.mu.Unlock()
	if wentDown {
		pp.sever()
		return nil, fmt.Errorf("edge: target %q unreachable", target)
	}
	accept(pipeEnd{Conn: s, pair: pp, client: false})
	return pipeEnd{Conn: c, pair: pp, client: true}, nil
}

// Targets returns the registered target names.
func (n *PipeNetwork) Targets() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.targets))
	for t := range n.targets {
		out = append(out, t)
	}
	return out
}

// DialCount reports how many successful dials target has received.
func (n *PipeNetwork) DialCount(target string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dials[target]
}

// OpenConns reports how many established connections target currently has.
func (n *PipeNetwork) OpenConns(target string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.conns[target])
}

var _ Dialer = (*PipeNetwork)(nil)
