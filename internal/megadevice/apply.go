package megadevice

import (
	"sync/atomic"
	"time"

	"bladerunner/internal/burst"
	"bladerunner/internal/overload"
)

// applyPayload fans one delivered payload delta out to every virtual
// device attached to the shared stream. This is the model's per-delta
// cost at 10^6 devices — a mutex, a linear pass of atomic stores over a
// dense uint32 slice, two counters, and (when a probe is armed on the
// topic) one histogram observation. streamSeq is written atomically so
// LastSeq readers on other goroutines need no fleet-wide lock.
//
// run through them.
//
// delta delivered to every trunk on a hot topic multiplied by fleet size
//
//brlint:hotpath per-delta fan-in for the million-device harness: every
func (f *Fleet) applyPayload(ts *topicSub, seq uint64) {
	ts.mu.Lock()
	streams := ts.streams
	if len(streams) > 0 {
		for _, sid := range streams {
			if seq > atomic.LoadUint64(&f.tab.streamSeq[sid]) {
				atomic.StoreUint64(&f.tab.streamSeq[sid], seq)
			}
			if f.rec != nil {
				//brlint:allow(hot-path-alloc) equivalence-test instrumentation: RecordDeliveries fleets are <=a few hundred devices, and production fleets run with rec nil so this branch never executes
				f.rec[sid] = append(f.rec[sid], seq)
			}
		}
		f.Applied.Add(int64(len(streams)))
		// Claim an armed delivery probe exactly once (Swap): the wall
		// nanos stored at mutate time become one mutate->edge-apply
		// latency sample. Claims only count when a device is attached —
		// a delta applied to zero devices delivered nothing.
		if w := atomic.SwapInt64(&f.probeWall[ts.area].v, 0); w != 0 {
			f.ApplyLatency.Observe(time.Duration(f.clock.Now().UnixNano() - w))
		}
	}
	f.Deltas.Inc()
	ts.mu.Unlock()
}

// applyFlow handles flow_status deltas on a shared stream: count them,
// and on a shed marker record the shed-then-resync episode ONCE for the
// shared stream (a real fleet would issue one point query per device;
// the trunk model coalesces them, and OnShed lets the scenario issue a
// representative real query). Flow deltas are rare control traffic — not
// part of the hot path.
func (f *Fleet) applyFlow(ts *topicSub, d *burst.Delta) {
	f.FlowEvents.Inc()
	if d.Flow == burst.FlowDegraded && overload.IsShedMarker(d.FlowDetail) {
		ts.mu.Lock()
		cursor := ts.header[burst.HdrCursor] != ""
		var last uint64
		for _, sid := range ts.streams {
			if s := atomic.LoadUint64(&f.tab.streamSeq[sid]); s > last {
				last = s
			}
		}
		ts.mu.Unlock()
		if cursor {
			// Durable-log stream: the gap is repaired by a cursor
			// resubscribe (counted as CursorResumes when it runs), not a
			// legacy point-query episode.
			f.enqueueResume(ts)
			return
		}
		f.Resyncs.Inc()
		if f.cfg.OnShed != nil {
			f.enqueueShed(ts.area, last)
		}
	}
}

// ProbeArm arms a delivery probe on area: wallNanos (the caller's wall
// clock at mutate time) sits in the slot until the first delta applied to
// an attached device on that topic claims it.
func (f *Fleet) ProbeArm(area uint32, wallNanos int64) {
	atomic.StoreInt64(&f.probeWall[area].v, wallNanos)
}

// ProbeArmed reports whether area's probe is still unclaimed.
func (f *Fleet) ProbeArmed(area uint32) bool {
	return atomic.LoadInt64(&f.probeWall[area].v) != 0
}

// ProbeDisarm clears an unclaimed probe (timeout), reporting whether it
// was still armed.
func (f *Fleet) ProbeDisarm(area uint32) bool {
	return atomic.SwapInt64(&f.probeWall[area].v, 0) != 0
}

// LastSeq returns the highest payload seq applied to stream sid.
func (f *Fleet) LastSeq(sid uint32) uint64 {
	return atomic.LoadUint64(&f.tab.streamSeq[sid])
}

// DeliveredCount returns the length of sid's recorded delivery trace
// (RecordDeliveries fleets only; 0 otherwise). Safe to poll while traffic
// flows — it locks the stream's current membership out briefly via the
// fleet mutex plus trunk lookup being unnecessary: the count is read
// under the same mutex ordering the appends (see DeliveredSeqs).
func (f *Fleet) DeliveredCount(sid uint32) int {
	if f.rec == nil {
		return 0
	}
	f.mu.Lock()
	t := f.trunkOfStreamLocked(sid)
	f.mu.Unlock()
	if t == nil {
		return len(f.rec[sid])
	}
	ts := t.lookupSub(f.areaOf[f.tab.streamTopic[sid]])
	if ts == nil {
		return len(f.rec[sid])
	}
	ts.mu.Lock()
	n := len(f.rec[sid])
	ts.mu.Unlock()
	return n
}

// DeliveredSeqs returns a copy of sid's full delivery trace. The appends
// run under the owning topicSub's mutex; taking that same mutex here
// orders the read after every delivery so far.
func (f *Fleet) DeliveredSeqs(sid uint32) []uint64 {
	if f.rec == nil {
		return nil
	}
	f.mu.Lock()
	t := f.trunkOfStreamLocked(sid)
	f.mu.Unlock()
	if t != nil {
		if ts := t.lookupSub(f.areaOf[f.tab.streamTopic[sid]]); ts != nil {
			ts.mu.Lock()
			defer ts.mu.Unlock()
			return append([]uint64(nil), f.rec[sid]...)
		}
	}
	return append([]uint64(nil), f.rec[sid]...)
}

// trunkOfStreamLocked returns the trunk sid's owner is attached through,
// or nil. Callers hold f.mu.
func (f *Fleet) trunkOfStreamLocked(sid uint32) *trunk {
	tid := f.tab.trunk[f.tab.streamOwner[sid]]
	if tid == noTrunk {
		return nil
	}
	return f.trunkIDs[tid]
}
