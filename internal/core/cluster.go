package core

import (
	"fmt"
	"io"

	"bladerunner/internal/apps"
	"bladerunner/internal/brass"
	"bladerunner/internal/device"
	"bladerunner/internal/edge"
	"bladerunner/internal/kvstore"
	"bladerunner/internal/pylon"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
	"bladerunner/internal/trace"
	"bladerunner/internal/was"
)

// Config parameterizes a Cluster.
type Config struct {
	// Regions are the datacenter region labels.
	Regions []string
	// BRASSHostsPerRegion is the number of BRASS hosts in each region.
	BRASSHostsPerRegion int
	// ProxiesPerRegion is the number of reverse proxies per region.
	ProxiesPerRegion int
	// POPs is the number of edge points of presence.
	POPs int
	// KVNodesPerRegion backs Pylon's subscription store.
	KVNodesPerRegion int
	// KVReplicas is the subscription replication factor.
	KVReplicas int
	// Graph configures the synthetic social graph.
	Graph socialgraph.Config
	// TAO configures the graph store.
	TAO tao.Config
	// Pylon configures the pub/sub tier.
	Pylon pylon.Config
	// StickyRouting enables BRASS sticky-routing rewrites.
	StickyRouting bool
	// Overload configures the overload-control plane on every BRASS host.
	// The zero value leaves the plane in its defaults (bounded loop queue
	// at the built-in depth, no delivery admission).
	Overload OverloadConfig
	// Trace, when set, wires the end-to-end tracing plane through every
	// tier: the WAS samples mutations and each component closes its hop
	// spans into the plane's per-process collectors. nil (the default)
	// leaves all tracers nil — the zero-overhead configuration.
	Trace *trace.Plane
}

// OverloadConfig selects the cluster-wide overload-control posture; the
// fields mirror brass.HostConfig (see there for semantics).
type OverloadConfig struct {
	LoopQueueDepth     int
	DeliverRate        float64
	DeliverBurst       float64
	StreamDeliverRate  float64
	StreamDeliverBurst float64
}

// DefaultConfig returns a small but fully wired deployment: 2 regions, 2
// BRASS hosts and 1 proxy per region, 2 POPs.
func DefaultConfig() Config {
	return Config{
		Regions:             []string{"us-east", "eu-west"},
		BRASSHostsPerRegion: 2,
		ProxiesPerRegion:    1,
		POPs:                2,
		KVNodesPerRegion:    2,
		KVReplicas:          3,
		Graph:               socialgraph.DefaultConfig(),
		TAO:                 tao.DefaultConfig(),
		Pylon:               pylon.DefaultConfig(),
		StickyRouting:       true,
	}
}

// Cluster is a running Bladerunner deployment.
type Cluster struct {
	Cfg      Config
	Net      *edge.PipeNetwork
	Graph    *socialgraph.Graph
	TAO      *tao.Store
	KV       *kvstore.Cluster
	Pylon    *pylon.Service
	WAS      *was.Server
	Apps     *apps.Suite
	Registry *Registry
	Hosts    []*brass.Host
	Proxies  []*edge.Proxy
	POPs     []*edge.Proxy
	Sched    sim.Scheduler

	popTargets []string
}

// NewCluster builds and wires a deployment. sched may be nil for the wall
// clock.
func NewCluster(cfg Config, sched sim.Scheduler) (*Cluster, error) {
	if len(cfg.Regions) == 0 {
		return nil, fmt.Errorf("core: need at least one region")
	}
	if cfg.BRASSHostsPerRegion < 1 || cfg.ProxiesPerRegion < 1 || cfg.POPs < 1 {
		return nil, fmt.Errorf("core: need at least one BRASS host, proxy, and POP")
	}
	if sched == nil {
		sched = sim.RealClock{}
	}

	graph, err := socialgraph.Generate(cfg.Graph)
	if err != nil {
		return nil, err
	}
	store, err := tao.NewStore(cfg.TAO, sched)
	if err != nil {
		return nil, err
	}

	// Subscription KV: nodes spread across regions.
	var kvNodes []*kvstore.Node
	for _, region := range cfg.Regions {
		for i := 0; i < cfg.KVNodesPerRegion; i++ {
			kvNodes = append(kvNodes, kvstore.NewNode(
				fmt.Sprintf("kv-%s-%d", region, i), region))
		}
	}
	replicas := cfg.KVReplicas
	if replicas > len(kvNodes) {
		replicas = len(kvNodes)
	}
	kv, err := kvstore.NewCluster(kvNodes, replicas)
	if err != nil {
		return nil, err
	}
	pyl, err := pylon.New(cfg.Pylon, kv)
	if err != nil {
		return nil, err
	}

	w := was.New(store, graph, pyl, sched)
	if cfg.Trace != nil {
		w.Sampler = cfg.Trace.Sampler
		w.Tracer = cfg.Trace.Tracer("was")
		pyl.Tracer = cfg.Trace.Tracer("pylon")
	}
	suite := apps.NewSuite(w)

	c := &Cluster{
		Cfg:      cfg,
		Net:      edge.NewPipeNetwork(),
		Graph:    graph,
		TAO:      store,
		KV:       kv,
		Pylon:    pyl,
		WAS:      w,
		Apps:     suite,
		Registry: NewRegistry(),
		Sched:    sched,
	}

	// BRASS hosts, registered on the network and with Pylon.
	brassByRegion := make(map[string][]string)
	for _, region := range cfg.Regions {
		for i := 0; i < cfg.BRASSHostsPerRegion; i++ {
			id := fmt.Sprintf("brass-%s-%d", region, i)
			h := brass.NewHost(brass.HostConfig{
				ID: id, Region: region, StickyRouting: cfg.StickyRouting,
				Tracer:             cfg.Trace.Tracer(id),
				LoopQueueDepth:     cfg.Overload.LoopQueueDepth,
				DeliverRate:        cfg.Overload.DeliverRate,
				DeliverBurst:       cfg.Overload.DeliverBurst,
				StreamDeliverRate:  cfg.Overload.StreamDeliverRate,
				StreamDeliverBurst: cfg.Overload.StreamDeliverBurst,
			}, pyl, w, sched)
			suite.RegisterBRASS(h)
			c.Hosts = append(c.Hosts, h)
			brassByRegion[region] = append(brassByRegion[region], id)
			host := h
			c.Net.Register(id, func(rwc io.ReadWriteCloser) {
				host.AcceptSession(id+"-in", rwc)
			})
			c.Registry.Set("brass/"+id+"/region", region)
		}
	}

	// Reverse proxies: route streams to BRASS hosts in their region,
	// honoring sticky headers.
	var proxyTargets []string
	for _, region := range cfg.Regions {
		for i := 0; i < cfg.ProxiesPerRegion; i++ {
			id := fmt.Sprintf("proxy-%s-%d", region, i)
			router := edge.StickyRouter{
				Fallback: edge.NewRoundRobinRouter(brassByRegion[region]...),
			}
			p := edge.NewProxy(id, c.Net, router)
			p.Tracer = cfg.Trace.Tracer(id)
			c.Proxies = append(c.Proxies, p)
			proxyTargets = append(proxyTargets, id)
			c.Net.Register(id, p.Accept)
		}
	}

	// POPs: route to reverse proxies.
	for i := 0; i < cfg.POPs; i++ {
		id := fmt.Sprintf("pop-%d", i)
		p := edge.NewProxy(id, c.Net, edge.NewRoundRobinRouter(proxyTargets...))
		p.Tracer = cfg.Trace.Tracer(id)
		c.POPs = append(c.POPs, p)
		c.popTargets = append(c.popTargets, id)
		c.Net.Register(id, p.Accept)
	}
	return c, nil
}

// MustNewCluster is NewCluster that panics on error.
func MustNewCluster(cfg Config, sched sim.Scheduler) *Cluster {
	c, err := NewCluster(cfg, sched)
	if err != nil {
		panic(err)
	}
	return c
}

// POPTargets returns the dialable POP names for devices.
func (c *Cluster) POPTargets() []string {
	return append([]string(nil), c.popTargets...)
}

// NewDevice builds a device for user wired to this cluster's POPs.
func (c *Cluster) NewDevice(user socialgraph.UserID) *device.Device {
	return device.New(device.Config{
		User:   user,
		POPs:   c.POPTargets(),
		Tracer: c.Cfg.Trace.Tracer(fmt.Sprintf("device-%d", user)),
	}, c.Net, c.WAS, c.Sched)
}

// NewDeviceVia builds a device that reaches the cluster's POPs through the
// given dialer — e.g. a faults.FaultNetwork wrapping this cluster's Net, so
// chaos tests can inject faults on the device's last mile.
func (c *Cluster) NewDeviceVia(dialer edge.Dialer, cfg device.Config) *device.Device {
	if len(cfg.POPs) == 0 {
		cfg.POPs = c.POPTargets()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = c.Cfg.Trace.Tracer(fmt.Sprintf("device-%d", cfg.User))
	}
	return device.New(cfg, dialer, c.WAS, c.Sched)
}

// Close tears the deployment down: POPs, proxies, then hosts.
func (c *Cluster) Close() {
	for _, p := range c.POPs {
		p.Close()
	}
	for _, p := range c.Proxies {
		p.Close()
	}
	for _, h := range c.Hosts {
		h.Close()
	}
}

// TotalDecisions sums delivery decisions across all BRASS hosts.
func (c *Cluster) TotalDecisions() int64 {
	var total int64
	for _, h := range c.Hosts {
		total += h.Decisions.Value()
	}
	return total
}

// TotalDeliveries sums update deliveries across all BRASS hosts.
func (c *Cluster) TotalDeliveries() int64 {
	var total int64
	for _, h := range c.Hosts {
		total += h.Deliveries.Value()
	}
	return total
}

// Quiesce drains every BRASS host's event loops (tests).
func (c *Cluster) Quiesce() {
	for _, h := range c.Hosts {
		h.Quiesce()
	}
}
