// Package hotpath is a brlint fixture for the hot-path-alloc rule:
// functions annotated //brlint:hotpath must be statically allocation-free
// on their non-error paths — no composite-literal heap escapes, make/new/
// append, closures, boxing interface conversions, or string building, and
// no call edge into a function that cannot be proven allocation-free.
// Edges into other hotpath functions are trusted, failure branches that
// return a non-nil error are exempt, and //brlint:allow(hot-path-alloc) is
// the audited escape hatch.
package hotpath

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
)

type payload struct{ b []byte }

type ring struct {
	slots []payload
	idx   int
}

// put is the clean steady-state shape: index, assign, arithmetic.
//
//brlint:hotpath fixture: slot overwrite allocates nothing
func (r *ring) put(p payload) {
	r.slots[r.idx] = p
	r.idx = (r.idx + 1) % len(r.slots)
}

// trusted calls another hotpath function: the contract composes, the edge
// is not re-analyzed.
//
//brlint:hotpath fixture: hotpath-to-hotpath edges are trusted
func (r *ring) trusted(p payload) {
	r.put(p)
}

// checked exercises the failure-path exemption: a branch returning a
// non-nil error may allocate.
//
//brlint:hotpath fixture: error branches are off the steady-state path
func (r *ring) checked(n int) error {
	if n > len(r.slots) {
		return fmt.Errorf("hotpath fixture: slot %d out of range", n)
	}
	r.idx = n
	return nil
}

// counts uses the stdlib allocation-free allowlist (sync/atomic).
//
//brlint:hotpath fixture: atomics are allowlisted
func counts(c *atomic.Int64) {
	c.Add(1)
}

//brlint:hotpath fixture
func allocs(n int) []int {
	m := make(map[int]int, n) // want `hot-path-alloc: hot-path function lint/testdata/src/hotpath.allocs: make allocates`
	m[n] = n
	p := new(ring) // want `hot-path-alloc: hot-path function lint/testdata/src/hotpath.allocs: new allocates`
	p.idx = n
	s := []int{1, 2, 3} // want `hot-path-alloc: hot-path function lint/testdata/src/hotpath.allocs: slice literal`
	s = append(s, n)    // want `hot-path-alloc: hot-path function lint/testdata/src/hotpath.allocs: append may grow its backing array`
	return s
}

//brlint:hotpath fixture
func concat(a, b string) string {
	return a + b // want `hot-path-alloc: hot-path function lint/testdata/src/hotpath.concat: string concatenation`
}

//brlint:hotpath fixture
func tobytes(s string) []byte {
	return []byte(s) // want `hot-path-alloc: hot-path function lint/testdata/src/hotpath.tobytes: string/\[\]byte conversion copies`
}

//brlint:hotpath fixture
func escapes() *ring {
	return &ring{} // want `hot-path-alloc: hot-path function lint/testdata/src/hotpath.escapes: &composite literal \(heap allocation\)`
}

//brlint:hotpath fixture
func closes(n int) func() int {
	f := func() int { return n } // want `hot-path-alloc: hot-path function lint/testdata/src/hotpath.closes: function literal allocates a closure`
	return f
}

//brlint:hotpath fixture
func spawns(r *ring, p payload) {
	go r.put(p) // want `hot-path-alloc: hot-path function lint/testdata/src/hotpath.spawns: go statement starts a goroutine`
}

//brlint:hotpath fixture
func dynamic(fn func()) {
	fn() // want `hot-path-alloc: hot-path function lint/testdata/src/hotpath.dynamic: call through a function value cannot be proven allocation-free`
}

// dirtyHelper is not annotated: its allocation surfaces at hotpath call
// sites through the transitive summary, with the chain in the message.
func dirtyHelper() *ring {
	return &ring{}
}

// cleanHop is allocation-free but calls a dirty function: a hotpath caller
// two hops up still sees the composed chain.
func cleanHop() *ring {
	return dirtyHelper()
}

//brlint:hotpath fixture
func chain() *ring {
	return cleanHop() // want `hot-path-alloc: hot-path function lint/testdata/src/hotpath.chain: call to lint/testdata/src/hotpath.cleanHop, which allocates: call to lint/testdata/src/hotpath.dirtyHelper, which allocates: &composite literal \(heap allocation\) at hotpath.go:\d+ at hotpath.go:\d+`
}

//brlint:hotpath fixture
func external(s string) string {
	return strings.ToUpper(s) // want `hot-path-alloc: hot-path function lint/testdata/src/hotpath.external: call to strings.ToUpper is not on the allocation-free allowlist`
}

//brlint:hotpath fixture
func sentinel() error {
	return errors.ErrUnsupported
}

// logger exercises boxing detection: a concrete non-pointer value passed
// to an interface parameter allocates its box.
type logger interface{ log(v any) }

type nopLogger struct{}

func (nopLogger) log(v any) {}

//brlint:hotpath fixture
func boxes(l logger, n int) {
	l.log(n) // want `hot-path-alloc: hot-path function lint/testdata/src/hotpath.boxes: argument boxes into interface parameter of \(lint/testdata/src/hotpath.logger\).log`
}

// sink exercises interface dispatch over module implementations: the call
// is only clean if every resolvable implementation is.
type sink interface{ consume(p payload) }

type allocSink struct{ buf []payload }

func (s *allocSink) consume(p payload) { s.buf = append(s.buf, p) }

type countSink struct{ n int }

func (c *countSink) consume(payload) { c.n++ }

//brlint:hotpath fixture
func dispatch(s sink, p payload) {
	s.consume(p) // want `hot-path-alloc: hot-path function lint/testdata/src/hotpath.dispatch: interface call to \(lint/testdata/src/hotpath.sink\).consume may dispatch to \(\*lint/testdata/src/hotpath.allocSink\).consume, which allocates: append may grow its backing array at hotpath.go:\d+`
}

// allowed demonstrates the audited escape hatch.
//
//brlint:hotpath fixture: warm-up allocation under an audited allow
func allowed(n int) []int {
	//brlint:allow(hot-path-alloc) fixture: one-time warm-up allocation, amortized to zero in steady state
	return make([]int, n)
}
