package tao

import (
	"sync"
	"time"

	"bladerunner/internal/metrics"
	"bladerunner/internal/sim"
)

// Follower is a regional read-through cache in front of a Store, modelling
// TAO's follower tier. Reads are served from the cache when possible;
// writes go to the Store (the leader) and invalidate this follower after
// the configured replication delay, modelling asynchronous cross-region
// invalidation.
//
// Followers cache objects and full association lists. The paper relies on
// BRASS point queries having "good caching characteristics" (§5); the
// Hits/Misses counters let experiments verify that.
type Follower struct {
	store *Store
	sched sim.Scheduler
	delay time.Duration

	mu      sync.Mutex
	objects map[ObjID]Object
	assocs  map[assocKey][]Assoc

	Hits   metrics.Counter
	Misses metrics.Counter
}

// NewFollower returns a follower cache over store. Writes through this
// follower invalidate its cache after delay (zero means immediately).
func NewFollower(store *Store, sched sim.Scheduler, delay time.Duration) *Follower {
	if sched == nil {
		sched = sim.RealClock{}
	}
	return &Follower{
		store:   store,
		sched:   sched,
		delay:   delay,
		objects: make(map[ObjID]Object),
		assocs:  make(map[assocKey][]Assoc),
	}
}

// ObjectGet serves the object from cache, filling from the leader on miss.
func (f *Follower) ObjectGet(id ObjID) (Object, error) {
	f.mu.Lock()
	if obj, ok := f.objects[id]; ok {
		f.mu.Unlock()
		f.Hits.Inc()
		out := obj
		out.Data = cloneData(obj.Data)
		return out, nil
	}
	f.mu.Unlock()
	f.Misses.Inc()
	obj, err := f.store.ObjectGet(id)
	if err != nil {
		return Object{}, err
	}
	f.mu.Lock()
	f.objects[id] = obj
	f.mu.Unlock()
	out := obj
	out.Data = cloneData(obj.Data)
	return out, nil
}

// AssocRange serves the association list from cache, filling on miss.
func (f *Follower) AssocRange(id1 ObjID, typ AssocType, offset, limit int) []Assoc {
	key := assocKey{id1, typ}
	f.mu.Lock()
	if lst, ok := f.assocs[key]; ok {
		f.mu.Unlock()
		f.Hits.Inc()
		return sliceRange(lst, offset, limit)
	}
	f.mu.Unlock()
	f.Misses.Inc()
	lst := f.store.AssocRange(id1, typ, 0, 0) // fetch full list for caching
	f.mu.Lock()
	f.assocs[key] = lst
	f.mu.Unlock()
	return sliceRange(lst, offset, limit)
}

// ObjectUpdate writes through to the leader and schedules invalidation of
// this follower's copy after the replication delay.
func (f *Follower) ObjectUpdate(id ObjID, data map[string]string) error {
	if err := f.store.ObjectUpdate(id, data); err != nil {
		return err
	}
	f.scheduleInvalidateObject(id)
	return nil
}

// AssocAdd writes through to the leader and schedules invalidation of the
// cached list.
func (f *Follower) AssocAdd(id1 ObjID, typ AssocType, id2 ObjID, t time.Time, data string) {
	f.store.AssocAdd(id1, typ, id2, t, data)
	f.scheduleInvalidateAssoc(assocKey{id1, typ})
}

// InvalidateObject drops the cached copy of id immediately. Exposed so the
// leader tier (or tests) can push invalidations to remote followers.
func (f *Follower) InvalidateObject(id ObjID) {
	f.mu.Lock()
	delete(f.objects, id)
	f.mu.Unlock()
}

// InvalidateAssoc drops the cached association list immediately.
func (f *Follower) InvalidateAssoc(id1 ObjID, typ AssocType) {
	f.mu.Lock()
	delete(f.assocs, assocKey{id1, typ})
	f.mu.Unlock()
}

func (f *Follower) scheduleInvalidateObject(id ObjID) {
	if f.delay <= 0 {
		f.InvalidateObject(id)
		return
	}
	f.sched.After(f.delay, func() { f.InvalidateObject(id) })
}

func (f *Follower) scheduleInvalidateAssoc(key assocKey) {
	if f.delay <= 0 {
		f.InvalidateAssoc(key.id1, key.typ)
		return
	}
	f.sched.After(f.delay, func() {
		f.mu.Lock()
		delete(f.assocs, key)
		f.mu.Unlock()
	})
}

// Both tiers satisfy the region-local read surface.
var (
	_ Reader = (*Store)(nil)
	_ Reader = (*Follower)(nil)
)

// HitRate returns the cache hit fraction, or 0 with no lookups.
func (f *Follower) HitRate() float64 {
	h, m := f.Hits.Value(), f.Misses.Value()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
