package core

import (
	"fmt"
	"io"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/brass"
	"bladerunner/internal/device"
	"bladerunner/internal/edge"
	"bladerunner/internal/kvstore"
	"bladerunner/internal/pylon"
	"bladerunner/internal/region"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
	"bladerunner/internal/trace"
	"bladerunner/internal/was"
)

// Config parameterizes a Cluster.
type Config struct {
	// Regions are the datacenter region labels.
	Regions []string
	// BRASSHostsPerRegion is the number of BRASS hosts in each region.
	BRASSHostsPerRegion int
	// ProxiesPerRegion is the number of reverse proxies per region.
	ProxiesPerRegion int
	// POPs is the number of edge points of presence.
	POPs int
	// KVNodesPerRegion backs Pylon's subscription store.
	KVNodesPerRegion int
	// KVReplicas is the subscription replication factor.
	KVReplicas int
	// Graph configures the synthetic social graph.
	Graph socialgraph.Config
	// TAO configures the graph store.
	TAO tao.Config
	// Pylon configures the pub/sub tier.
	Pylon pylon.Config
	// StickyRouting enables BRASS sticky-routing rewrites.
	StickyRouting bool
	// Overload configures the overload-control plane on every BRASS host.
	// The zero value leaves the plane in its defaults (bounded loop queue
	// at the built-in depth, no delivery admission).
	Overload OverloadConfig
	// Trace, when set, wires the end-to-end tracing plane through every
	// tier: the WAS samples mutations and each component closes its hop
	// spans into the plane's per-process collectors. nil (the default)
	// leaves all tracers nil — the zero-overhead configuration.
	Trace *trace.Plane
	// Durlog, when set, gives every BRASS host a durable per-topic log
	// (internal/durlog) and enables cursor-based resume for the listed
	// applications. nil (the default) keeps the pre-log behaviour: every
	// recovery is a WAS resync.
	Durlog *DurlogConfig
	// Geo, when set, activates the multi-region plane: each region gets
	// its own Pylon cluster (over its own subscription KV nodes) and TAO
	// follower; devices are homed by user id; cross-region dials pay the
	// topology's modeled latency and respect link state; and mutations
	// publish region-locally then replicate outward over per-link workers.
	// Geo.Regions defaults to Config.Regions when empty. nil (the default)
	// keeps the single shared Pylon — the pre-region behaviour.
	Geo *region.Config
}

// OverloadConfig selects the cluster-wide overload-control posture; the
// fields mirror brass.HostConfig (see there for semantics).
type OverloadConfig struct {
	LoopQueueDepth     int
	DeliverRate        float64
	DeliverBurst       float64
	StreamDeliverRate  float64
	StreamDeliverBurst float64
}

// DurlogConfig selects the cluster-wide durable-log posture; the sizing
// fields mirror durlog.Config (zero values take that package's defaults).
type DurlogConfig struct {
	// Apps names the applications that opt in. Empty defaults to
	// Messenger only — the app whose updates are worth replaying later
	// (TypingIndicator state is worthless milliseconds after the fact, so
	// it stays out even when the log is on).
	Apps []string
	// HotBytes / Segments / SegmentEntries / Retention size each topic's
	// slab ring; see durlog.Config.
	HotBytes       int
	Segments       int
	SegmentEntries int
	Retention      time.Duration
}

// DefaultConfig returns a small but fully wired deployment: 2 regions, 2
// BRASS hosts and 1 proxy per region, 2 POPs.
func DefaultConfig() Config {
	return Config{
		Regions:             []string{"us-east", "eu-west"},
		BRASSHostsPerRegion: 2,
		ProxiesPerRegion:    1,
		POPs:                2,
		KVNodesPerRegion:    2,
		KVReplicas:          3,
		Graph:               socialgraph.DefaultConfig(),
		TAO:                 tao.DefaultConfig(),
		Pylon:               pylon.DefaultConfig(),
		StickyRouting:       true,
	}
}

// Cluster is a running Bladerunner deployment.
type Cluster struct {
	Cfg      Config
	Net      *edge.PipeNetwork
	Graph    *socialgraph.Graph
	TAO      *tao.Store
	KV       *kvstore.Cluster
	Pylon    *pylon.Service
	WAS      *was.Server
	Apps     *apps.Suite
	Registry *Registry
	Hosts    []*brass.Host
	Proxies  []*edge.Proxy
	POPs     []*edge.Proxy
	Sched    sim.Scheduler

	// Multi-region plane (nil/empty unless Cfg.Geo is set). Pylon above
	// remains the PRIMARY region's service so single-region callers work
	// unchanged; RegionPylons holds every region's.
	Topo         *region.Topology
	Gate         *region.Gate
	Plane        *region.Plane
	RegionPylons map[string]*pylon.Service
	Followers    map[string]*tao.Follower

	popTargets []string
	popRegion  map[string]string // pop id → region (Geo only)
}

// NewCluster builds and wires a deployment. sched may be nil for the wall
// clock.
func NewCluster(cfg Config, sched sim.Scheduler) (*Cluster, error) {
	if len(cfg.Regions) == 0 {
		return nil, fmt.Errorf("core: need at least one region")
	}
	if cfg.BRASSHostsPerRegion < 1 || cfg.ProxiesPerRegion < 1 || cfg.POPs < 1 {
		return nil, fmt.Errorf("core: need at least one BRASS host, proxy, and POP")
	}
	if sched == nil {
		sched = sim.RealClock{}
	}

	// Geo mode: regions come from the region config (defaulted from the
	// cluster's), and the live topology drives routing, dial gating, and
	// replication below.
	var topo *region.Topology
	if cfg.Geo != nil {
		g := *cfg.Geo
		if len(g.Regions) == 0 {
			g.Regions = cfg.Regions
		}
		cfg.Regions = g.Regions
		cfg.Geo = &g
		var err error
		topo, err = region.NewTopology(g)
		if err != nil {
			return nil, err
		}
	}

	// Subscription KV + Pylon. Single-region mode shares one Pylon
	// cluster whose KV nodes spread across region labels; Geo mode gives
	// each region its OWN KV cluster and Pylon service, joined only by
	// the replication plane — a region-cut cannot take another region's
	// pub/sub tier with it.
	var (
		kv           *kvstore.Cluster
		pyl          *pylon.Service
		regionPylons map[string]*pylon.Service
		err          error
	)
	if topo == nil {
		pt, err := NewPylonTier(cfg)
		if err != nil {
			return nil, err
		}
		kv, pyl = pt.KV, pt.Pylon
	} else {
		regionPylons = make(map[string]*pylon.Service, len(cfg.Regions))
		for _, r := range cfg.Regions {
			rkv, err := newKVCluster(cfg, []string{r})
			if err != nil {
				return nil, err
			}
			rp, err := pylon.New(cfg.Pylon, rkv)
			if err != nil {
				return nil, err
			}
			if cfg.Trace != nil {
				rp.Tracer = cfg.Trace.Tracer("pylon-" + r)
			}
			regionPylons[r] = rp
			if r == topo.Primary() {
				kv, pyl = rkv, rp
			}
		}
	}

	wt, err := NewWASTier(cfg, pyl, nil, sched)
	if err != nil {
		return nil, err
	}
	graph, store, w, suite := wt.Graph, wt.TAO, wt.WAS, wt.Apps
	if cfg.Trace != nil {
		w.Sampler = cfg.Trace.Sampler
		w.Tracer = cfg.Trace.Tracer("was")
		if topo == nil {
			pyl.Tracer = cfg.Trace.Tracer("pylon")
		}
	}

	c := &Cluster{
		Cfg:      cfg,
		Net:      edge.NewPipeNetwork(),
		Graph:    graph,
		TAO:      store,
		KV:       kv,
		Pylon:    pyl,
		WAS:      w,
		Apps:     suite,
		Registry: NewRegistry(),
		Sched:    sched,
	}

	if topo != nil {
		c.Topo = topo
		c.Gate = region.NewGate(topo, sched)
		c.RegionPylons = regionPylons
		plane, err := region.NewPlane(topo, sched, regionPylons)
		if err != nil {
			return nil, err
		}
		c.Plane = plane
		// Mutations publish through the plane: origin region first, then
		// replicated outward per link.
		w.Fanout = plane
		// Each non-primary region reads TAO through its own follower,
		// invalidated by leader writes after the link's replication lag.
		c.Followers = make(map[string]*tao.Follower)
		for _, r := range cfg.Regions {
			if r == topo.Primary() {
				continue
			}
			f := tao.NewFollower(store, sched, 0)
			store.AttachFollower(r, f, topo.ReplLagDist(topo.Primary(), r),
				sched, cfg.Geo.Seed^0x7a0)
			w.RegisterReader(r, f)
			c.Followers[r] = f
		}
		c.popRegion = make(map[string]string)
	}

	// BRASS hosts, registered on the network and with their region's
	// Pylon.
	brassByRegion := make(map[string][]string)
	for _, r := range cfg.Regions {
		hostPylon := pyl
		if topo != nil {
			hostPylon = regionPylons[r]
		}
		for i := 0; i < cfg.BRASSHostsPerRegion; i++ {
			id := fmt.Sprintf("brass-%s-%d", r, i)
			h := brass.NewHost(brassHostConfig(cfg, id, r), hostPylon, w, sched)
			suite.RegisterBRASS(h)
			c.Hosts = append(c.Hosts, h)
			brassByRegion[r] = append(brassByRegion[r], id)
			host := h
			c.Net.Register(id, func(rwc io.ReadWriteCloser) {
				host.AcceptSession(id+"-in", rwc)
			})
			if c.Gate != nil {
				c.Gate.RegisterTarget(id, r)
			}
			c.Registry.Set("brass/"+id+"/region", r)
		}
	}

	// Reverse proxies: route streams to BRASS hosts, honoring sticky
	// headers. Geo mode prefers the proxy's home region and fails over to
	// healthy remote regions through the dial gate; single-region mode
	// keeps the region-local round robin.
	var proxyTargets []string
	for _, r := range cfg.Regions {
		for i := 0; i < cfg.ProxiesPerRegion; i++ {
			id := fmt.Sprintf("proxy-%s-%d", r, i)
			var router edge.Router
			var dialer edge.Dialer = c.Net
			if topo != nil {
				rr := region.NewRouter(topo, r)
				for _, br := range cfg.Regions {
					for _, t := range brassByRegion[br] {
						rr.AddTarget(br, t)
					}
				}
				router = edge.StickyRouter{Fallback: rr}
				dialer = c.Gate.DialerFor(r, c.Net)
			} else {
				router = edge.StickyRouter{
					Fallback: edge.NewRoundRobinRouter(brassByRegion[r]...),
				}
			}
			p := edge.NewProxy(id, dialer, router)
			p.Tracer = cfg.Trace.Tracer(id)
			c.Proxies = append(c.Proxies, p)
			proxyTargets = append(proxyTargets, id)
			c.Net.Register(id, p.Accept)
			if c.Gate != nil {
				c.Gate.RegisterTarget(id, r)
			}
		}
	}

	// POPs: route to reverse proxies. Geo mode homes POPs round-robin
	// across regions and routes region-locally first.
	proxiesByRegion := make(map[string][]string)
	for _, t := range proxyTargets {
		if c.Gate != nil {
			proxiesByRegion[c.Gate.RegionOf(t)] = append(proxiesByRegion[c.Gate.RegionOf(t)], t)
		}
	}
	for i := 0; i < cfg.POPs; i++ {
		id := fmt.Sprintf("pop-%d", i)
		var router edge.Router
		var dialer edge.Dialer = c.Net
		if topo != nil {
			popHome := cfg.Regions[i%len(cfg.Regions)]
			rr := region.NewRouter(topo, popHome)
			for pr, ts := range proxiesByRegion {
				for _, t := range ts {
					rr.AddTarget(pr, t)
				}
			}
			router = rr
			dialer = c.Gate.DialerFor(popHome, c.Net)
			c.popRegion[id] = popHome
		} else {
			router = edge.NewRoundRobinRouter(proxyTargets...)
		}
		p := edge.NewProxy(id, dialer, router)
		p.Tracer = cfg.Trace.Tracer(id)
		c.POPs = append(c.POPs, p)
		c.popTargets = append(c.popTargets, id)
		c.Net.Register(id, p.Accept)
		if c.Gate != nil {
			c.Gate.RegisterTarget(id, c.popRegion[id])
		}
	}
	return c, nil
}

// MustNewCluster is NewCluster that panics on error.
func MustNewCluster(cfg Config, sched sim.Scheduler) *Cluster {
	c, err := NewCluster(cfg, sched)
	if err != nil {
		panic(err)
	}
	return c
}

// POPTargets returns the dialable POP names for devices.
func (c *Cluster) POPTargets() []string {
	return append([]string(nil), c.popTargets...)
}

// POPTargetsFor returns POP names ordered for a device homed in region:
// home-region POPs first, everything else after — the device's natural
// rotation order reaches a cross-region POP only once home is exhausted.
// Without a region plane it returns POPTargets unchanged.
func (c *Cluster) POPTargetsFor(region string) []string {
	if c.popRegion == nil {
		return c.POPTargets()
	}
	out := make([]string, 0, len(c.popTargets))
	for _, t := range c.popTargets {
		if c.popRegion[t] == region {
			out = append(out, t)
		}
	}
	for _, t := range c.popTargets {
		if c.popRegion[t] != region {
			out = append(out, t)
		}
	}
	return out
}

// HomeRegion returns the region user's devices are homed in ("" without a
// region plane).
func (c *Cluster) HomeRegion(user socialgraph.UserID) string {
	if c.Topo == nil {
		return ""
	}
	return c.Topo.Home(uint64(user))
}

// NewDevice builds a device for user wired to this cluster's POPs. Under
// a region plane the device is homed by user id: its reads hit its home
// region's TAO follower, its POP preference order starts at home, and its
// cross-region dials go through the gate.
func (c *Cluster) NewDevice(user socialgraph.UserID) *device.Device {
	return c.NewDeviceVia(c.Net, device.Config{User: user})
}

// NewDeviceVia builds a device that reaches the cluster's POPs through the
// given dialer — e.g. a faults.FaultNetwork wrapping this cluster's Net, so
// chaos tests can inject faults on the device's last mile.
//
// Device dials are deliberately NOT gated by the region topology: devices
// reach POPs over the public internet, not the inter-region backbone, so a
// region-cut kills the region's POPs (they are registered targets of the
// cut) but never strands a device — it rotates to a healthy region's POP
// and attaches there. Only datacenter-to-datacenter hops (POP→proxy,
// proxy→BRASS, event replication) ride the gated links.
func (c *Cluster) NewDeviceVia(dialer edge.Dialer, cfg device.Config) *device.Device {
	if c.Topo != nil && cfg.Region == "" {
		cfg.Region = c.Topo.Home(uint64(cfg.User))
	}
	if len(cfg.POPs) == 0 {
		cfg.POPs = c.POPTargetsFor(cfg.Region)
	}
	if cfg.Tracer == nil {
		cfg.Tracer = c.Cfg.Trace.Tracer(fmt.Sprintf("device-%d", cfg.User))
	}
	return device.New(cfg, dialer, c.WAS, c.Sched)
}

// Close tears the deployment down: POPs, proxies, hosts, then the
// replication plane's link workers.
func (c *Cluster) Close() {
	for _, p := range c.POPs {
		p.Close()
	}
	for _, p := range c.Proxies {
		p.Close()
	}
	for _, h := range c.Hosts {
		h.Close()
	}
	if c.Plane != nil {
		c.Plane.Close()
	}
}

// TotalDecisions sums delivery decisions across all BRASS hosts.
func (c *Cluster) TotalDecisions() int64 {
	var total int64
	for _, h := range c.Hosts {
		total += h.Decisions.Value()
	}
	return total
}

// TotalDeliveries sums update deliveries across all BRASS hosts.
func (c *Cluster) TotalDeliveries() int64 {
	var total int64
	for _, h := range c.Hosts {
		total += h.Deliveries.Value()
	}
	return total
}

// Quiesce drains every BRASS host's event loops (tests).
func (c *Cluster) Quiesce() {
	for _, h := range c.Hosts {
		h.Quiesce()
	}
}
