package lint

import "go/token"

// hot-path-alloc: functions annotated //brlint:hotpath must be statically
// allocation-free on their non-error paths. The annotation is the static
// twin of the runtime 0 allocs/op benchmark gates (BENCH_3–5): the
// benchmarks prove the paths they execute, this rule proves the paths they
// don't — a regression on a branch the bench harness never takes (a rare
// cache state, an unusual frame type) is caught at lint time instead of in
// production.
//
// The rule reports, inside an annotated function:
//
//   - syntactic allocations: &T{...}, slice/map literals, make/new/append,
//     closures, go statements, string concatenation, string<->[]byte
//     conversions, boxing conversions into interfaces (explicit, at call
//     arguments, returns, and assignments);
//   - call edges that cannot be proven allocation-free: a call into a
//     module function whose transitive summary allocates, a stdlib call
//     outside the allocation-free allowlist, an interface call with a
//     dirty (or unresolvable) implementation, or any call through a
//     function value.
//
// Edges into other //brlint:hotpath functions are trusted: each annotated
// function is gated on its own, so the contract composes. Blocks that
// terminate by returning a non-nil error (or panicking) are failure paths
// outside the gate. //brlint:allow(hot-path-alloc) is the audited escape
// hatch for per-miss or sampled costs (slow-path hand-offs, active-span
// recording).

// HotPathAlloc implements the hot-path-alloc rule.
type HotPathAlloc struct{}

// Name implements Rule.
func (*HotPathAlloc) Name() string { return "hot-path-alloc" }

// Doc implements Rule.
func (*HotPathAlloc) Doc() string {
	return "//brlint:hotpath functions must be statically allocation-free"
}

// Check implements Rule.
func (r *HotPathAlloc) Check(c *Context) {
	if c.Prog == nil {
		return
	}
	for _, n := range c.Prog.NodesIn(c.Pkg) {
		if !n.Hotpath {
			continue
		}
		name := n.Name()
		c.Prog.scanAllocs(n, func(pos token.Pos, desc string) {
			c.Reportf(pos, "hot-path function %s: %s", name, desc)
		})
	}
}
