package durlog

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"bladerunner/internal/sim"
)

func testConfig(clk sim.Clock) Config {
	return Config{
		Clock:          clk,
		HotBytes:       64,
		SegmentEntries: 4,
		Segments:       3,
		Retention:      time.Minute,
	}
}

func payload(seq uint64) []byte { return []byte(fmt.Sprintf("m-%d", seq)) }

func mustRead(t *testing.T, l *Log, topic string, c Cursor) ([]Entry, Cursor) {
	t.Helper()
	out, next, err := l.ReadFrom(topic, c)
	if err != nil {
		t.Fatalf("ReadFrom(%v): %v", c, err)
	}
	return out, next
}

func TestAppendAndReadBasic(t *testing.T) {
	clk := sim.NewManualClock(time.Unix(0, 0))
	l := New(testConfig(clk))
	l.Open("/T/1")

	if l.Append("/T/unopened", 1, payload(1)) {
		t.Fatal("append on unopened topic succeeded")
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if !l.Append("/T/1", seq, payload(seq)) {
			t.Fatalf("append %d failed", seq)
		}
	}
	if l.Append("/T/1", 2, payload(2)) {
		t.Fatal("duplicate append succeeded")
	}
	if got := l.Dups.Value(); got != 1 {
		t.Fatalf("Dups = %d, want 1", got)
	}

	out, next := mustRead(t, l, "/T/1", Cursor{Epoch: 1, Seq: 0})
	if len(out) != 3 {
		t.Fatalf("got %d entries, want 3", len(out))
	}
	for i, e := range out {
		if e.Seq != uint64(i+1) || !bytes.Equal(e.Payload, payload(e.Seq)) {
			t.Fatalf("entry %d = {%d %q}", i, e.Seq, e.Payload)
		}
	}
	if next != (Cursor{Epoch: 1, Seq: 3}) {
		t.Fatalf("next cursor = %v", next)
	}

	// Caught-up cursor: empty batch, same tail.
	out, next = mustRead(t, l, "/T/1", next)
	if len(out) != 0 || next.Seq != 3 {
		t.Fatalf("caught-up read: %d entries, next %v", len(out), next)
	}

	// Unknown topic.
	if _, _, err := l.ReadFrom("/T/none", Cursor{Epoch: 1}); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("unknown topic err = %v", err)
	}
	// Wrong epoch.
	if _, _, err := l.ReadFrom("/T/1", Cursor{Epoch: 9, Seq: 1}); !errors.Is(err, ErrCursorExpired) {
		t.Fatalf("wrong-epoch err = %v", err)
	}
	// Beyond the tail (e.g. minted before a crash truncation).
	if _, _, err := l.ReadFrom("/T/1", Cursor{Epoch: 1, Seq: 99}); !errors.Is(err, ErrCursorExpired) {
		t.Fatalf("beyond-tail err = %v", err)
	}
}

func TestRotationAndStructuralEviction(t *testing.T) {
	clk := sim.NewManualClock(time.Unix(0, 0))
	l := New(testConfig(clk)) // 3 slabs x 4 entries
	l.Open("/T/1")

	// 12 entries fill the ring exactly; the 13th evicts the eldest slab.
	for seq := uint64(1); seq <= 13; seq++ {
		if !l.Append("/T/1", seq, payload(seq)) {
			t.Fatalf("append %d failed", seq)
		}
	}
	if l.Evictions.Value() == 0 {
		t.Fatal("no structural eviction after overfilling the ring")
	}
	_, floor, tail, _ := l.Window("/T/1")
	if tail != 13 {
		t.Fatalf("tail = %d, want 13", tail)
	}
	if floor != 5 {
		t.Fatalf("floor = %d, want 5 (eldest slab 1..4 evicted)", floor)
	}

	// A cursor inside the window reads gap-free to the tail.
	out, next := mustRead(t, l, "/T/1", Cursor{Epoch: 1, Seq: 6})
	want := uint64(7)
	for _, e := range out {
		if e.Seq != want {
			t.Fatalf("gap: got seq %d, want %d", e.Seq, want)
		}
		want++
	}
	if next.Seq != 13 || want != 14 {
		t.Fatalf("read ended at %d / next %v", want-1, next)
	}

	// A cursor below floor-1 expired.
	if _, _, err := l.ReadFrom("/T/1", Cursor{Epoch: 1, Seq: 3}); !errors.Is(err, ErrCursorExpired) {
		t.Fatalf("pre-floor cursor err = %v", err)
	}
	// floor-1 is the earliest servable position.
	ec, ok := l.EarliestCursor("/T/1")
	if !ok || ec.Seq != floor-1 {
		t.Fatalf("EarliestCursor = %v, %v", ec, ok)
	}
	if out, _ := mustRead(t, l, "/T/1", ec); len(out) == 0 || out[0].Seq != floor {
		t.Fatalf("earliest read starts at %d entries", len(out))
	}
}

func TestRetentionExpiry(t *testing.T) {
	clk := sim.NewManualClock(time.Unix(0, 0))
	l := New(testConfig(clk))
	l.Open("/T/1")

	for seq := uint64(1); seq <= 5; seq++ { // slab 1..4 sealed, 5 hot
		l.Append("/T/1", seq, payload(seq))
	}
	clk.Advance(2 * time.Minute) // past the 1m retention
	// The next append expires the sealed slab before writing.
	l.Append("/T/1", 6, payload(6))
	if l.Expirations.Value() == 0 {
		t.Fatal("no retention expiry")
	}
	if _, _, err := l.ReadFrom("/T/1", Cursor{Epoch: 1, Seq: 2}); !errors.Is(err, ErrCursorExpired) {
		t.Fatalf("expired-window cursor err = %v", err)
	}
	out, _ := mustRead(t, l, "/T/1", Cursor{Epoch: 1, Seq: 4})
	if len(out) != 2 || out[0].Seq != 5 || out[1].Seq != 6 {
		t.Fatalf("post-expiry window = %v", out)
	}
}

func TestGapResetBumpsEpoch(t *testing.T) {
	clk := sim.NewManualClock(time.Unix(0, 0))
	l := New(testConfig(clk))
	l.Open("/T/1")
	l.Append("/T/1", 1, payload(1))
	l.Append("/T/1", 2, payload(2))

	// Sequence 3..9 never appended: the log must refuse to bridge.
	l.Append("/T/1", 10, payload(10))
	if l.GapResets.Value() != 1 {
		t.Fatalf("GapResets = %d", l.GapResets.Value())
	}
	if _, _, err := l.ReadFrom("/T/1", Cursor{Epoch: 1, Seq: 2}); !errors.Is(err, ErrCursorExpired) {
		t.Fatalf("pre-gap cursor err = %v", err)
	}
	epoch, floor, tail, _ := l.Window("/T/1")
	if epoch != 2 || floor != 10 || tail != 10 {
		t.Fatalf("window after gap = epoch %d floor %d tail %d", epoch, floor, tail)
	}
	out, next := mustRead(t, l, "/T/1", Cursor{Epoch: 2, Seq: 9})
	if len(out) != 1 || out[0].Seq != 10 || next.Seq != 10 {
		t.Fatalf("post-gap read = %v next %v", out, next)
	}
}

func TestMidStreamFirstAppend(t *testing.T) {
	clk := sim.NewManualClock(time.Unix(0, 0))
	l := New(testConfig(clk))
	l.Open("/T/1")
	// A host that opens the topic mid-stream starts at the live sequence.
	l.Append("/T/1", 500, payload(500))
	l.Append("/T/1", 501, payload(501))
	_, floor, tail, _ := l.Window("/T/1")
	if floor != 500 || tail != 501 {
		t.Fatalf("window = floor %d tail %d", floor, tail)
	}
}

func TestOversizedPayloadPoisonsWindow(t *testing.T) {
	clk := sim.NewManualClock(time.Unix(0, 0))
	l := New(testConfig(clk))
	l.Open("/T/1")
	l.Append("/T/1", 1, payload(1))
	big := make([]byte, 1024) // > HotBytes 64
	if l.Append("/T/1", 2, big) {
		t.Fatal("oversized append succeeded")
	}
	if l.Oversized.Value() != 1 {
		t.Fatalf("Oversized = %d", l.Oversized.Value())
	}
	// Neither the old window nor the poisoned seq is servable...
	if _, _, err := l.ReadFrom("/T/1", Cursor{Epoch: 1, Seq: 1}); !errors.Is(err, ErrCursorExpired) {
		t.Fatalf("post-poison cursor err = %v", err)
	}
	// ...but the stream recovers once delivery continues.
	l.Append("/T/1", 3, payload(3))
	epoch, _, _, _ := l.Window("/T/1")
	out, _ := mustRead(t, l, "/T/1", Cursor{Epoch: epoch, Seq: 2})
	if len(out) != 1 || out[0].Seq != 3 {
		t.Fatalf("post-poison recovery read = %v", out)
	}
}

func TestCursorParseAndClamp(t *testing.T) {
	cases := []struct {
		in string
		ok bool
		c  Cursor
	}{
		{"1.5", true, Cursor{1, 5}},
		{"0.0", true, Cursor{0, 0}},
		{"18446744073709551615.1", true, Cursor{^uint64(0), 1}},
		{SentinelEarliest, false, Cursor{}},
		{SentinelLive, false, Cursor{}},
		{"", false, Cursor{}},
		{"5", false, Cursor{}},
		{".5", false, Cursor{}},
		{"5.", false, Cursor{}},
		{"a.b", false, Cursor{}},
		{"1.2.3", false, Cursor{}},
		{"-1.2", false, Cursor{}},
	}
	for _, tc := range cases {
		c, ok := Parse(tc.in)
		if ok != tc.ok || c != tc.c {
			t.Errorf("Parse(%q) = %v, %v; want %v, %v", tc.in, c, ok, tc.c, tc.ok)
		}
		if tc.ok {
			if rt := c.String(); rt != tc.in {
				t.Errorf("round trip %q -> %q", tc.in, rt)
			}
		}
	}

	// Clamp lowers over-claims, passes everything else through.
	if got := Clamp("1.9", 5); got != "1.5" {
		t.Errorf("Clamp(1.9, 5) = %q", got)
	}
	if got := Clamp("1.3", 5); got != "1.3" {
		t.Errorf("Clamp(1.3, 5) = %q", got)
	}
	if got := Clamp(SentinelEarliest, 5); got != SentinelEarliest {
		t.Errorf("Clamp(earliest, 5) = %q", got)
	}
	if got := Clamp("junk", 5); got != "junk" {
		t.Errorf("Clamp(junk, 5) = %q", got)
	}
}

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	clk := sim.NewManualClock(time.Unix(0, 0))
	l := New(testConfig(clk))
	l.Open("/T/1")
	l.Open("/T/2")
	for seq := uint64(1); seq <= 7; seq++ {
		l.Append("/T/1", seq, payload(seq))
	}
	l.Append("/T/2", 100, payload(100)) // mid-stream topic, epoch 2

	snap := l.Checkpoint()

	l2 := New(testConfig(clk))
	if err := l2.Recover(snap); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	for _, topic := range []string{"/T/1", "/T/2"} {
		e1, f1, t1, _ := l.Window(topic)
		e2, f2, t2, _ := l2.Window(topic)
		if e1 != e2 || f1 != f2 || t1 != t2 {
			t.Fatalf("%s: window mismatch (%d %d %d) vs (%d %d %d)", topic, e1, f1, t1, e2, f2, t2)
		}
		ec, _ := l.EarliestCursor(topic)
		o1, n1 := mustRead(t, l, topic, ec)
		o2, n2 := mustRead(t, l2, topic, ec)
		if len(o1) != len(o2) || n1 != n2 {
			t.Fatalf("%s: recovered read mismatch", topic)
		}
		for i := range o1 {
			if o1[i].Seq != o2[i].Seq || !bytes.Equal(o1[i].Payload, o2[i].Payload) {
				t.Fatalf("%s: entry %d mismatch", topic, i)
			}
		}
	}
	if err := l2.Recover(snap); err == nil {
		t.Fatal("Recover on a populated log succeeded")
	}
}
