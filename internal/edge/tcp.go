package edge

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPNetwork is a Dialer backed by real TCP sockets: the multi-process
// counterpart of PipeNetwork. Target names resolve through an address book
// (target -> host:port), so the code above the Dialer seam — devices,
// proxies, megadevice trunks — is identical in-process and over the wire.
//
// The serving side calls Listen, which binds a real net.Listener and feeds
// accepted conns to the accept callback, mirroring PipeNetwork.Register's
// contract. Fault injection (SetDown, sever) is deliberately absent: faults
// on a real network are injected by killing processes, which is what the
// multi-process chaos tests do.
type TCPNetwork struct {
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration

	mu     sync.Mutex
	addrs  map[string]string // target -> dial address
	lns    map[string]net.Listener
	dials  map[string]int
	closed bool

	wg sync.WaitGroup // accept loops
}

// NewTCPNetwork returns a network with an empty address book.
func NewTCPNetwork() *TCPNetwork {
	return &TCPNetwork{
		DialTimeout: 5 * time.Second,
		addrs:       make(map[string]string),
		lns:         make(map[string]net.Listener),
		dials:       make(map[string]int),
	}
}

// SetAddr maps a target name to a dial address. Existing entries are
// replaced, so bootstrap config can be applied incrementally.
func (n *TCPNetwork) SetAddr(target, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addrs[target] = addr
}

// Addr returns the dial address for target ("" when unknown).
func (n *TCPNetwork) Addr(target string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.addrs[target]
}

// Listen binds addr (e.g. "127.0.0.1:0") for target and feeds every
// accepted connection to accept. It returns the bound address — with ":0"
// that is how the caller learns the kernel-assigned port — and records it
// in the address book so in-process peers can dial the target by name.
func (n *TCPNetwork) Listen(target, addr string, accept func(io.ReadWriteCloser)) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("edge: listen %s for %q: %w", addr, target, err)
	}
	bound := ln.Addr().String()
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = ln.Close()
		return "", fmt.Errorf("edge: network closed")
	}
	if old, ok := n.lns[target]; ok {
		_ = old.Close()
	}
	n.lns[target] = ln
	n.addrs[target] = bound
	n.wg.Add(1)
	n.mu.Unlock()
	go func() {
		defer n.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			tuneConn(c)
			accept(c)
		}
	}()
	return bound, nil
}

// Serve is Listen on a loopback ephemeral port — the form tests use.
func (n *TCPNetwork) Serve(target string, accept func(io.ReadWriteCloser)) (string, error) {
	return n.Listen(target, "127.0.0.1:0", accept)
}

// Dial implements Dialer: it resolves target through the address book and
// opens a real TCP connection.
func (n *TCPNetwork) Dial(target string) (io.ReadWriteCloser, error) {
	n.mu.Lock()
	addr, ok := n.addrs[target]
	timeout := n.DialTimeout
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTarget, target)
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("edge: dial %q (%s): %w", target, addr, err)
	}
	tuneConn(c)
	n.mu.Lock()
	n.dials[target]++
	n.mu.Unlock()
	return c, nil
}

// DialCount reports how many successful dials target has received from
// this side (parity with PipeNetwork; counts are per-process here).
func (n *TCPNetwork) DialCount(target string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dials[target]
}

// Close shuts every listener down and waits for the accept loops to exit.
// Established connections are owned by their sessions and are not touched.
func (n *TCPNetwork) Close() {
	n.mu.Lock()
	n.closed = true
	lns := make([]net.Listener, 0, len(n.lns))
	for _, ln := range n.lns {
		lns = append(lns, ln)
	}
	n.lns = make(map[string]net.Listener)
	n.mu.Unlock()
	for _, ln := range lns {
		_ = ln.Close()
	}
	n.wg.Wait()
}

// tuneConn applies the latency-sensitive socket options BURST wants:
// every frame is flushed individually, so Nagle coalescing only adds
// round trips.
func tuneConn(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
		_ = tc.SetKeepAlive(true)
	}
}

var _ Dialer = (*TCPNetwork)(nil)
