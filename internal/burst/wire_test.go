package burst

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameSubscribe, SID: 1, Payload: []byte(`{"header":{"app":"lvc"}}`)},
		{Type: FrameCancel, SID: 42, Payload: []byte(`{}`)},
		{Type: FrameAck, SID: 7, Payload: []byte(`{"seq":9}`)},
		{Type: FrameBatch, SID: 1 << 40, Payload: []byte(`{"deltas":[]}`)},
		{Type: FramePing},
		{Type: FramePong},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.SID != want.SID || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("expected EOF at end, got %v", err)
	}
}

func TestReadFrameRejectsUnknownType(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(0xEE)
	buf.Write(make([]byte, 12))
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("unknown frame type accepted")
	}
}

func TestReadFrameRejectsOversizedPayload(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(byte(FrameBatch))
	buf.Write(make([]byte, 8))
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB length
	if _, err := ReadFrame(&buf); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized payload: %v", err)
	}
}

func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	err := WriteFrame(io.Discard, Frame{Type: FrameBatch, Payload: make([]byte, MaxPayload+1)})
	if err == nil {
		t.Error("oversized write accepted")
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: FrameBatch, SID: 1, Payload: []byte("abcdef")}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestSubscribeEncodeDecode(t *testing.T) {
	sub := Subscribe{
		Header: Header{HdrApp: "lvc", HdrTopic: "/LVC/9", HdrUser: "77"},
		Body:   []byte{0x01, 0x02, 0xFF},
	}
	b, err := EncodePayload(sub)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSubscribe(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sub) {
		t.Errorf("roundtrip: got %+v want %+v", got, sub)
	}
}

func TestBatchEncodeDecode(t *testing.T) {
	batch := Batch{Deltas: []Delta{
		PayloadDelta(3, []byte("comment")),
		FlowStatusDelta(FlowRecovered, "proxy back"),
		RewriteDelta(Header{HdrStickyBRASS: "brass-7"}, nil),
		TerminationDelta("load shed"),
	}}
	b, err := EncodePayload(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Deltas) != 4 {
		t.Fatalf("deltas = %d", len(got.Deltas))
	}
	if got.Deltas[0].Type != DeltaPayload || got.Deltas[0].Seq != 3 || string(got.Deltas[0].Payload) != "comment" {
		t.Errorf("payload delta: %+v", got.Deltas[0])
	}
	if got.Deltas[1].Flow != FlowRecovered || got.Deltas[1].FlowDetail != "proxy back" {
		t.Errorf("flow delta: %+v", got.Deltas[1])
	}
	if got.Deltas[2].Header[HdrStickyBRASS] != "brass-7" {
		t.Errorf("rewrite delta: %+v", got.Deltas[2])
	}
	if got.Deltas[3].Reason != "load shed" {
		t.Errorf("termination delta: %+v", got.Deltas[3])
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []byte("{not json")
	if _, err := DecodeSubscribe(bad); err == nil {
		t.Error("bad subscribe accepted")
	}
	if _, err := DecodeCancel(bad); err == nil {
		t.Error("bad cancel accepted")
	}
	if _, err := DecodeAck(bad); err == nil {
		t.Error("bad ack accepted")
	}
	if _, err := DecodeBatch(bad); err == nil {
		t.Error("bad batch accepted")
	}
}

func TestHeaderClone(t *testing.T) {
	h := Header{HdrApp: "x"}
	c := h.Clone()
	c[HdrApp] = "y"
	if h[HdrApp] != "x" {
		t.Error("clone aliased original")
	}
	if Header(nil).Clone() != nil {
		t.Error("nil clone should be nil")
	}
}

func TestTypeStrings(t *testing.T) {
	if FrameSubscribe.String() != "subscribe" || FrameType(99).String() == "" {
		t.Error("FrameType.String broken")
	}
	if DeltaFlowStatus.String() != "flow_status" || DeltaType(99).String() == "" {
		t.Error("DeltaType.String broken")
	}
	if FlowDegraded.String() != "degraded" || FlowCode(99).String() == "" {
		t.Error("FlowCode.String broken")
	}
}

// Property: any frame with a valid type and bounded payload round-trips.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(typ uint8, sid uint64, payload []byte) bool {
		ft := FrameType(typ%6) + 1
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		in := Frame{Type: ft, SID: StreamID(sid), Payload: payload}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, in); err != nil {
			return false
		}
		out, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		if len(in.Payload) == 0 {
			return out.Type == in.Type && out.SID == in.SID && len(out.Payload) == 0
		}
		return out.Type == in.Type && out.SID == in.SID && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
