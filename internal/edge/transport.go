package edge

import (
	"io"
	"math/rand"
	"sync"
	"time"

	"bladerunner/internal/sim"
)

// LastMileConn wraps a transport with the characteristics of a constrained
// mobile link (§1 challenge 3: 2G infrastructure, metered bandwidth): a
// per-write latency and a bandwidth cap enforced by blocking the writer —
// the backpressure a congested last mile really applies.
type LastMileConn struct {
	Inner io.ReadWriteCloser
	// Latency is added to every write (one-way).
	Latency time.Duration
	// BytesPerSec caps throughput; 0 = unlimited.
	BytesPerSec int
	// Clock drives the latency/bandwidth model; nil means the wall clock.
	// Injecting a virtual Scheduler lets the experiment harness run link
	// models in simulated time.
	Clock sim.Scheduler

	mu        sync.Mutex
	debt      time.Duration
	lastWrite time.Time
}

// clock returns the configured Scheduler or the wall clock.
func (c *LastMileConn) clock() sim.Scheduler {
	if c.Clock != nil {
		return c.Clock
	}
	return sim.RealClock{}
}

// Read passes through.
func (c *LastMileConn) Read(p []byte) (int, error) { return c.Inner.Read(p) }

// Write delays by the link latency plus accumulated serialization time at
// the configured bandwidth, then forwards.
func (c *LastMileConn) Write(p []byte) (int, error) {
	clock := c.clock()
	delay := c.Latency
	if c.BytesPerSec > 0 {
		c.mu.Lock()
		now := clock.Now()
		if !c.lastWrite.IsZero() {
			// Pay down serialization debt with elapsed time.
			c.debt -= now.Sub(c.lastWrite)
			if c.debt < 0 {
				c.debt = 0
			}
		}
		c.lastWrite = now
		serial := time.Duration(float64(len(p)) / float64(c.BytesPerSec) * float64(time.Second))
		c.debt += serial
		delay += c.debt
		c.mu.Unlock()
	}
	if delay > 0 {
		sim.Sleep(clock, delay)
	}
	return c.Inner.Write(p)
}

// Close passes through.
func (c *LastMileConn) Close() error { return c.Inner.Close() }

// FlakyConn fails its transport after a configured number of written bytes,
// injecting the mid-stream connection drops that dominate Bladerunner's
// failure budget (Fig 10 top).
type FlakyConn struct {
	Inner io.ReadWriteCloser
	// FailAfterBytes kills the conn once this many bytes were written.
	FailAfterBytes int
	// DropProb fails any individual write with this probability.
	DropProb float64
	// Rng drives DropProb; nil uses a fixed seed.
	Rng *rand.Rand

	mu      sync.Mutex
	written int
	dead    bool
}

// Read passes through until the conn is dead.
func (c *FlakyConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return 0, io.ErrClosedPipe
	}
	return c.Inner.Read(p)
}

// Write forwards until the failure condition triggers, then kills the
// transport for both directions.
func (c *FlakyConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, io.ErrClosedPipe
	}
	if c.Rng == nil {
		c.Rng = rand.New(rand.NewSource(0xF1A))
	}
	c.written += len(p)
	shouldDie := (c.FailAfterBytes > 0 && c.written > c.FailAfterBytes) ||
		(c.DropProb > 0 && c.Rng.Float64() < c.DropProb)
	if shouldDie {
		c.dead = true
		c.mu.Unlock()
		_ = c.Inner.Close()
		return 0, io.ErrClosedPipe
	}
	c.mu.Unlock()
	return c.Inner.Write(p)
}

// Close passes through.
func (c *FlakyConn) Close() error {
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
	return c.Inner.Close()
}

// TransformDialer wraps another Dialer, applying a transform to every
// connection it opens — the hook for inserting LastMileConn/FlakyConn link
// models into any topology (e.g. between devices and POPs in a Cluster).
type TransformDialer struct {
	Inner     Dialer
	Transform func(io.ReadWriteCloser) io.ReadWriteCloser
}

// Dial implements Dialer.
func (d TransformDialer) Dial(target string) (io.ReadWriteCloser, error) {
	rwc, err := d.Inner.Dial(target)
	if err != nil {
		return nil, err
	}
	if d.Transform != nil {
		return d.Transform(rwc), nil
	}
	return rwc, nil
}

var _ Dialer = TransformDialer{}
