package pylon

import (
	"time"

	"bladerunner/internal/sim"
)

// WaitForSubscriber blocks until topic has at least one registered
// subscriber or timeout elapses on sched, polling the CP subscription
// store. It reports whether a subscriber appeared. Demo drivers and the
// switchover experiment use it to wait for a BRASS host's subscription
// manager to register a topic before publishing; polling on the injected
// Scheduler keeps the wait deterministic under virtual time.
func (s *Service) WaitForSubscriber(sched sim.Scheduler, topic Topic, timeout time.Duration) bool {
	if sched == nil {
		sched = sim.RealClock{}
	}
	deadline := sched.Now().Add(timeout)
	for len(s.Subscribers(topic)) == 0 {
		if !sched.Now().Before(deadline) {
			return false
		}
		sim.Sleep(sched, time.Millisecond)
	}
	return true
}
