// Package lockblock is a brlint fixture for the no-lock-across-block rule:
// channel sends/receives, selects, ranges over channels, and known blocking
// calls made while a sync.Mutex or sync.RWMutex is held must be flagged;
// non-blocking selects, properly released locks, and goroutine bodies
// spawned under a lock must pass.
package lockblock

import "sync"

type Box struct {
	mu sync.Mutex
	rw sync.RWMutex
	wg sync.WaitGroup
	ch chan int
}

func (b *Box) SendUnderLock() {
	b.mu.Lock()
	b.ch <- 1 // want `no-lock-across-block: channel send while holding b.mu`
	b.mu.Unlock()
}

func (b *Box) RecvUnderDeferredLock() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want `no-lock-across-block: channel receive while holding b.mu`
}

func (b *Box) SelectUnderRLock() {
	b.rw.RLock()
	select { // want `no-lock-across-block: select while holding b.rw`
	case v := <-b.ch:
		_ = v
	}
	b.rw.RUnlock()
}

func (b *Box) WaitUnderLock() {
	b.mu.Lock()
	b.wg.Wait() // want `no-lock-across-block: blocking call to sync.WaitGroup.Wait while holding b.mu`
	b.mu.Unlock()
}

func (b *Box) RangeUnderLock() int {
	total := 0
	b.mu.Lock()
	for v := range b.ch { // want `no-lock-across-block: range over channel while holding b.mu`
		total += v
	}
	b.mu.Unlock()
	return total
}

// ReleasedIsFine: the send happens after the unlock.
func (b *Box) ReleasedIsFine() {
	b.mu.Lock()
	b.mu.Unlock()
	b.ch <- 1
}

// NonBlockingSendIsFine: a select with a default clause never blocks — this
// is the BURST client / device delivery idiom.
func (b *Box) NonBlockingSendIsFine() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.ch <- 1:
	default:
	}
}

// EarlyUnlockReturnIsFine: the terminating branch keeps its lock state to
// itself; the fall-through path unlocks before the send.
func (b *Box) EarlyUnlockReturnIsFine(dead bool) {
	b.mu.Lock()
	if dead {
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	b.ch <- 2
}

// GoroutineBodyIsFine: the literal runs on its own goroutine with its own
// (empty) lock state; the spawner's lock is not held there.
func (b *Box) GoroutineBodyIsFine() {
	b.mu.Lock()
	go func() {
		b.ch <- 9
	}()
	b.mu.Unlock()
}

// Allowed demonstrates the escape hatch for a send the author has proven
// safe.
func (b *Box) Allowed() {
	b.mu.Lock()
	//brlint:allow(no-lock-across-block) fixture: channel is buffered and drained by the test itself
	b.ch <- 3
	b.mu.Unlock()
}
