package metrics

import (
	"fmt"
	"sync"
	"time"
)

// TimeSeries accumulates values into fixed-width time buckets over a window
// [Start, Start+Width*Buckets). It backs the diurnal figures (Fig 8 and
// Fig 10 in the paper), which report per-minute rates averaged over 15-minute
// intervals.
type TimeSeries struct {
	mu     sync.Mutex
	start  time.Time
	width  time.Duration
	sums   []float64
	counts []int64
}

// NewTimeSeries returns a TimeSeries with n buckets of the given width
// starting at start.
func NewTimeSeries(start time.Time, width time.Duration, n int) *TimeSeries {
	if width <= 0 || n <= 0 {
		panic(fmt.Sprintf("metrics: invalid time series width=%v n=%d", width, n))
	}
	return &TimeSeries{
		start:  start,
		width:  width,
		sums:   make([]float64, n),
		counts: make([]int64, n),
	}
}

// Add records v at time t. Observations outside the window are dropped.
func (ts *TimeSeries) Add(t time.Time, v float64) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	i := ts.index(t)
	if i < 0 {
		return
	}
	ts.sums[i] += v
	ts.counts[i]++
}

// Inc records an occurrence (v=1) at time t.
func (ts *TimeSeries) Inc(t time.Time) { ts.Add(t, 1) }

func (ts *TimeSeries) index(t time.Time) int {
	d := t.Sub(ts.start)
	if d < 0 {
		return -1
	}
	i := int(d / ts.width)
	if i >= len(ts.sums) {
		return -1
	}
	return i
}

// Buckets returns the number of buckets.
func (ts *TimeSeries) Buckets() int { return len(ts.sums) }

// Width returns the bucket width.
func (ts *TimeSeries) Width() time.Duration { return ts.width }

// Start returns the window start.
func (ts *TimeSeries) Start() time.Time { return ts.start }

// BucketTime returns the start time of bucket i.
func (ts *TimeSeries) BucketTime(i int) time.Time {
	return ts.start.Add(time.Duration(i) * ts.width)
}

// Sum returns the total recorded value in bucket i.
func (ts *TimeSeries) Sum(i int) float64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.sums[i]
}

// Count returns the number of observations in bucket i.
func (ts *TimeSeries) Count(i int) int64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.counts[i]
}

// Mean returns the mean observation in bucket i, or 0 if empty.
func (ts *TimeSeries) Mean(i int) float64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.counts[i] == 0 {
		return 0
	}
	return ts.sums[i] / float64(ts.counts[i])
}

// RatePerMinute returns bucket i's total divided by the bucket width in
// minutes — the paper's per-minute rate averaged over the bucket.
func (ts *TimeSeries) RatePerMinute(i int) float64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.sums[i] / ts.width.Minutes()
}

// Totals returns a copy of the per-bucket sums.
func (ts *TimeSeries) Totals() []float64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]float64, len(ts.sums))
	copy(out, ts.sums)
	return out
}

// Max returns the largest per-bucket sum and the index of its bucket —
// the peak of the series (e.g. the worst dial-rate spike during a
// reconnect storm). An all-empty series returns (0, 0).
func (ts *TimeSeries) Max() (peak float64, bucket int) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for i, s := range ts.sums {
		if s > peak {
			peak, bucket = s, i
		}
	}
	return peak, bucket
}

// GrandTotal returns the sum over all buckets.
func (ts *TimeSeries) GrandTotal() float64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	var total float64
	for _, s := range ts.sums {
		total += s
	}
	return total
}
