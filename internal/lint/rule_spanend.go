package lint

import (
	"go/ast"
	"go/token"
)

// SpanMustEnd flags trace spans that are started but not ended on some
// return path. A span opened with trace.Tracer.Start measures one hop; if a
// return path skips Span.End, the hop silently vanishes from every
// assembled trace that crosses it — the kind of gap that makes a recovery
// path look instantaneous in a latency breakdown.
//
// The analysis tracks local variables assigned directly from a
// (*trace.Tracer).Start call. A span is considered released when End is
// called on it (directly or via defer), or when it escapes the function —
// returned, passed as a call argument, assigned onward, or captured by a
// function literal — since responsibility for ending it moves with the
// value. Open spans are reported at each return statement and at
// fall-off-the-end, per branch, mirroring the no-lock-across-block walk.
type SpanMustEnd struct {
	// ModPath qualifies the trace package (ModPath + "/internal/trace").
	ModPath string
}

func (r *SpanMustEnd) Name() string { return "span-must-end" }

func (r *SpanMustEnd) Doc() string {
	return "a span returned by trace.Tracer.Start must reach Span.End on every return path"
}

func (r *SpanMustEnd) Check(c *Context) {
	tracePkg := r.ModPath + "/internal/trace"
	w := &spanWalker{
		c:     c,
		start: "(*" + tracePkg + ".Tracer).Start",
		end:   "(*" + tracePkg + ".Span).End",
	}
	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.scanFunc(fn.Body)
				}
			case *ast.FuncLit:
				w.scanFunc(fn.Body)
			}
			return true
		})
	}
}

type spanWalker struct {
	c          *Context
	start, end string
}

func (w *spanWalker) scanFunc(body *ast.BlockStmt) {
	open := map[string]token.Pos{}
	w.scanStmts(body.List, open)
	if !terminates(body.List) {
		w.reportOpen(body.Rbrace, open)
	}
}

func (w *spanWalker) reportOpen(pos token.Pos, open map[string]token.Pos) {
	for name, at := range open {
		w.c.Reportf(at, "span %s started here does not reach End on the return path at %s",
			name, w.c.Fset.Position(pos))
		delete(open, name)
	}
}

// isStartCall reports whether expr is a direct (*trace.Tracer).Start call.
func (w *spanWalker) isStartCall(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	return ok && calleeFullName(w.c.Pkg.Info, call) == w.start
}

// endedSpan returns the receiver identifier name if expr is an End call on
// a plain identifier ("" otherwise).
func (w *spanWalker) endedSpan(expr ast.Expr) string {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || calleeFullName(w.c.Pkg.Info, call) != w.end {
		return ""
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// releaseEscapes drops every tracked span whose identifier appears in expr
// in an escaping position: as a call argument, on either side of a nested
// assignment, inside a composite literal, address-taken, or captured by a
// function literal. Method calls on the span itself (sp.Annotate(...)) do
// not release it — the span is the receiver there, not an argument.
func (w *spanWalker) releaseEscapes(expr ast.Expr, open map[string]token.Pos) {
	if expr == nil || len(open) == 0 {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			for _, arg := range x.Args {
				w.releaseIdents(arg, open)
			}
			// Receiver position does not escape; skip sel.X for selector
			// calls by descending only into the arguments (handled above).
			if _, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				return false
			}
		case *ast.FuncLit:
			w.releaseIdents(x.Body, open)
			return false
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				w.releaseIdents(elt, open)
			}
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				w.releaseIdents(x.X, open)
				return false
			}
		}
		return true
	})
}

// releaseIdents removes every tracked span named anywhere under n.
func (w *spanWalker) releaseIdents(n ast.Node, open map[string]token.Pos) {
	if n == nil || len(open) == 0 {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok {
			delete(open, id.Name)
		}
		return true
	})
}

func (w *spanWalker) scanStmts(stmts []ast.Stmt, open map[string]token.Pos) {
	for _, st := range stmts {
		w.scanStmt(st, open)
	}
}

// scanBranch mirrors lockWalker.scanBranch: branches that terminate keep
// their span-state changes local; fall-through branches propagate theirs.
func (w *spanWalker) scanBranch(stmts []ast.Stmt, open map[string]token.Pos) {
	clone := make(map[string]token.Pos, len(open))
	for k, v := range open {
		clone[k] = v
	}
	w.scanStmts(stmts, clone)
	if !terminates(stmts) {
		for k := range open {
			delete(open, k)
		}
		for k, v := range clone {
			open[k] = v
		}
	}
}

func (w *spanWalker) scanStmt(st ast.Stmt, open map[string]token.Pos) {
	switch s := st.(type) {
	case *ast.AssignStmt:
		// Spans escaping through the RHS of other assignments, or being
		// reassigned onward (x := sp), are released first.
		for _, e := range s.Rhs {
			if !w.isStartCall(e) {
				w.releaseEscapes(e, open)
				w.releaseIdents(e, open)
			}
		}
		// Then track fresh sp := tracer.Start(...) bindings.
		if len(s.Lhs) == len(s.Rhs) {
			for i, rhs := range s.Rhs {
				if !w.isStartCall(rhs) {
					continue
				}
				if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					open[id.Name] = rhs.Pos()
				}
			}
		}
	case *ast.ExprStmt:
		if name := w.endedSpan(s.X); name != "" {
			delete(open, name)
			return
		}
		w.releaseEscapes(s.X, open)
	case *ast.DeferStmt:
		if name := w.endedSpan(s.Call); name != "" {
			delete(open, name)
			return
		}
		w.releaseEscapes(s.Call, open)
	case *ast.GoStmt:
		w.releaseEscapes(s.Call, open)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.releaseIdents(e, open)
		}
		w.reportOpen(s.Return, open)
	case *ast.IfStmt:
		if s.Init != nil {
			w.scanStmt(s.Init, open)
		}
		w.releaseEscapes(s.Cond, open)
		w.scanBranch(s.Body.List, open)
		if s.Else != nil {
			w.scanBranch([]ast.Stmt{s.Else}, open)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.scanStmt(s.Init, open)
		}
		w.scanBranch(s.Body.List, open)
	case *ast.RangeStmt:
		w.scanBranch(s.Body.List, open)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.scanStmt(s.Init, open)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.scanBranch(cc.Body, open)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.scanStmt(s.Init, open)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.scanBranch(cc.Body, open)
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				w.scanBranch(cc.Body, open)
			}
		}
	case *ast.BlockStmt:
		w.scanStmts(s.List, open)
	case *ast.LabeledStmt:
		w.scanStmt(s.Stmt, open)
	}
}
