package brass

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"bladerunner/internal/burst"
	"bladerunner/internal/overload"
	"bladerunner/internal/pylon"
)

// gateApp blocks its event loop inside OnEvent until released, letting
// tests saturate an instance's bounded task queue deterministically.
type gateApp struct {
	gate chan struct{}
	once sync.Once

	mu     sync.Mutex
	events int
	acks   []uint64
}

// release opens the gate exactly once (also used as a cleanup so a failed
// assertion cannot leave host.Close joining a forever-blocked loop).
func (a *gateApp) release() { a.once.Do(func() { close(a.gate) }) }

func (a *gateApp) Name() string { return "gate" }

type gateInstance struct {
	app *gateApp
	rt  *Runtime
}

func (a *gateApp) NewInstance(rt *Runtime) AppInstance {
	return &gateInstance{app: a, rt: rt}
}

func (g *gateInstance) OnStreamOpen(st *Stream) error {
	return st.AddTopic(pylon.Topic(st.Header(burst.HdrTopic)))
}

func (g *gateInstance) OnStreamClose(st *Stream, reason string) {}

func (g *gateInstance) OnEvent(ev pylon.Event) {
	<-g.app.gate
	g.app.mu.Lock()
	g.app.events++
	g.app.mu.Unlock()
}

func (g *gateInstance) OnAck(st *Stream, seq uint64) {
	g.app.mu.Lock()
	g.app.acks = append(g.app.acks, seq)
	g.app.mu.Unlock()
}

func (a *gateApp) eventCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.events
}

func (a *gateApp) ackCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.acks)
}

// collect drains a client stream's events in the background, recording
// flow deltas in arrival order.
type flowCollector struct {
	mu    sync.Mutex
	flows []burst.Delta
}

func (c *flowCollector) run(cs *burst.ClientStream) {
	for batch := range cs.Events {
		for _, d := range batch {
			if d.Type == burst.DeltaFlowStatus {
				c.mu.Lock()
				c.flows = append(c.flows, d)
				c.mu.Unlock()
			}
		}
	}
}

func (c *flowCollector) snapshot() []burst.Delta {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]burst.Delta(nil), c.flows...)
}

// A saturated instance loop sheds its oldest Data-class delivery, signals
// FlowDegraded with a shed marker to every stream, never sheds
// Control-class work (acks), and signals FlowRecovered once drained.
func TestLoopSaturationShedsDataSignalsFlow(t *testing.T) {
	app := &gateApp{gate: make(chan struct{})}
	host := NewHost(HostConfig{ID: "brass-ovl", Region: "us", LoopQueueDepth: 2},
		nil, nil, nil)
	host.RegisterApp(app)
	t.Cleanup(host.Close)
	t.Cleanup(app.release) // runs before host.Close: never join a blocked loop

	a, b := net.Pipe()
	cli := burst.NewClient("device", a, nil)
	host.AcceptSession("host-side", b)
	t.Cleanup(func() { cli.Close() })
	cs, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{
		burst.HdrApp:   "gate",
		burst.HdrTopic: "/t",
		burst.HdrUser:  "7",
	}})
	if err != nil {
		t.Fatal(err)
	}
	col := &flowCollector{}
	go col.run(cs)
	waitFor(t, "stream open", func() bool { return host.StreamsOpened.Value() == 1 })

	// First delivery blocks the loop inside OnEvent; the queue (depth 2)
	// fills behind it, and further deliveries shed the oldest Data task.
	const deliveries = 10
	for i := 0; i < deliveries; i++ {
		host.Deliver(pylon.Event{ID: uint64(i + 1), Topic: "/t"})
	}
	waitFor(t, "loop sheds", func() bool { return host.LoopOverflows.Value() > 0 })
	waitFor(t, "degraded signal", func() bool {
		for _, d := range col.snapshot() {
			if d.Flow == burst.FlowDegraded && overload.IsShedMarker(d.FlowDetail) {
				return true
			}
		}
		return false
	})

	// Control work posted while shedding must survive: queue acks behind
	// the blocked loop, beyond the queue depth (2 Data tasks already hold
	// the whole bound, so every ack exceeds it — and must still land).
	for i := 0; i < 5; i++ {
		if err := cs.Ack(uint64(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	inst, err := host.Instance("gate")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "acks enqueued as control", func() bool {
		// Each Control ack displaces one queued Data delivery (Control
		// makes room by shedding Data, never the reverse); once the
		// queued deliveries are gone the bound is exceeded instead. The
		// blocked queue ends up holding exactly the 5 acks.
		return inst.tasks.Len() == 5
	})

	app.release() // release the loop
	waitFor(t, "acks processed", func() bool { return app.ackCount() == 5 })
	waitFor(t, "recovered signal", func() bool {
		for _, d := range col.snapshot() {
			if d.Flow == burst.FlowRecovered &&
				strings.HasPrefix(d.FlowDetail, overload.RecoveredMarkerPrefix) {
				return true
			}
		}
		return false
	})
	// Conservation: every delivery was either processed or counted shed.
	waitFor(t, "deliveries drain", func() bool {
		return app.eventCount()+int(host.LoopOverflows.Value()) == deliveries
	})
}

// captureApp records the server-side Stream so tests can Push directly.
type captureApp struct {
	mu sync.Mutex
	st *Stream
}

func (a *captureApp) Name() string { return "cap" }

type captureInstance struct{ app *captureApp }

func (a *captureApp) NewInstance(rt *Runtime) AppInstance { return &captureInstance{app: a} }

func (c *captureInstance) OnStreamOpen(st *Stream) error {
	c.app.mu.Lock()
	c.app.st = st
	c.app.mu.Unlock()
	return nil
}
func (c *captureInstance) OnStreamClose(st *Stream, reason string) {}
func (c *captureInstance) OnEvent(ev pylon.Event)                  {}
func (c *captureInstance) OnAck(st *Stream, seq uint64)            {}

func (a *captureApp) stream() *Stream {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.st
}

func newStreamAdmissionHost(t *testing.T, app Application) *Host {
	t.Helper()
	host := NewHost(HostConfig{
		ID:     "brass-sa",
		Region: "us",
		// One token, refilled every 200ms: the first Push is admitted,
		// an immediate second Push sheds.
		StreamDeliverRate:  5,
		StreamDeliverBurst: 1,
	}, nil, nil, nil)
	host.RegisterApp(app)
	t.Cleanup(host.Close)
	return host
}

type recordedBatches struct {
	mu      sync.Mutex
	batches [][]burst.Delta
}

func (r *recordedBatches) run(cs *burst.ClientStream) {
	for batch := range cs.Events {
		r.mu.Lock()
		r.batches = append(r.batches, batch)
		r.mu.Unlock()
	}
}

func (r *recordedBatches) deltas() []burst.Delta {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []burst.Delta
	for _, b := range r.batches {
		out = append(out, b...)
	}
	return out
}

// Per-stream delivery admission: over-rate payload batches shed (control
// passes), exactly one FlowDegraded with a shed marker marks the episode,
// the bucket state is persisted to the stream header, and the first
// admitted batch afterwards emits FlowRecovered before its payload.
func TestStreamAdmissionShedsPayloadsKeepsControl(t *testing.T) {
	app := &captureApp{}
	host := newStreamAdmissionHost(t, app)

	a, b := net.Pipe()
	cli := burst.NewClient("device", a, nil)
	host.AcceptSession("host-side", b)
	t.Cleanup(func() { cli.Close() })
	cs, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{
		burst.HdrApp:  "cap",
		burst.HdrUser: "7",
	}})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordedBatches{}
	go rec.run(cs)
	waitFor(t, "stream captured", func() bool { return app.stream() != nil })
	st := app.stream()

	if err := st.Push(burst.PayloadDelta(1, []byte("p1"))); err != nil {
		t.Fatal(err) // bucket starts full: admitted
	}
	// Immediate second push: no token. Payload sheds; the batch's control
	// delta still goes through.
	if err := st.Push(
		burst.PayloadDelta(2, []byte("p2")),
		burst.FlowStatusDelta(burst.FlowRerouted, "moving"),
	); err != nil {
		t.Fatal(err)
	}
	if got := host.StreamSheds.Value(); got != 1 {
		t.Errorf("StreamSheds = %d, want 1", got)
	}
	if got := host.Deliveries.Value(); got != 1 {
		t.Errorf("Deliveries = %d, want 1 (shed payloads must not count)", got)
	}

	// Refill one token and push again: FlowRecovered precedes the payload.
	time.Sleep(400 * time.Millisecond)
	if err := st.Push(burst.PayloadDelta(3, []byte("p3"))); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "all deltas arrive", func() bool {
		var seqs []uint64
		for _, d := range rec.deltas() {
			if d.Type == burst.DeltaPayload {
				seqs = append(seqs, d.Seq)
			}
		}
		return len(seqs) == 2 && seqs[0] == 1 && seqs[1] == 3
	})
	var kinds []string
	for _, d := range rec.deltas() {
		switch {
		case d.Type == burst.DeltaPayload:
			kinds = append(kinds, "payload")
		case d.Flow == burst.FlowDegraded && overload.IsShedMarker(d.FlowDetail):
			kinds = append(kinds, "degraded-shed")
		case d.Flow == burst.FlowRerouted:
			kinds = append(kinds, "rerouted")
		case d.Flow == burst.FlowRecovered:
			kinds = append(kinds, "recovered")
		}
	}
	want := []string{"payload", "degraded-shed", "rerouted", "recovered", "payload"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("delta order = %v, want %v", kinds, want)
	}
	// The client's stored request carries the persisted bucket state.
	if cs.Request().Header[HdrAdmissionState] == "" {
		t.Error("admission state was not rewritten into the stream header")
	}
	if got := host.FlowSignals.Value(); got != 2 {
		t.Errorf("FlowSignals = %d, want 2", got)
	}
}

// The persisted admission state follows the stream through failover: a
// replacement stream subscribed with the rewritten header starts from the
// drained bucket instead of granting a fresh burst.
func TestStreamAdmissionStateSurvivesFailover(t *testing.T) {
	app := &captureApp{}
	// Very slow refill (one token per 2s) so the failover comfortably
	// lands inside the drained window.
	host := NewHost(HostConfig{
		ID:                 "brass-fo",
		Region:             "us",
		StreamDeliverRate:  0.5,
		StreamDeliverBurst: 1,
	}, nil, nil, nil)
	host.RegisterApp(app)
	t.Cleanup(host.Close)

	a, b := net.Pipe()
	cli := burst.NewClient("device", a, nil)
	host.AcceptSession("host-side", b)
	cs, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{
		burst.HdrApp:  "cap",
		burst.HdrUser: "7",
	}})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range cs.Events {
		}
	}()
	waitFor(t, "stream captured", func() bool { return app.stream() != nil })
	st := app.stream()

	// Drain the bucket and shed once so the state is persisted.
	_ = st.Push(burst.PayloadDelta(1, []byte("p1")))
	_ = st.Push(burst.PayloadDelta(2, []byte("p2")))
	waitFor(t, "shed recorded", func() bool { return host.StreamSheds.Value() == 1 })
	req := cs.Request()
	if req.Header[HdrAdmissionState] == "" {
		t.Fatal("no persisted admission state to fail over with")
	}
	_ = cli.Close()

	// "Failover": a new session resubscribes with the stored request, as
	// the device recovery path does.
	app.mu.Lock()
	app.st = nil
	app.mu.Unlock()
	a2, b2 := net.Pipe()
	cli2 := burst.NewClient("device-2", a2, nil)
	host.AcceptSession("host-side-2", b2)
	t.Cleanup(func() { cli2.Close() })
	cs2, err := cli2.Resubscribe(req)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range cs2.Events {
		}
	}()
	waitFor(t, "replacement captured", func() bool { return app.stream() != nil })
	st2 := app.stream()

	// A fresh stream would admit immediately (full bucket); the restored
	// one is still drained, so the first push sheds.
	if err := st2.Push(burst.PayloadDelta(3, []byte("p3"))); err != nil {
		t.Fatal(err)
	}
	if got := host.StreamSheds.Value(); got != 2 {
		t.Errorf("StreamSheds = %d, want 2 (restored bucket must stay drained)", got)
	}
}

// Host-level delivery admission sheds whole events before any instance
// work, counting decisions on the controller.
func TestHostDeliverAdmission(t *testing.T) {
	app := &gateApp{gate: make(chan struct{})}
	app.release() // never block
	host := NewHost(HostConfig{
		ID:           "brass-ha",
		Region:       "us",
		DeliverRate:  1,
		DeliverBurst: 4,
	}, nil, nil, nil)
	host.RegisterApp(app)
	t.Cleanup(host.Close)

	a, b := net.Pipe()
	cli := burst.NewClient("device", a, nil)
	host.AcceptSession("host-side", b)
	t.Cleanup(func() { cli.Close() })
	if _, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{
		burst.HdrApp:   "gate",
		burst.HdrTopic: "/t",
		burst.HdrUser:  "7",
	}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream open", func() bool { return host.StreamsOpened.Value() == 1 })

	for i := 0; i < 50; i++ {
		host.Deliver(pylon.Event{ID: uint64(i + 1), Topic: "/t"})
	}
	admitted := host.Admit.Admitted.Value()
	shed := host.Admit.Shed.Value()
	if admitted+shed != 50 {
		t.Errorf("admitted+shed = %d, want 50", admitted+shed)
	}
	// Seeded fill ∈ [2, 4] tokens; real-clock refill over the loop adds
	// at most a fraction more.
	if admitted < 2 || admitted > 6 {
		t.Errorf("admitted = %d, want a small burst", admitted)
	}
	waitFor(t, "admitted events processed", func() bool {
		return app.eventCount() == int(admitted)
	})
}
