package burst

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Wire format of a frame:
//
//	1 byte  frame type
//	8 bytes stream id (big endian)
//	4 bytes payload length (big endian)
//	N bytes payload (JSON)
//
// MaxPayload bounds a single frame's payload; batches larger than this must
// be split by the sender. The bound protects intermediaries from unbounded
// allocation on malformed input.
const MaxPayload = 4 << 20

const frameHeaderSize = 1 + 8 + 4

// WriteFrame encodes f to w. It is not safe for concurrent use; Session
// serializes writers.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxPayload {
		return fmt.Errorf("burst: frame payload %d exceeds max %d", len(f.Payload), MaxPayload)
	}
	var hdr [frameHeaderSize]byte
	hdr[0] = byte(f.Type)
	binary.BigEndian.PutUint64(hdr[1:9], uint64(f.SID))
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("burst: write frame header: %w", err)
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return fmt.Errorf("burst: write frame payload: %w", err)
		}
	}
	return nil
}

// ReadFrame decodes one frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err // io.EOF passes through for clean shutdown
	}
	f := Frame{
		Type: FrameType(hdr[0]),
		SID:  StreamID(binary.BigEndian.Uint64(hdr[1:9])),
	}
	n := binary.BigEndian.Uint32(hdr[9:13])
	if n > MaxPayload {
		return Frame{}, fmt.Errorf("burst: frame payload %d exceeds max %d", n, MaxPayload)
	}
	if f.Type < FrameSubscribe || f.Type > FramePong {
		return Frame{}, fmt.Errorf("burst: unknown frame type %d", hdr[0])
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("burst: read frame payload: %w", err)
		}
	}
	return f, nil
}

// frameReader wraps a connection with buffering for ReadFrame.
func frameReader(r io.Reader) *bufio.Reader { return bufio.NewReaderSize(r, 32<<10) }
