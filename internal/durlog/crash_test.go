package durlog

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"bladerunner/internal/sim"
)

// TestCrashMidRotationRecovery is the seeded crash-recovery test the CI
// durlog-smoke job pins: the CrashHook panics mid-rotation (at a seeded
// rotation ordinal and phase, so both the sealed-but-not-recycled and
// recycled-but-unwritten interleavings are exercised across seeds), and
// the log is rebuilt from the last Checkpoint — the durable image, which
// by construction trails the in-memory hot segment. Recovery must:
//
//   - preserve the topic's continuity epoch;
//   - serve every cursor inside the recovered window gap-free;
//   - EXPIRE every cursor past the recovered (regressed) tail — the
//     sequences lost in the crash must never be silently skipped;
//   - absorb the live stream resuming past the crash point through the
//     ordinary gap reset, serving the new window under a new epoch.
func TestCrashMidRotationRecovery(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if env := os.Getenv("BR_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("BR_CHAOS_SEED %q: %v", env, err)
		}
		seeds = []int64{v}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCrashRecovery(t, seed)
		})
	}
}

func runCrashRecovery(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	clk := sim.NewManualClock(time.Unix(0, 0))
	const topic = "/MB/7"

	crashRotation := 3 + rng.Intn(6)
	crashPhase := RotatePhase(rng.Intn(2))
	type crashSignal struct{}
	rotations := 0
	cfg := Config{
		Clock:          clk,
		HotBytes:       256,
		SegmentEntries: 8,
		Segments:       3,
		Retention:      -1,
		CrashHook: func(_ string, phase RotatePhase) {
			if phase == crashPhase {
				rotations++
				if rotations == crashRotation {
					panic(crashSignal{})
				}
			}
		},
	}
	l := New(cfg)
	l.Open(topic)

	mirror := make(map[uint64][]byte)
	var tail, snapTail uint64
	var lastSnap []byte

	crashed := false
	appendOne := func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashSignal); !ok {
					panic(r)
				}
				crashed = true
			}
		}()
		tail++
		p := []byte(fmt.Sprintf("m-%d-%d", seed, tail))
		mirror[tail] = p
		l.Append(topic, tail, p)
	}

	for !crashed && tail < 2000 {
		appendOne()
		if !crashed && tail%16 == 0 {
			lastSnap = l.Checkpoint() // the periodic "fsync"
			snapTail = tail
		}
	}
	if !crashed {
		t.Fatalf("crash never fired (rotation %d phase %d, tail %d)", crashRotation, crashPhase, tail)
	}
	if lastSnap == nil {
		t.Fatal("crashed before the first checkpoint; lower the crash ordinal")
	}
	preCrashEpoch, _, _, _ := l.Window(topic)

	// The machine restarts: a fresh log recovered from the durable image.
	rcfg := cfg
	rcfg.CrashHook = nil
	l2 := New(rcfg)
	if err := l2.Recover(lastSnap); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	epoch, floor, rtail, ok := l2.Window(topic)
	if !ok {
		t.Fatal("recovered log lost the topic")
	}
	if epoch != preCrashEpoch {
		t.Fatalf("epoch not preserved: %d vs %d", epoch, preCrashEpoch)
	}
	if rtail != snapTail {
		t.Fatalf("recovered tail %d, durable tail %d", rtail, snapTail)
	}

	// Every cursor position: gap-free inside the window, expired outside
	// — including the crash-lost suffix (snapTail, tail].
	for seq := uint64(0); seq <= tail+3; seq++ {
		out, next, err := l2.ReadFrom(topic, Cursor{Epoch: epoch, Seq: seq})
		if seq+1 < floor || seq > rtail {
			if !errors.Is(err, ErrCursorExpired) {
				t.Fatalf("cursor %d outside window [%d,%d]: err = %v", seq, floor, rtail, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cursor %d inside window: %v", seq, err)
		}
		if next.Seq != rtail {
			t.Fatalf("cursor %d: next %d, want recovered tail %d", seq, next.Seq, rtail)
		}
		want := seq + 1
		for _, e := range out {
			if e.Seq != want || !bytes.Equal(e.Payload, mirror[e.Seq]) {
				t.Fatalf("cursor %d: gap or corruption at seq %d (want %d)", seq, e.Seq, want)
			}
			want++
		}
		if want != rtail+1 {
			t.Fatalf("cursor %d: batch ended at %d, want %d", seq, want-1, rtail)
		}
	}

	// The live stream resumes past the crash point: the gap reset must
	// expire the stale window rather than bridge the lost suffix.
	resume := tail + 1
	p := []byte(fmt.Sprintf("m-%d-%d", seed, resume))
	mirror[resume] = p
	if !l2.Append(topic, resume, p) {
		t.Fatal("post-recovery append failed")
	}
	if _, _, err := l2.ReadFrom(topic, Cursor{Epoch: epoch, Seq: snapTail}); !errors.Is(err, ErrCursorExpired) {
		t.Fatalf("pre-crash cursor after live resume: err = %v", err)
	}
	epoch2, floor2, tail2, _ := l2.Window(topic)
	if epoch2 == epoch || floor2 != resume || tail2 != resume {
		t.Fatalf("post-resume window = epoch %d floor %d tail %d", epoch2, floor2, tail2)
	}
	out, _, err := l2.ReadFrom(topic, Cursor{Epoch: epoch2, Seq: resume - 1})
	if err != nil || len(out) != 1 || out[0].Seq != resume {
		t.Fatalf("post-resume read = %v, %v", out, err)
	}
}
