package burst

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// TestQueueFlushCoalescesOneFrame queues a payload and a rewrite, flushes,
// and asserts the client receives them as ONE batch: the payload surfaces
// as an application event, the rewrite applies invisibly, in one frame.
func TestQueueFlushCoalescesOneFrame(t *testing.T) {
	cli, _, srv := newClientServer(t)
	st, err := cli.Subscribe(Subscribe{Header: Header{HdrApp: "lvc", HdrTopic: "/LVC/1"}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream", func() bool { return srv.stream(0) != nil })
	ss := srv.stream(0)

	if err := ss.Queue(PayloadDelta(7, []byte("comment"))); err != nil {
		t.Fatal(err)
	}
	if err := ss.QueueRewriteHeaderField("rl-state", "bucket=3"); err != nil {
		t.Fatal(err)
	}
	// Nothing on the wire until Flush.
	select {
	case b := <-st.Events:
		t.Fatalf("queued deltas leaked before Flush: %+v", b)
	case <-time.After(50 * time.Millisecond):
	}
	// Server's stored request already reflects the queued rewrite.
	if got := ss.Request().Header["rl-state"]; got != "bucket=3" {
		t.Fatalf("server request not updated at queue time: %q", got)
	}

	deltas, err := ss.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 2 {
		t.Fatalf("Flush sent %d deltas, want 2", len(deltas))
	}
	batch := recvBatch(t, st)
	// The client surfaces only the payload; the rewrite applied invisibly
	// within the same batch.
	if len(batch) != 1 || string(batch[0].Payload) != "comment" {
		t.Fatalf("client batch = %+v", batch)
	}
	waitFor(t, "rewrite applied", func() bool {
		return st.Request().Header["rl-state"] == "bucket=3"
	})
	if st.LastSeq() != 7 {
		t.Errorf("LastSeq = %d, want 7", st.LastSeq())
	}
}

// TestFlushEmptyQueueIsNoop verifies Flush without queued deltas sends no
// frame.
func TestFlushEmptyQueueIsNoop(t *testing.T) {
	cli, _, srv := newClientServer(t)
	st, _ := cli.Subscribe(Subscribe{Header: Header{HdrTopic: "/t"}})
	waitFor(t, "stream", func() bool { return srv.stream(0) != nil })
	deltas, err := srv.stream(0).Flush()
	if err != nil || deltas != nil {
		t.Fatalf("empty Flush = %v, %v; want nil, nil", deltas, err)
	}
	select {
	case b := <-st.Events:
		t.Fatalf("empty Flush produced a batch: %+v", b)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestQueueTerminatedStream exercises Queue/Flush error paths on a
// terminated stream.
func TestQueueTerminatedStream(t *testing.T) {
	cli, _, srv := newClientServer(t)
	_, _ = cli.Subscribe(Subscribe{Header: Header{HdrTopic: "/t"}})
	waitFor(t, "stream", func() bool { return srv.stream(0) != nil })
	ss := srv.stream(0)
	if err := ss.Queue(PayloadDelta(1, []byte("x"))); err != nil {
		t.Fatal(err)
	}
	if err := ss.Terminate("done"); err != nil {
		t.Fatal(err)
	}
	if err := ss.Queue(PayloadDelta(2, []byte("y"))); !errors.Is(err, ErrStreamClosed) {
		t.Errorf("Queue after terminate = %v, want ErrStreamClosed", err)
	}
	if _, err := ss.Flush(); !errors.Is(err, ErrStreamClosed) {
		t.Errorf("Flush after terminate = %v, want ErrStreamClosed", err)
	}
	if err := ss.QueueRewrite(Header{"k": "v"}, nil); !errors.Is(err, ErrStreamClosed) {
		t.Errorf("QueueRewrite after terminate = %v, want ErrStreamClosed", err)
	}
}

// TestSendMsgPooledEncodingMatchesMarshal pins the wire compatibility of
// the pooled encoder: the bytes SendMsg produces must decode identically to
// EncodePayload output, including for values whose encoding exceeds the
// pool's retention cap.
func TestSendMsgPooledEncodingMatchesMarshal(t *testing.T) {
	cli, _, srv := newClientServer(t)
	st, _ := cli.Subscribe(Subscribe{Header: Header{HdrTopic: "/t"}})
	waitFor(t, "stream", func() bool { return srv.stream(0) != nil })
	ss := srv.stream(0)

	big := bytes.Repeat([]byte("x"), 2<<20) // > maxPooledBuf once encoded
	payloads := [][]byte{[]byte("small"), big}
	for _, p := range payloads {
		if err := ss.SendBatch(PayloadDelta(1, p)); err != nil {
			t.Fatal(err)
		}
		batch := recvBatch(t, st)
		if len(batch) != 1 || !bytes.Equal(batch[0].Payload, p) {
			t.Fatalf("payload of len %d corrupted through pooled encoder (got len %d)",
				len(p), len(batch[0].Payload))
		}
	}
}

// TestPooledBufferReuseIsSafe hammers concurrent sends over one session to
// let the race detector catch any buffer-reuse-before-write bug.
func TestPooledBufferReuseIsSafe(t *testing.T) {
	cli, _, srv := newClientServer(t)
	st1, _ := cli.Subscribe(Subscribe{Header: Header{HdrTopic: "/a"}})
	st2, _ := cli.Subscribe(Subscribe{Header: Header{HdrTopic: "/b"}})
	waitFor(t, "streams", func() bool { return srv.stream(1) != nil })
	ssA, ssB := srv.stream(0), srv.stream(1)

	const rounds = 200
	done := make(chan error, 2)
	send := func(ss *ServerStream, tag byte) {
		var err error
		for i := 0; i < rounds && err == nil; i++ {
			err = ss.SendBatch(PayloadDelta(uint64(i+1), bytes.Repeat([]byte{tag}, 64)))
		}
		done <- err
	}
	go send(ssA, 'a')
	go send(ssB, 'b')

	check := func(st *ClientStream, tag byte) {
		for i := 0; i < rounds; i++ {
			batch := recvBatch(t, st)
			for _, d := range batch {
				for _, c := range d.Payload {
					if c != tag {
						t.Fatalf("cross-stream payload corruption: got %q want %q", c, tag)
					}
				}
			}
		}
	}
	check(st1, 'a')
	check(st2, 'b')
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
