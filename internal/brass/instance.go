// Package brass implements BRASS (Bladerunner Application Stream Servers,
// paper §3.2): per-application stream processors that receive update events
// from Pylon, filter/rank/privacy-check them per device, and push selected
// updates down BURST streams.
//
// Architecture reproduced from the paper:
//
//   - Each application has its own BRASS implementation (the Application
//     interface); there is no generic configurable filter pipeline.
//   - BRASS is serverless: an instance spools up on a host the first time
//     a stream for its application arrives there, and despools when idle.
//   - Each instance runs single-threaded: all callbacks execute on one
//     event-loop goroutine, mirroring the JS V8 VMs Facebook uses, so
//     application code never needs locks.
//   - Hosts are multi-tenant: several application instances share a host.
//     A per-host subscription manager dedups Pylon subscriptions — a topic
//     is registered with Pylon once per host no matter how many local
//     instances want it (footnote 10).
package brass

import (
	"fmt"
	"sync"
	"time"

	"bladerunner/internal/pylon"
	"bladerunner/internal/trace"
)

// Application is one Bladerunner use case's BRASS implementation. Each of
// its instances is created on demand per host.
type Application interface {
	// Name is the application id carried in subscription headers.
	Name() string
	// NewInstance builds the per-host application state. All AppInstance
	// callbacks run on the instance's event loop.
	NewInstance(rt *Runtime) AppInstance
}

// AppInstance receives the application callbacks. Implementations are
// single-threaded by construction and must not block the loop for long.
type AppInstance interface {
	// OnStreamOpen is invoked when a device stream lands on this
	// instance. The app typically resolves the subscription to topics,
	// calls st.AddTopic for each, and initializes per-stream state.
	// Returning an error terminates the stream.
	OnStreamOpen(st *Stream) error
	// OnStreamClose is invoked when a stream ends (cancel, failure, or
	// termination).
	OnStreamClose(st *Stream, reason string)
	// OnEvent is invoked for each Pylon update event on a topic this
	// instance subscribed to.
	OnEvent(ev pylon.Event)
	// OnAck is invoked when a device acknowledges deltas.
	OnAck(st *Stream, seq uint64)
}

// Instance is one spooled-up BRASS: an application's state plus the event
// loop that serializes all its work.
type Instance struct {
	host *Host
	app  Application
	rt   *Runtime
	impl AppInstance

	tasks chan func()
	quit  chan struct{}
	done  chan struct{}

	// Loop-owned state (no locks needed on the loop):
	topicStreams map[pylon.Topic]map[*Stream]bool
	streams      map[*Stream]bool

	mu      sync.Mutex
	stopped bool
}

// taskBuffer bounds the pending work per instance. Pylon delivery is
// best-effort: if an instance's loop is saturated, events are dropped and
// counted (the paper's "drop messages intelligently" happens in app logic;
// this is the backstop).
const taskBuffer = 4096

func newInstance(h *Host, app Application) *Instance {
	inst := &Instance{
		host:         h,
		app:          app,
		tasks:        make(chan func(), taskBuffer),
		quit:         make(chan struct{}),
		done:         make(chan struct{}),
		topicStreams: make(map[pylon.Topic]map[*Stream]bool),
		streams:      make(map[*Stream]bool),
	}
	inst.rt = &Runtime{host: h, inst: inst}
	inst.impl = app.NewInstance(inst.rt)
	go inst.loop()
	return inst
}

func (inst *Instance) loop() {
	defer close(inst.done)
	for {
		select {
		case fn := <-inst.tasks:
			fn()
		case <-inst.quit:
			// Drain remaining tasks before exiting so shutdown is
			// not racy with queued work.
			for {
				select {
				case fn := <-inst.tasks:
					fn()
				default:
					return
				}
			}
		}
	}
}

// post enqueues fn onto the event loop. It reports false (and counts a
// drop) if the loop is saturated or stopped.
func (inst *Instance) post(fn func()) bool {
	inst.mu.Lock()
	if inst.stopped {
		inst.mu.Unlock()
		return false
	}
	inst.mu.Unlock()
	select {
	case inst.tasks <- fn:
		return true
	default:
		inst.host.LoopOverflows.Inc()
		return false
	}
}

// call posts fn and waits for it to run — used by tests and by host
// teardown paths that need synchronous semantics.
func (inst *Instance) call(fn func()) {
	ch := make(chan struct{})
	if !inst.post(func() {
		defer close(ch)
		fn()
	}) {
		return
	}
	select {
	case <-ch:
	case <-inst.done:
	}
}

// stop despools the instance: pending tasks are drained, then the loop
// exits. Host-level maps are cleaned by the caller.
func (inst *Instance) stop() {
	inst.mu.Lock()
	if inst.stopped {
		inst.mu.Unlock()
		return
	}
	inst.stopped = true
	inst.mu.Unlock()
	close(inst.quit)
	<-inst.done
}

// deliver posts a Pylon event to the loop, counting per-stream decisions:
// every event arriving at an instance forces one keep/drop decision per
// candidate stream (Fig 8's "decisions on updates").
func (inst *Instance) deliver(ev pylon.Event) {
	inst.post(func() {
		sp := inst.host.cfg.Tracer.Start(ev.Trace, trace.HopDeliver, trace.HopFanout)
		defer sp.End()
		sp.Annotate("host", inst.host.cfg.ID)
		sp.Annotate("app", inst.app.Name())
		if streams := inst.topicStreams[ev.Topic]; len(streams) > 0 {
			inst.host.Decisions.Add(int64(len(streams)))
			sp.AnnotateInt("streams", int64(len(streams)))
		} else {
			// Subscribed with no local streams (e.g. friend-status
			// fan-in): still one decision by the app.
			inst.host.Decisions.Inc()
			sp.AnnotateInt("streams", 0)
		}
		inst.impl.OnEvent(ev)
	})
}

// addTopicRef registers st's interest in topic (loop-owned).
func (inst *Instance) addTopicRef(topic pylon.Topic, st *Stream) error {
	set := inst.topicStreams[topic]
	first := set == nil
	if first {
		set = make(map[*Stream]bool)
		inst.topicStreams[topic] = set
	}
	if set[st] {
		return nil
	}
	set[st] = true
	st.topics[topic] = true
	if first {
		if err := inst.host.subscribeTopic(topic, inst); err != nil {
			delete(inst.topicStreams, topic)
			delete(st.topics, topic)
			return err
		}
	}
	return nil
}

// dropTopicRef removes st's interest; the last reference unsubscribes the
// instance (and possibly the host) from Pylon.
func (inst *Instance) dropTopicRef(topic pylon.Topic, st *Stream) {
	set := inst.topicStreams[topic]
	if set == nil || !set[st] {
		return
	}
	delete(set, st)
	delete(st.topics, topic)
	if len(set) == 0 {
		delete(inst.topicStreams, topic)
		inst.host.unsubscribeTopic(topic, inst)
	}
}

// StreamsForTopic returns the streams currently interested in topic. Only
// call from the event loop (i.e. from application callbacks).
func (inst *Instance) StreamsForTopic(topic pylon.Topic) []*Stream {
	set := inst.topicStreams[topic]
	out := make([]*Stream, 0, len(set))
	for st := range set {
		out = append(out, st)
	}
	return out
}

// Streams returns all open streams on this instance (loop-only).
func (inst *Instance) Streams() []*Stream {
	out := make([]*Stream, 0, len(inst.streams))
	for st := range inst.streams {
		out = append(out, st)
	}
	return out
}

// openStream runs the full stream-open sequence on the loop.
func (inst *Instance) openStream(st *Stream) {
	inst.post(func() {
		inst.streams[st] = true
		if err := inst.impl.OnStreamOpen(st); err != nil {
			delete(inst.streams, st)
			for topic := range st.topics {
				inst.dropTopicRef(topic, st)
			}
			_ = st.burst.Terminate(fmt.Sprintf("rejected: %v", err))
			return
		}
		inst.host.StreamsOpened.Inc()
	})
}

// closeStream runs the stream-close sequence on the loop.
func (inst *Instance) closeStream(st *Stream, reason string) {
	inst.post(func() {
		if !inst.streams[st] {
			return
		}
		delete(inst.streams, st)
		for topic := range st.topics {
			inst.dropTopicRef(topic, st)
		}
		inst.impl.OnStreamClose(st, reason)
		inst.host.StreamsClosed.Inc()
		if len(inst.streams) == 0 {
			// Per-stream instances despool with their stream.
			inst.host.despool(inst)
		}
	})
}

// After schedules fn on the event loop after d (application timers).
func (inst *Instance) After(d time.Duration, fn func()) (cancel func()) {
	return inst.host.sched.After(d, func() { inst.post(fn) })
}
