package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestTable1BucketsValid(t *testing.T) {
	if err := Validate(Table1Buckets); err != nil {
		t.Fatal(err)
	}
}

func TestAreaUpdatesMatchesTable1(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 2_000_000
	var zero, under10, under100, over1M, over100M int
	for i := 0; i < n; i++ {
		u := AreaUpdates(rng, Table1Buckets)
		switch {
		case u == 0:
			zero++
		case u < 10:
			under10++
		case u < 100:
			under100++
		case u > 100_000_000:
			over100M++
		case u > 1_000_000:
			over1M++
		}
	}
	frac := func(c int) float64 { return float64(c) / n }
	if f := frac(zero); f < 0.82 || f > 0.84 {
		t.Errorf("zero fraction = %v, want ~0.83", f)
	}
	if f := frac(under10); f < 0.15 || f > 0.17 {
		t.Errorf("<10 fraction = %v, want ~0.16", f)
	}
	if f := frac(under100); f < 0.008 || f > 0.011 {
		t.Errorf("<100 fraction = %v, want ~0.0095", f)
	}
	if f := frac(over1M); f < 0.0003 || f > 0.0007 {
		t.Errorf(">1M fraction = %v, want ~0.00049", f)
	}
	_ = over100M // too rare to assert tightly at this sample size
}

func TestStreamLifetimeMatchesTable2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 200_000
	var b15m, b1h, b24h, bMore int
	for i := 0; i < n; i++ {
		lt := StreamLifetime(rng, Table2Buckets)
		switch {
		case lt < 15*time.Minute:
			b15m++
		case lt < time.Hour:
			b1h++
		case lt < 24*time.Hour:
			b24h++
		default:
			bMore++
		}
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"<15m", float64(b15m) / n, 0.45},
		{"15m-1h", float64(b1h) / n, 0.26},
		{"1h-24h", float64(b24h) / n, 0.25},
		{"24h+", float64(bMore) / n, 0.04},
	}
	for _, c := range checks {
		if c.got < c.want-0.01 || c.got > c.want+0.01 {
			t.Errorf("%s fraction = %v, want ~%v", c.name, c.got, c.want)
		}
	}
}

func TestDiurnalBoundsAndPeak(t *testing.T) {
	d := Diurnal{Min: 6.5, Max: 11, PeakHour: 19}
	day := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	lo, hi := 1e18, -1e18
	for m := 0; m < 24*60; m += 15 {
		v := d.At(day.Add(time.Duration(m) * time.Minute))
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo < 6.49 || lo > 6.6 {
		t.Errorf("trough = %v", lo)
	}
	if hi < 10.9 || hi > 11.01 {
		t.Errorf("peak = %v", hi)
	}
	// Peak lands at the configured hour.
	atPeak := d.At(day.Add(19 * time.Hour))
	if atPeak < 10.99 {
		t.Errorf("value at peak hour = %v", atPeak)
	}
}

func TestPoissonSmallAndLargeMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Small mean: check the sample mean.
	var total int64
	const n = 100000
	for i := 0; i < n; i++ {
		total += Poisson(rng, 3.0)
	}
	mean := float64(total) / n
	if mean < 2.9 || mean > 3.1 {
		t.Errorf("small-mean Poisson mean = %v", mean)
	}
	// Large mean: normal approximation.
	total = 0
	for i := 0; i < 10000; i++ {
		v := Poisson(rng, 1e6)
		if v < 0 {
			t.Fatal("negative count")
		}
		total += v
	}
	mean = float64(total) / 10000
	if mean < 0.99e6 || mean > 1.01e6 {
		t.Errorf("large-mean Poisson mean = %v", mean)
	}
	if Poisson(rng, 0) != 0 || Poisson(rng, -1) != 0 {
		t.Error("non-positive mean should give 0")
	}
}

func TestCommentBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := CommentBurst{BaseRatePerSec: 100, BurstMultiplier: 50, BurstProb: 0.1}
	var base, burst int
	for i := 0; i < 10000; i++ {
		r := c.RateAt(rng, i)
		switch r {
		case 100:
			base++
		case 5000:
			burst++
		default:
			t.Fatalf("unexpected rate %v", r)
		}
	}
	if burst < 800 || burst > 1200 {
		t.Errorf("burst seconds = %d, want ~1000", burst)
	}
}

func TestValidateRejectsBadTables(t *testing.T) {
	if err := Validate(nil); err == nil {
		t.Error("empty table accepted")
	}
	if err := Validate([]UpdateBucket{{Prob: -1, Lo: 0, Hi: 0}}); err == nil {
		t.Error("negative prob accepted")
	}
	if err := Validate([]UpdateBucket{{Prob: 1, Lo: 5, Hi: 1}}); err == nil {
		t.Error("Lo>Hi accepted")
	}
}

func TestLogUniformWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		v := sampleLogUniform(rng, 10, 99)
		if v < 10 || v > 99 {
			t.Fatalf("sample %d out of [10,99]", v)
		}
	}
	if sampleLogUniform(rng, 7, 7) != 7 {
		t.Error("degenerate range")
	}
}

// TestZipfShape verifies the sampler's distribution: empirical frequencies
// must match the analytic 1/(k+1)^s masses at the head, be monotonically
// non-increasing in rank (within noise), and place the paper-shaped
// majority of mass on a small head of areas.
func TestZipfShape(t *testing.T) {
	const n, s, draws = 1000, 1.1, 500_000
	z := NewZipf(n, s)
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := z.Sample(rng)
		if k < 0 || k >= n {
			t.Fatalf("sample out of range: %d", k)
		}
		counts[k]++
	}
	// Head frequencies within 10% of analytic mass.
	for k := 0; k < 5; k++ {
		want := z.Prob(k)
		got := float64(counts[k]) / draws
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("rank %d frequency %.5f, want %.5f ±10%%", k, got, want)
		}
	}
	// Rank-1 to rank-2 ratio ≈ 2^s.
	ratio := float64(counts[0]) / float64(counts[1])
	want := math.Pow(2, s)
	if ratio < want*0.85 || ratio > want*1.15 {
		t.Errorf("rank1/rank2 ratio %.3f, want ≈%.3f", ratio, want)
	}
	// Power law concentrates: top 1% of areas must hold far more than 1%
	// of the mass (for n=1000, s=1.1 the analytic head share is ~48%).
	head := 0
	for k := 0; k < n/100; k++ {
		head += counts[k]
	}
	if share := float64(head) / draws; share < 0.35 {
		t.Errorf("top 1%% of ranks holds %.1f%% of mass, want power-law head > 35%%", 100*share)
	}
	// Monotone tail (bucketed to smooth sampling noise).
	prev := math.Inf(1)
	for b := 0; b < 10; b++ {
		sum := 0
		for k := b * n / 10; k < (b+1)*n/10; k++ {
			sum += counts[k]
		}
		if float64(sum) > prev*1.05 {
			t.Errorf("bucket %d mass %d exceeds earlier bucket %.0f: not non-increasing", b, sum, prev)
		}
		prev = math.Max(float64(sum), 1)
	}
}

// TestZipfUniformDegenerate: s=0 must be uniform.
func TestZipfUniformDegenerate(t *testing.T) {
	z := NewZipf(10, 0)
	for k := 0; k < 10; k++ {
		if p := z.Prob(k); math.Abs(p-0.1) > 1e-9 {
			t.Fatalf("Prob(%d) = %v, want 0.1", k, p)
		}
	}
}

// TestZipfDeterministic: same seed, same stream.
func TestZipfDeterministic(t *testing.T) {
	z := NewZipf(100, 1.2)
	a, b := rand.New(rand.NewSource(3)), rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if x, y := z.Sample(a), z.Sample(b); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}
