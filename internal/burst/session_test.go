package burst

import (
	"net"
	"sync"
	"testing"
	"time"

	"bladerunner/internal/sim"
)

// pipePair builds a connected client/server byte transport.
func pipePair() (net.Conn, net.Conn) { return net.Pipe() }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

type frameCollector struct {
	mu     sync.Mutex
	frames []Frame
	closed bool
	err    error
}

func (c *frameCollector) HandleFrame(f Frame) {
	c.mu.Lock()
	c.frames = append(c.frames, f)
	c.mu.Unlock()
}

func (c *frameCollector) HandleClose(err error) {
	c.mu.Lock()
	c.closed = true
	c.err = err
	c.mu.Unlock()
}

func (c *frameCollector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func (c *frameCollector) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func TestSessionSendReceive(t *testing.T) {
	a, b := pipePair()
	colA, colB := &frameCollector{}, &frameCollector{}
	sa := NewSession("a", a, colA)
	sb := NewSession("b", b, colB)
	defer sa.Close()
	defer sb.Close()

	if err := sa.SendMsg(FrameSubscribe, 1, Subscribe{Header: Header{HdrApp: "x"}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "frame at b", func() bool { return colB.count() == 1 })
	colB.mu.Lock()
	f := colB.frames[0]
	colB.mu.Unlock()
	if f.Type != FrameSubscribe || f.SID != 1 {
		t.Errorf("frame = %+v", f)
	}
	sub, err := DecodeSubscribe(f.Payload)
	if err != nil || sub.Header[HdrApp] != "x" {
		t.Errorf("payload = %+v err=%v", sub, err)
	}
}

func TestSessionOrderPreserved(t *testing.T) {
	a, b := pipePair()
	col := &frameCollector{}
	sa := NewSession("a", a, HandlerFuncs{})
	sb := NewSession("b", b, col)
	defer sa.Close()
	defer sb.Close()
	const n = 100
	for i := 0; i < n; i++ {
		if err := sa.SendMsg(FrameAck, StreamID(i), Ack{Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all frames", func() bool { return col.count() == n })
	col.mu.Lock()
	defer col.mu.Unlock()
	for i, f := range col.frames {
		if f.SID != StreamID(i) {
			t.Fatalf("frame %d has sid %d: reordered", i, f.SID)
		}
	}
}

func TestSessionCloseNotifiesPeer(t *testing.T) {
	a, b := pipePair()
	colB := &frameCollector{}
	sa := NewSession("a", a, HandlerFuncs{})
	sb := NewSession("b", b, colB)
	defer sb.Close()
	sa.Close()
	waitFor(t, "peer close", func() bool { return colB.isClosed() })
	if err := sb.Send(Frame{Type: FramePing}); err == nil {
		// The pipe is dead; a send must eventually error. net.Pipe errors
		// immediately on closed peer.
		t.Error("send on dead session succeeded")
	}
}

func TestSessionSendAfterCloseFails(t *testing.T) {
	a, b := pipePair()
	sa := NewSession("a", a, HandlerFuncs{})
	NewSession("b", b, HandlerFuncs{})
	sa.Close()
	<-sa.Done()
	if err := sa.Send(Frame{Type: FramePing}); err == nil {
		t.Error("send after close succeeded")
	}
}

func TestSessionPingPong(t *testing.T) {
	a, b := pipePair()
	sa := NewSession("a", a, HandlerFuncs{})
	sb := NewSession("b", b, HandlerFuncs{})
	defer sa.Close()
	defer sb.Close()
	var mu sync.Mutex
	pongs := 0
	sa.SetPongListener(func() {
		mu.Lock()
		pongs++
		mu.Unlock()
	})
	if err := sa.Ping(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pong", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return pongs == 1
	})
}

func TestSessionConcurrentSenders(t *testing.T) {
	a, b := pipePair()
	col := &frameCollector{}
	sa := NewSession("a", a, HandlerFuncs{})
	sb := NewSession("b", b, col)
	defer sa.Close()
	defer sb.Close()
	var wg sync.WaitGroup
	const goroutines, per = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = sa.SendMsg(FrameAck, StreamID(g), Ack{Seq: uint64(i)})
			}
		}(g)
	}
	wg.Wait()
	waitFor(t, "all frames", func() bool { return col.count() == goroutines*per })
	// Frames must decode cleanly (no interleaved corruption).
	col.mu.Lock()
	defer col.mu.Unlock()
	for _, f := range col.frames {
		if _, err := DecodeAck(f.Payload); err != nil {
			t.Fatalf("corrupted frame: %v", err)
		}
	}
}

func TestKeepaliveDetectsDeadPeer(t *testing.T) {
	a, b := pipePair()
	closed := make(chan error, 1)
	sa := NewSession("a", a, HandlerFuncs{OnClose: func(err error) { closed <- err }})
	// Peer that never answers pings: a raw conn with no session (we just
	// swallow bytes).
	go func() {
		buf := make([]byte, 1024)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	k := StartKeepalive(sa, sim.RealClock{}, 10*time.Millisecond, 30*time.Millisecond)
	defer k.Stop()
	select {
	case <-closed:
		// Heartbeat timeout closed the session.
	case <-time.After(5 * time.Second):
		t.Fatal("keepalive never detected dead peer")
	}
}

func TestKeepaliveKeepsHealthySessionOpen(t *testing.T) {
	a, b := pipePair()
	sa := NewSession("a", a, HandlerFuncs{})
	sb := NewSession("b", b, HandlerFuncs{}) // answers pings automatically
	defer sa.Close()
	defer sb.Close()
	k := StartKeepalive(sa, sim.RealClock{}, 5*time.Millisecond, 50*time.Millisecond)
	defer k.Stop()
	time.Sleep(100 * time.Millisecond)
	select {
	case <-sa.Done():
		t.Fatal("healthy session was closed by keepalive")
	default:
	}
}
