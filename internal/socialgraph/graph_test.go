package socialgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Users: 0}); err == nil {
		t.Error("Users=0 accepted")
	}
	if _, err := Generate(Config{Users: 10, MeanFriends: 10}); err == nil {
		t.Error("MeanFriends >= Users accepted")
	}
	if _, err := Generate(Config{Users: 10, MeanFriends: -1}); err == nil {
		t.Error("negative MeanFriends accepted")
	}
}

func TestFriendshipIsSymmetric(t *testing.T) {
	g := testGraph(t)
	for id := UserID(1); id <= UserID(g.NumUsers()); id++ {
		for _, f := range g.Friends(id) {
			if !g.AreFriends(f, id) {
				t.Fatalf("friendship %d->%d not symmetric", id, f)
			}
		}
	}
}

func TestNoSelfFriendship(t *testing.T) {
	g := testGraph(t)
	for id := UserID(1); id <= UserID(g.NumUsers()); id++ {
		if g.AreFriends(id, id) {
			t.Fatalf("user %d is friends with itself", id)
		}
	}
}

func TestFriendListsSortedAndUnique(t *testing.T) {
	g := testGraph(t)
	for id := UserID(1); id <= UserID(g.NumUsers()); id++ {
		fl := g.Friends(id)
		for i := 1; i < len(fl); i++ {
			if fl[i] <= fl[i-1] {
				t.Fatalf("friend list of %d not sorted/unique at %d: %v", id, i, fl[i-1:i+1])
			}
		}
	}
}

func TestDegreeDistributionHeavyTailed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Users = 5000
	cfg.MeanFriends = 40
	g := MustGenerate(cfg)
	st := g.Degrees()
	if st.Mean < 20 || st.Mean > 120 {
		t.Errorf("mean degree %v wildly off target 40", st.Mean)
	}
	// Heavy tail: max degree should far exceed the mean.
	if float64(st.Max) < 3*st.Mean {
		t.Errorf("max degree %d not heavy-tailed vs mean %v", st.Max, st.Mean)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	cfg := DefaultConfig()
	a, b := MustGenerate(cfg), MustGenerate(cfg)
	for id := UserID(1); id <= UserID(cfg.Users); id++ {
		fa, fb := a.Friends(id), b.Friends(id)
		if len(fa) != len(fb) {
			t.Fatalf("user %d: friend counts differ across runs", id)
		}
		for i := range fa {
			if fa[i] != fb[i] {
				t.Fatalf("user %d: friend lists differ", id)
			}
		}
		if a.User(id) != b.User(id) {
			t.Fatalf("user %d record differs", id)
		}
	}
}

func TestSeedChangesGraph(t *testing.T) {
	cfg := DefaultConfig()
	a := MustGenerate(cfg)
	cfg.Seed = 999
	b := MustGenerate(cfg)
	same := true
	for id := UserID(1); id <= UserID(cfg.Users) && same; id++ {
		if len(a.Friends(id)) != len(b.Friends(id)) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical degree sequences")
	}
}

func TestBlocks(t *testing.T) {
	g := testGraph(t)
	if g.Blocks(1, 2) {
		// Possible but astronomically unlikely for these exact IDs with
		// the default config; tolerate by skipping the explicit check.
		t.Log("users 1,2 blocked by generator; continuing")
	}
	g.Block(1, 2)
	if !g.Blocks(1, 2) {
		t.Error("Block(1,2) not visible")
	}
	if g.Blocks(2, 1) {
		t.Error("blocking is directional; 2 should not block 1")
	}
}

func TestGeneratorProducesSomeBlocks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Users = 2000
	cfg.BlockProb = 0.3
	g := MustGenerate(cfg)
	found := false
	for i := 0; i < 2000 && !found; i++ {
		for j := 1; j <= 2000; j++ {
			if g.Blocks(UserID(i+1), UserID(j)) {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("no blocks generated with BlockProb=0.3")
	}
}

func TestCelebrityFraction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Users = 20000
	cfg.CelebrityFraction = 0.01
	g := MustGenerate(cfg)
	celebs := 0
	for id := UserID(1); id <= UserID(cfg.Users); id++ {
		if g.User(id).Celebrity {
			celebs++
		}
	}
	frac := float64(celebs) / float64(cfg.Users)
	if frac < 0.005 || frac > 0.02 {
		t.Errorf("celebrity fraction %v, want ~0.01", frac)
	}
}

func TestRandomUserInRange(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		id := g.RandomUser(rng)
		if id < 1 || int(id) > g.NumUsers() {
			t.Fatalf("RandomUser out of range: %d", id)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	g := testGraph(t)
	for _, fn := range []func(){
		func() { g.User(0) },
		func() { g.Friends(UserID(g.NumUsers() + 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range id")
				}
			}()
			fn()
		}()
	}
}

func TestZeroMeanFriends(t *testing.T) {
	g := MustGenerate(Config{Users: 10, Seed: 1})
	for id := UserID(1); id <= 10; id++ {
		if len(g.Friends(id)) != 0 {
			t.Errorf("user %d has friends with MeanFriends=0", id)
		}
	}
	if st := g.Degrees(); st.Max != 0 || st.Mean != 0 {
		t.Errorf("Degrees = %+v", st)
	}
}

// Property: AreFriends agrees with membership in the Friends slice.
func TestAreFriendsConsistentProperty(t *testing.T) {
	g := MustGenerate(Config{Users: 300, MeanFriends: 20, Seed: 3})
	f := func(a, b uint16) bool {
		ua := UserID(a%300 + 1)
		ub := UserID(b%300 + 1)
		inList := false
		for _, fr := range g.Friends(ua) {
			if fr == ub {
				inList = true
				break
			}
		}
		return g.AreFriends(ua, ub) == inList
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
