package was

import (
	"math/rand"

	"bladerunner/internal/socialgraph"
)

// newRand builds a math/rand source from a seed; small helper shared by the
// publish path.
func newRand(seed uint64) *rand.Rand { return rand.New(rand.NewSource(int64(seed))) }

// QualityScore is the deterministic stand-in for the ML model that scores
// comment quality before publishing (paper §3.4: "quality score (generated
// by an ML algorithm)"). The score is a stable hash of the content in
// [0,1), boosted for celebrities — only the score's distribution and
// stability matter to the system, not its semantics.
func QualityScore(author socialgraph.User, text string) float64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(text); i++ {
		h ^= uint64(text[i])
		h *= 1099511628211
	}
	h ^= uint64(author.ID) * 0x9E3779B97F4A7C15
	score := float64(h%10000) / 10000.0
	if author.Celebrity {
		// Celebrities get a floor: their comments surface even to
		// non-friends (paper §2).
		if score < 0.8 {
			score = 0.8 + score*0.2
		}
	}
	return score
}

// SpamThreshold is the score below which comments are considered spam or
// low quality and discarded for all users.
const SpamThreshold = 0.05
