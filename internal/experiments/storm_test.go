package experiments

import "testing"

// seriesPeak returns the highest Y value of a named series.
func seriesPeak(t *testing.T, r Result, name string) float64 {
	t.Helper()
	pts := r.Series[name]
	if len(pts) == 0 {
		t.Fatalf("result has no %q series", name)
	}
	peak := pts[0].Y
	for _, p := range pts {
		if p.Y > peak {
			peak = p.Y
		}
	}
	return peak
}

// TestReconnectStormJitterFlattensPeak pins the experiment's claim: after a
// mass disconnect, jittered exponential backoff absorbs strictly fewer
// dials per bucket at the peak than a fixed retry delay.
func TestReconnectStormJitterFlattensPeak(t *testing.T) {
	r := ReconnectStorm(1)
	fixed := seriesPeak(t, r, "fixed")
	jittered := seriesPeak(t, r, "jittered")
	if jittered >= fixed {
		t.Fatalf("jittered peak %.0f >= fixed peak %.0f dials/bucket", jittered, fixed)
	}
	// The decorrelation should be substantial, not marginal.
	if fixed/jittered < 1.5 {
		t.Errorf("peak reduction only %.2fx, want >= 1.5x", fixed/jittered)
	}
	if len(r.Rows) == 0 {
		t.Error("experiment produced no report rows")
	}
}

// TestReconnectStormDeterministic: the experiment is a pure function of its
// seed — the whole rendered result must be byte-identical across runs.
func TestReconnectStormDeterministic(t *testing.T) {
	a := ReconnectStorm(7)
	b := ReconnectStorm(7)
	if a.String() != b.String() {
		t.Fatalf("same seed produced different results:\n%s\nvs\n%s", a, b)
	}
}
