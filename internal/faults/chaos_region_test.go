// Region-scoped chaos: a whole region going dark and an inter-region
// partition healing, driven against the fully wired multi-region stack
// (geo topology, per-region Pylons, cross-region replication links, TAO
// followers). The assertions are the paper's geo-failover contract:
// streams severed with their region fail over to a healthy one as a
// REWRITE of the same stream (trace identity and admission state ride the
// stored request across the boundary), mailbox views converge gap-free,
// control-class deltas keep flowing, and nothing leaks.
package faults_test

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/brass"
	"bladerunner/internal/burst"
	"bladerunner/internal/core"
	"bladerunner/internal/device"
	"bladerunner/internal/faults"
	"bladerunner/internal/region"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
)

// geoConfig wires a 3-region cluster with small but non-zero cross-region
// latencies and replication lags, fully determined by seed.
func geoConfig(seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Regions = []string{"us-east", "eu-west", "ap-south"}
	cfg.POPs = 3 // one per region (round-robin homing)
	cfg.Graph.Users = 100
	cfg.Graph.BlockProb = 0
	cfg.Geo = &region.Config{
		Regions:        cfg.Regions,
		DefaultLatency: sim.Uniform{Lo: 100 * time.Microsecond, Hi: 500 * time.Microsecond},
		DefaultReplLag: sim.Uniform{Lo: time.Millisecond, Hi: 4 * time.Millisecond},
		Seed:           seed,
	}
	return cfg
}

// geoDevice builds a receiver device with fast, seeded backoff.
func geoDevice(c *core.Cluster, fn *faults.FaultNetwork, uid socialgraph.UserID, seed int64) *device.Device {
	return c.NewDeviceVia(fn, device.Config{
		User:        uid,
		Backoff:     faults.BackoffPolicy{Base: 10 * time.Millisecond, Max: 160 * time.Millisecond},
		BackoffSeed: seed*1000 + int64(uid),
	})
}

// stickyRegion resolves which region currently serves st via its sticky
// header ("" while unset).
func stickyRegion(c *core.Cluster, st *device.Stream) string {
	host := st.Request().Header[burst.HdrStickyBRASS]
	if host == "" {
		return ""
	}
	return c.Gate.RegionOf(host)
}

// TestChaosRegionCutFailover kills the receivers' entire home region and
// asserts every live stream fails over to a healthy region with a gap-free
// mailbox view, preserved trace-stream identity, preserved admission
// state, and a final FlowRecovered — then heals the region and checks the
// cluster converges with zero leaked goroutines.
func TestChaosRegionCutFailover(t *testing.T) {
	seed := chaosSeed(t)
	goroutinesBefore := runtime.NumGoroutine()

	cfg := geoConfig(seed)
	c := core.MustNewCluster(cfg, nil)
	fn := faults.NewFaultNetwork(c.Net, nil, seed)
	rf := faults.NewRegionFaults(fn, c.Gate, c.Topo)

	const cut = "eu-west" // receivers' home: uid%3 == 1
	// Author homed in us-east (90 % 3 == 0): its region survives the cut.
	author := c.NewDevice(socialgraph.UserID(90))

	const nDevices = 4
	devices := make([]*device.Device, nDevices)
	streams := make([]*device.Stream, nDevices)
	watchers := make([]*streamWatcher, nDevices)
	threads := make([]uint64, nDevices)
	traceIDs := make([]string, nDevices)
	const seededAdmission = "1500@1"
	for i := 0; i < nDevices; i++ {
		uid := socialgraph.UserID(10 + 3*i) // 10,13,16,19 → all home eu-west
		if c.HomeRegion(uid) != cut {
			t.Fatalf("uid %d homed in %q, want %q", uid, c.HomeRegion(uid), cut)
		}
		devices[i] = geoDevice(c, fn, uid, seed)
		if err := devices[i].Connect(); err != nil {
			t.Fatal(err)
		}
		// Seed a per-stream admission state so the preservation of
		// HdrAdmissionState across the cross-region rewrite is observable
		// even when no shed transition rewrites it organically.
		st, err := devices[i].Subscribe(apps.AppMessenger, "messenger",
			burst.Header{brass.HdrAdmissionState: seededAdmission})
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = st
		watchers[i] = watch(st)
		traceIDs[i] = st.Request().Header[burst.HdrTraceStream]

		out, err := author.Mutate(fmt.Sprintf(`createThread(members: "90,%d")`, uid))
		if err != nil {
			t.Fatal(err)
		}
		_ = json.Unmarshal(out, &threads[i])
	}
	waitFor(t, "home-region subscriptions", func() bool {
		for i := 0; i < nDevices; i++ {
			uid := socialgraph.UserID(10 + 3*i)
			if len(c.RegionPylons[cut].Subscribers(apps.MailboxTopic(uid))) < 1 {
				return false
			}
		}
		return true
	})
	// The sticky rewrite travels back to the device asynchronously; wait
	// until every stored request shows its home-region serving host.
	waitFor(t, "pre-cut sticky rewrites", func() bool {
		for _, st := range streams {
			if stickyRegion(c, st) != cut {
				return false
			}
		}
		return true
	})

	send := func(round string) {
		t.Helper()
		for i := 0; i < nDevices; i++ {
			msg := fmt.Sprintf(`sendMessage(threadID: %d, text: "%s")`, threads[i], round)
			if _, err := author.Mutate(msg); err != nil {
				t.Fatal(err)
			}
		}
	}
	var sent uint64

	// Baseline: cross-region replication (us-east origin → eu-west
	// serving BRASS) delivers gap-free.
	send("pre-cut")
	sent++
	for i, w := range watchers {
		w := w
		waitFor(t, fmt.Sprintf("baseline delivery to device %d", i),
			func() bool { return w.hasAll(sent) })
	}

	// Region-cut: eu-west goes dark as ONE event — topology, gate, and
	// every dialable target in the region.
	rf.CutRegion(cut)

	waitFor(t, "all devices re-attached cross-region", func() bool {
		for _, d := range devices {
			if !d.Connected() {
				return false
			}
		}
		return true
	})
	waitFor(t, "all streams rewritten to a healthy region", func() bool {
		for i := range streams {
			r := stickyRegion(c, streams[i])
			if r == "" || r == cut || !c.Topo.RegionUp(r) {
				return false
			}
			// The failover host must hold a live interest in ITS region's
			// Pylon for the stream's mailbox topic.
			host := streams[i].Request().Header[burst.HdrStickyBRASS]
			uid := socialgraph.UserID(10 + 3*i)
			found := false
			for _, s := range c.RegionPylons[r].Subscribers(apps.MailboxTopic(uid)) {
				if s == host {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	})

	// Failover preserved stream identity and admission state: both ride
	// the stored (rewritten) request across the region boundary.
	for i, st := range streams {
		hdr := st.Request().Header
		if got := hdr[burst.HdrTraceStream]; got != traceIDs[i] {
			t.Errorf("stream %d trace identity changed across failover: %q → %q",
				i, traceIDs[i], got)
		}
		if got := hdr[brass.HdrAdmissionState]; got == "" {
			t.Errorf("stream %d lost HdrAdmissionState across failover", i)
		}
	}

	// Post-failover traffic converges gap-free (catch-up closes anything
	// dropped in the failover window).
	send("post-cut")
	sent++
	for i, w := range watchers {
		w := w
		waitFor(t, fmt.Sprintf("gap-free view on device %d after failover", i),
			func() bool { return w.hasAll(sent) })
	}

	// Control-class deltas were never shed: every stream saw its recovery
	// notice and none were terminated (losing a rewrite/flow delta would
	// have wedged or killed them).
	for i, w := range watchers {
		recovered, last := w.snapshot()
		if recovered == 0 {
			t.Errorf("stream %d never reported FlowRecovered", i)
		}
		if last != burst.FlowRecovered {
			t.Errorf("stream %d final flow = %v, want FlowRecovered", i, last)
		}
		if devices[i].Streams() != 1 {
			t.Errorf("device %d lost its stream (control delta dropped?)", i)
		}
	}
	// No payload deltas were admission-shed either — the failover itself
	// creates no overload, so the only delivery machinery exercised is the
	// control path (rewrites, flow status), whose never-shed guarantee the
	// stream liveness above depends on.
	for _, h := range c.Hosts {
		if n := h.StreamSheds.Value(); n != 0 {
			t.Errorf("host %s shed %d payload deltas during failover", h.ID(), n)
		}
	}

	// Heal: the region comes back, parked replication drains, and the
	// next round still delivers everywhere.
	rf.HealRegion(cut)
	if !c.Plane.FlushWait(10 * time.Second) {
		t.Error("replication queues did not drain after heal")
	}
	send("post-heal")
	sent++
	for i, w := range watchers {
		w := w
		waitFor(t, fmt.Sprintf("post-heal delivery to device %d", i),
			func() bool { return w.hasAll(sent) })
	}
	if c.Plane.ReplDelivered.Value() == 0 {
		t.Error("no cross-region replication deliveries recorded")
	}

	for _, d := range devices {
		d.Close()
	}
	author.Close()
	for _, w := range watchers {
		w.done.Wait()
	}
	c.Close()
	waitFor(t, "goroutines drained", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= goroutinesBefore+3
	})
}

// TestChaosInterRegionPartitionHeal partitions the author's region away
// from the receiver's while traffic keeps flowing: events park on the
// replication link (none delivered across, none lost), and the heal drains
// the backlog IN ORDER so the receiver converges to a gap-free view — with
// no leaked worker goroutines afterwards.
func TestChaosInterRegionPartitionHeal(t *testing.T) {
	seed := chaosSeed(t)
	goroutinesBefore := runtime.NumGoroutine()

	cfg := geoConfig(seed)
	c := core.MustNewCluster(cfg, nil)
	fn := faults.NewFaultNetwork(c.Net, nil, seed)
	rf := faults.NewRegionFaults(fn, c.Gate, c.Topo)

	author := c.NewDevice(socialgraph.UserID(90)) // us-east
	uid := socialgraph.UserID(13)                 // eu-west
	recv := geoDevice(c, fn, uid, seed)
	if err := recv.Connect(); err != nil {
		t.Fatal(err)
	}
	st, err := recv.Subscribe(apps.AppMessenger, "messenger", nil)
	if err != nil {
		t.Fatal(err)
	}
	w := watch(st)

	out, err := author.Mutate(fmt.Sprintf(`createThread(members: "90,%d")`, uid))
	if err != nil {
		t.Fatal(err)
	}
	var thread uint64
	_ = json.Unmarshal(out, &thread)
	waitFor(t, "subscription", func() bool {
		return len(c.RegionPylons["eu-west"].Subscribers(apps.MailboxTopic(uid))) >= 1
	})

	var sent uint64
	send := func(round string) {
		t.Helper()
		if _, err := author.Mutate(fmt.Sprintf(`sendMessage(threadID: %d, text: "%s")`, thread, round)); err != nil {
			t.Fatal(err)
		}
		sent++
	}

	send("pre-partition")
	waitFor(t, "baseline delivery", func() bool { return w.hasAll(sent) })

	// Partition us-east ↔ eu-west. The receiver's stream stays up (its
	// whole path is intra-eu-west); only replication parks.
	rf.PartitionLink("us-east", "eu-west")

	const parked = 5
	for k := 0; k < parked; k++ {
		send(fmt.Sprintf("during-partition-%d", k))
	}
	// The partition-window messages must NOT arrive while partitioned.
	preHeal := sent - parked
	time.Sleep(50 * time.Millisecond)
	if w.hasAll(preHeal + 1) {
		t.Fatal("partitioned link delivered an event across the partition")
	}
	if d := c.Plane.QueueDepths()[region.Link{Src: "us-east", Dst: "eu-west"}]; d == 0 {
		t.Error("no replication backlog parked on the partitioned link")
	}

	// Heal: the backlog drains in order; the receiver converges gap-free
	// without any reconnect (its transport never failed).
	rf.HealLink("us-east", "eu-west")
	waitFor(t, "post-heal convergence", func() bool { return w.hasAll(sent) })
	if got := recv.Reconnects.Value(); got != 0 {
		t.Errorf("receiver reconnected %d times during a pure replication partition", got)
	}
	w.mu.Lock()
	regressed := w.regressed
	w.mu.Unlock()
	if regressed {
		t.Error("sequence regression after heal (out-of-order backlog drain)")
	}

	recv.Close()
	author.Close()
	w.done.Wait()
	c.Close()
	waitFor(t, "goroutines drained", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= goroutinesBefore+3
	})
}
