package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Suppression is one //brlint:allow(rule) comment found in a source file.
type Suppression struct {
	File   string
	Line   int
	Rule   string
	Reason string
	// Used reports whether the suppression actually absorbed a diagnostic
	// during the run.
	Used bool
}

var allowRE = regexp.MustCompile(`^//\s*brlint:allow\(([^)\s]+)\)(.*)$`)

// collectSuppressions extracts every //brlint:allow comment from files.
// Comments naming an unknown rule or lacking a reason are returned as
// diagnostics under the pseudo-rule "brlint" instead — a suppression whose
// rationale is missing is itself invariant debt.
func collectSuppressions(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]*Suppression, []Diagnostic) {
	var sups []*Suppression
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					// //brlint:hotpath is the other valid directive: it
					// annotates a declaration for the hot-path-alloc rule
					// (parsed by the call-graph layer, not here).
					if strings.HasPrefix(c.Text, "//brlint:") &&
						!strings.HasPrefix(c.Text, "//brlint:allow(") &&
						!hotpathRE.MatchString(c.Text) {
						bad = append(bad, Diagnostic{
							Pos:     fset.Position(c.Pos()),
							Rule:    "brlint",
							Message: "malformed brlint directive; use //brlint:allow(rule) reason or //brlint:hotpath",
						})
					}
					continue
				}
				pos := fset.Position(c.Pos())
				rule, reason := m[1], strings.TrimSpace(m[2])
				if !known[rule] {
					bad = append(bad, Diagnostic{
						Pos:     pos,
						Rule:    "brlint",
						Message: "suppression names unknown rule " + rule,
					})
					continue
				}
				if reason == "" {
					bad = append(bad, Diagnostic{
						Pos:     pos,
						Rule:    "brlint",
						Message: "suppression of " + rule + " needs a reason: //brlint:allow(" + rule + ") why",
					})
					continue
				}
				sups = append(sups, &Suppression{
					File:   pos.Filename,
					Line:   pos.Line,
					Rule:   rule,
					Reason: reason,
				})
			}
		}
	}
	return sups, bad
}

// matchSuppression finds a suppression covering a diagnostic of rule at p:
// an allow comment for the same rule on the same line (trailing comment) or
// on the line directly above.
func matchSuppression(sups []*Suppression, rule string, p token.Position) *Suppression {
	for _, s := range sups {
		if s.Rule == rule && s.File == p.Filename && (s.Line == p.Line || s.Line == p.Line-1) {
			return s
		}
	}
	return nil
}
