package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"bladerunner/internal/metrics"
	"bladerunner/internal/overload"
	"bladerunner/internal/sim"
)

// OverloadStorm measures the overload-control plane under a seeded
// hot-topic storm: a single hop (a BRASS instance loop in miniature,
// built from the REAL overload.Queue and overload.Admission the pipeline
// uses) services deliveries at a fixed rate while arrivals burst to 5x
// that rate for the storm window. Three postures are compared:
//
//   - unbounded: the pre-overload-plane behaviour — every arrival queues,
//     nothing sheds, and delivery latency grows with the backlog (the
//     delivered updates are stale by the time they drain; a "live" view
//     that lags the storm by tens of seconds).
//   - shed: the bounded queue drops oldest data deltas once full. Depth —
//     and therefore p99 delivery latency — stays bounded through the
//     storm, at the cost of counted sheds, and the hop signals
//     FlowDegraded/FlowRecovered so devices can resync what was dropped.
//   - shed+admission: an admission token bucket in front of the queue
//     absorbs the storm at ingress; the queue itself barely sheds.
//
// The run is a deterministic model composition on the discrete-event
// kernel: arrivals are a seeded Poisson-ish process, the server pops one
// item per service interval, and all time is virtual.
func OverloadStorm(seed int64) Result {
	const (
		baseRate    = 200.0  // arrivals/sec outside the storm
		stormRate   = 5000.0 // hot-topic storm arrival rate
		serviceRate = 1000.0 // hop service rate
		warmup      = 5 * time.Second
		stormDur    = 10 * time.Second
		cooldown    = 5 * time.Second
		queueCap    = 1024
		admitRate   = 950.0 // ingress budget just under the service rate
		admitBurst  = 256.0
		depthBucket = 250 * time.Millisecond
	)
	horizon := warmup + stormDur + cooldown

	type outcome struct {
		arrivals   int
		delivered  int
		queueSheds int64
		admSheds   int64
		maxDepth   int
		p50, p99   time.Duration
		flips      int64 // degraded+recovered transitions
		drainedAt  time.Duration
		curve      []SeriesPoint
	}

	run := func(capacity int, admission bool) outcome {
		eng := sim.NewEngine(figStart)
		rng := rand.New(rand.NewSource(seed))
		q := overload.NewQueue[time.Time](capacity)
		var adm *overload.Admission
		if admission {
			adm = overload.NewAdmission(admitRate, admitBurst, eng, seed)
		}
		lat := metrics.NewHistogram()
		depth := metrics.NewTimeSeries(figStart, depthBucket, int(horizon/depthBucket)+1)

		var o outcome
		stormEnd := figStart.Add(warmup + stormDur)

		// Arrival process: exponential interarrivals at the phase's rate.
		var arrive func()
		arrive = func() {
			now := eng.Now()
			since := now.Sub(figStart)
			if since >= horizon {
				return
			}
			rate := baseRate
			if since >= warmup && since < warmup+stormDur {
				rate = stormRate
			}
			o.arrivals++
			// A nil *Admission admits everything for free (the disabled
			// configuration), so one call covers all three postures.
			if adm.Allow() {
				q.Push(now, overload.Data)
				if d := q.Len(); d > o.maxDepth {
					o.maxDepth = d
				}
			}
			eng.After(time.Duration(rng.ExpFloat64()/rate*float64(time.Second)), arrive)
		}
		eng.After(0, arrive)

		// Server: one pop per service interval; latency is enqueue→pop.
		interval := time.Duration(float64(time.Second) / serviceRate)
		var serve func()
		serve = func() {
			now := eng.Now()
			if enq, _, ok := q.Pop(); ok {
				o.delivered++
				lat.Observe(now.Sub(enq))
				if now.After(stormEnd) {
					o.drainedAt = now.Sub(stormEnd)
				}
			}
			depth.Add(now, float64(q.Len()))
			if now.Sub(figStart) < horizon || q.Len() > 0 {
				eng.After(interval, serve)
			}
		}
		eng.After(interval, serve)
		eng.Run()

		o.queueSheds = q.ShedData.Value()
		if adm != nil {
			o.admSheds = adm.Shed.Value()
		}
		o.flips = q.Degraded.Value() + q.Recovered.Value()
		o.p50 = lat.Percentile(50)
		o.p99 = lat.Percentile(99)
		for i := 0; i < depth.Buckets(); i++ {
			n := depth.Count(i)
			if n == 0 {
				continue
			}
			o.curve = append(o.curve, SeriesPoint{
				X: depth.BucketTime(i).Sub(figStart).Seconds(),
				Y: depth.Sum(i) / float64(n), // mean depth in the bucket
			})
		}
		return o
	}

	unbounded := run(0, false)
	shed := run(queueCap, false)
	admitted := run(queueCap, true)

	r := Result{ID: "overload", Title: fmt.Sprintf(
		"Overload storm: %.0fx service rate for %v (unbounded vs shed vs shed+admission)",
		stormRate/serviceRate, stormDur)}
	ms := func(d time.Duration) string {
		if d >= time.Second {
			return fmt.Sprintf("%.2fs", d.Seconds())
		}
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	}
	r.AddRow("p99 delivery latency, unbounded", "-", ms(unbounded.p99),
		"backlog grows for the whole storm; \"live\" updates arrive seconds late")
	r.AddRow("p99 delivery latency, shed", "-", ms(shed.p99),
		fmt.Sprintf("bounded by queue cap %d / service rate", queueCap))
	r.AddRow("p99 delivery latency, shed+admission", "-", ms(admitted.p99),
		"ingress bucket absorbs the storm before it queues")
	r.AddRow("p99 reduction vs unbounded", "-",
		fmt.Sprintf("%.0fx", float64(unbounded.p99)/float64(shed.p99)),
		"the bound the plane exists to enforce")
	r.AddRow("p50 delivery latency (unbounded/shed/admit)", "-",
		fmt.Sprintf("%s / %s / %s", ms(unbounded.p50), ms(shed.p50), ms(admitted.p50)), "")
	r.AddRow("max queue depth, unbounded", "-", fmt.Sprintf("%d", unbounded.maxDepth),
		"≈ storm excess × duration: memory growth a real host cannot sustain")
	r.AddRow("max queue depth, shed", "-", fmt.Sprintf("%d", shed.maxDepth), "")
	r.AddRow("max queue depth, shed+admission", "-", fmt.Sprintf("%d", admitted.maxDepth), "")
	r.AddRow("data deltas shed (queue)", "-",
		fmt.Sprintf("%d / %d / %d", unbounded.queueSheds, shed.queueSheds, admitted.queueSheds),
		"every shed is counted and signalled; devices resync the gap")
	r.AddRow("arrivals shed at admission", "-", fmt.Sprintf("%d", admitted.admSheds),
		"shed before any queue work (cheapest place to drop)")
	r.AddRow("flow signal transitions, shed", "-", fmt.Sprintf("%d", shed.flips),
		"FlowDegraded/FlowRecovered episodes observed by stream participants")
	r.AddRow("post-storm drain time (unbounded/shed)", "-",
		fmt.Sprintf("%s / %s", ms(unbounded.drainedAt), ms(shed.drainedAt)),
		"time after storm end until the last backlogged delivery")
	r.AddRow("delivered (unbounded/shed/admit)", "-",
		fmt.Sprintf("%d / %d / %d of %d", unbounded.delivered, shed.delivered,
			admitted.delivered, unbounded.arrivals), "")
	r.AddSeries("depth-unbounded", unbounded.curve)
	r.AddSeries("depth-shed", shed.curve)
	r.AddSeries("depth-shed-admission", admitted.curve)
	return r
}
