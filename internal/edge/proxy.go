package edge

import (
	"fmt"
	"io"
	"sync"

	"bladerunner/internal/burst"
	"bladerunner/internal/metrics"
	"bladerunner/internal/overload"
	"bladerunner/internal/trace"
)

// Proxy is a stream-level BURST relay. POPs and datacenter reverse proxies
// are both Proxies; they differ only in name, dialer, and router. Streams
// are relayed independently: each downstream request-stream maps to one
// upstream request-stream, with the proxy holding the stream's current
// subscription request for repair.
type Proxy struct {
	name   string
	dialer Dialer
	router Router
	// MaxRepairAttempts bounds reconnection attempts per failure before
	// the proxy gives up and terminates the stream downstream.
	MaxRepairAttempts int

	mu        sync.Mutex
	upstreams map[string]*upstream
	relays    map[*relay]bool
	downs     map[*burst.ServerSession]bool
	closed    bool

	// Metrics.
	StreamsRelayed  metrics.Counter
	ActiveStreams   metrics.Gauge
	Reconnects      metrics.Counter // proxy-induced stream reconnects (Fig 10)
	RepairFailures  metrics.Counter
	RewritesRelayed metrics.Counter
	DownstreamDrops metrics.Counter
	// ShedNotices counts shed-marker flow deltas this proxy relayed —
	// upstream hops telling devices that deltas were dropped and a resync
	// is needed. Edge visibility into degraded mode per POP.
	ShedNotices metrics.Counter

	// Tracer, when set, closes an edge.relay span per traced batch this
	// proxy forwards. nil disables tracing on the relay path.
	Tracer *trace.Tracer
}

type upstream struct {
	target string
	client *burst.Client
}

// NewProxy builds a proxy that routes with router and connects with dialer.
func NewProxy(name string, dialer Dialer, router Router) *Proxy {
	return &Proxy{
		name:              name,
		dialer:            dialer,
		router:            router,
		MaxRepairAttempts: 3,
		upstreams:         make(map[string]*upstream),
		relays:            make(map[*relay]bool),
		downs:             make(map[*burst.ServerSession]bool),
	}
}

// Name returns the proxy's diagnostic name.
func (p *Proxy) Name() string { return p.name }

// AcceptSession attaches a downstream BURST transport (a device or a
// downstream proxy).
func (p *Proxy) AcceptSession(name string, rwc io.ReadWriteCloser) *burst.ServerSession {
	var ss *burst.ServerSession
	ss = burst.NewServerSession(name, rwc, proxyHandler{p: p, sess: func() *burst.ServerSession { return ss }})
	p.mu.Lock()
	p.downs[ss] = true
	p.mu.Unlock()
	return ss
}

// Accept is the io-only form used with PipeNetwork.Register.
func (p *Proxy) Accept(rwc io.ReadWriteCloser) { p.AcceptSession(p.name+"-downstream", rwc) }

// ActiveRelays returns the number of live relayed streams.
func (p *Proxy) ActiveRelays() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.relays)
}

// Close simulates the proxy machine dying: every session it terminates —
// upstream and downstream — is severed, so neighbours detect the failure
// and run their own recovery (devices reconnect to another POP; POPs
// re-route streams to another proxy).
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	ups := make([]*upstream, 0, len(p.upstreams))
	for _, u := range p.upstreams {
		ups = append(ups, u)
	}
	p.upstreams = make(map[string]*upstream)
	downs := make([]*burst.ServerSession, 0, len(p.downs))
	for ss := range p.downs {
		downs = append(downs, ss)
	}
	p.downs = make(map[*burst.ServerSession]bool)
	p.mu.Unlock()
	for _, u := range ups {
		_ = u.client.Close()
	}
	for _, ss := range downs {
		_ = ss.Close()
	}
}

// upstreamFor returns (dialing if necessary) the shared client session to
// target.
func (p *Proxy) upstreamFor(target string) (*upstream, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("edge: proxy %s closed", p.name)
	}
	if u, ok := p.upstreams[target]; ok {
		p.mu.Unlock()
		return u, nil
	}
	p.mu.Unlock()

	rwc, err := p.dialer.Dial(target)
	if err != nil {
		return nil, err
	}
	u := &upstream{target: target}
	u.client = burst.NewClient(fmt.Sprintf("%s->%s", p.name, target), rwc, func(error) {
		// Upstream session died — clean peer close (io.EOF, e.g. a
		// draining BRASS) and transport failure take the same path on
		// purpose: drop it from the pool so the next subscribe
		// re-dials. Individual relays learn via their stream channels
		// and repair themselves.
		p.mu.Lock()
		if p.upstreams[target] == u {
			delete(p.upstreams, target)
		}
		p.mu.Unlock()
	})
	u.client.RelayRewrites = true

	p.mu.Lock()
	if existing, ok := p.upstreams[target]; ok {
		// Lost a race; use the winner and drop ours.
		p.mu.Unlock()
		_ = u.client.Close()
		return existing, nil
	}
	p.upstreams[target] = u
	p.mu.Unlock()
	return u, nil
}

// relay is the per-stream state machine.
type relay struct {
	p    *Proxy
	down *burst.ServerStream

	mu     sync.Mutex
	req    burst.Subscribe // current stored request (kept fresh on rewrites)
	up     *burst.ClientStream
	target string
	done   bool
}

func (r *relay) setDone() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return false
	}
	r.done = true
	return true
}

func (r *relay) isDone() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// connect routes and subscribes the relay's current request upstream.
func (r *relay) connect(avoid map[string]bool) error {
	r.mu.Lock()
	req := r.req
	r.mu.Unlock()
	target, err := r.p.router.Route(req, avoid)
	if err != nil {
		return err
	}
	// Record the routing choice before dialing so a failed attempt is
	// avoidable on the next repair pass (a sticky upstream in a dead
	// region would otherwise be retried forever).
	r.mu.Lock()
	r.target = target
	r.mu.Unlock()
	u, err := r.p.upstreamFor(target)
	if err != nil {
		return fmt.Errorf("dial %s: %w", target, err)
	}
	st, err := u.client.Subscribe(req)
	if err != nil {
		return fmt.Errorf("subscribe via %s: %w", target, err)
	}
	r.mu.Lock()
	r.up = st
	r.mu.Unlock()
	return nil
}

// run pumps batches from upstream to downstream, repairing the upstream leg
// on failure (axiom 2: the component downstream from a failure that is
// closest to it re-establishes connectivity).
func (r *relay) run() {
	defer func() {
		r.p.mu.Lock()
		delete(r.p.relays, r)
		r.p.mu.Unlock()
		r.p.ActiveStreams.Add(-1)
	}()

	for {
		r.mu.Lock()
		up := r.up
		r.mu.Unlock()
		failed := r.pump(up)
		if r.isDone() {
			return
		}
		if !failed {
			return
		}
		// Upstream leg failed; notify downstream (axiom 1), then repair.
		_ = r.down.SendBatch(burst.FlowStatusDelta(burst.FlowDegraded,
			"upstream "+r.target+" lost"))
		if !r.repair() {
			r.p.RepairFailures.Inc()
			if r.setDone() {
				_ = r.down.Terminate("stream unrecoverable: upstream gone")
			}
			return
		}
		r.p.Reconnects.Inc()
		_ = r.down.SendBatch(burst.FlowStatusDelta(burst.FlowRerouted,
			"stream re-established via "+r.targetName()))
	}
}

func (r *relay) targetName() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.target
}

// pump forwards batches until the upstream stream ends. It reports whether
// the ending was a transport failure (repairable) as opposed to an orderly
// termination/cancel.
func (r *relay) pump(up *burst.ClientStream) (failed bool) {
	for batch := range up.Events {
		sp := r.startRelaySpan(batch)
		forward := make([]burst.Delta, 0, len(batch))
		sawFailure := false
		terminated := false
		rewrites := 0
		for _, d := range batch {
			switch d.Type {
			case burst.DeltaFlowStatus:
				if d.Flow == burst.FlowDegraded && d.FlowDetail == "session closed" {
					// Synthesized by our upstream client: the
					// transport died. Handled after the loop; do
					// not forward (we send our own flow status).
					sawFailure = true
					continue
				}
				if overload.IsShedMarker(d.FlowDetail) {
					r.p.ShedNotices.Inc()
				}
				forward = append(forward, d)
			case burst.DeltaRewriteRequest:
				// Keep the repair state fresh and pass the rewrite
				// along so the device updates its copy too.
				r.mu.Lock()
				r.req = up.Request()
				r.mu.Unlock()
				r.p.RewritesRelayed.Inc()
				rewrites++
				forward = append(forward, d)
			case burst.DeltaTermination:
				terminated = true
				forward = append(forward, d)
			default:
				forward = append(forward, d)
			}
		}
		if rewrites > 0 {
			sp.AnnotateInt("rewrites", int64(rewrites))
		}
		if len(forward) > 0 {
			if err := r.down.SendBatch(forward...); err != nil {
				// Downstream is gone: cancel upstream and stop.
				sp.Annotate("drop", "downstream-lost")
				sp.End()
				if r.setDone() {
					_ = up.Cancel("downstream lost")
				}
				return false
			}
		}
		sp.End()
		if terminated {
			r.setDone()
			return false
		}
		if sawFailure {
			// Channel will close right after; fall through via range.
			continue
		}
	}
	return !r.isDone()
}

// startRelaySpan opens the edge.relay span for one forwarded batch,
// keying on the first traced delta (inactive when the batch carries no
// trace context or the proxy has no tracer).
func (r *relay) startRelaySpan(batch []burst.Delta) trace.Span {
	tr := r.p.Tracer
	if tr == nil {
		return trace.Span{}
	}
	var id trace.ID
	for _, d := range batch {
		if d.Trace != 0 {
			id = d.Trace
			break
		}
	}
	sp := tr.Start(id, trace.HopRelay, trace.HopFlush)
	if sp.Active() {
		r.mu.Lock()
		stream := r.req.Header[burst.HdrTraceStream]
		target := r.target
		r.mu.Unlock()
		sp.Annotate("proxy", r.p.name)
		sp.Annotate("upstream", target)
		sp.Annotate("stream", stream)
		sp.AnnotateInt("deltas", int64(len(batch)))
	}
	return sp
}

// repair re-routes and re-subscribes the stream using the stored request.
// Failed targets accumulate into the avoid set so successive attempts fan
// out across the healthy fleet (a sticky target in a dead region must not
// be retried on every pass); the final attempt widens to every target
// again, in case an avoided one has recovered.
func (r *relay) repair() bool {
	avoid := map[string]bool{r.targetName(): true}
	for attempt := 0; attempt < r.p.MaxRepairAttempts; attempt++ {
		if r.isDone() {
			return false
		}
		if err := r.connect(avoid); err == nil {
			return true
		}
		if attempt == r.p.MaxRepairAttempts-2 {
			avoid = nil // last attempt: the avoided targets may have recovered
			continue
		}
		if t := r.targetName(); t != "" {
			if avoid == nil {
				avoid = make(map[string]bool)
			}
			avoid[t] = true
		}
	}
	return false
}

type proxyHandler struct {
	p    *Proxy
	sess func() *burst.ServerSession
}

func (h proxyHandler) OnSubscribe(down *burst.ServerStream, sub burst.Subscribe) {
	p := h.p
	r := &relay{p: p, down: down, req: sub}
	down.State = r

	if err := r.connect(nil); err != nil {
		// The first routing choice failed — e.g. a sticky upstream in a
		// dead region, or a cross-region link that just went down. Run
		// the repair loop (avoid the failed target, then widen) instead
		// of terminating: the stream should land on ANY healthy upstream,
		// which is what makes cross-region failover of resubscribed
		// streams work at all.
		if !r.repair() {
			p.RepairFailures.Inc()
			_ = down.Terminate(fmt.Sprintf("no upstream: %v", err))
			return
		}
		p.Reconnects.Inc()
	}
	p.mu.Lock()
	p.relays[r] = true
	p.mu.Unlock()
	p.StreamsRelayed.Inc()
	p.ActiveStreams.Add(1)
	go r.run()
}

func (h proxyHandler) OnCancel(down *burst.ServerStream, c burst.Cancel) {
	if r, ok := down.State.(*relay); ok {
		if r.setDone() {
			r.mu.Lock()
			up := r.up
			r.mu.Unlock()
			if up != nil {
				_ = up.Cancel(c.Reason)
			}
		}
	}
}

func (h proxyHandler) OnAck(down *burst.ServerStream, a burst.Ack) {
	if r, ok := down.State.(*relay); ok {
		r.mu.Lock()
		up := r.up
		r.mu.Unlock()
		if up != nil {
			_ = up.Ack(a.Seq)
		}
	}
}

func (h proxyHandler) OnSessionClose(streams []*burst.ServerStream, err error) {
	// The downstream connection died (device vanished, or the downstream
	// proxy failed). Cancel the upstream leg of each affected stream and
	// GC the state (paper: proxies garbage collect stream state when the
	// connection to the device fails).
	if h.sess != nil {
		if ss := h.sess(); ss != nil {
			h.p.mu.Lock()
			delete(h.p.downs, ss)
			h.p.mu.Unlock()
		}
	}
	h.p.DownstreamDrops.Add(int64(len(streams)))
	for _, down := range streams {
		if r, ok := down.State.(*relay); ok {
			if r.setDone() {
				r.mu.Lock()
				up := r.up
				r.mu.Unlock()
				if up != nil {
					_ = up.Cancel("downstream connection lost")
				}
			}
		}
	}
}
