package was

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"bladerunner/internal/kvstore"
	"bladerunner/internal/pylon"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
)

var t0 = time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)

func newTestWAS(t *testing.T) (*Server, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine(t0)
	store := tao.MustNewStore(tao.DefaultConfig(), eng)
	graph := socialgraph.MustGenerate(socialgraph.Config{Users: 100, MeanFriends: 10, Seed: 1})
	nodes := []*kvstore.Node{
		kvstore.NewNode("a", "us"), kvstore.NewNode("b", "eu"), kvstore.NewNode("c", "ap"),
	}
	pyl := pylon.MustNew(pylon.DefaultConfig(), kvstore.MustNewCluster(nodes, 3))
	return New(store, graph, pyl, eng), eng
}

func TestParseFieldBasics(t *testing.T) {
	cases := []struct {
		in       string
		wantName string
		wantArgs map[string]string
	}{
		{"activeStatus", "activeStatus", map[string]string{}},
		{"liveVideoComments(videoID: 7)", "liveVideoComments", map[string]string{"videoID": "7"}},
		{`postComment(videoID: 7, text: "hi, there")`, "postComment",
			map[string]string{"videoID": "7", "text": "hi, there"}},
		{" spaced ( a : 1 , b : 2 ) ", "spaced", map[string]string{"a": "1", "b": "2"}},
	}
	for _, c := range cases {
		got, err := ParseField(c.in)
		if err != nil {
			t.Errorf("ParseField(%q): %v", c.in, err)
			continue
		}
		if got.Name != c.wantName {
			t.Errorf("ParseField(%q).Name = %q", c.in, got.Name)
		}
		if len(got.Args) != len(c.wantArgs) {
			t.Errorf("ParseField(%q).Args = %v, want %v", c.in, got.Args, c.wantArgs)
			continue
		}
		for k, v := range c.wantArgs {
			if got.Args[k] != v {
				t.Errorf("ParseField(%q).Args[%q] = %q, want %q", c.in, k, got.Args[k], v)
			}
		}
	}
}

func TestParseFieldErrors(t *testing.T) {
	for _, in := range []string{
		"", "  ", "9bad", "f(", "f(a)", "f(a: 1", "f(a: 1, a: 2)",
		"f(:1)", "bad name(a: 1)", `f(a: "unterminated)`,
	} {
		if _, err := ParseField(in); err == nil {
			t.Errorf("ParseField(%q) accepted", in)
		}
	}
}

func TestFieldCallHelpers(t *testing.T) {
	f, err := ParseField(`m(videoID: 42, text: "yo")`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Uint64Arg("videoID")
	if err != nil || n != 42 {
		t.Errorf("Uint64Arg = %d, %v", n, err)
	}
	if _, err := f.Uint64Arg("missing"); err == nil {
		t.Error("missing arg accepted")
	}
	if _, err := f.Uint64Arg("text"); err == nil {
		t.Error("non-numeric accepted")
	}
	s, err := f.StringArg("text")
	if err != nil || s != "yo" {
		t.Errorf("StringArg = %q, %v", s, err)
	}
	if _, err := f.StringArg("missing"); err == nil {
		t.Error("missing string arg accepted")
	}
	if got := f.String(); got != `m(text: yo, videoID: 42)` {
		t.Errorf("String() = %q", got)
	}
	if got := (FieldCall{Name: "q"}).String(); got != "q" {
		t.Errorf("no-arg String() = %q", got)
	}
}

func TestQueryDispatch(t *testing.T) {
	s, _ := newTestWAS(t)
	s.RegisterQuery("friendCount", func(ctx *Ctx, call FieldCall) (any, error) {
		uid, err := call.Uint64Arg("user")
		if err != nil {
			return nil, err
		}
		return len(ctx.Srv.Graph.Friends(socialgraph.UserID(uid))), nil
	})
	out, err := s.Query(1, "friendCount(user: 1)")
	if err != nil {
		t.Fatal(err)
	}
	var n int
	if err := json.Unmarshal(out, &n); err != nil {
		t.Fatal(err)
	}
	if n != len(s.Graph.Friends(1)) {
		t.Errorf("friendCount = %d", n)
	}
	if s.Queries.Value() != 1 {
		t.Errorf("Queries = %d", s.Queries.Value())
	}
	if _, err := s.Query(1, "nope"); !errors.Is(err, ErrUnknownField) {
		t.Errorf("unknown query: %v", err)
	}
	if _, err := s.Query(1, "((("); err == nil {
		t.Error("bad expression accepted")
	}
}

func TestMutationDispatchAndTAOWrite(t *testing.T) {
	s, _ := newTestWAS(t)
	s.RegisterMutation("post", func(ctx *Ctx, call FieldCall) (any, error) {
		text, err := call.StringArg("text")
		if err != nil {
			return nil, err
		}
		id := ctx.Srv.TAO.ObjectAdd("comment", map[string]string{"text": text})
		return uint64(id), nil
	})
	out, err := s.Mutate(3, `post(text: "hello")`)
	if err != nil {
		t.Fatal(err)
	}
	var id uint64
	if err := json.Unmarshal(out, &id); err != nil {
		t.Fatal(err)
	}
	obj, err := s.TAO.ObjectGet(tao.ObjID(id))
	if err != nil {
		t.Fatal(err)
	}
	if obj.Data["text"] != "hello" {
		t.Errorf("stored text = %q", obj.Data["text"])
	}
	if s.Mutations.Value() != 1 {
		t.Errorf("Mutations = %d", s.Mutations.Value())
	}
	if _, err := s.Mutate(3, "ghost"); !errors.Is(err, ErrUnknownField) {
		t.Errorf("unknown mutation: %v", err)
	}
}

func TestResolveSubscription(t *testing.T) {
	s, _ := newTestWAS(t)
	s.RegisterSubscription("liveVideoComments", func(ctx *Ctx, call FieldCall) ([]pylon.Topic, error) {
		vid, err := call.Uint64Arg("videoID")
		if err != nil {
			return nil, err
		}
		return []pylon.Topic{pylon.Topic(fmt.Sprintf("/LVC/%d", vid))}, nil
	})
	topics, err := s.ResolveSubscription(5, "liveVideoComments(videoID: 9)")
	if err != nil {
		t.Fatal(err)
	}
	if len(topics) != 1 || topics[0] != "/LVC/9" {
		t.Errorf("topics = %v", topics)
	}
	if _, err := s.ResolveSubscription(5, "unknown(x: 1)"); !errors.Is(err, ErrUnknownField) {
		t.Errorf("unknown subscription: %v", err)
	}
}

func TestPrivacyCheck(t *testing.T) {
	s, _ := newTestWAS(t)
	if !s.PrivacyCheck(1, 2) {
		t.Skip("generator blocked 1-2; improbable")
	}
	s.Graph.Block(1, 2)
	if s.PrivacyCheck(1, 2) {
		t.Error("viewer-blocks-author passed")
	}
	// Symmetric: author blocked viewer.
	s.Graph.Block(3, 4)
	if s.PrivacyCheck(4, 3) {
		t.Error("author-blocks-viewer passed")
	}
	if s.PrivacyDenied.Value() != 2 {
		t.Errorf("PrivacyDenied = %d", s.PrivacyDenied.Value())
	}
	// System principals always pass.
	if !s.PrivacyCheck(0, 5) || !s.PrivacyCheck(5, 0) {
		t.Error("system principal denied")
	}
}

func TestFetchPayloadPrivacyAndResolution(t *testing.T) {
	s, _ := newTestWAS(t)
	ref := s.TAO.ObjectAdd("comment", map[string]string{"text": "nice"})
	s.RegisterPayload("lvc", func(ctx *Ctx, r tao.ObjID, ev pylon.Event) (any, error) {
		obj, err := ctx.Srv.TAO.ObjectGet(r)
		if err != nil {
			return nil, err
		}
		return obj.Data["text"], nil
	})
	ev := pylon.Event{Ref: uint64(ref), Meta: map[string]string{"author": "2"}}
	out, err := s.FetchPayload("lvc", 1, ev)
	if err != nil {
		t.Fatal(err)
	}
	var text string
	if err := json.Unmarshal(out, &text); err != nil || text != "nice" {
		t.Errorf("payload = %q err=%v", text, err)
	}
	// Blocked author → denied.
	s.Graph.Block(1, 2)
	if _, err := s.FetchPayload("lvc", 1, ev); !errors.Is(err, ErrDenied) {
		t.Errorf("blocked fetch: %v", err)
	}
	// Unknown app.
	if _, err := s.FetchPayload("ghost", 1, pylon.Event{}); !errors.Is(err, ErrUnknownField) {
		t.Errorf("unknown app: %v", err)
	}
}

func TestPublishImmediateAndRanked(t *testing.T) {
	s, eng := newTestWAS(t)
	s.RankDelay = sim.Constant{V: 1790 * time.Millisecond}

	s.Publish(pylon.Event{Topic: "/x"}, false)
	eng.Run()
	if s.PublishesEmitted.Value() != 1 {
		t.Fatalf("immediate publish not emitted")
	}
	if lat := s.PublishLatency.Max(); lat != 0 {
		t.Errorf("unranked latency = %v, want 0 (sim time)", lat)
	}

	s.Publish(pylon.Event{Topic: "/x"}, true)
	if s.PublishesEmitted.Value() != 1 {
		t.Error("ranked publish emitted before rank delay")
	}
	eng.Run()
	if s.PublishesEmitted.Value() != 2 {
		t.Error("ranked publish never emitted")
	}
	if lat := s.PublishLatency.Max(); lat != 1790*time.Millisecond {
		t.Errorf("ranked latency = %v, want 1.79s", lat)
	}
}

func TestQualityScoreProperties(t *testing.T) {
	g := socialgraph.MustGenerate(socialgraph.Config{Users: 50, MeanFriends: 5, Seed: 2})
	u := g.User(1)
	a := QualityScore(u, "hello world")
	b := QualityScore(u, "hello world")
	if a != b {
		t.Error("score not deterministic")
	}
	if a < 0 || a >= 1.0001 {
		t.Errorf("score %v out of range", a)
	}
	celeb := socialgraph.User{ID: 2, Celebrity: true}
	if QualityScore(celeb, "meh") < 0.8 {
		t.Error("celebrity floor not applied")
	}
}

func TestQualityScoreRangeProperty(t *testing.T) {
	f := func(id uint16, text string, celeb bool) bool {
		u := socialgraph.User{ID: socialgraph.UserID(id) + 1, Celebrity: celeb}
		s := QualityScore(u, text)
		return s >= 0 && s <= 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentExecutorStress hammers the executor from many goroutines:
// registrations are done up front; queries, mutations, subscription
// resolution, privacy checks, and payload fetches race freely. Run with
// -race in CI.
func TestConcurrentExecutorStress(t *testing.T) {
	s, _ := newTestWAS(t)
	s.Sched = sim.RealClock{} // timers must actually run concurrently
	s.RegisterQuery("q", func(ctx *Ctx, call FieldCall) (any, error) { return 1, nil })
	s.RegisterMutation("m", func(ctx *Ctx, call FieldCall) (any, error) {
		id := ctx.Srv.TAO.ObjectAdd("o", nil)
		ctx.Srv.Publish(pylon.Event{Topic: "/stress", Ref: uint64(id)}, false)
		return uint64(id), nil
	})
	s.RegisterSubscription("s", func(ctx *Ctx, call FieldCall) ([]pylon.Topic, error) {
		return []pylon.Topic{"/stress"}, nil
	})
	s.RegisterPayload("app", func(ctx *Ctx, ref tao.ObjID, ev pylon.Event) (any, error) {
		return "p", nil
	})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			viewer := socialgraph.UserID(g%50 + 1)
			for i := 0; i < 200; i++ {
				switch i % 5 {
				case 0:
					if _, err := s.Query(viewer, "q"); err != nil {
						t.Errorf("query: %v", err)
					}
				case 1:
					if _, err := s.Mutate(viewer, "m"); err != nil {
						t.Errorf("mutate: %v", err)
					}
				case 2:
					if _, err := s.ResolveSubscription(viewer, "s"); err != nil {
						t.Errorf("resolve: %v", err)
					}
				case 3:
					s.PrivacyCheck(viewer, socialgraph.UserID(i%50+1))
				case 4:
					_, _ = s.FetchPayload("app", viewer, pylon.Event{Ref: 1})
				}
			}
		}()
	}
	wg.Wait()
	if s.Mutations.Value() != 8*40 {
		t.Errorf("Mutations = %d, want %d", s.Mutations.Value(), 8*40)
	}
	if s.Queries.Value() != 8*40 {
		t.Errorf("Queries = %d", s.Queries.Value())
	}
}
