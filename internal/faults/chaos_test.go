// Chaos suite: seeded fault schedules driven against the full wired stack
// (devices → POPs → reverse proxies → BRASS → Pylon), asserting the paper's
// §4 failure axioms end to end — every faulted stream eventually reports
// FlowRecovered, mailbox sequence numbers resume monotonically with no
// gaps, and nothing leaks.
//
// The schedule for a run is fully determined by its seed (see
// TestChaosScheduleDeterministicPerSeed); CI runs the suite under -race for
// a small fixed seed matrix via BR_CHAOS_SEED.
package faults_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/burst"
	"bladerunner/internal/core"
	"bladerunner/internal/device"
	"bladerunner/internal/faults"
	"bladerunner/internal/socialgraph"
)

// chaosSeed returns the run's seed: BR_CHAOS_SEED if set, else 1.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if v := os.Getenv("BR_CHAOS_SEED"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("BR_CHAOS_SEED=%q: %v", v, err)
		}
		return seed
	}
	return 1
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestChaosScheduleDeterministicPerSeed pins the reproducibility contract:
// a chaos run's fault schedule is a pure function of its seed.
func TestChaosScheduleDeterministicPerSeed(t *testing.T) {
	seed := chaosSeed(t)
	targets := []string{"pop-0", "pop-1"}
	a := faults.RandomPlan(seed, targets, 2*time.Second, 3)
	b := faults.RandomPlan(seed, targets, 2*time.Second, 3)
	if a.Schedule() != b.Schedule() {
		t.Fatalf("same seed produced different schedules:\n%s\nvs\n%s",
			a.Schedule(), b.Schedule())
	}
	if a.Len() == 0 {
		t.Fatal("empty plan")
	}
}

// streamWatcher drains a stream's channels concurrently, recording payload
// sequence numbers and flow events.
type streamWatcher struct {
	mu        sync.Mutex
	seqs      map[uint64]bool
	maxSeq    uint64
	regressed bool // a new max was followed by a smaller previously-unseen max
	recovered int
	lastFlow  burst.FlowCode
	done      sync.WaitGroup
}

func watch(st *device.Stream) *streamWatcher {
	w := &streamWatcher{seqs: make(map[uint64]bool)}
	w.done.Add(2)
	go func() {
		defer w.done.Done()
		for d := range st.Updates {
			var m apps.MessagePayload
			_ = json.Unmarshal(d.Payload, &m)
			w.mu.Lock()
			w.seqs[m.Seq] = true
			if m.Seq > w.maxSeq {
				w.maxSeq = m.Seq
			}
			w.mu.Unlock()
		}
	}()
	go func() {
		defer w.done.Done()
		for code := range st.Flow {
			w.mu.Lock()
			if code == burst.FlowRecovered {
				w.recovered++
			}
			w.lastFlow = code
			w.mu.Unlock()
		}
	}()
	return w
}

func (w *streamWatcher) hasAll(n uint64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for s := uint64(1); s <= n; s++ {
		if !w.seqs[s] {
			return false
		}
	}
	return true
}

func (w *streamWatcher) snapshot() (recovered int, last burst.FlowCode) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.recovered, w.lastFlow
}

// TestChaosRecovery runs a seeded fault schedule against the live stack,
// then a mass disconnect (every POP cut at once), and asserts full
// recovery: every stream reports FlowRecovered, every mailbox sequence
// 1..K arrives with no gaps, and no goroutines leak.
func TestChaosRecovery(t *testing.T) {
	seed := chaosSeed(t)
	goroutinesBefore := runtime.NumGoroutine()

	cfg := core.DefaultConfig()
	cfg.Graph.Users = 100
	cfg.Graph.BlockProb = 0
	c := core.MustNewCluster(cfg, nil)
	fn := faults.NewFaultNetwork(c.Net, nil, seed)
	pops := c.POPTargets()

	const (
		nDevices  = 5
		authorUID = socialgraph.UserID(90)
	)
	author := c.NewDevice(authorUID)

	devices := make([]*device.Device, nDevices)
	streams := make([]*device.Stream, nDevices)
	watchers := make([]*streamWatcher, nDevices)
	threads := make([]uint64, nDevices)
	for i := 0; i < nDevices; i++ {
		uid := socialgraph.UserID(10 + i)
		devices[i] = c.NewDeviceVia(fn, device.Config{
			User: uid,
			// Fast backoff so the run settles quickly; jitter stays on so
			// the mass disconnect exercises decorrelated re-dials.
			Backoff:     faults.BackoffPolicy{Base: 10 * time.Millisecond, Max: 160 * time.Millisecond},
			BackoffSeed: seed*1000 + int64(i) + 1,
		})
		if err := devices[i].Connect(); err != nil {
			t.Fatal(err)
		}
		st, err := devices[i].Subscribe(apps.AppMessenger, "messenger", nil)
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = st
		watchers[i] = watch(st)

		out, err := author.Mutate(fmt.Sprintf(`createThread(members: "%d,%d")`, authorUID, uid))
		if err != nil {
			t.Fatal(err)
		}
		_ = json.Unmarshal(out, &threads[i])
	}
	waitFor(t, "all mailbox subscriptions", func() bool {
		for i := 0; i < nDevices; i++ {
			if len(c.Pylon.Subscribers(apps.MailboxTopic(socialgraph.UserID(10+i)))) < 1 {
				return false
			}
		}
		return true
	})

	send := func(round string) {
		t.Helper()
		for i := 0; i < nDevices; i++ {
			msg := fmt.Sprintf(`sendMessage(threadID: %d, text: "%s")`, threads[i], round)
			if _, err := author.Mutate(msg); err != nil {
				t.Fatal(err)
			}
		}
	}
	var sent uint64

	// Baseline traffic before any fault.
	send("pre-chaos")
	sent++
	for i, w := range watchers {
		w := w
		waitFor(t, fmt.Sprintf("baseline delivery to device %d", i), func() bool { return w.hasAll(sent) })
	}

	// Seeded chaos window: random cut/heal pairs on the POPs while traffic
	// flows. The schedule is logged so a failing seed can be replayed.
	plan := faults.RandomPlan(seed, pops, 2*time.Second, 3)
	t.Logf("chaos schedule (seed %d):\n%s", seed, plan.Schedule())
	planDone := plan.Start(fn)
	defer planDone()
	horizon := plan.Horizon()
	mid := time.After(horizon / 2)
	<-mid
	send("mid-chaos")
	sent++
	time.Sleep(horizon/2 + 100*time.Millisecond)

	// Mass disconnect: every POP down at once, so every stream faults.
	for _, pop := range pops {
		fn.Cut(pop)
	}
	time.Sleep(100 * time.Millisecond)
	for _, pop := range pops {
		fn.Heal(pop)
	}
	waitFor(t, "all devices reconnected", func() bool {
		for _, d := range devices {
			if !d.Connected() {
				return false
			}
		}
		return true
	})
	waitFor(t, "all streams resubscribed", func() bool {
		for i, d := range devices {
			if d.Streams() != 1 {
				return false
			}
			// The stream's serving host must hold a live Pylon interest.
			host := streams[i].Request().Header[burst.HdrStickyBRASS]
			if host == "" {
				return false
			}
			subs := c.Pylon.Subscribers(apps.MailboxTopic(socialgraph.UserID(10 + i)))
			found := false
			for _, s := range subs {
				if s == host {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	})

	// Post-recovery traffic: the resumed streams must deliver everything —
	// gaps closed by the mailbox catch-up, sequence numbers monotonic.
	send("post-chaos")
	sent++
	for i, w := range watchers {
		w := w
		waitFor(t, fmt.Sprintf("full mailbox on device %d after recovery", i),
			func() bool { return w.hasAll(sent) })
	}

	// Every stream that was faulted (all of them — the mass cut saw to it)
	// must have announced recovery, and recovery must be its final state.
	for i, w := range watchers {
		recovered, last := w.snapshot()
		if recovered == 0 {
			t.Errorf("stream %d never reported FlowRecovered", i)
		}
		if last != burst.FlowRecovered {
			t.Errorf("stream %d final flow state = %v, want FlowRecovered", i, last)
		}
	}
	if fn.InjectedCuts.Value() < int64(len(pops)) {
		t.Errorf("InjectedCuts = %d, want >= %d", fn.InjectedCuts.Value(), len(pops))
	}

	// Teardown and leak check: closing devices closes their channels, which
	// ends the watcher goroutines; the cluster teardown ends the rest.
	for _, d := range devices {
		d.Close()
	}
	author.Close()
	for _, w := range watchers {
		w.done.Wait()
	}
	c.Close()
	waitFor(t, "goroutines drained", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= goroutinesBefore+3
	})
}
