package apps

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"bladerunner/internal/brass"
	"bladerunner/internal/burst"
	"bladerunner/internal/pylon"
	"bladerunner/internal/tao"
	"bladerunner/internal/was"
)

// Stories keeps each device's stories tray up to date (paper §3.4).
// Stories are grouped into per-author "containers"; the device displays
// the N highest-ranked containers of the user's friends. The BRASS manages
// what is displayed: it pushes (i) new stories for displayed containers,
// (ii) containers that ranked into the top N, and (iii) container deletion
// requests — so the device needs only one initial poll ever.
type Stories struct {
	w Registrar

	// TraySize is the number of containers a device displays (paper: n).
	TraySize int
}

// StoriesTopic returns the Pylon topic for one author's stories.
func StoriesTopic(author uint64) pylon.Topic {
	return pylon.Topic(fmt.Sprintf("/Stories/%d", author))
}

// StoryDelta is the device-facing tray operation.
type StoryDelta struct {
	Op      string  `json:"op"` // "container_add", "container_remove", "story_add"
	Author  uint64  `json:"author"`
	StoryID uint64  `json:"story_id,omitempty"`
	Content string  `json:"content,omitempty"`
	Rank    float64 `json:"rank,omitempty"`
}

// NewStories registers the WAS half and returns the application.
func NewStories(w Registrar) *Stories {
	a := &Stories{w: w, TraySize: 3}

	w.RegisterMutation("postStory", func(ctx *was.Ctx, call was.FieldCall) (any, error) {
		content, err := call.StringArg("content")
		if err != nil {
			return nil, err
		}
		author := ctx.Srv.Graph.User(ctx.Viewer)
		score := was.QualityScore(author, content)
		ref := ctx.Srv.TAO.ObjectAdd("story", map[string]string{
			"content": content,
			"author":  strconv.FormatUint(uint64(author.ID), 10),
			"score":   strconv.FormatFloat(score, 'f', 4, 64),
		})
		ctx.Srv.TAO.AssocAdd(tao.ObjID(author.ID), "user_story", ref, ctx.Now, "")
		ctx.Publish(pylon.Event{
			Topic: StoriesTopic(uint64(author.ID)),
			Ref:   uint64(ref),
			Meta: map[string]string{
				"author": strconv.FormatUint(uint64(author.ID), 10),
				"score":  strconv.FormatFloat(score, 'f', 4, 64),
			},
		}, false)
		return uint64(ref), nil
	})

	w.RegisterSubscription("storiesTray", func(ctx *was.Ctx, call was.FieldCall) ([]pylon.Topic, error) {
		friends := ctx.Srv.Graph.Friends(ctx.Viewer)
		topics := make([]pylon.Topic, len(friends))
		for i, f := range friends {
			topics[i] = StoriesTopic(uint64(f))
		}
		return topics, nil
	})

	w.RegisterPayload(AppStories, func(ctx *was.Ctx, ref tao.ObjID, ev pylon.Event) (any, error) {
		obj, err := ctx.Reader().ObjectGet(ref)
		if err != nil {
			return nil, err
		}
		author, _ := strconv.ParseUint(obj.Data["author"], 10, 64)
		score, _ := strconv.ParseFloat(obj.Data["score"], 64)
		return StoryDelta{Op: "story_add", Author: author, StoryID: uint64(ref),
			Content: obj.Data["content"], Rank: score}, nil
	})
	return a
}

// Name implements brass.Application.
func (a *Stories) Name() string { return AppStories }

type storyContainer struct {
	author uint64
	rank   float64 // best score seen
}

type storiesStream struct {
	containers map[uint64]*storyContainer // author → container state
	displayed  map[uint64]bool            // containers on the device
}

type storiesInstance struct {
	app *Stories
	rt  *brass.Runtime
}

// NewInstance implements brass.Application.
func (a *Stories) NewInstance(rt *brass.Runtime) brass.AppInstance {
	return &storiesInstance{app: a, rt: rt}
}

func (in *storiesInstance) OnStreamOpen(st *brass.Stream) error {
	topics, err := in.rt.ResolveSubscription(st.Viewer, st.Header(burst.HdrSubscription))
	if err != nil {
		return err
	}
	st.State = &storiesStream{
		containers: make(map[uint64]*storyContainer),
		displayed:  make(map[uint64]bool),
	}
	for _, t := range topics {
		if err := st.AddTopic(t); err != nil {
			return err
		}
	}
	return nil
}

func (in *storiesInstance) OnStreamClose(st *brass.Stream, reason string) { st.State = nil }

func (in *storiesInstance) OnEvent(ev pylon.Event) {
	author, err := strconv.ParseUint(ev.Meta["author"], 10, 64)
	if err != nil {
		return
	}
	score, _ := strconv.ParseFloat(ev.Meta["score"], 64)
	for _, st := range in.rt.Instance().StreamsForTopic(ev.Topic) {
		state, ok := st.State.(*storiesStream)
		if !ok {
			continue
		}
		c := state.containers[author]
		if c == nil {
			c = &storyContainer{author: author}
			state.containers[author] = c
		}
		if score > c.rank {
			c.rank = score
		}
		in.reconcile(st, state, ev)
	}
}

// reconcile recomputes the top-N containers and pushes the diff plus the
// new story when its container is displayed. The BRASS — not the device —
// decides what the tray shows.
func (in *storiesInstance) reconcile(st *brass.Stream, state *storiesStream, ev pylon.Event) {
	ranked := make([]*storyContainer, 0, len(state.containers))
	for _, c := range state.containers {
		ranked = append(ranked, c)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].rank != ranked[j].rank {
			return ranked[i].rank > ranked[j].rank
		}
		return ranked[i].author < ranked[j].author
	})
	top := make(map[uint64]bool, in.app.traySize())
	for i, c := range ranked {
		if i >= in.app.traySize() {
			break
		}
		top[c.author] = true
	}

	var acc brass.BatchAccumulator
	// Containers that fell out of the tray.
	for author := range state.displayed {
		if !top[author] {
			delete(state.displayed, author)
			b, _ := json.Marshal(StoryDelta{Op: "container_remove", Author: author})
			acc.Add(burst.PayloadDelta(0, b))
		}
	}
	// Containers that ranked in.
	for author := range top {
		if !state.displayed[author] {
			state.displayed[author] = true
			b, _ := json.Marshal(StoryDelta{Op: "container_add", Author: author,
				Rank: state.containers[author].rank})
			acc.Add(burst.PayloadDelta(0, b))
		}
	}
	// The new story itself, if its container is displayed.
	evAuthor, _ := strconv.ParseUint(ev.Meta["author"], 10, 64)
	if state.displayed[evAuthor] {
		if payload, err := st.FetchPayload(ev); err == nil {
			acc.Add(burst.PayloadDelta(ev.ID, payload))
		} else {
			st.Filtered()
		}
	} else {
		st.Filtered()
	}
	_ = acc.Flush(st)
}

// traySize returns the configured tray size with a safe floor.
func (a *Stories) traySize() int {
	if a.TraySize <= 0 {
		return 3
	}
	return a.TraySize
}

func (in *storiesInstance) OnAck(st *brass.Stream, seq uint64) {}

var _ brass.Application = (*Stories)(nil)
