package experiments

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"bladerunner/internal/kvstore"
	"bladerunner/internal/pylon"
	"bladerunner/internal/socialgraph"
)

// This file quantifies the design choices DESIGN.md §6 calls out. Each
// ablation compares Bladerunner's choice against the alternative the paper
// argues against.

// AblationMetadataVsPayload quantifies the third "unique aspect" of §1:
// publishing metadata-only events (BRASS fetches payloads from the WAS on
// demand) vs pushing full payloads through Pylon. The cost of the paper's
// choice is one extra point query per *delivered* update; the benefit is
// that cross-region links carry only metadata, and filtered-out updates
// (80%+) never move payload bytes at all.
func AblationMetadataVsPayload(events int, remoteRegions int, keepRate float64) Result {
	meta := pylon.Event{
		Topic: "/LVC/12345",
		Ref:   987654321,
		Meta: map[string]string{
			"author": "123456789",
			"score":  "0.8312",
			"lang":   "2",
			"video":  "12345",
		},
	}
	type fullEvent struct {
		pylon.Event
		Payload []byte `json:"payload"`
	}
	payload := make([]byte, 2048) // a comment payload with user context
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	metaBytes, _ := json.Marshal(meta)
	fullBytes, _ := json.Marshal(fullEvent{Event: meta, Payload: payload})

	crossMeta := int64(events) * int64(len(metaBytes)) * int64(remoteRegions)
	crossFull := int64(events) * int64(len(fullBytes)) * int64(remoteRegions)
	// Extra WAS point queries under metadata-only: one per delivery.
	extraQueries := int64(float64(events) * keepRate)

	r := Result{ID: "ablation-metadata", Title: "Metadata-only publish vs full-payload publish"}
	mb := func(b int64) string { return fmt.Sprintf("%.1fMB", float64(b)/1e6) }
	r.AddRow("cross-region bytes (metadata-only)", "-", mb(crossMeta),
		fmt.Sprintf("%d events x %dB x %d remote regions", events, len(metaBytes), remoteRegions))
	r.AddRow("cross-region bytes (full payload)", "-", mb(crossFull),
		"would more than double cross-region usage already paid by TAO replication")
	r.AddRow("bytes saved", "-", pct(1-float64(crossMeta)/float64(crossFull)), "")
	r.AddRow("extra WAS point queries", "-", fmt.Sprintf("%d", extraQueries),
		fmt.Sprintf("only for the %.0f%% of events actually delivered", keepRate*100))
	return r
}

// AblationSubscriptionDedup quantifies footnote 10: the per-host
// subscription manager registers each topic with Pylon once per host, no
// matter how many colocated streams/instances want it. The ablation runs
// the real Pylon against both policies.
func AblationSubscriptionDedup(streamsPerHost, hosts int) Result {
	build := func() (*pylon.Service, []*countingHost) {
		nodes := []*kvstore.Node{
			kvstore.NewNode("a", "us"), kvstore.NewNode("b", "eu"), kvstore.NewNode("c", "ap"),
		}
		pyl := pylon.MustNew(pylon.DefaultConfig(), kvstore.MustNewCluster(nodes, 3))
		hs := make([]*countingHost, hosts)
		for i := range hs {
			hs[i] = &countingHost{id: fmt.Sprintf("h%d", i)}
			pyl.RegisterHost(hs[i])
		}
		return pyl, hs
	}

	// With dedup: one Pylon subscription per host.
	pylDedup, _ := build()
	for i := 0; i < hosts; i++ {
		_ = pylDedup.Subscribe("/hot", fmt.Sprintf("h%d", i))
	}
	nDedup, _ := pylDedup.Publish(pylon.Event{Topic: "/hot"})

	// Without dedup: one Pylon subscription per stream. Pylon's
	// subscriber sets are keyed by member name, so per-stream members
	// multiply both the KV store size and the fanout work.
	pylRaw, rawHosts := build()
	for i := 0; i < hosts; i++ {
		for s := 0; s < streamsPerHost; s++ {
			member := fmt.Sprintf("h%d-stream%d", i, s)
			pylRaw.RegisterHost(&aliasHost{id: member, to: rawHosts[i]})
			_ = pylRaw.Subscribe("/hot", member)
		}
	}
	nRaw, _ := pylRaw.Publish(pylon.Event{Topic: "/hot"})

	r := Result{ID: "ablation-dedup", Title: "Host-level Pylon subscription dedup (footnote 10)"}
	r.AddRow("Pylon subscribers (deduped)", "-", fmt.Sprintf("%d", len(pylDedup.Subscribers("/hot"))),
		fmt.Sprintf("%d hosts x %d streams", hosts, streamsPerHost))
	r.AddRow("Pylon subscribers (per-stream)", "-", fmt.Sprintf("%d", len(pylRaw.Subscribers("/hot"))), "")
	r.AddRow("fanout work per publish (deduped)", "-", fmt.Sprintf("%d sends", nDedup), "")
	r.AddRow("fanout work per publish (per-stream)", "-", fmt.Sprintf("%d sends", nRaw),
		fmt.Sprintf("%dx more", int64(nRaw)/maxI64(int64(nDedup), 1)))
	return r
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

type countingHost struct {
	id string
	n  int
}

func (h *countingHost) ID() string            { return h.id }
func (h *countingHost) Deliver(_ pylon.Event) { h.n++ }

type aliasHost struct {
	id string
	to *countingHost
}

func (h *aliasHost) ID() string             { return h.id }
func (h *aliasHost) Deliver(ev pylon.Event) { h.to.Deliver(ev) }

// AblationFirstResponder quantifies Pylon's first-responder forwarding
// (§3.1): fan-out begins as soon as the first (local) subscription replica
// answers, vs waiting for a quorum of replicas across regions.
func AblationFirstResponder(samples int) Result {
	// Replica RTTs: local ~2ms, remote regions 60-120ms.
	local := 2 * time.Millisecond
	remote1 := 70 * time.Millisecond
	remote2 := 110 * time.Millisecond

	firstResponder := local // fanout starts on the first reply
	// Quorum (2 of 3): must wait for the second-fastest reply.
	quorum := remote1
	_ = remote2

	r := Result{ID: "ablation-firstresponder", Title: "First-responder fanout vs quorum-wait fanout"}
	r.AddRow("fanout start (first responder)", "-", firstResponder.String(),
		"local replica answers first")
	r.AddRow("fanout start (quorum wait)", "-", quorum.String(),
		"second reply crosses a region")
	r.AddRow("latency saved per publish", "-", (quorum - firstResponder).String(),
		"stragglers handled by patch-forwarding instead")
	r.AddRow("consistency cost", "-", "bounded",
		"missed subscribers receive the event on the late replica's reply (patch-forward)")
	return r
}

// AblationRateLimitOrder quantifies the configuration-interaction anecdote
// in §2: privacy-checking every message is wasteful, but privacy-checking
// after rate-limiting delivers fewer messages than intended when checks
// deny. Per-application BRASS code resolves this (LVC checks at pop time
// and pops again on denial); a generic pipeline must pick one global order.
func AblationRateLimitOrder(events, slots int, denyFrac float64, graph *socialgraph.Graph) Result {
	// Deterministic denial pattern: every k-th message is from a blocked
	// author, where k ≈ 1/denyFrac.
	denyEvery := 0
	if denyFrac > 0 {
		denyEvery = int(1/denyFrac + 0.5)
	}
	isDenied := func(i int) bool { return denyEvery > 0 && i%denyEvery == denyEvery-1 }

	// Order A: privacy check everything, then rate-limit the survivors.
	checksA := events
	survivors := 0
	for i := 0; i < events; i++ {
		if !isDenied(i) {
			survivors++
		}
	}
	deliveredA := minI(slots, survivors)

	// Order B: rate-limit first, privacy-check only the selected.
	checksB := minI(slots, events)
	deliveredB := 0
	for i := 0; i < checksB; i++ {
		if !isDenied(i) {
			deliveredB++
		}
	}

	// Bladerunner (per-app code): pop at the rate limit, check, and on a
	// denial pop the next candidate — full slots, near-minimal checks.
	checksBR, deliveredBR, next := 0, 0, 0
	for s := 0; s < slots; s++ {
		for next < events {
			checksBR++
			denied := isDenied(next)
			next++
			if !denied {
				deliveredBR++
				break
			}
		}
	}

	r := Result{ID: "ablation-ratelimit-order", Title: "Privacy check vs rate limit ordering (§2)"}
	r.AddRow("checks (privacy first)", "-", fmt.Sprintf("%d", checksA), "wasteful: checks filtered-out messages")
	r.AddRow("delivered (privacy first)", "-", fmt.Sprintf("%d", deliveredA), "")
	r.AddRow("checks (rate-limit first)", "-", fmt.Sprintf("%d", checksB), "cheap")
	r.AddRow("delivered (rate-limit first)", "-", fmt.Sprintf("%d", deliveredB),
		"user gets fewer messages than intended")
	r.AddRow("checks (per-app BRASS)", "-", fmt.Sprintf("%d", checksBR),
		"pop-check-repop: checks only candidates")
	r.AddRow("delivered (per-app BRASS)", "-", fmt.Sprintf("%d", deliveredBR),
		"slots filled despite denials")
	return r
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// GenericFilterConfig drives the generic configurable pub/sub filter chain
// the paper's team abandoned (§2): every knob is a config entry consulted
// per message.
type GenericFilterConfig map[string]string

// GenericFilter evaluates a message against a configuration-driven filter
// chain — the "exponential configuration space" approach.
func GenericFilter(cfg GenericFilterConfig, meta map[string]string) bool {
	if v, ok := cfg["min_score"]; ok {
		min, _ := strconv.ParseFloat(v, 64)
		score, _ := strconv.ParseFloat(meta["score"], 64)
		if score < min {
			return false
		}
	}
	if v, ok := cfg["lang_filter"]; ok && v == "on" {
		if want, ok := cfg["viewer_lang"]; ok && meta["lang"] != "" && meta["lang"] != want {
			return false
		}
	}
	if v, ok := cfg["drop_own"]; ok && v == "on" {
		if cfg["viewer"] == meta["author"] {
			return false
		}
	}
	if v, ok := cfg["allow_celebrities"]; ok && v == "off" {
		if meta["celebrity"] == "true" {
			return false
		}
	}
	return true
}

// PerAppFilter is the compiled equivalent: the same policy as straight-line
// application code (what each BRASS application ships).
func PerAppFilter(minScore float64, viewerLang, viewer string, meta map[string]string) bool {
	score, _ := strconv.ParseFloat(meta["score"], 64)
	if score < minScore {
		return false
	}
	if viewerLang != "" && meta["lang"] != "" && meta["lang"] != viewerLang {
		return false
	}
	if viewer == meta["author"] {
		return false
	}
	return true
}
