// Chaos run for the Pylon subscriber-cache fast path: seeded replica
// up/down flapping plus host churn racing a publish storm, with the cache
// enabled. The two invariants under test are the ones the cache must not
// weaken: a publish that starts after RemoveHost returns never delivers to
// the removed host, and a live subscriber that was registered before the
// chaos window never misses a successful publish round (the cached member
// list always contains it).
package faults_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"bladerunner/internal/kvstore"
	"bladerunner/internal/pylon"
)

// recHost is a minimal recording pylon.Subscriber.
type recHost struct {
	id string
	n  atomic.Int64
}

func (h *recHost) ID() string             { return h.id }
func (h *recHost) Deliver(ev pylon.Event) { h.n.Add(1) }

// TestChaosSubscriberCacheInvariants flips KV replicas up and down on a
// seeded schedule while transient hosts churn and publishers hammer one hot
// topic. Publishes may fail while quorum is broken — that is the paper's
// best-effort contract — but no success may skip the stable subscriber, and
// removed hosts must go silent once in-flight rounds drain.
func TestChaosSubscriberCacheInvariants(t *testing.T) {
	seed := chaosSeed(t)
	rng := rand.New(rand.NewSource(seed))

	regions := []string{"us", "eu", "ap"}
	nodes := make([]*kvstore.Node, 6)
	for i := range nodes {
		nodes[i] = kvstore.NewNode(fmt.Sprintf("kv%d", i), regions[i%3])
	}
	kv := kvstore.MustNewCluster(nodes, 3)
	s := pylon.MustNew(pylon.DefaultConfig(), kv) // cache enabled by default
	topic := pylon.Topic("/LVC/chaos-hot")

	stable := &recHost{id: "stable"}
	s.RegisterHost(stable)
	if err := s.Subscribe(topic, "stable"); err != nil {
		t.Fatal(err)
	}

	var (
		stop       atomic.Bool
		successful atomic.Int64
		removed    []*recHost
		remMu      sync.Mutex
		wg         sync.WaitGroup
	)

	// Replica flapper: seeded up/down schedule, never more than one node
	// down at a time so quorum usually survives (the seed decides when the
	// down node overlaps the topic's replica set).
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := rand.New(rand.NewSource(seed * 7919))
		down := -1
		for i := 0; !stop.Load(); i++ {
			if down >= 0 {
				nodes[down].SetUp(true)
				down = -1
			} else {
				down = src.Intn(len(nodes))
				nodes[down].SetUp(false)
			}
			// A burst of scheduling points between flips.
			for j := 0; j < 50 && !stop.Load(); j++ {
				_, _ = s.Publish(pylon.Event{Topic: topic})
			}
		}
		if down >= 0 {
			nodes[down].SetUp(true)
		}
	}()

	// Churners: transient hosts subscribe and are removed; writes may fail
	// with ErrNoQuorum during a flap, which is fine — RemoveHost still
	// purges the host from the delivery map.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rand.New(rand.NewSource(seed*31 + int64(g)))
			for i := 0; !stop.Load(); i++ {
				h := &recHost{id: fmt.Sprintf("churn-%d-%d", g, i)}
				s.RegisterHost(h)
				_ = s.Subscribe(topic, h.id) // tolerated: quorum may be broken
				if src.Intn(2) == 0 {
					_ = s.Unsubscribe(topic, h.id)
				}
				s.RemoveHost(h.id)
				remMu.Lock()
				removed = append(removed, h)
				remMu.Unlock()
			}
		}(g)
	}

	// Publishers: count successful rounds only; failures during quorum
	// breakage are expected.
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := s.Publish(pylon.Event{Topic: topic}); err == nil {
					successful.Add(1)
				}
			}
		}()
	}

	waitFor(t, "2000 successful chaos publishes and 100 churned hosts", func() bool {
		remMu.Lock()
		churned := len(removed)
		remMu.Unlock()
		return successful.Load() >= 2000 && churned >= 100
	})
	stop.Store(true)
	wg.Wait()

	// Every successful publish delivered to the stable subscriber: it was
	// written to all replicas before any fault, so every replica view — and
	// therefore every cached member list — contains it.
	if got, want := stable.n.Load(), successful.Load(); got < want {
		t.Fatalf("stable subscriber saw %d of %d successful publishes (missed %d rounds)",
			got, want, want-got)
	}

	// Heal everything, then verify removed hosts are silent for publishes
	// that start after the in-flight rounds drained.
	for _, n := range nodes {
		n.SetUp(true)
	}
	counts := make(map[string]int64, len(removed))
	for _, h := range removed {
		counts[h.id] = h.n.Load()
	}
	before := stable.n.Load()
	for i := 0; i < rng.Intn(10)+10; i++ {
		if _, err := s.Publish(pylon.Event{Topic: topic}); err != nil {
			t.Fatalf("post-heal publish: %v", err)
		}
	}
	if stable.n.Load() == before {
		t.Fatal("stable subscriber missed all post-heal publishes")
	}
	for _, h := range removed {
		if got := h.n.Load(); got != counts[h.id] {
			t.Fatalf("removed host %s delivered %d events after drain (seed %d)",
				h.id, got-counts[h.id], seed)
		}
	}
	t.Logf("seed %d: %d successful publishes, %d hosts churned, stable saw %d",
		seed, successful.Load(), len(removed), stable.n.Load())
}
