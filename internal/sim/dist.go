package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Dist is a distribution over durations, used to model component latencies
// (network hops, ranking time, queue delays) in the experiment harness.
type Dist interface {
	// Sample draws one value using rng.
	Sample(rng *rand.Rand) time.Duration
	// Mean returns the analytic mean of the distribution.
	Mean() time.Duration
}

// Constant is a degenerate distribution that always returns V.
type Constant struct{ V time.Duration }

// Sample returns the constant value.
func (c Constant) Sample(*rand.Rand) time.Duration { return c.V }

// Mean returns the constant value.
func (c Constant) Mean() time.Duration { return c.V }

// Uniform is the uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi time.Duration }

// Sample draws uniformly from [Lo, Hi).
func (u Uniform) Sample(rng *rand.Rand) time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(rng.Int63n(int64(u.Hi-u.Lo)))
}

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() time.Duration { return (u.Lo + u.Hi) / 2 }

// Exponential is an exponential distribution with the given mean, optionally
// shifted by Min (all samples are >= Min). Models memoryless service times.
type Exponential struct {
	MeanVal time.Duration
	Min     time.Duration
}

// Sample draws Min + Exp(mean).
func (e Exponential) Sample(rng *rand.Rand) time.Duration {
	mean := float64(e.MeanVal - e.Min)
	if mean <= 0 {
		return e.Min
	}
	return e.Min + time.Duration(rng.ExpFloat64()*mean)
}

// Mean returns the configured mean.
func (e Exponential) Mean() time.Duration { return e.MeanVal }

// LogNormal models heavy-ish tailed latencies (the usual shape of RPC and
// last-mile network latency). Median is exp(Mu) nanoseconds; Sigma controls
// tail weight.
type LogNormal struct {
	Mu    float64 // log of median, in log-nanoseconds
	Sigma float64
}

// LogNormalFromMedian builds a LogNormal with the given median and sigma.
func LogNormalFromMedian(median time.Duration, sigma float64) LogNormal {
	return LogNormal{Mu: math.Log(float64(median)), Sigma: sigma}
}

// Sample draws a log-normal value.
func (l LogNormal) Sample(rng *rand.Rand) time.Duration {
	return time.Duration(math.Exp(l.Mu + l.Sigma*rng.NormFloat64()))
}

// Mean returns exp(mu + sigma^2/2).
func (l LogNormal) Mean() time.Duration {
	return time.Duration(math.Exp(l.Mu + l.Sigma*l.Sigma/2))
}

// Pareto is a bounded Pareto distribution, used for the long-tailed
// quantities in the paper (topic popularity, poll-tail latencies).
type Pareto struct {
	Xm    time.Duration // scale (minimum)
	Alpha float64       // shape; smaller = heavier tail
	Cap   time.Duration // optional upper bound; 0 = unbounded
}

// Sample draws from the (optionally capped) Pareto.
func (p Pareto) Sample(rng *rand.Rand) time.Duration {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	v := time.Duration(float64(p.Xm) / math.Pow(u, 1/p.Alpha))
	if p.Cap > 0 && v > p.Cap {
		v = p.Cap
	}
	return v
}

// Mean returns the analytic mean for alpha > 1 (ignoring the cap), or Xm
// otherwise.
func (p Pareto) Mean() time.Duration {
	if p.Alpha <= 1 {
		return p.Xm
	}
	return time.Duration(p.Alpha * float64(p.Xm) / (p.Alpha - 1))
}

// Mixture draws from one of several component distributions with the given
// weights. Weights need not sum to 1; they are normalized.
type Mixture struct {
	Components []Dist
	Weights    []float64
	total      float64
}

// NewMixture validates and returns a Mixture.
func NewMixture(components []Dist, weights []float64) (*Mixture, error) {
	if len(components) == 0 || len(components) != len(weights) {
		return nil, fmt.Errorf("sim: mixture needs equal non-zero components (%d) and weights (%d)",
			len(components), len(weights))
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("sim: negative mixture weight %v", w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("sim: mixture weights sum to zero")
	}
	return &Mixture{Components: components, Weights: weights, total: total}, nil
}

// MustMixture is NewMixture that panics on error (for package-level tables).
func MustMixture(components []Dist, weights []float64) *Mixture {
	m, err := NewMixture(components, weights)
	if err != nil {
		panic(err)
	}
	return m
}

// Sample picks a component by weight and samples it.
func (m *Mixture) Sample(rng *rand.Rand) time.Duration {
	x := rng.Float64() * m.total
	for i, w := range m.Weights {
		x -= w
		if x < 0 {
			return m.Components[i].Sample(rng)
		}
	}
	return m.Components[len(m.Components)-1].Sample(rng)
}

// Mean returns the weighted mean of the component means.
func (m *Mixture) Mean() time.Duration {
	var acc float64
	for i, c := range m.Components {
		acc += m.Weights[i] / m.total * float64(c.Mean())
	}
	return time.Duration(acc)
}

// Zipf generates integer ranks following a Zipf-Mandelbrot law, used to
// assign popularity to topics: rank 0 is the hottest topic. It wraps
// rand.Zipf with a stable configuration.
type Zipf struct {
	S    float64 // skew, > 1
	V    float64 // offset, >= 1
	N    uint64  // number of ranks
	zipf *rand.Zipf
	rng  *rand.Rand
}

// NewZipf builds a Zipf rank generator backed by rng.
func NewZipf(rng *rand.Rand, s, v float64, n uint64) (*Zipf, error) {
	if s <= 1 || v < 1 || n == 0 {
		return nil, fmt.Errorf("sim: invalid zipf params s=%v v=%v n=%d", s, v, n)
	}
	return &Zipf{S: s, V: v, N: n, zipf: rand.NewZipf(rng, s, v, n-1), rng: rng}, nil
}

// Next returns the next rank in [0, N).
func (z *Zipf) Next() uint64 { return z.zipf.Uint64() }

// Percentile returns the p-th percentile (p in [0,100]) of a sample slice.
// The slice is sorted in place. It returns 0 for empty input.
func Percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	if p <= 0 {
		return samples[0]
	}
	if p >= 100 {
		return samples[len(samples)-1]
	}
	rank := p / 100 * float64(len(samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return samples[lo]
	}
	frac := rank - float64(lo)
	return samples[lo] + time.Duration(frac*float64(samples[hi]-samples[lo]))
}

// Empirical resamples from a set of observed durations (bootstrap), used to
// replay measured latency distributions through the simulator.
type Empirical struct {
	samples []time.Duration
	mean    time.Duration
}

// NewEmpirical builds an Empirical distribution from observations.
func NewEmpirical(samples []time.Duration) (*Empirical, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("sim: empirical distribution needs samples")
	}
	cp := append([]time.Duration(nil), samples...)
	var total time.Duration
	for _, s := range cp {
		total += s
	}
	return &Empirical{samples: cp, mean: total / time.Duration(len(cp))}, nil
}

// Sample draws one observation uniformly.
func (e *Empirical) Sample(rng *rand.Rand) time.Duration {
	return e.samples[rng.Intn(len(e.samples))]
}

// Mean returns the sample mean.
func (e *Empirical) Mean() time.Duration { return e.mean }
