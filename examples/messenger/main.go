// Messenger: reliable, in-order message delivery built on Bladerunner's
// best-effort substrate (paper §4). Mailbox sequence numbers let the BRASS
// detect and repair gaps; resume tokens persisted in the stream header via
// BURST rewrites let a reconnecting device catch up on everything it missed
// — even though the device never tracked sequence numbers itself.
//
// Run with:
//
//	go run ./examples/messenger
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/burst"
	"bladerunner/internal/core"
	"bladerunner/internal/sim"
)

func main() {
	cluster, err := core.NewCluster(core.DefaultConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Alice and Bob share a thread.
	alice := cluster.NewDevice(1)
	defer alice.Close()
	out, err := alice.Mutate(`createThread(members: "1,2")`)
	if err != nil {
		log.Fatal(err)
	}
	var threadID uint64
	_ = json.Unmarshal(out, &threadID)
	fmt.Printf("created thread %d between alice(1) and bob(2)\n", threadID)

	// Bob's phone connects and subscribes to his mailbox.
	bob := cluster.NewDevice(2)
	if err := bob.Connect(); err != nil {
		log.Fatal(err)
	}
	st, err := bob.Subscribe(apps.AppMessenger, "messenger", nil)
	if err != nil {
		log.Fatal(err)
	}
	clock := sim.RealClock{}
	cluster.Pylon.WaitForSubscriber(clock, apps.MailboxTopic(2), 10*time.Second)

	send := func(text string) {
		if _, err := alice.Mutate(fmt.Sprintf(
			`sendMessage(threadID: %d, text: "%s")`, threadID, text)); err != nil {
			log.Fatal(err)
		}
	}
	recv := func() apps.MessagePayload {
		select {
		case delta := <-st.Updates:
			var m apps.MessagePayload
			_ = json.Unmarshal(delta.Payload, &m)
			return m
		case <-sim.Timeout(clock, 10*time.Second):
			log.Fatal("timed out waiting for message")
			return apps.MessagePayload{}
		}
	}

	// Live delivery while connected.
	send("hey bob")
	send("lunch?")
	for i := 0; i < 2; i++ {
		m := recv()
		fmt.Printf("bob's phone: seq=%d %q\n", m.Seq, m.Text)
	}

	// The stream header now carries bob's resume token, written by the
	// BRASS through a BURST rewrite — bob's app never tracked it.
	for st.Request().Header[burst.HdrResumeSeq] != "2" {
		sim.Sleep(clock, 5*time.Millisecond)
	}
	saved := st.Request()
	fmt.Printf("resume token in stream header: seq=%s (maintained by rewrites)\n",
		saved.Header[burst.HdrResumeSeq])

	// Bob's phone goes into a tunnel.
	bob.Close()
	fmt.Println("\nbob disconnects...")
	send("are you there?")
	send("guess you're in the subway")
	fmt.Println("alice sent 2 messages while bob was offline")

	// Bob reconnects. The device resubscribes with the stored (rewritten)
	// request; the BRASS sees the resume token and replays the mailbox.
	bob2 := cluster.NewDevice(2)
	defer bob2.Close()
	if err := bob2.Connect(); err != nil {
		log.Fatal(err)
	}
	st2, err := bob2.Subscribe(apps.AppMessenger, "messenger",
		burst.Header{burst.HdrResumeSeq: saved.Header[burst.HdrResumeSeq]})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bob reconnects with the stored resume token...")
	for i := 0; i < 2; i++ {
		select {
		case delta := <-st2.Updates:
			var m apps.MessagePayload
			_ = json.Unmarshal(delta.Payload, &m)
			fmt.Printf("catch-up delivery: seq=%d %q\n", m.Seq, m.Text)
		case <-sim.Timeout(clock, 10*time.Second):
			log.Fatal("catch-up timed out")
		}
	}
	fmt.Println("\nno message lost, none duplicated — reliability built by the app on a best-effort substrate")
}
