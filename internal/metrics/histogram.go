// Package metrics provides the measurement primitives used across the
// Bladerunner reproduction: duration histograms with percentile queries,
// counters, and bucketed time series. All types are safe for concurrent use
// unless noted otherwise; the experiment harness also uses them single-
// threaded under the simulation engine.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultReservoirSize bounds the per-histogram memory used for percentile
// estimation. 64k samples keeps p999 stable for the sample volumes the
// experiments produce.
const DefaultReservoirSize = 65536

// Histogram records durations and answers count/mean/percentile/CDF
// queries. It keeps exact count/sum/min/max and a uniform reservoir of
// samples for quantiles (exact when fewer than the reservoir size samples
// have been observed).
type Histogram struct {
	mu    sync.Mutex
	count int64
	sum   time.Duration
	min   time.Duration
	max   time.Duration
	// reservoir holds a uniform sample of observations.
	reservoir []time.Duration
	cap       int
	rng       *rand.Rand
	sorted    bool
	// exemplars is a small ring of recent (value, trace ID) pairs recorded
	// via ObserveExemplar, linking histogram tails back to concrete traces.
	exemplars []Exemplar
	exNext    int
}

// ExemplarCap bounds the exemplar ring of each histogram: enough to chase
// a handful of recent outliers without growing the struct meaningfully.
const ExemplarCap = 8

// Exemplar is one observation tagged with the trace that produced it.
type Exemplar struct {
	Value   time.Duration
	TraceID uint64
}

// NewHistogram returns a Histogram with the default reservoir size.
func NewHistogram() *Histogram { return NewHistogramSize(DefaultReservoirSize) }

// NewHistogramSize returns a Histogram whose reservoir holds up to size
// samples. size must be positive.
func NewHistogramSize(size int) *Histogram {
	if size <= 0 {
		panic(fmt.Sprintf("metrics: non-positive reservoir size %d", size))
	}
	return &Histogram{
		cap: size,
		rng: rand.New(rand.NewSource(0x0b1ade)),
	}
}

// Observe records one duration.
//
// state overwrites reservoir slots in place.
//
//brlint:hotpath latency recording runs on per-delta apply paths; steady
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if h.count == 0 || d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	if len(h.reservoir) < h.cap {
		//brlint:allow(hot-path-alloc) reservoir warm-up only: the append runs at most cap times over the histogram's lifetime, then algorithm R overwrites in place
		h.reservoir = append(h.reservoir, d)
		h.sorted = false
		return
	}
	// Vitter's algorithm R.
	if j := h.rng.Int63n(h.count); j < int64(h.cap) {
		h.reservoir[j] = d
		h.sorted = false
	}
}

// ObserveExemplar records one duration and, when traceID is nonzero,
// remembers (d, traceID) in the bounded exemplar ring. With a zero traceID
// it is exactly Observe.
func (h *Histogram) ObserveExemplar(d time.Duration, traceID uint64) {
	h.Observe(d)
	if traceID == 0 {
		return
	}
	h.mu.Lock()
	if len(h.exemplars) < ExemplarCap {
		h.exemplars = append(h.exemplars, Exemplar{Value: d, TraceID: traceID})
	} else {
		h.exemplars[h.exNext] = Exemplar{Value: d, TraceID: traceID}
	}
	h.exNext = (h.exNext + 1) % ExemplarCap
	h.mu.Unlock()
}

// Exemplars returns a copy of the recorded exemplars (most recent last for
// an unwrapped ring; order is unspecified once the ring has wrapped).
func (h *Histogram) Exemplars() []Exemplar {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Exemplar(nil), h.exemplars...)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the exact mean, or 0 with no observations.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation (0 if empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation (0 if empty).
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns the p-th percentile (p in [0,100]) estimated from the
// reservoir. It returns 0 with no observations.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.percentileLocked(p)
}

func (h *Histogram) percentileLocked(p float64) time.Duration {
	n := len(h.reservoir)
	if n == 0 {
		return 0
	}
	h.sortLocked()
	if p <= 0 {
		return h.reservoir[0]
	}
	if p >= 100 {
		return h.reservoir[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return h.reservoir[lo]
	}
	frac := rank - float64(lo)
	return h.reservoir[lo] + time.Duration(frac*float64(h.reservoir[hi]-h.reservoir[lo]))
}

func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Slice(h.reservoir, func(i, j int) bool { return h.reservoir[i] < h.reservoir[j] })
		h.sorted = true
	}
}

// CDFPoint is one point of a cumulative distribution: Fraction of
// observations were <= Value.
type CDFPoint struct {
	Value    time.Duration
	Fraction float64
}

// CDF returns n evenly spaced (by cumulative fraction) points of the
// empirical CDF. It returns nil with no observations or n < 1.
func (h *Histogram) CDF(n int) []CDFPoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.reservoir) == 0 || n < 1 {
		return nil
	}
	h.sortLocked()
	out := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		frac := float64(i) / float64(n)
		idx := int(frac*float64(len(h.reservoir))) - 1
		if idx < 0 {
			idx = 0
		}
		out = append(out, CDFPoint{Value: h.reservoir[idx], Fraction: frac})
	}
	return out
}

// Buckets counts observations into the half-open ranges defined by bounds:
// (-inf, bounds[0]], (bounds[0], bounds[1]], ..., (bounds[n-1], +inf).
// The returned slice has len(bounds)+1 entries. Counts are computed from
// the reservoir and scaled to the true total count.
func (h *Histogram) Buckets(bounds []time.Duration) []int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int64, len(bounds)+1)
	if len(h.reservoir) == 0 {
		return out
	}
	h.sortLocked()
	scale := float64(h.count) / float64(len(h.reservoir))
	i := 0
	for bi, b := range bounds {
		start := i
		for i < len(h.reservoir) && h.reservoir[i] <= b {
			i++
		}
		out[bi] = int64(math.Round(float64(i-start) * scale))
	}
	out[len(bounds)] = int64(math.Round(float64(len(h.reservoir)-i) * scale))
	return out
}

// Snapshot returns a copy of the aggregate state for reporting.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Count: h.count,
		Sum:   h.sum,
		Min:   h.min,
		Max:   h.max,
		Mean: func() time.Duration {
			if h.count == 0 {
				return 0
			}
			return h.sum / time.Duration(h.count)
		}(),
		P50: h.percentileLocked(50),
		P75: h.percentileLocked(75),
		P90: h.percentileLocked(90),
		P95: h.percentileLocked(95),
		P99: h.percentileLocked(99),
	}
}

// HistogramSnapshot is an immutable summary of a Histogram.
type HistogramSnapshot struct {
	Count                   int64
	Sum, Min, Max, Mean     time.Duration
	P50, P75, P90, P95, P99 time.Duration
}

// String formats the snapshot compactly for logs and reports.
func (s HistogramSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v p50=%v p75=%v p90=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Millisecond), s.P50.Round(time.Millisecond),
		s.P75.Round(time.Millisecond), s.P90.Round(time.Millisecond),
		s.P95.Round(time.Millisecond), s.P99.Round(time.Millisecond),
		s.Max.Round(time.Millisecond))
	return b.String()
}
