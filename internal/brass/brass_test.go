package brass

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"bladerunner/internal/burst"
	"bladerunner/internal/kvstore"
	"bladerunner/internal/pylon"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
	"bladerunner/internal/was"
)

// echoApp is a minimal application: it subscribes each stream to the topic
// named in the subscription header and forwards every event's Ref as the
// payload, filtering events whose Meta["drop"] is set.
type echoApp struct {
	mu     sync.Mutex
	opened int
	closed int
	acks   []uint64
}

func (a *echoApp) Name() string { return "echo" }

type echoInstance struct {
	app *echoApp
	rt  *Runtime
}

func (a *echoApp) NewInstance(rt *Runtime) AppInstance {
	return &echoInstance{app: a, rt: rt}
}

func (e *echoInstance) OnStreamOpen(st *Stream) error {
	topic := pylon.Topic(st.Header(burst.HdrTopic))
	if topic == "" {
		return fmt.Errorf("no topic")
	}
	e.app.mu.Lock()
	e.app.opened++
	e.app.mu.Unlock()
	return st.AddTopic(topic)
}

func (e *echoInstance) OnStreamClose(st *Stream, reason string) {
	e.app.mu.Lock()
	e.app.closed++
	e.app.mu.Unlock()
}

func (e *echoInstance) OnEvent(ev pylon.Event) {
	for _, st := range e.rt.Instance().StreamsForTopic(ev.Topic) {
		if ev.Meta["drop"] != "" {
			st.Filtered()
			continue
		}
		_ = st.PushPayload(ev.ID, []byte(fmt.Sprintf("ref=%d", ev.Ref)))
	}
}

func (e *echoInstance) OnAck(st *Stream, seq uint64) {
	e.app.mu.Lock()
	e.app.acks = append(e.app.acks, seq)
	e.app.mu.Unlock()
}

type testEnv struct {
	pylon *pylon.Service
	was   *was.Server
	host  *Host
	app   *echoApp
}

func newEnv(t *testing.T) *testEnv {
	t.Helper()
	nodes := []*kvstore.Node{
		kvstore.NewNode("a", "us"), kvstore.NewNode("b", "eu"), kvstore.NewNode("c", "ap"),
	}
	pyl := pylon.MustNew(pylon.DefaultConfig(), kvstore.MustNewCluster(nodes, 3))
	store := tao.MustNewStore(tao.DefaultConfig(), nil)
	graph := socialgraph.MustGenerate(socialgraph.Config{Users: 50, MeanFriends: 5, Seed: 1})
	w := was.New(store, graph, pyl, nil)
	app := &echoApp{}
	host := NewHost(HostConfig{ID: "brass-1", Region: "us", StickyRouting: true}, pyl, w, nil)
	host.RegisterApp(app)
	t.Cleanup(host.Close)
	return &testEnv{pylon: pyl, was: w, host: host, app: app}
}

// dialHost connects a BURST client to the host.
func dialHost(t *testing.T, env *testEnv) *burst.Client {
	t.Helper()
	a, b := net.Pipe()
	cli := burst.NewClient("device", a, nil)
	env.host.AcceptSession("host-side", b)
	t.Cleanup(func() { cli.Close() })
	return cli
}

func openStream(t *testing.T, cli *burst.Client, topic string) *burst.ClientStream {
	t.Helper()
	st, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{
		burst.HdrApp:   "echo",
		burst.HdrTopic: topic,
		burst.HdrUser:  "7",
	}})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestServerlessSpoolUp(t *testing.T) {
	env := newEnv(t)
	if env.host.RunningInstances() != 0 {
		t.Fatal("instance running before any stream")
	}
	cli := dialHost(t, env)
	openStream(t, cli, "/t/1")
	waitFor(t, "instance spooled", func() bool { return env.host.RunningInstances() == 1 })
	if env.host.InstancesSpun.Value() != 1 {
		t.Errorf("InstancesSpun = %d", env.host.InstancesSpun.Value())
	}
	// Second stream reuses the instance.
	openStream(t, cli, "/t/2")
	waitFor(t, "second stream", func() bool {
		env.app.mu.Lock()
		defer env.app.mu.Unlock()
		return env.app.opened == 2
	})
	if env.host.RunningInstances() != 1 {
		t.Errorf("instances = %d, want 1", env.host.RunningInstances())
	}
}

func TestUnknownAppTerminatesStream(t *testing.T) {
	env := newEnv(t)
	cli := dialHost(t, env)
	st, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{burst.HdrApp: "ghost"}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case batch := <-st.Events:
		if batch[0].Type != burst.DeltaTermination {
			t.Errorf("got %+v, want termination", batch[0])
		}
		if !strings.Contains(batch[0].Reason, "unknown application") {
			t.Errorf("reason = %q", batch[0].Reason)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no termination for unknown app")
	}
}

func TestEventDeliveryThroughPylon(t *testing.T) {
	env := newEnv(t)
	cli := dialHost(t, env)
	st := openStream(t, cli, "/t/1")
	waitFor(t, "pylon subscription", func() bool {
		return len(env.pylon.Subscribers("/t/1")) == 1
	})
	if _, err := env.pylon.Publish(pylon.Event{Topic: "/t/1", Ref: 99}); err != nil {
		t.Fatal(err)
	}
	select {
	case batch := <-st.Events:
		if string(batch[0].Payload) != "ref=99" {
			t.Errorf("payload = %q", batch[0].Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event never reached device")
	}
	env.host.Quiesce()
	if env.host.Deliveries.Value() != 1 || env.host.Decisions.Value() != 1 {
		t.Errorf("deliveries=%d decisions=%d", env.host.Deliveries.Value(), env.host.Decisions.Value())
	}
}

func TestFilteringCountsDecisionsNotDeliveries(t *testing.T) {
	env := newEnv(t)
	cli := dialHost(t, env)
	openStream(t, cli, "/t/1")
	waitFor(t, "subscription", func() bool { return len(env.pylon.Subscribers("/t/1")) == 1 })
	if _, err := env.pylon.Publish(pylon.Event{Topic: "/t/1", Meta: map[string]string{"drop": "1"}}); err != nil {
		t.Fatal(err)
	}
	env.host.Quiesce()
	if env.host.Decisions.Value() != 1 || env.host.Deliveries.Value() != 0 || env.host.Filtered.Value() != 1 {
		t.Errorf("decisions=%d deliveries=%d filtered=%d",
			env.host.Decisions.Value(), env.host.Deliveries.Value(), env.host.Filtered.Value())
	}
	if got := env.host.FilterRate(); got != 1.0 {
		t.Errorf("FilterRate = %v", got)
	}
}

func TestSubscriptionManagerDedupsPylonRegistrations(t *testing.T) {
	env := newEnv(t)
	cli := dialHost(t, env)
	openStream(t, cli, "/t/1")
	openStream(t, cli, "/t/1") // same topic, second stream
	waitFor(t, "both streams", func() bool {
		env.app.mu.Lock()
		defer env.app.mu.Unlock()
		return env.app.opened == 2
	})
	env.host.Quiesce()
	if subs := env.pylon.Subscribers("/t/1"); len(subs) != 1 {
		t.Errorf("pylon subscribers = %v, want exactly the host once", subs)
	}
	if env.host.PylonSubs.Value() != 1 {
		t.Errorf("PylonSubs = %d, want 1 (deduped)", env.host.PylonSubs.Value())
	}
	// Publishing reaches both streams via one host delivery.
	before := env.host.Decisions.Value()
	if _, err := env.pylon.Publish(pylon.Event{Topic: "/t/1"}); err != nil {
		t.Fatal(err)
	}
	env.host.Quiesce()
	if got := env.host.Decisions.Value() - before; got != 2 {
		t.Errorf("decisions for 2 streams = %d", got)
	}
}

func TestLastStreamDropUnsubscribesFromPylon(t *testing.T) {
	env := newEnv(t)
	cli := dialHost(t, env)
	st1 := openStream(t, cli, "/t/1")
	st2 := openStream(t, cli, "/t/1")
	waitFor(t, "streams", func() bool {
		env.app.mu.Lock()
		defer env.app.mu.Unlock()
		return env.app.opened == 2
	})
	_ = st1.Cancel("done")
	waitFor(t, "first close", func() bool {
		env.app.mu.Lock()
		defer env.app.mu.Unlock()
		return env.app.closed == 1
	})
	if subs := env.pylon.Subscribers("/t/1"); len(subs) != 1 {
		t.Error("host unsubscribed while a stream remains")
	}
	_ = st2.Cancel("done")
	waitFor(t, "pylon unsubscribed", func() bool {
		return len(env.pylon.Subscribers("/t/1")) == 0
	})
}

func TestStickyRoutingRewriteOnOpen(t *testing.T) {
	env := newEnv(t)
	cli := dialHost(t, env)
	st := openStream(t, cli, "/t/1")
	waitFor(t, "sticky header", func() bool {
		return st.Request().Header[burst.HdrStickyBRASS] == "brass-1"
	})
}

func TestAckReachesApp(t *testing.T) {
	env := newEnv(t)
	cli := dialHost(t, env)
	st := openStream(t, cli, "/t/1")
	waitFor(t, "open", func() bool {
		env.app.mu.Lock()
		defer env.app.mu.Unlock()
		return env.app.opened == 1
	})
	if err := st.Ack(5); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "ack", func() bool {
		env.app.mu.Lock()
		defer env.app.mu.Unlock()
		return len(env.app.acks) == 1 && env.app.acks[0] == 5
	})
}

func TestSessionFailureClosesStreamsAndUnsubscribes(t *testing.T) {
	env := newEnv(t)
	a, b := net.Pipe()
	cli := burst.NewClient("device", a, nil)
	env.host.AcceptSession("host-side", b)
	_, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{
		burst.HdrApp: "echo", burst.HdrTopic: "/t/9", burst.HdrUser: "3",
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "subscription", func() bool { return len(env.pylon.Subscribers("/t/9")) == 1 })
	cli.Close() // device vanishes
	waitFor(t, "close + pylon unsubscribe", func() bool {
		env.app.mu.Lock()
		closed := env.app.closed
		env.app.mu.Unlock()
		return closed == 1 && len(env.pylon.Subscribers("/t/9")) == 0
	})
}

func TestHostCloseRemovesPylonRegistration(t *testing.T) {
	env := newEnv(t)
	cli := dialHost(t, env)
	openStream(t, cli, "/t/1")
	waitFor(t, "subscription", func() bool { return len(env.pylon.Subscribers("/t/1")) == 1 })
	env.host.Close()
	if subs := env.pylon.Subscribers("/t/1"); len(subs) != 0 {
		t.Errorf("subscribers after host close: %v", subs)
	}
}

func TestRateLimiter(t *testing.T) {
	r := RateLimiter{Interval: time.Second}
	t1 := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	if !r.Allow(t1) {
		t.Fatal("first Allow denied")
	}
	if r.Allow(t1.Add(500 * time.Millisecond)) {
		t.Error("allowed within interval")
	}
	if !r.Allow(t1.Add(time.Second)) {
		t.Error("denied at interval boundary")
	}
	if got := r.Next(); !got.Equal(t1.Add(2 * time.Second)) {
		t.Errorf("Next = %v", got)
	}
	// Zero interval always allows.
	r0 := RateLimiter{}
	if !r0.Allow(t1) || !r0.Allow(t1) {
		t.Error("zero-interval limiter denied")
	}
}

func TestRateLimiterHeaderRoundTrip(t *testing.T) {
	r := RateLimiter{Interval: 2 * time.Second}
	t1 := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	r.Allow(t1)
	state := r.HeaderState()
	r2 := RateLimiter{Interval: 2 * time.Second}
	r2.RestoreHeaderState(state, t1)
	if r2.Allow(t1.Add(time.Second)) {
		t.Error("restored limiter forgot its last delivery")
	}
	if !r2.Allow(t1.Add(2 * time.Second)) {
		t.Error("restored limiter over-restrictive")
	}
	// Garbage state is ignored.
	r3 := RateLimiter{Interval: time.Second}
	r3.RestoreHeaderState("garbage", t1)
	if !r3.Allow(t1) {
		t.Error("garbage state blocked limiter")
	}
}

// TestRateLimiterRestoreClampsFutureHeader is the regression test for the
// stream-stall bug: a failed BRASS could persist a `last` timestamp far in
// the future (skewed clock, corrupt header), and the replacement host
// restored it verbatim — silencing the stream until that wall time.
// Restore must clamp to now so the next delivery is at most one Interval
// away.
func TestRateLimiterRestoreClampsFutureHeader(t *testing.T) {
	t1 := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	skewed := RateLimiter{Interval: 2 * time.Second}
	skewed.Allow(t1.Add(365 * 24 * time.Hour)) // "last delivery" a year ahead
	header := skewed.HeaderState()

	r := RateLimiter{Interval: 2 * time.Second}
	r.RestoreHeaderState(header, t1)
	if r.Allow(t1.Add(time.Second)) {
		t.Error("clamped restore must still enforce the interval from now")
	}
	if !r.Allow(t1.Add(2 * time.Second)) {
		t.Error("stream stalled: future-dated header state was not clamped to now")
	}
}

// TestRateLimiterClockRetreat is the regression test for the second stall
// mode: after a restore (or a virtual-clock reset) `now` can precede the
// stored `last`. With a large Interval the old code returned false until
// the original timeline caught up — effectively forever.
func TestRateLimiterClockRetreat(t *testing.T) {
	t1 := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	r := RateLimiter{Interval: time.Hour}
	if !r.Allow(t1) {
		t.Fatal("first Allow denied")
	}
	// The clock retreats two days: far more than one Interval back.
	back := t1.Add(-48 * time.Hour)
	if !r.Allow(back) {
		t.Error("limiter stalled after clock retreat beyond one Interval")
	}
	// Within one Interval of the (re-anchored) last, normal pacing holds.
	if r.Allow(back.Add(30 * time.Minute)) {
		t.Error("re-anchored limiter must still pace deliveries")
	}
	if !r.Allow(back.Add(time.Hour)) {
		t.Error("re-anchored limiter denied at interval boundary")
	}
}

func TestRankedBuffer(t *testing.T) {
	t1 := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	b := RankedBuffer{K: 3, TTL: 10 * time.Second}
	for i, score := range []float64{0.5, 0.9, 0.1, 0.7, 0.3} {
		b.Add(RankedItem{Score: score, Time: t1, Seq: uint64(i)})
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d, want K=3", b.Len())
	}
	item, ok := b.Pop(t1.Add(time.Second))
	if !ok || item.Score != 0.9 {
		t.Errorf("top = %+v ok=%v", item, ok)
	}
	item, _ = b.Pop(t1.Add(time.Second))
	if item.Score != 0.7 {
		t.Errorf("second = %+v", item)
	}
	// Stale items are discarded at Pop.
	b2 := RankedBuffer{K: 3, TTL: 10 * time.Second}
	b2.Add(RankedItem{Score: 0.9, Time: t1})
	b2.Add(RankedItem{Score: 0.5, Time: t1.Add(15 * time.Second)})
	item, ok = b2.Pop(t1.Add(20 * time.Second))
	if !ok || item.Score != 0.5 {
		t.Errorf("stale skip: %+v ok=%v", item, ok)
	}
	// Expire without popping.
	b3 := RankedBuffer{K: 5, TTL: time.Second}
	b3.Add(RankedItem{Score: 0.4, Time: t1})
	b3.Expire(t1.Add(2 * time.Second))
	if b3.Len() != 0 {
		t.Errorf("Expire left %d items", b3.Len())
	}
}

func TestRankedBufferUnlimited(t *testing.T) {
	b := RankedBuffer{} // K=0: unbounded, TTL=0: never stale
	t1 := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		b.Add(RankedItem{Score: float64(i), Time: t1})
	}
	if b.Len() != 100 {
		t.Errorf("Len = %d", b.Len())
	}
	item, ok := b.Pop(t1.Add(time.Hour))
	if !ok || item.Score != 99 {
		t.Errorf("Pop = %+v", item)
	}
}

func TestPerStreamInstancesIsolation(t *testing.T) {
	env := newEnv(t)
	// A second host in per-stream mode, sharing the same app + WAS.
	host := NewHost(HostConfig{ID: "brass-iso", Region: "us", PerStreamInstances: true},
		env.pylon, env.was, nil)
	host.RegisterApp(env.app)
	t.Cleanup(host.Close)

	a1, b1 := net.Pipe()
	cli1 := burst.NewClient("dev1", a1, nil)
	host.AcceptSession("s1", b1)
	t.Cleanup(func() { cli1.Close() })
	a2, b2 := net.Pipe()
	cli2 := burst.NewClient("dev2", a2, nil)
	host.AcceptSession("s2", b2)
	t.Cleanup(func() { cli2.Close() })

	sub := func(cli *burst.Client) *burst.ClientStream {
		st, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{
			burst.HdrApp: "echo", burst.HdrTopic: "/iso/1", burst.HdrUser: "3",
		}})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st1 := sub(cli1)
	sub(cli2)
	// Two streams -> two dedicated instances.
	waitFor(t, "two instances", func() bool { return host.RunningInstances() == 2 })
	if host.InstancesSpun.Value() != 2 {
		t.Errorf("InstancesSpun = %d", host.InstancesSpun.Value())
	}
	// The host-level subscription manager still dedups Pylon registration
	// across the two instances.
	waitFor(t, "host subscribed once", func() bool {
		return len(env.pylon.Subscribers("/iso/1")) == 1 && host.TopicRefs("/iso/1") == 2
	})
	// Events reach both instances (each makes its own decision).
	if _, err := env.pylon.Publish(pylon.Event{Topic: "/iso/1", Ref: 5}); err != nil {
		t.Fatal(err)
	}
	host.Quiesce()
	if got := host.Decisions.Value(); got != 2 {
		t.Errorf("decisions = %d, want 2 (one per isolated instance)", got)
	}
	// Closing one stream despools exactly its instance.
	_ = st1.Cancel("done")
	waitFor(t, "despool", func() bool {
		return host.RunningInstances() == 1 && host.InstancesDespooled.Value() == 1
	})
	// The topic stays subscribed for the surviving stream.
	if len(env.pylon.Subscribers("/iso/1")) != 1 {
		t.Error("topic unsubscribed while a stream remains")
	}
}

func TestMaxInstancesCapacity(t *testing.T) {
	env := newEnv(t)
	host := NewHost(HostConfig{
		ID: "brass-cap", Region: "us", PerStreamInstances: true, MaxInstances: 2,
	}, env.pylon, env.was, nil)
	host.RegisterApp(env.app)
	t.Cleanup(host.Close)

	a, b := net.Pipe()
	cli := burst.NewClient("dev", a, nil)
	host.AcceptSession("s", b)
	t.Cleanup(func() { cli.Close() })

	streams := make([]*burst.ClientStream, 3)
	for i := range streams {
		st, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{
			burst.HdrApp: "echo", burst.HdrTopic: fmt.Sprintf("/cap/%d", i), burst.HdrUser: "1",
		}})
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = st
	}
	// Two succeed; the third is rejected with a capacity termination.
	waitFor(t, "capacity filled", func() bool { return host.RunningInstances() == 2 })
	select {
	case batch := <-streams[2].Events:
		if batch[0].Type != burst.DeltaTermination ||
			!strings.Contains(batch[0].Reason, "capacity") {
			t.Errorf("third stream got %+v, want capacity termination", batch[0])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("third stream never rejected")
	}
	// Cancel one stream; capacity frees and a new stream fits.
	_ = streams[0].Cancel("make room")
	waitFor(t, "despool", func() bool { return host.RunningInstances() == 1 })
	st, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{
		burst.HdrApp: "echo", burst.HdrTopic: "/cap/9", burst.HdrUser: "1",
	}})
	if err != nil {
		t.Fatal(err)
	}
	_ = st
	waitFor(t, "refill", func() bool { return host.RunningInstances() == 2 })
}

// surfaceApp exercises the full Stream/Runtime API from inside the loop.
type surfaceApp struct {
	mu     sync.Mutex
	probes map[string]string
}

func (a *surfaceApp) Name() string { return "surface" }

func (a *surfaceApp) NewInstance(rt *Runtime) AppInstance {
	return &surfaceInstance{app: a, rt: rt}
}

type surfaceInstance struct {
	app *surfaceApp
	rt  *Runtime
}

func (s *surfaceInstance) set(k, v string) {
	s.app.mu.Lock()
	s.app.probes[k] = v
	s.app.mu.Unlock()
}

func (s *surfaceInstance) OnStreamOpen(st *Stream) error {
	s.set("host", s.rt.HostID())
	s.set("region", s.rt.Region())
	s.set("sid", fmt.Sprint(st.SID()))
	if !s.rt.Now().IsZero() {
		s.set("now", "ok")
	}
	if err := st.AddTopic("/surf/a"); err != nil {
		return err
	}
	if err := st.AddTopic("/surf/b"); err != nil {
		return err
	}
	s.set("topics", fmt.Sprint(len(st.Topics())))
	st.DropTopic("/surf/b")
	s.set("topicsAfterDrop", fmt.Sprint(len(st.Topics())))
	s.set("reqApp", st.Request().Header[burst.HdrApp])
	_ = st.Rewrite(nil, []byte("surface-body"))
	// Runtime timer fires on the loop.
	s.rt.After(time.Millisecond, func() { s.set("timer", "fired") })
	// Streams() enumerates the open stream.
	s.set("streams", fmt.Sprint(len(s.rt.Instance().Streams())))
	return nil
}

func (s *surfaceInstance) OnStreamClose(st *Stream, reason string) {}

func (s *surfaceInstance) OnEvent(ev pylon.Event) {
	for _, st := range s.rt.Instance().StreamsForTopic(ev.Topic) {
		if ev.Meta["redirect"] != "" {
			_ = st.Redirect(ev.Meta["redirect"])
			continue
		}
		payload, err := st.FetchPayload(ev)
		if err != nil {
			st.Filtered()
			continue
		}
		_ = st.PushPayload(ev.ID, payload)
	}
}

func (s *surfaceInstance) OnAck(st *Stream, seq uint64) {}

func TestStreamSurfaceAPI(t *testing.T) {
	env := newEnv(t)
	app := &surfaceApp{probes: map[string]string{}}
	env.host.RegisterApp(app)
	env.was.RegisterPayload("surface", func(ctx *was.Ctx, ref tao.ObjID, ev pylon.Event) (any, error) {
		return "payload-" + ev.Meta["n"], nil
	})

	cli := dialHost(t, env)
	st, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{
		burst.HdrApp: "surface", burst.HdrUser: "4",
	}})
	if err != nil {
		t.Fatal(err)
	}
	probe := func(k string) string {
		app.mu.Lock()
		defer app.mu.Unlock()
		return app.probes[k]
	}
	waitFor(t, "probes", func() bool { return probe("timer") == "fired" })
	if probe("host") != "brass-1" || probe("region") != "us" {
		t.Errorf("host/region = %q/%q", probe("host"), probe("region"))
	}
	if probe("topics") != "2" || probe("topicsAfterDrop") != "1" {
		t.Errorf("topics = %q, after drop %q", probe("topics"), probe("topicsAfterDrop"))
	}
	if probe("reqApp") != "surface" || probe("streams") != "1" || probe("now") != "ok" {
		t.Errorf("reqApp=%q streams=%q now=%q", probe("reqApp"), probe("streams"), probe("now"))
	}
	// DropTopic removed the host's Pylon registration for /surf/b.
	waitFor(t, "topic b unsubscribed", func() bool {
		return len(env.pylon.Subscribers("/surf/b")) == 0 &&
			len(env.pylon.Subscribers("/surf/a")) == 1
	})
	// Body rewrite reached the client's stored request.
	waitFor(t, "body rewrite", func() bool { return string(st.Request().Body) == "surface-body" })

	// FetchPayload + push.
	if _, err := env.pylon.Publish(pylon.Event{Topic: "/surf/a", Meta: map[string]string{"n": "1"}}); err != nil {
		t.Fatal(err)
	}
	select {
	case batch := <-st.Events:
		if string(batch[0].Payload) != `"payload-1"` {
			t.Errorf("payload = %s", batch[0].Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no payload push")
	}

	// Redirect: rewrite sticky target + terminate.
	if _, err := env.pylon.Publish(pylon.Event{Topic: "/surf/a",
		Meta: map[string]string{"redirect": "brass-elsewhere"}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case batch, ok := <-st.Events:
			if !ok {
				// Stream closed after redirect; stored request points at
				// the new BRASS.
				if got := st.Request().Header[burst.HdrStickyBRASS]; got != "brass-elsewhere" {
					t.Errorf("sticky after redirect = %q", got)
				}
				return
			}
			for _, d := range batch {
				if d.Type == burst.DeltaTermination && !strings.Contains(d.Reason, "redirect") {
					t.Errorf("termination reason = %q", d.Reason)
				}
			}
		case <-deadline:
			t.Fatal("redirect never terminated the stream")
		}
	}
}
