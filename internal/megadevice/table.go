// Package megadevice is the million-device scale harness: an event-driven
// virtual-device plane whose per-device cost is a few dozen BYTES instead
// of the goroutines-and-channels cost of device.Device (~several KB per
// stream). It exists so the repo can drive a live core.Cluster with 10^6+
// edge devices on one machine and measure what the paper measures at fleet
// scale — delivery latency CDFs, reconnect storms, celebrity fanout —
// without the client model itself becoming the bottleneck.
//
// The design trades per-device fidelity for density, explicitly:
//
//   - Struct-of-arrays tables. A virtual device is a row across a handful
//     of parallel fixed-width arrays (state, attempt, popIdx, trunk,
//     firstStream), a stream is a row across five more. No per-device
//     heap objects, no pointers, no goroutines, no channels. Strings
//     (topics, POP names) appear once, interned to dense uint32 handles
//     (internal/intern); rows carry only handles.
//
//   - State machines on the event kernel. Dial, backoff, reconnect-with-
//     POP-rotation, drop and shed accounting are transitions in a packed
//     16-byte min-heap serviced by ONE sim.Scheduler timer, instead of
//     per-device timers and pump goroutines. A simulated day of diurnal
//     churn is a few tens of millions of heap operations.
//
//   - Batched edge attach. One real BURST session per POP (a "trunk")
//     carries every virtual device attached through that POP, and devices
//     subscribed to the same topic SHARE one real request-stream per
//     trunk (refcounted). The cluster therefore sees #POPs sessions and
//     #POPs x #topics streams, while the model fans each delivered delta
//     out to every attached virtual device on a zero-allocation apply
//     path. This is the deliberate model difference versus device.Device
//     (which owns a private stream per subscription); DESIGN.md section 10
//     spells out what it preserves and what it drops.
package megadevice

import "math"

// Device states. A device is Idle (offline, nothing pending), Backoff
// (offline with exactly one pending dial transition), or Connected
// (attached to a trunk). The invariant "Backoff implies one queued kDial"
// is what lets the fleet run without per-device timers.
const (
	StateIdle uint8 = iota
	StateBackoff
	StateConnected
)

// Sentinels for "no trunk" / "no stream" / "not attached".
const (
	noTrunk  = ^uint16(0)
	noStream = ^uint32(0)
	noIndex  = ^uint32(0)
)

// tables is the struct-of-arrays core: parallel fixed-width columns
// indexed by dense device and stream ids. Per-device cost:
//
//	state+attempt+popIdx      3 B
//	trunk                     2 B
//	firstStream               4 B   -> 9 B per device
//
//	streamTopic (intern handle) 4 B
//	streamNext  (chain)         4 B
//	streamOwner (device id)     4 B
//	streamSubIdx (pos in sub)   4 B
//	streamSeq   (last applied)  8 B  -> 24 B per stream
//
// With one stream per device that is 33 B before the transition heap
// (16 B/entry, peak-bounded) and per-topic membership slices (4 B per
// attached stream) — comfortably inside the 64 B/device budget the CI
// gate enforces via Footprint.
type tables struct {
	// Device columns (len = device count).
	state       []uint8
	attempt     []uint8
	popIdx      []uint8
	trunk       []uint16
	firstStream []uint32

	// Stream columns (len = stream count).
	streamTopic  []uint32 // interned topic handle
	streamNext   []uint32 // next stream of the same device, noStream ends
	streamOwner  []uint32 // owning device id
	streamSubIdx []uint32 // index in the topicSub membership, noIndex if detached
	streamSeq    []uint64 // highest applied payload seq (atomic access)
}

func newTables(devices int) *tables {
	t := &tables{
		state:       make([]uint8, devices),
		attempt:     make([]uint8, devices),
		popIdx:      make([]uint8, devices),
		trunk:       make([]uint16, devices),
		firstStream: make([]uint32, devices),
	}
	for i := range t.trunk {
		t.trunk[i] = noTrunk
		t.firstStream[i] = noStream
	}
	return t
}

// addStream appends a stream row owned by dev, linking it into the
// device's chain, and returns its id.
func (t *tables) addStream(dev uint32, topicHandle uint32) uint32 {
	sid := uint32(len(t.streamTopic))
	t.streamTopic = append(t.streamTopic, topicHandle)
	t.streamNext = append(t.streamNext, t.firstStream[dev])
	t.streamOwner = append(t.streamOwner, dev)
	t.streamSubIdx = append(t.streamSubIdx, noIndex)
	t.streamSeq = append(t.streamSeq, 0)
	t.firstStream[dev] = sid
	return sid
}

// bytes returns the exact size of the table columns' backing arrays.
func (t *tables) bytes() int64 {
	b := int64(cap(t.state)) + int64(cap(t.attempt)) + int64(cap(t.popIdx))
	b += 2 * int64(cap(t.trunk))
	b += 4 * int64(cap(t.firstStream))
	b += 4 * int64(cap(t.streamTopic))
	b += 4 * int64(cap(t.streamNext))
	b += 4 * int64(cap(t.streamOwner))
	b += 4 * int64(cap(t.streamSubIdx))
	b += 8 * int64(cap(t.streamSeq))
	return b
}

// transition is one packed pending state-machine step: at absolute
// scheduler nanos `due`, apply `kind` to device `dev`. 16 bytes.
type transition struct {
	due  int64
	dev  uint32
	kind uint32
}

// Transition kinds.
const (
	kDial uint32 = iota + 1 // Backoff -> dial the current POP
	kDrop                   // Connected -> involuntary network drop
	kOff                    // any -> Idle (user went offline)
)

// tranHeap is a hand-rolled min-heap of transitions ordered by due time.
// container/heap would box every entry into an interface; at millions of
// pushes per simulated day the flat slice version is both faster and what
// keeps the 16 B/entry accounting honest.
type tranHeap []transition

func (h tranHeap) less(i, j int) bool { return h[i].due < h[j].due }

func (h *tranHeap) push(tr transition) {
	*h = append(*h, tr)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *tranHeap) pop() transition {
	old := *h
	n := len(old)
	top := old[0]
	old[0] = old[n-1]
	old = old[:n-1]
	// Shrink the backing array once it is mostly slack, exactly like
	// sim.Engine's queue: the initial connect burst pushes one entry per
	// device and must not pin 16 B/device for the rest of the run.
	if c := cap(old); c > 1024 && (n-1)*4 < c {
		shrunk := make(tranHeap, n-1, c/2)
		copy(shrunk, old)
		old = shrunk
	}
	*h = old
	if len(old) > 0 {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(old) && old.less(l, small) {
				small = l
			}
			if r < len(old) && old.less(r, small) {
				small = r
			}
			if small == i {
				break
			}
			old[i], old[small] = old[small], old[i]
			i = small
		}
	}
	return top
}

// splitmix64 is the per-(device,attempt) jitter hash: stateless, so the
// fleet pays zero bytes of per-device RNG state yet every device's retry
// schedule diverges deterministically (same role as faults.Backoff's
// seeded jitter in device.Device).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// jitterFrac maps a hash to [1-j, 1+j].
func jitterFrac(h uint64, j float64) float64 {
	u := float64(h>>11) / float64(1<<53) // uniform [0,1)
	if math.IsNaN(u) {
		u = 0.5
	}
	return 1 - j + 2*j*u
}
