package brass

import (
	"strconv"
	"testing"
	"testing/quick"
	"time"
)

var sdkT0 = time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)

// quickCount sizes the property-test sample: full depth normally, a fast
// smoke pass under -short (the CI race job runs with -short).
func quickCount(t *testing.T) int {
	if testing.Short() {
		return 30
	}
	return 300
}

// Property: the ranked buffer never holds more than K items, and popping
// everything yields non-increasing scores (fresh items only).
func TestRankedBufferOrderProperty(t *testing.T) {
	f := func(scores []uint16, k uint8) bool {
		kk := int(k%8) + 1
		b := RankedBuffer{K: kk, TTL: time.Hour}
		for _, s := range scores {
			b.Add(RankedItem{Score: float64(s), Time: sdkT0})
			if b.Len() > kk {
				return false
			}
		}
		prev := 1e18
		now := sdkT0.Add(time.Minute)
		for {
			item, ok := b.Pop(now)
			if !ok {
				break
			}
			if item.Score > prev {
				return false
			}
			prev = item.Score
		}
		return b.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount(t)}); err != nil {
		t.Error(err)
	}
}

// Property: the buffer keeps the top-K scores — anything popped beats
// everything that was evicted.
func TestRankedBufferKeepsTopKProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		const k = 3
		b := RankedBuffer{K: k, TTL: time.Hour}
		for _, s := range raw {
			b.Add(RankedItem{Score: float64(s), Time: sdkT0})
		}
		// Compute the true top-k multiset.
		sorted := append([]uint16(nil), raw...)
		for i := 0; i < len(sorted); i++ {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] > sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		want := sorted
		if len(want) > k {
			want = want[:k]
		}
		now := sdkT0.Add(time.Minute)
		for _, w := range want {
			item, ok := b.Pop(now)
			if !ok || item.Score != float64(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount(t)}); err != nil {
		t.Error(err)
	}
}

// Property: a rate limiter allows at most ceil(window/interval)+1 events in
// any burst of attempts inside a window.
func TestRateLimiterBoundProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		r := RateLimiter{Interval: time.Second}
		allowed := 0
		// Sorted attempt times within the window.
		times := make([]time.Time, len(offsets))
		for i, off := range offsets {
			times[i] = sdkT0.Add(time.Duration(int(off)%10000) * time.Millisecond)
		}
		for i := 0; i < len(times); i++ {
			for j := i + 1; j < len(times); j++ {
				if times[j].Before(times[i]) {
					times[i], times[j] = times[j], times[i]
				}
			}
		}
		for _, at := range times {
			if r.Allow(at) {
				allowed++
			}
		}
		return allowed <= 11 // 10s window at 1/s, +1 for the boundary
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount(t)}); err != nil {
		t.Error(err)
	}
}

// Property: the limiter's stall is bounded under non-monotonic clocks.
// For ANY sequence of attempt times — forwards, backwards, wildly skewed —
// a denied attempt retried two Intervals later always succeeds. The pre-fix
// Allow violated this: a clock retreat left `last` in the attempt's future,
// and with a large Interval the limiter denied until the original timeline
// caught up (potentially forever).
func TestRateLimiterNonMonotonicBoundedStallProperty(t *testing.T) {
	const iv = time.Minute
	f := func(offsets []int32) bool {
		r := RateLimiter{Interval: iv}
		for _, off := range offsets {
			at := sdkT0.Add(time.Duration(off) * time.Second)
			if r.Allow(at) {
				continue
			}
			// Bounded stall: whatever state the sequence produced, the
			// limiter must grant within two Intervals of the denial.
			if !r.Allow(at.Add(2 * iv)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount(t)}); err != nil {
		t.Error(err)
	}
}

// Property: restoring ANY header state (including future-dated or corrupt
// values) never stalls the stream by more than one Interval: an attempt one
// Interval after the restore point always succeeds.
func TestRateLimiterRestoreNeverStallsProperty(t *testing.T) {
	const iv = 5 * time.Minute
	f := func(ns int64) bool {
		r := RateLimiter{Interval: iv}
		r.RestoreHeaderState(strconv.FormatInt(ns, 10), sdkT0)
		return r.Allow(sdkT0.Add(iv))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: quickCount(t)}); err != nil {
		t.Error(err)
	}
}

func TestBatchAccumulator(t *testing.T) {
	var acc BatchAccumulator
	if acc.Len() != 0 {
		t.Fatal("fresh accumulator non-empty")
	}
	if err := acc.Flush(nil); err != nil {
		t.Errorf("empty flush errored: %v", err)
	}
}
