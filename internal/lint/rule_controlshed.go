package lint

// control-never-shed: a value classified overload.Control must never reach
// a shedable sink. The overload plane's taxonomy (DESIGN.md §8, PR 5) is
// Data sheds / Control never: lifecycle work (subscribes, stream setup,
// despool) must survive saturation even as deliveries are dropped. The
// bounded overload.Queue honors that by construction — its shed loop skips
// Control entries — but the guarantee only holds while the classification
// travels with the value. This rule closes the loop statically: at every
// call site passing the overload.Control constant, the callee's
// shed-reachability summary (escape.go) must show the value parameters
// either never shed or shed strictly under the class argument the caller
// just set to Control. A wrapper that hardcodes Data, drops the value in a
// select-with-default, or forwards it without the class loses the
// classification, and the rule reports where.

// ControlNeverShed implements the control-never-shed rule.
type ControlNeverShed struct{}

// Name implements Rule.
func (*ControlNeverShed) Name() string { return "control-never-shed" }

// Doc implements Rule.
func (*ControlNeverShed) Doc() string {
	return "overload.Control values must not reach a shedable sink"
}

// Check implements Rule.
func (r *ControlNeverShed) Check(c *Context) {
	if c.Prog == nil {
		return
	}
	info := c.Pkg.Info
	for _, n := range c.Prog.NodesIn(c.Pkg) {
		for _, cs := range n.Calls {
			// Only call sites that explicitly classify Control are the
			// rule's business: that is where the caller states intent.
			control := false
			for _, arg := range cs.Call.Args {
				if c.Prog.IsControlConst(info, arg) {
					control = true
					break
				}
			}
			if !control {
				continue
			}
			// The intrinsic itself is safe by construction when called
			// with Control (the queue's shed loop skips Control entries).
			if _, _, isPush := c.Prog.queuePushArgs(cs); isPush {
				continue
			}
			for _, t := range cs.Targets {
				sub := c.Prog.ParamShedFacts(t)
				reported := false
				for ai := range cs.Call.Args {
					sf, ok := sub[ai]
					if !ok || sf.Kind != shedAlways {
						continue
					}
					c.Reportf(cs.Pos,
						"value classified overload.Control reaches a shedable sink: %s sheds its argument #%d regardless of class (%s at %s)",
						t.Name(), ai+1, sf.Desc, c.Prog.shortPos(sf.Pos))
					reported = true
					break
				}
				if reported {
					break
				}
			}
		}
	}
}
