package kvstore

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// Quorum-repair tests: ReadAll + Merge + Patch must converge the replicas
// of a key after a minority of them flapped (down, or erroring via op
// hooks) during a write sequence — the straggler-patch behaviour Pylon
// leans on (paper §3.1).

// readAllMerge gathers every reachable replica view of key and merges.
func readAllMerge(c *Cluster, key string) SetView {
	var views []SetView
	for _, r := range c.ReadAll(key) {
		if r.Err == nil {
			views = append(views, r.View)
		}
	}
	return Merge(views...)
}

// assertConverged checks every replica holds exactly the expected members.
func assertConverged(t *testing.T, c *Cluster, key string, want []Member) {
	t.Helper()
	for _, n := range c.ReplicasFor(key) {
		v, err := n.View(key)
		if err != nil {
			t.Fatalf("replica %s: %v", n.ID, err)
		}
		got := v.Members()
		if len(got) != len(want) {
			t.Fatalf("replica %s members = %v, want %v", n.ID, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("replica %s members = %v, want %v", n.ID, got, want)
			}
		}
	}
}

// TestAsymmetricDownPatternsRepair makes each replica miss a different
// write — including a removal, so tombstone propagation is covered — and
// verifies one patch round converges all of them.
func TestAsymmetricDownPatternsRepair(t *testing.T) {
	c := newTestCluster(t, 3, 3)
	const key = "k"
	replicas := c.ReplicasFor(key)

	// Write 1: replica 0 misses the add of m1.
	replicas[0].SetUp(false)
	if _, err := c.SetAdd(key, "m1"); err != nil {
		t.Fatal(err)
	}
	replicas[0].SetUp(true)

	// Write 2: replica 1 misses the add of m2.
	replicas[1].SetUp(false)
	if _, err := c.SetAdd(key, "m2"); err != nil {
		t.Fatal(err)
	}
	replicas[1].SetUp(true)

	// Write 3: replica 2 misses the removal of m1 (a tombstone).
	replicas[2].SetUp(false)
	if _, err := c.SetRemove(key, "m1"); err != nil {
		t.Fatal(err)
	}
	replicas[2].SetUp(true)

	// Every replica now has a different partial history.
	merged := readAllMerge(c, key)
	if got := merged.Members(); len(got) != 1 || got[0] != "m2" {
		t.Fatalf("merged members = %v, want [m2]", got)
	}
	if patched := c.Patch(key, merged); patched == 0 {
		t.Fatal("patch touched no replicas")
	}
	assertConverged(t, c, key, []Member{"m2"})
	// The tombstone for m1 must be present everywhere, not just absence.
	for _, n := range replicas {
		v, _ := n.View(key)
		rec, ok := v["m1"]
		if !ok || rec.Present {
			t.Errorf("replica %s: m1 tombstone = %+v, %v", n.ID, rec, ok)
		}
	}
	// Convergence is stable: a second patch round is a no-op.
	if patched := c.Patch(key, readAllMerge(c, key)); patched != 0 {
		t.Errorf("second patch round touched %d replicas", patched)
	}
}

// TestFlappingMinorityConvergence runs a seeded write workload while a
// random minority replica flaps around every write, then verifies a single
// ReadAll+Merge+Patch round restores full agreement with the true final
// membership.
func TestFlappingMinorityConvergence(t *testing.T) {
	c := newTestCluster(t, 5, 3)
	const key = "flappy"
	rng := rand.New(rand.NewSource(11))
	replicas := c.ReplicasFor(key)
	model := map[Member]bool{}

	for i := 0; i < 60; i++ {
		// A minority (one of three) may be down for this write.
		var down *Node
		if rng.Intn(2) == 0 {
			down = replicas[rng.Intn(len(replicas))]
			down.SetUp(false)
		}
		m := Member(fmt.Sprintf("m%d", rng.Intn(8)))
		if rng.Intn(3) == 0 {
			if _, err := c.SetRemove(key, m); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			model[m] = false
		} else {
			if _, err := c.SetAdd(key, m); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			model[m] = true
		}
		if down != nil {
			down.SetUp(true)
		}
	}

	var want []Member
	for m, present := range model {
		if present {
			want = append(want, m)
		}
	}
	merged := readAllMerge(c, key)
	got := merged.Members()
	if len(got) != len(want) {
		t.Fatalf("merged = %v, model wants %d members", got, len(want))
	}
	for _, m := range want {
		if r, ok := merged[m]; !ok || !r.Present {
			t.Fatalf("merged missing %s", m)
		}
	}
	c.Patch(key, merged)
	assertConverged(t, c, key, got)
}

// TestOpHookInjectsFailures covers the injectable per-op hooks: an erroring
// hook must degrade a replica exactly like SetUp(false) — writes lose its
// ack (but keep quorum), reads fall through to the next replica — and the
// replica patches back to consistency once the hook is removed.
func TestOpHookInjectsFailures(t *testing.T) {
	c := newTestCluster(t, 3, 3)
	const key = "hooked"
	replicas := c.ReplicasFor(key)
	errInjected := errors.New("injected")
	var applies, views int
	replicas[0].SetOpHook(func(op, k string) error {
		if k != key {
			return nil
		}
		switch op {
		case "apply":
			applies++
			return errInjected
		case "view":
			views++
			return errInjected
		}
		return nil
	})

	acked, err := c.SetAdd(key, "m1")
	if err != nil {
		t.Fatalf("write with one erroring replica: %v", err)
	}
	if acked != 2 {
		t.Errorf("acked = %d, want 2", acked)
	}
	if applies == 0 {
		t.Error("apply hook never ran")
	}

	// Reads fall back past the erroring primary.
	v, n, err := c.ReadOne(key)
	if err != nil {
		t.Fatal(err)
	}
	if n == replicas[0] {
		t.Error("ReadOne used the erroring replica")
	}
	if got := v.Members(); len(got) != 1 || got[0] != "m1" {
		t.Errorf("ReadOne view = %v", got)
	}
	if views == 0 {
		t.Error("view hook never ran")
	}

	// Hook removed: the replica rejoins and patches to consistency.
	replicas[0].SetOpHook(nil)
	merged := readAllMerge(c, key)
	if patched := c.Patch(key, merged); patched == 0 {
		t.Error("no replica patched after hook removal")
	}
	assertConverged(t, c, key, []Member{"m1"})
}

// TestOpHookQuorumLoss: erroring hooks on a majority of replicas must
// surface as ErrNoQuorum, same as hard node failures.
func TestOpHookQuorumLoss(t *testing.T) {
	c := newTestCluster(t, 3, 3)
	const key = "dark"
	replicas := c.ReplicasFor(key)
	boom := func(op, k string) error { return errors.New("injected") }
	replicas[0].SetOpHook(boom)
	replicas[1].SetOpHook(boom)
	if _, err := c.SetAdd(key, "m1"); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("write with 2/3 erroring replicas: %v", err)
	}
	replicas[0].SetOpHook(nil)
	replicas[1].SetOpHook(nil)
	if _, err := c.SetAdd(key, "m1"); err != nil {
		t.Errorf("write after hooks removed: %v", err)
	}
}
