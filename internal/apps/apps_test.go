package apps

import (
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"testing"
	"time"

	"bladerunner/internal/brass"
	"bladerunner/internal/burst"
	"bladerunner/internal/kvstore"
	"bladerunner/internal/pylon"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
	"bladerunner/internal/was"
)

type env struct {
	graph *socialgraph.Graph
	tao   *tao.Store
	pylon *pylon.Service
	was   *was.Server
	suite *Suite
	host  *brass.Host
}

func newEnv(t *testing.T) *env {
	t.Helper()
	nodes := []*kvstore.Node{
		kvstore.NewNode("a", "us"), kvstore.NewNode("b", "eu"), kvstore.NewNode("c", "ap"),
	}
	pyl := pylon.MustNew(pylon.DefaultConfig(), kvstore.MustNewCluster(nodes, 3))
	store := tao.MustNewStore(tao.DefaultConfig(), nil)
	graph := socialgraph.MustGenerate(socialgraph.Config{
		Users: 200, MeanFriends: 20, BlockProb: 0, Seed: 5,
	})
	w := was.New(store, graph, pyl, nil)
	suite := NewSuite(w)
	// Fast timers for real-clock tests.
	suite.LVC.RateLimit = 10 * time.Millisecond
	suite.LVC.BufferTTL = 10 * time.Second
	suite.LVC.RankBeforePublish = false // no ranking delay in live tests
	suite.ActiveStatus.BatchInterval = 10 * time.Millisecond
	suite.ActiveStatus.TTL = 200 * time.Millisecond

	host := brass.NewHost(brass.HostConfig{ID: "brass-1", Region: "us", StickyRouting: true}, pyl, w, nil)
	suite.RegisterBRASS(host)
	t.Cleanup(host.Close)
	return &env{graph: graph, tao: store, pylon: pyl, was: w, suite: suite, host: host}
}

func (e *env) dial(t *testing.T) *burst.Client {
	t.Helper()
	a, b := net.Pipe()
	cli := burst.NewClient("device", a, nil)
	e.host.AcceptSession("sess", b)
	t.Cleanup(func() { cli.Close() })
	return cli
}

func (e *env) subscribe(t *testing.T, cli *burst.Client, app, sub string, viewer socialgraph.UserID, extra burst.Header) *burst.ClientStream {
	t.Helper()
	h := burst.Header{
		burst.HdrApp:          app,
		burst.HdrSubscription: sub,
		burst.HdrUser:         strconv.FormatUint(uint64(viewer), 10),
	}
	for k, v := range extra {
		h[k] = v
	}
	st, err := cli.Subscribe(burst.Subscribe{Header: h})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// recvPayload waits for the next payload delta on st, skipping flow events.
func recvPayload(t *testing.T, st *burst.ClientStream) burst.Delta {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case batch, ok := <-st.Events:
			if !ok {
				t.Fatal("stream closed while awaiting payload")
			}
			for _, d := range batch {
				if d.Type == burst.DeltaPayload {
					return d
				}
			}
		case <-deadline:
			t.Fatal("timed out waiting for payload")
		}
	}
}

// friendPair returns two users who are friends.
func friendPair(t *testing.T, g *socialgraph.Graph) (socialgraph.UserID, socialgraph.UserID) {
	t.Helper()
	for id := socialgraph.UserID(1); id <= socialgraph.UserID(g.NumUsers()); id++ {
		if fs := g.Friends(id); len(fs) > 0 {
			return id, fs[0]
		}
	}
	t.Fatal("no friends in graph")
	return 0, 0
}

func TestLVCEndToEnd(t *testing.T) {
	e := newEnv(t)
	cli := e.dial(t)
	viewer := socialgraph.UserID(1)
	commenter := socialgraph.UserID(2)
	st := e.subscribe(t, cli, AppLiveComments, "liveVideoComments(videoID: 7)", viewer, nil)
	waitFor(t, "pylon sub", func() bool { return len(e.pylon.Subscribers(LVCTopic(7))) == 1 })

	if _, err := e.was.Mutate(commenter, `postComment(videoID: 7, text: "great video")`); err != nil {
		t.Fatal(err)
	}
	d := recvPayload(t, st)
	var p CommentPayload
	if err := json.Unmarshal(d.Payload, &p); err != nil {
		t.Fatal(err)
	}
	if p.Author != uint64(commenter) || p.Text != "great video" || p.VideoID != 7 {
		t.Errorf("payload = %+v", p)
	}
	// The comment is durable in TAO regardless of push delivery.
	if got := e.tao.AssocCount(tao.ObjID(7), "video_comment"); got != 1 {
		t.Errorf("TAO comment count = %d", got)
	}
}

func TestLVCFiltersOwnComments(t *testing.T) {
	e := newEnv(t)
	cli := e.dial(t)
	viewer := socialgraph.UserID(3)
	st := e.subscribe(t, cli, AppLiveComments, "liveVideoComments(videoID: 8)", viewer, nil)
	waitFor(t, "sub", func() bool { return len(e.pylon.Subscribers(LVCTopic(8))) == 1 })
	if _, err := e.was.Mutate(viewer, `postComment(videoID: 8, text: "my own words")`); err != nil {
		t.Fatal(err)
	}
	e.host.Quiesce()
	select {
	case b := <-st.Events:
		t.Errorf("own comment delivered: %+v", b)
	case <-time.After(100 * time.Millisecond):
	}
	if e.host.Filtered.Value() == 0 {
		t.Error("own comment not counted as filtered")
	}
}

func TestLVCLanguageFilter(t *testing.T) {
	e := newEnv(t)
	cli := e.dial(t)
	viewer := socialgraph.UserID(4)
	commenter := socialgraph.UserID(5)
	commenterLang := int(e.graph.User(commenter).Lang)
	otherLang := strconv.Itoa(commenterLang + 1)
	st := e.subscribe(t, cli, AppLiveComments, "liveVideoComments(videoID: 9)", viewer,
		burst.Header{HdrLang: otherLang})
	waitFor(t, "sub", func() bool { return len(e.pylon.Subscribers(LVCTopic(9))) == 1 })
	if _, err := e.was.Mutate(commenter, `postComment(videoID: 9, text: "hola")`); err != nil {
		t.Fatal(err)
	}
	e.host.Quiesce()
	select {
	case b := <-st.Events:
		t.Errorf("foreign-language comment delivered: %+v", b)
	case <-time.After(100 * time.Millisecond):
	}
}

func TestLVCPrivacyDenialSkipsComment(t *testing.T) {
	e := newEnv(t)
	cli := e.dial(t)
	viewer := socialgraph.UserID(6)
	blocked := socialgraph.UserID(7)
	e.graph.Block(viewer, blocked)
	st := e.subscribe(t, cli, AppLiveComments, "liveVideoComments(videoID: 10)", viewer, nil)
	waitFor(t, "sub", func() bool { return len(e.pylon.Subscribers(LVCTopic(10))) == 1 })
	if _, err := e.was.Mutate(blocked, `postComment(videoID: 10, text: "you cannot see this")`); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-st.Events:
		for _, d := range b {
			if d.Type == burst.DeltaPayload {
				t.Errorf("blocked author's comment delivered: %s", d.Payload)
			}
		}
	case <-time.After(150 * time.Millisecond):
	}
	if e.was.PrivacyDenied.Value() == 0 {
		t.Error("privacy check never denied")
	}
}

func TestLVCRateLimitOnePerInterval(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock rate-limit timing; skipped in -short")
	}
	e := newEnv(t)
	e.suite.LVC.RateLimit = 80 * time.Millisecond
	cli := e.dial(t)
	viewer := socialgraph.UserID(8)
	st := e.subscribe(t, cli, AppLiveComments, "liveVideoComments(videoID: 11)", viewer, nil)
	waitFor(t, "sub", func() bool { return len(e.pylon.Subscribers(LVCTopic(11))) == 1 })
	// Burst of comments from distinct users.
	for i := 0; i < 10; i++ {
		commenter := socialgraph.UserID(20 + i)
		if _, err := e.was.Mutate(commenter,
			fmt.Sprintf(`postComment(videoID: 11, text: "comment %d")`, i)); err != nil {
			t.Fatal(err)
		}
	}
	// In ~200ms at 80ms/push we expect at most 3-4 deliveries, not 10.
	received := 0
	timeout := time.After(220 * time.Millisecond)
drain:
	for {
		select {
		case batch, ok := <-st.Events:
			if !ok {
				break drain
			}
			for _, d := range batch {
				if d.Type == burst.DeltaPayload {
					received++
				}
			}
		case <-timeout:
			break drain
		}
	}
	if received == 0 || received > 5 {
		t.Errorf("received %d pushes in 220ms at 80ms rate limit", received)
	}
}

func TestLVCSpamNeverPublished(t *testing.T) {
	e := newEnv(t)
	// Find a (user, text) pair scoring below the spam threshold.
	var spammer socialgraph.UserID
	var text string
	for uid := socialgraph.UserID(1); uid <= 100 && spammer == 0; uid++ {
		for i := 0; i < 50; i++ {
			cand := fmt.Sprintf("buy now %d", i)
			if was.QualityScore(e.graph.User(uid), cand) < was.SpamThreshold {
				spammer, text = uid, cand
				break
			}
		}
	}
	if spammer == 0 {
		t.Skip("no spam-scoring pair found")
	}
	before := e.pylon.Publishes.Value()
	if _, err := e.was.Mutate(spammer, fmt.Sprintf(`postComment(videoID: 12, text: "%s")`, text)); err != nil {
		t.Fatal(err)
	}
	if e.pylon.Publishes.Value() != before {
		t.Error("spam comment reached Pylon")
	}
	// But it is stored in TAO.
	if got := e.tao.AssocCount(tao.ObjID(12), "video_comment"); got != 1 {
		t.Errorf("spam not stored: count=%d", got)
	}
}

func TestActiveStatusOnlineOffline(t *testing.T) {
	e := newEnv(t)
	cli := e.dial(t)
	viewer, friend := friendPair(t, e.graph)
	st := e.subscribe(t, cli, AppActiveStatus, "activeStatus", viewer, nil)
	waitFor(t, "friend topic sub", func() bool {
		return len(e.pylon.Subscribers(StatusTopic(friend))) == 1
	})
	if _, err := e.was.Mutate(friend, "reportActive"); err != nil {
		t.Fatal(err)
	}
	d := recvPayload(t, st)
	var p StatusPayload
	if err := json.Unmarshal(d.Payload, &p); err != nil {
		t.Fatal(err)
	}
	if p.User != uint64(friend) || !p.Online {
		t.Errorf("payload = %+v", p)
	}
	// No more reports: after TTL the BRASS pushes offline.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case batch, ok := <-st.Events:
			if !ok {
				t.Fatal("stream closed")
			}
			for _, dd := range batch {
				if dd.Type != burst.DeltaPayload {
					continue
				}
				var q StatusPayload
				if err := json.Unmarshal(dd.Payload, &q); err != nil {
					t.Fatal(err)
				}
				if q.User == uint64(friend) && !q.Online {
					return // got the offline transition
				}
			}
		case <-deadline:
			t.Fatal("no offline transition after TTL")
		}
	}
}

func TestActiveStatusBatchesMultipleFriends(t *testing.T) {
	e := newEnv(t)
	cli := e.dial(t)
	// Find a viewer with >= 2 friends.
	var viewer socialgraph.UserID
	for id := socialgraph.UserID(1); id <= socialgraph.UserID(e.graph.NumUsers()); id++ {
		if len(e.graph.Friends(id)) >= 2 {
			viewer = id
			break
		}
	}
	if viewer == 0 {
		t.Skip("no viewer with 2 friends")
	}
	friends := e.graph.Friends(viewer)[:2]
	e.subscribe(t, cli, AppActiveStatus, "activeStatus", viewer, nil)
	waitFor(t, "subs", func() bool {
		return len(e.pylon.Subscribers(StatusTopic(friends[0]))) == 1 &&
			len(e.pylon.Subscribers(StatusTopic(friends[1]))) == 1
	})
	for _, f := range friends {
		if _, err := e.was.Mutate(f, "reportActive"); err != nil {
			t.Fatal(err)
		}
	}
	// Both statuses arrive (possibly in one batch).
	e.host.Quiesce()
	waitFor(t, "both online", func() bool { return e.host.Deliveries.Value() >= 2 })
}

func TestTypingIndicatorImmediatePush(t *testing.T) {
	e := newEnv(t)
	cli := e.dial(t)
	viewer := socialgraph.UserID(9)
	peer := socialgraph.UserID(10)
	st := e.subscribe(t, cli, AppTyping, "typingIndicator(threadID: 55, peer: 10)", viewer, nil)
	waitFor(t, "sub", func() bool {
		return len(e.pylon.Subscribers(TypingTopic(55, uint64(peer)))) == 1
	})
	if _, err := e.was.Mutate(peer, `setTyping(threadID: 55, on: "true")`); err != nil {
		t.Fatal(err)
	}
	d := recvPayload(t, st)
	var p TypingPayload
	if err := json.Unmarshal(d.Payload, &p); err != nil {
		t.Fatal(err)
	}
	if p.User != uint64(peer) || !p.Typing || p.Thread != 55 {
		t.Errorf("payload = %+v", p)
	}
	// Stop typing.
	if _, err := e.was.Mutate(peer, `setTyping(threadID: 55, on: "false")`); err != nil {
		t.Fatal(err)
	}
	d = recvPayload(t, st)
	if err := json.Unmarshal(d.Payload, &p); err != nil {
		t.Fatal(err)
	}
	if p.Typing {
		t.Error("expected typing=false")
	}
}

func TestStoriesTrayManagement(t *testing.T) {
	e := newEnv(t)
	e.suite.Stories.TraySize = 1 // force displacement
	cli := e.dial(t)
	viewer, _ := friendPair(t, e.graph)
	friends := e.graph.Friends(viewer)
	if len(friends) < 2 {
		t.Skip("viewer needs 2 friends")
	}
	st := e.subscribe(t, cli, AppStories, "storiesTray", viewer, nil)
	waitFor(t, "subs", func() bool {
		return len(e.pylon.Subscribers(StoriesTopic(uint64(friends[0])))) == 1
	})

	// First friend posts: container added + story delivered.
	if _, err := e.was.Mutate(friends[0], `postStory(content: "sunset pics")`); err != nil {
		t.Fatal(err)
	}
	sawAdd, sawStory := false, false
	deadline := time.After(5 * time.Second)
	for !(sawAdd && sawStory) {
		select {
		case batch, ok := <-st.Events:
			if !ok {
				t.Fatal("closed")
			}
			for _, d := range batch {
				if d.Type != burst.DeltaPayload {
					continue
				}
				var sd StoryDelta
				if err := json.Unmarshal(d.Payload, &sd); err != nil {
					t.Fatal(err)
				}
				switch sd.Op {
				case "container_add":
					if sd.Author == uint64(friends[0]) {
						sawAdd = true
					}
				case "story_add":
					if sd.Content == "sunset pics" {
						sawStory = true
					}
				}
			}
		case <-deadline:
			t.Fatalf("tray ops incomplete: add=%v story=%v", sawAdd, sawStory)
		}
	}

	// Second friend posts with (presumably) different score; with a tray
	// of 1, one of the two must eventually be removed if the newcomer
	// ranks higher. Just assert we see a remove OR a filtered decision.
	if _, err := e.was.Mutate(friends[1], `postStory(content: "a much better story maybe")`); err != nil {
		t.Fatal(err)
	}
	e.host.Quiesce()
	waitFor(t, "second decision", func() bool { return e.host.Decisions.Value() >= 2 })
}

func TestMessengerInOrderDelivery(t *testing.T) {
	e := newEnv(t)
	cli := e.dial(t)
	alice, bob := socialgraph.UserID(11), socialgraph.UserID(12)
	out, err := e.was.Mutate(alice, `createThread(members: "11,12")`)
	if err != nil {
		t.Fatal(err)
	}
	var tid uint64
	if err := json.Unmarshal(out, &tid); err != nil {
		t.Fatal(err)
	}

	st := e.subscribe(t, cli, AppMessenger, "messenger", bob, nil)
	waitFor(t, "mailbox sub", func() bool {
		return len(e.pylon.Subscribers(MailboxTopic(bob))) == 1
	})
	for i := 1; i <= 3; i++ {
		if _, err := e.was.Mutate(alice,
			fmt.Sprintf(`sendMessage(threadID: %d, text: "msg %d")`, tid, i)); err != nil {
			t.Fatal(err)
		}
	}
	for want := 1; want <= 3; want++ {
		d := recvPayload(t, st)
		var m MessagePayload
		if err := json.Unmarshal(d.Payload, &m); err != nil {
			t.Fatal(err)
		}
		if m.Seq != uint64(want) || m.Text != fmt.Sprintf("msg %d", want) {
			t.Errorf("got seq %d text %q, want seq %d", m.Seq, m.Text, want)
		}
	}
	// Resume token tracked via rewrites.
	waitFor(t, "resume token", func() bool {
		return st.Request().Header[burst.HdrResumeSeq] == "3"
	})
}

func TestMessengerGapRepair(t *testing.T) {
	e := newEnv(t)
	cli := e.dial(t)
	alice, bob := socialgraph.UserID(13), socialgraph.UserID(14)
	out, _ := e.was.Mutate(alice, `createThread(members: "13,14")`)
	var tid uint64
	_ = json.Unmarshal(out, &tid)

	st := e.subscribe(t, cli, AppMessenger, "messenger", bob, nil)
	waitFor(t, "sub", func() bool { return len(e.pylon.Subscribers(MailboxTopic(bob))) == 1 })

	// msg 1 delivered live.
	_, _ = e.was.Mutate(alice, fmt.Sprintf(`sendMessage(threadID: %d, text: "one")`, tid))
	d := recvPayload(t, st)

	// Detach the host from Pylon behind its back: msg 2's event is lost
	// in transit (best-effort delivery failure).
	_ = e.pylon.Unsubscribe(MailboxTopic(bob), "brass-1")
	_, _ = e.was.Mutate(alice, fmt.Sprintf(`sendMessage(threadID: %d, text: "two")`, tid))
	// Reattach and send msg 3: the BRASS sees seq 3 after 1 — a gap — and
	// repairs from the mailbox.
	if err := e.pylon.Subscribe(MailboxTopic(bob), "brass-1"); err != nil {
		t.Fatal(err)
	}
	_, _ = e.was.Mutate(alice, fmt.Sprintf(`sendMessage(threadID: %d, text: "three")`, tid))

	var texts []string
	for len(texts) < 2 {
		d = recvPayload(t, st)
		var m MessagePayload
		if err := json.Unmarshal(d.Payload, &m); err != nil {
			t.Fatal(err)
		}
		texts = append(texts, m.Text)
	}
	if texts[0] != "two" || texts[1] != "three" {
		t.Errorf("repaired order = %v, want [two three]", texts)
	}
}

func TestMessengerResumeAfterReconnect(t *testing.T) {
	e := newEnv(t)
	alice, bob := socialgraph.UserID(15), socialgraph.UserID(16)
	out, _ := e.was.Mutate(alice, `createThread(members: "15,16")`)
	var tid uint64
	_ = json.Unmarshal(out, &tid)

	// First session: receive msg 1, then the device goes dark.
	cli1 := e.dial(t)
	st1 := e.subscribe(t, cli1, AppMessenger, "messenger", bob, nil)
	waitFor(t, "sub", func() bool { return len(e.pylon.Subscribers(MailboxTopic(bob))) == 1 })
	_, _ = e.was.Mutate(alice, fmt.Sprintf(`sendMessage(threadID: %d, text: "before drop")`, tid))
	recvPayload(t, st1)
	waitFor(t, "resume-seq 1", func() bool {
		return st1.Request().Header[burst.HdrResumeSeq] == "1"
	})
	saved := st1.Request() // device persists the rewritten request
	cli1.Close()
	waitFor(t, "stream closed server-side", func() bool {
		return len(e.pylon.Subscribers(MailboxTopic(bob))) == 0
	})

	// Messages sent while disconnected.
	_, _ = e.was.Mutate(alice, fmt.Sprintf(`sendMessage(threadID: %d, text: "while offline 1")`, tid))
	_, _ = e.was.Mutate(alice, fmt.Sprintf(`sendMessage(threadID: %d, text: "while offline 2")`, tid))

	// Reconnect with the stored (rewritten) request: catch-up delivers
	// exactly the missed messages, in order.
	cli2 := e.dial(t)
	st2, err := cli2.Subscribe(saved)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for len(got) < 2 {
		d := recvPayload(t, st2)
		var m MessagePayload
		_ = json.Unmarshal(d.Payload, &m)
		got = append(got, m.Text)
	}
	if got[0] != "while offline 1" || got[1] != "while offline 2" {
		t.Errorf("catch-up = %v", got)
	}
}

func TestFeedCommentsPassThrough(t *testing.T) {
	e := newEnv(t)
	cli := e.dial(t)
	viewer := socialgraph.UserID(17)
	commenter := socialgraph.UserID(18)
	st := e.subscribe(t, cli, AppFeedComments, "feedPostComments(postID: 300)", viewer, nil)
	waitFor(t, "sub", func() bool { return len(e.pylon.Subscribers(PostTopic(300))) == 1 })
	if _, err := e.was.Mutate(commenter, `postFeedComment(postID: 300, text: "nice post")`); err != nil {
		t.Fatal(err)
	}
	d := recvPayload(t, st)
	var p CommentPayload
	if err := json.Unmarshal(d.Payload, &p); err != nil {
		t.Fatal(err)
	}
	if p.Text != "nice post" || p.Author != uint64(commenter) {
		t.Errorf("payload = %+v", p)
	}
}

func TestSuiteRegistersEverything(t *testing.T) {
	e := newEnv(t)
	// All six apps resolvable via a quick subscription resolution.
	exprs := map[string]string{
		AppLiveComments: "liveVideoComments(videoID: 1)",
		AppActiveStatus: "activeStatus",
		AppStories:      "storiesTray",
		AppMessenger:    "messenger",
		AppTyping:       "typingIndicator(threadID: 1, peer: 2)",
		AppFeedComments: "feedPostComments(postID: 1)",
	}
	for app, expr := range exprs {
		if _, err := e.was.ResolveSubscription(1, expr); err != nil {
			t.Errorf("%s: %v", app, err)
		}
	}
}

func TestVideoCommentsPollQuery(t *testing.T) {
	e := newEnv(t)
	commenter := socialgraph.UserID(19)
	for i := 0; i < 5; i++ {
		if _, err := e.was.Mutate(commenter,
			fmt.Sprintf(`postComment(videoID: 400, text: "c%d")`, i)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := e.was.Query(1, "videoComments(videoID: 400, limit: 3)")
	if err != nil {
		t.Fatal(err)
	}
	var comments []CommentPayload
	if err := json.Unmarshal(out, &comments); err != nil {
		t.Fatal(err)
	}
	if len(comments) != 3 {
		t.Errorf("limit ignored: %d comments", len(comments))
	}
	// Range query cost accounted in TAO stats.
	if e.tao.Stats().RangeQueries.Value() == 0 {
		t.Error("poll query not accounted as range query")
	}
}
