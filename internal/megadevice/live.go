package megadevice

import (
	"fmt"
	"net"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/ctrl"
	"bladerunner/internal/edge"
	"bladerunner/internal/sim"
	"bladerunner/internal/workload"

	"math/rand"
)

// ScenarioLive drives a cluster of REAL brnode processes over TCP instead
// of building an in-process cluster: trunks dial live POP listeners, and
// publishes go through the WAS process's control port. It is the
// over-the-wire counterpart of the in-process scenarios — same fleet,
// same apps, real sockets and process boundaries on every hop.
const ScenarioLive = "live"

// LiveOptions parameterizes a RunLive run against an already-running
// multi-process cluster (cmd/brnode -role all).
type LiveOptions struct {
	// Pops are the BURST listen addresses of live POP processes.
	Pops []string
	// WASAddr is the WAS process's ctrl address (publish path).
	WASAddr string
	// Region must match the cluster's -region (default us-east).
	Region string
	// Devices and Areas size the virtual fleet. The WAS process must have
	// been booted with at least 2*Areas+1 graph users (brnode's default
	// 100 users supports up to 49 areas).
	Devices int
	Areas   int
	Seed    int64
	// Duration is the wall-clock driving span (default 10s).
	Duration time.Duration
	// PubsPerMinute paces background publishes (default 600).
	PubsPerMinute int
	// ProbesPerMinute paces delivery-latency probes (default 60).
	ProbesPerMinute float64
	// ProbeWait bounds one probe's wall-clock delivery wait (default 2s).
	ProbeWait time.Duration
	// Logf receives progress lines (nil discards).
	Logf func(format string, args ...any)
}

func (o *LiveOptions) normalize() error {
	if len(o.Pops) == 0 {
		return fmt.Errorf("megadevice: live mode needs at least one POP address")
	}
	if o.WASAddr == "" {
		return fmt.Errorf("megadevice: live mode needs the WAS ctrl address")
	}
	if o.Region == "" {
		o.Region = "us-east"
	}
	if o.Devices <= 0 {
		o.Devices = 200
	}
	if o.Areas <= 0 {
		o.Areas = 20
	}
	if o.Duration <= 0 {
		o.Duration = 10 * time.Second
	}
	if o.PubsPerMinute <= 0 {
		o.PubsPerMinute = 600
	}
	if o.ProbesPerMinute <= 0 {
		o.ProbesPerMinute = 60
	}
	if o.ProbeWait <= 0 {
		o.ProbeWait = 2 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// RunLive attaches a virtual fleet to a live multi-process cluster and
// measures end-to-end delivery over real sockets: brload trunk -> POP
// proxy -> BRASS session for deltas, and brload -> WAS ctrl -> Pylon ctrl
// -> BRASS for the publish path. Everything rides the wall clock; there
// is no simulated time in this mode.
func RunLive(o LiveOptions) (*Report, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	wall := sim.RealClock{}
	start := wall.Now()
	rng := rand.New(rand.NewSource(o.Seed))

	// Publish path: the WAS process's control port.
	wconn, err := net.Dial("tcp", o.WASAddr)
	if err != nil {
		return nil, fmt.Errorf("megadevice: dial WAS ctrl %s: %w", o.WASAddr, err)
	}
	cc := ctrl.NewConn("brload->was", wconn, nil).Start()
	defer cc.Close()
	wc := ctrl.NewWASClient(cc)

	// Delta path: real TCP trunks into the live POPs.
	tnet := edge.NewTCPNetwork()
	defer tnet.Close()
	popNames := make([]string, len(o.Pops))
	for i, addr := range o.Pops {
		popNames[i] = fmt.Sprintf("pop-%d", i)
		tnet.SetAddr(popNames[i], addr)
	}

	areas := make([]Area, o.Areas)
	for a := range areas {
		areas[a] = Area{
			App:          apps.AppTyping,
			Subscription: fmt.Sprintf("typingIndicator(threadID: %d, peer: %d)", a, ownerUser(a)),
			Topic:        string(apps.TypingTopic(uint64(a), ownerUser(a))),
			User:         viewerUser(a, o.Areas),
		}
	}
	zipf := workload.NewZipf(o.Areas, 1.1)
	assign := make([]uint32, o.Devices)
	for i := range assign {
		assign[i] = uint32(zipf.Sample(rng))
	}

	fleet, err := New(Config{
		Devices:    o.Devices,
		Areas:      areas,
		StreamArea: func(dev uint32, _ int) uint32 { return assign[dev] },
		POPs:       popNames,
		Dialer:     tnet,
		Seed:       o.Seed,
		// Sched nil: RealClock + Async — external trunk events self-serve.
	})
	if err != nil {
		return nil, err
	}
	defer fleet.Close()

	rep := &Report{
		Scenario: ScenarioLive, Devices: o.Devices, Streams: fleet.Streams(),
		Areas: o.Areas, ZipfS: 1.1, Seed: o.Seed,
		SimSeconds: o.Duration.Seconds(),
	}

	// Bring the fleet online and wait for the trunks to attach.
	fleet.ConnectAll(time.Second)
	deadline := wall.Now().Add(10 * time.Second)
	for fleet.ConnectedCount() < o.Devices && wall.Now().Before(deadline) {
		sim.Sleep(wall, 20*time.Millisecond)
	}
	o.Logf("live: %d/%d devices connected over %d POP(s), %d trunk dials",
		fleet.ConnectedCount(), o.Devices, len(o.Pops), fleet.Connects.Value())
	if fleet.ConnectedCount() == 0 {
		return nil, fmt.Errorf("megadevice: no device connected — is the cluster up at %v?", o.Pops)
	}
	// Let subscribe propagation (brass -> pylon over ctrl) settle before
	// the first publish, so early probes don't all miss.
	sim.Sleep(wall, 200*time.Millisecond)

	publish := func(area int) {
		_, err := wc.MutateIn(o.Region, socialUser(ownerUser(area)),
			fmt.Sprintf(`setTyping(threadID: %d, on: "true")`, area))
		if err == nil {
			rep.Publishes++
		}
	}
	probe := func(area int) {
		fleet.ProbeArm(uint32(area), wall.Now().UnixNano())
		publish(area)
		rep.Probes++
		limit := wall.Now().Add(o.ProbeWait)
		for fleet.ProbeArmed(uint32(area)) {
			if wall.Now().After(limit) {
				if fleet.ProbeDisarm(uint32(area)) {
					rep.ProbeMisses++
				}
				return
			}
			sim.Sleep(wall, 100*time.Microsecond)
		}
	}

	// Drive wall-clock seconds: paced publishes plus latency probes.
	pubsPerSec := float64(o.PubsPerMinute) / 60
	probesPerSec := o.ProbesPerMinute / 60
	pubDebt, probeDebt := 0.0, 0.0
	secs := int(o.Duration / time.Second)
	for s := 0; s < secs; s++ {
		tick := wall.Now().Add(time.Second)
		pubDebt += pubsPerSec
		for pubDebt >= 1 {
			pubDebt--
			publish(zipf.Sample(rng))
		}
		probeDebt += probesPerSec
		for probeDebt >= 1 {
			probeDebt--
			probe(zipf.Sample(rng))
		}
		if rest := tick.Sub(wall.Now()); rest > 0 {
			sim.Sleep(wall, rest)
		}
		if s%10 == 0 {
			o.Logf("live: t=%ds connected=%d publishes=%d deltas=%d applied=%d",
				s, fleet.ConnectedCount(), rep.Publishes, fleet.Deltas.Value(), fleet.Applied.Value())
		}
	}

	// Drain in-flight deltas before freezing the numbers.
	sim.Sleep(wall, 300*time.Millisecond)

	rep.WallSecs = wall.Now().Sub(start).Seconds()
	rep.Transitions = fleet.Transitions.Value()
	rep.Connects = fleet.Connects.Value()
	rep.Drops = fleet.Drops.Value()
	rep.DialFailures = fleet.DialFailures.Value()
	rep.TrunkDeaths = fleet.TrunkDeaths.Value()
	rep.Deltas = fleet.Deltas.Value()
	rep.Applied = fleet.Applied.Value()
	rep.FlowEvents = fleet.FlowEvents.Value()
	rep.Resyncs = fleet.Resyncs.Value()
	rep.CursorResumes = fleet.CursorResumes.Value()
	rep.BytesPerDevice = fleet.BytesPerDevice()
	if rep.WallSecs > 0 {
		rep.EventsPerSec = float64(rep.Applied) / rep.WallSecs
	}
	rep.LatencyNS = fleet.ApplyLatency.Snapshot()
	rep.LatencyCDF = fleet.ApplyLatency.CDF(20)
	return rep, nil
}
