package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// CountHistogram records unitless integer observations — fan-out sizes,
// batch lengths, queue depths — and answers count/mean/percentile queries.
// It is the dimensionally honest sibling of Histogram, which records
// durations; recording a count as a time.Duration lies to every reader of
// the snapshot. Like Histogram it keeps exact count/sum/min/max and a
// uniform seeded reservoir for quantiles.
type CountHistogram struct {
	mu    sync.Mutex
	count int64
	sum   int64
	min   int64
	max   int64
	// reservoir holds a uniform sample of observations.
	reservoir []int64
	cap       int
	rng       *rand.Rand
	sorted    bool
}

// NewCountHistogram returns a CountHistogram with the default reservoir
// size.
func NewCountHistogram() *CountHistogram { return NewCountHistogramSize(DefaultReservoirSize) }

// NewCountHistogramSize returns a CountHistogram whose reservoir holds up
// to size samples. size must be positive.
func NewCountHistogramSize(size int) *CountHistogram {
	if size <= 0 {
		panic(fmt.Sprintf("metrics: non-positive reservoir size %d", size))
	}
	return &CountHistogram{
		cap: size,
		rng: rand.New(rand.NewSource(0x0b1ade)),
	}
}

// Observe records one value.
//
// overwrites reservoir slots in place.
//
//brlint:hotpath fan-out accounting runs on every publish; steady state
func (h *CountHistogram) Observe(v int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.reservoir) < h.cap {
		//brlint:allow(hot-path-alloc) reservoir warm-up only: the append runs at most cap times over the histogram's lifetime, then algorithm R overwrites in place
		h.reservoir = append(h.reservoir, v)
		h.sorted = false
		return
	}
	// Vitter's algorithm R.
	if j := h.rng.Int63n(h.count); j < int64(h.cap) {
		h.reservoir[j] = v
		h.sorted = false
	}
}

// Count returns the number of observations.
func (h *CountHistogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observations.
func (h *CountHistogram) Sum() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the exact mean, or 0 with no observations.
func (h *CountHistogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest observation (0 if empty).
func (h *CountHistogram) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation (0 if empty).
func (h *CountHistogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns the p-th percentile (p in [0,100]) estimated from the
// reservoir. It returns 0 with no observations.
func (h *CountHistogram) Percentile(p float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.percentileLocked(p)
}

func (h *CountHistogram) percentileLocked(p float64) int64 {
	n := len(h.reservoir)
	if n == 0 {
		return 0
	}
	h.sortLocked()
	if p <= 0 {
		return h.reservoir[0]
	}
	if p >= 100 {
		return h.reservoir[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return h.reservoir[lo]
	}
	frac := rank - float64(lo)
	return h.reservoir[lo] + int64(math.Round(frac*float64(h.reservoir[hi]-h.reservoir[lo])))
}

func (h *CountHistogram) sortLocked() {
	if !h.sorted {
		sort.Slice(h.reservoir, func(i, j int) bool { return h.reservoir[i] < h.reservoir[j] })
		h.sorted = true
	}
}

// Snapshot returns a copy of the aggregate state for reporting.
func (h *CountHistogram) Snapshot() CountHistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	mean := 0.0
	if h.count > 0 {
		mean = float64(h.sum) / float64(h.count)
	}
	return CountHistogramSnapshot{
		Count: h.count,
		Sum:   h.sum,
		Min:   h.min,
		Max:   h.max,
		Mean:  mean,
		P50:   h.percentileLocked(50),
		P90:   h.percentileLocked(90),
		P99:   h.percentileLocked(99),
	}
}

// CountHistogramSnapshot is an immutable summary of a CountHistogram.
type CountHistogramSnapshot struct {
	Count, Sum, Min, Max int64
	Mean                 float64
	P50, P90, P99        int64
}

// String formats the snapshot compactly for logs and reports.
func (s CountHistogramSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f p50=%d p90=%d p99=%d max=%d",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
	return b.String()
}
