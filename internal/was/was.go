// Package was implements the Web Application Server tier (paper §3, Figs
// 3–5). The WAS is the only component that touches the social graph
// directly: it executes GraphQL-style queries and mutations against TAO,
// publishes update events (metadata only) to Pylon as mutations commit, and
// performs the privacy checks required before any payload is released to a
// device — BRASSes must call back into the WAS for every update they push.
package was

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"bladerunner/internal/metrics"
	"bladerunner/internal/pylon"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
	"bladerunner/internal/trace"
)

// Errors returned by the executor.
var (
	ErrUnknownField = errors.New("was: unknown field")
	ErrDenied       = errors.New("was: privacy check denied")
)

// Ctx is handed to resolvers: it bundles the server's dependencies plus the
// identity the operation runs as.
type Ctx struct {
	Srv    *Server
	Viewer socialgraph.UserID // 0 for system operations
	Now    time.Time
	// Region is the datacenter region the operation executes in: reads via
	// Reader() are served by that region's TAO follower (with its modeled
	// replication lag) and publishes via Publish() carry it as the event
	// origin. Empty means the primary region / the leader tier.
	Region string
}

// Reader returns the TAO read surface for the context's region: the
// region-local follower when one is registered, else the leader Store.
// Writes never go through here — resolvers mutate ctx.Srv.TAO directly.
func (c *Ctx) Reader() tao.Reader { return c.Srv.reader(c.Region) }

// Publish emits an update event stamped with the context's region as its
// origin, so the region plane replicates it outward from where the
// mutation committed.
func (c *Ctx) Publish(ev pylon.Event, rank bool) {
	if ev.Origin == "" {
		ev.Origin = c.Region
	}
	c.Srv.Publish(ev, rank)
}

// Publisher is the sink Publish hands events to. A bare *pylon.Service is
// the single-region configuration; the region plane implements Publisher to
// fan events out across regional Pylon clusters with replication lag.
type Publisher interface {
	Publish(ev pylon.Event) (int, error)
}

// QueryFunc resolves a read field to a JSON-encodable value.
type QueryFunc func(ctx *Ctx, call FieldCall) (any, error)

// MutationFunc applies a write field and optionally returns a value.
type MutationFunc func(ctx *Ctx, call FieldCall) (any, error)

// SubscriptionFunc resolves a subscription expression to the concrete Pylon
// topics it maps to (step 5 of Fig 3). Most subscriptions map to one topic;
// ActiveStatus-style subscriptions map a single device subscribe to one
// topic per friend.
type SubscriptionFunc func(ctx *Ctx, call FieldCall) ([]pylon.Topic, error)

// PayloadFunc produces the device-facing payload for an update event after
// the privacy check passed. ref is the TAO object the event points to.
type PayloadFunc func(ctx *Ctx, ref tao.ObjID, ev pylon.Event) (any, error)

// Server is one WAS. It is safe for concurrent use.
type Server struct {
	TAO   *tao.Store
	Graph *socialgraph.Graph
	Pylon *pylon.Service
	Sched sim.Scheduler

	// Fanout, when set, receives published events instead of Pylon — the
	// region plane's cross-region publish path. nil keeps the direct
	// single-Pylon publish.
	Fanout Publisher

	// RankDelay models the ML comment-quality ranking latency incurred
	// before publishing rankable updates (Table 3: 1,790 ms of the LVC
	// 2,000 ms update→publish time is ranking). Nil disables the delay.
	RankDelay sim.Dist

	// Sampler stamps trace contexts onto mutations at publish time; nil
	// disables sampling. The WAS is where traces are born — every later
	// hop only propagates the ID the sampler issued here.
	Sampler *trace.Sampler
	// Tracer closes the root was.publish span plus the per-fetch
	// was.privacy / was.resolve spans. nil disables span collection.
	Tracer *trace.Tracer

	mu            sync.Mutex
	queries       map[string]QueryFunc
	mutations     map[string]MutationFunc
	subscriptions map[string]SubscriptionFunc
	payloads      map[string]PayloadFunc
	readers       map[string]tao.Reader
	rng           rngSource

	// Metrics.
	Queries          metrics.Counter
	PointQueries     metrics.Counter // cheap keyed reads (shed-then-resync)
	Mutations        metrics.Counter
	Subscriptions    metrics.Counter
	PayloadFetches   metrics.Counter
	PrivacyChecks    metrics.Counter
	PrivacyDenied    metrics.Counter
	PublishLatency   *metrics.Histogram // mutation commit → publish sent
	CPUMillis        metrics.Counter    // modeled CPU cost accounting
	PublishesEmitted metrics.Counter
}

// rngSource is a tiny deterministic PRNG used for sampling rank delays
// without importing math/rand state that tests would have to seed.
type rngSource struct{ s uint64 }

func (r *rngSource) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// Modeled CPU costs in milliseconds per operation class, used for the
// resource-usage comparisons (paper §5: poll queries cost far more than
// point fetches).
const (
	cpuQueryPoint = 1
	cpuQueryRange = 12
	cpuMutation   = 2
	cpuPayload    = 1
)

// New builds a WAS over the given substrates.
func New(store *tao.Store, graph *socialgraph.Graph, pyl *pylon.Service, sched sim.Scheduler) *Server {
	if sched == nil {
		sched = sim.RealClock{}
	}
	return &Server{
		TAO:            store,
		Graph:          graph,
		Pylon:          pyl,
		Sched:          sched,
		queries:        make(map[string]QueryFunc),
		mutations:      make(map[string]MutationFunc),
		subscriptions:  make(map[string]SubscriptionFunc),
		payloads:       make(map[string]PayloadFunc),
		readers:        make(map[string]tao.Reader),
		rng:            rngSource{s: 0x9E3779B97F4A7C15},
		PublishLatency: metrics.NewHistogram(),
	}
}

// RegisterQuery installs a read resolver.
func (s *Server) RegisterQuery(name string, fn QueryFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries[name] = fn
}

// RegisterMutation installs a write resolver.
func (s *Server) RegisterMutation(name string, fn MutationFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mutations[name] = fn
}

// RegisterSubscription installs a subscription-to-topic resolver.
func (s *Server) RegisterSubscription(name string, fn SubscriptionFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subscriptions[name] = fn
}

// RegisterPayload installs a payload resolver for an application name.
func (s *Server) RegisterPayload(app string, fn PayloadFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.payloads[app] = fn
}

func (s *Server) ctx(viewer socialgraph.UserID) *Ctx {
	return s.ctxIn(viewer, "")
}

func (s *Server) ctxIn(viewer socialgraph.UserID, region string) *Ctx {
	return &Ctx{Srv: s, Viewer: viewer, Now: s.Sched.Now(), Region: region}
}

// RegisterReader installs a region-local TAO read replica. Resolvers
// running in that region (QueryIn, ResolvePayloadIn) read through it via
// Ctx.Reader; regions without a registered reader fall back to the leader.
func (s *Server) RegisterReader(region string, r tao.Reader) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readers[region] = r
}

// reader returns region's read replica, or the leader when none is
// registered (including the single-region configuration).
func (s *Server) reader(region string) tao.Reader {
	s.mu.Lock()
	r := s.readers[region]
	s.mu.Unlock()
	if r != nil {
		return r
	}
	return s.TAO
}

// Query executes a read expression as viewer and returns the result
// marshalled to JSON.
func (s *Server) Query(viewer socialgraph.UserID, expr string) ([]byte, error) {
	return s.QueryIn("", viewer, expr)
}

// QueryIn is Query executing in a datacenter region: resolver reads go to
// that region's TAO follower.
func (s *Server) QueryIn(region string, viewer socialgraph.UserID, expr string) ([]byte, error) {
	call, err := ParseField(expr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	fn := s.queries[call.Name]
	s.mu.Unlock()
	if fn == nil {
		return nil, fmt.Errorf("%w: query %q", ErrUnknownField, call.Name)
	}
	s.Queries.Inc()
	s.CPUMillis.Add(cpuQueryRange)
	v, err := fn(s.ctxIn(viewer, region), call)
	if err != nil {
		return nil, err
	}
	return json.Marshal(v)
}

// PointQuery executes a read expression as viewer at point-read cost: the
// cheap keyed lookup a device issues to resynchronize one stream after an
// upstream shed (shed-then-resync), as opposed to the expensive range
// polls Query models (paper §5's poll-vs-push CPU comparison). The query
// registry is shared with Query; only the accounting differs.
func (s *Server) PointQuery(viewer socialgraph.UserID, expr string) ([]byte, error) {
	return s.PointQueryIn("", viewer, expr)
}

// PointQueryIn is PointQuery executing in a datacenter region.
func (s *Server) PointQueryIn(region string, viewer socialgraph.UserID, expr string) ([]byte, error) {
	call, err := ParseField(expr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	fn := s.queries[call.Name]
	s.mu.Unlock()
	if fn == nil {
		return nil, fmt.Errorf("%w: query %q", ErrUnknownField, call.Name)
	}
	s.PointQueries.Inc()
	s.CPUMillis.Add(cpuQueryPoint)
	v, err := fn(s.ctxIn(viewer, region), call)
	if err != nil {
		return nil, err
	}
	return json.Marshal(v)
}

// Mutate executes a write expression as viewer.
func (s *Server) Mutate(viewer socialgraph.UserID, expr string) ([]byte, error) {
	return s.MutateIn("", viewer, expr)
}

// MutateIn is Mutate executing in a datacenter region: writes still commit
// on the TAO leader, but events the resolver publishes via Ctx.Publish
// carry the region as their origin, which is where the region plane's
// cross-region replication starts.
func (s *Server) MutateIn(region string, viewer socialgraph.UserID, expr string) ([]byte, error) {
	call, err := ParseField(expr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	fn := s.mutations[call.Name]
	s.mu.Unlock()
	if fn == nil {
		return nil, fmt.Errorf("%w: mutation %q", ErrUnknownField, call.Name)
	}
	s.Mutations.Inc()
	s.CPUMillis.Add(cpuMutation)
	v, err := fn(s.ctxIn(viewer, region), call)
	if err != nil {
		return nil, err
	}
	return json.Marshal(v)
}

// ResolveSubscription maps a device subscription expression to concrete
// Pylon topics (BRASS calls this while instantiating a stream).
func (s *Server) ResolveSubscription(viewer socialgraph.UserID, expr string) ([]pylon.Topic, error) {
	call, err := ParseField(expr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	fn := s.subscriptions[call.Name]
	s.mu.Unlock()
	if fn == nil {
		return nil, fmt.Errorf("%w: subscription %q", ErrUnknownField, call.Name)
	}
	s.Subscriptions.Inc()
	return fn(s.ctx(viewer), call)
}

// PrivacyCheck reports whether viewer may see content authored by author.
// In the paper's environment these checks are complex and only ever run
// inside the WAS; every update pushed to a device passes through here.
func (s *Server) PrivacyCheck(viewer, author socialgraph.UserID) bool {
	s.PrivacyChecks.Inc()
	if viewer == 0 || author == 0 {
		return true
	}
	if s.Graph.Blocks(viewer, author) || s.Graph.Blocks(author, viewer) {
		s.PrivacyDenied.Inc()
		return false
	}
	return true
}

// FetchPayload is the BRASS→WAS callback (step 8 of Fig 5): it privacy-
// checks the event's author against the viewer, then resolves the payload
// via the application's registered PayloadFunc — a TAO point query with
// good caching characteristics.
//
// The two halves are exposed separately as CheckEventVisibility and
// ResolvePayload so a BRASS host fanning one hot event out to many viewers
// can run the mandatory per-viewer privacy check per stream while sharing a
// single TAO read for the payload bytes.
func (s *Server) FetchPayload(app string, viewer socialgraph.UserID, ev pylon.Event) ([]byte, error) {
	return s.FetchPayloadIn("", app, viewer, ev)
}

// FetchPayloadIn is FetchPayload with the TAO read served from region's
// follower — the fetch a regional BRASS host issues stays region-local.
func (s *Server) FetchPayloadIn(region, app string, viewer socialgraph.UserID, ev pylon.Event) ([]byte, error) {
	if err := s.CheckEventVisibility(viewer, ev); err != nil {
		return nil, err
	}
	return s.ResolvePayloadIn(region, app, ev)
}

// CheckEventVisibility runs the privacy check gating the release of ev's
// payload to viewer: the event's author (when tagged in the metadata) is
// checked against the viewer. It returns ErrDenied when the viewer must not
// see the update. This must run once per viewer — payload bytes may be
// shared, visibility decisions may not.
func (s *Server) CheckEventVisibility(viewer socialgraph.UserID, ev pylon.Event) error {
	sp := s.Tracer.Start(ev.Trace, trace.HopPrivacy, trace.HopFetch)
	defer sp.End()
	sp.AnnotateInt("viewer", int64(viewer))
	if authorStr, ok := ev.Meta["author"]; ok {
		var author socialgraph.UserID
		if _, err := fmt.Sscanf(authorStr, "%d", &author); err == nil {
			if !s.PrivacyCheck(viewer, author) {
				sp.Annotate("denied", "blocked")
				return fmt.Errorf("%w: viewer %d vs author %d", ErrDenied, viewer, author)
			}
		}
	}
	return nil
}

// ResolvePayload resolves an event's payload bytes via the application's
// registered PayloadFunc — the TAO read half of FetchPayload, independent
// of any viewer (the resolver runs in the system context). Callers must
// have already passed CheckEventVisibility for each viewer the bytes are
// released to.
func (s *Server) ResolvePayload(app string, ev pylon.Event) ([]byte, error) {
	return s.ResolvePayloadIn("", app, ev)
}

// ResolvePayloadIn is ResolvePayload with the resolver's TAO reads served
// from region's follower.
func (s *Server) ResolvePayloadIn(region, app string, ev pylon.Event) ([]byte, error) {
	sp := s.Tracer.Start(ev.Trace, trace.HopResolve, trace.HopFetch)
	defer sp.End()
	sp.Annotate("app", app)
	s.PayloadFetches.Inc()
	s.CPUMillis.Add(cpuPayload)
	s.mu.Lock()
	fn := s.payloads[app]
	s.mu.Unlock()
	if fn == nil {
		return nil, fmt.Errorf("%w: payload for app %q", ErrUnknownField, app)
	}
	v, err := fn(s.ctxIn(0, region), tao.ObjID(ev.Ref), ev)
	if err != nil {
		return nil, err
	}
	return json.Marshal(v)
}

// Publish emits an update event to Pylon on behalf of a mutation. When
// rank is true the event is held for a sampled ranking delay first (LVC
// pre-ranks comments before publishing; Table 3). The publish latency is
// recorded either way.
func (s *Server) Publish(ev pylon.Event, rank bool) {
	start := s.Sched.Now()
	if ev.Trace == 0 {
		ev.Trace = s.Sampler.Trace()
	}
	// Root span: mutation commit (Publish call) until the event is handed
	// to Pylon, including any ranking hold. Ends inside emit, so the
	// ranked path's scheduler hop stays inside the span.
	sp := s.Tracer.Start(ev.Trace, trace.HopPublish, "")
	sp.Annotate("topic", string(ev.Topic))
	if rank && s.RankDelay != nil {
		sp.Annotate("ranked", "true")
	}
	emit := func() {
		ev.Published = s.Sched.Now()
		if s.Fanout != nil {
			_, _ = s.Fanout.Publish(ev)
		} else if s.Pylon != nil {
			_, _ = s.Pylon.Publish(ev)
		}
		s.PublishesEmitted.Inc()
		s.PublishLatency.Observe(s.Sched.Now().Sub(start))
		sp.End()
	}
	if rank && s.RankDelay != nil {
		s.mu.Lock()
		// Sample with a throwaway rand source seeded from the xorshift
		// stream so publishes stay deterministic under the sim engine.
		d := s.RankDelay.Sample(newRand(s.rng.next()))
		s.mu.Unlock()
		s.Sched.After(d, emit)
		return
	}
	emit()
}
