package megadevice

import (
	"testing"
)

// TestReplayScenarioServesBacklogFromLog runs the replay scenario at toy
// scale and asserts its durable-log contract: late joiners subscribing
// from the "earliest" cursor receive the full backlog out of the BRASS
// log — zero WAS point queries — and the log counters account for it.
func TestReplayScenarioServesBacklogFromLog(t *testing.T) {
	if testing.Short() {
		t.Skip("replay scenario drives a live cluster")
	}
	rep, err := Run(Options{
		Scenario: ScenarioReplay,
		Devices:  200,
		Areas:    8,
		Seed:     1,
		Short:    true,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.ReplayBacklog == 0 {
		t.Fatal("no backlog published")
	}
	// Every area must have been replayed at least once from the log (3
	// backlog messages per area in Short mode, one catch-up batch per
	// joiner trunk-stream).
	if rep.LogCatchUpDeltas < 3*8 {
		t.Errorf("LogCatchUpDeltas = %d, want >= %d", rep.LogCatchUpDeltas, 3*8)
	}
	if rep.ReplayCatchUpApplied == 0 {
		t.Error("ReplayCatchUpApplied = 0: no backlog reached a late joiner")
	}
	if rep.ReplayPointQueries != 0 {
		t.Errorf("ReplayPointQueries = %d, want 0 (catch-up must come from the log)", rep.ReplayPointQueries)
	}
	// At least one cursor resume per area was served from the log.
	if rep.LogResumes < 8 {
		t.Errorf("LogResumes = %d, want >= 8", rep.LogResumes)
	}
	// At least the guaranteed-delivered floor (probe-confirmed first
	// message plus the rest of each area's backlog) was logged.
	if rep.LogAppends < 3*8 {
		t.Errorf("LogAppends = %d, want >= %d", rep.LogAppends, 3*8)
	}
	if rep.LogExpired != 0 {
		t.Errorf("LogExpired = %d, want 0", rep.LogExpired)
	}
}
