package trace

import (
	"sort"
	"sync"

	"bladerunner/internal/sim"
)

// Collector is a bounded per-process ring of closed spans. Memory is fixed
// at construction (capacity * sizeof(SpanData) plus annotation strings);
// once full, the oldest span is overwritten and counted as evicted. The
// single short critical section per span keeps it lock-light: producers
// (event loops, relay pumps, device readers) never block on readers.
type Collector struct {
	mu      sync.Mutex
	ring    []SpanData
	next    int  // write cursor
	full    bool // ring has wrapped at least once
	evicted int64
}

// DefaultCapacity bounds a collector when the Plane config leaves it zero:
// 4096 spans ≈ a few hundred complete traces per process.
const DefaultCapacity = 4096

// NewCollector returns a collector holding up to capacity spans
// (DefaultCapacity when capacity <= 0).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Collector{ring: make([]SpanData, 0, capacity)}
}

func (c *Collector) add(d SpanData) {
	c.mu.Lock()
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, d)
	} else {
		c.ring[c.next] = d
		c.full = true
		c.evicted++
	}
	c.next++
	if c.next == cap(c.ring) {
		c.next = 0
	}
	c.mu.Unlock()
}

// Snapshot returns the collected spans oldest-first.
func (c *Collector) Snapshot() []SpanData {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SpanData, 0, len(c.ring))
	if c.full {
		out = append(out, c.ring[c.next:]...)
	}
	out = append(out, c.ring[:c.next]...)
	return out
}

// Evicted returns how many spans were overwritten since construction.
func (c *Collector) Evicted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicted
}

// Config configures a Plane.
type Config struct {
	// Capacity is the per-process collector ring size (DefaultCapacity
	// when zero).
	Capacity int
	// Rate is the sampling probability applied at the WAS (0 disables
	// sampling entirely; 1 samples every mutation).
	Rate float64
	// Seed drives the sampler; equal seeds reproduce the same sampled IDs.
	Seed int64
	// Clock timestamps spans. All tracers of one plane share it, so spans
	// from different processes are directly comparable. Defaults to
	// sim.RealClock{}.
	Clock sim.Clock
}

// Plane owns the sampler and the per-process collectors of one deployment
// (one Cluster, one benchmark). Components receive tracers via
// Plane.Tracer(proc); the merger reads every collector via Gather.
type Plane struct {
	// Sampler stamps trace IDs onto mutations at the WAS. Non-nil only
	// when the configured rate is positive.
	Sampler *Sampler

	cfg Config

	mu      sync.Mutex
	order   []string // registration order, for deterministic Gather
	tracers map[string]*Tracer
}

// NewPlane builds a tracing plane from cfg.
func NewPlane(cfg Config) *Plane {
	if cfg.Clock == nil {
		cfg.Clock = sim.RealClock{}
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	return &Plane{
		Sampler: NewSampler(cfg.Seed, cfg.Rate),
		cfg:     cfg,
		tracers: make(map[string]*Tracer),
	}
}

// Tracer returns (creating on first use) the tracer for the named process.
// A nil Plane returns a nil Tracer, which is inert.
func (p *Plane) Tracer(proc string) *Tracer {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if t, ok := p.tracers[proc]; ok {
		return t
	}
	t := &Tracer{proc: proc, clock: p.cfg.Clock, col: NewCollector(p.cfg.Capacity)}
	p.tracers[proc] = t
	p.order = append(p.order, proc)
	return t
}

// Procs returns the registered process names sorted lexically.
func (p *Plane) Procs() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := append([]string(nil), p.order...)
	sort.Strings(out)
	return out
}

// Gather snapshots every collector and returns all spans in a
// deterministic order (process name, then collection order within the
// process). This is the merger's input.
func (p *Plane) Gather() []SpanData {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	procs := append([]string(nil), p.order...)
	tracers := make([]*Tracer, len(procs))
	for i, name := range procs {
		tracers[i] = p.tracers[name]
	}
	p.mu.Unlock()
	sort.Sort(byProc{procs, tracers})
	var out []SpanData
	for _, t := range tracers {
		out = append(out, t.col.Snapshot()...)
	}
	return out
}

// Evicted sums ring evictions across all collectors — nonzero means the
// capacity was too small for the workload and traces may be incomplete.
func (p *Plane) Evicted() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, t := range p.tracers {
		n += t.col.Evicted()
	}
	return n
}

// byProc sorts parallel (procs, tracers) slices by process name.
type byProc struct {
	procs   []string
	tracers []*Tracer
}

func (b byProc) Len() int           { return len(b.procs) }
func (b byProc) Less(i, j int) bool { return b.procs[i] < b.procs[j] }
func (b byProc) Swap(i, j int) {
	b.procs[i], b.procs[j] = b.procs[j], b.procs[i]
	b.tracers[i], b.tracers[j] = b.tracers[j], b.tracers[i]
}
