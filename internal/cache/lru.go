// Package cache provides the small concurrency-safe caching primitives the
// hot-path fast lanes are built from: a seeded, TTL-bounded LRU (the BRASS
// payload cache and the Pylon subscriber-set cache) and a stdlib-only
// singleflight group (coalescing concurrent fetches of the same key).
//
// Both primitives take an injected sim.Clock so expiry behaves identically
// under the wall clock and under the deterministic virtual-time engine, and
// both are seeded where they make randomized decisions (TTL jitter), so a
// fleet of caches decorrelates its refreshes deterministically.
package cache

import (
	"fmt"
	"sync"
	"time"

	"bladerunner/internal/sim"
)

// entry is one LRU slot, linked into the intrusive recency list.
type entry[K comparable, V any] struct {
	key        K
	val        V
	expires    time.Time // zero when the cache has no TTL
	prev, next *entry[K, V]
}

// LRU is a fixed-capacity, TTL-bounded, least-recently-used cache. Safe for
// concurrent use. Expired entries are treated as absent on Get and reclaimed
// lazily; eviction removes the least recently used live entry.
type LRU[K comparable, V any] struct {
	mu      sync.Mutex
	cap     int
	ttl     time.Duration
	jitter  float64
	clock   sim.Clock
	rng     uint64 // xorshift state for seeded TTL jitter
	entries map[K]*entry[K, V]
	// head is most recently used, tail least. Sentinel-free list.
	head, tail *entry[K, V]

	hits, misses, evictions, expirations int64
}

// NewLRU builds a cache holding at most capacity entries. Entries expire ttl
// after insertion (ttl <= 0 disables expiry). jitter, in [0,1), shortens each
// entry's TTL by a seeded random fraction of up to jitter*ttl so co-resident
// entries do not all expire (and refetch) in the same instant. clock may be
// nil for the wall clock.
func NewLRU[K comparable, V any](capacity int, ttl time.Duration, jitter float64, clock sim.Clock, seed int64) *LRU[K, V] {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: non-positive LRU capacity %d", capacity))
	}
	if jitter < 0 || jitter >= 1 {
		panic(fmt.Sprintf("cache: LRU jitter %v outside [0,1)", jitter))
	}
	if clock == nil {
		clock = sim.RealClock{}
	}
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &LRU[K, V]{
		cap:     capacity,
		ttl:     ttl,
		jitter:  jitter,
		clock:   clock,
		rng:     s,
		entries: make(map[K]*entry[K, V], capacity),
	}
}

// Get returns the live value for key, marking it most recently used.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	if !e.expires.IsZero() && !c.clock.Now().Before(e.expires) {
		c.removeLocked(e)
		c.expirations++
		c.misses++
		var zero V
		return zero, false
	}
	c.moveToFrontLocked(e)
	c.hits++
	return e.val, true
}

// Put inserts or replaces the value for key, marking it most recently used
// and restarting its TTL. The least recently used entry is evicted if the
// cache is full.
func (c *LRU[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.val = val
		e.expires = c.deadlineLocked()
		c.moveToFrontLocked(e)
		return
	}
	if len(c.entries) >= c.cap {
		c.removeLocked(c.tail)
		c.evictions++
	}
	e := &entry[K, V]{key: key, val: val, expires: c.deadlineLocked()}
	c.entries[key] = e
	c.pushFrontLocked(e)
}

// Delete removes key if present.
func (c *LRU[K, V]) Delete(key K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.removeLocked(e)
	}
}

// Len returns the number of resident entries (including not-yet-reclaimed
// expired ones).
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns cumulative hit/miss/eviction/expiration counts.
func (c *LRU[K, V]) Stats() (hits, misses, evictions, expirations int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.expirations
}

// deadlineLocked computes a fresh entry deadline with seeded jitter.
func (c *LRU[K, V]) deadlineLocked() time.Time {
	if c.ttl <= 0 {
		return time.Time{}
	}
	ttl := c.ttl
	if c.jitter > 0 {
		// xorshift64: deterministic for a given seed and call sequence.
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		frac := float64(c.rng>>11) / float64(1<<53) // [0,1)
		ttl -= time.Duration(frac * c.jitter * float64(ttl))
	}
	return c.clock.Now().Add(ttl)
}

func (c *LRU[K, V]) pushFrontLocked(e *entry[K, V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *LRU[K, V]) moveToFrontLocked(e *entry[K, V]) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}

func (c *LRU[K, V]) removeLocked(e *entry[K, V]) {
	c.unlinkLocked(e)
	delete(c.entries, e.key)
}

func (c *LRU[K, V]) unlinkLocked(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
