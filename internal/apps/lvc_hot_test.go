package apps

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"bladerunner/internal/burst"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/was"
)

func TestHotTrackerAutoDetection(t *testing.T) {
	h := newHotTracker(10, time.Second)
	now := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		if h.observe(5, now) {
			t.Fatalf("hot after only %d comments", i+1)
		}
	}
	if !h.observe(5, now) {
		t.Error("not hot after exceeding threshold")
	}
	if !h.isHot(5) {
		t.Error("isHot disagrees")
	}
	if h.isHot(6) {
		t.Error("unrelated video hot")
	}
}

func TestHotTrackerWindowResets(t *testing.T) {
	h := newHotTracker(10, time.Second)
	now := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 8; i++ {
		h.observe(5, now)
	}
	// Window expires; the count restarts, so the video never goes hot.
	later := now.Add(2 * time.Second)
	for i := 0; i < 8; i++ {
		if h.observe(5, later) {
			t.Fatal("went hot across expired windows")
		}
	}
}

func TestHotTrackerForce(t *testing.T) {
	h := newHotTracker(1000, time.Second)
	h.force(9, true)
	if !h.isHot(9) {
		t.Error("forced video not hot")
	}
	h.force(9, false)
	if h.isHot(9) {
		t.Error("unforce did not clear hotness")
	}
}

// findComment searches a user's plausible comment texts for one whose score
// lands in [lo, hi).
func findComment(g *socialgraph.Graph, uid socialgraph.UserID, lo, hi float64) (string, bool) {
	u := g.User(uid)
	for i := 0; i < 3000; i++ {
		text := fmt.Sprintf("take %d on this video", i)
		s := was.QualityScore(u, text)
		if s >= lo && s < hi {
			return text, true
		}
	}
	return "", false
}

func TestHotVideoRoutesByScore(t *testing.T) {
	e := newEnv(t)
	const vid = 500
	e.suite.LVC.SetHotVideo(vid, true)

	// The events must be observable: subscribe a host-level listener by
	// registering interest through a viewer whose friends include the
	// poster (per-user topic) — but here we check WAS routing directly
	// via Pylon subscriber-less publish counters per topic. Subscribe
	// fake markers to both topic kinds instead.
	poster := socialgraph.UserID(30)
	lowText, okLow := findComment(e.graph, poster, was.SpamThreshold, DefaultHotDiscardCutoff)
	midText, okMid := findComment(e.graph, poster, DefaultHotDiscardCutoff, DefaultHighRankCutoff)
	hiText, okHi := findComment(e.graph, poster, DefaultHighRankCutoff, 1.01)
	if !okLow || !okMid || !okHi {
		t.Skip("could not synthesize all three score classes")
	}

	before := e.pylon.Publishes.Value()
	// Low score: discarded (no publish).
	if _, err := e.was.Mutate(poster, fmt.Sprintf(`postComment(videoID: %d, text: "%s")`, vid, lowText)); err != nil {
		t.Fatal(err)
	}
	if e.pylon.Publishes.Value() != before {
		t.Error("low-score comment published during hot mode")
	}

	// Mid score: published to the per-poster topic.
	subsBefore := len(e.pylon.Subscribers(LVCUserTopic(vid, poster)))
	_ = subsBefore
	if _, err := e.was.Mutate(poster, fmt.Sprintf(`postComment(videoID: %d, text: "%s")`, vid, midText)); err != nil {
		t.Fatal(err)
	}
	if e.pylon.Publishes.Value() != before+1 {
		t.Error("mid-score comment not published")
	}

	// High score: published to the main topic.
	if _, err := e.was.Mutate(poster, fmt.Sprintf(`postComment(videoID: %d, text: "%s")`, vid, hiText)); err != nil {
		t.Fatal(err)
	}
	if e.pylon.Publishes.Value() != before+2 {
		t.Error("high-score comment not published")
	}
	// All three comments durable regardless of routing.
	out, err := e.was.Query(1, fmt.Sprintf("videoComments(videoID: %d, limit: 10)", vid))
	if err != nil {
		t.Fatal(err)
	}
	var comments []CommentPayload
	_ = json.Unmarshal(out, &comments)
	if len(comments) != 3 {
		t.Errorf("stored comments = %d, want 3", len(comments))
	}
}

func TestHotVideoSubscriptionIncludesFriendTopics(t *testing.T) {
	e := newEnv(t)
	const vid = 501
	e.suite.LVC.SetHotVideo(vid, true)
	viewer, _ := friendPair(t, e.graph)
	topics, err := e.was.ResolveSubscription(viewer, fmt.Sprintf("liveVideoComments(videoID: %d)", vid))
	if err != nil {
		t.Fatal(err)
	}
	wantTopics := 1 + len(e.graph.Friends(viewer))
	if len(topics) != wantTopics {
		t.Fatalf("topics = %d, want %d (main + one per friend)", len(topics), wantTopics)
	}
	if topics[0] != LVCTopic(vid) {
		t.Errorf("first topic = %s", topics[0])
	}
	// Cold video: single topic.
	cold, err := e.was.ResolveSubscription(viewer, "liveVideoComments(videoID: 502)")
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) != 1 {
		t.Errorf("cold video topics = %d", len(cold))
	}
}

// TestHotVideoEndToEnd verifies the full high-volume path: an ordinary
// comment from a friend reaches the viewer via the per-poster topic, while
// the same comment from a stranger does not reach them at all.
func TestHotVideoEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full cluster end-to-end; skipped in -short")
	}
	e := newEnv(t)
	const vid = 503
	e.suite.LVC.SetHotVideo(vid, true)
	e.suite.LVC.MinScore = 0

	viewer, friend := friendPair(t, e.graph)
	// A non-friend poster.
	var stranger socialgraph.UserID
	for id := socialgraph.UserID(1); id <= socialgraph.UserID(e.graph.NumUsers()); id++ {
		if id != viewer && !e.graph.AreFriends(viewer, id) {
			stranger = id
			break
		}
	}
	if stranger == 0 {
		t.Skip("no stranger found")
	}

	cli := e.dial(t)
	st := e.subscribe(t, cli, AppLiveComments,
		fmt.Sprintf("liveVideoComments(videoID: %d)", vid), viewer, nil)
	waitFor(t, "friend topic subscribed", func() bool {
		return len(e.pylon.Subscribers(LVCUserTopic(vid, friend))) == 1
	})

	// Mid-score comments from the friend and from the stranger.
	friendText, ok1 := findComment(e.graph, friend, DefaultHotDiscardCutoff, DefaultHighRankCutoff)
	strangerText, ok2 := findComment(e.graph, stranger, DefaultHotDiscardCutoff, DefaultHighRankCutoff)
	if !ok1 || !ok2 {
		t.Skip("could not synthesize mid-score comments")
	}
	if _, err := e.was.Mutate(stranger, fmt.Sprintf(`postComment(videoID: %d, text: "%s")`, vid, strangerText)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.was.Mutate(friend, fmt.Sprintf(`postComment(videoID: %d, text: "%s")`, vid, friendText)); err != nil {
		t.Fatal(err)
	}

	// Only the friend's comment arrives.
	d := recvPayload(t, st)
	var p CommentPayload
	if err := json.Unmarshal(d.Payload, &p); err != nil {
		t.Fatal(err)
	}
	if p.Author != uint64(friend) || p.Text != friendText {
		t.Errorf("got %+v, want friend's comment", p)
	}
	select {
	case batch := <-st.Events:
		for _, dd := range batch {
			if dd.Type == burst.DeltaPayload {
				var q CommentPayload
				_ = json.Unmarshal(dd.Payload, &q)
				if q.Author == uint64(stranger) {
					t.Error("stranger's ordinary comment leaked to the viewer")
				}
			}
		}
	case <-time.After(150 * time.Millisecond):
	}
}
