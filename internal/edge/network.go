// Package edge implements the stream-routing path between devices and
// BRASS hosts: POPs (points of presence) at the network edge and reverse
// proxies at the datacenter edge (paper §3.5, §4). Both are instances of
// the same Proxy type — a stream-level BURST relay that:
//
//   - routes each request-stream independently to an upstream chosen by a
//     pluggable Router (topic-based, load-based, or sticky);
//   - keeps a copy of each stream's current subscription request, updated
//     as rewrite deltas pass through, so it can repair streams after an
//     upstream failure (axiom 2 of §4);
//   - propagates flow_status deltas downstream so every participant learns
//     about failures and recoveries (axiom 1);
//   - garbage-collects stream state when the stream terminates or the
//     downstream connection dies.
package edge

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Dialer opens a byte transport to a named upstream target.
type Dialer interface {
	Dial(target string) (io.ReadWriteCloser, error)
}

// ErrNoRoute is returned when a router cannot place a stream.
var ErrNoRoute = errors.New("edge: no route for stream")

// ErrUnknownTarget is returned when dialing an unregistered target.
var ErrUnknownTarget = errors.New("edge: unknown target")

// PipeNetwork is an in-process "network": targets register an accept
// callback, and Dial hands them one end of a net.Pipe. It stands in for
// the datacenter fabric in tests, examples, and the live cluster.
type PipeNetwork struct {
	mu      sync.Mutex
	targets map[string]func(io.ReadWriteCloser)
	down    map[string]bool
	dials   map[string]int
}

// NewPipeNetwork returns an empty network.
func NewPipeNetwork() *PipeNetwork {
	return &PipeNetwork{
		targets: make(map[string]func(io.ReadWriteCloser)),
		down:    make(map[string]bool),
		dials:   make(map[string]int),
	}
}

// Register makes target dialable; accept receives the server end of each
// new connection.
func (n *PipeNetwork) Register(target string, accept func(io.ReadWriteCloser)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.targets[target] = accept
}

// Unregister removes a target (host decommissioned).
func (n *PipeNetwork) Unregister(target string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.targets, target)
}

// SetDown marks a target unreachable without unregistering it (failure
// injection: the host exists but connections fail).
func (n *PipeNetwork) SetDown(target string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[target] = down
}

// Dial implements Dialer.
func (n *PipeNetwork) Dial(target string) (io.ReadWriteCloser, error) {
	n.mu.Lock()
	accept, ok := n.targets[target]
	isDown := n.down[target]
	if ok && !isDown {
		n.dials[target]++
	}
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTarget, target)
	}
	if isDown {
		return nil, fmt.Errorf("edge: target %q unreachable", target)
	}
	c, s := net.Pipe()
	accept(s)
	return c, nil
}

// Targets returns the registered target names.
func (n *PipeNetwork) Targets() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.targets))
	for t := range n.targets {
		out = append(out, t)
	}
	return out
}

// DialCount reports how many successful dials target has received.
func (n *PipeNetwork) DialCount(target string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dials[target]
}

var _ Dialer = (*PipeNetwork)(nil)
