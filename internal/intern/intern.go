// Package intern provides a string interner: a symbol table mapping
// strings to stable, dense uint32 handles. It exists for the hot paths that
// would otherwise hash, compare, or copy the same topic / host / user
// strings millions of times — a handle is 4 bytes, comparable with one
// integer instruction, and usable as an index into a dense side table
// (struct-of-array layouts, COW dispatch slices).
//
// The read side is lock-free: resolving a handle back to its string loads
// one atomic pointer and indexes a slice, so readers scale across cores
// with no shared cache-line writes. Interning (the write side) takes a
// mutex and publishes a grown copy-on-write slice; it is expected to be
// rare relative to reads (register once, look up forever).
package intern

import (
	"sync"
	"sync/atomic"
)

// None is the zero handle. Table never issues it: valid handles start at 1,
// so a zero value in a record unambiguously means "no string".
const None uint32 = 0

// Table is a string interner. The zero value is NOT ready to use; call New.
// All methods are safe for concurrent use.
type Table struct {
	// strs is the copy-on-write handle→string slice; index 0 is the
	// reserved None slot. Readers load it once and index without locking.
	strs atomic.Pointer[[]string]

	mu    sync.Mutex
	byStr map[string]uint32
}

// New returns an empty table.
func New() *Table {
	t := &Table{byStr: make(map[string]uint32)}
	s := make([]string, 1) // slot 0 = None
	t.strs.Store(&s)
	return t
}

// Intern returns the stable handle for s, assigning the next dense handle
// on first sight. Handles are never reused or invalidated.
func (t *Table) Intern(s string) uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h, ok := t.byStr[s]; ok {
		return h
	}
	old := *t.strs.Load()
	grown := make([]string, len(old)+1)
	copy(grown, old)
	h := uint32(len(old))
	grown[h] = s
	t.byStr[s] = h
	t.strs.Store(&grown)
	return h
}

// Lookup returns the handle for s if it has been interned. It takes the
// writer mutex (map reads cannot race map writes); hot paths should carry
// handles, not strings.
func (t *Table) Lookup(s string) (uint32, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.byStr[s]
	return h, ok
}

// StringOf resolves a handle to its string. It is lock-free and safe to
// call from any goroutine. None and out-of-range handles resolve to "".
//
// check; it runs inside delivery loops and must stay allocation-free.
//
//brlint:hotpath handle→string resolution is one atomic load plus a bounds
func (t *Table) StringOf(h uint32) string {
	s := *t.strs.Load()
	if int(h) >= len(s) {
		return ""
	}
	return s[h]
}

// Len returns the number of interned strings (excluding the None slot).
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byStr)
}
