package device

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bladerunner/internal/burst"
	"bladerunner/internal/overload"
	"bladerunner/internal/was"
)

// Regression for the slow-device control-delta bug: the apply path used to
// best-effort-drop WHOLE batches when a stream's buffer was full — control
// deltas included — so a device that stalled while degraded could lose the
// FlowRecovered notice and show "degraded" forever. Now only payload
// deltas shed (burst client evicts + salvages control; the device Flow
// channel coalesces stale codes). The app must always observe the latest
// flow state.
func TestSlowDeviceNeverLosesFlowRecovered(t *testing.T) {
	env := newDevEnv(t)
	if err := env.dev.Connect(); err != nil {
		t.Fatal(err)
	}
	st, err := env.dev.Subscribe("app", "s", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pop stream", func() bool { return env.popA.stream(0) != nil })
	srv := env.popA.stream(0)

	// The device never reads Updates or Flow while the server floods it:
	// stale FlowDegraded notices overfill the Flow buffer (cap 16) and
	// payload deltas overfill both the burst event buffer (256 batches)
	// and the Updates channel (256).
	const degraded, payloads = 40, 800
	for i := 0; i < degraded; i++ {
		if err := srv.SendBatch(burst.FlowStatusDelta(burst.FlowDegraded, "upstream pressure")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < payloads; i++ {
		if err := srv.SendBatch(burst.PayloadDelta(uint64(i+1), []byte("x"))); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.SendBatch(burst.FlowStatusDelta(burst.FlowRecovered, "pressure gone")); err != nil {
		t.Fatal(err)
	}
	// Every flow delta must reach the pump (none may die in the transport):
	waitFor(t, "all flow events pumped", func() bool {
		return env.dev.FlowEvents.Value() == degraded+1
	})

	// The slow app finally drains Flow: whatever was coalesced away, the
	// LAST code it observes must be FlowRecovered. (waitFor covers the
	// pump finishing its final pushFlow after the counter tick.)
	var last burst.FlowCode // 0 = none seen (codes start at FlowDegraded=1)
	waitFor(t, "FlowRecovered to surface", func() bool {
		for {
			select {
			case code := <-st.Flow:
				last = code
				continue
			default:
			}
			break
		}
		return last == burst.FlowRecovered
	})
	if env.dev.FlowCoalesced.Value() == 0 {
		t.Error("expected stale flow codes to be coalesced under pressure")
	}
	if env.dev.RenderDrops.Value() == 0 {
		t.Error("expected payload render drops while the app stalled")
	}
}

// A shed-marker FlowDegraded means deltas were dropped upstream and the
// gap cannot be trusted: the device must re-fetch authoritative state via
// a cheap WAS point query (shed-then-resync) instead of waiting for pushes
// that will never come.
func TestShedMarkerTriggersResync(t *testing.T) {
	env := newDevEnv(t)
	w := env.was
	w.RegisterQuery("snapshot", func(ctx *was.Ctx, call was.FieldCall) (any, error) {
		return "state-after-" + call.Args["since"], nil
	})
	if err := env.dev.Connect(); err != nil {
		t.Fatal(err)
	}
	st, err := env.dev.Subscribe("app", "s", nil)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []string
	st.SetResync(
		func(lastSeq uint64) string { return fmt.Sprintf("snapshot(since: %d)", lastSeq) },
		func(b []byte) {
			mu.Lock()
			got = append(got, string(b))
			mu.Unlock()
		},
	)
	waitFor(t, "pop stream", func() bool { return env.popA.stream(0) != nil })
	srv := env.popA.stream(0)

	if err := srv.SendBatch(burst.PayloadDelta(9, []byte("p"))); err != nil {
		t.Fatal(err)
	}
	// Non-shed degraded notice (e.g. plain connectivity blip): NO resync.
	if err := srv.SendBatch(burst.FlowStatusDelta(burst.FlowDegraded, "blip")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "flow event", func() bool { return env.dev.FlowEvents.Value() == 1 })
	if env.dev.Resyncs.Value() != 0 {
		t.Fatalf("resync on non-shed degraded notice")
	}

	// Shed-marked degraded notice: resync fires with the last applied seq.
	if err := srv.SendBatch(burst.FlowStatusDelta(
		burst.FlowDegraded, overload.ShedMarkerPrefix+"brass-loop")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "resync", func() bool { return env.dev.Resyncs.Value() == 1 })
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != `"state-after-9"` {
		t.Fatalf("resync results = %q", got)
	}
	if w.PointQueries.Value() != 1 {
		t.Errorf("PointQueries = %d, want 1", w.PointQueries.Value())
	}
	if w.Queries.Value() != 0 {
		t.Errorf("resync used a range query (Queries = %d)", w.Queries.Value())
	}
}

// Concurrent shed notices coalesce: triggers arriving while a resync is
// in flight collapse into exactly ONE trailing re-run (their deltas were
// shed after the in-flight snapshot, so skipping them could leave a
// permanent gap). A fresh notice after everything settles starts anew.
func TestResyncCoalescesInFlight(t *testing.T) {
	env := newDevEnv(t)
	w := env.was
	block := make(chan struct{})
	w.RegisterQuery("snap", func(ctx *was.Ctx, call was.FieldCall) (any, error) {
		<-block
		return "ok", nil
	})
	if err := env.dev.Connect(); err != nil {
		t.Fatal(err)
	}
	st, err := env.dev.Subscribe("app", "s", nil)
	if err != nil {
		t.Fatal(err)
	}
	st.SetResync(func(uint64) string { return "snap" }, nil)
	waitFor(t, "pop stream", func() bool { return env.popA.stream(0) != nil })
	srv := env.popA.stream(0)

	for i := 0; i < 5; i++ {
		if err := srv.SendBatch(burst.FlowStatusDelta(
			burst.FlowDegraded, overload.ShedMarkerPrefix+"storm")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "flow events", func() bool { return env.dev.FlowEvents.Value() == 5 })
	close(block) // release the in-flight query; the trailing re-run follows
	waitFor(t, "in-flight + one trailing resync", func() bool {
		return env.dev.Resyncs.Value() == 2
	})
	time.Sleep(10 * time.Millisecond)
	if n := env.dev.Resyncs.Value(); n != 2 {
		t.Fatalf("Resyncs = %d, want 2 (4 in-flight triggers must collapse to one re-run)", n)
	}

	if err := srv.SendBatch(burst.FlowStatusDelta(
		burst.FlowDegraded, overload.ShedMarkerPrefix+"again")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fresh resync after settle", func() bool { return env.dev.Resyncs.Value() == 3 })
}
