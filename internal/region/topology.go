// Package region models Bladerunner's multi-datacenter deployment: N
// regions, each with its own Pylon cluster, BRASS fleet, and POPs, joined
// by inter-region links with realistic (asymmetric) latency. The paper's
// write path commits in one region and relies on cross-region replication
// — of both TAO invalidations and Pylon events — to give every edge a live
// view; the region plane makes that replication explicit so experiments
// can cut a region, partition a link, or brown it out and measure what the
// devices see.
//
// The package is deliberately below internal/faults in the import graph:
// faults drives region-scoped failures through the Topology and Gate here,
// never the other way around.
package region

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bladerunner/internal/sim"
)

// Link names a directed inter-region edge.
type Link struct {
	Src, Dst string
}

// Config describes the region topology for a Cluster.
type Config struct {
	// Regions lists region names in priority order; Regions[0] is the
	// primary (the region TAO leaders and the authoritative WAS write
	// path live in). Must have at least one entry.
	Regions []string
	// Latency gives the one-way per-write network latency for a directed
	// inter-region link. Missing entries fall back to DefaultLatency;
	// intra-region latency is always zero. Asymmetric routes (A→B fast,
	// B→A slow) are expressed by distinct entries.
	Latency map[Link]sim.Dist
	// DefaultLatency is used for directed links without a Latency entry.
	// Nil means no added latency.
	DefaultLatency sim.Dist
	// ReplLag gives the event/invalidation replication lag for a directed
	// link (typically larger than Latency: replication is batched and
	// rate-limited; cross-region links are "a limited resource", §3.4).
	// Missing entries fall back to DefaultReplLag.
	ReplLag map[Link]sim.Dist
	// DefaultReplLag is used for directed links without a ReplLag entry.
	// Nil means immediate replication.
	DefaultReplLag sim.Dist
	// Seed drives every latency/lag sample in the topology.
	Seed int64
}

// Validate checks the config.
func (c *Config) Validate() error {
	if len(c.Regions) == 0 {
		return fmt.Errorf("region: config needs at least one region")
	}
	seen := make(map[string]bool, len(c.Regions))
	for _, r := range c.Regions {
		if r == "" {
			return fmt.Errorf("region: empty region name")
		}
		if seen[r] {
			return fmt.Errorf("region: duplicate region %q", r)
		}
		seen[r] = true
	}
	return nil
}

// Topology is the live, mutable view of the region graph: which regions
// and links are up, and what latency/lag they currently exhibit. All fault
// injection flows through here so that every consumer — the dial gate, the
// replication plane, the routers — sees one consistent picture.
type Topology struct {
	cfg Config

	mu         sync.Mutex
	rng        *rand.Rand
	linkDown   map[Link]bool
	regionDown map[string]bool
	brownout   map[Link]sim.Dist // extra latency inflation per link
	changed    chan struct{}     // closed+replaced on every state change
}

// NewTopology builds a Topology from cfg.
func NewTopology(cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Topology{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed ^ 0x7e610)),
		linkDown:   make(map[Link]bool),
		regionDown: make(map[string]bool),
		brownout:   make(map[Link]sim.Dist),
		changed:    make(chan struct{}),
	}, nil
}

// Regions returns the configured region names in priority order.
func (t *Topology) Regions() []string {
	return append([]string(nil), t.cfg.Regions...)
}

// Primary returns the primary region (Regions[0]).
func (t *Topology) Primary() string { return t.cfg.Regions[0] }

// Home deterministically assigns an entity (user/device id) a home region.
func (t *Topology) Home(id uint64) string {
	return t.cfg.Regions[id%uint64(len(t.cfg.Regions))]
}

// LinkUp reports whether the directed link src→dst is currently usable:
// both endpoints up and the link itself not partitioned. Intra-region
// "links" are up exactly when the region is.
func (t *Topology) LinkUp(src, dst string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.regionDown[src] || t.regionDown[dst] {
		return false
	}
	if src == dst {
		return true
	}
	return !t.linkDown[Link{src, dst}]
}

// RegionUp reports whether a region is up.
func (t *Topology) RegionUp(r string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.regionDown[r]
}

// SampleLatency draws a one-way network latency for src→dst, including any
// active brownout inflation. Intra-region latency is zero.
func (t *Topology) SampleLatency(src, dst string) time.Duration {
	if src == dst {
		return 0
	}
	l := Link{src, dst}
	t.mu.Lock()
	defer t.mu.Unlock()
	var d time.Duration
	if dist := t.latencyDistLocked(l); dist != nil {
		d = dist.Sample(t.rng)
	}
	if extra := t.brownout[l]; extra != nil {
		d += extra.Sample(t.rng)
	}
	return d
}

// SampleReplLag draws a replication lag for src→dst. Brownouts inflate
// replication the same way they inflate per-write latency.
func (t *Topology) SampleReplLag(src, dst string) time.Duration {
	if src == dst {
		return 0
	}
	l := Link{src, dst}
	t.mu.Lock()
	defer t.mu.Unlock()
	var d time.Duration
	if dist := t.replDistLocked(l); dist != nil {
		d = dist.Sample(t.rng)
	}
	if extra := t.brownout[l]; extra != nil {
		d += extra.Sample(t.rng)
	}
	return d
}

// ReplLagDist returns the configured replication-lag distribution for the
// directed link src→dst (nil means immediate). Used to parameterize other
// replication consumers — e.g. TAO follower invalidation — from the same
// topology the event plane uses.
func (t *Topology) ReplLagDist(src, dst string) sim.Dist {
	if src == dst {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.replDistLocked(Link{src, dst})
}

func (t *Topology) latencyDistLocked(l Link) sim.Dist {
	if dist, ok := t.cfg.Latency[l]; ok {
		return dist
	}
	return t.cfg.DefaultLatency
}

func (t *Topology) replDistLocked(l Link) sim.Dist {
	if dist, ok := t.cfg.ReplLag[l]; ok {
		return dist
	}
	return t.cfg.DefaultReplLag
}

// SetLinkDown partitions (or heals) the directed link src→dst.
func (t *Topology) SetLinkDown(src, dst string, down bool) {
	t.mu.Lock()
	t.linkDown[Link{src, dst}] = down
	t.bumpLocked()
	t.mu.Unlock()
}

// SetRegionDown takes a whole region down (or back up): every link touching
// it is implicitly unusable while down.
func (t *Topology) SetRegionDown(r string, down bool) {
	t.mu.Lock()
	t.regionDown[r] = down
	t.bumpLocked()
	t.mu.Unlock()
}

// SetBrownout inflates (extra != nil) or clears (extra == nil) the latency
// of the directed link src→dst by an additional sampled duration per
// operation — the "slow but not dead" failure mode.
func (t *Topology) SetBrownout(src, dst string, extra sim.Dist) {
	t.mu.Lock()
	l := Link{src, dst}
	if extra == nil {
		delete(t.brownout, l)
	} else {
		t.brownout[l] = extra
	}
	t.bumpLocked()
	t.mu.Unlock()
}

// Changed returns a channel closed at the next topology state change —
// a broadcast for workers parked waiting for a partition to heal. Callers
// must re-check the condition and re-acquire a fresh channel after a wake.
func (t *Topology) Changed() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.changed
}

// bumpLocked wakes everyone parked on Changed. Callers hold t.mu.
func (t *Topology) bumpLocked() {
	close(t.changed)
	t.changed = make(chan struct{})
}
