// Package kvstore implements the distributed in-memory key-value store
// that Pylon uses to track topic subscriptions (paper §3.1): values are
// sets of members, replicated across nodes chosen by rendezvous hashing on
// the key, with one replica in the local region and the others in distinct
// remote regions.
//
// Writes are CP: they require a majority of the key's replicas to be
// reachable, otherwise they fail. Reads are AP-friendly: callers may read
// any single replica (fast, possibly stale) or gather all replica responses
// and merge. Set membership uses last-writer-wins versioning with
// tombstones so replicas can be patched to eventual consistency — the
// "quorum patch" operation Pylon performs when it notices replicas
// disagreeing.
package kvstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrNoQuorum is returned when a write cannot reach a majority of the
// key's replicas.
var ErrNoQuorum = errors.New("kvstore: no quorum of replicas reachable")

// ErrNodeDown is returned when reading from an unreachable node.
var ErrNodeDown = errors.New("kvstore: node down")

// Member is one element of a replicated set (for Pylon: a BRASS host ID).
type Member string

// record tracks one member with LWW metadata. Tombstones (Present=false)
// are retained so removals replicate correctly.
type record struct {
	Version uint64
	Present bool
}

// SetView is a point-in-time, version-annotated view of a replicated set,
// suitable for merging across replicas.
type SetView map[Member]VersionedMember

// VersionedMember pairs membership with its LWW version.
type VersionedMember struct {
	Version uint64
	Present bool
}

// Members returns the present members of the view in sorted order.
func (v SetView) Members() []Member {
	out := make([]Member, 0, len(v))
	for m, r := range v {
		if r.Present {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Merge combines several replica views into the LWW-maximal view. Version
// ties (possible only if two writers raced the version counter) resolve
// deterministically in favor of the tombstone, keeping Merge commutative.
func Merge(views ...SetView) SetView {
	out := make(SetView)
	for _, v := range views {
		for m, r := range v {
			cur, ok := out[m]
			if !ok || newer(r.Version, r.Present, cur.Version, cur.Present) {
				out[m] = r
			}
		}
	}
	return out
}

// newer reports whether (v1,p1) supersedes (v2,p2) under LWW with
// tombstone-wins tie-breaking.
func newer(v1 uint64, p1 bool, v2 uint64, p2 bool) bool {
	if v1 != v2 {
		return v1 > v2
	}
	return !p1 && p2
}

// OpHook is an injectable per-operation fault hook: called with the op name
// ("apply" or "view") and the key before the node executes the operation.
// Returning an error fails the op exactly as if the node were down; a hook
// may also block (sleeping via its own captured scheduler) to model replica
// latency. Hooks run outside the node's lock.
type OpHook func(op, key string) error

// Node is one KV replica server.
type Node struct {
	ID     string
	Region string

	mu   sync.RWMutex
	up   bool
	hook OpHook
	data map[string]map[Member]record
}

// NewNode returns an empty, up node.
func NewNode(id, region string) *Node {
	return &Node{ID: id, Region: region, up: true, data: make(map[string]map[Member]record)}
}

// Up reports whether the node is reachable.
func (n *Node) Up() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.up
}

// SetUp marks the node reachable or unreachable (failure injection).
func (n *Node) SetUp(up bool) {
	n.mu.Lock()
	n.up = up
	n.mu.Unlock()
}

// SetOpHook installs (or, with nil, removes) the node's fault hook.
func (n *Node) SetOpHook(h OpHook) {
	n.mu.Lock()
	n.hook = h
	n.mu.Unlock()
}

// runHook invokes the fault hook, if any, outside the node's lock.
func (n *Node) runHook(op, key string) error {
	n.mu.RLock()
	h := n.hook
	n.mu.RUnlock()
	if h == nil {
		return nil
	}
	return h(op, key)
}

// apply records a membership change if it is newer than the stored record.
func (n *Node) apply(key string, m Member, rec record) error {
	if err := n.runHook("apply", key); err != nil {
		return fmt.Errorf("node %s: %w", n.ID, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.up {
		return fmt.Errorf("node %s: %w", n.ID, ErrNodeDown)
	}
	set, ok := n.data[key]
	if !ok {
		set = make(map[Member]record)
		n.data[key] = set
	}
	if cur, ok := set[m]; !ok || newer(rec.Version, rec.Present, cur.Version, cur.Present) {
		set[m] = rec
	}
	return nil
}

// View returns the node's current view of key.
func (n *Node) View(key string) (SetView, error) {
	if err := n.runHook("view", key); err != nil {
		return nil, fmt.Errorf("node %s: %w", n.ID, err)
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	if !n.up {
		return nil, fmt.Errorf("node %s: %w", n.ID, ErrNodeDown)
	}
	set := n.data[key]
	out := make(SetView, len(set))
	for m, r := range set {
		out[m] = VersionedMember{Version: r.Version, Present: r.Present}
	}
	return out, nil
}

// Keys returns the number of keys stored (diagnostics).
func (n *Node) Keys() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.data)
}

// Cluster is a set of nodes with rendezvous-hashed replica placement.
type Cluster struct {
	nodes    []*Node
	replicas int
	version  atomic.Uint64 // global LWW version source
}

// NewCluster builds a cluster over nodes with the given replication factor.
// replicas must be >= 1 and <= len(nodes).
func NewCluster(nodes []*Node, replicas int) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, errors.New("kvstore: cluster needs at least one node")
	}
	if replicas < 1 || replicas > len(nodes) {
		return nil, fmt.Errorf("kvstore: replicas %d out of range [1,%d]", replicas, len(nodes))
	}
	ids := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if ids[n.ID] {
			return nil, fmt.Errorf("kvstore: duplicate node id %q", n.ID)
		}
		ids[n.ID] = true
	}
	return &Cluster{nodes: nodes, replicas: replicas}, nil
}

// MustNewCluster is NewCluster that panics on error.
func MustNewCluster(nodes []*Node, replicas int) *Cluster {
	c, err := NewCluster(nodes, replicas)
	if err != nil {
		panic(err)
	}
	return c
}

// ReplicasFor returns the key's replica nodes chosen by rendezvous hashing,
// preferring region diversity: after the top-scoring node, subsequent picks
// come from regions not yet represented when possible (paper §3.1: one
// local replica, others in distinct remote regions). The order is
// deterministic for a given key; index 0 is the "primary" (typically the
// fastest responder in the local region).
func (c *Cluster) ReplicasFor(key string) []*Node {
	type scored struct {
		n *Node
		s uint64
	}
	all := make([]scored, len(c.nodes))
	for i, n := range c.nodes {
		all[i] = scored{n, rendezvousScore(key, n.ID)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].n.ID < all[j].n.ID
	})
	out := make([]*Node, 0, c.replicas)
	used := make(map[string]bool)
	// First pass: best node per unused region.
	for _, sc := range all {
		if len(out) == c.replicas {
			return out
		}
		if !used[sc.n.Region] {
			out = append(out, sc.n)
			used[sc.n.Region] = true
		}
	}
	// Second pass: fill remaining slots regardless of region.
	for _, sc := range all {
		if len(out) == c.replicas {
			break
		}
		dup := false
		for _, o := range out {
			if o == sc.n {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, sc.n)
		}
	}
	return out
}

// rendezvousScore is FNV-1a over key+node.
func rendezvousScore(key, node string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	h ^= 0xff
	h *= prime
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= prime
	}
	return h
}

// NextVersion allocates a new LWW version.
func (c *Cluster) NextVersion() uint64 { return c.version.Add(1) }

// SetAdd adds member to the set at key on all reachable replicas. It
// requires a majority of replicas to accept the write (CP), returning
// ErrNoQuorum otherwise. It returns the number of replicas written.
func (c *Cluster) SetAdd(key string, m Member) (int, error) {
	return c.write(key, m, true)
}

// SetRemove removes member from the set at key (tombstone write, CP).
func (c *Cluster) SetRemove(key string, m Member) (int, error) {
	return c.write(key, m, false)
}

func (c *Cluster) write(key string, m Member, present bool) (int, error) {
	replicas := c.ReplicasFor(key)
	rec := record{Version: c.NextVersion(), Present: present}
	acked := 0
	for _, n := range replicas {
		if err := n.apply(key, m, rec); err == nil {
			acked++
		}
	}
	if acked*2 <= len(replicas) {
		return acked, fmt.Errorf("key %q: %d/%d acks: %w", key, acked, len(replicas), ErrNoQuorum)
	}
	return acked, nil
}

// ReadOne returns the first reachable replica's view of key, preferring
// the primary. The view may be stale; callers that need convergence use
// ReadAll + Merge.
func (c *Cluster) ReadOne(key string) (SetView, *Node, error) {
	for _, n := range c.ReplicasFor(key) {
		v, err := n.View(key)
		if err == nil {
			return v, n, nil
		}
	}
	return nil, nil, fmt.Errorf("key %q: all replicas down: %w", key, ErrNodeDown)
}

// ReplicaResponse is one replica's answer in a ReadAll.
type ReplicaResponse struct {
	Node *Node
	View SetView
	Err  error
}

// ReadAll queries every replica of key and returns their individual
// responses in replica order. Pylon uses the first response to start
// fan-out and the rest for patch-up.
func (c *Cluster) ReadAll(key string) []ReplicaResponse {
	replicas := c.ReplicasFor(key)
	out := make([]ReplicaResponse, len(replicas))
	for i, n := range replicas {
		v, err := n.View(key)
		out[i] = ReplicaResponse{Node: n, View: v, Err: err}
	}
	return out
}

// Patch writes the merged view back to any replica whose view diverges,
// bringing replicas to eventual consistency. It returns the number of
// replicas patched.
func (c *Cluster) Patch(key string, merged SetView) int {
	patched := 0
	for _, n := range c.ReplicasFor(key) {
		v, err := n.View(key)
		if err != nil {
			continue
		}
		if viewsEqual(v, merged) {
			continue
		}
		for m, r := range merged {
			if cur, ok := v[m]; !ok || newer(r.Version, r.Present, cur.Version, cur.Present) {
				_ = n.apply(key, m, record(r))
			}
		}
		patched++
	}
	return patched
}

// QuorumAvailable reports whether a majority of key's replicas are up —
// the paper's "quorum breakage" failure condition (Fig 10 discussion).
func (c *Cluster) QuorumAvailable(key string) bool {
	replicas := c.ReplicasFor(key)
	up := 0
	for _, n := range replicas {
		if n.Up() {
			up++
		}
	}
	return up*2 > len(replicas)
}

func viewsEqual(a, b SetView) bool {
	if len(a) != len(b) {
		return false
	}
	for m, r := range a {
		if b[m] != r {
			return false
		}
	}
	return true
}
