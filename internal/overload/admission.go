package overload

import (
	"sync"

	"bladerunner/internal/metrics"
	"bladerunner/internal/sim"
)

// Admission is the concurrent form of TokenBucket used on shared hot
// paths (Pylon publish, BRASS host delivery). Allow takes a short mutex
// and performs no allocations, so the zero-alloc publish path stays
// zero-alloc with admission enabled.
type Admission struct {
	clock sim.Clock

	mu sync.Mutex
	b  TokenBucket

	// Admitted and Shed count admission decisions. They are plain fields
	// (not pointers) so an Admission is self-contained; wire them into a
	// metrics.Registry with Registry.SetCounter if needed.
	Admitted metrics.Counter
	Shed     metrics.Counter
}

// NewAdmission builds an admission controller refilling rate tokens/sec up
// to burst. rate <= 0 returns nil: a nil *Admission admits everything, so
// call sites guard with a single nil check and pay nothing when disabled.
// seed jitters the initial token level deterministically (half to full
// bucket) so a fleet of controllers brought up together does not open and
// exhaust its bursts in lockstep.
func NewAdmission(rate, burst float64, clock sim.Clock, seed int64) *Admission {
	if rate <= 0 {
		return nil
	}
	if clock == nil {
		clock = sim.RealClock{}
	}
	a := &Admission{clock: clock}
	a.b.Rate = rate
	a.b.Burst = burst
	cap := a.b.burstCap()
	// xorshift over the seed picks the initial fill in [cap/2, cap].
	x := uint64(seed)*0x9E3779B97F4A7C15 + 1
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	frac := 0.5 + 0.5*float64(x%1024)/1024
	a.b.tokens = cap * frac
	a.b.last = clock.Now()
	return a
}

// Allow consumes one token, reporting whether the caller may proceed. A
// nil receiver (admission disabled) always allows and counts nothing.
func (a *Admission) Allow() bool {
	if a == nil {
		return true
	}
	now := a.clock.Now()
	a.mu.Lock()
	ok := a.b.Allow(now)
	a.mu.Unlock()
	if ok {
		a.Admitted.Inc()
	} else {
		a.Shed.Inc()
	}
	return ok
}

// HeaderState snapshots the bucket state for persistence (see
// TokenBucket.HeaderState). Nil receivers return "".
func (a *Admission) HeaderState() string {
	if a == nil {
		return ""
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.b.HeaderState()
}

// RestoreHeaderState loads persisted state, clamped to the controller's
// clock (see TokenBucket.RestoreHeaderState). Nil receivers ignore it.
func (a *Admission) RestoreHeaderState(s string) {
	if a == nil {
		return
	}
	now := a.clock.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.b.RestoreHeaderState(s, now)
}

// Tokens reports the current token level (diagnostics/tests).
func (a *Admission) Tokens() float64 {
	if a == nil {
		return 0
	}
	now := a.clock.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.b.Tokens(now)
}
