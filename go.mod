module bladerunner

go 1.22
