package apps

import (
	"fmt"
	"strconv"

	"bladerunner/internal/brass"
	"bladerunner/internal/burst"
	"bladerunner/internal/pylon"
	"bladerunner/internal/tao"
	"bladerunner/internal/was"
)

// TypingIndicator shows the dancing ellipses when a counterparty types
// (paper §3.4). Start/stop reports publish to /TI/threadID/uid; devices
// subscribe to /TI/threadID/counterpartyID. Events are pushed as they
// arrive — no buffering — but each delivery still passes through the WAS
// for privacy checking and device-specific transformation (Fig 9's
// description of the generalized TypingIndicator).
type TypingIndicator struct {
	w Registrar
}

// TypingTopic returns the topic for one user's typing state in a thread.
func TypingTopic(threadID uint64, uid uint64) pylon.Topic {
	return pylon.Topic(fmt.Sprintf("/TI/%d/%d", threadID, uid))
}

// TypingPayload is the device-facing typing-state change.
type TypingPayload struct {
	Thread uint64 `json:"thread"`
	User   uint64 `json:"user"`
	Typing bool   `json:"typing"`
}

// NewTypingIndicator registers the WAS half and returns the application.
func NewTypingIndicator(w Registrar) *TypingIndicator {
	a := &TypingIndicator{w: w}

	w.RegisterMutation("setTyping", func(ctx *was.Ctx, call was.FieldCall) (any, error) {
		thread, err := call.Uint64Arg("threadID")
		if err != nil {
			return nil, err
		}
		on, err := call.StringArg("on")
		if err != nil {
			return nil, err
		}
		ctx.Publish(pylon.Event{
			Topic: TypingTopic(thread, uint64(ctx.Viewer)),
			Meta: map[string]string{
				"uid":    strconv.FormatUint(uint64(ctx.Viewer), 10),
				"thread": strconv.FormatUint(thread, 10),
				"on":     on,
				"author": strconv.FormatUint(uint64(ctx.Viewer), 10),
			},
		}, false)
		return true, nil
	})

	w.RegisterSubscription("typingIndicator", func(ctx *was.Ctx, call was.FieldCall) ([]pylon.Topic, error) {
		thread, err := call.Uint64Arg("threadID")
		if err != nil {
			return nil, err
		}
		peer, err := call.Uint64Arg("peer")
		if err != nil {
			return nil, err
		}
		return []pylon.Topic{TypingTopic(thread, peer)}, nil
	})

	w.RegisterPayload(AppTyping, func(ctx *was.Ctx, ref tao.ObjID, ev pylon.Event) (any, error) {
		uid, _ := strconv.ParseUint(ev.Meta["uid"], 10, 64)
		thread, _ := strconv.ParseUint(ev.Meta["thread"], 10, 64)
		return TypingPayload{Thread: thread, User: uid, Typing: ev.Meta["on"] == "true"}, nil
	})
	return a
}

// Name implements brass.Application.
func (a *TypingIndicator) Name() string { return AppTyping }

type tiInstance struct {
	app *TypingIndicator
	rt  *brass.Runtime
}

// NewInstance implements brass.Application.
func (a *TypingIndicator) NewInstance(rt *brass.Runtime) brass.AppInstance {
	return &tiInstance{app: a, rt: rt}
}

func (in *tiInstance) OnStreamOpen(st *brass.Stream) error {
	topics, err := in.rt.ResolveSubscription(st.Viewer, st.Header(burst.HdrSubscription))
	if err != nil {
		return err
	}
	for _, t := range topics {
		if err := st.AddTopic(t); err != nil {
			return err
		}
	}
	return nil
}

func (in *tiInstance) OnStreamClose(st *brass.Stream, reason string) {}

func (in *tiInstance) OnEvent(ev pylon.Event) {
	for _, st := range in.rt.Instance().StreamsForTopic(ev.Topic) {
		payload, err := st.FetchPayload(ev)
		if err != nil {
			st.Filtered() // privacy denial
			continue
		}
		_ = st.PushPayload(ev.ID, payload)
	}
}

func (in *tiInstance) OnAck(st *brass.Stream, seq uint64) {}

var _ brass.Application = (*TypingIndicator)(nil)
