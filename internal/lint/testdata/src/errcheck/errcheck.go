// Package errcheck is a brlint fixture for the unchecked-unsubscribe rule:
// statement-level calls into the exported pylon surface that silently drop
// an error result must be flagged; checked calls, explicit `_ =` discards,
// and void-returning calls pass.
package errcheck

import "bladerunner/internal/pylon"

func Discards(p *pylon.Service, t pylon.Topic) {
	p.Subscribe(t, "host-1")         // want `unchecked-unsubscribe: result of .*Subscribe is discarded`
	p.Unsubscribe(t, "host-1")       // want `unchecked-unsubscribe: result of .*Unsubscribe is discarded`
	p.Publish(pylon.Event{Topic: t}) // want `unchecked-unsubscribe: result of .*Publish is discarded`
}

// Checked: handling or explicitly discarding the error passes.
func Checked(p *pylon.Service, t pylon.Topic) error {
	if err := p.Subscribe(t, "host-1"); err != nil {
		return err
	}
	_ = p.Unsubscribe(t, "host-1")
	return nil
}

// VoidIsFine: calls that return no error are not the rule's business.
func VoidIsFine(p *pylon.Service) {
	p.RemoveHost("host-1")
}

// Allowed demonstrates the escape hatch for a best-effort teardown path.
func Allowed(p *pylon.Service, t pylon.Topic) {
	//brlint:allow(unchecked-unsubscribe) fixture: best-effort cleanup on an already-dead host
	p.Unsubscribe(t, "host-1")
}
