// Chaos run for the durable per-topic log: the overload storm from
// chaos_overload_test.go rerun with the edge log enabled for Messenger.
// The invariants flip — shed gaps must now close by cursor resume against
// the BRASS log, and the backend point-query path, though still installed,
// must stay completely idle:
//
//   - Gap-free resume with ZERO WAS point queries: every shed payload is
//     recovered from the host's retained log segments, never by
//     re-reading the mailbox from the backend.
//   - The device repairs via cancel+resubscribe from its clamped cursor
//     (CursorResumes > 0, Resyncs == 0).
//   - The cursor survives connection chaos: a seeded POP cut mid-storm
//     forces a reconnect, and the resubscribe's HdrCursor replays the
//     retained window instead of fabricating state.
//   - Nothing leaks: goroutine count returns to baseline.
package faults_test

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/burst"
	"bladerunner/internal/core"
	"bladerunner/internal/device"
	"bladerunner/internal/faults"
	"bladerunner/internal/socialgraph"
)

// TestChaosDurlogCursorResume storms one mailbox stream over its delivery
// budget with the durable log on, cuts the device's POP mid-storm, and
// asserts the view converges gap-free purely through log-backed cursor
// resumes — the WAS sees zero point queries.
func TestChaosDurlogCursorResume(t *testing.T) {
	seed := chaosSeed(t)
	goroutinesBefore := runtime.NumGoroutine()

	cfg := core.DefaultConfig()
	cfg.Graph.Users = 100
	cfg.Graph.BlockProb = 0
	// Same aggressive overload posture as the point-query chaos run, so
	// the two tests shed comparably — only the repair path differs.
	cfg.Overload = core.OverloadConfig{
		LoopQueueDepth:     16,
		StreamDeliverRate:  25,
		StreamDeliverBurst: 4,
	}
	cfg.Durlog = &core.DurlogConfig{} // defaults: Messenger on
	c := core.MustNewCluster(cfg, nil)
	fn := faults.NewFaultNetwork(c.Net, nil, seed)
	pops := c.POPTargets()

	const (
		authorUID = socialgraph.UserID(90)
		viewerUID = socialgraph.UserID(10)
	)
	author := c.NewDevice(authorUID)
	viewer := c.NewDeviceVia(fn, device.Config{
		User:        viewerUID,
		Backoff:     faults.BackoffPolicy{Base: 10 * time.Millisecond, Max: 160 * time.Millisecond},
		BackoffSeed: seed + 1,
	})
	if err := viewer.Connect(); err != nil {
		t.Fatal(err)
	}
	st, err := viewer.Subscribe(apps.AppMessenger, "messenger", nil)
	if err != nil {
		t.Fatal(err)
	}
	w := watch(st)

	// The legacy shed-then-resync hooks stay installed, exactly as a real
	// client keeps its WAS fallback for ErrCursorExpired — but with the log
	// retaining the whole storm they must never fire.
	st.SetResync(
		func(lastSeq uint64) string {
			return fmt.Sprintf("mailboxSince(seq: %d)", lastSeq)
		},
		func(out []byte) {
			var msgs []apps.MessagePayload
			if err := json.Unmarshal(out, &msgs); err != nil {
				return
			}
			w.mu.Lock()
			for _, m := range msgs {
				w.seqs[m.Seq] = true
				if m.Seq > w.maxSeq {
					w.maxSeq = m.Seq
				}
			}
			w.mu.Unlock()
		},
	)

	var thread uint64
	out, err := author.Mutate(fmt.Sprintf(`createThread(members: "%d,%d")`, authorUID, viewerUID))
	if err != nil {
		t.Fatal(err)
	}
	_ = json.Unmarshal(out, &thread)
	topic := apps.MailboxTopic(viewerUID)
	waitFor(t, "mailbox subscription", func() bool {
		return len(c.Pylon.Subscribers(topic)) >= 1
	})

	send := func(text string) uint64 {
		t.Helper()
		msg := fmt.Sprintf(`sendMessage(threadID: %d, text: "%s")`, thread, text)
		if _, err := author.Mutate(msg); err != nil {
			t.Fatal(err)
		}
		return 1
	}

	var sent uint64
	sent += send("baseline")
	waitFor(t, "baseline delivery", func() bool { return w.hasAll(sent) })

	// The storm: far over the 25/s stream budget, so most of it sheds and
	// lands only in the host's log.
	const storm = 150
	for i := 0; i < storm; i++ {
		sent += send(fmt.Sprintf("storm-%d", i))
	}

	// Seeded connection chaos on top of the shedding: cut every POP, let
	// the device notice, heal, and require the resubscribe to carry the
	// stored cursor through reconnect.
	for _, pop := range pops {
		fn.Cut(pop)
	}
	time.Sleep(50 * time.Millisecond)
	for _, pop := range pops {
		fn.Heal(pop)
	}
	waitFor(t, "device reconnected", func() bool { return viewer.Connected() })
	waitFor(t, "stream resubscribed", func() bool { return viewer.Streams() == 1 })

	// Shedding must actually have happened for this run to mean anything.
	var sheds int64
	for _, h := range c.Hosts {
		sheds += h.StreamSheds.Value() + h.LoopOverflows.Value()
	}
	if sheds == 0 {
		t.Fatal("storm produced zero sheds; overload plane never engaged")
	}

	// Post-storm trickle until the view is gap-free: each message is under
	// the admission rate, so it lands, closes any open shed episode, and
	// the cursor resumes replay everything the storm dropped from the log.
	settled := func() bool {
		recovered, last := w.snapshot()
		return w.hasAll(sent) && recovered > 0 && last == burst.FlowRecovered
	}
	deadline := time.Now().Add(20 * time.Second)
	for !settled() {
		if time.Now().After(deadline) {
			w.mu.Lock()
			missing := []uint64{}
			for s := uint64(1); s <= sent && len(missing) < 10; s++ {
				if !w.seqs[s] {
					missing = append(missing, s)
				}
			}
			w.mu.Unlock()
			recovered, last := w.snapshot()
			t.Fatalf("never settled (seed %d): %d sent, first missing seqs %v, cursorResumes=%d, resyncs=%d, recovered=%d, lastFlow=%v",
				seed, sent, missing, viewer.CursorResumes.Value(), viewer.Resyncs.Value(), recovered, last)
		}
		sent += send("trickle")
		time.Sleep(50 * time.Millisecond)
	}

	// The repair path must have been the log, not the backend.
	if viewer.CursorResumes.Value() == 0 {
		t.Error("gap closed without any cursor resume — the log path never engaged")
	}
	if got := c.WAS.PointQueries.Value(); got != 0 {
		t.Errorf("WAS saw %d point queries; with the log on, shed repair must not touch the backend", got)
	}
	if got := viewer.Resyncs.Value(); got != 0 {
		t.Errorf("device ran %d legacy point resyncs; cursor streams must route markers to resume instead", got)
	}
	var appends, resumes, catchUp, expired int64
	for _, h := range c.Hosts {
		resumes += h.LogResumes.Value()
		catchUp += h.LogCatchUpDeltas.Value()
		expired += h.LogExpired.Value()
		if l := h.DurLog(); l != nil {
			appends += l.Appends.Value()
		}
	}
	if appends == 0 {
		t.Error("hosts journaled zero appends; the publish path never reached the log")
	}
	if resumes == 0 {
		t.Error("hosts served zero log resumes")
	}
	if catchUp == 0 {
		t.Error("hosts served zero catch-up deltas from the log")
	}
	if expired != 0 {
		t.Errorf("%d cursor resumes hit retention expiry; the storm must fit the retained window", expired)
	}

	// Teardown and leak check.
	viewer.Close()
	author.Close()
	w.done.Wait()
	c.Close()
	waitFor(t, "goroutines drained", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= goroutinesBefore+3
	})
	t.Logf("seed %d: sent=%d sheds=%d cursorResumes=%d appends=%d resumes=%d catchUp=%d pointQueries=%d",
		seed, sent, sheds, viewer.CursorResumes.Value(), appends, resumes, catchUp,
		c.WAS.PointQueries.Value())
}
