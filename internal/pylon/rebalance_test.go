package pylon

import (
	"fmt"
	"testing"
)

func TestMoveShardValidation(t *testing.T) {
	s, _ := newService(t)
	if err := s.MoveShard(-1, 0); err == nil {
		t.Error("negative shard accepted")
	}
	if err := s.MoveShard(0, 99); err == nil {
		t.Error("bad server accepted")
	}
	s.SetServerUp(2, false)
	if err := s.MoveShard(0, 2); err == nil {
		t.Error("move to down server accepted")
	}
}

func TestMoveShardChangesOwnership(t *testing.T) {
	s, _ := newService(t)
	topic := Topic("/LVC/7")
	orig := s.ServerFor(topic)
	target := (orig + 1) % DefaultConfig().Servers
	if err := s.MoveShard(s.Shard(topic), target); err != nil {
		t.Fatal(err)
	}
	if got := s.ServerFor(topic); got != target {
		t.Errorf("ServerFor = %d, want %d", got, target)
	}
	if s.Overrides() != 1 {
		t.Errorf("Overrides = %d", s.Overrides())
	}
	// Moving back to the default clears the override.
	if err := s.MoveShard(s.Shard(topic), orig); err != nil {
		t.Fatal(err)
	}
	if s.Overrides() != 0 {
		t.Errorf("Overrides after restore = %d", s.Overrides())
	}
}

func TestServerLoadAccounting(t *testing.T) {
	s, _ := newService(t)
	h := &fakeHost{id: "h"}
	s.RegisterHost(h)
	topic := Topic("/busy")
	_ = s.Subscribe(topic, "h")
	srv := s.ServerFor(topic)
	for i := 0; i < 25; i++ {
		if _, err := s.Publish(Event{Topic: topic}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.ServerLoad(srv); got != 25 {
		t.Errorf("ServerLoad(%d) = %d, want 25", srv, got)
	}
	if s.ServerLoad(99) != 0 {
		t.Error("out-of-range load not zero")
	}
	if s.HottestServer() != srv {
		t.Errorf("HottestServer = %d, want %d", s.HottestServer(), srv)
	}
}

func TestRebalanceOneMovesHotShard(t *testing.T) {
	s, _ := newService(t)
	h := &fakeHost{id: "h"}
	s.RegisterHost(h)
	topic := Topic("/hotspot")
	_ = s.Subscribe(topic, "h")
	for i := 0; i < 50; i++ {
		_, _ = s.Publish(Event{Topic: topic})
	}
	hot := s.HottestServer()
	shard, from, to, err := s.RebalanceOne()
	if err != nil {
		t.Fatal(err)
	}
	if from != hot {
		t.Errorf("rebalanced from %d, want hottest %d", from, hot)
	}
	if to == from {
		t.Error("moved to the same server")
	}
	if shard%DefaultConfig().Servers != from && s.Overrides() == 0 {
		t.Error("no override recorded")
	}
	// New publishes to topics on the moved shard land on the new server.
	// (The hotspot topic's shard may or may not be the moved one; assert
	// via direct ownership instead.)
	owner := s.route.Load().serverFor(shard, s.cfg.Servers)
	if owner != to {
		t.Errorf("shard %d owner = %d, want %d", shard, owner, to)
	}
}

func TestPublishFollowsOverride(t *testing.T) {
	s, _ := newService(t)
	h := &fakeHost{id: "h"}
	s.RegisterHost(h)
	topic := Topic("/moved")
	_ = s.Subscribe(topic, "h")
	orig := s.ServerFor(topic)
	target := (orig + 3) % DefaultConfig().Servers
	if err := s.MoveShard(s.Shard(topic), target); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_, _ = s.Publish(Event{Topic: topic})
	}
	if got := s.ServerLoad(target); got != 5 {
		t.Errorf("moved-to server load = %d, want 5", got)
	}
	if got := s.ServerLoad(orig); got != 0 {
		t.Errorf("original server load = %d, want 0", got)
	}
}

func TestPublishFailsOverToUpServer(t *testing.T) {
	s, _ := newService(t)
	h := &fakeHost{id: "h"}
	s.RegisterHost(h)
	topic := Topic("/failover")
	_ = s.Subscribe(topic, "h")
	owner := s.ServerFor(topic)
	s.SetServerUp(owner, false)
	if _, err := s.Publish(Event{Topic: topic}); err != nil {
		t.Fatalf("publish with downed owner: %v", err)
	}
	// Some other (up) server absorbed the publish.
	var total int64
	for i := 0; i < DefaultConfig().Servers; i++ {
		if i != owner {
			total += s.ServerLoad(i)
		}
	}
	if total != 1 {
		t.Errorf("failover load = %d, want 1", total)
	}
}

func TestRebalanceLoopDrainsHotServer(t *testing.T) {
	// Drive skewed load, then apply RebalanceOne a few times and verify
	// the override count grows (one shard moved per call).
	s, _ := newService(t)
	h := &fakeHost{id: "h"}
	s.RegisterHost(h)
	for i := 0; i < 10; i++ {
		topic := Topic(fmt.Sprintf("/skew/%d", i))
		_ = s.Subscribe(topic, "h")
		_, _ = s.Publish(Event{Topic: topic})
	}
	before := s.Overrides()
	moved := 0
	for i := 0; i < 3; i++ {
		if _, _, _, err := s.RebalanceOne(); err == nil {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no rebalance succeeded")
	}
	if s.Overrides() < before {
		t.Error("override count decreased")
	}
}

// TestRebalanceRacingPublishes moves shards while publishes and subscribes
// run concurrently: no publish may be lost or misrouted to a down server.
// Run with -race.
func TestRebalanceRacingPublishes(t *testing.T) {
	s, _ := newService(t)
	h := &fakeHost{id: "h"}
	s.RegisterHost(h)
	const topics = 20
	for i := 0; i < topics; i++ {
		if err := s.Subscribe(Topic(fmt.Sprintf("/race/%d", i)), "h"); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_, _, _, _ = s.RebalanceOne()
			_ = s.MoveShard(i%DefaultConfig().Shards, i%DefaultConfig().Servers)
		}
	}()
	var published int64
	for i := 0; i < 500; i++ {
		n, err := s.Publish(Event{Topic: Topic(fmt.Sprintf("/race/%d", i%topics))})
		if err != nil {
			t.Fatalf("publish during rebalance: %v", err)
		}
		if n != 1 {
			t.Fatalf("publish %d fanout = %d", i, n)
		}
		published++
	}
	<-done
	if h.count() != 500 {
		t.Errorf("host received %d events, want 500", h.count())
	}
	// Load accounting still sums to the publish count.
	var load int64
	for i := 0; i < DefaultConfig().Servers; i++ {
		load += s.ServerLoad(i)
	}
	if load != published {
		t.Errorf("sum of server loads = %d, want %d", load, published)
	}
}
