package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Engine is a deterministic discrete-event simulator. Events are executed
// in strict timestamp order; ties are broken by scheduling order, so a run
// with a fixed RNG seed is fully reproducible.
//
// Engine is not safe for concurrent use: all event callbacks run on the
// goroutine that calls Run/RunUntil/Step, and callbacks schedule further
// events on the same engine. This mirrors the single-threaded run-to-
// completion semantics of the JS event loops Facebook uses for BRASS.
type Engine struct {
	now    time.Time
	queue  eventQueue
	seq    uint64
	nextID uint64
	// executed counts events processed since construction.
	executed uint64
}

type event struct {
	at    time.Time
	seq   uint64 // FIFO tiebreak for equal timestamps
	id    uint64
	fn    func()
	index int // heap index, -1 when cancelled/popped
}

// NewEngine returns an engine whose simulation clock starts at start.
func NewEngine(start time.Time) *Engine {
	return &Engine{now: start}
}

// Now returns the current simulation time.
func (e *Engine) Now() time.Time { return e.now }

// After schedules fn to run d after the current simulation time and
// returns a cancel function. Negative d is treated as zero.
func (e *Engine) After(d time.Duration, fn func()) func() {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At schedules fn at absolute simulation time t (clamped to now if in the
// past) and returns a cancel function.
func (e *Engine) At(t time.Time, fn func()) func() {
	if fn == nil {
		panic("sim: At with nil fn")
	}
	if t.Before(e.now) {
		t = e.now
	}
	e.seq++
	e.nextID++
	ev := &event{at: t, seq: e.seq, id: e.nextID, fn: fn}
	heap.Push(&e.queue, ev)
	return func() {
		// Idempotent, and releases everything it can: the first call drops
		// the event from the heap (if still pending), its fn closure, and
		// the closure's own reference to the event struct. Callers routinely
		// hold cancel funcs long after the event fired (reconnect timers,
		// keepalives, presence loops) — at a million devices, a retained
		// 48-byte event per held cancel is real memory, so a cancel func
		// must pin nothing once invoked.
		if ev == nil {
			return
		}
		if ev.index >= 0 {
			heap.Remove(&e.queue, ev.index)
			ev.index = -1
		}
		ev.fn = nil
		ev = nil
	}
}

var _ Scheduler = (*Engine)(nil)

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		ev.index = -1
		if ev.fn == nil { // cancelled
			continue
		}
		if ev.at.After(e.now) {
			e.now = ev.at
		}
		fn := ev.fn
		ev.fn = nil
		e.executed++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled beyond deadline remain queued.
func (e *Engine) RunUntil(deadline time.Time) {
	for {
		ev := e.queue.peek()
		if ev == nil || ev.at.After(deadline) {
			break
		}
		e.Step()
	}
	if e.now.Before(deadline) {
		e.now = deadline
	}
}

// RunFor advances the simulation by d (RunUntil now+d).
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }

// Pending returns the number of queued (non-cancelled) events. Cancelled
// events are removed eagerly, so this is exact.
func (e *Engine) Pending() int { return e.queue.Len() }

// Executed returns the total number of events processed.
func (e *Engine) Executed() uint64 { return e.executed }

// String describes the engine state, useful in test failures.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%s pending=%d executed=%d}",
		e.now.Format(time.RFC3339Nano), e.Pending(), e.executed)
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	// Shrink the backing array once it is mostly slack: a burst of a
	// million scheduled events must not pin megabytes of pointer slots
	// for the rest of the run (popped slots are nil'd above, but the
	// array itself would otherwise never be released).
	if c := cap(old); c > 1024 && (n-1)*4 < c {
		shrunk := make(eventQueue, n-1, c/2)
		copy(shrunk, old[:n-1])
		*q = shrunk
	}
	return ev
}

func (q eventQueue) peek() *event {
	if len(q) == 0 {
		return nil
	}
	return q[0]
}
