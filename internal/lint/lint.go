// Package lint implements brlint, Bladerunner's static-analysis suite. It
// enforces the concurrency and virtual-time invariants the compiler cannot
// see but the system's correctness rests on (DESIGN.md "Static analysis &
// invariants"):
//
//   - no-direct-time: components take a sim.Clock/sim.Scheduler instead of
//     calling the time package, so the same logic runs under wall clock and
//     under the deterministic experiment harness.
//   - no-lock-across-block: a sync.Mutex/RWMutex must not be held across a
//     channel send/receive, select, or known blocking call — a stalled
//     receiver would turn Pylon's best-effort AP delivery path into a
//     system-wide stall.
//   - mutex-by-value: values whose type contains a lock (or an atomic) must
//     not be copied.
//   - goroutine-hygiene: `go func` literals must not capture loop variables,
//     and unbounded loops inside them need a shutdown path.
//   - unchecked-unsubscribe: error results from the Pylon/BRASS/BURST
//     public surfaces must not be silently discarded.
//   - span-must-end: a span opened with trace.Tracer.Start must reach
//     Span.End on every return path, or the hop silently disappears from
//     assembled traces.
//   - counted-shed: a select with a send and a default clause (best-effort
//     drop) must record the shed on a metrics instrument — an uncounted
//     drop is invisible to experiments and conservation checks.
//
// Diagnostics are suppressed with an inline escape hatch:
//
//	//brlint:allow(rule-name) reason for the exception
//
// placed on the offending line or on the line directly above it. The reason
// is mandatory; `brlint -suppressions` audits every active suppression.
//
// The implementation is standard library only (go/parser, go/ast, go/types,
// go/token), honoring the repository's stdlib-only rule.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one rule violation.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// Rule is one invariant check run over a type-checked package.
type Rule interface {
	// Name is the rule identifier used in diagnostics and in
	// //brlint:allow(name) suppressions.
	Name() string
	// Doc is a one-line description of the invariant.
	Doc() string
	// Check inspects c.Pkg and reports violations through c.Reportf.
	Check(c *Context)
}

// Context is the per-(rule, package) state handed to Rule.Check.
type Context struct {
	Pkg *Package
	// Fset translates token.Pos values into positions.
	Fset *token.FileSet
	// ModPath is the module path, for module-relative exemptions.
	ModPath string
	// Prog is the whole-module call graph + summary engine, built once per
	// Run and shared by every (rule, package) pair. Interprocedural rules
	// (hot-path-alloc, control-never-shed, the call-chain half of
	// no-lock-across-block) query it; per-function rules ignore it.
	Prog *Program

	rule   string
	report func(pos token.Pos, rule, msg string)
}

// Reportf records a diagnostic for the current rule at pos.
func (c *Context) Reportf(pos token.Pos, format string, args ...any) {
	c.report(pos, c.rule, fmt.Sprintf(format, args...))
}

// Runner applies a set of rules to packages and resolves suppressions.
type Runner struct {
	Rules   []Rule
	Fset    *token.FileSet
	ModPath string

	suppressions []Suppression
}

// NewRunner returns a Runner over the loader's module with the given rules
// (DefaultRules() if none).
func NewRunner(l *Loader, rules ...Rule) *Runner {
	if len(rules) == 0 {
		rules = DefaultRules(l.ModPath)
	}
	return &Runner{Rules: rules, Fset: l.Fset, ModPath: l.ModPath}
}

// Run checks every package and returns the surviving diagnostics, sorted by
// position. Diagnostics matched by a //brlint:allow comment are dropped and
// recorded as used suppressions; malformed suppression comments surface as
// diagnostics of the pseudo-rule "brlint".
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	// Suppressions are validated against the full rule set, not just the
	// active subset: running with -rules must not misreport a legitimate
	// allow comment for a deselected rule as naming an unknown rule.
	known := make(map[string]bool, len(r.Rules))
	for _, rule := range DefaultRules(r.ModPath) {
		known[rule.Name()] = true
	}
	for _, rule := range r.Rules {
		known[rule.Name()] = true
	}
	// One call graph for the whole run: the loader already type-checked
	// the package graph once; the Program adds a single AST pass per
	// function, and its memoized summaries are shared across all rules
	// and packages (the tier-1 lint-time budget, DESIGN.md §8b).
	prog := NewProgram(r.Fset, r.ModPath, pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sups, bad := collectSuppressions(r.Fset, pkg.Files, known)
		diags = append(diags, bad...)
		for _, rule := range r.Rules {
			c := &Context{
				Pkg:     pkg,
				Fset:    r.Fset,
				ModPath: r.ModPath,
				Prog:    prog,
				rule:    rule.Name(),
				report: func(pos token.Pos, name, msg string) {
					p := r.Fset.Position(pos)
					if s := matchSuppression(sups, name, p); s != nil {
						s.Used = true
						return
					}
					diags = append(diags, Diagnostic{Pos: p, Rule: name, Message: msg})
				},
			}
			rule.Check(c)
		}
		for i := range sups {
			r.suppressions = append(r.suppressions, *sups[i])
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Rule < diags[j].Rule
	})
	return diags
}

// Suppressions returns every //brlint:allow comment seen by Run, in source
// order — the data behind `brlint -suppressions`.
func (r *Runner) Suppressions() []Suppression {
	s := append([]Suppression(nil), r.suppressions...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].File != s[j].File {
			return s[i].File < s[j].File
		}
		return s[i].Line < s[j].Line
	})
	return s
}

// DefaultRules is the full brlint rule set for the module modPath.
func DefaultRules(modPath string) []Rule {
	return []Rule{
		&NoDirectTime{ModPath: modPath},
		&NoLockAcrossBlock{ModPath: modPath},
		&MutexByValue{},
		&GoroutineHygiene{},
		&UncheckedUnsubscribe{ModPath: modPath},
		&SpanMustEnd{ModPath: modPath},
		&CountedShed{ModPath: modPath},
		&HotPathAlloc{},
		&ControlNeverShed{},
	}
}

// ---- shared AST/type helpers ----

// calleeFunc resolves the function or method named by call.Fun, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// calleeFullName is calleeFunc's FullName ("time.Now",
// "(*sync.Mutex).Lock"), or "".
func calleeFullName(info *types.Info, call *ast.CallExpr) string {
	if f := calleeFunc(info, call); f != nil {
		return f.FullName()
	}
	return ""
}
