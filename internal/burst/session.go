package burst

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"bladerunner/internal/sim"
)

// ErrSessionClosed is returned when sending on a closed session.
var ErrSessionClosed = errors.New("burst: session closed")

// FrameHandler receives inbound frames and the session-closed notification.
// HandleFrame is invoked from the session's single read goroutine, so
// implementations observe frames in wire order.
type FrameHandler interface {
	HandleFrame(f Frame)
	// HandleClose is invoked exactly once when the session dies; err is
	// nil for a locally initiated close, io.EOF for a clean peer close.
	HandleClose(err error)
}

// Session multiplexes BURST frames over one underlying byte transport.
// Sends are safe for concurrent use. Ping frames are answered with Pong
// automatically; pongs are surfaced to the optional PongListener for
// keepalive tracking.
type Session struct {
	name string
	rwc  io.ReadWriteCloser
	br   *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer

	handler FrameHandler

	mu     sync.Mutex
	closed bool
	err    error
	onPong func()

	done chan struct{}
}

// NewSession wraps rwc and starts the read loop. name is used in errors.
// The handler must be non-nil.
func NewSession(name string, rwc io.ReadWriteCloser, handler FrameHandler) *Session {
	if handler == nil {
		panic("burst: NewSession with nil handler")
	}
	s := &Session{
		name:    name,
		rwc:     rwc,
		br:      frameReader(rwc),
		bw:      bufio.NewWriterSize(rwc, 32<<10),
		handler: handler,
		done:    make(chan struct{}),
	}
	go s.readLoop()
	return s
}

// Name returns the session's diagnostic name.
func (s *Session) Name() string { return s.name }

// Done is closed when the session has fully shut down.
func (s *Session) Done() <-chan struct{} { return s.done }

// Err returns the error the session closed with: nil before close or for a
// locally initiated close, io.EOF for a clean peer close.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// SetPongListener registers fn to run on each received Pong.
func (s *Session) SetPongListener(fn func()) {
	s.mu.Lock()
	s.onPong = fn
	s.mu.Unlock()
}

// Send writes f to the peer. Frames from concurrent senders are serialized;
// each frame is flushed immediately (streams are latency-sensitive).
//
// buffered write, flush.
//
//brlint:hotpath per-frame wire path: header encode into a stack buffer,
func (s *Session) Send(f Frame) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	// The closed check must happen under wmu: a sender that checked before
	// acquiring wmu could otherwise write a frame onto a transport that
	// closeWith tore down while it waited, surfacing as a confusing
	// write-on-closed-conn error instead of ErrSessionClosed.
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return fmt.Errorf("session %s: %w", s.name, ErrSessionClosed)
	}
	if err := WriteFrame(s.bw, f); err != nil {
		return s.sendFailed(err)
	}
	if err := s.bw.Flush(); err != nil {
		return s.sendFailed(err)
	}
	return nil
}

// sendFailed maps a write failure to the session's close state: if another
// goroutine closed the session while the frame was in flight, the failure
// is just the dead transport surfacing and the caller gets ErrSessionClosed;
// otherwise the write error is the cause of death and the session closes
// with it.
func (s *Session) sendFailed(err error) error {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return fmt.Errorf("session %s: %w", s.name, ErrSessionClosed)
	}
	s.closeWith(err)
	return err
}

// SendMsg encodes v as the payload of a frame of type t on stream sid.
// The encoding runs in a pooled buffer that is written to the wire (Send
// flushes synchronously) before being reused, so the fast path allocates no
// per-frame payload slice.
//
// audited allocation.
//
//brlint:hotpath per-delta payload push; the JSON encoder itself is the one
func (s *Session) SendMsg(t FrameType, sid StreamID, v any) error {
	if v == nil {
		return s.Send(Frame{Type: t, SID: sid})
	}
	buf := getEncBuf()
	defer putEncBuf(buf)
	//brlint:allow(hot-path-alloc) the json.Encoder is a small per-frame cost the pooled payload buffer does not cover; the payload slice — the dominant per-delta allocation — stays pooled
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		return fmt.Errorf("burst: encode payload: %w", err)
	}
	b := buf.Bytes()
	// json.Encoder appends a newline after each value; trim it so the
	// wire bytes match EncodePayload exactly.
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	return s.Send(Frame{Type: t, SID: sid, Payload: b})
}

// Ping sends a liveness probe.
func (s *Session) Ping() error { return s.Send(Frame{Type: FramePing}) }

// Close shuts the session down locally. The handler's HandleClose runs with
// a nil error.
func (s *Session) Close() error {
	s.closeWith(nil)
	return nil
}

func (s *Session) closeWith(err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.err = err
	s.mu.Unlock()
	_ = s.rwc.Close()
}

func (s *Session) readLoop() {
	defer close(s.done)
	for {
		f, err := ReadFrame(s.br)
		if err != nil {
			s.mu.Lock()
			alreadyClosed := s.closed
			if !alreadyClosed {
				s.closed = true
				// A clean EOF is the peer hanging up; keep it distinct
				// from a local close (nil) so handlers can tell whether
				// the far side went away or we did. A torn frame
				// (io.ErrUnexpectedEOF) stays an error close.
				if errors.Is(err, io.EOF) {
					s.err = io.EOF
				} else {
					s.err = err
				}
			}
			finalErr := s.err
			s.mu.Unlock()
			_ = s.rwc.Close()
			if alreadyClosed {
				finalErr = s.Err()
			}
			s.handler.HandleClose(finalErr)
			return
		}
		switch f.Type {
		case FramePing:
			// Answer liveness probes inline.
			_ = s.Send(Frame{Type: FramePong})
		case FramePong:
			s.mu.Lock()
			fn := s.onPong
			s.mu.Unlock()
			if fn != nil {
				fn()
			}
		default:
			s.handler.HandleFrame(f)
		}
	}
}

// HandlerFuncs adapts plain functions to FrameHandler.
type HandlerFuncs struct {
	OnFrame func(Frame)
	OnClose func(error)
}

// HandleFrame calls OnFrame when set.
func (h HandlerFuncs) HandleFrame(f Frame) {
	if h.OnFrame != nil {
		h.OnFrame(f)
	}
}

// HandleClose calls OnClose when set.
func (h HandlerFuncs) HandleClose(err error) {
	if h.OnClose != nil {
		h.OnClose(err)
	}
}

// Keepalive drives heartbeats on a session: it pings every interval and
// closes the session if no pong arrives within timeout, providing the fast
// failure detection the paper's footnote 11 describes (waiting for TCP to
// notice takes too long).
//
// On transports that support read deadlines (real TCP conns) and a
// wall-clock scheduler, the keepalive also arms a rolling read deadline
// ahead of each ping, so a session whose *write* side wedges (dead peer
// with a full kernel send buffer — Ping never returns, so the pong timer
// would never be armed) is still torn down by the read side.
type Keepalive struct {
	sess     *Session
	sched    sim.Scheduler
	interval time.Duration
	timeout  time.Duration
	deadline deadlineConn // nil unless real clock + deadline-capable conn

	mu      sync.Mutex
	stopped bool
	cancel  func() // pending timer: interval tick or in-flight pong timeout
	alive   bool
}

// deadlineConn is the subset of net.Conn keepalive uses to bound reads.
type deadlineConn interface {
	SetReadDeadline(t time.Time) error
}

// StartKeepalive begins heartbeating sess. Call Stop to end it.
func StartKeepalive(sess *Session, sched sim.Scheduler, interval, timeout time.Duration) *Keepalive {
	if sched == nil {
		sched = sim.RealClock{}
	}
	k := &Keepalive{sess: sess, sched: sched, interval: interval, timeout: timeout, alive: true}
	// Read deadlines only make sense when scheduler time is wall time:
	// net.Pipe implements SetReadDeadline against the wall clock, so arming
	// it from a virtual clock would expire reads instantly.
	if _, real := sched.(sim.RealClock); real {
		if dc, ok := sess.rwc.(deadlineConn); ok {
			k.deadline = dc
		}
	}
	sess.SetPongListener(func() {
		k.mu.Lock()
		k.alive = true
		k.mu.Unlock()
	})
	k.schedule()
	return k
}

func (k *Keepalive) schedule() {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.stopped {
		return
	}
	k.cancel = k.sched.After(k.interval, k.tick)
}

func (k *Keepalive) tick() {
	k.mu.Lock()
	if k.stopped {
		k.mu.Unlock()
		return
	}
	// Mark not-alive before sending the ping: the pong may arrive on
	// another goroutine before Ping even returns.
	k.alive = false
	k.mu.Unlock()
	if k.deadline != nil {
		// Bound the read side past the next full ping cycle; refreshed
		// every tick while the session is healthy.
		_ = k.deadline.SetReadDeadline(k.sched.Now().Add(k.interval + 2*k.timeout))
	}
	if err := k.sess.Ping(); err != nil {
		return // session already dead
	}
	k.mu.Lock()
	if k.stopped {
		// Stop raced the tick: don't arm the pong-timeout timer after
		// Stop already cancelled everything it could see.
		k.mu.Unlock()
		return
	}
	k.cancel = k.sched.After(k.timeout, k.pongDeadline)
	k.mu.Unlock()
}

// pongDeadline runs timeout after a ping: either the pong arrived (schedule
// the next tick) or the session is declared dead.
func (k *Keepalive) pongDeadline() {
	k.mu.Lock()
	dead := !k.alive && !k.stopped
	k.mu.Unlock()
	if dead {
		k.sess.closeWith(fmt.Errorf("session %s: heartbeat timeout", k.sess.name))
		return
	}
	k.schedule()
}

// Stop ends the keepalive without closing the session. Both the interval
// timer and an in-flight pong-timeout timer are cancelled; no keepalive
// timer fires after Stop returns.
func (k *Keepalive) Stop() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.stopped = true
	if k.cancel != nil {
		k.cancel()
		k.cancel = nil
	}
	if k.deadline != nil {
		_ = k.deadline.SetReadDeadline(time.Time{})
	}
}
