package burst

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"bladerunner/internal/metrics"
)

// ErrStreamClosed is returned when operating on a terminated stream.
var ErrStreamClosed = errors.New("burst: stream closed")

// Client is the device-side endpoint of BURST: it opens request-streams
// over one session and dispatches inbound batches to them.
//
// Rewrite deltas are applied transparently: the client updates each
// stream's stored subscription request so that a later resubscribe (after a
// failure) carries the BRASS-written state — the application never sees the
// rewrite (paper §3.5: "rewrites offer a general solution so that the
// client need not be aware of the states").
type Client struct {
	sess *Session

	mu      sync.Mutex
	nextSID StreamID
	streams map[StreamID]*ClientStream
	closed  bool
	onClose func(error)

	// Dropped counts batches whose payload deltas were discarded because a
	// stream's event buffer was full. Payload delivery is best effort end
	// to end; control deltas (flow_status, rewrite_request, termination)
	// are never dropped — a full buffer evicts the oldest batch and
	// salvages its control deltas instead (see ClientStream.pushEvents).
	Dropped metrics.Counter

	// CtlSalvaged counts control deltas rescued from evicted batches and
	// re-queued at the front of the incoming batch.
	CtlSalvaged metrics.Counter

	// RelayRewrites makes rewrite deltas visible on stream Events in
	// addition to being applied to the stored request. Proxies set this:
	// they must forward rewrites downstream so the device's copy of the
	// reconnect state is updated too. Device clients leave it false.
	RelayRewrites bool
}

// eventBuffer is the per-stream channel capacity. A full buffer causes
// payload drops (counted), mirroring best-effort delivery under client
// stall; control deltas survive eviction.
const eventBuffer = 256

// NewClient starts a BURST client session over rwc. onClose, if non-nil,
// runs when the session dies; every open stream also receives a synthetic
// FlowDegraded delta so the application learns its streams are dark.
func NewClient(name string, rwc io.ReadWriteCloser, onClose func(error)) *Client {
	c := &Client{
		streams: make(map[StreamID]*ClientStream),
		onClose: onClose,
	}
	c.sess = NewSession(name, rwc, clientHandler{c})
	return c
}

// ClientStream is one request-stream from the client's perspective.
type ClientStream struct {
	client *Client
	sid    StreamID

	mu         sync.Mutex
	sub        Subscribe // current (possibly rewritten) request
	terminated bool
	lastSeq    uint64

	// Events delivers batches of deltas. Each slice was transmitted
	// atomically; the channel is closed when the stream terminates.
	Events chan []Delta
}

// SID returns the stream id.
func (st *ClientStream) SID() StreamID { return st.sid }

// Request returns a copy of the stream's current subscription request,
// reflecting any rewrites. Devices use this to resubscribe after failures.
func (st *ClientStream) Request() Subscribe {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := Subscribe{Header: st.sub.Header.Clone()}
	if st.sub.Body != nil {
		out.Body = append([]byte(nil), st.sub.Body...)
	}
	return out
}

// LastSeq returns the highest payload sequence number received.
func (st *ClientStream) LastSeq() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastSeq
}

// Ack acknowledges deltas up to and including seq.
func (st *ClientStream) Ack(seq uint64) error {
	return st.client.sess.SendMsg(FrameAck, st.sid, Ack{Seq: seq})
}

// Cancel terminates the stream from the client side.
func (st *ClientStream) Cancel(reason string) error {
	st.mu.Lock()
	if st.terminated {
		st.mu.Unlock()
		return nil
	}
	st.terminated = true
	st.mu.Unlock()
	err := st.client.sess.SendMsg(FrameCancel, st.sid, Cancel{Reason: reason})
	st.client.removeStream(st.sid)
	close(st.Events)
	return err
}

// Subscribe opens a new request-stream with the given request.
func (c *Client) Subscribe(sub Subscribe) (*ClientStream, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("client %s: %w", c.sess.name, ErrSessionClosed)
	}
	c.nextSID++
	sid := c.nextSID
	st := &ClientStream{
		client: c,
		sid:    sid,
		sub:    Subscribe{Header: sub.Header.Clone(), Body: sub.Body},
		Events: make(chan []Delta, eventBuffer),
	}
	c.streams[sid] = st
	c.mu.Unlock()

	if err := c.sess.SendMsg(FrameSubscribe, sid, sub); err != nil {
		c.removeStream(sid)
		return nil, err
	}
	return st, nil
}

// Resubscribe opens a stream using a previously stored request (e.g. after
// reconnecting on a fresh session). It is equivalent to Subscribe but named
// for readability at call sites.
func (c *Client) Resubscribe(sub Subscribe) (*ClientStream, error) {
	return c.Subscribe(sub)
}

// Streams returns the currently open streams.
func (c *Client) Streams() []*ClientStream {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*ClientStream, 0, len(c.streams))
	for _, st := range c.streams {
		out = append(out, st)
	}
	return out
}

// Close tears down the session; open streams receive FlowDegraded and are
// closed.
func (c *Client) Close() error { return c.sess.Close() }

func (c *Client) removeStream(sid StreamID) {
	c.mu.Lock()
	delete(c.streams, sid)
	c.mu.Unlock()
}

type clientHandler struct{ c *Client }

func (h clientHandler) HandleFrame(f Frame) {
	c := h.c
	if f.Type != FrameBatch {
		return // clients only receive batches
	}
	batch, err := DecodeBatch(f.Payload)
	if err != nil {
		return
	}
	c.mu.Lock()
	st := c.streams[f.SID]
	c.mu.Unlock()
	if st == nil {
		return // stream already cancelled; late batch
	}
	st.apply(batch.Deltas)
}

func (h clientHandler) HandleClose(err error) {
	c := h.c
	c.mu.Lock()
	c.closed = true
	streams := make([]*ClientStream, 0, len(c.streams))
	for _, st := range c.streams {
		streams = append(streams, st)
	}
	c.streams = make(map[StreamID]*ClientStream)
	onClose := c.onClose
	c.mu.Unlock()
	for _, st := range streams {
		st.sessionLost()
	}
	if onClose != nil {
		onClose(err)
	}
}

// apply processes one atomically delivered batch: rewrites update stored
// state invisibly, terminations close the stream, and the remainder is
// forwarded to the application.
func (st *ClientStream) apply(deltas []Delta) {
	visible := make([]Delta, 0, len(deltas))
	terminate := false
	st.mu.Lock()
	if st.terminated {
		st.mu.Unlock()
		return
	}
	for _, d := range deltas {
		switch d.Type {
		case DeltaRewriteRequest:
			if d.Header != nil {
				st.sub.Header = d.Header.Clone()
			}
			if d.Body != nil {
				st.sub.Body = append([]byte(nil), d.Body...)
			}
			if st.client.RelayRewrites {
				visible = append(visible, d)
			}
		case DeltaPayload:
			if d.Seq > st.lastSeq {
				st.lastSeq = d.Seq
			}
			visible = append(visible, d)
		case DeltaTermination:
			terminate = true
			visible = append(visible, d)
		default:
			visible = append(visible, d)
		}
	}
	if terminate {
		st.terminated = true
	}
	// Send while holding the lock: Cancel/sessionLost close Events only
	// after setting terminated under the same lock, so this send can
	// never race with the close. Sends and evictions are non-blocking.
	if len(visible) > 0 {
		st.pushEvents(visible)
	}
	st.mu.Unlock()

	if terminate {
		st.client.removeStream(st.sid)
		close(st.Events)
	}
}

// pushEvents delivers one batch to the Events channel without ever losing
// a control delta. If the buffer is full it evicts the OLDEST buffered
// batch, sheds that batch's payload deltas (counted in Dropped), salvages
// its control deltas onto the front of the outgoing batch (order
// preserved), and retries. This is safe only because the session read
// goroutine is the sole sender on Events — apply and sessionLost both run
// there — so a non-blocking receive here cannot steal from a concurrent
// producer, and after one eviction the retry always finds room.
func (st *ClientStream) pushEvents(visible []Delta) {
	for {
		select {
		case st.Events <- visible:
			return
		default:
		}
		select {
		case old := <-st.Events:
			shed := false
			var salvage []Delta
			for _, d := range old {
				if d.Type == DeltaPayload {
					shed = true
					continue
				}
				salvage = append(salvage, d)
			}
			if shed {
				st.client.Dropped.Inc()
			}
			if len(salvage) > 0 {
				st.client.CtlSalvaged.Add(int64(len(salvage)))
				visible = append(salvage, visible...)
			}
		default:
			// The consumer drained a slot between our two selects; the
			// retry will land.
		}
	}
}

// sessionLost delivers a synthetic degraded flow status and closes the
// stream channel: the transport under every stream on the session is gone.
// The notice is a control delta, so it uses the same never-lost push path.
func (st *ClientStream) sessionLost() {
	st.mu.Lock()
	if st.terminated {
		st.mu.Unlock()
		return
	}
	st.terminated = true
	st.pushEvents([]Delta{FlowStatusDelta(FlowDegraded, "session closed")})
	st.mu.Unlock()
	close(st.Events)
}
