package ctrl

import (
	"errors"
	"fmt"

	"bladerunner/internal/pylon"
	"bladerunner/internal/was"
)

// Wire error codes. Sentinel errors that callers classify with errors.Is
// (the brass subscription manager retries transient Pylon failures; the
// device layer distinguishes shed from failure) must survive the RPC
// boundary, so each gets a stable code that errFor maps back to the
// sentinel on the calling side.
const (
	codeUnknownMethod     = "unknown-method"
	codeNoQuorum          = "pylon-no-quorum"
	codeUnavailable       = "pylon-unavailable"
	codeShed              = "pylon-shed"
	codeUnknownSubscriber = "pylon-unknown-subscriber"
	codeDenied            = "was-denied"
	codeUnknownField      = "was-unknown-field"
)

// wire maps err to its wire form, stamping a sentinel code when one
// applies. errors.Is runs on the server side, so wrapped sentinels map
// correctly even though only the rendered message crosses the wire.
func wire(err error) *wireError {
	w := &wireError{Msg: err.Error()}
	switch {
	case errors.Is(err, pylon.ErrNoQuorum):
		w.Code = codeNoQuorum
	case errors.Is(err, pylon.ErrUnavailable):
		w.Code = codeUnavailable
	case errors.Is(err, pylon.ErrShed):
		w.Code = codeShed
	case errors.Is(err, pylon.ErrUnknownSubscriber):
		w.Code = codeUnknownSubscriber
	case errors.Is(err, was.ErrDenied):
		w.Code = codeDenied
	case errors.Is(err, was.ErrUnknownField):
		w.Code = codeUnknownField
	}
	return w
}

// unwire reconstructs a caller-side error, restoring sentinel identity
// from the code. The remote message is preserved in the rendering.
func (w *wireError) unwire(name, method string) error {
	var sentinel error
	switch w.Code {
	case codeNoQuorum:
		sentinel = pylon.ErrNoQuorum
	case codeUnavailable:
		sentinel = pylon.ErrUnavailable
	case codeShed:
		sentinel = pylon.ErrShed
	case codeUnknownSubscriber:
		sentinel = pylon.ErrUnknownSubscriber
	case codeDenied:
		sentinel = was.ErrDenied
	case codeUnknownField:
		sentinel = was.ErrUnknownField
	}
	if sentinel != nil {
		return fmt.Errorf("ctrl %s: %s: %w (remote: %s)", name, method, sentinel, w.Msg)
	}
	return fmt.Errorf("ctrl %s: %s: remote: %s", name, method, w.Msg)
}
