package burst

import (
	"bytes"
	"sync"
)

// Frame encoding on the send path is the per-delta hot loop of the whole
// stack: every payload push JSON-encodes a Batch. Encoding into pooled
// buffers (written to the wire before the buffer is released) removes the
// per-frame allocation of json.Marshal's returned slice.

// maxPooledBuf caps the size of buffers returned to the pool; encoding a
// rare jumbo batch must not pin megabytes in the pool forever.
const maxPooledBuf = 1 << 20

var encBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

//brlint:hotpath pooled buffer checkout on the per-frame encode path.
func getEncBuf() *bytes.Buffer {
	return encBufPool.Get().(*bytes.Buffer)
}

//brlint:hotpath pooled buffer return on the per-frame encode path.
func putEncBuf(b *bytes.Buffer) {
	if b.Cap() > maxPooledBuf {
		return
	}
	b.Reset()
	encBufPool.Put(b)
}
