package tao

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"bladerunner/internal/sim"
)

var t0 = time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)

func newTestStore(t *testing.T) (*Store, *sim.ManualClock) {
	t.Helper()
	clk := sim.NewManualClock(t0)
	return MustNewStore(DefaultConfig(), clk), clk
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(Config{Shards: 0, IndexShardCapacity: 1}, nil); err == nil {
		t.Error("Shards=0 accepted")
	}
	if _, err := NewStore(Config{Shards: 1, IndexShardCapacity: 0}, nil); err == nil {
		t.Error("IndexShardCapacity=0 accepted")
	}
}

func TestObjectLifecycle(t *testing.T) {
	s, clk := newTestStore(t)
	id := s.ObjectAdd("user", map[string]string{"name": "ada"})
	obj, err := s.ObjectGet(id)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Type != "user" || obj.Data["name"] != "ada" || obj.Version != 1 {
		t.Errorf("obj = %+v", obj)
	}
	if !obj.Created.Equal(clk.Now()) {
		t.Errorf("Created = %v", obj.Created)
	}

	if err := s.ObjectUpdate(id, map[string]string{"name": "lovelace", "role": "eng"}); err != nil {
		t.Fatal(err)
	}
	obj, _ = s.ObjectGet(id)
	if obj.Data["name"] != "lovelace" || obj.Data["role"] != "eng" || obj.Version != 2 {
		t.Errorf("after update: %+v", obj)
	}

	if err := s.ObjectDelete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ObjectGet(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("get after delete: %v", err)
	}
	if err := s.ObjectDelete(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	if err := s.ObjectUpdate(id, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("update missing: %v", err)
	}
}

func TestObjectGetReturnsCopy(t *testing.T) {
	s, _ := newTestStore(t)
	id := s.ObjectAdd("user", map[string]string{"k": "v"})
	obj, _ := s.ObjectGet(id)
	obj.Data["k"] = "mutated"
	obj2, _ := s.ObjectGet(id)
	if obj2.Data["k"] != "v" {
		t.Error("caller mutation leaked into store")
	}
}

func TestObjectIDsUnique(t *testing.T) {
	s, _ := newTestStore(t)
	seen := make(map[ObjID]bool)
	for i := 0; i < 1000; i++ {
		id := s.ObjectAdd("x", nil)
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestAssocAddGetDelete(t *testing.T) {
	s, _ := newTestStore(t)
	s.AssocAdd(1, "friend", 2, t0, "since 2010")
	a, err := s.AssocGet(1, "friend", 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Data != "since 2010" || a.ID1 != 1 || a.ID2 != 2 {
		t.Errorf("assoc = %+v", a)
	}
	if _, err := s.AssocGet(1, "friend", 3); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing assoc: %v", err)
	}
	if err := s.AssocDelete(1, "friend", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.AssocDelete(1, "friend", 2); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestAssocAddUpsert(t *testing.T) {
	s, _ := newTestStore(t)
	s.AssocAdd(1, "likes", 5, t0, "old")
	s.AssocAdd(1, "likes", 5, t0.Add(time.Hour), "new")
	if n := s.AssocCount(1, "likes"); n != 1 {
		t.Fatalf("count after upsert = %d", n)
	}
	a, _ := s.AssocGet(1, "likes", 5)
	if a.Data != "new" || !a.Time.Equal(t0.Add(time.Hour)) {
		t.Errorf("upserted assoc = %+v", a)
	}
}

func TestAssocRangeNewestFirst(t *testing.T) {
	s, _ := newTestStore(t)
	for i := 0; i < 10; i++ {
		s.AssocAdd(42, "comment", ObjID(100+i), t0.Add(time.Duration(i)*time.Second), "")
	}
	got := s.AssocRange(42, "comment", 0, 3)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].ID2 != 109 || got[1].ID2 != 108 || got[2].ID2 != 107 {
		t.Errorf("order: %v %v %v", got[0].ID2, got[1].ID2, got[2].ID2)
	}
	// Offset.
	got = s.AssocRange(42, "comment", 8, 10)
	if len(got) != 2 || got[0].ID2 != 101 {
		t.Errorf("offset range: %+v", got)
	}
	// Out-of-range offset.
	if got := s.AssocRange(42, "comment", 100, 5); got != nil {
		t.Errorf("expected nil, got %v", got)
	}
	// limit 0 = all.
	if got := s.AssocRange(42, "comment", 0, 0); len(got) != 10 {
		t.Errorf("limit 0 len = %d", len(got))
	}
}

func TestAssocTimeRange(t *testing.T) {
	s, clk := newTestStore(t)
	for i := 0; i < 10; i++ {
		s.AssocAdd(7, "comment", ObjID(i+1), t0.Add(time.Duration(i)*time.Minute), "")
	}
	clk.Set(t0.Add(time.Hour))
	// Since minute 4 (exclusive): minutes 5..9 = 5 entries.
	got := s.AssocTimeRange(7, "comment", t0.Add(4*time.Minute), time.Time{}, 0)
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	for _, a := range got {
		if !a.Time.After(t0.Add(4 * time.Minute)) {
			t.Errorf("entry %v not after since", a.Time)
		}
	}
	// Bounded until.
	got = s.AssocTimeRange(7, "comment", t0.Add(4*time.Minute), t0.Add(6*time.Minute), 0)
	if len(got) != 2 {
		t.Errorf("bounded len = %d, want 2", len(got))
	}
	// Limit.
	got = s.AssocTimeRange(7, "comment", time.Time{}.Add(time.Nanosecond), time.Time{}, 3)
	if len(got) != 3 {
		t.Errorf("limited len = %d", len(got))
	}
}

func TestIntersect(t *testing.T) {
	s, _ := newTestStore(t)
	// Comments on video 1 by users 10,11,12 (ID2 = commenter for this test).
	s.AssocAdd(1, "commented_by", 10, t0.Add(1*time.Second), "")
	s.AssocAdd(1, "commented_by", 11, t0.Add(2*time.Second), "")
	s.AssocAdd(1, "commented_by", 12, t0.Add(3*time.Second), "")
	// User 99's friends: 10, 12.
	s.AssocAdd(99, "friend", 10, t0, "")
	s.AssocAdd(99, "friend", 12, t0, "")

	got := s.Intersect(1, "commented_by", 99, "friend", 0)
	if len(got) != 2 {
		t.Fatalf("intersect len = %d: %+v", len(got), got)
	}
	// Newest first: 12 then 10.
	if got[0].ID2 != 12 || got[1].ID2 != 10 {
		t.Errorf("intersect order: %v, %v", got[0].ID2, got[1].ID2)
	}
	if got := s.Intersect(1, "commented_by", 99, "friend", 1); len(got) != 1 {
		t.Errorf("limited intersect len = %d", len(got))
	}
}

func TestStatsAccounting(t *testing.T) {
	cfg := Config{Shards: 8, IndexShardCapacity: 4}
	s := MustNewStore(cfg, sim.NewManualClock(t0))
	id := s.ObjectAdd("u", nil) // 1 write
	if _, err := s.ObjectGet(id); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().PointQueries.Value(); got != 1 {
		t.Errorf("points = %d", got)
	}
	// Build a 10-element list: range cost = ceil(10/4) = 3 shards.
	for i := 0; i < 10; i++ {
		s.AssocAdd(5, "c", ObjID(i+100), t0, "")
	}
	before := s.Stats().ShardAccesses.Value()
	s.AssocRange(5, "c", 0, 0)
	if cost := s.Stats().ShardAccesses.Value() - before; cost != 3 {
		t.Errorf("range shard cost = %d, want 3", cost)
	}
	if got := s.Stats().RangeQueries.Value(); got != 1 {
		t.Errorf("ranges = %d", got)
	}
	// Intersect cost = 3 (len 10) + 1 (empty list min 1) = 4.
	before = s.Stats().ShardAccesses.Value()
	s.Intersect(5, "c", 6, "f", 0)
	if cost := s.Stats().ShardAccesses.Value() - before; cost != 4 {
		t.Errorf("intersect shard cost = %d, want 4", cost)
	}
	if s.Stats().Reads() != 3 {
		t.Errorf("Reads = %d", s.Stats().Reads())
	}
	if s.Stats().Writes.Value() != 11 {
		t.Errorf("Writes = %d", s.Stats().Writes.Value())
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s, _ := newTestStore(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := s.ObjectAdd("o", map[string]string{"g": "x"})
				if _, err := s.ObjectGet(id); err != nil {
					t.Errorf("get: %v", err)
				}
				s.AssocAdd(ObjID(g), "e", id, t0, "")
				s.AssocRange(ObjID(g), "e", 0, 10)
			}
		}()
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		if n := s.AssocCount(ObjID(g), "e"); n != 200 {
			t.Errorf("shard %d count = %d", g, n)
		}
	}
}

func TestFollowerCaching(t *testing.T) {
	s, _ := newTestStore(t)
	f := NewFollower(s, nil, 0)
	id := s.ObjectAdd("u", map[string]string{"v": "1"})

	if _, err := f.ObjectGet(id); err != nil {
		t.Fatal(err)
	}
	if f.Misses.Value() != 1 || f.Hits.Value() != 0 {
		t.Errorf("first read: hits=%d misses=%d", f.Hits.Value(), f.Misses.Value())
	}
	leaderReads := s.Stats().Reads()
	if _, err := f.ObjectGet(id); err != nil {
		t.Fatal(err)
	}
	if f.Hits.Value() != 1 {
		t.Errorf("second read not a hit")
	}
	if s.Stats().Reads() != leaderReads {
		t.Error("cache hit still queried the leader")
	}
	if f.HitRate() != 0.5 {
		t.Errorf("HitRate = %v", f.HitRate())
	}
}

func TestFollowerWriteInvalidates(t *testing.T) {
	s, _ := newTestStore(t)
	f := NewFollower(s, nil, 0) // zero delay: invalidate immediately
	id := s.ObjectAdd("u", map[string]string{"v": "1"})
	if _, err := f.ObjectGet(id); err != nil {
		t.Fatal(err)
	}
	if err := f.ObjectUpdate(id, map[string]string{"v": "2"}); err != nil {
		t.Fatal(err)
	}
	obj, err := f.ObjectGet(id)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Data["v"] != "2" {
		t.Errorf("follower served stale value %q after invalidation", obj.Data["v"])
	}
}

func TestFollowerDelayedInvalidation(t *testing.T) {
	eng := sim.NewEngine(t0)
	s := MustNewStore(DefaultConfig(), eng)
	f := NewFollower(s, eng, 100*time.Millisecond)
	id := s.ObjectAdd("u", map[string]string{"v": "1"})
	if _, err := f.ObjectGet(id); err != nil {
		t.Fatal(err)
	}
	if err := f.ObjectUpdate(id, map[string]string{"v": "2"}); err != nil {
		t.Fatal(err)
	}
	// Before replication delay elapses the follower may serve stale data.
	obj, _ := f.ObjectGet(id)
	if obj.Data["v"] != "1" {
		t.Errorf("expected stale read before invalidation, got %q", obj.Data["v"])
	}
	eng.RunFor(200 * time.Millisecond)
	obj, _ = f.ObjectGet(id)
	if obj.Data["v"] != "2" {
		t.Errorf("stale after invalidation: %q", obj.Data["v"])
	}
}

func TestFollowerAssocCaching(t *testing.T) {
	s, _ := newTestStore(t)
	f := NewFollower(s, nil, 0)
	s.AssocAdd(1, "c", 10, t0, "")
	if got := f.AssocRange(1, "c", 0, 0); len(got) != 1 {
		t.Fatalf("len = %d", len(got))
	}
	f.AssocAdd(1, "c", 11, t0.Add(time.Second), "")
	got := f.AssocRange(1, "c", 0, 0)
	if len(got) != 2 || got[0].ID2 != 11 {
		t.Errorf("after invalidating write: %+v", got)
	}
}

func TestFollowerMissingObject(t *testing.T) {
	s, _ := newTestStore(t)
	f := NewFollower(s, nil, 0)
	if _, err := f.ObjectGet(12345); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

// Property: AssocRange(offset, limit) never returns more than limit entries
// and preserves newest-first order.
func TestAssocRangeProperty(t *testing.T) {
	s, _ := newTestStore(t)
	for i := 0; i < 100; i++ {
		s.AssocAdd(1, "p", ObjID(i+1), t0.Add(time.Duration(i)*time.Second), "")
	}
	f := func(off, lim uint8) bool {
		got := s.AssocRange(1, "p", int(off), int(lim))
		if lim > 0 && len(got) > int(lim) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Time.After(got[i-1].Time) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
