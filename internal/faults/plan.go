package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"bladerunner/internal/sim"
)

// Action is one scheduled fault-plane operation.
type Action struct {
	// At is the offset from Plan.Start at which the action fires.
	At time.Duration
	// Desc names the action in Schedule renderings and logs.
	Desc string
	// Do applies the action.
	Do func(*FaultNetwork)
}

// Plan is a scheduled fault timeline: "at T+x, cut pop-0; at T+y, heal".
// Plans are built once and scheduled onto a FaultNetwork's Scheduler, so a
// plan replays identically under the wall clock and the discrete-event
// engine. Seeded RandomPlan construction makes whole chaos runs
// reproducible: same seed ⇒ same schedule (assertable via Schedule).
type Plan struct {
	actions []Action
}

// Add appends an arbitrary action.
func (p *Plan) Add(at time.Duration, desc string, do func(*FaultNetwork)) *Plan {
	p.actions = append(p.actions, Action{At: at, Desc: desc, Do: do})
	return p
}

// CutAt schedules a hard cut of target.
func (p *Plan) CutAt(at time.Duration, target string) *Plan {
	return p.Add(at, fmt.Sprintf("cut %s", target), func(n *FaultNetwork) { n.Cut(target) })
}

// HealAt schedules a heal of target.
func (p *Plan) HealAt(at time.Duration, target string) *Plan {
	return p.Add(at, fmt.Sprintf("heal %s", target), func(n *FaultNetwork) { n.Heal(target) })
}

// StallAt schedules a slow-reader stall on target's links.
func (p *Plan) StallAt(at time.Duration, target string) *Plan {
	return p.Add(at, fmt.Sprintf("stall %s", target), func(n *FaultNetwork) { n.Stall(target) })
}

// UnstallAt releases a stall.
func (p *Plan) UnstallAt(at time.Duration, target string) *Plan {
	return p.Add(at, fmt.Sprintf("unstall %s", target), func(n *FaultNetwork) { n.Unstall(target) })
}

// BlackholeAt schedules an asymmetric partition on one direction of
// target's links.
func (p *Plan) BlackholeAt(at time.Duration, target string, dir Direction, on bool) *Plan {
	return p.Add(at, fmt.Sprintf("blackhole(%s) %s=%v", target, dir, on),
		func(n *FaultNetwork) { n.SetBlackhole(target, dir, on) })
}

// DropAt schedules a probabilistic corrupt-free-cut rate on target.
func (p *Plan) DropAt(at time.Duration, target string, prob float64) *Plan {
	return p.Add(at, fmt.Sprintf("drop(%s) p=%.3f", target, prob),
		func(n *FaultNetwork) { n.SetDropProb(target, prob) })
}

// LatencyAt schedules a per-write latency distribution on target.
func (p *Plan) LatencyAt(at time.Duration, target string, d sim.Dist) *Plan {
	return p.Add(at, fmt.Sprintf("latency(%s) mean=%v", target, d.Mean()),
		func(n *FaultNetwork) { n.SetLatency(target, d) })
}

// Len returns the number of scheduled actions.
func (p *Plan) Len() int { return len(p.actions) }

// Horizon returns the offset of the last action.
func (p *Plan) Horizon() time.Duration {
	var h time.Duration
	for _, a := range p.actions {
		if a.At > h {
			h = a.At
		}
	}
	return h
}

// sorted returns the actions in firing order (stable on build order for
// equal times, mirroring the sim engine's FIFO tiebreak).
func (p *Plan) sorted() []Action {
	out := append([]Action(nil), p.actions...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Schedule renders the timeline deterministically — chaos tests assert
// that two plans built from the same seed render identically.
func (p *Plan) Schedule() string {
	var b strings.Builder
	for _, a := range p.sorted() {
		fmt.Fprintf(&b, "T+%v %s\n", a.At, a.Desc)
	}
	return b.String()
}

// Start schedules every action onto n's Scheduler relative to now and
// returns a cancel function for the not-yet-fired remainder.
func (p *Plan) Start(n *FaultNetwork) (cancel func()) {
	var (
		mu      sync.Mutex
		cancels []func()
	)
	for _, a := range p.sorted() {
		a := a
		c := n.sched.After(a.At, func() { a.Do(n) })
		cancels = append(cancels, c)
	}
	return func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range cancels {
			c()
		}
		cancels = nil
	}
}

// RandomPlan builds a reproducible chaos timeline: nFaults cut/heal pairs
// over the horizon, each against a seeded-random target, with outage
// lengths drawn from [horizon/20, horizon/4]. The same seed produces the
// identical plan.
func RandomPlan(seed int64, targets []string, horizon time.Duration, nFaults int) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{}
	if len(targets) == 0 || nFaults <= 0 || horizon <= 0 {
		return p
	}
	for i := 0; i < nFaults; i++ {
		target := targets[rng.Intn(len(targets))]
		// Leave the last quarter of the horizon fault-free so every
		// stream has room to recover before the run's assertions.
		start := time.Duration(rng.Int63n(int64(horizon * 3 / 4)))
		minOut := horizon / 20
		if minOut <= 0 {
			minOut = 1
		}
		outage := minOut + time.Duration(rng.Int63n(int64(horizon/4)))
		heal := start + outage
		if heal > horizon*3/4 {
			heal = horizon * 3 / 4
		}
		p.CutAt(start, target)
		p.HealAt(heal, target)
	}
	return p
}
