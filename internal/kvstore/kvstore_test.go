package kvstore

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func newTestCluster(t *testing.T, nodes, replicas int) *Cluster {
	t.Helper()
	regions := []string{"us-east", "eu-west", "ap-south"}
	ns := make([]*Node, nodes)
	for i := range ns {
		ns[i] = NewNode(fmt.Sprintf("kv%d", i), regions[i%len(regions)])
	}
	return MustNewCluster(ns, replicas)
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil, 1); err == nil {
		t.Error("empty cluster accepted")
	}
	n := NewNode("a", "r")
	if _, err := NewCluster([]*Node{n}, 2); err == nil {
		t.Error("replicas > nodes accepted")
	}
	if _, err := NewCluster([]*Node{n}, 0); err == nil {
		t.Error("replicas=0 accepted")
	}
	if _, err := NewCluster([]*Node{n, NewNode("a", "r2")}, 1); err == nil {
		t.Error("duplicate node id accepted")
	}
}

func TestReplicasForDeterministicAndDiverse(t *testing.T) {
	c := newTestCluster(t, 9, 3)
	r1 := c.ReplicasFor("/LVC/42")
	r2 := c.ReplicasFor("/LVC/42")
	if len(r1) != 3 {
		t.Fatalf("replica count = %d", len(r1))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("replica choice not deterministic")
		}
	}
	regions := map[string]bool{}
	for _, n := range r1 {
		regions[n.Region] = true
	}
	if len(regions) != 3 {
		t.Errorf("replicas span %d regions, want 3 (region diversity)", len(regions))
	}
}

func TestReplicasForSpreadsKeys(t *testing.T) {
	c := newTestCluster(t, 9, 3)
	primary := map[string]int{}
	for i := 0; i < 300; i++ {
		r := c.ReplicasFor(fmt.Sprintf("/topic/%d", i))
		primary[r[0].ID]++
	}
	if len(primary) < 5 {
		t.Errorf("only %d distinct primaries across 300 keys", len(primary))
	}
}

func TestReplicasMoreThanRegions(t *testing.T) {
	// 5 replicas but only 3 regions: second pass must fill.
	c := newTestCluster(t, 9, 5)
	r := c.ReplicasFor("k")
	if len(r) != 5 {
		t.Fatalf("got %d replicas", len(r))
	}
	seen := map[string]bool{}
	for _, n := range r {
		if seen[n.ID] {
			t.Fatal("duplicate node in replica set")
		}
		seen[n.ID] = true
	}
}

func TestSetAddRemoveMembers(t *testing.T) {
	c := newTestCluster(t, 6, 3)
	if _, err := c.SetAdd("topic", "hostA"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SetAdd("topic", "hostB"); err != nil {
		t.Fatal(err)
	}
	v, _, err := c.ReadOne("topic")
	if err != nil {
		t.Fatal(err)
	}
	got := v.Members()
	if len(got) != 2 || got[0] != "hostA" || got[1] != "hostB" {
		t.Errorf("members = %v", got)
	}
	if _, err := c.SetRemove("topic", "hostA"); err != nil {
		t.Fatal(err)
	}
	v, _, _ = c.ReadOne("topic")
	got = v.Members()
	if len(got) != 1 || got[0] != "hostB" {
		t.Errorf("after remove: %v", got)
	}
}

func TestWriteFailsWithoutQuorum(t *testing.T) {
	c := newTestCluster(t, 3, 3)
	replicas := c.ReplicasFor("k")
	replicas[0].SetUp(false)
	replicas[1].SetUp(false)
	if _, err := c.SetAdd("k", "m"); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("err = %v, want ErrNoQuorum", err)
	}
	if c.QuorumAvailable("k") {
		t.Error("QuorumAvailable true with 2/3 down")
	}
	replicas[1].SetUp(true)
	if _, err := c.SetAdd("k", "m"); err != nil {
		t.Errorf("write with 2/3 up failed: %v", err)
	}
	if !c.QuorumAvailable("k") {
		t.Error("QuorumAvailable false with 2/3 up")
	}
}

func TestReadOneFallsBackToSecondary(t *testing.T) {
	c := newTestCluster(t, 6, 3)
	if _, err := c.SetAdd("k", "m"); err != nil {
		t.Fatal(err)
	}
	replicas := c.ReplicasFor("k")
	replicas[0].SetUp(false)
	v, n, err := c.ReadOne("k")
	if err != nil {
		t.Fatal(err)
	}
	if n == replicas[0] {
		t.Error("read served by down primary")
	}
	if len(v.Members()) != 1 {
		t.Errorf("members = %v", v.Members())
	}
}

func TestReadOneAllDown(t *testing.T) {
	c := newTestCluster(t, 3, 3)
	for _, n := range c.ReplicasFor("k") {
		n.SetUp(false)
	}
	if _, _, err := c.ReadOne("k"); !errors.Is(err, ErrNodeDown) {
		t.Errorf("err = %v", err)
	}
}

func TestStaleReplicaPatchedToConsistency(t *testing.T) {
	c := newTestCluster(t, 3, 3)
	replicas := c.ReplicasFor("k")
	// Take one replica down; write succeeds on the other two.
	replicas[2].SetUp(false)
	if _, err := c.SetAdd("k", "m1"); err != nil {
		t.Fatal(err)
	}
	replicas[2].SetUp(true)
	// The recovered replica is stale.
	v2, _ := replicas[2].View("k")
	if len(v2.Members()) != 0 {
		t.Fatalf("replica 2 should be stale, has %v", v2.Members())
	}
	// ReadAll + Merge + Patch converges it.
	resp := c.ReadAll("k")
	views := make([]SetView, 0, len(resp))
	for _, r := range resp {
		if r.Err == nil {
			views = append(views, r.View)
		}
	}
	merged := Merge(views...)
	if got := merged.Members(); len(got) != 1 || got[0] != "m1" {
		t.Fatalf("merged = %v", got)
	}
	if patched := c.Patch("k", merged); patched == 0 {
		t.Error("no replica patched")
	}
	v2, _ = replicas[2].View("k")
	if got := v2.Members(); len(got) != 1 || got[0] != "m1" {
		t.Errorf("replica 2 after patch = %v", got)
	}
	// A second patch is a no-op.
	if patched := c.Patch("k", merged); patched != 0 {
		t.Errorf("second patch touched %d replicas", patched)
	}
}

func TestMergeLWWPrefersNewerVersion(t *testing.T) {
	a := SetView{"m": {Version: 1, Present: true}}
	b := SetView{"m": {Version: 2, Present: false}} // newer tombstone
	merged := Merge(a, b)
	if len(merged.Members()) != 0 {
		t.Errorf("tombstone lost: %v", merged.Members())
	}
	merged = Merge(b, a) // order independence
	if len(merged.Members()) != 0 {
		t.Errorf("merge not order independent: %v", merged.Members())
	}
}

func TestRemoveThenAddWins(t *testing.T) {
	c := newTestCluster(t, 3, 3)
	if _, err := c.SetAdd("k", "m"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SetRemove("k", "m"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SetAdd("k", "m"); err != nil {
		t.Fatal(err)
	}
	v, _, _ := c.ReadOne("k")
	if got := v.Members(); len(got) != 1 {
		t.Errorf("members = %v, want [m]", got)
	}
}

func TestNodeKeys(t *testing.T) {
	n := NewNode("a", "r")
	if n.Keys() != 0 {
		t.Error("fresh node has keys")
	}
	_ = n.apply("k1", "m", record{Version: 1, Present: true})
	_ = n.apply("k2", "m", record{Version: 2, Present: true})
	if n.Keys() != 2 {
		t.Errorf("Keys = %d", n.Keys())
	}
}

func TestDownNodeRejectsReadsAndWrites(t *testing.T) {
	n := NewNode("a", "r")
	n.SetUp(false)
	if err := n.apply("k", "m", record{Version: 1, Present: true}); !errors.Is(err, ErrNodeDown) {
		t.Errorf("apply err = %v", err)
	}
	if _, err := n.View("k"); !errors.Is(err, ErrNodeDown) {
		t.Errorf("view err = %v", err)
	}
}

// Property: merging any permutation of replica views yields the same
// member set (merge is commutative and idempotent).
func TestMergeCommutativeProperty(t *testing.T) {
	f := func(versions [6]uint8, present [6]bool) bool {
		a := SetView{}
		b := SetView{}
		for i := 0; i < 3; i++ {
			a[Member(fmt.Sprintf("m%d", i))] = VersionedMember{Version: uint64(versions[i]), Present: present[i]}
			b[Member(fmt.Sprintf("m%d", i))] = VersionedMember{Version: uint64(versions[i+3]), Present: present[i+3]}
		}
		ab := Merge(a, b).Members()
		ba := Merge(b, a).Members()
		if len(ab) != len(ba) {
			return false
		}
		for i := range ab {
			if ab[i] != ba[i] {
				return false
			}
		}
		// Idempotence.
		again := Merge(Merge(a, b), Merge(a, b)).Members()
		if len(again) != len(ab) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
