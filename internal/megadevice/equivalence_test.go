package megadevice

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/core"
	"bladerunner/internal/device"
	"bladerunner/internal/socialgraph"
)

// TestEquivalenceWithDeviceModel drives two identical clusters with the
// same publish sequence — one fleet of 50 full device.Device clients, one
// 50-device megadevice Fleet — cuts the POP both fleets start on so both
// reconnect through backoff, and asserts the per-stream delivered payload
// sequences are IDENTICAL. This is the fidelity contract of the trunk
// model: sharing one real stream per (trunk, topic) must not change what
// any single device observes.
//
// Delivery around (re)attachment is inherently racy — a publish issued
// while a stream is mid-subscribe may or may not reach it — so each
// measured phase begins with a lockstep warm-up barrier: publish one warm
// delta per round to BOTH clusters and repeat until every stream on both
// sides has applied the newest warm seq. Per-stream BURST ordering then
// guarantees every later publish is delivered to every stream, and issuing
// the publishes in the same order on both clusters makes pylon's striped
// event IDs (the delta seqs) identical. Warm deltas are excluded from the
// comparison; the phase deltas must match exactly.
func TestEquivalenceWithDeviceModel(t *testing.T) {
	const (
		eqN     = 50
		eqAreas = 10
		eqK     = 3 // publishes per area per phase
	)
	ownerOf := func(a int) uint64 { return uint64(500 + a) }
	subOf := func(a int) string {
		return fmt.Sprintf("typingIndicator(threadID: %d, peer: %d)", a, ownerOf(a))
	}

	// Identical clusters; blocks off so the fleet's representative viewer
	// and every device viewer pass the same (trivial) privacy check.
	mkCfg := func() core.Config {
		cfg := core.DefaultConfig()
		cfg.Graph.BlockProb = 0
		return cfg
	}
	c1 := core.MustNewCluster(mkCfg(), nil)
	defer c1.Close()
	c2 := core.MustNewCluster(mkCfg(), nil)
	defer c2.Close()
	pops := c1.POPTargets()

	// Device-model fleet on c1: one device per virtual device, one stream
	// each, a collector goroutine recording the delivered seq trace.
	type devRec struct {
		st   *device.Stream
		mu   sync.Mutex
		seqs []uint64
	}
	devs := make([]*device.Device, eqN)
	recs := make([]*devRec, eqN)
	for i := 0; i < eqN; i++ {
		d := c1.NewDeviceVia(c1.Net, device.Config{
			User:        socialgraph.UserID(100 + i),
			POPs:        pops,
			BackoffSeed: int64(i) + 1,
		})
		if err := d.Connect(); err != nil {
			t.Fatalf("device %d connect: %v", i, err)
		}
		st, err := d.Subscribe(apps.AppTyping, subOf(i%eqAreas), nil)
		if err != nil {
			t.Fatalf("device %d subscribe: %v", i, err)
		}
		r := &devRec{st: st}
		go func() {
			for delta := range st.Updates {
				r.mu.Lock()
				r.seqs = append(r.seqs, delta.Seq)
				r.mu.Unlock()
			}
		}()
		devs[i], recs[i] = d, r
		defer d.Close()
	}

	// megadevice fleet on c2, same shape: device i's single stream is
	// sid i (streams are added in device order), area i%eqAreas.
	areas := make([]Area, eqAreas)
	for a := range areas {
		areas[a] = Area{
			App:          apps.AppTyping,
			Subscription: subOf(a),
			Topic:        string(apps.TypingTopic(uint64(a), ownerOf(a))),
			User:         999,
		}
	}
	fleet, err := New(Config{
		Devices:          eqN,
		Areas:            areas,
		StreamArea:       func(dev uint32, _ int) uint32 { return dev % eqAreas },
		POPs:             c2.POPTargets(),
		Dialer:           c2.Net,
		Seed:             42,
		RecordDeliveries: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	fleet.ConnectAll(0)

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitFor("fleet connected", func() bool { return fleet.ConnectedCount() == eqN })

	publishBoth := func(a int) {
		t.Helper()
		expr := fmt.Sprintf(`setTyping(threadID: %d, on: "true")`, a)
		if _, err := c1.WAS.Mutate(socialgraph.UserID(ownerOf(a)), expr); err != nil {
			t.Fatalf("c1 publish area %d: %v", a, err)
		}
		if _, err := c2.WAS.Mutate(socialgraph.UserID(ownerOf(a)), expr); err != nil {
			t.Fatalf("c2 publish area %d: %v", a, err)
		}
	}

	// converged reports whether every stream of area a — device-model and
	// fleet — has applied the same seq, and returns that seq.
	converged := func(a int) (uint64, bool) {
		var v uint64
		for i := a; i < eqN; i += eqAreas {
			ds := recs[i].st.LastSeq()
			fs := fleet.LastSeq(uint32(i))
			if v == 0 {
				v = ds
			}
			if ds != v || fs != v || v == 0 {
				return 0, false
			}
		}
		return v, true
	}

	// warmBarrier publishes lockstep warm rounds on every area until both
	// sides fully converge, returning the per-area warm high-water seq.
	// Publish counts stay identical across clusters by construction, so
	// the event-ID streams stay aligned.
	warmBarrier := func(phase string) [eqAreas]uint64 {
		t.Helper()
		var water [eqAreas]uint64
		for a := 0; a < eqAreas; a++ {
			deadline := time.Now().Add(25 * time.Second)
			for {
				prev, _ := converged(a)
				publishBoth(a)
				round := time.Now().Add(300 * time.Millisecond)
				ok := false
				for time.Now().Before(round) {
					if v, c := converged(a); c && v > prev {
						water[a], ok = v, true
						break
					}
					time.Sleep(time.Millisecond)
				}
				if ok {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("%s: area %d never converged", phase, a)
				}
			}
		}
		return water
	}

	// phase runs eqK lockstep publishes per area; every publish must reach
	// every stream on both sides (the warm barrier guarantees it). Returns
	// the measured seqs per area, in delivery order.
	phase := func(name string) [eqAreas][]uint64 {
		t.Helper()
		var want [eqAreas][]uint64
		for k := 0; k < eqK; k++ {
			for a := 0; a < eqAreas; a++ {
				prev, c := converged(a)
				if !c {
					t.Fatalf("%s: area %d not settled before publish %d", name, a, k)
				}
				publishBoth(a)
				waitFor(fmt.Sprintf("%s area %d publish %d", name, a, k), func() bool {
					v, c := converged(a)
					return c && v > prev
				})
				v, _ := converged(a)
				want[a] = append(want[a], v)
			}
		}
		return want
	}

	warmBarrier("phase1 warm")
	want1 := phase("phase1")

	// Sever the POP everyone started on, on BOTH clusters. Both models
	// rotate to the next POP through jittered backoff and re-attach.
	c1.Net.SetDown(pops[0], true)
	c2.Net.SetDown(pops[0], true)
	waitFor("device fleet reconnect", func() bool {
		for _, d := range devs {
			if !d.Connected() {
				return false
			}
		}
		return true
	})
	waitFor("mega fleet reconnect", func() bool { return fleet.ConnectedCount() == eqN })

	warmBarrier("phase2 warm")
	want2 := phase("phase2")

	c1.Quiesce()
	c2.Quiesce()
	time.Sleep(50 * time.Millisecond)

	// Compare: per stream, the delivered trace filtered to the measured
	// phase seqs must equal the expected sequence exactly — same deltas,
	// same order, no gaps, no duplicates, on both models.
	for i := 0; i < eqN; i++ {
		a := i % eqAreas
		expected := append(append([]uint64(nil), want1[a]...), want2[a]...)
		inExpected := make(map[uint64]bool, len(expected))
		for _, s := range expected {
			inExpected[s] = true
		}
		filter := func(trace []uint64) []uint64 {
			out := make([]uint64, 0, len(expected))
			for _, s := range trace {
				if inExpected[s] {
					out = append(out, s)
				}
			}
			return out
		}
		recs[i].mu.Lock()
		devTrace := filter(recs[i].seqs)
		recs[i].mu.Unlock()
		fleetTrace := filter(fleet.DeliveredSeqs(uint32(i)))
		if !equalSeqs(devTrace, expected) {
			t.Errorf("device %d trace %v != expected %v", i, devTrace, expected)
		}
		if !equalSeqs(fleetTrace, expected) {
			t.Errorf("fleet stream %d trace %v != expected %v", i, fleetTrace, expected)
		}
		if !equalSeqs(devTrace, fleetTrace) {
			t.Errorf("stream %d diverged: device %v vs fleet %v", i, devTrace, fleetTrace)
		}
	}
}

func equalSeqs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
