// Package burst implements BURST (Bladerunner Unified Request Stream
// Transport), the application-level request-stream protocol of paper §3.5.
//
// BURST connects client devices to BRASS instances across multiple hops
// (device → POP → reverse proxy → BRASS). Each request-stream is a
// first-class entity: it is routed independently, fails independently, and
// is multiplexed with other streams over whatever underlying byte transport
// a hop uses (here: any net.Conn, including net.Pipe and TCP).
//
// The transport guarantee mirrors TCP's: deltas sent on a stream arrive in
// order, and failures are signalled to the participating nodes. Because a
// stream spans several participants, failure signalling is richer than a
// socket error: flow_status deltas carry failure and recovery notifications
// to every node on the path (paper §4, axiom 1). rewrite_request deltas let
// the serving BRASS replace the stored subscription request used for
// reconnection, enabling sticky routing, resumption, and redirects.
package burst

import (
	"encoding/json"
	"fmt"

	"bladerunner/internal/trace"
)

// StreamID identifies a request-stream within one session. IDs are chosen
// by the stream initiator (the device, or a proxy acting for one).
type StreamID uint64

// Header carries the properties of a subscription request: the application
// name, the GraphQL subscription / topic, client version, sticky-routing
// hints, resume tokens, and anything a BRASS patches in via rewrites. The
// paper standardizes on JSON for headers; so do we.
type Header map[string]string

// Well-known header keys used across the system.
const (
	// HdrApp names the Bladerunner application (e.g. "livecomments").
	HdrApp = "app"
	// HdrSubscription is the client's subscription expression, resolved
	// by the WAS into a concrete topic.
	HdrSubscription = "subscription"
	// HdrTopic is the concrete Pylon topic (filled by BRASS/WAS).
	HdrTopic = "topic"
	// HdrUser identifies the subscribing user.
	HdrUser = "user"
	// HdrStickyBRASS pins the stream to a BRASS instance on reconnect
	// (sticky routing; written by a rewrite as soon as a stream lands).
	HdrStickyBRASS = "sticky-brass"
	// HdrResumeSeq is the sequence number of the last delta the client
	// received (resumption; maintained by rewrites).
	HdrResumeSeq = "resume-seq"
	// HdrClientVersion expresses client capabilities to the BRASS.
	HdrClientVersion = "client-version"
	// HdrCursor is the durable-log resume cursor ("epoch.seq", or the
	// sentinels internal/durlog accepts): the server rewrites it forward
	// as deltas are delivered, the client clamps it down to what it
	// actually applied before resubscribing, and the serving BRASS
	// answers it with a gap-free log catch-up — or expires it, NEVER
	// fabricating one (the client then falls back to a WAS resync). Like
	// HdrAdmissionState it lives in the stored request, so failover
	// rewrites and resubscriptions carry it across hosts.
	HdrCursor = "cursor"
	// HdrTraceStream is a stable stream identity stamped by the device at
	// subscribe time. Rewrites and resubscriptions preserve it (rewrites
	// patch individual keys; resubscribe replays the stored request), so
	// spans recorded before and after a recovery join on the same value —
	// the trace plane's view of "the same stream".
	HdrTraceStream = "trace-stream"
)

// Clone returns a deep copy of the header.
func (h Header) Clone() Header {
	if h == nil {
		return nil
	}
	out := make(Header, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// FrameType discriminates the frames exchanged on a BURST session.
type FrameType uint8

// Frame types. Subscribe/Cancel/Ack flow upstream (toward the BRASS);
// Batch flows downstream; Ping/Pong flow both ways for liveness.
const (
	FrameSubscribe FrameType = iota + 1
	FrameCancel
	FrameAck
	FrameBatch
	FramePing
	FramePong
)

func (t FrameType) String() string {
	switch t {
	case FrameSubscribe:
		return "subscribe"
	case FrameCancel:
		return "cancel"
	case FrameAck:
		return "ack"
	case FrameBatch:
		return "batch"
	case FramePing:
		return "ping"
	case FramePong:
		return "pong"
	default:
		return fmt.Sprintf("frametype(%d)", uint8(t))
	}
}

// Subscribe is the payload of a FrameSubscribe: it instantiates a stream.
type Subscribe struct {
	// Header indicates the properties of the request, visible to and
	// interpreted by proxies for routing.
	Header Header `json:"header"`
	// Body is an opaque blob only the target BRASS understands.
	Body []byte `json:"body,omitempty"`
}

// Cancel is the payload of a FrameCancel: it terminates a stream from the
// client side.
type Cancel struct {
	Reason string `json:"reason,omitempty"`
}

// Ack is the payload of a FrameAck: the client acknowledges deltas up to
// and including Seq (used by applications implementing reliable delivery).
type Ack struct {
	Seq uint64 `json:"seq"`
}

// DeltaType discriminates the deltas inside a batch (paper §3.5).
type DeltaType uint8

// Delta types.
const (
	// DeltaPayload carries a social-graph update (GraphQL payload).
	DeltaPayload DeltaType = iota + 1
	// DeltaFlowStatus signals failure or recovery of the stream path.
	DeltaFlowStatus
	// DeltaRewriteRequest replaces the stored subscription request used
	// for reconnection.
	DeltaRewriteRequest
	// DeltaTermination ends the stream from the server side.
	DeltaTermination
)

func (t DeltaType) String() string {
	switch t {
	case DeltaPayload:
		return "payload"
	case DeltaFlowStatus:
		return "flow_status"
	case DeltaRewriteRequest:
		return "rewrite_request"
	case DeltaTermination:
		return "termination"
	default:
		return fmt.Sprintf("deltatype(%d)", uint8(t))
	}
}

// FlowCode enumerates flow_status conditions.
type FlowCode uint8

// Flow status codes.
const (
	// FlowDegraded: a path component failed; delivery may be lossy while
	// recovery is in progress.
	FlowDegraded FlowCode = iota + 1
	// FlowRecovered: the path healed; the stream remains intact but
	// deltas may have been dropped in between.
	FlowRecovered
	// FlowRerouted: the stream was re-established, possibly to a
	// different BRASS; the application decides how to resynchronize.
	FlowRerouted
)

func (c FlowCode) String() string {
	switch c {
	case FlowDegraded:
		return "degraded"
	case FlowRecovered:
		return "recovered"
	case FlowRerouted:
		return "rerouted"
	default:
		return fmt.Sprintf("flowcode(%d)", uint8(c))
	}
}

// Delta is one element of a server-to-client batch.
type Delta struct {
	Type DeltaType `json:"type"`
	// Seq is the application-assigned sequence number of a payload delta
	// (0 when unused).
	Seq uint64 `json:"seq,omitempty"`
	// Payload is the update body for DeltaPayload.
	Payload []byte `json:"payload,omitempty"`
	// Flow describes a DeltaFlowStatus.
	Flow FlowCode `json:"flow,omitempty"`
	// FlowDetail is a human-readable description of the flow event.
	FlowDetail string `json:"flow_detail,omitempty"`
	// Header is the replacement subscription header for
	// DeltaRewriteRequest.
	Header Header `json:"header,omitempty"`
	// Body is the replacement subscription body for DeltaRewriteRequest
	// (nil leaves the body unchanged).
	Body []byte `json:"body,omitempty"`
	// Reason describes a DeltaTermination.
	Reason string `json:"reason,omitempty"`
	// Trace is the trace context of the mutation that produced a payload
	// delta (zero when unsampled). It rides the wire so proxies and the
	// device can close their hop spans against the originating trace.
	Trace trace.ID `json:"trace,omitempty"`
}

// PayloadDelta builds a payload delta.
func PayloadDelta(seq uint64, payload []byte) Delta {
	return Delta{Type: DeltaPayload, Seq: seq, Payload: payload}
}

// FlowStatusDelta builds a flow_status delta.
func FlowStatusDelta(code FlowCode, detail string) Delta {
	return Delta{Type: DeltaFlowStatus, Flow: code, FlowDetail: detail}
}

// RewriteDelta builds a rewrite_request delta.
func RewriteDelta(h Header, body []byte) Delta {
	return Delta{Type: DeltaRewriteRequest, Header: h, Body: body}
}

// TerminationDelta builds a termination delta.
func TerminationDelta(reason string) Delta {
	return Delta{Type: DeltaTermination, Reason: reason}
}

// Batch is the payload of a FrameBatch: a group of deltas transmitted and
// applied atomically (paper §3.5: "processed client side atomically, in an
// all or nothing fashion").
type Batch struct {
	Deltas []Delta `json:"deltas"`
}

// Frame is one unit on the wire: a type, the stream it belongs to, and a
// JSON-encoded payload appropriate to the type. Ping/Pong frames have
// SID 0 and empty payloads.
type Frame struct {
	Type FrameType
	SID  StreamID
	// Payload is the JSON encoding of Subscribe/Cancel/Ack/Batch.
	Payload []byte
}

// EncodePayload marshals v into a frame payload.
func EncodePayload(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("burst: encode payload: %w", err)
	}
	return b, nil
}

// DecodeSubscribe parses a Subscribe payload.
func DecodeSubscribe(b []byte) (Subscribe, error) {
	var s Subscribe
	if err := json.Unmarshal(b, &s); err != nil {
		return Subscribe{}, fmt.Errorf("burst: decode subscribe: %w", err)
	}
	return s, nil
}

// DecodeCancel parses a Cancel payload.
func DecodeCancel(b []byte) (Cancel, error) {
	var c Cancel
	if err := json.Unmarshal(b, &c); err != nil {
		return Cancel{}, fmt.Errorf("burst: decode cancel: %w", err)
	}
	return c, nil
}

// DecodeAck parses an Ack payload.
func DecodeAck(b []byte) (Ack, error) {
	var a Ack
	if err := json.Unmarshal(b, &a); err != nil {
		return Ack{}, fmt.Errorf("burst: decode ack: %w", err)
	}
	return a, nil
}

// DecodeBatch parses a Batch payload.
func DecodeBatch(b []byte) (Batch, error) {
	var ba Batch
	if err := json.Unmarshal(b, &ba); err != nil {
		return Batch{}, fmt.Errorf("burst: decode batch: %w", err)
	}
	return ba, nil
}
