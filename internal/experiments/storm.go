package experiments

import (
	"fmt"
	"io"
	"time"

	"bladerunner/internal/edge"
	"bladerunner/internal/faults"
	"bladerunner/internal/metrics"
	"bladerunner/internal/sim"
)

// ReconnectStorm measures a mass-disconnect reconnect storm: one POP dies
// under a fleet of connected devices, heals after a fixed outage, and every
// device re-dials under a retry policy. It compares the fixed-delay policy
// (the old ReconnectDelay behaviour: every device retries on the same
// schedule, so the fleet hammers the healed POP in lockstep) against the
// jittered exponential backoff the recovery paths now share, reporting the
// peak dial rate the POP absorbs and the time until the whole fleet is back.
//
// The run is a model composition on the discrete-event kernel: devices are
// retry loops dialing through a FaultNetwork, so the whole storm is
// single-threaded and deterministic for a given seed.
func ReconnectStorm(seed int64) Result {
	const (
		devices = 2000
		outage  = 10 * time.Second
		base    = 500 * time.Millisecond
		bucket  = 250 * time.Millisecond
		horizon = 2 * time.Minute
	)

	type outcome struct {
		peakRate float64       // dials/sec in the worst bucket
		peakAt   time.Duration // offset of the worst bucket
		attempts float64       // total dial attempts
		fullRec  time.Duration // when the last device reconnected
		curve    []SeriesPoint
	}

	run := func(policy faults.BackoffPolicy) outcome {
		eng := sim.NewEngine(figStart)
		fn := faults.NewFaultNetwork(edge.NewPipeNetwork(), eng, seed)
		fn.Register("pop", func(rwc io.ReadWriteCloser) { _ = rwc.Close() })

		dials := metrics.NewTimeSeries(figStart, bucket, int(horizon/bucket))
		parent := faults.NewBackoff(policy, seed)
		var lastRec time.Duration

		for i := 0; i < devices; i++ {
			bo := parent.Child(int64(i) + 1)
			var attempt func()
			attempt = func() {
				dials.Inc(eng.Now())
				c, err := fn.Dial("pop")
				if err != nil {
					eng.After(bo.Next(), attempt)
					return
				}
				_ = c.Close()
				if rec := eng.Now().Sub(figStart); rec > lastRec {
					lastRec = rec
				}
			}
			// The cut at t=0 knocks every device off; each schedules its
			// first re-dial through its own backoff sequence.
			eng.After(bo.Next(), attempt)
		}
		new(faults.Plan).CutAt(0, "pop").HealAt(outage, "pop").Start(fn)

		eng.Run() // drains: every device stops retrying once it reconnects

		peak, idx := dials.Max()
		var curve []SeriesPoint
		for i := 0; i < dials.Buckets(); i++ {
			curve = append(curve, SeriesPoint{
				X: dials.BucketTime(i).Sub(figStart).Seconds(),
				Y: dials.Sum(i) / bucket.Seconds(),
			})
		}
		return outcome{
			peakRate: peak / bucket.Seconds(),
			peakAt:   time.Duration(idx) * bucket,
			attempts: dials.GrandTotal(),
			fullRec:  lastRec,
			curve:    curve,
		}
	}

	fixed := run(faults.BackoffPolicy{Base: base, Multiplier: 1, NoJitter: true})
	jittered := run(faults.BackoffPolicy{Base: base, Max: 8 * base, Multiplier: 2, Jitter: 0.5})

	r := Result{ID: "storm", Title: fmt.Sprintf(
		"Reconnect storm: %d devices, one POP down %v (fixed delay vs jittered backoff)",
		devices, outage)}
	rate := func(v float64) string { return fmt.Sprintf("%.0f/s", v) }
	r.AddRow("peak dial rate, fixed delay", "-", rate(fixed.peakRate),
		fmt.Sprintf("at T+%v: the fleet retries in lockstep", fixed.peakAt))
	r.AddRow("peak dial rate, jittered backoff", "-", rate(jittered.peakRate),
		fmt.Sprintf("at T+%v: jitter decorrelates the fleet", jittered.peakAt))
	r.AddRow("peak reduction", "-",
		fmt.Sprintf("%.1fx", fixed.peakRate/jittered.peakRate),
		"fixed peak / jittered peak")
	r.AddRow("dial attempts, fixed delay", "-", fmt.Sprintf("%.0f", fixed.attempts), "")
	r.AddRow("dial attempts, jittered backoff", "-", fmt.Sprintf("%.0f", jittered.attempts),
		"exponential growth retries less during the outage")
	r.AddRow("full fleet recovery, fixed delay", "-", fixed.fullRec.String(), "")
	r.AddRow("full fleet recovery, jittered backoff", "-", jittered.fullRec.String(),
		"bounded by the post-heal backoff step")
	r.AddSeries("fixed", fixed.curve)
	r.AddSeries("jittered", jittered.curve)
	return r
}
