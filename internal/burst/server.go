package burst

import (
	"fmt"
	"io"
	"sync"
)

// ServerHandler receives stream lifecycle events on the upstream (BRASS or
// proxy) side of a session. Callbacks run on the session's read goroutine.
type ServerHandler interface {
	// OnSubscribe is invoked when a new stream is requested. The stream
	// is already registered; the handler may send batches immediately.
	OnSubscribe(st *ServerStream, sub Subscribe)
	// OnCancel is invoked when the peer cancels a stream. The stream is
	// already unregistered.
	OnCancel(st *ServerStream, c Cancel)
	// OnAck is invoked when the peer acknowledges deltas.
	OnAck(st *ServerStream, a Ack)
	// OnSessionClose is invoked once when the session dies; all streams
	// passed in were open at that moment.
	OnSessionClose(streams []*ServerStream, err error)
}

// ServerSession is the upstream endpoint of a BURST session: it tracks the
// streams the peer has opened and lets the application push delta batches
// down each of them.
type ServerSession struct {
	sess    *Session
	handler ServerHandler

	mu      sync.Mutex
	streams map[StreamID]*ServerStream
	closed  bool
}

// ServerStream is one request-stream from the server's perspective.
type ServerStream struct {
	srv *ServerSession
	sid StreamID

	mu         sync.Mutex
	sub        Subscribe
	terminated bool
	// pending holds deltas queued for the next Flush; coalescing several
	// deltas (payloads plus rewrites) into one batch frame halves the
	// per-update frame count on chatty streams.
	pending []Delta
	// pendingLimit bounds pending (0 = unbounded). When a Queue would
	// leave more than pendingLimit deltas buffered, the OLDEST payload
	// deltas are shed to fit; control deltas (flow_status,
	// rewrite_request, termination) are never shed, even if that means
	// exceeding the bound. onShed observes each shed delta.
	pendingLimit int
	onShed       func(Delta)

	// State is free space for the application (e.g. the BRASS keeps its
	// per-stream filter state here). Synchronize externally if accessed
	// from multiple goroutines.
	State any
}

// NewServerSession wraps rwc as the upstream end of a BURST session.
func NewServerSession(name string, rwc io.ReadWriteCloser, handler ServerHandler) *ServerSession {
	if handler == nil {
		panic("burst: NewServerSession with nil handler")
	}
	s := &ServerSession{
		handler: handler,
		streams: make(map[StreamID]*ServerStream),
	}
	s.sess = NewSession(name, rwc, serverDispatch{s})
	return s
}

// Name returns the underlying session name.
func (s *ServerSession) Name() string { return s.sess.Name() }

// Done is closed when the underlying session has shut down.
func (s *ServerSession) Done() <-chan struct{} { return s.sess.Done() }

// Close tears the session down.
func (s *ServerSession) Close() error { return s.sess.Close() }

// Streams returns the currently open streams.
func (s *ServerSession) Streams() []*ServerStream {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*ServerStream, 0, len(s.streams))
	for _, st := range s.streams {
		out = append(out, st)
	}
	return out
}

// Stream returns the stream with the given id, or nil.
func (s *ServerSession) Stream(sid StreamID) *ServerStream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[sid]
}

// SID returns the stream id.
func (st *ServerStream) SID() StreamID { return st.sid }

// Request returns a copy of the subscription request that opened the
// stream, including any rewrites this server has issued since.
func (st *ServerStream) Request() Subscribe {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := Subscribe{Header: st.sub.Header.Clone()}
	if st.sub.Body != nil {
		out.Body = append([]byte(nil), st.sub.Body...)
	}
	return out
}

// SendBatch transmits deltas as one atomic batch.
func (st *ServerStream) SendBatch(deltas ...Delta) error {
	st.mu.Lock()
	if st.terminated {
		st.mu.Unlock()
		return fmt.Errorf("stream %d: %w", st.sid, ErrStreamClosed)
	}
	st.mu.Unlock()
	return st.srv.sess.SendMsg(FrameBatch, st.sid, Batch{Deltas: deltas})
}

// Queue buffers deltas for the stream's next Flush instead of sending them
// immediately. Use it to coalesce the deltas of one application decision —
// a payload push plus a state rewrite, several ranked payloads — into a
// single batch frame. Queued deltas are not visible to the peer until
// Flush.
func (st *ServerStream) Queue(deltas ...Delta) error {
	st.mu.Lock()
	if st.terminated {
		st.mu.Unlock()
		return fmt.Errorf("stream %d: %w", st.sid, ErrStreamClosed)
	}
	st.pending = append(st.pending, deltas...)
	var shed []Delta
	if st.pendingLimit > 0 && len(st.pending) > st.pendingLimit {
		// Shed the oldest payload deltas until the bound holds; a live
		// view wants the freshest update, and control deltas always keep
		// their place.
		over := len(st.pending) - st.pendingLimit
		kept := st.pending[:0]
		for _, d := range st.pending {
			if over > 0 && d.Type == DeltaPayload {
				shed = append(shed, d)
				over--
				continue
			}
			kept = append(kept, d)
		}
		for i := len(kept); i < len(st.pending); i++ {
			st.pending[i] = Delta{}
		}
		st.pending = kept
	}
	onShed := st.onShed
	st.mu.Unlock()
	if onShed != nil {
		for _, d := range shed {
			onShed(d)
		}
	}
	return nil
}

// SetPendingLimit bounds the stream's Queue/Flush buffer at limit deltas
// (0 removes the bound). onShed, if non-nil, observes every payload delta
// shed by the bound — callers use it to count sheds and signal degraded
// mode; it runs outside the stream lock.
func (st *ServerStream) SetPendingLimit(limit int, onShed func(Delta)) {
	st.mu.Lock()
	st.pendingLimit = limit
	st.onShed = onShed
	st.mu.Unlock()
}

// QueueRewrite buffers a rewrite_request delta and updates the server's
// stored request immediately (the server's view of the reconnect state must
// not lag its own decisions; the peer converges at Flush).
func (st *ServerStream) QueueRewrite(h Header, body []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.terminated {
		return fmt.Errorf("stream %d: %w", st.sid, ErrStreamClosed)
	}
	if h != nil {
		st.sub.Header = h.Clone()
	}
	if body != nil {
		st.sub.Body = append([]byte(nil), body...)
	}
	st.pending = append(st.pending, RewriteDelta(h, body))
	return nil
}

// QueueRewriteHeaderField buffers a single-key header rewrite (see
// RewriteHeaderField).
func (st *ServerStream) QueueRewriteHeaderField(key, value string) error {
	st.mu.Lock()
	h := st.sub.Header.Clone()
	st.mu.Unlock()
	if h == nil {
		h = Header{}
	}
	h[key] = value
	return st.QueueRewrite(h, nil)
}

// Flush sends every queued delta as one atomic batch frame and returns the
// deltas it sent (nil for an empty queue, which is a no-op). Callers
// serialize Flush with their Queue calls (in BRASS both run on the
// instance event loop).
func (st *ServerStream) Flush() ([]Delta, error) {
	st.mu.Lock()
	if st.terminated {
		st.mu.Unlock()
		return nil, fmt.Errorf("stream %d: %w", st.sid, ErrStreamClosed)
	}
	deltas := st.pending
	st.pending = nil
	st.mu.Unlock()
	if len(deltas) == 0 {
		return nil, nil
	}
	if err := st.srv.sess.SendMsg(FrameBatch, st.sid, Batch{Deltas: deltas}); err != nil {
		return nil, err
	}
	return deltas, nil
}

// Rewrite sends a rewrite_request delta and updates the server's own copy
// of the stored request, keeping both ends of the stream (and the proxies
// in between, which snoop batches) in agreement about the reconnect state.
func (st *ServerStream) Rewrite(h Header, body []byte) error {
	st.mu.Lock()
	if st.terminated {
		st.mu.Unlock()
		return fmt.Errorf("stream %d: %w", st.sid, ErrStreamClosed)
	}
	if h != nil {
		st.sub.Header = h.Clone()
	}
	if body != nil {
		st.sub.Body = append([]byte(nil), body...)
	}
	st.mu.Unlock()
	return st.srv.sess.SendMsg(FrameBatch, st.sid, Batch{Deltas: []Delta{RewriteDelta(h, body)}})
}

// RewriteHeaderField patches a single header key, preserving the rest —
// the common form of rewrite (sticky routing, resume tokens).
func (st *ServerStream) RewriteHeaderField(key, value string) error {
	st.mu.Lock()
	h := st.sub.Header.Clone()
	st.mu.Unlock()
	if h == nil {
		h = Header{}
	}
	h[key] = value
	return st.Rewrite(h, nil)
}

// Terminate ends the stream from the server side with a termination delta.
func (st *ServerStream) Terminate(reason string) error {
	st.mu.Lock()
	if st.terminated {
		st.mu.Unlock()
		return nil
	}
	st.terminated = true
	st.mu.Unlock()
	err := st.srv.sess.SendMsg(FrameBatch, st.sid, Batch{Deltas: []Delta{TerminationDelta(reason)}})
	st.srv.removeStream(st.sid)
	return err
}

func (s *ServerSession) removeStream(sid StreamID) {
	s.mu.Lock()
	delete(s.streams, sid)
	s.mu.Unlock()
}

type serverDispatch struct{ s *ServerSession }

func (d serverDispatch) HandleFrame(f Frame) {
	s := d.s
	switch f.Type {
	case FrameSubscribe:
		sub, err := DecodeSubscribe(f.Payload)
		if err != nil {
			return
		}
		st := &ServerStream{srv: s, sid: f.SID, sub: sub}
		s.mu.Lock()
		if _, dup := s.streams[f.SID]; dup {
			s.mu.Unlock()
			return // duplicate sid: protocol violation, drop
		}
		s.streams[f.SID] = st
		s.mu.Unlock()
		s.handler.OnSubscribe(st, sub)
	case FrameCancel:
		c, err := DecodeCancel(f.Payload)
		if err != nil {
			return
		}
		s.mu.Lock()
		st := s.streams[f.SID]
		delete(s.streams, f.SID)
		s.mu.Unlock()
		if st != nil {
			st.mu.Lock()
			st.terminated = true
			st.mu.Unlock()
			s.handler.OnCancel(st, c)
		}
	case FrameAck:
		a, err := DecodeAck(f.Payload)
		if err != nil {
			return
		}
		s.mu.Lock()
		st := s.streams[f.SID]
		s.mu.Unlock()
		if st != nil {
			s.handler.OnAck(st, a)
		}
	}
}

func (d serverDispatch) HandleClose(err error) {
	s := d.s
	s.mu.Lock()
	s.closed = true
	streams := make([]*ServerStream, 0, len(s.streams))
	for _, st := range s.streams {
		st.mu.Lock()
		st.terminated = true
		st.mu.Unlock()
		streams = append(streams, st)
	}
	s.streams = make(map[StreamID]*ServerStream)
	s.mu.Unlock()
	s.handler.OnSessionClose(streams, err)
}

// ServerHandlerFuncs adapts plain functions to ServerHandler.
type ServerHandlerFuncs struct {
	Subscribe    func(st *ServerStream, sub Subscribe)
	Cancel       func(st *ServerStream, c Cancel)
	Ack          func(st *ServerStream, a Ack)
	SessionClose func(streams []*ServerStream, err error)
}

// OnSubscribe implements ServerHandler.
func (h ServerHandlerFuncs) OnSubscribe(st *ServerStream, sub Subscribe) {
	if h.Subscribe != nil {
		h.Subscribe(st, sub)
	}
}

// OnCancel implements ServerHandler.
func (h ServerHandlerFuncs) OnCancel(st *ServerStream, c Cancel) {
	if h.Cancel != nil {
		h.Cancel(st, c)
	}
}

// OnAck implements ServerHandler.
func (h ServerHandlerFuncs) OnAck(st *ServerStream, a Ack) {
	if h.Ack != nil {
		h.Ack(st, a)
	}
}

// OnSessionClose implements ServerHandler.
func (h ServerHandlerFuncs) OnSessionClose(streams []*ServerStream, err error) {
	if h.SessionClose != nil {
		h.SessionClose(streams, err)
	}
}
