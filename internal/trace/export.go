package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// chromeEvent is one entry of the Chrome trace_event JSON format
// (chrome://tracing, Perfetto). "X" events are complete spans with a
// microsecond timestamp and duration; "M" events name the processes.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace emits spans as Chrome trace_event JSON. Each collecting
// process becomes a pid (named via metadata events); each trace becomes a
// tid, so one mutation's hops line up as one row per process in the
// viewer. Timestamps are microseconds relative to the earliest span.
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	procs := make(map[string]int)
	var procNames []string
	for _, d := range spans {
		if _, ok := procs[d.Proc]; !ok {
			procs[d.Proc] = 0
			procNames = append(procNames, d.Proc)
		}
	}
	sort.Strings(procNames)
	for i, name := range procNames {
		procs[name] = i + 1
	}

	tids := make(map[ID]int)
	var epoch time.Time
	for i, d := range spans {
		if i == 0 || d.Start.Before(epoch) {
			epoch = d.Start
		}
		if _, ok := tids[d.Trace]; !ok {
			tids[d.Trace] = len(tids) + 1
		}
	}

	var f chromeFile
	f.DisplayTimeUnit = "ms"
	for name, pid := range procs {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	sort.Slice(f.TraceEvents, func(i, j int) bool { return f.TraceEvents[i].Pid < f.TraceEvents[j].Pid })

	for _, d := range spans {
		args := map[string]any{"trace": fmt.Sprintf("%016x", uint64(d.Trace))}
		for _, a := range d.Attrs {
			args[a.Key] = a.Value
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: d.Hop,
			Cat:  "bladerunner",
			Ph:   "X",
			Ts:   float64(d.Start.Sub(epoch)) / float64(time.Microsecond),
			Dur:  float64(d.End.Sub(d.Start)) / float64(time.Microsecond),
			Pid:  procs[d.Proc],
			Tid:  tids[d.Trace],
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}
