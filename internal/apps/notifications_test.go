package apps

import (
	"encoding/json"
	"fmt"
	"testing"

	"bladerunner/internal/burst"
	"bladerunner/internal/socialgraph"
)

func TestNotificationsBadgeAndResume(t *testing.T) {
	e := newEnv(t)
	cli := e.dial(t)
	user := socialgraph.UserID(60)
	actor := socialgraph.UserID(61)
	st := e.subscribe(t, cli, AppNotifications, "websiteNotifications", user, nil)
	waitFor(t, "sub", func() bool {
		return len(e.pylon.Subscribers(NotifTopic(uint64(user)))) == 1
	})

	// Two notifications: the badge counts up.
	for i := 1; i <= 2; i++ {
		if _, err := e.was.Mutate(actor,
			fmt.Sprintf(`notify(user: 60, kind: "mention", text: "n%d")`, i)); err != nil {
			t.Fatal(err)
		}
	}
	for want := uint64(1); want <= 2; want++ {
		d := recvPayload(t, st)
		var p NotificationPayload
		if err := json.Unmarshal(d.Payload, &p); err != nil {
			t.Fatal(err)
		}
		if p.Unseen != want || p.Kind != "mention" || p.Actor != uint64(actor) {
			t.Errorf("notif = %+v, want unseen=%d", p, want)
		}
	}
	// Badge state persisted in the header via rewrites.
	waitFor(t, "badge header", func() bool {
		return st.Request().Header[HdrUnseenCount] == "2"
	})

	// The user opens the jewel: ack resets the badge.
	if err := st.Ack(0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "badge reset", func() bool {
		return st.Request().Header[HdrUnseenCount] == "0"
	})

	// A reconnecting device restores its badge from the header.
	saved := st.Request()
	saved.Header[HdrUnseenCount] = "7"
	cli2 := e.dial(t)
	st2, err := cli2.Subscribe(saved)
	if err != nil {
		t.Fatal(err)
	}
	// The topic is already Pylon-subscribed via the first stream; wait for
	// the second stream's server-side open to complete instead.
	waitFor(t, "second stream open", func() bool {
		return e.host.StreamsOpened.Value() >= 2
	})
	if _, err := e.was.Mutate(actor, `notify(user: 60, kind: "like", text: "again")`); err != nil {
		t.Fatal(err)
	}
	d := recvPayload(t, st2)
	var p NotificationPayload
	_ = json.Unmarshal(d.Payload, &p)
	if p.Unseen != 8 {
		t.Errorf("restored badge continued at %d, want 8", p.Unseen)
	}
}

func TestNotificationsPrivacyFilter(t *testing.T) {
	e := newEnv(t)
	cli := e.dial(t)
	user := socialgraph.UserID(62)
	blocked := socialgraph.UserID(63)
	e.graph.Block(user, blocked)
	st := e.subscribe(t, cli, AppNotifications, "websiteNotifications", user, nil)
	waitFor(t, "sub", func() bool {
		return len(e.pylon.Subscribers(NotifTopic(uint64(user)))) == 1
	})
	if _, err := e.was.Mutate(blocked, `notify(user: 62, kind: "poke", text: "hi")`); err != nil {
		t.Fatal(err)
	}
	e.host.Quiesce()
	select {
	case b := <-st.Events:
		for _, d := range b {
			if d.Type == burst.DeltaPayload {
				t.Errorf("blocked actor's notification delivered: %s", d.Payload)
			}
		}
	default:
	}
}
