package was

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// FieldCall is a parsed GraphQL-style field invocation such as
//
//	liveVideoComments(videoID: 7, viewer: 12)
//
// It is the surface syntax devices use for queries, mutations, and
// subscription expressions. Only the subset the Bladerunner applications
// need is supported: a field name and a flat argument list of strings and
// integers.
type FieldCall struct {
	Name string
	Args map[string]string
}

// ParseField parses a field invocation. The grammar:
//
//	call  := name [ '(' args ')' ]
//	args  := arg { ',' arg }
//	arg   := name ':' value
//	value := int | quoted-string | bare-word
func ParseField(s string) (FieldCall, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return FieldCall{}, fmt.Errorf("was: empty field expression")
	}
	open := strings.IndexByte(s, '(')
	if open == -1 {
		if !validName(s) {
			return FieldCall{}, fmt.Errorf("was: invalid field name %q", s)
		}
		return FieldCall{Name: s, Args: map[string]string{}}, nil
	}
	name := strings.TrimSpace(s[:open])
	if !validName(name) {
		return FieldCall{}, fmt.Errorf("was: invalid field name %q", name)
	}
	if !strings.HasSuffix(s, ")") {
		return FieldCall{}, fmt.Errorf("was: missing ')' in %q", s)
	}
	body := s[open+1 : len(s)-1]
	args := map[string]string{}
	if strings.TrimSpace(body) != "" {
		for _, part := range splitArgs(body) {
			kv := strings.SplitN(part, ":", 2)
			if len(kv) != 2 {
				return FieldCall{}, fmt.Errorf("was: malformed argument %q in %q", part, s)
			}
			k := strings.TrimSpace(kv[0])
			v := strings.TrimSpace(kv[1])
			if !validName(k) {
				return FieldCall{}, fmt.Errorf("was: invalid argument name %q", k)
			}
			if len(v) > 0 && v[0] == '"' {
				unq, err := strconv.Unquote(v)
				if err != nil {
					return FieldCall{}, fmt.Errorf("was: bad string %q: %v", v, err)
				}
				v = unq
			}
			if _, dup := args[k]; dup {
				return FieldCall{}, fmt.Errorf("was: duplicate argument %q", k)
			}
			args[k] = v
		}
	}
	return FieldCall{Name: name, Args: args}, nil
}

// splitArgs splits on commas not inside quotes.
func splitArgs(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Uint64Arg extracts a uint64 argument.
func (f FieldCall) Uint64Arg(name string) (uint64, error) {
	v, ok := f.Args[name]
	if !ok {
		return 0, fmt.Errorf("was: %s: missing argument %q", f.Name, name)
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("was: %s: argument %q: %v", f.Name, name, err)
	}
	return n, nil
}

// StringArg extracts a string argument.
func (f FieldCall) StringArg(name string) (string, error) {
	v, ok := f.Args[name]
	if !ok {
		return "", fmt.Errorf("was: %s: missing argument %q", f.Name, name)
	}
	return v, nil
}

// String renders the call back to canonical form (sorted args), used for
// logging and as a cache key.
func (f FieldCall) String() string {
	if len(f.Args) == 0 {
		return f.Name
	}
	keys := make([]string, 0, len(f.Args))
	for k := range f.Args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(f.Name)
	b.WriteByte('(')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", k, f.Args[k])
	}
	b.WriteByte(')')
	return b.String()
}
