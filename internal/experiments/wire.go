package experiments

import (
	"fmt"
	"testing"

	"bladerunner/internal/bench"
)

// WireBench is one in-process vs over-the-wire pair from the wire
// experiment, in the machine-readable shape brbench records into
// BENCH_10.json.
type WireBench struct {
	Name        string  `json:"name"`
	LocalNsOp   float64 `json:"local_ns_per_op"`
	WireNsOp    float64 `json:"wire_ns_per_op"`
	DeltaNsOp   float64 `json:"delta_ns_per_op"`
	WireAllocs  int64   `json:"wire_allocs_per_op"`
	LocalAllocs int64   `json:"local_allocs_per_op"`
	LocalN      int     `json:"local_n"`
	WireN       int     `json:"wire_n"`
}

// Wire measures what the multi-process deployment pays per operation:
// each hot path runs twice — tiers as function calls, then tiers split
// across real loopback TCP sockets exactly as cmd/brnode splits them —
// and the delta is the wire tax (serialization + syscalls + scheduling).
// The paper does not report this number; the comparison is internal
// (in-process floor vs over-the-wire), which is why every Paper cell
// is "-".
func Wire(seed int64) (Result, []WireBench) {
	_ = seed // the wire paths are not seeded; kept for runner symmetry
	res := Result{ID: "wire", Title: "Over-the-wire tax: in-process vs loopback-TCP tier boundaries"}

	measure := func(fn func(*testing.B)) (float64, int64, int) {
		r := testing.Benchmark(fn)
		if r.N == 0 {
			return 0, 0, 0
		}
		return float64(r.T.Nanoseconds()) / float64(r.N), r.AllocsPerOp(), r.N
	}

	pairs := []struct {
		name        string
		local, wire func(*testing.B)
		note        string
	}{
		{"PylonPublish", bench.PylonPublishLocal, bench.PylonPublishWire,
			"publish ack through one ctrl socket (WAS process -> pylon process)"},
		{"EndToEndCommentPush", bench.EndToEndCommentPush, bench.EndToEndCommentPushWire,
			"full comment trip across 4 sockets (brnode topology on loopback)"},
	}
	var rows []WireBench
	for _, p := range pairs {
		localNs, localAllocs, localN := measure(p.local)
		wireNs, wireAllocs, wireN := measure(p.wire)
		if localN == 0 || wireN == 0 {
			res.AddRow(p.name, "-", "bench failed", p.note)
			continue
		}
		rows = append(rows, WireBench{
			Name: p.name, LocalNsOp: localNs, WireNsOp: wireNs,
			DeltaNsOp: wireNs - localNs, LocalAllocs: localAllocs,
			WireAllocs: wireAllocs, LocalN: localN, WireN: wireN,
		})
		res.AddRow(p.name+" in-process", "-", fmt.Sprintf("%.0f ns/op", localNs), p.note)
		res.AddRow(p.name+" loopback-TCP", "-", fmt.Sprintf("%.0f ns/op", wireNs),
			fmt.Sprintf("wire tax %.0f ns/op (%.1fx)", wireNs-localNs, wireNs/localNs))
	}
	return res, rows
}
