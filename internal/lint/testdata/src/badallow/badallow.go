// Package badallow exercises brlint's validation of suppression directives
// themselves: a wrong verb, an unknown rule name, and a missing reason each
// surface as diagnostics of the pseudo-rule "brlint", and a reason-less
// allow does not suppress anything. Checked by TestMalformedSuppressions,
// which asserts the exact diagnostic set rather than using want comments.
package badallow

import "time"

// Wrong verb: only allow(...) exists.
//brlint:ignore(no-direct-time) wrong directive verb

// Unknown rule name.
//brlint:allow(no-such-rule) the rule name is misspelled

// Missing reason: the directive below is rejected, so the time.Now call is
// NOT suppressed and is reported as a fourth diagnostic.
func Bad() time.Time {
	//brlint:allow(no-direct-time)
	return time.Now()
}
