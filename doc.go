// Package bladerunner is a from-scratch reproduction of "Bladerunner:
// Stream Processing at Scale for a Live View of Backend Data Mutations at
// the Edge" (SOSP 2021). The implementation lives under internal/ (see
// DESIGN.md for the system inventory); runnable entry points are under
// cmd/ and examples/; bench_test.go regenerates every table and figure of
// the paper's evaluation.
package bladerunner
