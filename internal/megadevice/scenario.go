package megadevice

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/core"
	"bladerunner/internal/durlog"
	"bladerunner/internal/metrics"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/workload"
)

// Scenario names runnable via Run (and `brload -scenario`).
const (
	ScenarioDiurnal   = "diurnal"   // a simulated day of diurnal churn
	ScenarioStorm     = "storm"     // POP cut -> regional reconnect storm
	ScenarioCelebrity = "celebrity" // publish burst into the hottest topic
	ScenarioReplay    = "replay"    // durable-log backlog replay for late joiners
)

// Options parameterizes a scenario run.
type Options struct {
	Scenario string
	Devices  int
	Areas    int
	// ZipfS is the popularity exponent assigning devices to areas
	// (default 1.1: paper-shaped "a few celebrity topics dominate").
	ZipfS float64
	Seed  int64
	// SimDuration is the simulated span (defaults: diurnal 24h, storm
	// 60m, celebrity 30m).
	SimDuration time.Duration
	// PubsPerMinute is the peak background publish rate into the live
	// cluster (scaled by the diurnal curve; default 120, Short 30).
	PubsPerMinute int
	// ProbesPerMinute paces delivery-latency probes (fractional rates
	// accumulate; default 2, Short 0.2).
	ProbesPerMinute float64
	// ProbeWait bounds the wall-clock wait for one probe's delivery.
	ProbeWait time.Duration
	// Short trims publish/probe volume for CI smoke runs; the device
	// count and simulated span stay full-size.
	Short bool
	// Logf receives progress lines (nil discards).
	Logf func(format string, args ...any)
}

// Report is the scenario's measured outcome, serialized into BENCH_8.json
// by brload.
type Report struct {
	Scenario   string  `json:"scenario"`
	Devices    int     `json:"devices"`
	Streams    int     `json:"streams"`
	Areas      int     `json:"areas"`
	ZipfS      float64 `json:"zipf_s"`
	Seed       int64   `json:"seed"`
	Short      bool    `json:"short"`
	SimSeconds float64 `json:"sim_seconds"`
	WallSecs   float64 `json:"wall_seconds"`

	// Scale headline: simulated events serviced per wall second (engine
	// events + per-device delta applications).
	EventsPerSec   float64 `json:"events_per_sec"`
	BytesPerDevice float64 `json:"bytes_per_device"`

	EngineEvents uint64 `json:"engine_events"`
	Transitions  int64  `json:"transitions"`
	Connects     int64  `json:"connects"`
	Drops        int64  `json:"drops"`
	DialFailures int64  `json:"dial_failures"`
	TrunkDeaths  int64  `json:"trunk_deaths"`
	Publishes    int64  `json:"publishes"`
	Deltas       int64  `json:"deltas"`
	Applied      int64  `json:"applied"`
	FlowEvents   int64  `json:"flow_events"`
	Resyncs      int64  `json:"resyncs"`

	Probes      int64 `json:"probes"`
	ProbeMisses int64 `json:"probe_misses"`
	// Delivery latency (mutate -> first edge apply), wall clock.
	LatencyNS  metrics.HistogramSnapshot `json:"latency_ns"`
	LatencyCDF []metrics.CDFPoint        `json:"latency_cdf,omitempty"`

	// Storm-only: per-minute connected counts around the cut, plus the
	// simulated minutes from cut to full reattach.
	ConnectedSeries []int   `json:"connected_series,omitempty"`
	ReattachMinutes float64 `json:"reattach_minutes,omitempty"`
	// Celebrity-only: fanout throughput while draining the hot-topic
	// burst (per-device applies per wall second).
	FanoutPerSec float64 `json:"fanout_per_sec,omitempty"`
	HotTopicSubs int     `json:"hot_topic_subs,omitempty"`

	// Replay-only: late joiners resuming from the "earliest" cursor pull
	// the backlog from the BRASS durable log instead of backend reads.
	ReplaySeedDevices    int   `json:"replay_seed_devices,omitempty"`
	ReplayLateJoiners    int   `json:"replay_late_joiners,omitempty"`
	ReplayBacklog        int64 `json:"replay_backlog,omitempty"`
	ReplayCatchUpApplied int64 `json:"replay_catchup_applied,omitempty"`
	ReplayPointQueries   int64 `json:"replay_point_queries,omitempty"`
	LogAppends           int64 `json:"log_appends,omitempty"`
	LogResumes           int64 `json:"log_resumes,omitempty"`
	LogCatchUpDeltas     int64 `json:"log_catchup_deltas,omitempty"`
	LogExpired           int64 `json:"log_expired,omitempty"`
	CursorResumes        int64 `json:"cursor_resumes,omitempty"`

	// GitDescribe is run metadata stamped by the emitting command
	// (brload), so every BENCH json records the tree it came from.
	GitDescribe string `json:"git_describe,omitempty"`
}

func (o *Options) normalize() error {
	switch o.Scenario {
	case ScenarioDiurnal, ScenarioStorm, ScenarioCelebrity, ScenarioReplay:
	default:
		return fmt.Errorf("megadevice: unknown scenario %q", o.Scenario)
	}
	if o.Devices <= 0 {
		o.Devices = 1_000_000
	}
	if o.Areas <= 0 {
		o.Areas = 1000
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SimDuration <= 0 {
		switch o.Scenario {
		case ScenarioDiurnal:
			o.SimDuration = 24 * time.Hour
		case ScenarioStorm:
			o.SimDuration = 60 * time.Minute
		case ScenarioReplay:
			o.SimDuration = 10 * time.Minute
		default:
			o.SimDuration = 30 * time.Minute
		}
	}
	if o.PubsPerMinute <= 0 {
		if o.Short {
			o.PubsPerMinute = 30
		} else {
			o.PubsPerMinute = 120
		}
	}
	if o.ProbesPerMinute <= 0 {
		if o.Short {
			o.ProbesPerMinute = 0.2
		} else {
			o.ProbesPerMinute = 2
		}
	}
	if o.ProbeWait <= 0 {
		o.ProbeWait = 500 * time.Millisecond
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// ownerUser/viewerUser derive the publishing and subscribing identities
// for an area. Both must be real social-graph users: the typing app's
// payload fetch runs the viewer through the privacy check, so the cluster
// is built with 2*Areas+1 users — owners first, then one representative
// viewer per area — and blocks disabled (a blocked representative would
// silence an entire area).
func ownerUser(area int) uint64              { return uint64(area) + 1 }
func viewerUser(area, totalAreas int) uint64 { return uint64(totalAreas+area) + 1 }

func socialUser(u uint64) socialgraph.UserID { return socialgraph.UserID(u) }

// Run executes one scenario: it builds a live core.Cluster (wall clock),
// a Fleet whose transitions ride a sim.Engine (virtual time), assigns
// devices to areas by Zipf popularity, and pumps simulated minutes while
// real publishes flow through the cluster to the trunks. The simulated
// span compresses into wall-clock minutes because idle virtual time costs
// nothing — only transitions and real deltas cost wall time.
func Run(o Options) (*Report, error) {
	if err := o.normalize(); err != nil {
		return nil, err
	}
	if o.Scenario == ScenarioReplay {
		return runReplay(o)
	}
	// The scenario spans two clocks on purpose: fleet transitions ride
	// the virtual engine, while the live cluster and the latency probes
	// ride the wall clock (through sim.RealClock, honoring the repo's
	// virtual-time invariant).
	wall := sim.RealClock{}
	start := wall.Now()
	rng := rand.New(rand.NewSource(o.Seed))

	ccfg := core.DefaultConfig()
	ccfg.POPs = 4
	ccfg.Graph.Users = 2*o.Areas + 1
	ccfg.Graph.BlockProb = 0
	if ccfg.Graph.MeanFriends >= ccfg.Graph.Users {
		ccfg.Graph.MeanFriends = ccfg.Graph.Users - 1
	}
	cluster, err := core.NewCluster(ccfg, nil)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	// Areas: one typing-indicator thread each; devices watch the thread
	// owner's typing state.
	areas := make([]Area, o.Areas)
	for a := range areas {
		areas[a] = Area{
			App:          apps.AppTyping,
			Subscription: fmt.Sprintf("typingIndicator(threadID: %d, peer: %d)", a, ownerUser(a)),
			Topic:        string(apps.TypingTopic(uint64(a), ownerUser(a))),
			User:         viewerUser(a, o.Areas),
		}
	}

	// Zipf-popular area assignment: a few areas hold a large share of
	// the fleet (celebrity structure), the tail is sparse.
	zipf := workload.NewZipf(o.Areas, o.ZipfS)
	assign := make([]uint32, o.Devices)
	areaSubs := make([]int, o.Areas)
	for i := range assign {
		a := zipf.Sample(rng)
		assign[i] = uint32(a)
		areaSubs[a]++
	}

	t0 := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	engine := sim.NewEngine(t0)
	fleet, err := New(Config{
		Devices:    o.Devices,
		Areas:      areas,
		StreamArea: func(dev uint32, _ int) uint32 { return assign[dev] },
		POPs:       cluster.POPTargets(),
		Dialer:     cluster.Net,
		Sched:      engine,
		Clock:      sim.RealClock{},
		Seed:       o.Seed,
	})
	if err != nil {
		return nil, err
	}
	defer fleet.Close()

	rep := &Report{
		Scenario: o.Scenario, Devices: o.Devices, Streams: fleet.Streams(),
		Areas: o.Areas, ZipfS: o.ZipfS, Seed: o.Seed, Short: o.Short,
		SimSeconds: o.SimDuration.Seconds(),
	}

	// Online fraction over the day, shaped like the paper's diurnal
	// active-stream curve; storm and celebrity hold the fleet near-fully
	// online so the failure/fanout signal dominates.
	online := workload.Diurnal{Min: 0.62, Max: 0.97, PeakHour: 19}
	if o.Scenario != ScenarioDiurnal {
		online = workload.Diurnal{Min: 0.95, Max: 0.97, PeakHour: 19}
	}
	// Involuntary edge drops per device-minute, shaped like the paper's
	// fleet-wide drop curve (18-33M/min across ~2B devices).
	dropRate := workload.Diurnal{Min: 0.009, Max: 0.0165, PeakHour: 19}

	minutes := int(o.SimDuration / time.Minute)
	target := int(float64(o.Devices) * online.At(t0))
	// Bring the initial window online spread across the first simulated
	// minute (the m=0 engine step executes the dials).
	for dev := 0; dev < target; dev++ {
		fleet.ConnectAt(uint32(dev), t0.Add(time.Duration(dev)*time.Minute/time.Duration(o.Devices)))
	}

	// Storm plan: cut half the POPs a third of the way in, heal at two
	// thirds.
	pops := cluster.POPTargets()
	cutAt, healAt := minutes/3, 2*minutes/3
	cutPops := pops[:len(pops)/2]
	cutMinute := -1
	reattached := -1

	// Celebrity plan: burst into the hottest area a third of the way in.
	hotArea := 0
	for a := 1; a < o.Areas; a++ {
		if areaSubs[a] > areaSubs[hotArea] {
			hotArea = a
		}
	}
	rep.HotTopicSubs = areaSubs[hotArea]
	burstPubs := 100
	if o.Short {
		burstPubs = 25
	}

	publish := func(area int) {
		_, err := cluster.WAS.Mutate(socialUser(ownerUser(area)),
			fmt.Sprintf(`setTyping(threadID: %d, on: "true")`, area))
		if err == nil {
			rep.Publishes++
		}
	}
	probe := func(area int) {
		fleet.ProbeArm(uint32(area), wall.Now().UnixNano())
		publish(area)
		rep.Probes++
		deadline := wall.Now().Add(o.ProbeWait)
		for fleet.ProbeArmed(uint32(area)) {
			if wall.Now().After(deadline) {
				if fleet.ProbeDisarm(uint32(area)) {
					rep.ProbeMisses++
				}
				return
			}
			sim.Sleep(wall, 100*time.Microsecond)
		}
	}

	probeDebt := 0.0
	for m := 0; m < minutes; m++ {
		simNow := t0.Add(time.Duration(m) * time.Minute)
		next := simNow.Add(time.Minute)
		fleet.Service()

		// Storm cut/heal (flips the shared network; severed trunks
		// surface as HandleClose -> Service redials).
		if o.Scenario == ScenarioStorm {
			if m == cutAt {
				o.Logf("minute %d: cutting POPs %v", m, cutPops)
				cluster.Net.SetDownGroup(true, cutPops...)
				cutMinute = m
			}
			if m == healAt {
				o.Logf("minute %d: healing POPs %v", m, cutPops)
				cluster.Net.SetDownGroup(false, cutPops...)
			}
		}

		// Population follows the diurnal target: devices below the
		// target should be online, the rest offline.
		newTarget := int(float64(o.Devices) * online.At(simNow))
		for dev := target; dev < newTarget; dev++ {
			fleet.ConnectAt(uint32(dev), simNow.Add(time.Duration(rng.Int63n(int64(time.Minute)))))
		}
		for dev := newTarget; dev < target; dev++ {
			fleet.OffAt(uint32(dev), simNow.Add(time.Duration(rng.Int63n(int64(time.Minute)))))
		}
		target = newTarget

		// Involuntary drops, Poisson around the curve's rate.
		drops := workload.Poisson(rng, dropRate.At(simNow)*float64(target))
		for i := int64(0); i < drops; i++ {
			dev := uint32(rng.Intn(target))
			if fleet.State(dev) == StateConnected {
				fleet.DropAt(dev, simNow.Add(time.Duration(rng.Int63n(int64(time.Minute)))))
			}
		}

		engine.RunUntil(next)
		fleet.Service()

		// Background publishes through the live cluster, paced by the
		// diurnal publication curve. Uniform area targeting spreads the
		// load the way Table 1's breadth does; the celebrity scenario
		// supplies the hot-topic depth explicitly.
		pubs := int(float64(o.PubsPerMinute) * online.At(simNow))
		for i := 0; i < pubs; i++ {
			publish(rng.Intn(o.Areas))
		}
		if o.Scenario == ScenarioCelebrity && m == cutAt {
			o.Logf("minute %d: celebrity burst, %d publishes into area %d (%d subscribers)",
				m, burstPubs, hotArea, areaSubs[hotArea])
			base := fleet.Applied.Value()
			burstStart := wall.Now()
			for i := 0; i < burstPubs; i++ {
				publish(hotArea)
			}
			want := base + int64(burstPubs)*int64(areaSubs[hotArea])*95/100
			for fleet.Applied.Value() < want && wall.Now().Sub(burstStart) < 30*time.Second {
				sim.Sleep(wall, time.Millisecond)
			}
			if w := wall.Now().Sub(burstStart).Seconds(); w > 0 {
				rep.FanoutPerSec = float64(fleet.Applied.Value()-base) / w
			}
		}

		// Delivery probes (fractional rate accumulates).
		probeDebt += o.ProbesPerMinute
		for probeDebt >= 1 {
			probeDebt--
			probe(zipf.Sample(rng))
		}

		if o.Scenario == ScenarioStorm && m >= cutAt-2 {
			c := fleet.ConnectedCount()
			rep.ConnectedSeries = append(rep.ConnectedSeries, c)
			if cutMinute >= 0 && reattached < 0 && m > cutAt && int64(c)*1000 >= int64(target)*995 {
				reattached = m
				rep.ReattachMinutes = float64(m - cutMinute)
			}
		}
		if m%180 == 0 {
			o.Logf("minute %4d: connected=%d deltas=%d applied=%d drops=%d wall=%.1fs",
				m, fleet.ConnectedCount(), fleet.Deltas.Value(), fleet.Applied.Value(),
				fleet.Drops.Value(), wall.Now().Sub(start).Seconds())
		}
	}

	// Drain: let in-flight deltas land, then freeze the numbers.
	cluster.Quiesce()
	sim.Sleep(wall, 100*time.Millisecond)
	fleet.Service()

	rep.WallSecs = wall.Now().Sub(start).Seconds()
	rep.EngineEvents = engine.Executed()
	rep.Transitions = fleet.Transitions.Value()
	rep.Connects = fleet.Connects.Value()
	rep.Drops = fleet.Drops.Value()
	rep.DialFailures = fleet.DialFailures.Value()
	rep.TrunkDeaths = fleet.TrunkDeaths.Value()
	rep.Deltas = fleet.Deltas.Value()
	rep.Applied = fleet.Applied.Value()
	rep.FlowEvents = fleet.FlowEvents.Value()
	rep.Resyncs = fleet.Resyncs.Value()
	rep.BytesPerDevice = fleet.BytesPerDevice()
	if rep.WallSecs > 0 {
		rep.EventsPerSec = (float64(rep.EngineEvents) + float64(rep.Applied)) / rep.WallSecs
	}
	rep.LatencyNS = fleet.ApplyLatency.Snapshot()
	rep.LatencyCDF = fleet.ApplyLatency.CDF(20)
	return rep, nil
}

// runReplay demonstrates the durable log end to end at fleet scale: a
// seed population connects, a message backlog flows through Messenger
// (every delivery appended to the BRASS durable log), and then a late
// population joins subscribing from the "earliest" cursor — their entire
// catch-up is served from the edge log, with the WAS untouched. The
// topology is a single region with one BRASS host so the per-host log
// provably holds every topic's backlog; multi-host placement is the
// sticky-routing story, not this scenario's.
func runReplay(o Options) (*Report, error) {
	wall := sim.RealClock{}
	start := wall.Now()

	ccfg := core.DefaultConfig()
	ccfg.Regions = []string{"us-east"}
	ccfg.BRASSHostsPerRegion = 1
	ccfg.POPs = 4
	ccfg.Graph.Users = 2*o.Areas + 1
	ccfg.Graph.BlockProb = 0
	if ccfg.Graph.MeanFriends >= ccfg.Graph.Users {
		ccfg.Graph.MeanFriends = ccfg.Graph.Users - 1
	}
	ccfg.Durlog = &core.DurlogConfig{} // defaults; Messenger only
	cluster, err := core.NewCluster(ccfg, nil)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	// Areas: one Messenger thread per area; the shared stream subscribes
	// as the mailbox owner, from the earliest retained cursor.
	areas := make([]Area, o.Areas)
	tids := make([]uint64, o.Areas)
	for a := range areas {
		owner := ownerUser(a)
		raw, err := cluster.WAS.Mutate(socialUser(owner),
			fmt.Sprintf(`createThread(members: "%d")`, owner))
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(raw, &tids[a]); err != nil {
			return nil, fmt.Errorf("megadevice: createThread result: %w", err)
		}
		areas[a] = Area{
			App:          apps.AppMessenger,
			Subscription: "messenger",
			Topic:        string(apps.MailboxTopic(socialUser(owner))),
			User:         owner,
			Cursor:       durlog.SentinelEarliest,
		}
	}

	// Round-robin (not Zipf) area assignment: the replay contract is
	// per-area ("every area's backlog is retained and replayed"), so every
	// area needs both seed coverage — a stream whose deliveries populate
	// the log — and at least one late joiner to replay it.
	assign := make([]uint32, o.Devices)
	for i := range assign {
		assign[i] = uint32(i % o.Areas)
	}

	// Seed devices home on POP 0; late joiners spread over POPs 1..3, so
	// their first subscribe creates NEW trunks whose request carries the
	// area cursor.
	seedDevs := o.Devices / 2
	t0 := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	engine := sim.NewEngine(t0)
	fleet, err := New(Config{
		Devices:    o.Devices,
		Areas:      areas,
		StreamArea: func(dev uint32, _ int) uint32 { return assign[dev] },
		POPs:       cluster.POPTargets(),
		Dialer:     cluster.Net,
		Sched:      engine,
		Clock:      sim.RealClock{},
		Seed:       o.Seed,
		HomePOP: func(dev uint32) int {
			if int(dev) < seedDevs {
				return 0
			}
			return 1 + int(dev)%3
		},
	})
	if err != nil {
		return nil, err
	}
	defer fleet.Close()

	rep := &Report{
		Scenario: o.Scenario, Devices: o.Devices, Streams: fleet.Streams(),
		Areas: o.Areas, ZipfS: o.ZipfS, Seed: o.Seed, Short: o.Short,
		SimSeconds:        o.SimDuration.Seconds(),
		ReplaySeedDevices: seedDevs, ReplayLateJoiners: o.Devices - seedDevs,
	}

	// Phase 1: seed population online.
	for dev := 0; dev < seedDevs; dev++ {
		fleet.ConnectAt(uint32(dev), t0.Add(time.Duration(dev)*time.Minute/time.Duration(o.Devices)))
	}
	engine.RunUntil(t0.Add(2 * time.Minute))
	fleet.Service()

	// Phase 2: backlog through the live cluster; every delivered message
	// lands in the host durable log. The subscribe handshake is
	// wall-asynchronous, so the first message per area doubles as a
	// delivery probe: it is retried until a live stream applies it,
	// proving the area's subscription (and therefore its log) is active
	// before the rest of the backlog flows.
	backlogPerArea := 8
	if o.Short {
		backlogPerArea = 3
	}
	sendBacklog := func(a, i int) {
		_, err := cluster.WAS.Mutate(socialUser(ownerUser(a)),
			fmt.Sprintf(`sendMessage(threadID: %d, text: "backlog-%d")`, tids[a], i))
		if err == nil {
			rep.Publishes++
		}
	}
	for a := 0; a < o.Areas; a++ {
		for try := 0; try < 50; try++ {
			fleet.ProbeArm(uint32(a), wall.Now().UnixNano())
			sendBacklog(a, 0)
			pd := wall.Now().Add(2 * time.Second)
			for fleet.ProbeArmed(uint32(a)) && wall.Now().Before(pd) {
				sim.Sleep(wall, time.Millisecond)
			}
			if !fleet.ProbeDisarm(uint32(a)) {
				break // claimed: the area's stream is live
			}
		}
	}
	for i := 1; i < backlogPerArea; i++ {
		for a := 0; a < o.Areas; a++ {
			sendBacklog(a, i)
		}
	}
	rep.ReplayBacklog = rep.Publishes
	cluster.Quiesce()
	sim.Sleep(wall, 200*time.Millisecond)
	fleet.Service()
	seedApplied := fleet.Applied.Value()
	pointBase := cluster.WAS.PointQueries.Value()
	o.Logf("backlog published: %d messages, seed applied %d", rep.ReplayBacklog, seedApplied)

	// Phase 3: late joiners subscribe from "earliest"; their catch-up is
	// the whole backlog, replayed from the edge.
	joinAt := t0.Add(5 * time.Minute)
	for dev := seedDevs; dev < o.Devices; dev++ {
		fleet.ConnectAt(uint32(dev), joinAt.Add(time.Duration(dev)*time.Minute/time.Duration(o.Devices)))
	}
	engine.RunUntil(joinAt.Add(2 * time.Minute))
	fleet.Service()

	// Each joiner trunk-stream replays its area's backlog as one catch-up
	// batch (the shared stream fans it to the devices attached at apply
	// time — the trunk model's usual coalescing). Drain by waiting for the
	// decoded-delta counter to go quiet.
	deadline := wall.Now().Add(30 * time.Second)
	for wall.Now().Before(deadline) {
		before := fleet.Deltas.Value()
		sim.Sleep(wall, 300*time.Millisecond)
		if fleet.Deltas.Value() == before {
			break
		}
	}
	cluster.Quiesce()
	sim.Sleep(wall, 100*time.Millisecond)
	fleet.Service()

	rep.ReplayCatchUpApplied = fleet.Applied.Value() - seedApplied
	rep.ReplayPointQueries = cluster.WAS.PointQueries.Value() - pointBase
	rep.WallSecs = wall.Now().Sub(start).Seconds()
	rep.EngineEvents = engine.Executed()
	rep.Transitions = fleet.Transitions.Value()
	rep.Connects = fleet.Connects.Value()
	rep.Drops = fleet.Drops.Value()
	rep.DialFailures = fleet.DialFailures.Value()
	rep.TrunkDeaths = fleet.TrunkDeaths.Value()
	rep.Deltas = fleet.Deltas.Value()
	rep.Applied = fleet.Applied.Value()
	rep.FlowEvents = fleet.FlowEvents.Value()
	rep.Resyncs = fleet.Resyncs.Value()
	rep.CursorResumes = fleet.CursorResumes.Value()
	rep.BytesPerDevice = fleet.BytesPerDevice()
	for _, h := range cluster.Hosts {
		rep.LogResumes += h.LogResumes.Value()
		rep.LogCatchUpDeltas += h.LogCatchUpDeltas.Value()
		rep.LogExpired += h.LogExpired.Value()
		if l := h.DurLog(); l != nil {
			rep.LogAppends += l.Appends.Value()
		}
	}
	if rep.WallSecs > 0 {
		rep.EventsPerSec = (float64(rep.EngineEvents) + float64(rep.Applied)) / rep.WallSecs
	}
	rep.LatencyNS = fleet.ApplyLatency.Snapshot()
	o.Logf("replay: joiners applied %d of %d backlog deltas from the log (resumes=%d, point queries=%d)",
		rep.ReplayCatchUpApplied, int64(backlogPerArea)*int64(o.Devices-seedDevs), rep.LogResumes, rep.ReplayPointQueries)
	return rep, nil
}
