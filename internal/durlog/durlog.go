// Package durlog is the durable per-topic sequenced log backing
// cursor-based resume: an in-memory hot segment per topic with a bounded
// byte budget, rotation into a fixed ring of immutable cold segments, and
// time-based retention, all driven by an injected sim.Clock.
//
// The contract mirrors the durable-streams design the paper's successors
// converged on (SNIPPETS.md §3, MigratoryData in PAPERS.md): the server
// ACCEPTS cursors and serves a gap-free batch from the retained window,
// but NEVER FABRICATES one — a cursor outside the window (predates
// retention, postdates a crash-truncated tail, or crosses a continuity
// epoch) returns ErrCursorExpired and the client falls back to a WAS
// resync. Appends are the delivery hot path and stay allocation-free in
// steady state: every slab (payload bytes, entry offsets, entry seqs) is
// preallocated at Open and recycled in place by rotation, retention
// expiry, and gap resets.
package durlog

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bladerunner/internal/metrics"
	"bladerunner/internal/sim"
)

// ErrCursorExpired reports a cursor outside the retained window. The
// caller must fall back to a full resync — the log will not guess.
var ErrCursorExpired = errors.New("durlog: cursor outside retained window")

// ErrUnknownTopic reports a read on a topic never opened on this log.
var ErrUnknownTopic = errors.New("durlog: topic not opened")

// Sentinel cursor strings a server accepts as INPUT only: they name a
// position ("replay everything retained" / "skip the backlog") rather
// than claim delivered state, so serving them never fabricates anything.
// The log never emits them.
const (
	SentinelEarliest = "earliest"
	SentinelLive     = "live"
)

// Cursor names a position in one topic's sequence space. Epoch is the
// topic's continuity incarnation: it bumps whenever the log can no longer
// vouch that its retained window is continuous with cursors minted
// earlier (a gap reset after missed appends, an oversized-payload poison).
// Seq is the highest sequence the holder has applied; a resume serves
// strictly greater sequences.
type Cursor struct {
	Epoch uint64
	Seq   uint64
}

// String renders the wire form "epoch.seq" carried in burst.HdrCursor.
func (c Cursor) String() string {
	return strconv.FormatUint(c.Epoch, 10) + "." + strconv.FormatUint(c.Seq, 10)
}

// Parse decodes the wire form. Sentinels and malformed strings return
// ok=false — they are positions for the server to resolve, not cursors.
func Parse(s string) (Cursor, bool) {
	dot := strings.IndexByte(s, '.')
	if dot <= 0 || dot == len(s)-1 {
		return Cursor{}, false
	}
	epoch, err := strconv.ParseUint(s[:dot], 10, 64)
	if err != nil {
		return Cursor{}, false
	}
	seq, err := strconv.ParseUint(s[dot+1:], 10, 64)
	if err != nil {
		return Cursor{}, false
	}
	return Cursor{Epoch: epoch, Seq: seq}, true
}

// Clamp lowers a cursor string's seq to maxSeq when it claims more than
// the holder actually applied. Rewrites advance the server's view of the
// stored cursor optimistically (before the client has applied, or for
// deltas admission shed); the client clamps with its ground truth before
// presenting the cursor, so a resume can under-claim (harmless overlap,
// deduplicated by seq) but never over-claim (a fabricated gap).
// Sentinels and malformed strings pass through unchanged.
func Clamp(s string, maxSeq uint64) string {
	c, ok := Parse(s)
	if !ok || c.Seq <= maxSeq {
		return s
	}
	c.Seq = maxSeq
	return c.String()
}

// Entry is one retained payload.
type Entry struct {
	Seq     uint64 `json:"seq"`
	Payload []byte `json:"payload"`
}

// RotatePhase identifies where inside a rotation a CrashHook fires.
type RotatePhase uint8

// Rotation phases, in order: the hot slab is sealed, then the eldest cold
// slab is recycled into the new hot slab.
const (
	PhaseSealed RotatePhase = iota
	PhaseRecycled
)

// Config parameterizes a Log. The zero value is usable: every field
// defaults in New.
type Config struct {
	// Clock supplies retention timestamps (default sim.RealClock{}).
	Clock sim.Clock
	// HotBytes is the per-segment payload byte budget (default 16 KiB).
	HotBytes int
	// SegmentEntries is the per-segment entry slot count (default 256).
	SegmentEntries int
	// Segments is the per-topic slab ring size: one hot segment plus
	// Segments-1 immutable cold segments (default 4, minimum 2).
	Segments int
	// Retention bounds how long a sealed cold segment stays readable
	// (default 10 minutes; negative keeps segments until the ring
	// structurally recycles them).
	Retention time.Duration
	// CrashHook, when set, fires inside rotation at each RotatePhase —
	// test instrumentation for crash-mid-rotation recovery. It runs
	// under the topic lock and may panic to simulate the crash. Nil in
	// production.
	CrashHook func(topic string, phase RotatePhase)
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = sim.RealClock{}
	}
	if c.HotBytes <= 0 {
		c.HotBytes = 16 << 10
	}
	if c.SegmentEntries <= 0 {
		c.SegmentEntries = 256
	}
	if c.Segments < 2 {
		if c.Segments == 0 {
			c.Segments = 4
		} else {
			c.Segments = 2
		}
	}
	if c.Retention == 0 {
		c.Retention = 10 * time.Minute
	}
	return c
}

// segment is one preallocated slab: payloads packed contiguously in buf,
// entry i spanning buf[ends[i-1]:ends[i]] with sequence seqs[i]. A slab
// is hot while it is the append target and immutable (cold) after
// rotation seals it; recycling only resets the counters, so steady-state
// appends never allocate.
type segment struct {
	buf  []byte   // len = HotBytes, fixed at Open
	ends []uint32 // len = SegmentEntries, fixed at Open
	seqs []uint64 // len = SegmentEntries, fixed at Open

	n      int       // entries used
	used   int       // bytes used
	sealed time.Time // rotation timestamp (zero while hot)
}

// topicLog is one topic's slab ring plus its window bookkeeping. The
// invariants ReadFrom relies on: retained sequences are exactly
// [floor, tail] with no holes (floor = tail+1 when nothing is retained),
// and slabs ordered active+1 .. active (mod ring) hold them oldest first.
type topicLog struct {
	name string

	mu     sync.Mutex
	epoch  uint64
	floor  uint64 // lowest retained seq; tail+1 when empty
	tail   uint64 // highest appended seq (0 before the first append)
	segs   []segment
	active int // hot slab index
}

// Log is a set of per-topic sequenced logs sharing one configuration.
// Append is safe for concurrent use across topics; per-topic operations
// serialize on the topic lock.
type Log struct {
	cfg Config

	mu     sync.RWMutex
	topics map[string]*topicLog

	// Metrics.
	Appends      metrics.Counter // payloads retained
	Dups         metrics.Counter // appends at or below the tail, ignored
	Rotations    metrics.Counter // hot-slab seals
	Evictions    metrics.Counter // cold slabs recycled by ring pressure
	Expirations  metrics.Counter // cold slabs recycled by retention age
	GapResets    metrics.Counter // windows discarded on a sequence gap
	Oversized    metrics.Counter // payloads too large for any slab
	Reads        metrics.Counter // ReadFrom calls served
	ExpiredReads metrics.Counter // ReadFrom calls refused (ErrCursorExpired)
}

// New builds an empty log.
func New(cfg Config) *Log {
	return &Log{cfg: cfg.withDefaults(), topics: make(map[string]*topicLog)}
}

// Open allocates topic's slab ring. Idempotent; control path (stream
// open / app registration), so Append on the delivery path never
// allocates. Append on an unopened topic is a no-op returning false.
func (l *Log) Open(topic string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.topics[topic]; ok {
		return
	}
	t := &topicLog{name: topic, epoch: 1, floor: 1}
	t.segs = make([]segment, l.cfg.Segments)
	for i := range t.segs {
		t.segs[i].buf = make([]byte, l.cfg.HotBytes)
		t.segs[i].ends = make([]uint32, l.cfg.SegmentEntries)
		t.segs[i].seqs = make([]uint64, l.cfg.SegmentEntries)
	}
	l.topics[topic] = t
}

// Opened reports whether topic has been opened on this log.
func (l *Log) Opened(topic string) bool { return l.lookup(topic) != nil }

func (l *Log) lookup(topic string) *topicLog {
	l.mu.RLock()
	t := l.topics[topic]
	l.mu.RUnlock()
	return t
}

// Append retains one delivered payload. It reports false when the topic
// is unopened, the sequence is a duplicate (<= tail), or the payload is
// too large for a slab (which poisons the window — see appendLocked).
//
// payload-offset writes into slabs preallocated at Open.
//
// only mutex ops, map reads, counter increments, copy, and indexed
//
//brlint:hotpath one append per delivered delta on the publish path:
func (l *Log) Append(topic string, seq uint64, payload []byte) bool {
	l.mu.RLock()
	t := l.topics[topic]
	l.mu.RUnlock()
	if t == nil {
		return false
	}
	// Deferred unlock (open-coded, no allocation) so a panicking
	// CrashHook leaves the topic inspectable.
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.appendLocked(l, seq, payload)
}

// appendLocked is Append under the topic lock: expire stale cold slabs,
// reset the window on a sequence gap, rotate when the hot slab is full,
// then pack the payload.
//
// write is copy plus indexed stores.
//
//brlint:hotpath append body: slab recycling is index arithmetic, the
func (t *topicLog) appendLocked(l *Log, seq uint64, payload []byte) bool {
	if seq <= t.tail {
		l.Dups.Inc()
		return false
	}
	now := l.cfg.Clock.Now()
	t.expireLocked(l, now)
	if seq != t.tail+1 && !(t.tail == 0 && seq == t.floor) {
		// The log never saw (tail, seq): everything retained predates a
		// range it cannot serve gap-free, so the whole window resets and
		// the epoch bumps — cursors minted before this instant expire
		// instead of being served across the hole.
		t.resetLocked(seq)
		l.GapResets.Inc()
	}
	seg := &t.segs[t.active]
	if seg.n == len(seg.seqs) || seg.used+len(payload) > len(seg.buf) {
		t.rotateLocked(l, now)
		seg = &t.segs[t.active]
	}
	if len(payload) > len(seg.buf) {
		// No slab can ever hold it. Poison the window past this
		// sequence: readers expire (fall back to WAS) rather than
		// skipping the payload silently.
		t.resetLocked(seq + 1)
		t.tail = seq
		l.Oversized.Inc()
		return false
	}
	copy(seg.buf[seg.used:], payload)
	seg.used += len(payload)
	seg.ends[seg.n] = uint32(seg.used)
	seg.seqs[seg.n] = seq
	seg.n++
	t.tail = seq
	l.Appends.Inc()
	return true
}

// rotateLocked seals the hot slab and recycles the eldest slab in place.
// Ring pressure advancing over a live cold slab moves the floor — the
// structural retention bound.
//
// and counter resets only.
//
//brlint:hotpath rotation recycles preallocated slabs: index arithmetic
func (t *topicLog) rotateLocked(l *Log, now time.Time) {
	t.segs[t.active].sealed = now
	if l.cfg.CrashHook != nil {
		//brlint:allow(hot-path-alloc) test-only crash injection; nil in production
		l.cfg.CrashHook(t.name, PhaseSealed)
	}
	t.active++
	if t.active == len(t.segs) {
		t.active = 0
	}
	seg := &t.segs[t.active]
	if seg.n > 0 {
		t.floor = seg.seqs[seg.n-1] + 1
		l.Evictions.Inc()
	}
	seg.n = 0
	seg.used = 0
	seg.sealed = time.Time{}
	l.Rotations.Inc()
	if l.cfg.CrashHook != nil {
		//brlint:allow(hot-path-alloc) test-only crash injection; nil in production
		l.cfg.CrashHook(t.name, PhaseRecycled)
	}
}

// expireLocked recycles cold slabs older than the retention bound,
// oldest first, advancing the floor past each.
//
// in-place slab resets.
//
//brlint:hotpath retention expiry runs per append: time arithmetic and
func (t *topicLog) expireLocked(l *Log, now time.Time) {
	if l.cfg.Retention < 0 {
		return
	}
	for i := 1; i < len(t.segs); i++ {
		idx := t.active + i
		if idx >= len(t.segs) {
			idx -= len(t.segs)
		}
		seg := &t.segs[idx]
		if seg.n == 0 {
			continue
		}
		if seg.sealed.IsZero() || now.Sub(seg.sealed) <= l.cfg.Retention {
			break
		}
		t.floor = seg.seqs[seg.n-1] + 1
		seg.n = 0
		seg.used = 0
		seg.sealed = time.Time{}
		l.Expirations.Inc()
	}
}

// resetLocked discards the whole retained window, re-floors it at
// floorSeq, and bumps the continuity epoch.
//
//brlint:hotpath window reset recycles every slab in place.
func (t *topicLog) resetLocked(floorSeq uint64) {
	for i := range t.segs {
		t.segs[i].n = 0
		t.segs[i].used = 0
		t.segs[i].sealed = time.Time{}
	}
	t.active = 0
	t.floor = floorSeq
	t.epoch++
}

// ReadFrom returns every retained entry with sequence strictly greater
// than c.Seq, in order and gap-free, plus the cursor naming the window's
// tail. The cursor is valid iff its epoch matches and [c.Seq+1, tail]
// lies inside the retained window; anything else — older epoch, seq
// below the floor's predecessor, seq beyond the tail (e.g. minted before
// a crash-truncated recovery) — returns ErrCursorExpired. Payloads are
// copied out, so the batch stays valid across later rotations.
func (l *Log) ReadFrom(topic string, c Cursor) ([]Entry, Cursor, error) {
	t := l.lookup(topic)
	if t == nil {
		return nil, Cursor{}, ErrUnknownTopic
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.expireLocked(l, l.cfg.Clock.Now())
	if c.Epoch != t.epoch || c.Seq+1 < t.floor || c.Seq > t.tail {
		l.ExpiredReads.Inc()
		return nil, Cursor{}, ErrCursorExpired
	}
	l.Reads.Inc()
	out := t.entriesAboveLocked(c.Seq)
	return out, Cursor{Epoch: t.epoch, Seq: t.tail}, nil
}

// entriesAboveLocked copies out every retained entry with seq > after,
// oldest slab first.
func (t *topicLog) entriesAboveLocked(after uint64) []Entry {
	var out []Entry
	for i := 1; i <= len(t.segs); i++ {
		idx := (t.active + i) % len(t.segs)
		seg := &t.segs[idx]
		for j := 0; j < seg.n; j++ {
			if seg.seqs[j] <= after {
				continue
			}
			var start uint32
			if j > 0 {
				start = seg.ends[j-1]
			}
			p := make([]byte, seg.ends[j]-start)
			copy(p, seg.buf[start:seg.ends[j]])
			out = append(out, Entry{Seq: seg.seqs[j], Payload: p})
		}
	}
	return out
}

// TailCursor returns the cursor naming topic's current tail — what a
// fully caught-up client holds. ok is false for unopened topics.
func (l *Log) TailCursor(topic string) (Cursor, bool) {
	t := l.lookup(topic)
	if t == nil {
		return Cursor{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Cursor{Epoch: t.epoch, Seq: t.tail}, true
}

// EarliestCursor returns the cursor from which ReadFrom serves the whole
// retained window — the server-side resolution of SentinelEarliest. ok
// is false for unopened topics.
func (l *Log) EarliestCursor(topic string) (Cursor, bool) {
	t := l.lookup(topic)
	if t == nil {
		return Cursor{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Cursor{Epoch: t.epoch, Seq: t.floor - 1}, true
}

// Window returns topic's current (epoch, floor, tail) for tests and
// diagnostics.
func (l *Log) Window(topic string) (epoch, floor, tail uint64, ok bool) {
	t := l.lookup(topic)
	if t == nil {
		return 0, 0, 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch, t.floor, t.tail, true
}

// checkpointTopic is one topic's durable image.
type checkpointTopic struct {
	Name    string  `json:"name"`
	Epoch   uint64  `json:"epoch"`
	Floor   uint64  `json:"floor"`
	Tail    uint64  `json:"tail"`
	Entries []Entry `json:"entries"`
}

type checkpointImage struct {
	Topics []checkpointTopic `json:"topics"`
}

// Checkpoint serializes the log's durable image — the state a crash
// rolls back to. Topics are emitted in sorted order so equal states
// produce equal bytes.
func (l *Log) Checkpoint() []byte {
	l.mu.RLock()
	names := make([]string, 0, len(l.topics))
	for name := range l.topics {
		names = append(names, name)
	}
	l.mu.RUnlock()
	sort.Strings(names)
	img := checkpointImage{Topics: make([]checkpointTopic, 0, len(names))}
	for _, name := range names {
		t := l.lookup(name)
		if t == nil {
			continue
		}
		t.mu.Lock()
		ct := checkpointTopic{
			Name:    name,
			Epoch:   t.epoch,
			Floor:   t.floor,
			Tail:    t.tail,
			Entries: t.entriesAboveLocked(0),
		}
		t.mu.Unlock()
		img.Topics = append(img.Topics, ct)
	}
	b, err := json.Marshal(img)
	if err != nil {
		panic("durlog: checkpoint marshal: " + err.Error())
	}
	return b
}

// Recover rebuilds a fresh log from a Checkpoint image: each topic's
// epoch is preserved and its tail REGRESSES to the durable tail, so a
// cursor minted past the checkpoint fails ReadFrom's tail bound
// (ErrCursorExpired) instead of being served a window with the lost
// suffix missing. Live appends arriving after recovery with a higher
// sequence hit the ordinary gap reset. Recover refuses a log that
// already has topics.
func (l *Log) Recover(snap []byte) error {
	l.mu.RLock()
	populated := len(l.topics) != 0
	l.mu.RUnlock()
	if populated {
		return errors.New("durlog: Recover on a populated log")
	}
	var img checkpointImage
	if err := json.Unmarshal(snap, &img); err != nil {
		return fmt.Errorf("durlog: recover: %w", err)
	}
	for _, ct := range img.Topics {
		l.Open(ct.Name)
		t := l.lookup(ct.Name)
		t.mu.Lock()
		t.floor = ct.Floor
		t.tail = 0
		if len(ct.Entries) > 0 {
			// Replay oldest-first; the first entry defines the floor the
			// gap check in appendLocked accepts, and ring pressure during
			// replay (a smaller recovered config) only advances it.
			t.floor = ct.Entries[0].Seq
			for _, e := range ct.Entries {
				t.appendLocked(l, e.Seq, e.Payload)
			}
		}
		if t.tail < ct.Tail && len(ct.Entries) == 0 {
			t.tail = ct.Tail
			t.floor = ct.Floor
		}
		t.epoch = ct.Epoch
		t.mu.Unlock()
	}
	return nil
}
