// ActiveStatus: the online-friends indicator (paper §3.4). One device
// subscription fans out to one Pylon topic per friend; the BRASS aggregates
// presence reports into a per-stream map with a TTL and pushes periodic
// batched diffs, so the device is never flooded.
//
// Run with:
//
//	go run ./examples/activestatus
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/core"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Graph.Users = 200
	cfg.Graph.MeanFriends = 12
	cluster, err := core.NewCluster(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Demo-scale timers: presence TTL 600ms (paper: 30s), batch flush
	// every 150ms.
	cluster.Apps.ActiveStatus.TTL = 600 * time.Millisecond
	cluster.Apps.ActiveStatus.BatchInterval = 150 * time.Millisecond

	// Pick a user with a few friends.
	var me socialgraph.UserID
	for id := socialgraph.UserID(1); id <= 200; id++ {
		if len(cluster.Graph.Friends(id)) >= 3 {
			me = id
			break
		}
	}
	friends := cluster.Graph.Friends(me)[:3]
	fmt.Printf("user %d subscribes to activeStatus; first friends: %v\n", me, friends)

	device := cluster.NewDevice(me)
	defer device.Close()
	if err := device.Connect(); err != nil {
		log.Fatal(err)
	}
	st, err := device.Subscribe(apps.AppActiveStatus, "activeStatus", nil)
	if err != nil {
		log.Fatal(err)
	}
	// One device subscribe produced one Pylon topic per friend:
	clock := sim.RealClock{}
	cluster.Pylon.WaitForSubscriber(clock, apps.StatusTopic(friends[0]), 10*time.Second)
	fmt.Printf("one stream -> %d Pylon topics (one per friend)\n",
		len(cluster.Graph.Friends(me)))

	// Two friends come online (their devices report every 30s in prod).
	for _, f := range friends[:2] {
		fd := cluster.NewDevice(f)
		if _, err := fd.Mutate("reportActive"); err != nil {
			log.Fatal(err)
		}
		fd.Close()
	}

	seen := map[uint64]bool{}
	deadline := sim.Timeout(clock, 5*time.Second)
	for len(seen) < 2 {
		select {
		case delta := <-st.Updates:
			var p apps.StatusPayload
			_ = json.Unmarshal(delta.Payload, &p)
			fmt.Printf("batched push: friend %d online=%v\n", p.User, p.Online)
			if p.Online {
				seen[p.User] = true
			}
		case <-deadline:
			log.Fatal("timed out waiting for online statuses")
		}
	}

	// No further reports: the TTL expires and the BRASS pushes offline
	// transitions in a later batch.
	fmt.Println("friends stop reporting; waiting for TTL expiry...")
	offline := 0
	deadline = sim.Timeout(clock, 5*time.Second)
	for offline < 2 {
		select {
		case delta := <-st.Updates:
			var p apps.StatusPayload
			_ = json.Unmarshal(delta.Payload, &p)
			if !p.Online {
				fmt.Printf("batched push: friend %d online=%v (TTL expired)\n", p.User, p.Online)
				offline++
			}
		case <-deadline:
			log.Fatal("timed out waiting for offline transitions")
		}
	}
	fmt.Println("presence managed entirely by the BRASS: the device only renders diffs")
}
