package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"bladerunner/internal/workload"
)

// figStart anchors the simulated day (the paper's data is from March 2020).
var figStart = time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)

// Figure8 regenerates the per-user diurnal activity curves: active
// request-streams, subscription requests, Pylon publications, BRASS
// decisions, and update deliveries, in 15-minute buckets over 24 hours.
//
// The driving curves (streams, subscriptions, publications) come from the
// calibrated generators; decisions and deliveries are *derived* through the
// system's relationships: each publication forces one keep/drop decision
// per locally interested stream, and the per-application filters let only a
// small fraction through (the paper: BRASSes filter out 80%+ of events —
// the Fig 8 curves imply ~91%).
func Figure8(seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	const buckets = 96 // 24h of 15-minute intervals

	type curves struct {
		streams, subs, pubs, decisions, deliveries []SeriesPoint
	}
	var c curves
	var minMax = map[string][2]float64{}
	observe := func(name string, v float64) {
		mm, ok := minMax[name]
		if !ok {
			mm = [2]float64{v, v}
		}
		if v < mm[0] {
			mm[0] = v
		}
		if v > mm[1] {
			mm[1] = v
		}
		minMax[name] = mm
	}

	for b := 0; b < buckets; b++ {
		t := figStart.Add(time.Duration(b) * 15 * time.Minute)
		hour := float64(b) / 4

		// Driving curves with small per-bucket measurement noise (each
		// point in the paper is an average of 15 one-minute samples).
		noise := func() float64 { return 1 + 0.015*rng.NormFloat64() }
		streams := workload.ActiveStreamsPerUser.At(t) * noise()
		subs := workload.SubscriptionsPerUserMinute.At(t) * noise()
		pubs := workload.PublicationsPerUserMinute.At(t) * noise()

		// Derived: every publication is fanned out to the BRASS tier;
		// the number of delivery decisions per publication grows with
		// how many streams are up (more active streams → more streams
		// per topic on average).
		interestPerPub := 1.35 + 0.75*(streams-6.5)/(11-6.5) // 1.35..2.10
		decisions := pubs * interestPerPub * noise()
		// Per-application filtering keeps ~9% of decisions.
		keepRate := 0.088 + 0.004*rng.NormFloat64()
		deliveries := decisions * keepRate

		c.streams = append(c.streams, SeriesPoint{X: hour, Y: streams})
		c.subs = append(c.subs, SeriesPoint{X: hour, Y: subs})
		c.pubs = append(c.pubs, SeriesPoint{X: hour, Y: pubs})
		c.decisions = append(c.decisions, SeriesPoint{X: hour, Y: decisions})
		c.deliveries = append(c.deliveries, SeriesPoint{X: hour, Y: deliveries})

		observe("streams", streams)
		observe("subs", subs)
		observe("pubs", pubs)
		observe("decisions", decisions)
		observe("deliveries", deliveries)
	}

	rangeStr := func(name string) string {
		mm := minMax[name]
		return fmt.Sprintf("%.2f-%.2f", mm[0], mm[1])
	}
	r := Result{ID: "fig8", Title: "Per-user diurnal activity (24h, 15-min buckets)"}
	r.AddRow("active request-streams per user", "6.5-11", rangeStr("streams"), "diurnal")
	r.AddRow("subscriptions /min/user", "0.5-0.75", rangeStr("subs"), "~5000 subs/s per BRASS host at fleet scale")
	r.AddRow("Pylon publications /min/user", "0.8-1.5", rangeStr("pubs"), "")
	r.AddRow("decisions /min/user", "1.1-3.2", rangeStr("decisions"), "derived: pubs x interested streams")
	r.AddRow("deliveries /min/user", "0.1-0.25", rangeStr("deliveries"), "derived: ~91% filtered at BRASS")

	filtered := 1 - minMax["deliveries"][1]/minMax["decisions"][1]
	r.AddRow("fraction filtered at BRASS", ">80%", pct(filtered), "1 - deliveries/decisions")

	r.AddSeries("streams", c.streams)
	r.AddSeries("subscriptions", c.subs)
	r.AddSeries("publications", c.pubs)
	r.AddSeries("decisions", c.decisions)
	r.AddSeries("deliveries", c.deliveries)
	return r
}

// Figure10 regenerates the failure-handling figure: last-mile connection
// drops per minute (top) and proxy-induced stream reconnects per minute
// (bottom), in 15-minute buckets, plus the Pylon quorum-breakage event
// count the paper cites for the same week.
func Figure10(seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	const buckets = 96

	var drops, reconnects []SeriesPoint
	var dropMin, dropMax = 1e18, 0.0
	var recMin, recMax = 1e18, 0.0
	// Reconnect causes (paper: overwhelmingly BRASS software upgrades and
	// load rebalancing; outright BRASS failures very rare).
	var fromUpgrades, fromRebalance, fromFailures float64

	for b := 0; b < buckets; b++ {
		t := figStart.Add(time.Duration(b) * 15 * time.Minute)
		hour := float64(b) / 4
		noise := func() float64 { return 1 + 0.03*rng.NormFloat64() }

		d := workload.EdgeConnectionDropsPerMinute.At(t) * noise()
		drops = append(drops, SeriesPoint{X: hour, Y: d})
		if d < dropMin {
			dropMin = d
		}
		if d > dropMax {
			dropMax = d
		}

		rc := workload.ProxyReconnectsPerMinute.At(t) * noise()
		// Upgrade waves add spikes during working hours.
		if hour >= 9 && hour <= 17 && rng.Float64() < 0.2 {
			rc *= 1.5
		}
		reconnects = append(reconnects, SeriesPoint{X: hour, Y: rc})
		if rc < recMin {
			recMin = rc
		}
		if rc > recMax {
			recMax = rc
		}
		fromUpgrades += rc * 0.78
		fromRebalance += rc * 0.21
		fromFailures += rc * 0.01
	}

	// Pylon quorum breakages: the paper counted 33 events March 30 -
	// April 5 (one week); scale to the simulated day.
	quorumEvents := workload.Poisson(rng, 33.0/7)

	r := Result{ID: "fig10", Title: "Failure handling: drops and proxy-induced reconnects"}
	mil := func(v float64) string { return fmt.Sprintf("%.1fM", v/1e6) }
	r.AddRow("last-mile drops /min (range)", "18M-33M", mil(dropMin)+"-"+mil(dropMax), "diurnal")
	r.AddRow("proxy-induced reconnects /min (range)", "0.5M-2M", mil(recMin)+"-"+mil(recMax),
		"spikes during upgrade windows")
	total := fromUpgrades + fromRebalance + fromFailures
	r.AddRow("reconnects from upgrades+rebalancing", "overwhelming majority",
		pct((fromUpgrades+fromRebalance)/total), "outright BRASS failures are rare")
	r.AddRow("Pylon quorum-breakage events (per day)", "~4.7 (33/week)",
		fmt.Sprintf("%d", quorumEvents), "Poisson draw at the paper's weekly rate")

	r.AddSeries("drops", drops)
	r.AddSeries("reconnects", reconnects)
	return r
}
