package durlog

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"bladerunner/internal/sim"
)

// TestCursorProperty is the fuzz-ish cursor soundness proof the issue
// asks for: a seeded op stream (contiguous appends, dup replays, gaps,
// clock advances past retention, ring-overflow bursts, and failover-style
// header rewrites clamped by the client rule) runs against a plain map
// mirror, and after every read the two invariants that define the
// subsystem are checked:
//
//  1. gap-free: a successful ReadFrom(c) returns exactly the sequences
//     c.Seq+1 .. tail, each byte-identical to what was appended — never
//     a batch with a hole papered over;
//  2. never fabricate: the returned cursor names the real appended tail,
//     and any cursor the log cannot prove continuous with its window
//     (wrong epoch, pre-retention, post-truncation) fails with
//     ErrCursorExpired rather than being "repaired".
func TestCursorProperty(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if env := os.Getenv("BR_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("BR_CHAOS_SEED %q: %v", env, err)
		}
		seeds = []int64{v}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCursorProperty(t, seed)
		})
	}
}

func runCursorProperty(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	clk := sim.NewManualClock(time.Unix(0, 0))
	l := New(Config{
		Clock:          clk,
		HotBytes:       128,
		SegmentEntries: 8,
		Segments:       3,
		Retention:      time.Minute,
	})
	const topic = "/MB/1"
	l.Open(topic)

	mirror := make(map[uint64][]byte) // every seq ever appended
	var tail uint64

	appendNext := func() {
		tail++
		p := []byte(fmt.Sprintf("payload-%d-%d", seed, tail))
		l.Append(topic, tail, p)
		mirror[tail] = p
	}

	checkRead := func(c Cursor, label string) {
		out, next, err := l.ReadFrom(topic, c)
		if errors.Is(err, ErrCursorExpired) {
			return // refusing is always sound
		}
		if err != nil {
			t.Fatalf("%s: ReadFrom(%v): %v", label, c, err)
		}
		// Never fabricate: the returned cursor is the real tail.
		if next.Seq != tail {
			t.Fatalf("%s: next cursor seq %d, real tail %d", label, next.Seq, tail)
		}
		// Gap-free: exactly c.Seq+1 .. tail, byte-identical.
		want := c.Seq + 1
		for _, e := range out {
			if e.Seq != want {
				t.Fatalf("%s: ReadFrom(%v) gap: got seq %d, want %d", label, c, e.Seq, want)
			}
			if !bytes.Equal(e.Payload, mirror[e.Seq]) {
				t.Fatalf("%s: seq %d payload corrupted", label, e.Seq)
			}
			want++
		}
		if want != tail+1 {
			t.Fatalf("%s: ReadFrom(%v) stopped at %d, tail %d", label, c, want-1, tail)
		}
	}

	for op := 0; op < 4000; op++ {
		switch r := rng.Intn(100); {
		case r < 55: // contiguous append (the common delivery)
			appendNext()
		case r < 62: // duplicate replay (a second stream on the topic)
			if tail > 0 {
				dup := tail - uint64(rng.Intn(int(min64(tail, 8))))
				l.Append(topic, dup, mirror[dup])
			}
		case r < 67: // gap: deliveries the host never saw
			tail += uint64(2 + rng.Intn(10))
			p := []byte(fmt.Sprintf("payload-%d-%d", seed, tail))
			l.Append(topic, tail, p)
			mirror[tail] = p
		case r < 75: // clock advance, sometimes past retention
			clk.Advance(time.Duration(rng.Intn(90)) * time.Second)
		case r < 85: // resume from a plausible recent cursor
			epoch, _, _, _ := l.Window(topic)
			back := uint64(rng.Intn(24))
			seq := tail
			if back < seq {
				seq -= back
			} else {
				seq = 0
			}
			checkRead(Cursor{Epoch: epoch, Seq: seq}, "recent")
		case r < 92: // failover rewrite: the server-advanced header cursor
			// comes back clamped by the client's applied seq.
			epoch, _, _, _ := l.Window(topic)
			advanced := Cursor{Epoch: epoch, Seq: tail + uint64(rng.Intn(5))}
			applied := uint64(0)
			if tail > 0 {
				applied = uint64(rng.Intn(int(tail + 1)))
			}
			clamped, ok := Parse(Clamp(advanced.String(), applied))
			if !ok {
				t.Fatalf("clamped cursor unparseable")
			}
			if clamped.Seq > applied {
				t.Fatalf("Clamp raised the claim: %v > %d", clamped, applied)
			}
			checkRead(clamped, "failover-clamped")
		default: // adversarial cursor: wrong epoch / ancient / beyond tail
			c := Cursor{Epoch: uint64(rng.Intn(4)), Seq: uint64(rng.Intn(int(tail + 10)))}
			checkRead(c, "adversarial")
		}
	}

	// Final sweep: every cursor position in [0, tail+3] either serves
	// gap-free or expires; positions beyond the tail always expire.
	epoch, _, _, _ := l.Window(topic)
	lo := uint64(0)
	if tail > 64 {
		lo = tail - 64
	}
	for seq := lo; seq <= tail+3; seq++ {
		c := Cursor{Epoch: epoch, Seq: seq}
		if seq > tail {
			if _, _, err := l.ReadFrom(topic, c); !errors.Is(err, ErrCursorExpired) {
				t.Fatalf("beyond-tail cursor %v err = %v", c, err)
			}
			continue
		}
		checkRead(c, "sweep")
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
