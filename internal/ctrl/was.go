package ctrl

import (
	"encoding/json"

	"bladerunner/internal/pylon"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/was"
)

// WAS method names.
const (
	MethodQuery               = "was.query"
	MethodPointQuery          = "was.point-query"
	MethodMutate              = "was.mutate"
	MethodResolveSubscription = "was.resolve-subscription"
	MethodCheckVisibility     = "was.check-visibility"
	MethodResolvePayload      = "was.resolve-payload"
	MethodFetchPayload        = "was.fetch-payload"
)

type exprParams struct {
	Region string `json:"region,omitempty"`
	Viewer uint64 `json:"viewer"`
	Expr   string `json:"expr"`
}

type bytesResult struct {
	Data []byte `json:"data"`
}

type topicsResult struct {
	Topics []string `json:"topics"`
}

type visibilityParams struct {
	Viewer uint64      `json:"viewer"`
	Event  pylon.Event `json:"event"`
}

type payloadParams struct {
	Region string      `json:"region,omitempty"`
	App    string      `json:"app"`
	Viewer uint64      `json:"viewer,omitempty"`
	Event  pylon.Event `json:"event"`
}

// ServeWAS registers the WAS tier's handlers on conn, exposing srv to the
// remote peer.
func ServeWAS(conn *Conn, srv *was.Server) {
	exprCall := func(fn func(region string, viewer socialgraph.UserID, expr string) ([]byte, error)) Handler {
		return func(params json.RawMessage) (any, error) {
			var p exprParams
			if err := json.Unmarshal(params, &p); err != nil {
				return nil, err
			}
			out, err := fn(p.Region, socialgraph.UserID(p.Viewer), p.Expr)
			if err != nil {
				return nil, err
			}
			return bytesResult{Data: out}, nil
		}
	}
	conn.Handle(MethodQuery, exprCall(srv.QueryIn))
	conn.Handle(MethodPointQuery, exprCall(srv.PointQueryIn))
	conn.Handle(MethodMutate, exprCall(srv.MutateIn))
	conn.Handle(MethodResolveSubscription, func(params json.RawMessage) (any, error) {
		var p exprParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		topics, err := srv.ResolveSubscription(socialgraph.UserID(p.Viewer), p.Expr)
		if err != nil {
			return nil, err
		}
		res := topicsResult{Topics: make([]string, len(topics))}
		for i, t := range topics {
			res.Topics[i] = string(t)
		}
		return res, nil
	})
	conn.Handle(MethodCheckVisibility, func(params json.RawMessage) (any, error) {
		var p visibilityParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return nil, srv.CheckEventVisibility(socialgraph.UserID(p.Viewer), p.Event)
	})
	conn.Handle(MethodResolvePayload, func(params json.RawMessage) (any, error) {
		var p payloadParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		out, err := srv.ResolvePayloadIn(p.Region, p.App, p.Event)
		if err != nil {
			return nil, err
		}
		return bytesResult{Data: out}, nil
	})
	conn.Handle(MethodFetchPayload, func(params json.RawMessage) (any, error) {
		var p payloadParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		out, err := srv.FetchPayloadIn(p.Region, p.App, socialgraph.UserID(p.Viewer), p.Event)
		if err != nil {
			return nil, err
		}
		return bytesResult{Data: out}, nil
	})
}

// WASClient implements brass.Backend and device.Backend over a control
// connection to the WAS tier's node.
type WASClient struct {
	conn *Conn
}

// NewWASClient wraps conn.
func NewWASClient(conn *Conn) *WASClient { return &WASClient{conn: conn} }

func (c *WASClient) exprCall(method, region string, viewer socialgraph.UserID, expr string) ([]byte, error) {
	var res bytesResult
	err := c.conn.Call(method, exprParams{Region: region, Viewer: uint64(viewer), Expr: expr}, &res)
	if err != nil {
		return nil, err
	}
	return res.Data, nil
}

// QueryIn implements brass.Backend and device.Backend.
func (c *WASClient) QueryIn(region string, viewer socialgraph.UserID, expr string) ([]byte, error) {
	return c.exprCall(MethodQuery, region, viewer, expr)
}

// PointQueryIn implements device.Backend.
func (c *WASClient) PointQueryIn(region string, viewer socialgraph.UserID, expr string) ([]byte, error) {
	return c.exprCall(MethodPointQuery, region, viewer, expr)
}

// MutateIn implements device.Backend.
func (c *WASClient) MutateIn(region string, viewer socialgraph.UserID, expr string) ([]byte, error) {
	return c.exprCall(MethodMutate, region, viewer, expr)
}

// ResolveSubscription implements brass.Backend.
func (c *WASClient) ResolveSubscription(viewer socialgraph.UserID, expr string) ([]pylon.Topic, error) {
	var res topicsResult
	if err := c.conn.Call(MethodResolveSubscription, exprParams{Viewer: uint64(viewer), Expr: expr}, &res); err != nil {
		return nil, err
	}
	topics := make([]pylon.Topic, len(res.Topics))
	for i, t := range res.Topics {
		topics[i] = pylon.Topic(t)
	}
	return topics, nil
}

// CheckEventVisibility implements brass.Backend.
func (c *WASClient) CheckEventVisibility(viewer socialgraph.UserID, ev pylon.Event) error {
	return c.conn.Call(MethodCheckVisibility, visibilityParams{Viewer: uint64(viewer), Event: ev}, nil)
}

// ResolvePayloadIn implements brass.Backend.
func (c *WASClient) ResolvePayloadIn(region, app string, ev pylon.Event) ([]byte, error) {
	var res bytesResult
	if err := c.conn.Call(MethodResolvePayload, payloadParams{Region: region, App: app, Event: ev}, &res); err != nil {
		return nil, err
	}
	return res.Data, nil
}

// FetchPayloadIn implements brass.Backend.
func (c *WASClient) FetchPayloadIn(region, app string, viewer socialgraph.UserID, ev pylon.Event) ([]byte, error) {
	var res bytesResult
	if err := c.conn.Call(MethodFetchPayload, payloadParams{Region: region, App: app, Viewer: uint64(viewer), Event: ev}, &res); err != nil {
		return nil, err
	}
	return res.Data, nil
}
