package ctrl

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"bladerunner/internal/kvstore"
	"bladerunner/internal/pylon"
)

// pair returns two connected Conns over an in-memory pipe.
func pair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca := NewConn("a", a, nil).Start()
	cb := NewConn("b", b, nil).Start()
	t.Cleanup(func() {
		_ = ca.Close()
		_ = cb.Close()
	})
	return ca, cb
}

func TestCallRoundTrip(t *testing.T) {
	ca, cb := pair(t)
	cb.Handle("echo", func(params json.RawMessage) (any, error) {
		var in map[string]string
		if err := json.Unmarshal(params, &in); err != nil {
			return nil, err
		}
		in["seen"] = "yes"
		return in, nil
	})
	var out map[string]string
	if err := ca.Call("echo", map[string]string{"k": "v"}, &out); err != nil {
		t.Fatal(err)
	}
	if out["k"] != "v" || out["seen"] != "yes" {
		t.Errorf("out = %v", out)
	}
}

func TestUnknownMethodErrors(t *testing.T) {
	ca, _ := pair(t)
	err := ca.Call("no.such", nil, nil)
	if err == nil {
		t.Fatal("unknown method succeeded")
	}
}

func TestSentinelErrorsSurviveTheWire(t *testing.T) {
	ca, cb := pair(t)
	cases := []error{
		pylon.ErrNoQuorum,
		pylon.ErrUnavailable,
		pylon.ErrShed,
		pylon.ErrUnknownSubscriber,
	}
	cb.Handle("fail", func(params json.RawMessage) (any, error) {
		var p struct{ I int }
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		// Wrapped, as real code returns them.
		return nil, fmt.Errorf("subscribe shard 3: %w", cases[p.I])
	})
	for i, want := range cases {
		err := ca.Call("fail", struct{ I int }{i}, nil)
		if !errors.Is(err, want) {
			t.Errorf("case %d: sentinel %v lost: got %v", i, want, err)
		}
	}
}

func TestNotificationsArriveInOrder(t *testing.T) {
	ca, cb := pair(t)
	const n = 100
	got := make(chan int, n)
	cb.Handle("tick", func(params json.RawMessage) (any, error) {
		var p struct{ I int }
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		got <- p.I
		return nil, nil
	})
	for i := 0; i < n; i++ {
		if err := ca.Notify("tick", struct{ I int }{i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case v := <-got:
			if v != i {
				t.Fatalf("notification %d arrived as %d: reordered", i, v)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("notification %d never arrived", i)
		}
	}
}

func TestConcurrentCallsCorrelate(t *testing.T) {
	ca, cb := pair(t)
	cb.Handle("double", func(params json.RawMessage) (any, error) {
		var p struct{ V int }
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return struct{ V int }{2 * p.V}, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out struct{ V int }
			if err := ca.Call("double", struct{ V int }{i}, &out); err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if out.V != 2*i {
				t.Errorf("call %d: got %d", i, out.V)
			}
		}(i)
	}
	wg.Wait()
}

// A handler that issues a Call back over the same connection must not
// deadlock: dispatch runs off the read loop, so the nested response can
// still be read.
func TestHandlerMayCallBackOnSameConn(t *testing.T) {
	ca, cb := pair(t)
	ca.Handle("leaf", func(json.RawMessage) (any, error) {
		return struct{ OK bool }{true}, nil
	})
	cb.Handle("nested", func(json.RawMessage) (any, error) {
		var out struct{ OK bool }
		if err := cb.Call("leaf", nil, &out); err != nil {
			return nil, err
		}
		return out, nil
	})
	done := make(chan error, 1)
	go func() {
		var out struct{ OK bool }
		done <- ca.Call("nested", nil, &out)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("nested call deadlocked")
	}
}

func TestCloseFailsPendingCalls(t *testing.T) {
	ca, cb := pair(t)
	block := make(chan struct{})
	cb.Handle("hang", func(json.RawMessage) (any, error) {
		<-block
		return nil, nil
	})
	done := make(chan error, 1)
	go func() { done <- ca.Call("hang", nil, nil) }()
	time.Sleep(20 * time.Millisecond) // let the call get in flight
	_ = ca.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrConnClosed) {
			t.Errorf("pending call err = %v, want ErrConnClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call never failed")
	}
	close(block)
}

func TestPeerCloseReportsEOF(t *testing.T) {
	a, b := net.Pipe()
	errc := make(chan error, 1)
	ca := NewConn("a", a, func(err error) { errc <- err }).Start()
	cb := NewConn("b", b, nil).Start()
	_ = cb.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, io.EOF) {
			t.Errorf("onClose err = %v, want io.EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("onClose never fired")
	}
	_ = ca.Close()
}

// collector implements pylon.Subscriber.
type collector struct {
	id string
	mu sync.Mutex
	ev []pylon.Event
}

func (c *collector) ID() string { return c.id }
func (c *collector) Deliver(ev pylon.Event) {
	c.mu.Lock()
	c.ev = append(c.ev, ev)
	c.mu.Unlock()
}
func (c *collector) events() []pylon.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]pylon.Event(nil), c.ev...)
}

func TestPylonClientEndToEnd(t *testing.T) {
	svc := newPylon(t)
	serverConn, clientConn := pair(t)
	ServePylon(serverConn, svc, nil)
	cli := NewPylonClient(clientConn)

	sub := &collector{id: "host-1"}
	cli.RegisterHost(sub)
	if err := cli.Subscribe("/t/1", "host-1"); err != nil {
		t.Fatal(err)
	}
	if !cli.WaitForSubscriber("/t/1", time.Second) {
		t.Fatal("WaitForSubscriber timed out")
	}
	n, err := cli.Publish(pylon.Event{Topic: "/t/1", Ref: 42, Meta: map[string]string{"k": "v"}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("Publish fanout = %d, want 1", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		evs := sub.events()
		if len(evs) == 1 {
			if evs[0].Ref != 42 || evs[0].Meta["k"] != "v" || evs[0].Topic != "/t/1" {
				t.Errorf("delivered event = %+v", evs[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("event never delivered")
		}
		time.Sleep(time.Millisecond)
	}
	// Unsubscribe: fanout stops counting us.
	if err := cli.Unsubscribe("/t/1", "host-1"); err != nil {
		t.Fatal(err)
	}
	if n, _ := cli.Publish(pylon.Event{Topic: "/t/1"}); n != 0 {
		t.Errorf("post-unsubscribe fanout = %d", n)
	}
	cli.RemoveHost("host-1")
	if err := cli.Subscribe("/t/1", "host-1"); !errors.Is(err, pylon.ErrUnknownSubscriber) {
		t.Errorf("subscribe after RemoveHost = %v, want ErrUnknownSubscriber", err)
	}
}

func newPylon(t *testing.T) *pylon.Service {
	t.Helper()
	nodes := []*kvstore.Node{
		kvstore.NewNode("a", "us"), kvstore.NewNode("b", "eu"), kvstore.NewNode("c", "ap"),
	}
	return pylon.MustNew(pylon.DefaultConfig(), kvstore.MustNewCluster(nodes, 3))
}
