package cache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bladerunner/internal/sim"
)

func TestLRUBasicPutGet(t *testing.T) {
	c := NewLRU[string, int](2, 0, 0, nil, 1)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get(missing) hit")
	}
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("Get(a) after overwrite = %d, want 10", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewLRU[string, int](2, 0, 0, nil, 1)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")    // a is now more recent than b
	c.Put("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; want LRU victim")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a was evicted; want it retained (recently used)")
	}
	if _, _, evictions, _ := statsOf(c); evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
}

func statsOf[K comparable, V any](c *LRU[K, V]) (h, m, e, x int64) {
	return c.Stats()
}

func TestLRUTTLExpiry(t *testing.T) {
	clk := sim.NewManualClock(time.Unix(0, 0))
	c := NewLRU[string, int](4, time.Second, 0, clk, 1)
	c.Put("a", 1)
	clk.Advance(999 * time.Millisecond)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	clk.Advance(2 * time.Millisecond)
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry survived past its TTL")
	}
	if _, _, _, exp := statsOf(c); exp != 1 {
		t.Fatalf("expirations = %d, want 1", exp)
	}
	// A Put restarts the TTL.
	c.Put("a", 2)
	clk.Advance(500 * time.Millisecond)
	if v, ok := c.Get("a"); !ok || v != 2 {
		t.Fatalf("Get after re-Put = %d, %v; want 2, true", v, ok)
	}
}

func TestLRUTTLJitterDeterministicAndBounded(t *testing.T) {
	const ttl = time.Second
	deadlines := func(seed int64) []time.Time {
		clk := sim.NewManualClock(time.Unix(0, 0))
		c := NewLRU[int, int](16, ttl, 0.5, clk, seed)
		var out []time.Time
		for i := 0; i < 8; i++ {
			c.Put(i, i)
			out = append(out, c.entries[i].expires)
		}
		return out
	}
	a, b := deadlines(7), deadlines(7)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("same seed, different jitter at %d: %v vs %v", i, a[i], b[i])
		}
		d := a[i].Sub(time.Unix(0, 0))
		if d <= ttl/2 || d > ttl {
			t.Fatalf("jittered TTL %v outside (%v, %v]", d, ttl/2, ttl)
		}
	}
	other := deadlines(8)
	same := true
	for i := range a {
		if !a[i].Equal(other[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

func TestLRUDelete(t *testing.T) {
	c := NewLRU[string, int](4, 0, 0, nil, 1)
	c.Put("a", 1)
	c.Delete("a")
	c.Delete("a") // idempotent
	if _, ok := c.Get("a"); ok {
		t.Fatal("deleted entry still resident")
	}
}

func TestLRUConcurrentAccess(t *testing.T) {
	c := NewLRU[int, int](64, time.Millisecond, 0.3, nil, 42)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*31 + i) % 100
				switch i % 3 {
				case 0:
					c.Put(k, i)
				case 1:
					c.Get(k)
				default:
					c.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSingleflightCoalesces(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	const waiters = 8
	results := make(chan int, waiters)
	go func() {
		v, err, _ := g.Do("k", func() (int, error) {
			close(started)
			<-release
			calls.Add(1)
			return 42, nil
		})
		if err != nil {
			t.Error(err)
		}
		results <- v
	}()
	<-started
	var wg sync.WaitGroup
	for i := 0; i < waiters-1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, sh := g.Do("k", func() (int, error) {
				calls.Add(1)
				return -1, nil
			})
			if err != nil {
				t.Error(err)
			}
			if !sh {
				t.Error("late caller not marked shared")
			}
			results <- v
		}()
	}
	// Wait (white box) until every duplicate has joined the in-flight call —
	// duplicates register under the group lock before blocking — then let
	// the leader finish.
	allJoined := func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		c := g.flight["k"]
		return c != nil && c.joined == waiters-1
	}
	for !allJoined() {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	for i := 0; i < waiters; i++ {
		if v := <-results; v != 42 {
			t.Fatalf("caller got %d, want 42 (leader's result)", v)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
}

func TestSingleflightErrorSharedAndForgotten(t *testing.T) {
	var g Group[string, int]
	boom := errors.New("boom")
	if _, err, _ := g.Do("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The key is forgotten after completion: the next call runs afresh.
	v, err, shared := g.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 || shared {
		t.Fatalf("second Do = %d, %v, shared=%v; want 7, nil, false", v, err, shared)
	}
}

func TestSingleflightDistinctKeysRunIndependently(t *testing.T) {
	var g Group[int, string]
	var wg sync.WaitGroup
	var calls atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := g.Do(i, func() (string, error) {
				calls.Add(1)
				return fmt.Sprint(i), nil
			})
			if err != nil || v != fmt.Sprint(i) {
				t.Errorf("Do(%d) = %q, %v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if calls.Load() != 16 {
		t.Fatalf("calls = %d, want 16 (no cross-key coalescing)", calls.Load())
	}
}
