package overload

import (
	"testing"
	"time"

	"bladerunner/internal/sim"
)

var t0 = time.Date(2021, 10, 26, 0, 0, 0, 0, time.UTC)

func TestTokenBucketRefill(t *testing.T) {
	b := TokenBucket{Rate: 10, Burst: 5}
	// Fresh bucket fills to capacity.
	for i := 0; i < 5; i++ {
		if !b.Allow(t0) {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if b.Allow(t0) {
		t.Fatal("bucket should be empty")
	}
	// 100ms at 10 tokens/s refills exactly one token.
	if !b.Allow(t0.Add(100 * time.Millisecond)) {
		t.Fatal("refilled token denied")
	}
	if b.Allow(t0.Add(100 * time.Millisecond)) {
		t.Fatal("second token should not exist yet")
	}
	// Refill never exceeds Burst.
	if got := b.Tokens(t0.Add(time.Hour)); got != 5 {
		t.Fatalf("tokens after long idle = %v, want burst cap 5", got)
	}
}

func TestTokenBucketDisabled(t *testing.T) {
	var b TokenBucket
	for i := 0; i < 1000; i++ {
		if !b.Allow(t0) {
			t.Fatal("disabled bucket must always allow")
		}
	}
}

func TestTokenBucketHeaderStateRoundTrip(t *testing.T) {
	b := TokenBucket{Rate: 10, Burst: 5}
	for i := 0; i < 4; i++ {
		b.Allow(t0)
	}
	s := b.HeaderState()

	var r TokenBucket
	r.Rate, r.Burst = 10, 5
	r.RestoreHeaderState(s, t0)
	if got, want := r.Tokens(t0), b.Tokens(t0); got != want {
		t.Fatalf("restored tokens = %v, want %v", got, want)
	}
	// One token left: exactly one more Allow at t0.
	if !r.Allow(t0) || r.Allow(t0) {
		t.Fatal("restored bucket admits wrong count")
	}
}

// TestTokenBucketRestoreClampsFuture is the admission-controller twin of
// the RateLimiter clamp bug: a header persisted under a skewed clock dates
// `last` into the future; restoring must clamp to now so the stream does
// not stall until that wall time.
func TestTokenBucketRestoreClampsFuture(t *testing.T) {
	future := TokenBucket{Rate: 1, Burst: 1}
	future.tokens = 0
	future.last = t0.Add(24 * time.Hour)
	s := future.HeaderState()

	r := TokenBucket{Rate: 1, Burst: 1}
	r.RestoreHeaderState(s, t0)
	// Clamped to t0 with zero tokens: one refill interval away, not a day.
	if r.Allow(t0) {
		t.Fatal("no token should be available immediately after restore")
	}
	if !r.Allow(t0.Add(time.Second)) {
		t.Fatal("bucket still stalled one refill interval after restore: future last not clamped")
	}
}

func TestTokenBucketNonMonotonicNow(t *testing.T) {
	b := TokenBucket{Rate: 1, Burst: 1}
	if !b.Allow(t0) {
		t.Fatal("initial token denied")
	}
	// Clock retreats far beyond one refill interval: the bucket re-anchors
	// at the earlier now instead of waiting for the original timeline.
	back := t0.Add(-time.Hour)
	b.Allow(back)
	if !b.Allow(back.Add(time.Second)) {
		t.Fatal("bucket stalled after clock retreat")
	}
}

func TestTokenBucketRestoreMalformed(t *testing.T) {
	for _, s := range []string{"", "garbage", "12", "@", "x@y", "100@-5", "100@0"} {
		b := TokenBucket{Rate: 10, Burst: 5}
		b.Allow(t0) // establish real state
		before := b.tokens
		b.RestoreHeaderState(s, t0)
		if b.tokens != before {
			t.Fatalf("malformed state %q mutated the bucket", s)
		}
	}
}

func TestAdmissionNilAndSeeding(t *testing.T) {
	var a *Admission
	if !a.Allow() {
		t.Fatal("nil admission must allow")
	}
	if NewAdmission(0, 10, nil, 1) != nil {
		t.Fatal("rate<=0 must return nil (disabled)")
	}

	clk := sim.NewManualClock(t0)
	seen := map[float64]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		a := NewAdmission(100, 50, clk, seed)
		tok := a.Tokens()
		if tok < 25 || tok > 50 {
			t.Fatalf("seed %d: initial fill %v outside [burst/2, burst]", seed, tok)
		}
		seen[tok] = true
	}
	if len(seen) < 2 {
		t.Fatal("seeding did not decorrelate initial fills")
	}
}

func TestAdmissionCounters(t *testing.T) {
	clk := sim.NewManualClock(t0)
	a := NewAdmission(1, 5, clk, 42)
	allowed, shed := 0, 0
	for i := 0; i < 10; i++ {
		if a.Allow() {
			allowed++
		} else {
			shed++
		}
	}
	if allowed == 0 || shed == 0 {
		t.Fatalf("expected both outcomes at a saturated bucket: allowed=%d shed=%d", allowed, shed)
	}
	if a.Admitted.Value() != int64(allowed) || a.Shed.Value() != int64(shed) {
		t.Fatalf("counter mismatch: %d/%d vs %d/%d",
			a.Admitted.Value(), a.Shed.Value(), allowed, shed)
	}
	clk.Advance(time.Second)
	if !a.Allow() {
		t.Fatal("token did not refill on the sim clock")
	}
}

func TestQueueFIFOAndBound(t *testing.T) {
	q := NewQueue[int](4)
	for i := 1; i <= 4; i++ {
		if shed := q.Push(i, Data); shed != 0 {
			t.Fatalf("push %d shed %d items under capacity", i, shed)
		}
	}
	// Fifth push sheds the OLDEST data item (1), keeping the freshest.
	if shed := q.Push(5, Data); shed != 1 {
		t.Fatalf("push over capacity shed %d items, want 1", shed)
	}
	want := []int{2, 3, 4, 5}
	for _, w := range want {
		v, class, ok := q.Pop()
		if !ok || v != w || class != Data {
			t.Fatalf("pop = (%d,%v,%v), want (%d,data,true)", v, class, ok, w)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
	if q.ShedData.Value() != 1 {
		t.Fatalf("ShedData = %d, want 1", q.ShedData.Value())
	}
}

func TestQueueNeverShedsControl(t *testing.T) {
	q := NewQueue[int](2)
	q.Push(1, Control)
	q.Push(2, Control)
	// Full of control: the bound is exceeded rather than dropping any.
	if shed := q.Push(3, Control); shed != 0 {
		t.Fatal("control item was shed")
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d, want 3 (bound exceeded to keep control)", q.Len())
	}
	// A data push at capacity with only control queued also keeps all.
	if shed := q.Push(4, Data); shed != 0 {
		t.Fatal("shed reported with no data to shed")
	}
	// Mixed: now a push sheds the data item, not older control items.
	if shed := q.Push(5, Data); shed != 1 {
		t.Fatal("expected the lone data item to shed")
	}
	var classes []Class
	for {
		_, c, ok := q.Pop()
		if !ok {
			break
		}
		classes = append(classes, c)
	}
	if len(classes) != 4 || classes[0] != Control || classes[1] != Control || classes[2] != Control || classes[3] != Data {
		t.Fatalf("drain order/classes wrong: %v", classes)
	}
}

func TestQueueDegradedRecoveredTransitions(t *testing.T) {
	q := NewQueue[int](4)
	var degraded, recovered int
	q.OnDegraded = func() { degraded++ }
	q.OnRecovered = func() { recovered++ }

	for i := 0; i < 4; i++ {
		q.Push(i, Data)
	}
	q.Push(4, Data) // first shed: enter shedding
	q.Push(5, Data) // still shedding: no second signal
	if degraded != 1 || !q.Shedding() {
		t.Fatalf("degraded=%d shedding=%v, want 1/true", degraded, q.Shedding())
	}
	// Drain to half capacity: leave shedding.
	q.Pop()
	q.Pop()
	if recovered != 1 || q.Shedding() {
		t.Fatalf("recovered=%d shedding=%v, want 1/false", recovered, q.Shedding())
	}
	if q.Degraded.Value() != 1 || q.Recovered.Value() != 1 {
		t.Fatalf("transition counters %d/%d, want 1/1", q.Degraded.Value(), q.Recovered.Value())
	}
}

func TestQueueReadyWakeup(t *testing.T) {
	q := NewQueue[int](0) // unbounded
	for i := 0; i < 100; i++ {
		q.Push(i, Data)
	}
	// However many tokens coalesced, one drain pass sees every item.
	got := 0
	<-q.Ready()
	for {
		_, _, ok := q.Pop()
		if !ok {
			break
		}
		got++
	}
	if got != 100 {
		t.Fatalf("drained %d items, want 100", got)
	}
	if q.ShedData.Value() != 0 || q.Shedding() {
		t.Fatal("unbounded queue must never shed")
	}
}

func TestShedMarker(t *testing.T) {
	if !IsShedMarker(ShedMarkerPrefix + "brass-loop") {
		t.Fatal("shed marker not detected")
	}
	for _, s := range []string{"", "upstream lost", RecoveredMarkerPrefix + "x"} {
		if IsShedMarker(s) {
			t.Fatalf("%q misdetected as shed marker", s)
		}
	}
}
