// TypingIndicator: the dancing ellipses (paper §3.4), plus a demonstration
// of BURST's failure handling — the serving BRASS host is killed mid-
// conversation and the stream is repaired by the proxy to another host,
// with flow-status signals visible at the device (§4 axioms 1 and 2).
//
// Run with:
//
//	go run ./examples/typing
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/core"
	"bladerunner/internal/sim"
)

func main() {
	cluster, err := core.NewCluster(core.DefaultConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	const threadID, me, peer = 5, 1, 2

	device := cluster.NewDevice(me)
	defer device.Close()
	if err := device.Connect(); err != nil {
		log.Fatal(err)
	}
	st, err := device.Subscribe(apps.AppTyping,
		fmt.Sprintf("typingIndicator(threadID: %d, peer: %d)", threadID, peer), nil)
	if err != nil {
		log.Fatal(err)
	}
	topic := apps.TypingTopic(threadID, peer)
	clock := sim.RealClock{}
	cluster.Pylon.WaitForSubscriber(clock, topic, 10*time.Second)

	peerDev := cluster.NewDevice(peer)
	defer peerDev.Close()
	typeOn := func() {
		if _, err := peerDev.Mutate(fmt.Sprintf(`setTyping(threadID: %d, on: "true")`, threadID)); err != nil {
			log.Fatal(err)
		}
	}
	recv := func(what string) apps.TypingPayload {
		select {
		case delta := <-st.Updates:
			var p apps.TypingPayload
			_ = json.Unmarshal(delta.Payload, &p)
			return p
		case <-sim.Timeout(clock, 10*time.Second):
			log.Fatalf("timed out waiting for %s", what)
			return apps.TypingPayload{}
		}
	}

	typeOn()
	p := recv("typing indicator")
	fmt.Printf("user %d is typing in thread %d: %v\n", p.User, p.Thread, p.Typing)

	// Kill the BRASS host serving this stream.
	servingID := cluster.Pylon.Subscribers(topic)[0]
	fmt.Printf("\nkilling BRASS host %s (software upgrade, say)...\n", servingID)
	cluster.Net.SetDown(servingID, true)
	for _, h := range cluster.Hosts {
		if h.ID() == servingID {
			h.Close()
		}
	}

	// The reverse proxy detects the failure, signals the stream (axiom 1),
	// and repairs it to another BRASS using the stored subscription
	// request (axiom 2). Watch the flow events at the device:
	sawFlow := false
	select {
	case code := <-st.Flow:
		fmt.Printf("device flow-status: %v (failure signalled end-to-end)\n", code)
		sawFlow = true
	case <-sim.Timeout(clock, 5*time.Second):
	}
	if !sawFlow {
		fmt.Println("(flow event already drained)")
	}

	// Wait for a replacement host to hold the subscription.
	deadline := clock.Now().Add(10 * time.Second)
	for clock.Now().Before(deadline) {
		subs := cluster.Pylon.Subscribers(topic)
		if len(subs) > 0 && subs[0] != servingID {
			fmt.Printf("stream repaired: now served by %s\n", subs[0])
			break
		}
		sim.Sleep(clock, 10*time.Millisecond)
	}

	// The indicator still works — delivery continued across the failure.
	typeOn()
	p = recv("post-failover indicator")
	fmt.Printf("user %d is typing again: %v — stream survived the BRASS failure\n", p.User, p.Typing)
}
