// Package workload generates synthetic load calibrated to the published
// characterization of Bladerunner's production traffic (paper §5): the
// Pareto-distributed update counts over areas of interest (Table 1), the
// request-stream lifetime mixture (Table 2), the per-stream publication
// activity (Fig 7), and the diurnal per-user rate curves (Fig 8).
//
// The paper itself characterizes the workload it measured; we generate from
// those published distributions and then verify that the system reproduces
// the metrics derived from them. See DESIGN.md §4.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// UpdateBucket is one row of the Table 1 distribution: with probability
// Prob, an area of interest receives between Lo and Hi updates per day
// (inclusive), sampled log-uniformly.
type UpdateBucket struct {
	Prob   float64
	Lo, Hi int64
}

// Table1Buckets is the paper's Table 1: the distribution of daily update
// counts across areas of interest. 83% of areas see zero updates; a tiny
// fraction sees more than 100M. The middle mass (100..1M) is the remainder
// the paper elides.
var Table1Buckets = []UpdateBucket{
	{Prob: 0.83, Lo: 0, Hi: 0},
	{Prob: 0.16, Lo: 1, Hi: 9},
	{Prob: 0.0095, Lo: 10, Hi: 99},
	{Prob: 0.000009, Lo: 100, Hi: 999_999},
	{Prob: 0.00049, Lo: 1_000_001, Hi: 99_999_999},
	{Prob: 0.000001, Lo: 100_000_001, Hi: 2_000_000_000},
}

// AreaUpdates samples a daily update count for one area of interest from
// the given bucket distribution.
func AreaUpdates(rng *rand.Rand, buckets []UpdateBucket) int64 {
	x := rng.Float64() * totalProb(buckets)
	for _, b := range buckets {
		x -= b.Prob
		if x < 0 {
			return sampleLogUniform(rng, b.Lo, b.Hi)
		}
	}
	last := buckets[len(buckets)-1]
	return sampleLogUniform(rng, last.Lo, last.Hi)
}

func totalProb(buckets []UpdateBucket) float64 {
	var t float64
	for _, b := range buckets {
		t += b.Prob
	}
	return t
}

// sampleLogUniform draws log-uniformly from [lo, hi] (heavy-tailed buckets
// should not be dominated by their upper bound).
func sampleLogUniform(rng *rand.Rand, lo, hi int64) int64 {
	if lo >= hi {
		return lo
	}
	lf, hf := math.Log(float64(lo+1)), math.Log(float64(hi+1))
	v := math.Exp(lf + rng.Float64()*(hf-lf))
	n := int64(v) - 1
	if n < lo {
		n = lo
	}
	if n > hi {
		n = hi
	}
	return n
}

// LifetimeBucket is one row of the Table 2 stream-lifetime mixture.
type LifetimeBucket struct {
	Prob   float64
	Lo, Hi time.Duration
}

// Table2Buckets is the paper's Table 2: 45% of request-streams live under
// 15 minutes, 26% between 15 minutes and an hour, 25% between one hour and
// a day, and 4% longer than a day.
var Table2Buckets = []LifetimeBucket{
	{Prob: 0.45, Lo: 5 * time.Second, Hi: 15 * time.Minute},
	{Prob: 0.26, Lo: 15 * time.Minute, Hi: time.Hour},
	{Prob: 0.25, Lo: time.Hour, Hi: 24 * time.Hour},
	{Prob: 0.04, Lo: 24 * time.Hour, Hi: 72 * time.Hour},
}

// StreamLifetime samples a request-stream lifetime from the Table 2
// mixture (log-uniform within each bucket).
func StreamLifetime(rng *rand.Rand, buckets []LifetimeBucket) time.Duration {
	var total float64
	for _, b := range buckets {
		total += b.Prob
	}
	x := rng.Float64() * total
	for _, b := range buckets {
		x -= b.Prob
		if x < 0 {
			return logUniformDur(rng, b.Lo, b.Hi)
		}
	}
	last := buckets[len(buckets)-1]
	return logUniformDur(rng, last.Lo, last.Hi)
}

func logUniformDur(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	if lo >= hi {
		return lo
	}
	lf, hf := math.Log(float64(lo)), math.Log(float64(hi))
	return time.Duration(math.Exp(lf + rng.Float64()*(hf-lf)))
}

// Diurnal is a smooth day-shaped curve oscillating between Min (at the
// trough) and Max (at PeakHour), matching the shape of the paper's Fig 8
// and Fig 10 curves.
type Diurnal struct {
	Min, Max float64
	PeakHour float64 // local hour of the daily maximum, e.g. 19.5
}

// At returns the curve value at time t (using t's UTC hour-of-day).
func (d Diurnal) At(t time.Time) float64 {
	hour := float64(t.Hour()) + float64(t.Minute())/60
	phase := 2 * math.Pi * (hour - d.PeakHour) / 24
	mid := (d.Min + d.Max) / 2
	amp := (d.Max - d.Min) / 2
	return mid + amp*math.Cos(phase)
}

// Paper Fig 8 per-user curves.
var (
	// ActiveStreamsPerUser: 6.5 .. 11 active request-streams.
	ActiveStreamsPerUser = Diurnal{Min: 6.5, Max: 11, PeakHour: 19}
	// SubscriptionsPerUserMinute: 0.5 .. 0.75 subscription requests.
	SubscriptionsPerUserMinute = Diurnal{Min: 0.5, Max: 0.75, PeakHour: 19}
	// PublicationsPerUserMinute: 0.8 .. 1.5 Pylon publications.
	PublicationsPerUserMinute = Diurnal{Min: 0.8, Max: 1.5, PeakHour: 19}
	// DecisionsPerUserMinute: 1.1 .. 3.2 BRASS delivery decisions.
	DecisionsPerUserMinute = Diurnal{Min: 1.1, Max: 3.2, PeakHour: 19}
	// DeliveriesPerUserMinute: 0.1 .. 0.25 update deliveries.
	DeliveriesPerUserMinute = Diurnal{Min: 0.1, Max: 0.25, PeakHour: 19}
)

// Paper Fig 10 fleet-wide curves (absolute counts per minute).
var (
	// EdgeConnectionDropsPerMinute: 18M .. 33M last-mile drops.
	EdgeConnectionDropsPerMinute = Diurnal{Min: 18e6, Max: 33e6, PeakHour: 19}
	// ProxyReconnectsPerMinute: 0.5M .. 2M proxy-induced stream
	// reconnects, dominated by BRASS software upgrades and rebalancing.
	ProxyReconnectsPerMinute = Diurnal{Min: 0.5e6, Max: 2e6, PeakHour: 14}
)

// Poisson draws a Poisson-distributed count with the given mean. For large
// means it uses the normal approximation (the experiments simulate millions
// of events per bucket).
func Poisson(rng *rand.Rand, mean float64) int64 {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		return int64(v + 0.5)
	}
	// Knuth for small means.
	l := math.Exp(-mean)
	var k int64
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// CommentBurst models a live-video comment storm: a base Poisson rate with
// occasional multiplicative bursts (the lunar-eclipse moment of §2).
type CommentBurst struct {
	BaseRatePerSec  float64
	BurstMultiplier float64
	BurstProb       float64 // probability a given second is inside a burst
}

// RateAt returns the expected comments per second at second index i.
func (c CommentBurst) RateAt(rng *rand.Rand, i int) float64 {
	rate := c.BaseRatePerSec
	if rng.Float64() < c.BurstProb {
		rate *= c.BurstMultiplier
	}
	return rate
}

// Validate sanity-checks bucket tables.
func Validate(buckets []UpdateBucket) error {
	if len(buckets) == 0 {
		return fmt.Errorf("workload: empty bucket table")
	}
	t := totalProb(buckets)
	if t <= 0 {
		return fmt.Errorf("workload: bucket probabilities sum to %v", t)
	}
	for i, b := range buckets {
		if b.Prob < 0 || b.Lo > b.Hi {
			return fmt.Errorf("workload: bad bucket %d: %+v", i, b)
		}
	}
	return nil
}

// Zipf is a power-law popularity distribution over n ranked items (areas
// of interest, topics): item k (0-based rank) is drawn with probability
// proportional to 1/(k+1)^S. This is the shape of topic popularity the
// paper's Table 1 implies — a tiny set of celebrity areas absorbs most of
// the update volume while the long tail is nearly idle — packaged as a
// sampler the scenario suite can drive subscriptions AND publishes from.
//
// Sampling is inverse-CDF over precomputed cumulative weights (one binary
// search, no rejection loop), so it is cheap enough to call per scheduled
// event and fully deterministic under a seeded rng.
type Zipf struct {
	cum []float64 // cum[k] = sum of weights of ranks 0..k, normalized to 1
	s   float64
}

// NewZipf builds a Zipf distribution over n items with exponent s. n must
// be positive; s <= 0 degenerates to uniform.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("workload: NewZipf with n=%d", n))
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -s)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	return &Zipf{cum: cum, s: s}
}

// N returns the number of ranked items.
func (z *Zipf) N() int { return len(z.cum) }

// S returns the exponent.
func (z *Zipf) S() float64 { return z.s }

// Sample draws one rank in [0, N).
func (z *Zipf) Sample(rng *rand.Rand) int {
	x := rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of rank k.
func (z *Zipf) Prob(k int) float64 {
	if k < 0 || k >= len(z.cum) {
		return 0
	}
	if k == 0 {
		return z.cum[0]
	}
	return z.cum[k] - z.cum[k-1]
}
