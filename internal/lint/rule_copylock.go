package lint

import (
	"go/ast"
	"go/types"
)

// MutexByValue flags copies of values whose type (transitively, through
// struct fields and arrays) contains a sync lock or a sync/atomic value.
// A copied mutex is a distinct mutex: the copy guards nothing, and the
// paper's lock-heavy state machines (Pylon shard maps, BRASS instance
// tables, BURST session state) silently lose mutual exclusion.
//
// Checked copy sites: non-pointer method receivers, function parameters
// and results declared with a lock-containing type, assignments and
// composite-literal/call-argument/return expressions that copy an existing
// lock-containing value (taking a pointer, or constructing a fresh value
// with a literal, is fine), and range statements whose value variable
// copies lock-containing elements.
type MutexByValue struct{}

func (r *MutexByValue) Name() string { return "mutex-by-value" }

func (r *MutexByValue) Doc() string {
	return "values containing sync locks or atomics must not be copied; pass pointers"
}

// syncValueTypes are the sync and sync/atomic types that must never be
// copied after first use.
var syncValueTypes = map[string]bool{
	"sync.Mutex":     true,
	"sync.RWMutex":   true,
	"sync.WaitGroup": true,
	"sync.Cond":      true,
	"sync.Once":      true,
	"sync.Pool":      true,
	"sync.Map":       true,
	"atomic.Bool":    true,
	"atomic.Int32":   true,
	"atomic.Int64":   true,
	"atomic.Uint32":  true,
	"atomic.Uint64":  true,
	"atomic.Uintptr": true,
	"atomic.Pointer": true,
	"atomic.Value":   true,
}

// containsLock reports whether a value of type t embeds a lock and names
// the offending component type.
func containsLock(t types.Type) (string, bool) {
	return lockIn(t, make(map[types.Type]bool))
}

func lockIn(t types.Type, seen map[types.Type]bool) (string, bool) {
	t = types.Unalias(t)
	if seen[t] {
		return "", false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if pkg := obj.Pkg(); pkg != nil {
			p := pkg.Path()
			if p == "sync" || p == "sync/atomic" {
				short := pkg.Name() + "." + obj.Name()
				if syncValueTypes[short] {
					return short, true
				}
				return "", false
			}
		}
		return lockIn(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, ok := lockIn(u.Field(i).Type(), seen); ok {
				return name, true
			}
		}
	case *types.Array:
		return lockIn(u.Elem(), seen)
	}
	return "", false
}

// copiesExisting reports whether e denotes an existing value (so using it
// in a value context performs a copy). Composite literals, calls, and
// conversions construct fresh values and are exempt.
func copiesExisting(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

func (r *MutexByValue) Check(c *Context) {
	info := c.Pkg.Info

	lockType := func(e ast.Expr) (string, bool) {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return "", false
		}
		return containsLock(tv.Type)
	}

	checkCopy := func(e ast.Expr, what string) {
		if !copiesExisting(e) {
			return
		}
		if name, ok := lockType(e); ok {
			c.Reportf(e.Pos(), "%s copies a value containing %s; use a pointer", what, name)
		}
	}

	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := info.Types[field.Type]
			if !ok || tv.Type == nil {
				continue
			}
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if name, ok := containsLock(tv.Type); ok {
				c.Reportf(field.Type.Pos(), "%s passes a value containing %s by value; use a pointer", what, name)
			}
		}
	}

	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(x.Recv, "method receiver")
				checkFieldList(x.Type.Params, "parameter")
				checkFieldList(x.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldList(x.Type.Params, "parameter")
				checkFieldList(x.Type.Results, "result")
			case *ast.AssignStmt:
				// Multi-value RHS from a call is not a syntactic copy of
				// an existing value; pairwise RHS expressions are.
				for _, rhs := range x.Rhs {
					checkCopy(rhs, "assignment")
				}
			case *ast.CompositeLit:
				for _, elt := range x.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						elt = kv.Value
					}
					checkCopy(elt, "composite literal")
				}
			case *ast.CallExpr:
				if _, isConv := info.Types[x.Fun]; isConv && info.Types[x.Fun].IsType() {
					return true // conversion, handled as its operand's copy below
				}
				for _, arg := range x.Args {
					checkCopy(arg, "call argument")
				}
			case *ast.ReturnStmt:
				for _, res := range x.Results {
					checkCopy(res, "return")
				}
			case *ast.RangeStmt:
				// The value variable is a definition, so resolve its type
				// through Defs rather than the expression-type map.
				if id, ok := x.Value.(*ast.Ident); ok && id.Name != "_" {
					if obj := info.Defs[id]; obj != nil {
						if name, ok := containsLock(obj.Type()); ok {
							c.Reportf(id.Pos(), "range value copies a value containing %s; range over indices or pointers", name)
						}
					}
				}
			}
			return true
		})
	}
}
