package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// This file is the reachability/escape engine on top of the call graph:
// per-function summaries answering "can this function allocate?", "can it
// block?", and "can this parameter reach a shedable sink?". Summaries are
// memoized on the Program, computed lazily, and optimistic on recursion
// cycles (a cycle member is assumed clean while its own summary is in
// flight; the fixpoint this computes is the least one, which is sound for
// acyclic facts reached from outside the cycle).

// Fact is one reason a summary is dirty: a position inside the summarized
// function plus a human-readable description. Descriptions compose through
// call edges ("call to f, which allocates: make(map[...]) at queue.go:87"),
// so a diagnostic at the top of a chain carries the full call path down to
// the offending construct.
type Fact struct {
	Pos  token.Pos
	Desc string
}

// maxFacts caps facts retained per summary; diagnostics only ever surface
// the first, the rest exist so tests can assert multiplicity.
const maxFacts = 4

// ---- allocation summaries ----

// stdlibAllocFreePkgs are stdlib packages every function of which is
// allocation-free in steady state.
var stdlibAllocFreePkgs = map[string]bool{
	"sync/atomic":     true,
	"math":            true,
	"math/bits":       true,
	"encoding/binary": true, // fixed-width put/get on caller buffers
}

// stdlibAllocFree lists individual stdlib functions (by FullName) the
// hot-path gate trusts not to allocate per call in steady state. Entries
// here are judgement calls documented in DESIGN.md §8b: e.g. sync.Pool
// Get/Put allocate only when the pool is cold, bufio.Writer.Write only
// when the buffer spills — exactly the amortized costs the runtime
// 0 allocs/op gates also accept.
var stdlibAllocFreeFuncs = map[string]bool{
	"(*sync.Mutex).Lock":      true,
	"(*sync.Mutex).Unlock":    true,
	"(*sync.Mutex).TryLock":   true,
	"(*sync.RWMutex).Lock":    true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RLock":   true,
	"(*sync.RWMutex).RUnlock": true,
	"(*sync.Once).Do":         true,
	"(*sync.Pool).Get":        true,
	"(*sync.Pool).Put":        true,
	"(*sync.WaitGroup).Add":   true,
	"(*sync.WaitGroup).Done":  true,

	"time.Now":                true,
	"(time.Time).Add":         true,
	"(time.Time).Sub":         true,
	"(time.Time).Before":      true,
	"(time.Time).After":       true,
	"(time.Time).Equal":       true,
	"(time.Time).IsZero":      true,
	"(time.Time).UnixNano":    true,
	"(time.Duration).Seconds": true,

	"(*bytes.Buffer).Reset":    true,
	"(*bytes.Buffer).Len":      true,
	"(*bytes.Buffer).Cap":      true,
	"(*bytes.Buffer).Bytes":    true,
	"(*bufio.Writer).Flush":    true,
	"(*bufio.Writer).Buffered": true,

	"errors.Is": true,

	"(*math/rand.Rand).Int63n": true,

	// Interface methods the module cannot resolve statically but the hot
	// send path is known to drive through *bufio.Writer (buffered writes
	// don't allocate; the flush cost is the transport's, not the
	// framer's).
	"(io.Writer).Write": true,
}

// stdlibAllocFree reports whether the gate trusts the external function f
// to be allocation-free.
func stdlibAllocFree(f *types.Func) bool {
	if f.Pkg() != nil && stdlibAllocFreePkgs[f.Pkg().Path()] {
		return true
	}
	return stdlibAllocFreeFuncs[f.FullName()]
}

// AllocFacts summarizes whether n can allocate on its non-error paths.
// Hotpath-annotated functions summarize as clean by contract: they are
// gated directly by the hot-path-alloc rule, and their audited
// //brlint:allow residue must not re-dirty every caller.
func (p *Program) AllocFacts(n *FuncNode) []Fact {
	if n.Hotpath {
		return nil
	}
	if facts, ok := p.allocMemo[n]; ok {
		return facts
	}
	if p.allocBusy[n] {
		return nil
	}
	p.allocBusy[n] = true
	var facts []Fact
	p.scanAllocs(n, func(pos token.Pos, desc string) {
		if len(facts) < maxFacts {
			facts = append(facts, Fact{Pos: pos, Desc: desc})
		}
	})
	p.allocBusy[n] = false
	p.allocMemo[n] = facts
	return facts
}

// scanAllocs walks n's body emitting every allocation fact: both syntactic
// constructs (literals, make/new/append, closures, boxing, string building)
// and call edges that cannot be proven allocation-free. Blocks that
// terminate by returning a non-nil error (or panicking) are failure paths
// the steady-state gate ignores — the runtime 0 allocs/op benchmarks never
// execute them either.
func (p *Program) scanAllocs(n *FuncNode, emit func(pos token.Pos, desc string)) {
	s := &allocScanner{p: p, n: n, emit: emit}
	s.block(n.Decl.Body.List)
}

type allocScanner struct {
	p    *Program
	n    *FuncNode
	emit func(pos token.Pos, desc string)
}

func (s *allocScanner) info() *types.Info { return s.n.Pkg.Info }

func (s *allocScanner) block(stmts []ast.Stmt) {
	for _, st := range stmts {
		s.stmt(st)
	}
}

func (s *allocScanner) stmt(st ast.Stmt) {
	switch v := st.(type) {
	case nil:
	case *ast.IfStmt:
		s.stmt(v.Init)
		s.expr(v.Cond)
		if !s.errBranch(v) {
			s.block(v.Body.List)
		}
		s.stmt(v.Else)
	case *ast.BlockStmt:
		s.block(v.List)
	case *ast.ForStmt:
		s.stmt(v.Init)
		s.expr(v.Cond)
		s.stmt(v.Post)
		s.block(v.Body.List)
	case *ast.RangeStmt:
		s.expr(v.X)
		s.block(v.Body.List)
	case *ast.SwitchStmt:
		s.stmt(v.Init)
		s.expr(v.Tag)
		s.block(v.Body.List)
	case *ast.TypeSwitchStmt:
		s.stmt(v.Init)
		s.stmt(v.Assign)
		s.block(v.Body.List)
	case *ast.SelectStmt:
		s.block(v.Body.List)
	case *ast.CaseClause:
		for _, e := range v.List {
			s.expr(e)
		}
		s.block(v.Body)
	case *ast.CommClause:
		s.stmt(v.Comm)
		s.block(v.Body)
	case *ast.GoStmt:
		s.emit(v.Pos(), "go statement starts a goroutine")
		for _, a := range v.Call.Args {
			s.expr(a)
		}
	case *ast.DeferStmt:
		// The deferred call runs on this goroutine: its edge counts.
		s.expr(v.Call)
	case *ast.ReturnStmt:
		s.boxingInReturn(v)
		for _, e := range v.Results {
			s.expr(e)
		}
	case *ast.AssignStmt:
		s.boxingInAssign(v)
		for _, e := range v.Rhs {
			s.expr(e)
		}
		for _, e := range v.Lhs {
			s.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.expr(e)
					}
				}
			}
		}
	case *ast.ExprStmt:
		s.expr(v.X)
	case *ast.SendStmt:
		s.expr(v.Chan)
		s.expr(v.Value)
	case *ast.IncDecStmt:
		s.expr(v.X)
	case *ast.LabeledStmt:
		s.stmt(v.Stmt)
	}
}

// errBranch reports whether the if body is failure handling the gate
// exempts: either the classic `if err != nil` guard, or a body terminating
// by returning a non-nil error (a sentinel/wrapped error, not a tail call)
// or panicking.
func (s *allocScanner) errBranch(v *ast.IfStmt) bool {
	if cond, ok := v.Cond.(*ast.BinaryExpr); ok && cond.Op == token.NEQ {
		if isNilIdent(cond.Y) && s.isErrorExpr(cond.X) || isNilIdent(cond.X) && s.isErrorExpr(cond.Y) {
			return true
		}
	}
	if len(v.Body.List) == 0 {
		return false
	}
	switch last := v.Body.List[len(v.Body.List)-1].(type) {
	case *ast.ReturnStmt:
		if len(last.Results) == 0 {
			return false
		}
		res := ast.Unparen(last.Results[len(last.Results)-1])
		if !s.isErrorExpr(res) || isNilIdent(res) {
			return false
		}
		switch r := res.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			return true // return err / return pkg.ErrSentinel
		case *ast.CallExpr:
			name := calleeFullName(s.info(), r)
			return name == "fmt.Errorf" || strings.HasPrefix(name, "errors.")
		}
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := s.info().Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func (s *allocScanner) isErrorExpr(e ast.Expr) bool {
	tv, ok := s.info().Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return types.AssignableTo(tv.Type, types.Universe.Lookup("error").Type())
}

func (s *allocScanner) expr(e ast.Expr) {
	switch v := e.(type) {
	case nil:
	case *ast.FuncLit:
		s.emit(v.Pos(), "function literal allocates a closure")
		// The literal's body runs at its invocation point, not here.
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if cl, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
				s.emit(v.Pos(), "&composite literal (heap allocation)")
				s.compositeElems(cl)
				return
			}
		}
		s.expr(v.X)
	case *ast.CompositeLit:
		switch s.typeOf(v).(type) {
		case *types.Slice:
			s.emit(v.Pos(), "slice literal")
		case *types.Map:
			s.emit(v.Pos(), "map literal")
		}
		s.compositeElems(v)
	case *ast.BinaryExpr:
		if v.Op == token.ADD && s.isStringType(e) && !s.isConst(e) {
			s.emit(v.Pos(), "string concatenation")
		}
		s.expr(v.X)
		s.expr(v.Y)
	case *ast.CallExpr:
		s.call(v, false)
	case *ast.IndexExpr:
		// string(b) used directly as a map index is the compiler's
		// recognized no-copy lookup form.
		if _, isMap := s.typeOf(v.X).(*types.Map); isMap {
			if conv, ok := ast.Unparen(v.Index).(*ast.CallExpr); ok && s.isConversion(conv) {
				if _, isStr := s.typeOf(conv).(*types.Basic); isStr {
					s.expr(v.X)
					for _, a := range conv.Args {
						s.expr(a)
					}
					return
				}
			}
		}
		s.expr(v.X)
		s.expr(v.Index)
	case *ast.IndexListExpr:
		s.expr(v.X)
		for _, ix := range v.Indices {
			s.expr(ix)
		}
	case *ast.ParenExpr:
		s.expr(v.X)
	case *ast.SelectorExpr:
		s.expr(v.X)
	case *ast.StarExpr:
		s.expr(v.X)
	case *ast.SliceExpr:
		s.expr(v.X)
		s.expr(v.Low)
		s.expr(v.High)
		s.expr(v.Max)
	case *ast.TypeAssertExpr:
		s.expr(v.X)
	case *ast.KeyValueExpr:
		s.expr(v.Key)
		s.expr(v.Value)
	}
}

func (s *allocScanner) compositeElems(cl *ast.CompositeLit) {
	for _, el := range cl.Elts {
		s.expr(el)
	}
}

// call classifies one call expression: builtin, conversion, or call edge.
func (s *allocScanner) call(call *ast.CallExpr, deferred bool) {
	info := s.info()
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		s.conversion(call)
		for _, a := range call.Args {
			s.expr(a)
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "append":
				s.emit(call.Pos(), "append may grow its backing array")
			case "make":
				s.emit(call.Pos(), "make allocates")
			case "new":
				s.emit(call.Pos(), "new allocates")
			}
			for _, a := range call.Args {
				s.expr(a)
			}
			return
		}
	}
	if desc := s.p.allocEdgeFact(s.n.Pkg, call); desc != "" {
		s.emit(call.Pos(), desc)
	}
	s.boxingInCall(call)
	s.expr(call.Fun)
	for _, a := range call.Args {
		s.expr(a)
	}
}

// conversion flags allocating conversions: string<->[]byte/[]rune copies
// and boxing conversions into interface types.
func (s *allocScanner) conversion(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	dst := s.typeOf(call)
	src := s.typeOf(call.Args[0])
	if dst == nil || src == nil {
		return
	}
	if isStringSliceConv(dst, src) || isStringSliceConv(src, dst) {
		s.emit(call.Pos(), "string/[]byte conversion copies")
		return
	}
	if types.IsInterface(dst.Underlying()) && s.boxes(call.Args[0], src) {
		s.emit(call.Pos(), "conversion boxes a value into an interface")
	}
}

func isStringSliceConv(a, b types.Type) bool {
	ab, aok := a.Underlying().(*types.Basic)
	_, bok := b.Underlying().(*types.Slice)
	return aok && bok && ab.Info()&types.IsString != 0
}

// boxes reports whether converting a value of type t (the static type of
// expr e) into an interface allocates: anything not already an interface
// and not pointer-shaped does, unless the operand is a constant (the
// compiler materializes constant boxes in static data).
func (s *allocScanner) boxes(e ast.Expr, t types.Type) bool {
	if t == nil || types.IsInterface(t.Underlying()) {
		return false
	}
	if tv, ok := s.info().Types[e]; ok && (tv.Value != nil || tv.IsNil()) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if b := t.Underlying().(*types.Basic); b.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// boxingInCall flags arguments boxed into interface-typed parameters.
func (s *allocScanner) boxingInCall(call *ast.CallExpr) {
	f := calleeFunc(s.info(), call)
	if f == nil {
		return
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1 && call.Ellipsis == token.NoPos:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		if s.boxes(arg, s.typeOf(arg)) {
			s.emit(arg.Pos(), "argument boxes into interface parameter of "+shortFuncName(f))
		}
	}
}

// boxingInReturn flags results boxed into interface-typed return values.
func (s *allocScanner) boxingInReturn(ret *ast.ReturnStmt) {
	sig, ok := s.n.Fn.Type().(*types.Signature)
	if !ok || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		rt := sig.Results().At(i).Type()
		if types.IsInterface(rt.Underlying()) && s.boxes(res, s.typeOf(res)) {
			s.emit(res.Pos(), "return value boxes into interface result")
		}
	}
}

// boxingInAssign flags right-hand sides boxed into interface-typed
// destinations.
func (s *allocScanner) boxingInAssign(as *ast.AssignStmt) {
	if as.Tok == token.DEFINE || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt := s.typeOf(as.Lhs[i])
		if lt == nil || !types.IsInterface(lt.Underlying()) {
			continue
		}
		if s.boxes(as.Rhs[i], s.typeOf(as.Rhs[i])) {
			s.emit(as.Rhs[i].Pos(), "assignment boxes a value into an interface")
		}
	}
}

func (s *allocScanner) typeOf(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	if tv, ok := s.info().Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (s *allocScanner) isStringType(e ast.Expr) bool {
	t := s.typeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (s *allocScanner) isConst(e ast.Expr) bool {
	tv, ok := s.info().Types[e]
	return ok && tv.Value != nil
}

// isConversion reports whether call is a type conversion.
func (s *allocScanner) isConversion(call *ast.CallExpr) bool {
	tv, ok := s.info().Types[call.Fun]
	return ok && tv.IsType()
}

// allocEdgeFact decides whether one call edge can be proven
// allocation-free; "" means clean, anything else is the composed fact
// description (which carries the downstream chain).
func (p *Program) allocEdgeFact(pkg *Package, call *ast.CallExpr) string {
	f := calleeFunc(pkg.Info, call)
	if f == nil {
		return "call through a function value cannot be proven allocation-free"
	}
	f = origin(f)
	if isInterfaceMethod(f) {
		if stdlibAllocFree(f) {
			return ""
		}
		targets := p.implementations(f)
		if len(targets) == 0 {
			return "interface call to " + shortFuncName(f) + " cannot be resolved to module implementations"
		}
		for _, t := range targets {
			if t.Hotpath {
				continue
			}
			if facts := p.AllocFacts(t); len(facts) > 0 {
				return "interface call to " + shortFuncName(f) + " may dispatch to " + t.Name() +
					", which allocates: " + facts[0].Desc + " at " + p.shortPos(facts[0].Pos)
			}
		}
		return ""
	}
	if t := p.Node(f); t != nil {
		if t.Hotpath {
			return ""
		}
		if facts := p.AllocFacts(t); len(facts) > 0 {
			return "call to " + t.Name() + ", which allocates: " + facts[0].Desc + " at " + p.shortPos(facts[0].Pos)
		}
		return ""
	}
	if stdlibAllocFree(f) {
		return ""
	}
	return "call to " + shortFuncName(f) + " is not on the allocation-free allowlist"
}

// ---- blocking summaries ----

// blockingByName are external calls known to park the calling goroutine.
// Module functions that block (sim.Sleep and friends) need no table entry:
// their channel operations are discovered transitively.
var blockingByName = map[string]string{
	"time.Sleep":                "sleeps",
	"(*sync.WaitGroup).Wait":    "waits on a WaitGroup",
	"(*sync.Cond).Wait":         "waits on a Cond",
	"(net.Conn).Read":           "does network I/O",
	"(net.Conn).Write":          "does network I/O",
	"(*net.TCPConn).Read":       "does network I/O",
	"(*net.TCPConn).Write":      "does network I/O",
	"(io.Reader).Read":          "does blocking I/O",
	"(io.ReadWriteCloser).Read": "does blocking I/O",
}

// BlockFacts summarizes whether n can block the calling goroutine: its own
// channel operations (sends, receives, selects without default, ranges
// over channels) plus any call edge into a function that blocks. Unlike
// the allocation summary there is no error-path exemption — blocking in
// failure handling under a lock stalls the system just the same.
func (p *Program) BlockFacts(n *FuncNode) []Fact {
	if facts, ok := p.blockMemo[n]; ok {
		return facts
	}
	if p.blockBusy[n] {
		return nil
	}
	p.blockBusy[n] = true
	var facts []Fact
	emit := func(pos token.Pos, desc string) {
		if len(facts) < maxFacts {
			facts = append(facts, Fact{Pos: pos, Desc: desc})
		}
	}
	blockWalkChanOps(n.Decl.Body, emit, n.Pkg.Info)
	for _, cs := range n.Calls {
		if cs.Spawned {
			continue
		}
		if desc := p.blockEdgeFact(cs); desc != "" {
			emit(cs.Pos, desc)
		}
	}
	p.blockBusy[n] = false
	p.blockMemo[n] = facts
	return facts
}

// blockWalkChanOps emits n's own channel-level blocking operations,
// skipping function literals and treating select-with-default comm clauses
// as non-blocking.
func blockWalkChanOps(body ast.Node, emit func(token.Pos, string), info *types.Info) {
	var walk func(ast.Node)
	walk = func(node ast.Node) {
		if node == nil {
			return
		}
		ast.Inspect(node, func(x ast.Node) bool {
			switch v := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SelectStmt:
				hasDefault := false
				for _, c := range v.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					emit(v.Pos(), "select with no default case")
				}
				for _, c := range v.Body.List {
					cc := c.(*ast.CommClause)
					for _, st := range cc.Body {
						walk(st)
					}
				}
				return false
			case *ast.SendStmt:
				emit(v.Arrow, "channel send")
			case *ast.UnaryExpr:
				if v.Op == token.ARROW {
					emit(v.OpPos, "channel receive")
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[v.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						emit(v.Pos(), "range over a channel")
					}
				}
			}
			return true
		})
	}
	walk(body)
}

// blockEdgeFact decides whether the call edge can block ("" if not
// provably so; dynamic calls are treated optimistically, documented in
// DESIGN.md §8b).
func (p *Program) blockEdgeFact(cs *CallSite) string {
	if cs.Dynamic || cs.Callee == nil {
		return ""
	}
	name := cs.Callee.FullName()
	if why, ok := blockingByName[name]; ok {
		return "call to " + shortFuncName(cs.Callee) + " " + why
	}
	for _, t := range cs.Targets {
		if facts := p.BlockFacts(t); len(facts) > 0 {
			return "call to " + t.Name() + ", which blocks: " + facts[0].Desc + " at " + p.shortPos(facts[0].Pos)
		}
	}
	return ""
}

// ---- shed-reachability summaries (control-never-shed) ----

type shedKind uint8

const (
	shedNever shedKind = iota
	// shedPerClass: the value sheds iff the class argument at ClassParam
	// classifies it Data (the sanctioned Queue.Push contract).
	shedPerClass
	// shedAlways: the value can shed regardless of any class the caller
	// attached — the classification is lost on the way to the sink.
	shedAlways
)

type shedFact struct {
	Kind       shedKind
	ClassParam int
	Pos        token.Pos
	Desc       string
}

// ParamShedFacts computes, per parameter index of n, whether a value
// passed there can reach a shedable sink: a Data-class (or unconditional)
// overload.Queue Push, a select-with-default drop, or transitively a
// shedding parameter of a callee. Parameters captured by function literals
// are treated optimistically (the literal's invocation point is analyzed
// on its own).
func (p *Program) ParamShedFacts(n *FuncNode) map[int]shedFact {
	if facts, ok := p.shedMemo[n]; ok {
		return facts
	}
	if p.shedBusy[n] {
		return nil
	}
	p.shedBusy[n] = true
	facts := make(map[int]shedFact)
	sig := n.Fn.Type().(*types.Signature)
	paramIdx := make(map[types.Object]int, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		paramIdx[sig.Params().At(i)] = i
	}
	record := func(i int, f shedFact) {
		old, ok := facts[i]
		if !ok || f.Kind > old.Kind {
			facts[i] = f
		}
	}
	info := n.Pkg.Info
	refsParam := func(e ast.Expr) (int, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return 0, false
		}
		i, ok := paramIdx[info.Uses[id]]
		return i, ok
	}

	// Select-with-default sends of a parameter are best-effort drops.
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		sel, ok := x.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			cc := c.(*ast.CommClause)
			if send, ok := cc.Comm.(*ast.SendStmt); ok {
				if i, ok := refsParam(send.Value); ok {
					record(i, shedFact{Kind: shedAlways, Pos: send.Arrow,
						Desc: "select-with-default drop"})
				}
			}
		}
		return true
	})

	for _, cs := range n.Calls {
		if cs.Callee == nil {
			continue
		}
		// The bounded-queue intrinsic: Push(v, class) sheds v iff class
		// is Data. This is modeled, not derived — the queue's shed loop
		// skips Control entries by construction (overload.Queue docs).
		if vArg, cArg, ok := p.queuePushArgs(cs); ok {
			if i, isParam := refsParam(vArg); isParam {
				switch cls := p.classifyClassArg(n, paramIdx, cArg); cls.kind {
				case classControl:
					// never sheds
				case classParam:
					record(i, shedFact{Kind: shedPerClass, ClassParam: cls.param, Pos: cs.Pos,
						Desc: "bounded-queue push classified by parameter"})
				default:
					record(i, shedFact{Kind: shedAlways, Pos: cs.Pos,
						Desc: "Data-class push to bounded overload.Queue"})
				}
			}
			continue
		}
		for _, t := range cs.Targets {
			sub := p.ParamShedFacts(t)
			if len(sub) == 0 {
				continue
			}
			sig := t.Fn.Type().(*types.Signature)
			for ai, arg := range cs.Call.Args {
				if ai >= sig.Params().Len() {
					break
				}
				i, isParam := refsParam(arg)
				if !isParam {
					continue
				}
				sf, ok := sub[ai]
				if !ok {
					continue
				}
				switch sf.Kind {
				case shedAlways:
					record(i, shedFact{Kind: shedAlways, Pos: cs.Pos,
						Desc: "passed to " + t.Name() + ", which sheds it (" + sf.Desc + " at " + p.shortPos(sf.Pos) + ")"})
				case shedPerClass:
					if sf.ClassParam >= len(cs.Call.Args) {
						continue
					}
					switch cls := p.classifyClassArg(n, paramIdx, cs.Call.Args[sf.ClassParam]); cls.kind {
					case classControl:
						// classified Control downstream: never sheds
					case classParam:
						record(i, shedFact{Kind: shedPerClass, ClassParam: cls.param, Pos: cs.Pos,
							Desc: "passed to " + t.Name() + " under this function's class parameter"})
					default:
						record(i, shedFact{Kind: shedAlways, Pos: cs.Pos,
							Desc: "passed to " + t.Name() + " as Data class (" + sf.Desc + " at " + p.shortPos(sf.Pos) + ")"})
					}
				}
			}
		}
	}
	p.shedBusy[n] = false
	p.shedMemo[n] = facts
	return facts
}

// queuePushArgs matches a call site against the (*overload.Queue[T]).Push
// intrinsic and returns its value and class arguments.
func (p *Program) queuePushArgs(cs *CallSite) (val, class ast.Expr, ok bool) {
	f := cs.Callee
	if f == nil || f.Name() != "Push" || len(cs.Call.Args) != 2 {
		return nil, nil, false
	}
	sig, sok := f.Type().(*types.Signature)
	if !sok || sig.Recv() == nil {
		return nil, nil, false
	}
	rt := sig.Recv().Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, nok := rt.(*types.Named)
	if !nok || named.Obj().Name() != "Queue" || !p.isOverloadPkg(named.Obj().Pkg()) {
		return nil, nil, false
	}
	return cs.Call.Args[0], cs.Call.Args[1], true
}

func (p *Program) isOverloadPkg(pkg *types.Package) bool {
	return pkg != nil && pkg.Path() == p.ModPath+"/internal/overload"
}

type classClassification struct {
	kind  classKind
	param int
}

type classKind uint8

const (
	classUnknown classKind = iota
	classData
	classControl
	classParam
)

// classifyClassArg classifies an overload.Class argument expression:
// the Control constant, the Data constant, a reference to one of n's own
// Class-typed parameters, or unknown (treated as shedable).
func (p *Program) classifyClassArg(n *FuncNode, paramIdx map[types.Object]int, e ast.Expr) classClassification {
	info := n.Pkg.Info
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(tv.Value); exact {
			if v == 1 {
				return classClassification{kind: classControl}
			}
			return classClassification{kind: classData}
		}
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if i, ok := paramIdx[info.Uses[id]]; ok {
			return classClassification{kind: classParam, param: i}
		}
	}
	return classClassification{kind: classUnknown}
}

// IsControlConst reports whether e is the overload.Control constant (by
// type and value, so aliases and renamed imports are still caught).
func (p *Program) IsControlConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Type == nil {
		return false
	}
	named, isNamed := tv.Type.(*types.Named)
	if !isNamed || named.Obj().Name() != "Class" || !p.isOverloadPkg(named.Obj().Pkg()) {
		return false
	}
	v, exact := constant.Int64Val(tv.Value)
	return exact && v == 1
}
