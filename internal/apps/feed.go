package apps

import (
	"fmt"
	"strconv"

	"bladerunner/internal/brass"
	"bladerunner/internal/burst"
	"bladerunner/internal/pylon"
	"bladerunner/internal/tao"
	"bladerunner/internal/was"
)

// FeedComments is the NewsFeedPostComments application: live comments on a
// News Feed post the user is currently focused on. Unlike live videos,
// posts have moderate comment rates, so the BRASS pushes each passing
// comment immediately (after the WAS privacy check) without ranking — the
// interesting property here is the rapidly changing focus: a user scrolling
// their feed cancels and opens these streams constantly (§1 challenge 2).
type FeedComments struct {
	w Registrar
}

// PostTopic returns the Pylon topic for a post's comments.
func PostTopic(postID uint64) pylon.Topic {
	return pylon.Topic(fmt.Sprintf("/Post/%d", postID))
}

// NewFeedComments registers the WAS half and returns the application.
func NewFeedComments(w Registrar) *FeedComments {
	a := &FeedComments{w: w}

	w.RegisterMutation("postFeedComment", func(ctx *was.Ctx, call was.FieldCall) (any, error) {
		postID, err := call.Uint64Arg("postID")
		if err != nil {
			return nil, err
		}
		text, err := call.StringArg("text")
		if err != nil {
			return nil, err
		}
		ref := ctx.Srv.TAO.ObjectAdd("comment", map[string]string{
			"text":   text,
			"author": strconv.FormatUint(uint64(ctx.Viewer), 10),
			"post":   strconv.FormatUint(postID, 10),
		})
		ctx.Srv.TAO.AssocAdd(tao.ObjID(postID), "post_comment", ref, ctx.Now, "")
		ctx.Publish(pylon.Event{
			Topic: PostTopic(postID),
			Ref:   uint64(ref),
			Meta: map[string]string{
				"author": strconv.FormatUint(uint64(ctx.Viewer), 10),
				"post":   strconv.FormatUint(postID, 10),
			},
		}, false)
		return uint64(ref), nil
	})

	w.RegisterSubscription("feedPostComments", func(ctx *was.Ctx, call was.FieldCall) ([]pylon.Topic, error) {
		postID, err := call.Uint64Arg("postID")
		if err != nil {
			return nil, err
		}
		return []pylon.Topic{PostTopic(postID)}, nil
	})

	w.RegisterPayload(AppFeedComments, func(ctx *was.Ctx, ref tao.ObjID, ev pylon.Event) (any, error) {
		obj, err := ctx.Reader().ObjectGet(ref)
		if err != nil {
			return nil, err
		}
		author, _ := strconv.ParseUint(obj.Data["author"], 10, 64)
		post, _ := strconv.ParseUint(obj.Data["post"], 10, 64)
		return CommentPayload{CommentID: uint64(ref), VideoID: post, Author: author,
			Text: obj.Data["text"]}, nil
	})
	return a
}

// Name implements brass.Application.
func (a *FeedComments) Name() string { return AppFeedComments }

type feedInstance struct {
	app *FeedComments
	rt  *brass.Runtime
}

// NewInstance implements brass.Application.
func (a *FeedComments) NewInstance(rt *brass.Runtime) brass.AppInstance {
	return &feedInstance{app: a, rt: rt}
}

func (in *feedInstance) OnStreamOpen(st *brass.Stream) error {
	topics, err := in.rt.ResolveSubscription(st.Viewer, st.Header(burst.HdrSubscription))
	if err != nil {
		return err
	}
	for _, t := range topics {
		if err := st.AddTopic(t); err != nil {
			return err
		}
	}
	return nil
}

func (in *feedInstance) OnStreamClose(st *brass.Stream, reason string) {}

func (in *feedInstance) OnEvent(ev pylon.Event) {
	author := ev.Meta["author"]
	for _, st := range in.rt.Instance().StreamsForTopic(ev.Topic) {
		// Own comments are already rendered locally.
		if author == strconv.FormatUint(uint64(st.Viewer), 10) {
			st.Filtered()
			continue
		}
		payload, err := st.FetchPayload(ev)
		if err != nil {
			st.Filtered()
			continue
		}
		_ = st.PushPayloadFor(ev, ev.ID, payload)
	}
}

func (in *feedInstance) OnAck(st *brass.Stream, seq uint64) {}

var _ brass.Application = (*FeedComments)(nil)
