package baseline

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"bladerunner/internal/kvstore"
	"bladerunner/internal/pylon"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
	"bladerunner/internal/was"
)

var t0 = time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)

func newWASEnv(t *testing.T, eng *sim.Engine) (*was.Server, *pylon.Service) {
	t.Helper()
	nodes := []*kvstore.Node{
		kvstore.NewNode("a", "us"), kvstore.NewNode("b", "eu"), kvstore.NewNode("c", "ap"),
	}
	pyl := pylon.MustNew(pylon.DefaultConfig(), kvstore.MustNewCluster(nodes, 3))
	store := tao.MustNewStore(tao.DefaultConfig(), eng)
	graph := socialgraph.MustGenerate(socialgraph.Config{Users: 20, MeanFriends: 3, Seed: 1})
	return was.New(store, graph, pyl, eng), pyl
}

func TestClientPollerEmptyPolls(t *testing.T) {
	eng := sim.NewEngine(t0)
	w, _ := newWASEnv(t, eng)
	val := "v0"
	w.RegisterQuery("data", func(ctx *was.Ctx, call was.FieldCall) (any, error) {
		return val, nil
	})
	var seen []string
	p := &ClientPoller{
		WAS: w, Viewer: 1, Query: "data", Interval: time.Second, Sched: eng,
		OnNewData: func(b []byte) { seen = append(seen, string(b)) },
	}
	p.Start()
	// 5 polls of unchanged data, then a change, then 4 more.
	eng.RunFor(5 * time.Second)
	val = "v1"
	eng.RunFor(5 * time.Second)
	p.Stop()
	eng.Run()

	if p.Polls.Value() != 10 {
		t.Errorf("Polls = %d, want 10", p.Polls.Value())
	}
	// First poll sees v0 (new), poll 6 sees v1 (new): 8 empty.
	if p.EmptyPolls.Value() != 8 {
		t.Errorf("EmptyPolls = %d, want 8", p.EmptyPolls.Value())
	}
	if got := p.EmptyPollRate(); got != 0.8 {
		t.Errorf("EmptyPollRate = %v, want 0.8 (the paper's number)", got)
	}
	if len(seen) != 2 || seen[1] != `"v1"` {
		t.Errorf("seen = %v", seen)
	}
	if p.BytesDown.Value() == 0 {
		t.Error("no last-mile bytes counted")
	}
}

func TestClientPollerStopIsFinal(t *testing.T) {
	eng := sim.NewEngine(t0)
	w, _ := newWASEnv(t, eng)
	w.RegisterQuery("d", func(*was.Ctx, was.FieldCall) (any, error) { return 1, nil })
	p := &ClientPoller{WAS: w, Viewer: 1, Query: "d", Interval: time.Second, Sched: eng}
	p.Start()
	eng.RunFor(3 * time.Second)
	p.Stop()
	before := p.Polls.Value()
	eng.RunFor(10 * time.Second)
	if p.Polls.Value() != before {
		t.Error("poller kept polling after Stop")
	}
}

func TestServerAgentPollerPushesOnlyChanges(t *testing.T) {
	eng := sim.NewEngine(t0)
	w, _ := newWASEnv(t, eng)
	val := 0
	w.RegisterQuery("d", func(*was.Ctx, was.FieldCall) (any, error) { return val, nil })
	var pushes int
	a := &ServerAgentPoller{
		ClientPoller: ClientPoller{WAS: w, Viewer: 1, Query: "d", Interval: time.Second, Sched: eng},
		Push:         func([]byte) { pushes++ },
	}
	a.Start()
	eng.RunFor(4 * time.Second) // 4 polls, 1 change (initial)
	val = 1
	eng.RunFor(4 * time.Second)
	a.Stop()
	if a.Polls.Value() != 8 {
		t.Errorf("Polls = %d", a.Polls.Value())
	}
	if pushes != 2 {
		t.Errorf("pushes = %d, want 2 (initial + one change)", pushes)
	}
	// Last-mile bytes = pushed bytes only, far below poll response bytes.
	if a.BytesPushed.Value() >= a.BytesDown.Value() {
		t.Errorf("pushed %d >= polled %d bytes", a.BytesPushed.Value(), a.BytesDown.Value())
	}
}

func TestTriggeredPollerPollsOnlyOnNotification(t *testing.T) {
	eng := sim.NewEngine(t0)
	w, pyl := newWASEnv(t, eng)
	w.RegisterQuery("d", func(*was.Ctx, was.FieldCall) (any, error) { return "x", nil })
	var got []string
	tp := NewTriggeredPoller("thialfi-1", w, 1, "d")
	tp.OnData = func(b []byte) { got = append(got, string(b)) }
	pyl.RegisterHost(tp)
	if err := pyl.Subscribe("/area/1", "thialfi-1"); err != nil {
		t.Fatal(err)
	}
	// No notifications → zero polls (this is the whole point).
	if tp.Polls.Value() != 0 {
		t.Error("polled without trigger")
	}
	for i := 0; i < 3; i++ {
		if _, err := pyl.Publish(pylon.Event{Topic: "/area/1"}); err != nil {
			t.Fatal(err)
		}
	}
	if tp.Triggers.Value() != 3 || tp.Polls.Value() != 3 {
		t.Errorf("triggers=%d polls=%d", tp.Triggers.Value(), tp.Polls.Value())
	}
	if len(got) != 3 {
		t.Errorf("data deliveries = %d", len(got))
	}
}

func TestEventLogTopicLimit(t *testing.T) {
	l := NewEventLog(2, 4)
	if err := l.Append("t1", "k", []byte("a"), t0); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("t2", "k", []byte("b"), t0); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("t3", "k", []byte("c"), t0); !errors.Is(err, ErrTopicLimit) {
		t.Errorf("err = %v, want ErrTopicLimit", err)
	}
	if l.Topics() != 2 {
		t.Errorf("Topics = %d", l.Topics())
	}
	// Existing topics still writable.
	if err := l.Append("t1", "k2", []byte("d"), t0); err != nil {
		t.Fatal(err)
	}
}

func TestEventLogFetchSemantics(t *testing.T) {
	l := NewEventLog(0, 1) // single partition for deterministic ordering
	for i := 0; i < 5; i++ {
		if err := l.Append("t", "key", []byte(fmt.Sprintf("m%d", i)), t0); err != nil {
			t.Fatal(err)
		}
	}
	recs := l.Fetch("t", 0, 0, 3)
	if len(recs) != 3 || string(recs[0].Payload) != "m0" || recs[2].Offset != 2 {
		t.Errorf("recs = %+v", recs)
	}
	recs = l.Fetch("t", 0, 3, 10)
	if len(recs) != 2 || string(recs[1].Payload) != "m4" {
		t.Errorf("tail fetch = %+v", recs)
	}
	// Poll past the end: empty fetch (the wasteful common case).
	if recs := l.Fetch("t", 0, 5, 10); recs != nil {
		t.Errorf("past-end fetch = %v", recs)
	}
	if l.EmptyFetch.Value() != 1 {
		t.Errorf("EmptyFetch = %d", l.EmptyFetch.Value())
	}
	// Unknown topic/partition.
	if l.Fetch("ghost", 0, 0, 1) != nil || l.Fetch("t", 9, 0, 1) != nil {
		t.Error("bad topic/partition returned data")
	}
}

func TestEventLogPartitionAssignmentStable(t *testing.T) {
	l := NewEventLog(0, 8)
	for i := 0; i < 20; i++ {
		_ = l.Append("t", "same-key", []byte("x"), t0)
	}
	if l.Partitions("t") != 8 {
		t.Errorf("Partitions = %d", l.Partitions("t"))
	}
	// All records with one key land in one partition (serialized access).
	nonEmpty := 0
	for p := 0; p < 8; p++ {
		if len(l.Fetch("t", p, 0, 100)) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Errorf("key spread over %d partitions", nonEmpty)
	}
}

func TestDirectPubSubFirehose(t *testing.T) {
	d := NewDirectPubSub()
	fast := make(chan []byte, 100)
	slow := make(chan []byte) // unbuffered, never read: overwhelmed device
	d.Subscribe("hot", fast)
	d.Subscribe("hot", slow)
	payload := []byte("full update payload, not metadata")
	for i := 0; i < 10; i++ {
		d.Publish("hot", payload)
	}
	if d.Published.Value() != 10 {
		t.Errorf("Published = %d", d.Published.Value())
	}
	if d.Fanout.Value() != 10 {
		t.Errorf("Fanout = %d (only fast device keeps up)", d.Fanout.Value())
	}
	if d.Overflows.Value() != 10 {
		t.Errorf("Overflows = %d, want 10 (slow device)", d.Overflows.Value())
	}
	wantBytes := int64(10 * len(payload))
	if d.BytesLastMile.Value() != wantBytes {
		t.Errorf("BytesLastMile = %d, want %d", d.BytesLastMile.Value(), wantBytes)
	}
	if got := d.Publish("cold", payload); got != 0 {
		t.Errorf("publish to empty topic delivered %d", got)
	}
}
