package brass

import (
	"errors"
	"sync"
	"time"

	"bladerunner/internal/burst"
	"bladerunner/internal/durlog"
	"bladerunner/internal/overload"
	"bladerunner/internal/pylon"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/trace"
)

// HdrAdmissionState is the BURST header field carrying the per-stream
// delivery token bucket's persisted state. Like HdrRateLimiterState it is
// rewritten into the subscription so a failover replacement stream resumes
// admission where the old one left off (restores are clamped to "now" —
// see overload.TokenBucket.RestoreHeaderState).
const HdrAdmissionState = "admission-state"

// Stream is one device request-stream as seen by application code. All
// methods that mutate stream state must be called from the instance's event
// loop (i.e. from application callbacks); Push and Rewrite are safe
// anywhere because the underlying BURST stream serializes sends.
type Stream struct {
	burst *burst.ServerStream
	inst  *Instance

	// Viewer is the subscribing user (parsed from the stream header).
	Viewer socialgraph.UserID

	// topics tracks the Pylon topics this stream holds references to.
	topics map[pylon.Topic]bool

	// State is free space for per-stream application state (ranked
	// buffers, rate limiters, sequence cursors...). Loop-owned.
	State any

	// pendingTrace is the trace context of the most recent sampled delta
	// queued via QueuePayloadFor, consumed by the next Flush to open its
	// burst.flush span. Loop-owned, like the Queue/Flush pair itself.
	pendingTrace trace.ID

	// admit is the per-stream delivery token bucket (zero Rate = disabled;
	// configured from HostConfig.StreamDeliverRate and restored from
	// HdrAdmissionState on subscribe). admitMu guards it plus degraded,
	// because Push is callable off the loop.
	admitMu  sync.Mutex
	admit    overload.TokenBucket
	degraded bool
}

// SID returns the BURST stream id.
func (st *Stream) SID() burst.StreamID { return st.burst.SID() }

// Request returns the stream's current subscription request.
func (st *Stream) Request() burst.Subscribe { return st.burst.Request() }

// Header returns a specific header field of the current request.
func (st *Stream) Header(key string) string { return st.burst.Request().Header[key] }

// AddTopic subscribes the stream to a Pylon topic. The first local
// reference triggers instance→host→Pylon registration. Loop-only.
func (st *Stream) AddTopic(topic pylon.Topic) error { return st.inst.addTopicRef(topic, st) }

// DropTopic removes the stream's interest in topic. Loop-only.
func (st *Stream) DropTopic(topic pylon.Topic) { st.inst.dropTopicRef(topic, st) }

// Topics returns the stream's current topic set. Loop-only.
func (st *Stream) Topics() []pylon.Topic {
	out := make([]pylon.Topic, 0, len(st.topics))
	for t := range st.topics {
		out = append(out, t)
	}
	return out
}

// Push sends payload deltas to the device as one atomic batch, counting a
// delivery per delta. When per-stream admission is enabled
// (HostConfig.StreamDeliverRate), an over-rate batch has its payload
// deltas shed — control deltas always go through — and the device is told
// via FlowDegraded with a shed marker so it can resync.
func (st *Stream) Push(deltas ...burst.Delta) error {
	admitted, shed := st.admitPayloads(deltas)
	if shed > 0 {
		sp := st.startFlushSpan(firstTrace(deltas), len(deltas))
		sp.Drop("stream-admission")
		sp.End()
		if len(admitted) == 0 {
			return nil
		}
	}
	deltas = admitted
	sp := st.startFlushSpan(firstTrace(deltas), len(deltas))
	defer sp.End()
	if err := st.burst.SendBatch(deltas...); err != nil {
		sp.Annotate("error", "send-failed")
		return err
	}
	n := 0
	for _, d := range deltas {
		if d.Type == burst.DeltaPayload {
			n++
		}
	}
	st.inst.host.Deliveries.Add(int64(n))
	return nil
}

// admitPayloads runs the per-stream delivery bucket over one batch. A
// batch with no payload deltas passes untouched (control is never rate
// limited). On a denied batch every payload delta is shed and the stream
// enters the degraded state: exactly one FlowDegraded with a shed marker
// is emitted, and the bucket state is persisted to HdrAdmissionState so a
// failover replacement resumes the same admission state (the paper's
// rewrite mechanism, §3.5). The first admitted batch afterwards emits
// FlowRecovered. Returns the surviving deltas and the shed count.
func (st *Stream) admitPayloads(deltas []burst.Delta) ([]burst.Delta, int) {
	h := st.inst.host
	if h.cfg.StreamDeliverRate <= 0 {
		return deltas, 0
	}
	payloads := 0
	for _, d := range deltas {
		if d.Type == burst.DeltaPayload {
			payloads++
		}
	}
	if payloads == 0 {
		return deltas, 0
	}
	const none, entered, recovered = 0, 1, 2
	st.admitMu.Lock()
	ok := st.admit.Allow(h.sched.Now())
	transition := none
	switch {
	case !ok && !st.degraded:
		st.degraded = true
		transition = entered
	case ok && st.degraded:
		st.degraded = false
		transition = recovered
	}
	state := st.admit.HeaderState()
	st.admitMu.Unlock()
	if ok {
		if transition == recovered {
			// Recovery notice first, so the device knows the shed gap
			// ended before the next payload lands.
			_ = st.burst.SendBatch(burst.FlowStatusDelta(
				burst.FlowRecovered, overload.RecoveredMarkerPrefix+"stream-admission"))
			h.FlowSignals.Inc()
			_ = st.burst.RewriteHeaderField(HdrAdmissionState, state)
		}
		return deltas, 0
	}
	kept := make([]burst.Delta, 0, len(deltas)-payloads)
	for _, d := range deltas {
		if d.Type != burst.DeltaPayload {
			kept = append(kept, d)
		}
	}
	h.StreamSheds.Add(int64(payloads))
	if transition == entered {
		_ = st.burst.SendBatch(burst.FlowStatusDelta(
			burst.FlowDegraded, overload.ShedMarkerPrefix+"stream-admission"))
		h.FlowSignals.Inc()
		_ = st.burst.RewriteHeaderField(HdrAdmissionState, state)
	}
	return kept, payloads
}

// PushCatchUp sends payload deltas replayed from the durable log as one
// atomic batch, BYPASSING per-stream admission. Catch-up is not live
// fan-out: the deltas were already admitted (and possibly shed) once when
// they were first delivered, and the whole point of a cursor resume is to
// close the gap — running the replay through the admission bucket again
// would shed it, emit a fresh marker, and trap the stream in a
// shed→resume→shed livelock. The batch is bounded by the log window, so
// the bypass cannot be abused for sustained over-rate delivery.
func (st *Stream) PushCatchUp(deltas ...burst.Delta) error {
	sp := st.startFlushSpan(firstTrace(deltas), len(deltas))
	defer sp.End()
	if err := st.burst.SendBatch(deltas...); err != nil {
		sp.Annotate("error", "send-failed")
		return err
	}
	n := 0
	for _, d := range deltas {
		if d.Type == burst.DeltaPayload {
			n++
		}
	}
	st.inst.host.Deliveries.Add(int64(n))
	st.inst.host.LogCatchUpDeltas.Add(int64(n))
	return nil
}

// startFlushSpan opens the burst.flush span covering the frame encode +
// send of one traced batch (inactive when untraced or no tracer is set).
func (st *Stream) startFlushSpan(id trace.ID, deltas int) trace.Span {
	sp := st.inst.host.cfg.Tracer.Start(id, trace.HopFlush, trace.HopFetch)
	if sp.Active() {
		sp.Annotate("host", st.inst.host.cfg.ID)
		sp.Annotate("stream", st.Header(burst.HdrTraceStream))
		if deltas > 0 {
			sp.AnnotateInt("deltas", int64(deltas))
		}
	}
	return sp
}

// firstTrace returns the trace context of the first sampled delta in the
// batch (a batch carries the deltas of one application decision, so one
// trace context describes it).
func firstTrace(deltas []burst.Delta) trace.ID {
	for _, d := range deltas {
		if d.Trace != 0 {
			return d.Trace
		}
	}
	return 0
}

// PushPayload is shorthand for Push of a single payload delta.
func (st *Stream) PushPayload(seq uint64, payload []byte) error {
	return st.Push(burst.PayloadDelta(seq, payload))
}

// PushPayloadFor is PushPayload carrying ev's trace context onto the wire,
// so proxies and the device can attribute the delta to the originating
// mutation. Apps pushing live events should prefer it over PushPayload.
func (st *Stream) PushPayloadFor(ev pylon.Event, seq uint64, payload []byte) error {
	d := burst.PayloadDelta(seq, payload)
	d.Trace = ev.Trace
	return st.Push(d)
}

// QueuePayload buffers a payload delta for the stream's next Flush without
// sending a frame. Combined with QueueRewriteHeaderField and Flush, one
// application decision (payload + state rewrite) travels as a single batch
// frame instead of one frame per delta. Loop-only, like Push.
func (st *Stream) QueuePayload(seq uint64, payload []byte) error {
	return st.burst.Queue(burst.PayloadDelta(seq, payload))
}

// QueuePayloadFor is QueuePayload carrying ev's trace context; the next
// Flush closes its burst.flush span against that context. Loop-only.
func (st *Stream) QueuePayloadFor(ev pylon.Event, seq uint64, payload []byte) error {
	d := burst.PayloadDelta(seq, payload)
	d.Trace = ev.Trace
	if ev.Trace != 0 {
		st.pendingTrace = ev.Trace
	}
	return st.burst.Queue(d)
}

// QueueRewriteHeaderField buffers a single-key header rewrite for the next
// Flush. The server-side stored request updates immediately. Loop-only.
func (st *Stream) QueueRewriteHeaderField(key, value string) error {
	return st.burst.QueueRewriteHeaderField(key, value)
}

// Flush sends the queued deltas as one atomic batch, counting a delivery
// per payload delta (the same accounting Push applies). Loop-only.
func (st *Stream) Flush() error {
	sp := st.startFlushSpan(st.pendingTrace, 0)
	defer sp.End()
	st.pendingTrace = 0
	deltas, err := st.burst.Flush()
	if err != nil {
		sp.Annotate("error", "flush-failed")
		return err
	}
	n := 0
	for _, d := range deltas {
		if d.Type == burst.DeltaPayload {
			n++
		}
	}
	st.inst.host.Deliveries.Add(int64(n))
	sp.AnnotateInt("flushed", int64(len(deltas)))
	return nil
}

// Filtered records that the application decided not to deliver an update
// to this stream (the complement of Push in the decision accounting).
func (st *Stream) Filtered() { st.inst.host.Filtered.Inc() }

// Rewrite replaces the stream's stored subscription header (paper §3.5):
// resume tokens, rate-limiter state, redirect targets.
func (st *Stream) Rewrite(h burst.Header, body []byte) error { return st.burst.Rewrite(h, body) }

// RewriteHeaderField patches one header key.
func (st *Stream) RewriteHeaderField(key, value string) error {
	return st.burst.RewriteHeaderField(key, value)
}

// Terminate ends the stream from the BRASS side and runs the close
// sequence.
func (st *Stream) Terminate(reason string) error {
	err := st.burst.Terminate(reason)
	st.inst.closeStream(st, reason)
	return err
}

// Redirect rewrites routing state to point at another BRASS and terminates
// the stream; the device's automatic resubscribe will land there (paper
// §3.5 "Redirects").
func (st *Stream) Redirect(targetHostID string) error {
	if err := st.RewriteHeaderField(burst.HdrStickyBRASS, targetHostID); err != nil {
		return err
	}
	return st.Terminate("redirect to " + targetHostID)
}

// FetchPayload asks the WAS for the device-facing payload of ev, running
// the privacy check as this stream's viewer (step 8 of Fig 5). The TAO
// read is shared host-wide across the streams fanning out the same event
// (see payload.go); the returned bytes must not be mutated.
func (st *Stream) FetchPayload(ev pylon.Event) ([]byte, error) {
	return st.inst.host.fetchPayload(st.inst.app.Name(), st.Viewer, ev)
}

// Runtime is the capability surface handed to application instances. Apps
// never touch TAO or the social graph directly — every backend interaction
// goes through the WAS, exactly as in production.
type Runtime struct {
	host *Host
	inst *Instance
}

// HostID returns the hosting machine's id.
func (rt *Runtime) HostID() string { return rt.host.cfg.ID }

// Region returns the hosting machine's region.
func (rt *Runtime) Region() string { return rt.host.cfg.Region }

// Instance returns the runtime's instance for stream/topic queries.
func (rt *Runtime) Instance() *Instance { return rt.inst }

// Now returns the current time from the host's clock (real or simulated).
func (rt *Runtime) Now() time.Time { return rt.host.sched.Now() }

// After schedules fn on the instance event loop after d.
func (rt *Runtime) After(d time.Duration, fn func()) (cancel func()) {
	return rt.inst.After(d, fn)
}

// ResolveSubscription asks the WAS to translate a subscription expression
// into concrete Pylon topics (step 5 of Fig 3).
func (rt *Runtime) ResolveSubscription(viewer socialgraph.UserID, expr string) ([]pylon.Topic, error) {
	return rt.host.was.ResolveSubscription(viewer, expr)
}

// Query issues a read query to the WAS as viewer (used by apps that need
// backend state, e.g. Messenger's mailbox catch-up reads). The query runs
// in the host's region so payload-style reads hit the region-local TAO
// tier; queries that must be authoritative read the leader explicitly.
func (rt *Runtime) Query(viewer socialgraph.UserID, expr string) ([]byte, error) {
	rt.host.WASFetches.Inc()
	return rt.host.was.QueryIn(rt.host.cfg.Region, viewer, expr)
}

// LogEnabled reports whether the host's durable log is configured AND
// opted in for this instance's application. Apps must check it before the
// other Log* accessors; with it false they fall back to WAS resync.
func (rt *Runtime) LogEnabled() bool {
	return rt.host.dlog != nil && rt.host.dlogApps[rt.inst.app.Name()]
}

// LogOpen ensures a durable-log topic exists (idempotent; no-op when the
// log is disabled for this app).
func (rt *Runtime) LogOpen(topic pylon.Topic) {
	if rt.LogEnabled() {
		rt.host.dlog.Open(string(topic))
	}
}

// LogAppend records one delivered delta in the durable log (no-op when
// disabled). It runs on the app's per-event delivery path.
//
//brlint:hotpath
func (rt *Runtime) LogAppend(topic pylon.Topic, seq uint64, payload []byte) bool {
	if rt.host.dlog == nil || !rt.host.dlogApps[rt.inst.app.Name()] {
		return false
	}
	return rt.host.dlog.Append(string(topic), seq, payload)
}

// LogRead serves a cursor catch-up read: the gap-free suffix after c, or
// durlog.ErrCursorExpired when the log cannot prove continuity (the app
// then falls back to WAS resync — the log NEVER fabricates a cursor).
func (rt *Runtime) LogRead(topic pylon.Topic, c durlog.Cursor) ([]durlog.Entry, durlog.Cursor, error) {
	if !rt.LogEnabled() {
		return nil, durlog.Cursor{}, durlog.ErrUnknownTopic
	}
	out, next, err := rt.host.dlog.ReadFrom(string(topic), c)
	switch {
	case err == nil:
		rt.host.LogResumes.Inc()
	case errors.Is(err, durlog.ErrCursorExpired):
		rt.host.LogExpired.Inc()
	}
	return out, next, err
}

// LogTail returns the current live cursor for topic (what a client that
// wants "live only, no backlog" should start from).
func (rt *Runtime) LogTail(topic pylon.Topic) (durlog.Cursor, bool) {
	if !rt.LogEnabled() {
		return durlog.Cursor{}, false
	}
	return rt.host.dlog.TailCursor(string(topic))
}

// LogEarliest returns the cursor from which the entire retained window can
// be replayed (late joiners reading the full backlog).
func (rt *Runtime) LogEarliest(topic pylon.Topic) (durlog.Cursor, bool) {
	if !rt.LogEnabled() {
		return durlog.Cursor{}, false
	}
	return rt.host.dlog.EarliestCursor(string(topic))
}
