// Quickstart: boot a Bladerunner cluster, subscribe a device to a live
// video through the full edge path (device → POP → reverse proxy → BRASS),
// post a comment from another user, and watch it arrive as a push.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/core"
	"bladerunner/internal/sim"
)

func main() {
	// 1. Boot a deployment: 2 regions, BRASS hosts, proxies, POPs, TAO,
	//    Pylon, and the WAS with all six applications registered.
	cfg := core.DefaultConfig()
	cfg.Graph.BlockProb = 0 // keep the demo deterministic
	cluster, err := core.NewCluster(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.Apps.LVC.RateLimit = 100 * time.Millisecond // snappy demo
	cluster.Apps.LVC.RankBeforePublish = false
	cluster.Apps.LVC.MinScore = 0 // the demo comment must survive ranking

	// 2. A viewer device connects through a POP and subscribes to the
	//    comments of live video 7 with a GraphQL-style subscription.
	viewer := cluster.NewDevice(1)
	defer viewer.Close()
	if err := viewer.Connect(); err != nil {
		log.Fatal(err)
	}
	stream, err := viewer.Subscribe(apps.AppLiveComments, "liveVideoComments(videoID: 7)", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("viewer subscribed to liveVideoComments(videoID: 7)")

	// Wait until the serving BRASS has registered the topic with Pylon.
	// The demo runs on the wall clock through the same sim.Scheduler
	// interface every component takes.
	clock := sim.RealClock{}
	cluster.Pylon.WaitForSubscriber(clock, apps.LVCTopic(7), 10*time.Second)

	// 3. Another user posts a comment via a GraphQL mutation to the WAS.
	//    The WAS writes TAO, scores the comment, and publishes a
	//    metadata-only event to Pylon; the BRASS filters, fetches the
	//    payload (privacy-checked), and pushes it down the stream.
	commenter := cluster.NewDevice(2)
	defer commenter.Close()
	if _, err := commenter.Mutate(`postComment(videoID: 7, text: "what a save!")`); err != nil {
		log.Fatal(err)
	}
	fmt.Println("user 2 posted a comment")

	// 4. The push arrives on the viewer's stream.
	select {
	case delta := <-stream.Updates:
		var c apps.CommentPayload
		if err := json.Unmarshal(delta.Payload, &c); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pushed to viewer: %q (author=%d, score=%.2f)\n", c.Text, c.Author, c.Score)
	case <-sim.Timeout(clock, 10*time.Second):
		log.Fatal("timed out waiting for the push")
	}

	// 5. The comment is durable in TAO regardless of push delivery, and
	//    the device could always recover it by polling:
	out, err := viewer.Query("videoComments(videoID: 7, limit: 10)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("poll fallback returns: %s\n", out)
}
