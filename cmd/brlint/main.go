// Command brlint runs Bladerunner's static-analysis suite (internal/lint)
// over the module: the concurrency and virtual-time invariants the compiler
// cannot enforce. It is part of the tier-1 verification line:
//
//	go build ./... && go vet ./... && go run ./cmd/brlint ./... && go test ./...
//
// Usage:
//
//	brlint [-rules rule1,rule2] [-suppressions] [packages ...]
//
// Packages are directories relative to the module root (or absolute), with
// the go-style "/..." suffix for subtrees; the default is "./...". Exit
// status is 0 when clean, 1 when diagnostics were reported, 2 on load
// errors.
//
// With -suppressions, instead of linting, brlint prints every active
// //brlint:allow(rule) suppression with its file:line and reason — the
// repository's live invariant debt — and exits 0 (or 1 if any suppression
// never matched a diagnostic, i.e. is stale).
//
// With -json, diagnostics (or, with -suppressions, the suppression audit)
// are written to stdout as a single JSON array instead of text lines, for
// editor and CI tooling. Exit codes are unchanged. Plain-text diagnostics
// follow the "file:line:col: rule: message" shape that
// .github/brlint-problem-matcher.json turns into GitHub code annotations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"bladerunner/internal/lint"
)

// jsonDiagnostic is the -json shape of one diagnostic.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// jsonSuppression is the -json -suppressions shape of one audit entry.
type jsonSuppression struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Rule   string `json:"rule"`
	Reason string `json:"reason"`
	Stale  bool   `json:"stale"`
}

func main() {
	rulesFlag := flag.String("rules", "", "comma-separated rule names to run (default: all)")
	suppressions := flag.Bool("suppressions", false, "audit //brlint:allow suppressions instead of reporting diagnostics")
	list := flag.Bool("list", false, "list available rules and exit")
	jsonOut := flag.Bool("json", false, "write diagnostics (or the suppression audit) as a JSON array on stdout")
	flag.Parse()

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}

	all := lint.DefaultRules(loader.ModPath)
	if *list {
		for _, r := range all {
			fmt.Printf("%-22s %s\n", r.Name(), r.Doc())
		}
		return
	}
	rules := all
	if *rulesFlag != "" {
		byName := make(map[string]lint.Rule, len(all))
		for _, r := range all {
			byName[r.Name()] = r
		}
		rules = nil
		for _, name := range strings.Split(*rulesFlag, ",") {
			r, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatal(fmt.Errorf("brlint: unknown rule %q", name))
			}
			rules = append(rules, r)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}

	runner := lint.NewRunner(loader, rules...)
	diags := runner.Run(pkgs)

	if *suppressions {
		sups := runner.Suppressions()
		stale := 0
		out := make([]jsonSuppression, 0, len(sups))
		for _, s := range sups {
			if !s.Used {
				stale++
			}
			if *jsonOut {
				out = append(out, jsonSuppression{File: s.File, Line: s.Line, Rule: s.Rule, Reason: s.Reason, Stale: !s.Used})
				continue
			}
			status := ""
			if !s.Used {
				status = "  [stale: suppresses nothing]"
			}
			fmt.Printf("%s:%d: allow(%s) %s%s\n", s.File, s.Line, s.Rule, s.Reason, status)
		}
		if *jsonOut {
			emitJSON(out)
		} else {
			fmt.Printf("%d suppression(s), %d stale\n", len(sups), stale)
		}
		if stale > 0 {
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column, Rule: d.Rule, Message: d.Message})
		}
		emitJSON(out)
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s: %s\n", d.Pos, d.Rule, d.Message)
		}
		if len(diags) > 0 {
			fmt.Printf("brlint: %d diagnostic(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// emitJSON writes v indented to stdout; an encoding failure is a tool bug
// and exits 2 like any other internal error.
func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
