package brass

import (
	"testing"
	"time"

	"bladerunner/internal/burst"
	"bladerunner/internal/faults"
	"bladerunner/internal/kvstore"
	"bladerunner/internal/pylon"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
	"bladerunner/internal/was"
)

// retryEnv is newEnv with the KV nodes exposed so tests can break the
// subscription quorum, and a fast subscription-retry backoff.
type retryEnv struct {
	*testEnv
	kvNodes []*kvstore.Node
	kv      *kvstore.Cluster
}

func newRetryEnv(t *testing.T) *retryEnv {
	t.Helper()
	nodes := []*kvstore.Node{
		kvstore.NewNode("a", "us"), kvstore.NewNode("b", "eu"), kvstore.NewNode("c", "ap"),
	}
	kv := kvstore.MustNewCluster(nodes, 3)
	pyl := pylon.MustNew(pylon.DefaultConfig(), kv)
	store := tao.MustNewStore(tao.DefaultConfig(), nil)
	graph := socialgraph.MustGenerate(socialgraph.Config{Users: 50, MeanFriends: 5, Seed: 1})
	w := was.New(store, graph, pyl, nil)
	app := &echoApp{}
	host := NewHost(HostConfig{
		ID: "brass-1", Region: "us", StickyRouting: true,
		SubscribeBackoff: faults.BackoffPolicy{Base: 5 * time.Millisecond, Max: 40 * time.Millisecond},
	}, pyl, w, nil)
	host.RegisterApp(app)
	t.Cleanup(host.Close)
	return &retryEnv{
		testEnv: &testEnv{pylon: pyl, was: w, host: host, app: app},
		kvNodes: nodes,
		kv:      kv,
	}
}

// TestTransientPylonFailureRetriedInBackground: a quorum loss during the
// first Pylon registration must not kill the stream — the subscription
// manager keeps the local ref and re-establishes the registration once the
// quorum returns, after which delivery flows.
func TestTransientPylonFailureRetriedInBackground(t *testing.T) {
	env := newRetryEnv(t)
	const topic = "/t/retry"
	// Down every replica: the registration write has no quorum and no
	// partial acks linger on a surviving replica.
	replicas := env.kv.ReplicasFor(topic)
	for _, n := range replicas {
		n.SetUp(false)
	}

	cli := dialHost(t, env.testEnv)
	st := openStream(t, cli, topic)

	// The stream stays open with a live local ref and a pending retry; no
	// Pylon registration exists yet.
	waitFor(t, "pending background subscription", func() bool {
		return env.host.PendingSubs() == 1 && env.host.TopicRefs(topic) == 1
	})
	waitFor(t, "retries attempted against the broken quorum", func() bool {
		return env.host.PylonSubRetries.Value() >= 2
	})
	if subs := env.pylon.Subscribers(topic); len(subs) != 0 {
		t.Fatalf("subscribers during quorum loss = %v", subs)
	}
	select {
	case batch := <-st.Events:
		t.Fatalf("stream received %+v during quorum loss, want nothing", batch)
	default:
	}

	// Quorum heals; the background retry lands.
	for _, n := range replicas {
		n.SetUp(true)
	}
	waitFor(t, "registration re-established", func() bool {
		return env.host.PendingSubs() == 0 && len(env.pylon.Subscribers(topic)) == 1
	})
	if env.host.PylonSubs.Value() != 1 {
		t.Errorf("PylonSubs = %d, want 1", env.host.PylonSubs.Value())
	}

	// Delivery now flows end to end.
	if _, err := env.pylon.Publish(pylon.Event{Topic: topic, Ref: 7}); err != nil {
		t.Fatal(err)
	}
	select {
	case batch := <-st.Events:
		if string(batch[0].Payload) != "ref=7" {
			t.Errorf("payload = %q", batch[0].Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delivery never arrived after quorum recovery")
	}
}

// TestStreamCloseCancelsPendingRetry: when the last local ref for a topic
// disappears while its registration retry is still pending, the retry is
// cancelled — the host must not register for a topic nobody wants.
func TestStreamCloseCancelsPendingRetry(t *testing.T) {
	env := newRetryEnv(t)
	const topic = "/t/cancelled"
	replicas := env.kv.ReplicasFor(topic)
	for _, n := range replicas {
		n.SetUp(false)
	}

	cli := dialHost(t, env.testEnv)
	st := openStream(t, cli, topic)
	waitFor(t, "pending retry", func() bool { return env.host.PendingSubs() == 1 })

	if err := st.Cancel("done"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "retry cancelled with last ref", func() bool {
		return env.host.PendingSubs() == 0 && env.host.TopicRefs(topic) == 0
	})

	// Quorum heals; nothing re-registers because no stream wants the topic.
	for _, n := range replicas {
		n.SetUp(true)
	}
	time.Sleep(100 * time.Millisecond)
	if subs := env.pylon.Subscribers(topic); len(subs) != 0 {
		t.Errorf("subscribers after cancellation = %v, want none", subs)
	}
}

// TestPermanentPylonFailureStillErrors: ErrUnknownSubscriber is not
// retried — the stream open fails as before.
func TestPermanentPylonFailureStillErrors(t *testing.T) {
	env := newRetryEnv(t)
	// Deregister the host from Pylon: registrations now fail permanently.
	env.pylon.RemoveHost(env.host.ID())
	cli := dialHost(t, env.testEnv)
	st := openStream(t, cli, "/t/orphan")
	// The app's OnStreamOpen error terminates the stream.
	select {
	case batch := <-st.Events:
		if batch[0].Type != burst.DeltaTermination {
			t.Errorf("got %+v, want termination", batch[0])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream with permanent subscribe failure never terminated")
	}
	if env.host.PendingSubs() != 0 {
		t.Errorf("PendingSubs = %d after permanent failure", env.host.PendingSubs())
	}
}
