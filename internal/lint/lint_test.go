package lint_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"bladerunner/internal/lint"
)

// The loader is shared across tests: it memoizes type-checked packages (and
// the source-imported standard library), so each fixture load after the
// first is incremental.
var (
	loaderOnce sync.Once
	loader     *lint.Loader
	loaderErr  error
)

func testLoader(tb testing.TB) *lint.Loader {
	tb.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = lint.NewLoader(".")
	})
	if loaderErr != nil {
		tb.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

// expectation is one `// want `+"`regex`"+“ comment in a fixture file: the
// line it sits on must produce a diagnostic matching the regex (against
// "rule: message"), and every diagnostic must be claimed by some want.
type expectation struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("// want `(.*)`\\s*$")

func collectWants(t *testing.T, l *lint.Loader, pkgs []*lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := l.Fset.Position(c.Pos())
					wants = append(wants, &expectation{
						file:    pos.Filename,
						line:    pos.Line,
						pattern: m[1],
						re:      re,
					})
				}
			}
		}
	}
	return wants
}

// runFixture loads one testdata fixture package, runs the given rules over
// it, and checks the diagnostics against the fixture's want comments. It
// also asserts that every suppression inside the fixture absorbed a
// diagnostic — a stale allow in a fixture means the rule regressed.
func runFixture(t *testing.T, name string, rules ...lint.Rule) {
	t.Helper()
	l := testLoader(t)
	pkgs, err := l.Load("internal/lint/testdata/src/" + name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	r := lint.NewRunner(l, rules...)
	diags := r.Run(pkgs)
	wants := collectWants(t, l, pkgs)

	for _, d := range diags {
		got := d.Rule + ": " + d.Message
		claimed := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(got) {
				w.matched = true
				claimed = true
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, got)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching `%s`", w.file, w.line, w.pattern)
		}
	}
	for _, s := range r.Suppressions() {
		if !s.Used {
			t.Errorf("%s:%d: suppression of %s absorbed nothing (rule regressed?)", s.File, s.Line, s.Rule)
		}
	}
}

func TestNoDirectTimeFixture(t *testing.T) {
	l := testLoader(t)
	runFixture(t, "timeuse", &lint.NoDirectTime{ModPath: l.ModPath})
}

func TestNoLockAcrossBlockFixture(t *testing.T) {
	l := testLoader(t)
	runFixture(t, "lockblock", &lint.NoLockAcrossBlock{ModPath: l.ModPath})
}

func TestMutexByValueFixture(t *testing.T) {
	runFixture(t, "copylock", &lint.MutexByValue{})
}

func TestGoroutineHygieneFixture(t *testing.T) {
	runFixture(t, "goroutines", &lint.GoroutineHygiene{})
}

func TestUncheckedUnsubscribeFixture(t *testing.T) {
	l := testLoader(t)
	runFixture(t, "errcheck", &lint.UncheckedUnsubscribe{ModPath: l.ModPath})
}

func TestSpanMustEndFixture(t *testing.T) {
	l := testLoader(t)
	runFixture(t, "spanend", &lint.SpanMustEnd{ModPath: l.ModPath})
}

func TestCountedShedFixture(t *testing.T) {
	l := testLoader(t)
	runFixture(t, "countedshed", &lint.CountedShed{ModPath: l.ModPath})
}

func TestHotPathAllocFixture(t *testing.T) {
	runFixture(t, "hotpath", &lint.HotPathAlloc{})
}

func TestControlNeverShedFixture(t *testing.T) {
	runFixture(t, "controlshed", &lint.ControlNeverShed{})
}

// TestLockChainFixture covers the interprocedural upgrade of
// no-lock-across-block: blocking reached through one or more call hops
// (including interface dispatch) while a lock is held.
func TestLockChainFixture(t *testing.T) {
	l := testLoader(t)
	runFixture(t, "lockchain", &lint.NoLockAcrossBlock{ModPath: l.ModPath})
}

// TestMalformedSuppressions checks directive validation: a wrong verb, an
// unknown rule, and a missing reason each produce a "brlint" diagnostic,
// and the reason-less allow does not suppress the violation under it.
func TestMalformedSuppressions(t *testing.T) {
	l := testLoader(t)
	pkgs, err := l.Load("internal/lint/testdata/src/badallow")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := lint.NewRunner(l).Run(pkgs)

	wantSubstrings := map[string]string{
		"malformed":    "malformed brlint directive",
		"unknown":      "unknown rule no-such-rule",
		"no reason":    "needs a reason",
		"unsuppressed": "time.Now reads the wall clock",
	}
	for label, substr := range wantSubstrings {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing %s diagnostic (substring %q); got %v", label, substr, diags)
		}
	}
	if len(diags) != len(wantSubstrings) {
		t.Errorf("got %d diagnostics, want %d: %v", len(diags), len(wantSubstrings), diags)
	}
}

// TestSuppressionsAudit runs the full rule set across every fixture and
// checks the audit surface behind `brlint -suppressions`: exactly one
// well-formed suppression per rule, each actually used.
func TestSuppressionsAudit(t *testing.T) {
	l := testLoader(t)
	fixtures := []string{"timeuse", "lockblock", "copylock", "goroutines", "errcheck", "spanend", "countedshed", "hotpath", "controlshed", "lockchain"}
	var pkgs []*lint.Package
	for _, fx := range fixtures {
		p, err := l.Load("internal/lint/testdata/src/" + fx)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", fx, err)
		}
		pkgs = append(pkgs, p...)
	}
	r := lint.NewRunner(l)
	r.Run(pkgs)

	sups := r.Suppressions()
	if len(sups) != len(fixtures) {
		t.Fatalf("got %d suppressions, want %d: %v", len(sups), len(fixtures), sups)
	}
	byRule := map[string]int{}
	for _, s := range sups {
		byRule[s.Rule]++
		if !s.Used {
			t.Errorf("%s:%d: suppression of %s is stale", s.File, s.Line, s.Rule)
		}
		if s.Reason == "" {
			t.Errorf("%s:%d: suppression of %s has an empty reason", s.File, s.Line, s.Rule)
		}
	}
	// One audited allow per fixture; the lockblock and lockchain fixtures
	// both carry one for no-lock-across-block (same-function and
	// call-chain halves of the rule).
	wantByRule := map[string]int{
		"no-direct-time":        1,
		"no-lock-across-block":  2,
		"mutex-by-value":        1,
		"goroutine-hygiene":     1,
		"unchecked-unsubscribe": 1,
		"span-must-end":         1,
		"counted-shed":          1,
		"hot-path-alloc":        1,
		"control-never-shed":    1,
	}
	for rule, want := range wantByRule {
		if byRule[rule] != want {
			t.Errorf("rule %s: %d suppressions in fixtures, want %d", rule, byRule[rule], want)
		}
	}
}

// TestRepoLintsClean is the smoke test backing the tier-1 verify line: the
// module itself must pass the full brlint rule set with zero diagnostics.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l := testLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags := lint.NewRunner(l).Run(pkgs)
	for _, d := range diags {
		t.Errorf("%s: %s: %s", d.Pos, d.Rule, d.Message)
	}
	if len(diags) > 0 {
		t.Logf("the repository must lint clean; fix the code or add a //brlint:allow(rule) reason")
	}

	// The clean result above only means something for hot-path-alloc if the
	// latency-critical functions actually carry the annotation: assert the
	// core set is gated so a dropped //brlint:hotpath line fails loudly
	// instead of silently shrinking the rule's coverage.
	prog := lint.NewProgram(l.Fset, l.ModPath, pkgs)
	hot := map[string]bool{}
	for _, pkg := range pkgs {
		for _, n := range prog.NodesIn(pkg) {
			if n.Hotpath {
				hot[n.Name()] = true
			}
		}
	}
	for _, want := range []string{
		"(*pylon.Service).Publish",
		"(*brass.Host).Deliver",
		"(*brass.Instance).deliver",
		"(*burst.Session).Send",
		"(*burst.Session).SendMsg",
		"(*trace.Span).End",
		"(*metrics.CountHistogram).Observe",
	} {
		if !hot[want] {
			t.Errorf("%s is not annotated //brlint:hotpath; the static zero-alloc gate no longer covers it", want)
		}
	}
	if len(hot) < 10 {
		t.Errorf("only %d functions carry //brlint:hotpath; expected at least 10 (fan-out, frame encode, trace, accounting paths)", len(hot))
	}
}

// BenchmarkLintModule measures a full brlint pass over the module — every
// rule, including the interprocedural ones — against already-loaded
// packages. Loading and type-checking happen once outside the timed loop
// (they are shared by all rules in production too, via the memoizing
// Loader); what this times is the per-run cost: call-graph construction,
// summary computation, and every rule's traversal.
func BenchmarkLintModule(b *testing.B) {
	l := testLoader(b)
	pkgs, err := l.Load("./...")
	if err != nil {
		b.Fatalf("loading module: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := lint.NewRunner(l).Run(pkgs); len(diags) > 0 {
			b.Fatalf("module must lint clean, got %d diagnostics", len(diags))
		}
	}
}

// TestLoadRejectsOutsideModule pins the loader's error behavior for paths
// outside the module root.
func TestLoadRejectsOutsideModule(t *testing.T) {
	l := testLoader(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte("package x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(dir); err == nil {
		t.Fatal("expected an error loading a directory outside the module")
	}
}
