package apps

import (
	"encoding/json"
	"fmt"
	"strconv"

	"bladerunner/internal/brass"
	"bladerunner/internal/burst"
	"bladerunner/internal/pylon"
	"bladerunner/internal/tao"
	"bladerunner/internal/was"
)

// AppNotifications is the WebsiteNotifications application name.
const AppNotifications = "notifications"

// WebsiteNotifications delivers the jewel-badge notifications (friend
// request, mention, comment-on-your-post...) listed among §1's prominent
// applications. Its BRASS pattern combines immediate pushes for individual
// notifications with a monotonic unseen-count the device renders as the
// badge. The unseen count is persisted into the stream header via rewrites,
// so a reconnecting device shows the right badge immediately, before any
// notification payloads arrive.
type WebsiteNotifications struct {
	w Registrar
}

// HdrUnseenCount is the stream header carrying the badge state.
const HdrUnseenCount = "unseen-count"

// NotifTopic returns the Pylon topic for one user's notifications.
func NotifTopic(uid uint64) pylon.Topic {
	return pylon.Topic(fmt.Sprintf("/Notif/%d", uid))
}

// NotificationPayload is the device-facing notification.
type NotificationPayload struct {
	ID     uint64 `json:"id"`
	Kind   string `json:"kind"`
	Actor  uint64 `json:"actor"`
	Text   string `json:"text"`
	Unseen uint64 `json:"unseen"` // badge value after this notification
}

// NewWebsiteNotifications registers the WAS half and returns the app.
func NewWebsiteNotifications(w Registrar) *WebsiteNotifications {
	a := &WebsiteNotifications{w: w}

	// notify(user: U, kind: "...", text: "..."): some product surface
	// generated a notification for U (the caller is the actor).
	w.RegisterMutation("notify", func(ctx *was.Ctx, call was.FieldCall) (any, error) {
		target, err := call.Uint64Arg("user")
		if err != nil {
			return nil, err
		}
		kind, err := call.StringArg("kind")
		if err != nil {
			return nil, err
		}
		text, err := call.StringArg("text")
		if err != nil {
			return nil, err
		}
		ref := ctx.Srv.TAO.ObjectAdd("notification", map[string]string{
			"kind":  kind,
			"text":  text,
			"actor": strconv.FormatUint(uint64(ctx.Viewer), 10),
			"to":    strconv.FormatUint(target, 10),
		})
		ctx.Srv.TAO.AssocAdd(tao.ObjID(target), "user_notif", ref, ctx.Now, kind)
		ctx.Publish(pylon.Event{
			Topic: NotifTopic(target),
			Ref:   uint64(ref),
			Meta: map[string]string{
				"kind":   kind,
				"author": strconv.FormatUint(uint64(ctx.Viewer), 10),
			},
		}, false)
		return uint64(ref), nil
	})

	w.RegisterSubscription("websiteNotifications", func(ctx *was.Ctx, call was.FieldCall) ([]pylon.Topic, error) {
		return []pylon.Topic{NotifTopic(uint64(ctx.Viewer))}, nil
	})

	w.RegisterPayload(AppNotifications, func(ctx *was.Ctx, ref tao.ObjID, ev pylon.Event) (any, error) {
		obj, err := ctx.Reader().ObjectGet(ref)
		if err != nil {
			return nil, err
		}
		actor, _ := strconv.ParseUint(obj.Data["actor"], 10, 64)
		return NotificationPayload{
			ID: uint64(ref), Kind: obj.Data["kind"], Actor: actor, Text: obj.Data["text"],
		}, nil
	})
	return a
}

// Name implements brass.Application.
func (a *WebsiteNotifications) Name() string { return AppNotifications }

type notifStream struct {
	unseen uint64
}

type notifInstance struct {
	app *WebsiteNotifications
	rt  *brass.Runtime
}

// NewInstance implements brass.Application.
func (a *WebsiteNotifications) NewInstance(rt *brass.Runtime) brass.AppInstance {
	return &notifInstance{app: a, rt: rt}
}

func (in *notifInstance) OnStreamOpen(st *brass.Stream) error {
	topics, err := in.rt.ResolveSubscription(st.Viewer, st.Header(burst.HdrSubscription))
	if err != nil {
		return err
	}
	state := &notifStream{}
	// A reconnecting device carries its badge state in the header.
	if v := st.Header(HdrUnseenCount); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			state.unseen = n
		}
	}
	st.State = state
	for _, t := range topics {
		if err := st.AddTopic(t); err != nil {
			return err
		}
	}
	return nil
}

func (in *notifInstance) OnStreamClose(st *brass.Stream, reason string) { st.State = nil }

func (in *notifInstance) OnEvent(ev pylon.Event) {
	for _, st := range in.rt.Instance().StreamsForTopic(ev.Topic) {
		state, ok := st.State.(*notifStream)
		if !ok {
			continue
		}
		raw, err := st.FetchPayload(ev)
		if err != nil {
			st.Filtered() // privacy-denied actor
			continue
		}
		var p NotificationPayload
		if err := json.Unmarshal(raw, &p); err != nil {
			st.Filtered()
			continue
		}
		state.unseen++
		p.Unseen = state.unseen
		b, _ := json.Marshal(p)
		if st.PushPayload(ev.ID, b) == nil {
			_ = st.RewriteHeaderField(HdrUnseenCount,
				strconv.FormatUint(state.unseen, 10))
		}
	}
}

// OnAck marks notifications seen: the device acks after the user opens the
// jewel, resetting the badge.
func (in *notifInstance) OnAck(st *brass.Stream, seq uint64) {
	if state, ok := st.State.(*notifStream); ok {
		state.unseen = 0
		_ = st.RewriteHeaderField(HdrUnseenCount, "0")
	}
}

var _ brass.Application = (*WebsiteNotifications)(nil)
