package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineHygiene checks `go func` literals for the two leak shapes that
// matter in a delivery tier that spools goroutines per stream and per
// instance:
//
//  1. capturing a loop variable instead of passing it as an argument —
//     even with Go 1.22 per-iteration variables this hides the data flow
//     and breaks the moment the literal is lifted out of the loop; and
//  2. an unbounded `for` loop with no shutdown path: no return, no break,
//     no channel operation, no select, and no WaitGroup interaction in the
//     loop body. Such a goroutine can never be stopped; BRASS despool and
//     Host.Close would leak it.
type GoroutineHygiene struct{}

func (r *GoroutineHygiene) Name() string { return "goroutine-hygiene" }

func (r *GoroutineHygiene) Doc() string {
	return "go func literals must not capture loop variables and need a shutdown path for unbounded loops"
}

func (r *GoroutineHygiene) Check(c *Context) {
	info := c.Pkg.Info
	for _, f := range c.Pkg.Files {
		// loopVars maps the objects of loop variables currently in scope
		// while walking; maintained with a manual stack via Inspect's
		// pre/post traversal using a wrapper.
		var walk func(n ast.Node, loopVars map[types.Object]token.Pos)
		walk = func(n ast.Node, loopVars map[types.Object]token.Pos) {
			switch x := n.(type) {
			case nil:
				return
			case *ast.RangeStmt:
				inner := cloneVars(loopVars)
				addDefs(info, inner, x.Key, x.Value)
				walkChildren(x.Body, inner, walk)
				walk(x.X, loopVars)
				return
			case *ast.ForStmt:
				inner := cloneVars(loopVars)
				if init, ok := x.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
					for _, lhs := range init.Lhs {
						addDefs(info, inner, lhs)
					}
				}
				walk(x.Init, loopVars)
				walk(x.Cond, inner)
				walk(x.Post, inner)
				walkChildren(x.Body, inner, walk)
				return
			case *ast.GoStmt:
				if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
					r.checkGoLiteral(c, lit, loopVars)
				}
				for _, arg := range x.Call.Args {
					walk(arg, loopVars)
				}
				if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
					// Still walk the body for nested go statements.
					walkChildren(lit.Body, loopVars, walk)
				}
				return
			}
			walkChildren(n, loopVars, walk)
		}
		walk(f, map[types.Object]token.Pos{})
	}
}

func cloneVars(m map[types.Object]token.Pos) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func addDefs(info *types.Info, vars map[types.Object]token.Pos, exprs ...ast.Expr) {
	for _, e := range exprs {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				vars[obj] = id.Pos()
			}
		}
	}
}

func walkChildren(n ast.Node, vars map[types.Object]token.Pos, walk func(ast.Node, map[types.Object]token.Pos)) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(child ast.Node) bool {
		if child == n || child == nil {
			return child == n
		}
		walk(child, vars)
		return false
	})
}

func (r *GoroutineHygiene) checkGoLiteral(c *Context, lit *ast.FuncLit, loopVars map[types.Object]token.Pos) {
	info := c.Pkg.Info

	// (1) loop-variable capture.
	if len(loopVars) > 0 {
		reported := make(map[types.Object]bool)
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil || reported[obj] {
				return true
			}
			if _, isLoopVar := loopVars[obj]; isLoopVar {
				reported[obj] = true
				c.Reportf(id.Pos(), "goroutine captures loop variable %s; pass it as an argument", id.Name)
			}
			return true
		})
	}

	// (2) unbounded loop with no shutdown path.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !hasShutdownPath(loop.Body) {
			c.Reportf(loop.For, "goroutine runs an unbounded for loop with no shutdown path (no return, break, channel op, or select); it can never be stopped")
			return false
		}
		return true
	})
}

// hasShutdownPath reports whether an unbounded loop body contains anything
// that could ever end or park the loop: return, break, select, channel
// send/receive/range/close, or a WaitGroup interaction.
func hasShutdownPath(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt, *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.BranchStmt:
			if x.Tok == token.BREAK || x.Tok == token.GOTO {
				found = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			// range over a channel parks; treat any range as bounded
			// enough — an unbounded inner range would itself be scanned.
			found = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && (id.Name == "close" || id.Name == "panic") {
				found = true
			}
		}
		return !found
	})
	return found
}
