package brass

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bladerunner/internal/kvstore"
	"bladerunner/internal/pylon"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
	"bladerunner/internal/was"
)

// payloadEnv builds a host whose WAS counts payload resolutions, with a
// controllable delay so concurrency tests can hold a fetch open.
type payloadEnv struct {
	host    *Host
	was     *was.Server
	graph   *socialgraph.Graph
	resolve *atomic.Int64 // PayloadFunc invocations
	gate    chan struct{} // nil = resolve immediately; else each resolve receives once
}

func newPayloadEnv(t *testing.T, cfg HostConfig) *payloadEnv {
	t.Helper()
	nodes := []*kvstore.Node{
		kvstore.NewNode("a", "us"), kvstore.NewNode("b", "eu"), kvstore.NewNode("c", "ap"),
	}
	pyl := pylon.MustNew(pylon.DefaultConfig(), kvstore.MustNewCluster(nodes, 3))
	store := tao.MustNewStore(tao.DefaultConfig(), nil)
	graph := socialgraph.MustGenerate(socialgraph.Config{Users: 50, MeanFriends: 5, Seed: 1})
	w := was.New(store, graph, pyl, nil)
	env := &payloadEnv{was: w, graph: graph, resolve: &atomic.Int64{}}
	w.RegisterPayload("echo", func(ctx *was.Ctx, ref tao.ObjID, ev pylon.Event) (any, error) {
		env.resolve.Add(1)
		if env.gate != nil {
			<-env.gate
		}
		return map[string]uint64{"ref": uint64(ref)}, nil
	})
	if cfg.ID == "" {
		cfg.ID = "brass-payload"
	}
	env.host = NewHost(cfg, pyl, w, nil)
	t.Cleanup(env.host.Close)
	return env
}

// TestHotEventSharesOneWASFetch is the acceptance check for the payload
// fast path: many viewers of one hot event on one host cost one WAS
// payload resolution; everyone else is served from the cache.
func TestHotEventSharesOneWASFetch(t *testing.T) {
	env := newPayloadEnv(t, HostConfig{})
	ev := pylon.Event{Topic: "/LVC/1", ID: 0x4201, Ref: 99}

	const viewers = 100
	var want []byte
	for i := 0; i < viewers; i++ {
		b, err := env.host.fetchPayload("echo", socialgraph.UserID(1+i%40), ev)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = b
		} else if !bytes.Equal(b, want) {
			t.Fatalf("viewer %d got different payload bytes", i)
		}
	}
	if got := env.resolve.Load(); got != 1 {
		t.Errorf("payload resolved %d times, want 1", got)
	}
	if got := env.was.PayloadFetches.Value(); got != 1 {
		t.Errorf("WAS PayloadFetches = %d, want 1", got)
	}
	if got := env.host.PayloadCacheHits.Value(); got != viewers-1 {
		t.Errorf("PayloadCacheHits = %d, want %d", got, viewers-1)
	}
	if got := env.host.WASFetches.Value(); got != viewers {
		t.Errorf("host WASFetches = %d, want %d (one per stream-level request)", got, viewers)
	}
}

// TestConcurrentFetchesCoalesce holds the WAS resolution open while many
// goroutines fetch the same event: they must all join the single in-flight
// call rather than each hitting the WAS.
func TestConcurrentFetchesCoalesce(t *testing.T) {
	env := newPayloadEnv(t, HostConfig{})
	env.gate = make(chan struct{})
	ev := pylon.Event{Topic: "/LVC/2", ID: 0x4301, Ref: 7}

	const callers = 16
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := env.host.fetchPayload("echo", socialgraph.UserID(1+i), ev)
			errs <- err
		}(i)
	}
	// Wait until the leader is inside the resolver, give the rest a moment
	// to pile onto the flight, then release exactly one resolution.
	deadline := time.Now().Add(5 * time.Second)
	for env.resolve.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if env.resolve.Load() == 0 {
		t.Fatal("no resolver call started")
	}
	close(env.gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := env.resolve.Load(); got != 1 {
		t.Errorf("payload resolved %d times, want 1 (coalesced)", got)
	}
	if env.host.CoalescedFetches.Value()+env.host.PayloadCacheHits.Value() != callers-1 {
		t.Errorf("coalesced=%d hits=%d, want them to cover the %d non-leader callers",
			env.host.CoalescedFetches.Value(), env.host.PayloadCacheHits.Value(), callers-1)
	}
}

// TestPayloadCachePrivacyPerViewer pins the privacy contract: cached bytes
// never leak to a viewer the privacy check rejects, even on a cache hit.
func TestPayloadCachePrivacyPerViewer(t *testing.T) {
	env := newPayloadEnv(t, HostConfig{})
	const author, blocked, allowed = socialgraph.UserID(3), socialgraph.UserID(4), socialgraph.UserID(5)
	env.graph.Block(blocked, author)
	ev := pylon.Event{
		Topic: "/LVC/3", ID: 0x4401, Ref: 11,
		Meta: map[string]string{"author": fmt.Sprint(author)},
	}

	// Warm the cache as an allowed viewer.
	if _, err := env.host.fetchPayload("echo", allowed, ev); err != nil {
		t.Fatal(err)
	}
	// The blocked viewer must be denied even though the bytes are cached.
	if _, err := env.host.fetchPayload("echo", blocked, ev); err == nil {
		t.Fatal("blocked viewer served from payload cache")
	}
	// And another allowed viewer still hits the cache.
	if _, err := env.host.fetchPayload("echo", allowed+1, ev); err != nil {
		t.Fatal(err)
	}
	if got := env.resolve.Load(); got != 1 {
		t.Errorf("payload resolved %d times, want 1", got)
	}
	if env.was.PrivacyDenied.Value() == 0 {
		t.Error("privacy check did not run for the blocked viewer")
	}
}

// TestPayloadCacheDisabled restores the fetch-per-stream behaviour with a
// negative cache size.
func TestPayloadCacheDisabled(t *testing.T) {
	env := newPayloadEnv(t, HostConfig{PayloadCacheSize: -1})
	ev := pylon.Event{Topic: "/LVC/4", ID: 0x4501, Ref: 12}
	for i := 0; i < 5; i++ {
		if _, err := env.host.fetchPayload("echo", socialgraph.UserID(1+i), ev); err != nil {
			t.Fatal(err)
		}
	}
	if got := env.resolve.Load(); got != 5 {
		t.Errorf("payload resolved %d times, want 5 with caching disabled", got)
	}
	if env.host.PayloadCacheHits.Value() != 0 || env.host.CoalescedFetches.Value() != 0 {
		t.Error("cache metrics moved with caching disabled")
	}
}

// TestPayloadCacheDistinctEventsDistinctEntries guards the key: different
// events (ID/Ref) must not alias.
func TestPayloadCacheDistinctEventsDistinctEntries(t *testing.T) {
	env := newPayloadEnv(t, HostConfig{})
	a, err := env.host.fetchPayload("echo", 1, pylon.Event{ID: 1, Ref: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.host.fetchPayload("echo", 1, pylon.Event{ID: 2, Ref: 20})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("distinct events returned identical payloads")
	}
	if got := env.resolve.Load(); got != 2 {
		t.Errorf("payload resolved %d times, want 2", got)
	}
}
