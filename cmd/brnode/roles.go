package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"bladerunner/internal/apps"
	"bladerunner/internal/core"
	"bladerunner/internal/ctrl"
	"bladerunner/internal/edge"
)

// node is one running tier: a drain trigger (remote node.drain) plus the
// graceful teardown the trigger or a signal runs.
type node struct {
	drained   chan struct{}
	reqOnce   sync.Once
	drainOnce sync.Once
	closers   []func() // run in order on drain
}

func newNode() *node { return &node{drained: make(chan struct{})} }

// requestDrain is the node.drain handler: it unblocks main, which runs
// drain. Safe to call from any goroutine, any number of times.
func (n *node) requestDrain() {
	n.reqOnce.Do(func() { close(n.drained) })
}

func (n *node) drain() {
	n.drainOnce.Do(func() {
		for _, fn := range n.closers {
			fn()
		}
	})
}

func (n *node) onDrain(fn func()) { n.closers = append(n.closers, fn) }

// ready prints the machine-readable readiness line the launcher (and the
// e2e harness) parses. burst is "-" for roles with no BURST listener.
func ready(role, ctrlAddr, burst string) {
	if burst == "" {
		burst = "-"
	}
	fmt.Printf("READY role=%s ctrl=%s burst=%s\n", role, ctrlAddr, burst)
}

// clusterConfig maps the bootstrap onto the shared cluster Config the
// tier constructors consume. BlockProb is zeroed so independently booted
// processes agree on the graph without coordination.
func clusterConfig(b bootstrap) core.Config {
	cfg := core.DefaultConfig()
	cfg.Regions = []string{b.Region}
	cfg.BRASSHostsPerRegion = b.Hosts
	cfg.Graph.Users = b.Users
	cfg.Graph.Seed = b.Seed
	cfg.Graph.BlockProb = 0
	if cfg.Graph.MeanFriends >= b.Users {
		cfg.Graph.MeanFriends = b.Users / 2
	}
	if b.Durlog {
		cfg.Durlog = &core.DurlogConfig{}
	}
	return cfg
}

// ctrlServer accepts control connections and wires each one's services.
type ctrlServer struct {
	ln net.Listener

	mu     sync.Mutex
	conns  map[*ctrl.Conn]bool
	closed bool
}

// newCtrlServer listens on addr; every accepted conn serves the node
// admin methods plus whatever setup registers, then starts.
func newCtrlServer(addr, role string, onDrain func(), setup func(*ctrl.Conn)) (*ctrlServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctrl listen %s: %w", addr, err)
	}
	s := &ctrlServer{ln: ln, conns: make(map[*ctrl.Conn]bool)}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			conn := ctrl.NewConn(role+"-ctrl", c, nil)
			ctrl.ServeNode(conn, role, onDrain)
			if setup != nil {
				setup(conn)
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				_ = conn.Close()
				return
			}
			s.conns[conn] = true
			s.mu.Unlock()
			conn.Start()
		}
	}()
	return s, nil
}

func (s *ctrlServer) Addr() string { return s.ln.Addr().String() }

func (s *ctrlServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]*ctrl.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	_ = s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
}

// dialCtrl opens a control connection to a peer tier and starts it after
// setup has registered any handlers (e.g. the pylon client's deliver
// dispatcher).
func dialCtrl(name, addr string, setup func(*ctrl.Conn)) (*ctrl.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s at %s: %w", name, addr, err)
	}
	conn := ctrl.NewConn(name, c, nil)
	if setup != nil {
		setup(conn)
	}
	conn.Start()
	return conn, nil
}

// runPylon boots the pub/sub tier: subscription KV + Pylon, served over
// the control protocol.
func runPylon(b bootstrap) (*node, error) {
	pt, err := core.NewPylonTier(clusterConfig(b))
	if err != nil {
		return nil, err
	}
	n := newNode()
	cs, err := newCtrlServer(b.Ctrl, "pylon", n.requestDrain, func(c *ctrl.Conn) {
		ctrl.ServePylon(c, pt.Pylon, nil)
	})
	if err != nil {
		return nil, err
	}
	n.onDrain(cs.Close)
	log.Printf("pylon up: ctrl=%s", cs.Addr())
	ready("pylon", cs.Addr(), "")
	return n, nil
}

// runWAS boots the backend tier: graph + TAO + WAS with every app's
// resolvers, publishing into the remote Pylon over ctrl.
func runWAS(b bootstrap) (*node, error) {
	if b.PylonAddr == "" {
		return nil, fmt.Errorf("role was: -pylon address required")
	}
	var pc *ctrl.PylonClient
	pconn, err := dialCtrl("was->pylon", b.PylonAddr, func(c *ctrl.Conn) {
		pc = ctrl.NewPylonClient(c)
	})
	if err != nil {
		return nil, err
	}
	wt, err := core.NewWASTier(clusterConfig(b), nil, pc, nil)
	if err != nil {
		return nil, err
	}
	n := newNode()
	cs, err := newCtrlServer(b.Ctrl, "was", n.requestDrain, func(c *ctrl.Conn) {
		ctrl.ServeWAS(c, wt.WAS)
	})
	if err != nil {
		_ = pconn.Close()
		return nil, err
	}
	n.onDrain(cs.Close)
	n.onDrain(func() { _ = pconn.Close() })
	log.Printf("was up: ctrl=%s pylon=%s users=%d", cs.Addr(), b.PylonAddr, b.Users)
	ready("was", cs.Addr(), "")
	return n, nil
}

// runBrass boots BRASS hosts consuming Pylon and the WAS over ctrl, and
// accepts device/POP BURST sessions over TCP.
func runBrass(b bootstrap) (*node, error) {
	if b.PylonAddr == "" || b.WASAddr == "" {
		return nil, fmt.Errorf("role brass: -pylon and -was addresses required")
	}
	var pc *ctrl.PylonClient
	pconn, err := dialCtrl("brass->pylon", b.PylonAddr, func(c *ctrl.Conn) {
		pc = ctrl.NewPylonClient(c)
	})
	if err != nil {
		return nil, err
	}
	var wc *ctrl.WASClient
	wconn, err := dialCtrl("brass->was", b.WASAddr, func(c *ctrl.Conn) {
		wc = ctrl.NewWASClient(c)
	})
	if err != nil {
		_ = pconn.Close()
		return nil, err
	}

	// The WAS halves live in the WAS process; this suite only carries the
	// BRASS halves, so it registers against the no-op registrar.
	suite := apps.NewSuite(apps.NopRegistrar{})
	tier := core.NewBrassTier(clusterConfig(b), b.Region, "", suite, pc, wc, nil)

	tnet := edge.NewTCPNetwork()
	var next uint32
	var sess uint64
	bound, err := tnet.Listen(tier.Hosts[0].ID(), b.Listen, func(rwc io.ReadWriteCloser) {
		h := tier.Hosts[int(atomic.AddUint32(&next, 1))%len(tier.Hosts)]
		h.AcceptSession(fmt.Sprintf("%s-in-%d", h.ID(), atomic.AddUint64(&sess, 1)), rwc)
	})
	if err != nil {
		_ = pconn.Close()
		_ = wconn.Close()
		return nil, err
	}

	n := newNode()
	cs, err := newCtrlServer(b.Ctrl, "brass", n.requestDrain, nil)
	if err != nil {
		_ = pconn.Close()
		_ = wconn.Close()
		tnet.Close()
		return nil, err
	}
	// Drain order: stop accepting, close live sessions cleanly (clients
	// observe a peer close and fail over), then drop the tier links.
	n.onDrain(tnet.Close)
	n.onDrain(func() {
		for _, h := range tier.Hosts {
			h.Close()
		}
	})
	n.onDrain(cs.Close)
	n.onDrain(func() { _ = pconn.Close() })
	n.onDrain(func() { _ = wconn.Close() })
	log.Printf("brass up: burst=%s ctrl=%s hosts=%d", bound, cs.Addr(), len(tier.Hosts))
	ready("brass", cs.Addr(), bound)
	return n, nil
}

// runPOP boots one edge POP: a proxy routing BURST streams round-robin
// (sticky-first) to the configured brass targets over TCP.
func runPOP(b bootstrap) (*node, error) {
	if len(b.BrassAddrs) == 0 {
		return nil, fmt.Errorf("role pop: -brass name=addr list required")
	}
	tnet := edge.NewTCPNetwork()
	targets := make([]string, 0, len(b.BrassAddrs))
	for name, addr := range b.BrassAddrs {
		tnet.SetAddr(name, addr)
		targets = append(targets, name)
	}
	sort.Strings(targets)
	pop := core.NewPOPTier("pop-0", tnet, targets)
	bound, err := tnet.Listen("pop-0", b.Listen, pop.Accept)
	if err != nil {
		return nil, err
	}
	n := newNode()
	cs, err := newCtrlServer(b.Ctrl, "pop", n.requestDrain, nil)
	if err != nil {
		tnet.Close()
		return nil, err
	}
	n.onDrain(tnet.Close)
	n.onDrain(pop.Close)
	n.onDrain(cs.Close)
	log.Printf("pop up: burst=%s ctrl=%s brass=%v", bound, cs.Addr(), targets)
	ready("pop", cs.Addr(), bound)
	return n, nil
}
