// Command brload inspects the synthetic workload generators: it prints the
// sampled distributions (Table 1 area activity, Table 2 stream lifetimes,
// the diurnal curves) so their calibration can be eyeballed or piped into
// plotting tools.
//
// Usage:
//
//	brload -what areas -n 1000000
//	brload -what lifetimes -n 100000
//	brload -what diurnal
//	brload -what graph -n 10000
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"bladerunner/internal/socialgraph"
	"bladerunner/internal/workload"
)

func main() {
	what := flag.String("what", "areas", "areas | lifetimes | diurnal | graph")
	n := flag.Int("n", 1_000_000, "sample count")
	seed := flag.Int64("seed", 1, "RNG seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	switch *what {
	case "areas":
		showAreas(rng, *n)
	case "lifetimes":
		showLifetimes(rng, *n)
	case "diurnal":
		showDiurnal()
	case "graph":
		showGraph(*seed, *n)
	default:
		log.Fatalf("brload: unknown -what %q", *what)
	}
}

func showAreas(rng *rand.Rand, n int) {
	var zero, b10, b100, mid, b1M, b100M int
	var total int64
	for i := 0; i < n; i++ {
		u := workload.AreaUpdates(rng, workload.Table1Buckets)
		total += u
		switch {
		case u == 0:
			zero++
		case u < 10:
			b10++
		case u < 100:
			b100++
		case u <= 1_000_000:
			mid++
		case u <= 100_000_000:
			b1M++
		default:
			b100M++
		}
	}
	fmt.Printf("areas sampled: %d, total daily updates: %d\n", n, total)
	p := func(c int) float64 { return 100 * float64(c) / float64(n) }
	fmt.Printf("  0 updates:        %7.4f%%  (paper: 83%%)\n", p(zero))
	fmt.Printf("  1-9:              %7.4f%%  (paper: 16%%)\n", p(b10))
	fmt.Printf("  10-99:            %7.4f%%  (paper: 0.95%%)\n", p(b100))
	fmt.Printf("  100-1M:           %7.4f%%  (paper: elided)\n", p(mid))
	fmt.Printf("  1M-100M:          %7.4f%%  (paper: 0.049%%)\n", p(b1M))
	fmt.Printf("  >100M:            %7.4f%%  (paper: 0.0001%%)\n", p(b100M))
}

func showLifetimes(rng *rand.Rand, n int) {
	var b15, b1h, b24, more int
	for i := 0; i < n; i++ {
		lt := workload.StreamLifetime(rng, workload.Table2Buckets)
		switch {
		case lt < 15*time.Minute:
			b15++
		case lt < time.Hour:
			b1h++
		case lt < 24*time.Hour:
			b24++
		default:
			more++
		}
	}
	p := func(c int) float64 { return 100 * float64(c) / float64(n) }
	fmt.Printf("stream lifetimes (n=%d):\n", n)
	fmt.Printf("  <15min:  %6.2f%%  (paper: 45%%)\n", p(b15))
	fmt.Printf("  15m-1h:  %6.2f%%  (paper: 26%%)\n", p(b1h))
	fmt.Printf("  1h-24h:  %6.2f%%  (paper: 25%%)\n", p(b24))
	fmt.Printf("  24h+:    %6.2f%%  (paper: 4%%)\n", p(more))
}

func showDiurnal() {
	day := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
	fmt.Println("hour, streams/user, subs/min, pubs/min, drops/min(M), reconnects/min(M)")
	for h := 0; h < 24; h++ {
		t := day.Add(time.Duration(h) * time.Hour)
		fmt.Printf("%02d:00, %5.2f, %5.3f, %5.3f, %6.1f, %5.2f\n",
			h,
			workload.ActiveStreamsPerUser.At(t),
			workload.SubscriptionsPerUserMinute.At(t),
			workload.PublicationsPerUserMinute.At(t),
			workload.EdgeConnectionDropsPerMinute.At(t)/1e6,
			workload.ProxyReconnectsPerMinute.At(t)/1e6)
	}
}

func showGraph(seed int64, n int) {
	cfg := socialgraph.DefaultConfig()
	cfg.Users = n
	cfg.Seed = seed
	g, err := socialgraph.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := g.Degrees()
	fmt.Printf("graph: %d users, degree min/mean/max = %d/%.1f/%d\n",
		g.NumUsers(), st.Min, st.Mean, st.Max)
	// Degree histogram (log buckets).
	buckets := []int{0, 1, 10, 50, 100, 500, 1000}
	counts := make([]int, len(buckets))
	for id := socialgraph.UserID(1); id <= socialgraph.UserID(n); id++ {
		d := len(g.Friends(id))
		for i := len(buckets) - 1; i >= 0; i-- {
			if d >= buckets[i] {
				counts[i]++
				break
			}
		}
	}
	for i, b := range buckets {
		hi := "∞"
		if i+1 < len(buckets) {
			hi = fmt.Sprint(buckets[i+1] - 1)
		}
		fmt.Printf("  degree %4d-%4s: %d users\n", b, hi, counts[i])
	}
}
