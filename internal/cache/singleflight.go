package cache

import "sync"

// flightCall is one in-flight fetch; callers after the first wait on wg.
type flightCall[V any] struct {
	wg     sync.WaitGroup
	val    V
	err    error
	joined int // duplicate callers that attached to this flight
}

// Group coalesces concurrent calls for the same key into one execution of
// the underlying fetch. The first caller for a key runs fn; every caller
// that arrives while that fetch is in flight blocks and receives the same
// result. Once the fetch completes the key is forgotten, so later calls
// fetch afresh (pair with an LRU for read-your-writes caching).
//
// This is a from-scratch, stdlib-only take on the classic singleflight
// pattern. The group mutex guards only the in-flight map — it is never held
// across the blocking WaitGroup.Wait or across fn.
type Group[K comparable, V any] struct {
	mu     sync.Mutex
	flight map[K]*flightCall[V]
}

// Do executes fn for key unless a call for key is already in flight, in
// which case it waits for and returns that call's result. joined reports
// whether this caller attached to another caller's execution (false for
// the caller that ran fn) — i.e. the number of joined=true returns is the
// number of fn executions the group saved.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (v V, err error, joined bool) {
	g.mu.Lock()
	if g.flight == nil {
		g.flight = make(map[K]*flightCall[V])
	}
	if c, ok := g.flight[key]; ok {
		c.joined++
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall[V]{}
	c.wg.Add(1)
	g.flight[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.flight, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}
