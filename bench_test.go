// Benchmarks regenerating every table and figure of the paper's evaluation
// (run with `go test -bench=. -benchmem`), the ablation benches for the
// design choices called out in DESIGN.md §6, and microbenchmarks of the
// hot paths (BURST framing, Pylon publish, TAO queries, the full
// end-to-end push pipeline).
package bladerunner

import (
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/bench"
	"bladerunner/internal/brass"
	"bladerunner/internal/burst"
	"bladerunner/internal/experiments"
	"bladerunner/internal/kvstore"
	"bladerunner/internal/pylon"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
	"bladerunner/internal/was"
	"bladerunner/internal/workload"
)

// ---- One bench per paper table/figure (DESIGN.md §5) ----

func BenchmarkTable1AreaUpdateDistribution(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = workload.AreaUpdates(rng, workload.Table1Buckets)
	}
}

func BenchmarkTable2StreamLifetimes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = workload.StreamLifetime(rng, workload.Table2Buckets)
	}
}

func BenchmarkTable3ComponentLatencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table3(int64(i+1), 2000)
	}
}

func BenchmarkFigure6PollVsStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure6(int64(i+1), 2000)
	}
}

func BenchmarkFigure7SubscriptionActivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure7(int64(i+1), 2000)
	}
}

func BenchmarkFigure8DiurnalActivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure8(int64(i + 1))
	}
}

func BenchmarkFigure9LatencyCDFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure9(int64(i+1), 2000)
	}
}

func BenchmarkFigure10FailureRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure10(int64(i + 1))
	}
}

func BenchmarkSwitchoverResourceUsage(b *testing.B) {
	if testing.Short() {
		b.Skip("live-stack experiment")
	}
	for i := 0; i < b.N; i++ {
		_ = experiments.Switchover(int64(i + 1))
	}
}

// ---- Ablation benches (DESIGN.md §6) ----

func BenchmarkAblationMetadataVsPayload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationMetadataVsPayload(1000, 2, 0.09)
	}
}

func BenchmarkAblationSubscriptionDedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationSubscriptionDedup(50, 4)
	}
}

func BenchmarkAblationFirstResponder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationFirstResponder(1000)
	}
}

func BenchmarkAblationRateLimitOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.AblationRateLimitOrder(1000, 10, 0.2, nil)
	}
}

// BenchmarkAblationGenericVsPerApp compares the per-message cost of the
// abandoned generic configurable filter chain against compiled per-app
// filter code (the paper's argument for per-application BRASSes).
func BenchmarkAblationGenericVsPerApp(b *testing.B) {
	meta := map[string]string{"score": "0.53", "lang": "2", "author": "99"}
	cfg := experiments.GenericFilterConfig{
		"min_score":   "0.2",
		"lang_filter": "on",
		"viewer_lang": "2",
		"drop_own":    "on",
		"viewer":      "7",
	}
	b.Run("generic-config-chain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = experiments.GenericFilter(cfg, meta)
		}
	})
	b.Run("per-app-compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = experiments.PerAppFilter(0.2, "2", "7", meta)
		}
	})
}

// ---- Microbenchmarks of the hot paths ----
//
// The four headline hot-path benchmarks live in internal/bench so that
// cmd/brbench -bench-json emits numbers from exactly this code.

func BenchmarkBURSTFrameRoundTrip(b *testing.B) { bench.BURSTFrameRoundTrip(b) }

func BenchmarkPylonPublish(b *testing.B) { bench.PylonPublish(b) }

// BenchmarkHotTopicFanout is the subscriber-cache acceptance benchmark:
// one publish fanning out to 1000 subscribed hosts on one hot topic.
func BenchmarkHotTopicFanout(b *testing.B) { bench.HotTopicFanout(b) }

func BenchmarkEndToEndCommentPush(b *testing.B) { bench.EndToEndCommentPush(b) }

// BenchmarkEndToEndCommentPushHops is the same pipeline with the tracing
// plane sampling every mutation: the per-hop latency breakdown (publish,
// fan-out, payload fetch, push) is reported as custom <hop>-ns metrics.
func BenchmarkEndToEndCommentPushHops(b *testing.B) { bench.EndToEndCommentPushHops(b) }

func newBenchKV() *kvstore.Cluster { return bench.NewKV() }

type benchSink struct{ n int }

func (s *benchSink) ID() string            { return "sink" }
func (s *benchSink) Deliver(_ pylon.Event) { s.n++ }

func BenchmarkPylonSubscribe(b *testing.B) {
	pyl := pylon.MustNew(pylon.DefaultConfig(), newBenchKV())
	sink := &benchSink{}
	pyl.RegisterHost(sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pyl.Subscribe(pylon.Topic(fmt.Sprintf("/t/%d", i)), "sink"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTAOPointQuery(b *testing.B) {
	store := tao.MustNewStore(tao.DefaultConfig(), nil)
	id := store.ObjectAdd("comment", map[string]string{"text": "hello"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.ObjectGet(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTAORangeQuery quantifies the poll-path cost against the
// point-query cost above: range queries scale with list size and shard
// fan-in (paper footnote 5).
func BenchmarkTAORangeQuery(b *testing.B) {
	for _, size := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("list-%d", size), func(b *testing.B) {
			store := tao.MustNewStore(tao.DefaultConfig(), nil)
			base := time.Date(2020, 3, 15, 0, 0, 0, 0, time.UTC)
			for i := 0; i < size; i++ {
				store.AssocAdd(1, "comment", tao.ObjID(i+100),
					base.Add(time.Duration(i)*time.Second), "")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = store.AssocRange(1, "comment", 0, 20)
			}
		})
	}
}

func BenchmarkGraphPrivacyCheck(b *testing.B) {
	g := socialgraph.MustGenerate(socialgraph.Config{
		Users: 10000, MeanFriends: 50, BlockProb: 0.05, Seed: 1,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Blocks(socialgraph.UserID(i%10000+1), socialgraph.UserID((i*7)%10000+1))
	}
}

// BenchmarkAblationPerStreamInstances compares shared-instance hosting
// (production Bladerunner) against the one-instance-per-stream variant §7
// suggests for lower-scale deployments: the isolation costs one goroutine +
// event loop per stream.
func BenchmarkAblationPerStreamInstances(b *testing.B) {
	for _, perStream := range []bool{false, true} {
		name := "shared-instance"
		if perStream {
			name = "per-stream-instance"
		}
		b.Run(name, func(b *testing.B) {
			pyl := pylon.MustNew(pylon.DefaultConfig(), newBenchKV())
			store := tao.MustNewStore(tao.DefaultConfig(), nil)
			graph := socialgraph.MustGenerate(socialgraph.Config{Users: 100, MeanFriends: 5, Seed: 1})
			w := was.New(store, graph, pyl, nil)
			suite := apps.NewSuite(w)
			host := brass.NewHost(brass.HostConfig{
				ID: "bench-host", Region: "us", PerStreamInstances: perStream,
			}, pyl, w, nil)
			defer host.Close()
			suite.RegisterBRASS(host)
			cliConn, hostConn := net.Pipe()
			cli := burst.NewClient("bench", cliConn, nil)
			defer cli.Close()
			host.AcceptSession("bench", hostConn)

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{
					burst.HdrApp:          apps.AppFeedComments,
					burst.HdrSubscription: fmt.Sprintf("feedPostComments(postID: %d)", i),
					burst.HdrUser:         "1",
				}})
				if err != nil {
					b.Fatal(err)
				}
				if err := st.Cancel("bench"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(host.InstancesSpun.Value()), "instances")
		})
	}
}
