package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// This file builds the whole-module call graph behind brlint's
// interprocedural rules (hot-path-alloc, control-never-shed, and the
// call-chain-aware half of no-lock-across-block). The graph is constructed
// once per Runner.Run over every loaded package and shared by all rules —
// the package graph is parsed and type-checked exactly once (by the
// Loader), and the Program adds one AST pass per function on top.
//
// Resolution policy (deliberately conservative, documented in DESIGN.md
// §8b):
//
//   - Static calls (package functions, concrete methods) resolve to their
//     single target; generic instantiations are folded onto their origin.
//   - Interface method calls resolve to every module type whose method set
//     satisfies the interface — the static over-approximation of dynamic
//     dispatch. Interfaces declared outside the module (io.Writer, error)
//     are not resolved; the rules that care consult explicit tables for
//     those (stdlibAllocFree, blockingByName).
//   - Calls through function values (parameters, fields, variables) are
//     recorded as dynamic: the engine cannot see the target, so rules
//     treat the edge pessimistically (hot-path-alloc) or optimistically
//     (blocking — flagging every closure invocation would drown the
//     signal; the goroutine-hygiene and intra-function checks still cover
//     the literal's own body).
//   - Function literals are separate functions: a call site inside a
//     FuncLit is not attributed to the lexically enclosing declaration
//     (the literal runs wherever the value is invoked).

// hotpathRE matches the //brlint:hotpath annotation, optionally followed
// by prose.
var hotpathRE = regexp.MustCompile(`^//\s*brlint:hotpath(\s|$)`)

// FuncNode is one declared function or method of the module, with its call
// sites.
type FuncNode struct {
	// Fn is the function object (the generic origin for generic code).
	Fn *types.Func
	// Decl is the declaration; Decl.Body is non-nil for every node.
	Decl *ast.FuncDecl
	// Pkg is the package the declaration lives in.
	Pkg *Package
	// Hotpath reports a //brlint:hotpath annotation in the doc comment:
	// the function claims the static zero-alloc gate.
	Hotpath bool
	// Calls are the call sites in the function body (excluding bodies of
	// nested function literals).
	Calls []*CallSite
}

// Name is the node's diagnostic display name, with the module path
// shortened away ("(*pylon.Service).Publish").
func (n *FuncNode) Name() string { return shortFuncName(n.Fn) }

// CallSite is one call expression inside a FuncNode.
type CallSite struct {
	Call *ast.CallExpr
	Pos  token.Pos
	// Callee is the statically resolved target (origin), nil for calls
	// through function values. For interface calls it is the interface
	// method itself.
	Callee *types.Func
	// Iface is true when Callee is an interface method; Targets then holds
	// every module implementation.
	Iface bool
	// Targets are the module-internal bodies this call can reach: exactly
	// one for a static call to a module function, the implementation set
	// for an interface call, nil for stdlib or dynamic calls.
	Targets []*FuncNode
	// Dynamic is true for calls through function values (no static target).
	Dynamic bool
	// Spawned/Deferred record `go f(...)` / `defer f(...)` context: spawned
	// calls run on another goroutine and never block (or allocate on) the
	// caller's path beyond the spawn itself.
	Spawned  bool
	Deferred bool
}

// Program is the whole-module view shared by the interprocedural rules.
type Program struct {
	Fset    *token.FileSet
	ModPath string
	Pkgs    []*Package

	nodes map[*types.Func]*FuncNode
	// named collects every named (non-interface) type of the module, for
	// interface implementation resolution.
	named []*types.Named
	// implMemo caches interface-method → implementations resolution.
	implMemo map[*types.Func][]*FuncNode

	// Summary memoization (escape.go).
	allocMemo map[*FuncNode][]Fact
	allocBusy map[*FuncNode]bool
	blockMemo map[*FuncNode][]Fact
	blockBusy map[*FuncNode]bool
	shedMemo  map[*FuncNode]map[int]shedFact
	shedBusy  map[*FuncNode]bool
}

// NewProgram indexes every function of pkgs and resolves their call sites.
func NewProgram(fset *token.FileSet, modPath string, pkgs []*Package) *Program {
	p := &Program{
		Fset:      fset,
		ModPath:   modPath,
		Pkgs:      pkgs,
		nodes:     make(map[*types.Func]*FuncNode),
		implMemo:  make(map[*types.Func][]*FuncNode),
		allocMemo: make(map[*FuncNode][]Fact),
		allocBusy: make(map[*FuncNode]bool),
		blockMemo: make(map[*FuncNode][]Fact),
		blockBusy: make(map[*FuncNode]bool),
		shedMemo:  make(map[*FuncNode]map[int]shedFact),
		shedBusy:  make(map[*FuncNode]bool),
	}
	for _, pkg := range pkgs {
		p.indexPackage(pkg)
	}
	for _, n := range p.nodes {
		p.resolveCalls(n)
	}
	return p
}

// indexPackage registers pkg's function declarations and named types.
func (p *Program) indexPackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			p.nodes[origin(obj)] = &FuncNode{
				Fn:      origin(obj),
				Decl:    fd,
				Pkg:     pkg,
				Hotpath: hasHotpathDirective(fd),
			}
		}
	}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		p.named = append(p.named, named)
	}
}

// hasHotpathDirective reports a //brlint:hotpath line in the declaration's
// doc comment.
func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if hotpathRE.MatchString(c.Text) {
			return true
		}
	}
	return false
}

// Node returns the FuncNode for fn's origin (nil for functions without a
// module body: stdlib, interface methods, externals).
func (p *Program) Node(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return p.nodes[origin(fn)]
}

// NodesIn returns pkg's function nodes in source order — the per-package
// iteration surface rules use so diagnostics stay grouped by package.
func (p *Program) NodesIn(pkg *Package) []*FuncNode {
	var out []*FuncNode
	for _, n := range p.nodes {
		if n.Pkg == pkg {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// resolveCalls collects n's call sites. Function literal bodies are
// skipped: the literal is a separate function whose invocation point is
// where the value is called.
func (p *Program) resolveCalls(n *FuncNode) {
	info := n.Pkg.Info
	var walk func(node ast.Node, spawned, deferred bool)
	record := func(call *ast.CallExpr, spawned, deferred bool) {
		// Conversions (T(x)) and builtins (len, append, ...) are not call
		// edges; the alloc scanner classifies them separately.
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return
			}
		}
		cs := &CallSite{Call: call, Pos: call.Pos(), Spawned: spawned, Deferred: deferred}
		if f := calleeFunc(info, call); f != nil {
			cs.Callee = origin(f)
			if isInterfaceMethod(f) {
				cs.Iface = true
				cs.Targets = p.implementations(f)
			} else if t := p.Node(f); t != nil {
				cs.Targets = []*FuncNode{t}
			}
		} else {
			cs.Dynamic = true
		}
		n.Calls = append(n.Calls, cs)
	}
	walk = func(node ast.Node, spawned, deferred bool) {
		ast.Inspect(node, func(x ast.Node) bool {
			switch v := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				record(v.Call, true, deferred)
				for _, arg := range v.Call.Args {
					walk(arg, spawned, deferred)
				}
				return false
			case *ast.DeferStmt:
				record(v.Call, spawned, true)
				for _, arg := range v.Call.Args {
					walk(arg, spawned, deferred)
				}
				return false
			case *ast.CallExpr:
				record(v, spawned, deferred)
			}
			return true
		})
	}
	walk(n.Decl.Body, false, false)
}

// isInterfaceMethod reports whether f is declared on an interface type.
func isInterfaceMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// implementations resolves an interface method to every module method that
// can stand behind it: for each named module type whose method set (value
// or pointer) satisfies the interface, the concrete method of the same
// name. Only interfaces declared inside the module are resolved; stdlib
// interfaces return nil and the rules fall back to their explicit tables.
func (p *Program) implementations(ifaceMethod *types.Func) []*FuncNode {
	ifaceMethod = origin(ifaceMethod)
	if impls, ok := p.implMemo[ifaceMethod]; ok {
		return impls
	}
	var impls []*FuncNode
	pkg := ifaceMethod.Pkg()
	inModule := pkg != nil && (pkg.Path() == p.ModPath || strings.HasPrefix(pkg.Path(), p.ModPath+"/"))
	if inModule {
		iface, _ := ifaceMethod.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
		if iface != nil {
			seen := make(map[*FuncNode]bool)
			for _, named := range p.named {
				var recv types.Type = named
				if !types.Implements(recv, iface) {
					recv = types.NewPointer(named)
					if !types.Implements(recv, iface) {
						continue
					}
				}
				obj, _, _ := types.LookupFieldOrMethod(recv, true, ifaceMethod.Pkg(), ifaceMethod.Name())
				if m, ok := obj.(*types.Func); ok {
					if n := p.Node(m); n != nil && !seen[n] {
						seen[n] = true
						impls = append(impls, n)
					}
				}
			}
			sort.Slice(impls, func(i, j int) bool { return impls[i].Name() < impls[j].Name() })
		}
	}
	p.implMemo[ifaceMethod] = impls
	return impls
}

// origin folds generic instantiations onto their declared origin so graph
// keys are stable.
func origin(f *types.Func) *types.Func {
	if o := f.Origin(); o != nil {
		return o
	}
	return f
}

// modPrefixRE strips the module-path prefix from qualified names:
// "(*bladerunner/internal/pylon.Service).Publish" reads better as
// "(*pylon.Service).Publish" in a diagnostic.
var modPrefixRE = regexp.MustCompile(`[^\s()*]+/internal/`)

// shortFuncName renders f for diagnostics with the module path elided.
func shortFuncName(f *types.Func) string {
	return modPrefixRE.ReplaceAllString(f.FullName(), "")
}

// shortPos renders a position inside another file as "file.go:123" for
// embedding in a diagnostic message.
func (p *Program) shortPos(pos token.Pos) string {
	pp := p.Fset.Position(pos)
	return filepath.Base(pp.Filename) + ":" + itoa(pp.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
