package burst

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

// Property: for any sequence of payload/rewrite deltas pushed by the
// server, the client's LastSeq equals the maximum payload sequence seen and
// its stored request reflects exactly the last rewrite.
func TestClientStateConvergesProperty(t *testing.T) {
	type op struct {
		IsRewrite bool
		Seq       uint16
		Val       uint8
	}
	f := func(ops []op) bool {
		if len(ops) > 40 {
			ops = ops[:40]
		}
		cli, _, srv := newClientServer(t)
		st, err := cli.Subscribe(Subscribe{Header: Header{HdrApp: "p", "k": "init"}})
		if err != nil {
			return false
		}
		waitDeadline := time.Now().Add(5 * time.Second)
		for srv.stream(0) == nil {
			if time.Now().After(waitDeadline) {
				return false
			}
			time.Sleep(time.Millisecond)
		}
		ss := srv.stream(0)

		var maxSeq uint64
		lastVal := "init"
		payloads := 0
		for _, o := range ops {
			if o.IsRewrite {
				lastVal = fmt.Sprintf("v%d", o.Val)
				if err := ss.RewriteHeaderField("k", lastVal); err != nil {
					return false
				}
			} else {
				if err := ss.SendBatch(PayloadDelta(uint64(o.Seq), []byte("x"))); err != nil {
					return false
				}
				if uint64(o.Seq) > maxSeq {
					maxSeq = uint64(o.Seq)
				}
				payloads++
			}
		}
		// Drain the payload events so all batches have been applied.
		for i := 0; i < payloads; i++ {
			select {
			case <-st.Events:
			case <-time.After(5 * time.Second):
				return false
			}
		}
		// Rewrites are applied in order; wait for the last one.
		deadline := time.Now().Add(5 * time.Second)
		for st.Request().Header["k"] != lastVal {
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(time.Millisecond)
		}
		return st.LastSeq() == maxSeq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: batches are delivered atomically — the client never observes a
// partial batch, and batch boundaries are preserved in order.
func TestBatchAtomicityProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) > 20 {
			sizes = sizes[:20]
		}
		cli, _, srv := newClientServer(t)
		st, err := cli.Subscribe(Subscribe{Header: Header{HdrApp: "p"}})
		if err != nil {
			return false
		}
		deadline := time.Now().Add(5 * time.Second)
		for srv.stream(0) == nil {
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(time.Millisecond)
		}
		ss := srv.stream(0)

		var sent [][]Delta
		for _, raw := range sizes {
			n := int(raw%5) + 1
			batch := make([]Delta, n)
			for i := range batch {
				batch[i] = PayloadDelta(uint64(len(sent)*10+i), []byte{byte(i)})
			}
			if err := ss.SendBatch(batch...); err != nil {
				return false
			}
			sent = append(sent, batch)
		}
		for _, want := range sent {
			select {
			case got := <-st.Events:
				if len(got) != len(want) {
					return false // split or merged batch
				}
				for i := range want {
					if got[i].Seq != want[i].Seq {
						return false
					}
				}
			case <-time.After(5 * time.Second):
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
