package ctrl

import (
	"encoding/json"
	"sync"
	"time"

	"bladerunner/internal/pylon"
	"bladerunner/internal/sim"
)

// Pylon method names.
const (
	MethodRegisterHost   = "pylon.register-host"
	MethodSubscribe      = "pylon.subscribe"
	MethodUnsubscribe    = "pylon.unsubscribe"
	MethodRemoveHost     = "pylon.remove-host"
	MethodPublish        = "pylon.publish"
	MethodWaitSubscriber = "pylon.wait-subscriber"
	MethodDeliver        = "pylon.deliver" // notification, pylon -> host
)

type topicHostParams struct {
	Topic string `json:"topic"`
	Host  string `json:"host"`
}

type hostParams struct {
	Host string `json:"host"`
}

type publishResult struct {
	N int `json:"n"`
}

type waitSubscriberParams struct {
	Topic     string `json:"topic"`
	TimeoutMS int64  `json:"timeout_ms"`
}

type waitSubscriberResult struct {
	OK bool `json:"ok"`
}

// deliverParams carries one fanned-out event to a remote host. Host names
// the subscriber because several BRASS hosts may share one node process
// (and thus one control connection).
type deliverParams struct {
	Host  string      `json:"host"`
	Event pylon.Event `json:"event"`
}

// remoteSubscriber adapts one registered host on the serving side: Deliver
// pushes a notification down the control connection. Notify's write is a
// buffered socket write, not a round trip, honoring Pylon's "Deliver must
// not block" contract to the extent a socket can (a wedged peer's TCP
// buffer eventually backpressures the writer; the keepalive on the node's
// BURST side and process supervision bound that).
type remoteSubscriber struct {
	id   string
	conn *Conn
}

func (r *remoteSubscriber) ID() string { return r.id }

func (r *remoteSubscriber) Deliver(ev pylon.Event) {
	_ = r.conn.Notify(MethodDeliver, deliverParams{Host: r.id, Event: ev})
}

// ServePylon registers the pylon tier's handlers on conn, exposing svc to
// the remote peer. Each control connection re-registers its own hosts, so
// a reconnecting brass process starts from a clean slate.
func ServePylon(conn *Conn, svc *pylon.Service, sched sim.Scheduler) {
	conn.Handle(MethodRegisterHost, func(params json.RawMessage) (any, error) {
		var p hostParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		svc.RegisterHost(&remoteSubscriber{id: p.Host, conn: conn})
		return nil, nil
	})
	conn.Handle(MethodSubscribe, func(params json.RawMessage) (any, error) {
		var p topicHostParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return nil, svc.Subscribe(pylon.Topic(p.Topic), p.Host)
	})
	conn.Handle(MethodUnsubscribe, func(params json.RawMessage) (any, error) {
		var p topicHostParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		return nil, svc.Unsubscribe(pylon.Topic(p.Topic), p.Host)
	})
	conn.Handle(MethodRemoveHost, func(params json.RawMessage) (any, error) {
		var p hostParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		svc.RemoveHost(p.Host)
		return nil, nil
	})
	conn.Handle(MethodPublish, func(params json.RawMessage) (any, error) {
		var ev pylon.Event
		if err := json.Unmarshal(params, &ev); err != nil {
			return nil, err
		}
		n, err := svc.Publish(ev)
		if err != nil {
			return nil, err
		}
		return publishResult{N: n}, nil
	})
	conn.Handle(MethodWaitSubscriber, func(params json.RawMessage) (any, error) {
		var p waitSubscriberParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		ok := svc.WaitForSubscriber(sched, pylon.Topic(p.Topic), time.Duration(p.TimeoutMS)*time.Millisecond)
		return waitSubscriberResult{OK: ok}, nil
	})
}

// PylonClient implements brass.PubSub (and was.Publisher via Publish) over
// a control connection to the pylon tier's node.
type PylonClient struct {
	conn     *Conn
	register func(pylon.Subscriber)
}

// NewPylonClient wraps conn and installs the deliver dispatcher. Hosts
// registered through RegisterHost receive pushed events in arrival order.
func NewPylonClient(conn *Conn) *PylonClient {
	c := &PylonClient{conn: conn}
	subs := struct {
		mu sync.Mutex
		m  map[string]pylon.Subscriber
	}{m: make(map[string]pylon.Subscriber)}
	conn.Handle(MethodDeliver, func(params json.RawMessage) (any, error) {
		var p deliverParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		subs.mu.Lock()
		sub := subs.m[p.Host]
		subs.mu.Unlock()
		if sub != nil {
			sub.Deliver(p.Event)
		}
		return nil, nil
	})
	c.register = func(sub pylon.Subscriber) {
		subs.mu.Lock()
		subs.m[sub.ID()] = sub
		subs.mu.Unlock()
	}
	return c
}

// RegisterHost implements brass.PubSub: announce the host remotely and
// route its deliveries.
func (c *PylonClient) RegisterHost(sub pylon.Subscriber) {
	c.register(sub)
	_ = c.conn.Call(MethodRegisterHost, hostParams{Host: sub.ID()}, nil)
}

// Subscribe implements brass.PubSub.
func (c *PylonClient) Subscribe(topic pylon.Topic, hostID string) error {
	return c.conn.Call(MethodSubscribe, topicHostParams{Topic: string(topic), Host: hostID}, nil)
}

// Unsubscribe implements brass.PubSub.
func (c *PylonClient) Unsubscribe(topic pylon.Topic, hostID string) error {
	return c.conn.Call(MethodUnsubscribe, topicHostParams{Topic: string(topic), Host: hostID}, nil)
}

// RemoveHost implements brass.PubSub.
func (c *PylonClient) RemoveHost(hostID string) {
	_ = c.conn.Call(MethodRemoveHost, hostParams{Host: hostID}, nil)
}

// Publish implements was.Publisher: publish into the remote Pylon.
func (c *PylonClient) Publish(ev pylon.Event) (int, error) {
	var res publishResult
	if err := c.conn.Call(MethodPublish, ev, &res); err != nil {
		return 0, err
	}
	return res.N, nil
}

// WaitForSubscriber blocks (remotely) until topic has a subscriber or
// timeout elapses, mirroring pylon.Service.WaitForSubscriber for the
// quickstart flow.
func (c *PylonClient) WaitForSubscriber(topic pylon.Topic, timeout time.Duration) bool {
	var res waitSubscriberResult
	if err := c.conn.Call(MethodWaitSubscriber, waitSubscriberParams{Topic: string(topic), TimeoutMS: timeout.Milliseconds()}, &res); err != nil {
		return false
	}
	return res.OK
}
