// Package pylon implements Pylon, Bladerunner's deliberately simple
// topic-based pub/sub system (paper §3.1). Pylon has exactly two jobs:
// track which BRASS hosts subscribe to each topic, and fan published update
// events out to those hosts with low latency.
//
// Key properties reproduced from the paper:
//
//   - Subscription state lives in a replicated KV store (internal/kvstore):
//     rendezvous hashing on the topic picks the replicas, one local and the
//     rest in remote regions. Subscription writes are CP (quorum required);
//     delivery is AP (best effort, no guarantees on failure).
//   - On publish, Pylon begins fan-out as soon as the first replica answers
//     with a subscriber list; when the remaining replicas answer, it
//     forwards to any subscribers the first list was missing, and patches
//     replicas that disagree back to a quorum-merged view.
//   - Topics are partitioned across shards mapped onto Pylon servers so
//     load can be rebalanced one shard at a time.
//   - Pylon is content-agnostic: events carry metadata identifying the
//     mutation in TAO, never the data itself (paper §1, unique aspect 3).
package pylon

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bladerunner/internal/kvstore"
	"bladerunner/internal/metrics"
)

// Topic names an area of interest in the social graph, structured like a
// path: /LVC/videoID, /TI/threadID/uid, /Status/uid.
type Topic string

// Event is a published update event: metadata only, pointing at the data in
// TAO. BRASSes fetch the payload from the WAS when (and only when) they
// decide a client should see it.
type Event struct {
	Topic Topic
	// ID is a unique event id assigned by Pylon at publish time.
	ID uint64
	// Ref identifies the mutated object in TAO (e.g. the comment id).
	Ref uint64
	// Seq is an optional application-assigned sequence number (used by
	// Messenger-style reliable applications).
	Seq uint64
	// Meta carries application metadata: poster uid, ML quality score,
	// language, etc. It is small by design; cross-region links are a
	// limited resource.
	Meta map[string]string
	// Published is the publish timestamp.
	Published time.Time
}

// Subscriber is the delivery endpoint for one BRASS host. Deliver must not
// block: Pylon is best-effort, and a slow host must not stall fan-out.
type Subscriber interface {
	ID() string
	Deliver(ev Event)
}

// ErrNoQuorum mirrors kvstore.ErrNoQuorum for subscription writes.
var ErrNoQuorum = kvstore.ErrNoQuorum

// ErrUnknownSubscriber is returned when subscribing an unregistered host.
var ErrUnknownSubscriber = errors.New("pylon: unknown subscriber host")

// Config parameterizes the Pylon service.
type Config struct {
	// Shards is the number of topic shards (production: 512K). Shards
	// map onto servers for load accounting.
	Shards int
	// Servers is the number of Pylon front-end servers.
	Servers int
}

// DefaultConfig returns a test-scale configuration.
func DefaultConfig() Config { return Config{Shards: 4096, Servers: 8} }

// Service is the Pylon control plane plus fan-out data plane.
type Service struct {
	cfg Config
	kv  *kvstore.Cluster

	mu    sync.Mutex
	hosts map[string]Subscriber
	// hostTopics is the reverse index used when a BRASS host fails and
	// all its subscriptions must be removed (paper §4 axiom 1).
	hostTopics map[string]map[Topic]bool
	serverUp   []bool
	serverLoad []int64
	// shardOverride holds explicit shard→server reassignments made by
	// MoveShard; absent shards use the modular default.
	shardOverride map[int]int
	nextEvent     uint64

	// Metrics.
	Publishes     metrics.Counter
	Deliveries    metrics.Counter
	PatchForwards metrics.Counter // deliveries triggered by late replicas
	Patches       metrics.Counter // replica repair operations
	DroppedNoSub  metrics.Counter // publishes with zero subscribers
	FanoutSize    *metrics.Histogram
}

// New builds a Pylon service over the given subscription KV cluster.
func New(cfg Config, kv *kvstore.Cluster) (*Service, error) {
	if cfg.Shards <= 0 || cfg.Servers <= 0 {
		return nil, fmt.Errorf("pylon: invalid config %+v", cfg)
	}
	if kv == nil {
		return nil, errors.New("pylon: nil kv cluster")
	}
	s := &Service{
		cfg:        cfg,
		kv:         kv,
		hosts:      make(map[string]Subscriber),
		hostTopics: make(map[string]map[Topic]bool),
		serverUp:   make([]bool, cfg.Servers),
		serverLoad: make([]int64, cfg.Servers),
		FanoutSize: metrics.NewHistogram(),
	}
	for i := range s.serverUp {
		s.serverUp[i] = true
	}
	return s, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config, kv *kvstore.Cluster) *Service {
	s, err := New(cfg, kv)
	if err != nil {
		panic(err)
	}
	return s
}

// RegisterHost makes a BRASS host known to Pylon so subscriptions can be
// delivered to it.
func (s *Service) RegisterHost(sub Subscriber) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hosts[sub.ID()] = sub
	if s.hostTopics[sub.ID()] == nil {
		s.hostTopics[sub.ID()] = make(map[Topic]bool)
	}
}

// Shard returns the topic's shard index.
func (s *Service) Shard(t Topic) int {
	return int(fnv64(string(t)) % uint64(s.cfg.Shards))
}

// ServerFor returns the index of the Pylon server owning the topic's
// shard, honoring any rebalancing overrides.
func (s *Service) ServerFor(t Topic) int {
	shard := s.Shard(t)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serverForShardLocked(shard)
}

func (s *Service) serverForShardLocked(shard int) int {
	if srv, ok := s.shardOverride[shard]; ok {
		return srv
	}
	return shard % s.cfg.Servers
}

// SetServerUp marks a Pylon front-end up or down (failure injection).
func (s *Service) SetServerUp(i int, up bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serverUp[i] = up
}

// anyServerUp reports whether some front end can take over a failed one.
func (s *Service) anyServerUp() bool {
	for _, up := range s.serverUp {
		if up {
			return true
		}
	}
	return false
}

// ErrUnavailable is returned when no Pylon front end is reachable.
var ErrUnavailable = errors.New("pylon: no server available")

// Subscribe registers hostID for topic. The write is CP: it fails without a
// KV quorum, in which case the caller (the BRASS subscription manager)
// retries against another replica set or surfaces the failure.
func (s *Service) Subscribe(topic Topic, hostID string) error {
	shard := s.Shard(topic)
	s.mu.Lock()
	_, known := s.hosts[hostID]
	serverOK := s.serverUp[s.serverForShardLocked(shard)] || s.anyServerUp()
	s.mu.Unlock()
	if !known {
		return fmt.Errorf("%w: %q", ErrUnknownSubscriber, hostID)
	}
	if !serverOK {
		return ErrUnavailable
	}
	if _, err := s.kv.SetAdd(string(topic), kvstore.Member(hostID)); err != nil {
		return fmt.Errorf("pylon: subscribe %q: %w", topic, err)
	}
	s.mu.Lock()
	s.hostTopics[hostID][topic] = true
	s.mu.Unlock()
	return nil
}

// Unsubscribe removes hostID's subscription to topic.
func (s *Service) Unsubscribe(topic Topic, hostID string) error {
	if _, err := s.kv.SetRemove(string(topic), kvstore.Member(hostID)); err != nil {
		return fmt.Errorf("pylon: unsubscribe %q: %w", topic, err)
	}
	s.mu.Lock()
	if m := s.hostTopics[hostID]; m != nil {
		delete(m, topic)
	}
	s.mu.Unlock()
	return nil
}

// RemoveHost drops every subscription held by hostID — invoked when Pylon
// detects a BRASS host failure.
func (s *Service) RemoveHost(hostID string) {
	s.mu.Lock()
	topics := make([]Topic, 0, len(s.hostTopics[hostID]))
	for t := range s.hostTopics[hostID] {
		topics = append(topics, t)
	}
	delete(s.hostTopics, hostID)
	delete(s.hosts, hostID)
	s.mu.Unlock()
	for _, t := range topics {
		_, _ = s.kv.SetRemove(string(t), kvstore.Member(hostID))
	}
}

// Subscribers returns the current merged subscriber list for a topic
// (diagnostics; the publish path uses the staged first-responder flow).
func (s *Service) Subscribers(topic Topic) []string {
	resp := s.kv.ReadAll(string(topic))
	views := make([]kvstore.SetView, 0, len(resp))
	for _, r := range resp {
		if r.Err == nil {
			views = append(views, r.View)
		}
	}
	merged := kvstore.Merge(views...)
	members := merged.Members()
	out := make([]string, len(members))
	for i, m := range members {
		out[i] = string(m)
	}
	return out
}

// Publish assigns the event an id and fans it out to the topic's
// subscribers using first-responder forwarding:
//
//  1. Query all replicas of the topic's subscriber list.
//  2. Forward immediately to the members of the first successful response
//     (typically the local-region replica — lowest latency).
//  3. When the other responses arrive, forward to members missing from the
//     first list, and patch any divergent replica to the merged view.
//
// Delivery is best effort: unknown or failed hosts are skipped silently.
// Publish returns the number of hosts the event was sent to.
func (s *Service) Publish(ev Event) (int, error) {
	shard := s.Shard(ev.Topic)
	s.mu.Lock()
	srv := s.serverForShardLocked(shard)
	if !s.serverUp[srv] {
		if !s.anyServerUp() {
			s.mu.Unlock()
			return 0, ErrUnavailable
		}
		// Another front end takes over the down server's shard.
		for i, up := range s.serverUp {
			if up {
				srv = i
				break
			}
		}
	}
	s.serverLoad[srv]++
	s.nextEvent++
	ev.ID = s.nextEvent
	s.mu.Unlock()

	s.Publishes.Inc()

	resp := s.kv.ReadAll(string(ev.Topic))

	// Stage 1: first successful replica response starts fan-out.
	sent := make(map[kvstore.Member]bool)
	first := -1
	for i, r := range resp {
		if r.Err == nil {
			first = i
			for _, m := range r.View.Members() {
				if s.deliverTo(m, ev) {
					sent[m] = true
				}
			}
			break
		}
	}
	if first == -1 {
		// All replicas down: the event is dropped (best effort); the
		// affected BRASSes detect quorum loss separately.
		s.DroppedNoSub.Inc()
		return 0, fmt.Errorf("pylon: publish %q: all subscription replicas down", ev.Topic)
	}

	// Stage 2: remaining replicas may know subscribers the first missed.
	views := make([]kvstore.SetView, 0, len(resp))
	diverged := false
	for i, r := range resp {
		if r.Err != nil {
			continue
		}
		views = append(views, r.View)
		if i == first {
			continue
		}
		for _, m := range r.View.Members() {
			if !sent[m] {
				if s.deliverTo(m, ev) {
					sent[m] = true
					s.PatchForwards.Inc()
				}
				diverged = true
			}
		}
	}

	// Stage 3: repair divergent replicas toward the merged view.
	if diverged || len(views) > 1 {
		merged := kvstore.Merge(views...)
		if patched := s.kv.Patch(string(ev.Topic), merged); patched > 0 {
			s.Patches.Add(int64(patched))
		}
	}

	n := len(sent)
	if n == 0 {
		s.DroppedNoSub.Inc()
	}
	s.Deliveries.Add(int64(n))
	s.FanoutSize.Observe(time.Duration(n))
	return n, nil
}

func (s *Service) deliverTo(m kvstore.Member, ev Event) bool {
	s.mu.Lock()
	sub := s.hosts[string(m)]
	s.mu.Unlock()
	if sub == nil {
		return false
	}
	sub.Deliver(ev)
	return true
}

func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
