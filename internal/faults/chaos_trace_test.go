// Chaos × tracing: the failure paths this package injects must not break
// the tracing plane's span trees. A device that loses its POP reconnects
// with a *rewritten* subscribe request; the rewrite must preserve the
// stable "trace-stream" identity, so the post-recovery device.apply spans
// stitch to the same logical stream as the pre-fault ones. And a seeded
// fault window must never leave dangling children — a span whose parent
// hop is missing from its assembled trace would mean the context was
// dropped somewhere across the cut.
//
// These tests run in CI's chaos matrix (they match -run TestChaos), so the
// matrix now exercises every failure schedule with tracing on.
package faults_test

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/burst"
	"bladerunner/internal/core"
	"bladerunner/internal/device"
	"bladerunner/internal/faults"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/trace"
)

// tracedChaosCluster boots the wired stack with the tracing plane sampling
// every mutation and a FaultNetwork in front of the POPs.
func tracedChaosCluster(t *testing.T, seed int64) (*core.Cluster, *faults.FaultNetwork, *trace.Plane) {
	t.Helper()
	plane := trace.NewPlane(trace.Config{Rate: 1, Seed: seed})
	cfg := core.DefaultConfig()
	cfg.Graph.Users = 100
	cfg.Graph.BlockProb = 0
	cfg.Graph.Seed = seed
	cfg.Trace = plane
	c := core.MustNewCluster(cfg, nil)
	return c, faults.NewFaultNetwork(c.Net, nil, seed), plane
}

// applySpans returns every device.apply span in the gathered plane, keyed
// by the mailbox sequence number it applied.
func applySpans(spans []trace.SpanData) map[string]trace.SpanData {
	out := make(map[string]trace.SpanData)
	for _, s := range spans {
		if s.Hop == trace.HopApply {
			out[s.Attr("seq")] = s
		}
	}
	return out
}

// TestChaosTraceStreamIdentitySurvivesReconnect cuts every POP under a
// traced messenger viewer, waits for the reconnect + rewritten resubscribe,
// and asserts the post-recovery delivery's spans carry the exact same
// stream identity as the pre-fault baseline: the rewrite preserved the
// "trace-stream" header, so both device.apply spans — and the burst.flush
// spans above them — name one logical stream across the fault.
func TestChaosTraceStreamIdentitySurvivesReconnect(t *testing.T) {
	seed := chaosSeed(t)
	c, fn, plane := tracedChaosCluster(t, seed)
	defer c.Close()

	const authorUID, viewerUID = socialgraph.UserID(90), socialgraph.UserID(10)
	author := c.NewDevice(authorUID)
	defer author.Close()
	viewer := c.NewDeviceVia(fn, device.Config{
		User:        viewerUID,
		Backoff:     faults.BackoffPolicy{Base: 10 * time.Millisecond, Max: 160 * time.Millisecond},
		BackoffSeed: seed + 1,
	})
	defer viewer.Close()
	if err := viewer.Connect(); err != nil {
		t.Fatal(err)
	}
	st, err := viewer.Subscribe(apps.AppMessenger, "messenger", nil)
	if err != nil {
		t.Fatal(err)
	}
	w := watch(st)
	streamID := st.Request().Header[burst.HdrTraceStream]
	if streamID == "" {
		t.Fatal("subscribe request carries no trace-stream header")
	}

	out, err := author.Mutate(fmt.Sprintf(`createThread(members: "%d,%d")`, authorUID, viewerUID))
	if err != nil {
		t.Fatal(err)
	}
	var tid uint64
	_ = json.Unmarshal(out, &tid)
	waitFor(t, "mailbox subscription", func() bool {
		return len(c.Pylon.Subscribers(apps.MailboxTopic(viewerUID))) >= 1
	})

	send := func(label string) {
		t.Helper()
		if _, err := author.Mutate(fmt.Sprintf(
			`sendMessage(threadID: %d, text: "%s")`, tid, label)); err != nil {
			t.Fatal(err)
		}
	}

	// Baseline traced delivery before any fault.
	send("pre-fault")
	waitFor(t, "baseline delivery", func() bool { return w.hasAll(1) })

	// Mass cut: the viewer's session dies, reconnects through another POP,
	// and resubscribes with a rewritten request.
	pops := c.POPTargets()
	for _, pop := range pops {
		fn.Cut(pop)
	}
	time.Sleep(50 * time.Millisecond)
	for _, pop := range pops {
		fn.Heal(pop)
	}
	waitFor(t, "viewer reconnected and resubscribed", func() bool {
		return viewer.Connected() && viewer.Streams() == 1 &&
			len(c.Pylon.Subscribers(apps.MailboxTopic(viewerUID))) >= 1
	})
	if viewer.Resubscribes.Value() < 1 {
		t.Fatalf("Resubscribes = %d after mass cut, want >= 1", viewer.Resubscribes.Value())
	}
	if got := st.Request().Header[burst.HdrTraceStream]; got != streamID {
		t.Fatalf("rewritten request changed trace-stream: %q -> %q", streamID, got)
	}

	// Post-recovery traced delivery over the resumed stream.
	send("post-recovery")
	waitFor(t, "post-recovery delivery", func() bool { return w.hasAll(2) })
	c.Quiesce()

	spans := plane.Gather()
	applies := applySpans(spans)
	pre, ok := applies["1"]
	if !ok {
		t.Fatalf("no device.apply span for the pre-fault message; applies=%v", applies)
	}
	post, ok := applies["2"]
	if !ok {
		t.Fatalf("no device.apply span for the post-recovery message; applies=%v", applies)
	}
	if pre.Attr("stream") != streamID || post.Attr("stream") != streamID {
		t.Fatalf("apply spans name streams %q / %q, want both %q",
			pre.Attr("stream"), post.Attr("stream"), streamID)
	}

	// Both deliveries must assemble into complete publish→…→apply traces.
	for _, tr := range trace.Assemble(spans) {
		has := false
		for _, s := range tr.Spans {
			if s.Hop == trace.HopApply {
				has = true
			}
		}
		if has && !tr.Covers(trace.HopPublish, trace.HopFanout, trace.HopFetch,
			trace.HopFlush, trace.HopRelay, trace.HopApply) {
			t.Errorf("trace %x reached the device but is missing hops: %v", tr.ID, tr.Hops())
		}
	}
	viewer.Close()
	author.Close()
	w.done.Wait()
}

// TestChaosTraceSeededWindowLeavesNoDanglingSpans runs a seeded cut/heal
// plan while traced traffic flows and asserts the gathered spans are
// gap-free: a fault may truncate a trace (publish with no downstream
// delivery), but it must never orphan one — every span whose hop has a
// parent in the pipeline must find that parent in its own trace, and the
// catch-up after recovery must close every sequence gap on the device.
func TestChaosTraceSeededWindowLeavesNoDanglingSpans(t *testing.T) {
	seed := chaosSeed(t)
	c, fn, plane := tracedChaosCluster(t, seed)
	defer c.Close()

	const authorUID, viewerUID = socialgraph.UserID(91), socialgraph.UserID(11)
	author := c.NewDevice(authorUID)
	defer author.Close()
	viewer := c.NewDeviceVia(fn, device.Config{
		User:        viewerUID,
		Backoff:     faults.BackoffPolicy{Base: 10 * time.Millisecond, Max: 160 * time.Millisecond},
		BackoffSeed: seed + 2,
	})
	defer viewer.Close()
	if err := viewer.Connect(); err != nil {
		t.Fatal(err)
	}
	st, err := viewer.Subscribe(apps.AppMessenger, "messenger", nil)
	if err != nil {
		t.Fatal(err)
	}
	w := watch(st)
	out, err := author.Mutate(fmt.Sprintf(`createThread(members: "%d,%d")`, authorUID, viewerUID))
	if err != nil {
		t.Fatal(err)
	}
	var tid uint64
	_ = json.Unmarshal(out, &tid)
	waitFor(t, "mailbox subscription", func() bool {
		return len(c.Pylon.Subscribers(apps.MailboxTopic(viewerUID))) >= 1
	})

	var sent uint64
	send := func(label string) {
		t.Helper()
		if _, err := author.Mutate(fmt.Sprintf(
			`sendMessage(threadID: %d, text: "%s")`, tid, label)); err != nil {
			t.Fatal(err)
		}
		sent++
	}

	send("pre-window")
	waitFor(t, "baseline delivery", func() bool { return w.hasAll(sent) })

	// Seeded fault window with a mid-window send that may race the cuts.
	plan := faults.RandomPlan(seed, c.POPTargets(), time.Second, 2)
	t.Logf("chaos schedule (seed %d):\n%s", seed, plan.Schedule())
	done := plan.Start(fn)
	defer done()
	time.Sleep(plan.Horizon() / 2)
	send("mid-window")
	time.Sleep(plan.Horizon()/2 + 100*time.Millisecond)

	waitFor(t, "viewer settled after the window", func() bool {
		return viewer.Connected() && viewer.Streams() == 1 &&
			len(c.Pylon.Subscribers(apps.MailboxTopic(viewerUID))) >= 1
	})
	send("post-window")
	// Catch-up must close any gap the window opened: all sequences 1..sent.
	waitFor(t, "gap-free mailbox after recovery", func() bool { return w.hasAll(sent) })
	c.Quiesce()

	if ev := plane.Evicted(); ev != 0 {
		t.Fatalf("collector evicted %d spans; the run must fit the rings for the gap check to be sound", ev)
	}
	traces := trace.Assemble(plane.Gather())
	if len(traces) == 0 {
		t.Fatal("no traces gathered")
	}
	complete := 0
	for _, tr := range traces {
		hops := make(map[string]bool, len(tr.Spans))
		for _, s := range tr.Spans {
			hops[s.Hop] = true
		}
		for _, s := range tr.Spans {
			if s.Parent != "" && !hops[s.Parent] {
				t.Errorf("trace %x: span %s is dangling — parent hop %s missing (hops %v)",
					tr.ID, s.Hop, s.Parent, tr.Hops())
			}
		}
		if tr.Covers(trace.HopPublish, trace.HopFanout, trace.HopFetch,
			trace.HopFlush, trace.HopRelay, trace.HopApply) {
			complete++
		}
	}
	if complete == 0 {
		t.Errorf("no complete edge-path trace among %d traces", len(traces))
	}
	viewer.Close()
	author.Close()
	w.done.Wait()
}
