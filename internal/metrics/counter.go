package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter, safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta; delta must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("metrics: Counter.Add(%d) with negative delta", delta))
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value, safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of metrics, used by components to expose
// their instrumentation to the experiment harness and the CLIs.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// SetCounter registers an externally owned counter under name, replacing
// any prior registration. Components that embed their counters as plain
// fields (the overload plane's shed/admit counters, host delivery counts)
// use this to expose them through a registry without double-counting.
func (r *Registry) SetCounter(name string, c *Counter) {
	if c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] = c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// CounterNames returns the sorted names of all counters.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the sorted names of all histograms.
func (r *Registry) HistogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.histograms))
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
