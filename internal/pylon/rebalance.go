package pylon

import "fmt"

// Topic shards map onto Pylon servers. The default placement is modular
// (shard % servers); MoveShard reassigns a single shard, which is how load
// is rebalanced incrementally — one shard at a time — without a global
// reshuffle (paper §3.1). Per-server load counters identify the servers to
// drain. Routing state is a copy-on-write snapshot (see routeTable): the
// publish path reads it with one atomic load, and the mutators here build a
// new table under the writer lock and swap it in.

// MoveShard reassigns shard to server. It returns an error for
// out-of-range arguments or when the target server is down.
func (s *Service) MoveShard(shard, server int) error {
	if shard < 0 || shard >= s.cfg.Shards {
		return fmt.Errorf("pylon: shard %d out of range [0,%d)", shard, s.cfg.Shards)
	}
	if server < 0 || server >= s.cfg.Servers {
		return fmt.Errorf("pylon: server %d out of range [0,%d)", server, s.cfg.Servers)
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	rt := s.route.Load()
	if !rt.up[server] {
		return fmt.Errorf("pylon: server %d is down", server)
	}
	nrt := rt.clone()
	if server == shard%s.cfg.Servers {
		delete(nrt.override, shard) // back to the default placement
	} else {
		nrt.override[shard] = server
	}
	nrt.recomputeAnyUp()
	s.route.Store(nrt)
	return nil
}

// Overrides returns the number of shards placed off their default server.
func (s *Service) Overrides() int {
	return len(s.route.Load().override)
}

// ServerLoad returns the number of publishes handled by server i since
// startup.
func (s *Service) ServerLoad(i int) int64 {
	if i < 0 || i >= len(s.serverLoad) {
		return 0
	}
	return s.serverLoad[i].v.Load()
}

// HottestServer returns the server index with the highest publish load.
func (s *Service) HottestServer() int {
	best, bestLoad := 0, int64(-1)
	for i := range s.serverLoad {
		if l := s.serverLoad[i].v.Load(); l > bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// RebalanceOne moves the hottest server's lowest-numbered owned shard to
// the least-loaded up server and returns (shard, from, to). It is the
// "one shard at a time" operation an operator (or an automation loop)
// applies repeatedly.
func (s *Service) RebalanceOne() (shard, from, to int, err error) {
	rt := s.route.Load()
	from, to = 0, -1
	var fromLoad, toLoad int64 = -1, 1 << 62
	for i := range s.serverLoad {
		l := s.serverLoad[i].v.Load()
		if l > fromLoad {
			from, fromLoad = i, l
		}
		if rt.up[i] && l < toLoad {
			to, toLoad = i, l
		}
	}
	if to == -1 || from == to {
		return 0, from, to, fmt.Errorf("pylon: no rebalance target")
	}
	// Find a shard currently owned by `from`.
	shard = -1
	for sh := 0; sh < s.cfg.Shards; sh++ {
		if rt.serverFor(sh, s.cfg.Servers) == from {
			shard = sh
			break
		}
	}
	if shard == -1 {
		return 0, from, to, fmt.Errorf("pylon: server %d owns no shards", from)
	}
	return shard, from, to, s.MoveShard(shard, to)
}
