package experiments

import (
	"fmt"
	"testing"

	"bladerunner/internal/bench"
	"bladerunner/internal/kvstore"
	"bladerunner/internal/pylon"
)

// HotFanout is the subscriber-cache ablation for the hot-topic fast path
// (paper §3.2's hot-event shape): one topic, 1000 subscribed BRASS hosts,
// publish after publish. With the cache disabled every publish re-reads the
// replicated subscription store; with it enabled only the first publish
// (and any publish after an invalidation) does. The experiment runs the
// exact benchmark body `go test -bench=HotTopicFanout` runs, once per
// configuration, then replays a smaller instrumented run to report the
// cache's own counters.
func HotFanout(seed int64) Result {
	r := Result{ID: "hotfanout", Title: "Hot-topic fan-out: cached vs uncached subscriber sets"}

	cached := pylon.DefaultConfig()
	uncached := pylon.DefaultConfig()
	uncached.SubCacheSize = 0

	cRes := testing.Benchmark(func(b *testing.B) { bench.HotTopicFanoutConfig(b, cached) })
	uRes := testing.Benchmark(func(b *testing.B) { bench.HotTopicFanoutConfig(b, uncached) })

	r.AddRow("uncached publish", "-", fmt.Sprintf("%d ns/op", uRes.NsPerOp()),
		fmt.Sprintf("%d allocs/op", uRes.AllocsPerOp()))
	r.AddRow("cached publish", "-", fmt.Sprintf("%d ns/op", cRes.NsPerOp()),
		fmt.Sprintf("%d allocs/op", cRes.AllocsPerOp()))
	if cRes.NsPerOp() > 0 {
		r.AddRow("speedup", "-", fmt.Sprintf("%.1fx", float64(uRes.NsPerOp())/float64(cRes.NsPerOp())),
			"uncached / cached ns per publish")
	}
	if uRes.AllocsPerOp() > 0 {
		saved := 1 - float64(cRes.AllocsPerOp())/float64(uRes.AllocsPerOp())
		r.AddRow("allocs saved", "-", pct(saved), "per publish")
	}

	// Instrumented replay: count replica reads and cache traffic directly.
	const (
		subscribers = 200
		publishes   = 1000
	)
	nodes := []*kvstore.Node{
		kvstore.NewNode("a", "us"), kvstore.NewNode("b", "eu"), kvstore.NewNode("c", "ap"),
	}
	var views int64
	for _, n := range nodes {
		n.SetOpHook(func(op, key string) error {
			if op == "view" {
				views++
			}
			return nil
		})
	}
	pyl := pylon.MustNew(cached, kvstore.MustNewCluster(nodes, 3))
	topic := pylon.Topic("/exp/hot")
	for i := 0; i < subscribers; i++ {
		s := bench.NewSink(fmt.Sprintf("sink-%d", i))
		pyl.RegisterHost(s)
		if err := pyl.Subscribe(topic, s.ID()); err != nil {
			r.AddRow("error", "-", err.Error(), "subscribe failed")
			return r
		}
	}
	for i := 0; i < publishes; i++ {
		if _, err := pyl.Publish(pylon.Event{Topic: topic, Ref: uint64(i)}); err != nil {
			r.AddRow("error", "-", err.Error(), "publish failed")
			return r
		}
	}
	r.AddRow("cache hit rate", "-",
		pct(float64(pyl.SubCacheHits.Value())/float64(publishes)),
		fmt.Sprintf("%d publishes, %d misses, %d stale", publishes,
			pyl.SubCacheMiss.Value(), pyl.SubCacheStale.Value()))
	r.AddRow("replica reads", "-", fmt.Sprintf("%d", views),
		fmt.Sprintf("vs %d uncached (replicas x publishes)", 3*publishes))
	return r
}
