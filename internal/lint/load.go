package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the import path ("bladerunner/internal/pylon").
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Files are the parsed non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's resolution maps for Files.
	Info *types.Info
}

// Loader parses and type-checks packages of a single module using only the
// standard library: module-internal imports are resolved by the loader
// itself (recursively, in dependency order), everything else is delegated
// to go/importer's source importer, which compiles the standard library
// from GOROOT/src. No go/packages, no x/tools.
type Loader struct {
	// Fset is shared by every file the loader touches, so positions from
	// different packages are comparable.
	Fset *token.FileSet
	// ModRoot is the absolute path of the directory containing go.mod.
	ModRoot string
	// ModPath is the module path declared in go.mod.
	ModPath string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a Loader for the module rooted at or above dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// findModule walks up from dir until it finds go.mod and extracts the
// module path from its first "module" directive.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found at or above %s", abs)
		}
	}
}

// Load resolves package patterns into type-checked packages. A pattern is
// either a directory path (absolute, or relative to the loader's module
// root) or such a path followed by "/..." to include every package in the
// subtree. "./..." therefore loads the whole module. Directories named
// testdata, hidden directories, and directories starting with "_" are
// skipped during "..." expansion, mirroring the go tool.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.ModRoot, base)
		}
		base = filepath.Clean(base)
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: expanding %s: %w", pat, err)
		}
	}

	var pkgs []*Package
	for _, dir := range dirs {
		hasGo, err := dirHasGoFiles(dir)
		if err != nil {
			return nil, err
		}
		if !hasGo {
			continue
		}
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func dirHasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, fmt.Errorf("lint: %w", err)
	}
	for _, e := range ents {
		if !e.IsDir() && includeFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

// includeFile reports whether name is a source file the loader analyzes:
// non-test, non-generated-prefix .go files.
func includeFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, "_") &&
		!strings.HasPrefix(name, ".")
}

// importPathFor maps an absolute directory inside the module to its import
// path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.ModRoot)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// dirFor is the inverse of importPathFor.
func (l *Loader) dirFor(path string) string {
	if path == l.ModPath {
		return l.ModRoot
	}
	rel := strings.TrimPrefix(path, l.ModPath+"/")
	return filepath.Join(l.ModRoot, filepath.FromSlash(rel))
}

// loadPackage parses and type-checks the module package with the given
// import path, loading its module-internal dependencies first.
func (l *Loader) loadPackage(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !includeFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importerFunc(l.importDep)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importDep resolves one import: module-internal packages go through the
// loader, everything else (the standard library) through the source
// importer.
func (l *Loader) importDep(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.loadPackage(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
