// Package socialgraph models the slice of the social graph that the
// Bladerunner applications operate on: users with power-law friend lists,
// block lists, languages, live videos with viewer populations, message
// threads, and stories. It replaces Facebook's production graph with a
// synthetic generator whose distributions are configurable; see DESIGN.md §4
// for why the substitution preserves the behaviour the paper measures.
package socialgraph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// UserID identifies a user. IDs are dense, starting at 1.
type UserID uint64

// VideoID identifies a live video.
type VideoID uint64

// ThreadID identifies a messaging thread.
type ThreadID uint64

// Language tags the language a user posts and reads in.
type Language uint8

// The language universe used by the generator. The exact set does not
// matter; LiveVideoComments filters comments whose language differs from the
// viewer's.
const (
	LangEN Language = iota
	LangES
	LangPT
	LangHI
	LangAR
	LangFR
	numLanguages
)

// User is one node of the graph.
type User struct {
	ID        UserID
	Lang      Language
	Celebrity bool // celebrities bypass the "unknown commenter" down-rank
}

// Graph is an immutable-after-generation social graph. All read methods are
// safe for concurrent use.
type Graph struct {
	users   []User // index = id-1
	friends [][]UserID
	blocked []map[UserID]bool
}

// Config parameterizes graph generation.
type Config struct {
	Users int // number of users; must be > 0
	// MeanFriends is the target mean friend-list size. Friend counts
	// follow a bounded power law, matching the heavy-tailed degree
	// distribution of real social graphs.
	MeanFriends int
	// BlockProb is the probability that a given user blocks any one of
	// their non-friends sampled during generation.
	BlockProb float64
	// CelebrityFraction is the fraction of users marked as celebrities.
	CelebrityFraction float64
	Seed              int64
}

// DefaultConfig returns a small graph configuration suitable for tests.
func DefaultConfig() Config {
	return Config{
		Users:             1000,
		MeanFriends:       50,
		BlockProb:         0.01,
		CelebrityFraction: 0.001,
		Seed:              1,
	}
}

// Generate builds a synthetic graph from cfg.
func Generate(cfg Config) (*Graph, error) {
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("socialgraph: Users must be positive, got %d", cfg.Users)
	}
	if cfg.MeanFriends < 0 || cfg.MeanFriends >= cfg.Users {
		return nil, fmt.Errorf("socialgraph: MeanFriends %d out of range for %d users",
			cfg.MeanFriends, cfg.Users)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Graph{
		users:   make([]User, cfg.Users),
		friends: make([][]UserID, cfg.Users),
		blocked: make([]map[UserID]bool, cfg.Users),
	}
	for i := range g.users {
		g.users[i] = User{
			ID:        UserID(i + 1),
			Lang:      Language(rng.Intn(int(numLanguages))),
			Celebrity: rng.Float64() < cfg.CelebrityFraction,
		}
	}
	g.generateFriendships(cfg, rng)
	g.generateBlocks(cfg, rng)
	return g, nil
}

// MustGenerate is Generate that panics on error, for tests and examples.
func MustGenerate(cfg Config) *Graph {
	g, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// generateFriendships draws a target degree per user from a bounded power
// law and wires mutual edges with preferential attachment toward low IDs,
// producing a heavy-tailed degree distribution.
func (g *Graph) generateFriendships(cfg Config, rng *rand.Rand) {
	if cfg.MeanFriends == 0 {
		return
	}
	n := len(g.users)
	sets := make([]map[UserID]bool, n)
	for i := range sets {
		sets[i] = make(map[UserID]bool)
	}
	// Bounded Pareto target degrees with the configured mean: shape 2.0
	// gives mean 2*xm, so xm = mean/2.
	xm := float64(cfg.MeanFriends) / 2
	if xm < 1 {
		xm = 1
	}
	maxDeg := n - 1
	for i := 0; i < n; i++ {
		deg := int(xm / math.Pow(1-rng.Float64(), 0.5))
		if deg > maxDeg {
			deg = maxDeg
		}
		for len(sets[i]) < deg {
			// Preferential attachment: square the uniform to skew
			// toward low IDs, creating hub users.
			j := int(rng.Float64() * rng.Float64() * float64(n))
			if j >= n {
				j = n - 1
			}
			if j == i {
				continue
			}
			sets[i][UserID(j+1)] = true
			sets[j][UserID(i+1)] = true
		}
	}
	for i, set := range sets {
		lst := make([]UserID, 0, len(set))
		for f := range set {
			lst = append(lst, f)
		}
		sort.Slice(lst, func(a, b int) bool { return lst[a] < lst[b] })
		g.friends[i] = lst
	}
}

func (g *Graph) generateBlocks(cfg Config, rng *rand.Rand) {
	if cfg.BlockProb <= 0 {
		return
	}
	n := len(g.users)
	// Each user blocks a Poisson-ish number of random users.
	meanBlocks := cfg.BlockProb * 20
	for i := 0; i < n; i++ {
		k := int(rng.ExpFloat64() * meanBlocks)
		if k == 0 {
			continue
		}
		m := make(map[UserID]bool, k)
		for b := 0; b < k; b++ {
			j := UserID(rng.Intn(n) + 1)
			if int(j) != i+1 {
				m[j] = true
			}
		}
		g.blocked[i] = m
	}
}

// NumUsers returns the number of users in the graph.
func (g *Graph) NumUsers() int { return len(g.users) }

// User returns the user record for id. It panics on out-of-range IDs, which
// indicate a bug in the caller (IDs are dense and generated here).
func (g *Graph) User(id UserID) User {
	g.check(id)
	return g.users[id-1]
}

// Friends returns the sorted friend list of id. The returned slice must not
// be modified.
func (g *Graph) Friends(id UserID) []UserID {
	g.check(id)
	return g.friends[id-1]
}

// AreFriends reports whether a and b are friends.
func (g *Graph) AreFriends(a, b UserID) bool {
	g.check(a)
	g.check(b)
	lst := g.friends[a-1]
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= b })
	return i < len(lst) && lst[i] == b
}

// Blocks reports whether viewer has blocked author.
func (g *Graph) Blocks(viewer, author UserID) bool {
	g.check(viewer)
	g.check(author)
	m := g.blocked[viewer-1]
	return m != nil && m[author]
}

// Block adds author to viewer's block list (used by tests and demos; the
// generator also produces blocks).
func (g *Graph) Block(viewer, author UserID) {
	g.check(viewer)
	g.check(author)
	if g.blocked[viewer-1] == nil {
		g.blocked[viewer-1] = make(map[UserID]bool)
	}
	g.blocked[viewer-1][author] = true
}

// RandomUser returns a uniformly random user ID using rng.
func (g *Graph) RandomUser(rng *rand.Rand) UserID {
	return UserID(rng.Intn(len(g.users)) + 1)
}

func (g *Graph) check(id UserID) {
	if id == 0 || int(id) > len(g.users) {
		panic(fmt.Sprintf("socialgraph: user id %d out of range [1,%d]", id, len(g.users)))
	}
}

// DegreeStats summarizes the friend-count distribution, used by tests to
// verify the generator produces a heavy tail.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// Degrees computes DegreeStats over all users.
func (g *Graph) Degrees() DegreeStats {
	if len(g.users) == 0 {
		return DegreeStats{}
	}
	st := DegreeStats{Min: math.MaxInt}
	total := 0
	for _, f := range g.friends {
		d := len(f)
		total += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	st.Mean = float64(total) / float64(len(g.users))
	return st
}
