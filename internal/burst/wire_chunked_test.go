package burst

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
)

// chunkReader delivers at most 1–7 bytes per Read, cycling the chunk size,
// so frame headers and payloads arrive torn across many reads — the shape
// real TCP segmentation produces under small socket buffers.
type chunkReader struct {
	r io.Reader
	n int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	c.n++
	max := c.n%7 + 1
	if len(p) > max {
		p = p[:max]
	}
	return c.r.Read(p)
}

// chunkConn chunks the read side of an io.ReadWriteCloser.
type chunkConn struct {
	io.ReadWriteCloser
	cr chunkReader
}

func newChunkConn(rwc io.ReadWriteCloser) *chunkConn {
	c := &chunkConn{ReadWriteCloser: rwc}
	c.cr.r = rwc
	return c
}

func (c *chunkConn) Read(p []byte) (int, error) { return c.cr.Read(p) }

// TestReadFrameToleratesPartialReads feeds encoded frames through a
// 1–7-byte chunker straight into ReadFrame (no session buffering in the
// way), proving the decoder reassembles torn headers and payloads.
func TestReadFrameToleratesPartialReads(t *testing.T) {
	var buf bytes.Buffer
	want := []Frame{
		{Type: FramePing},
		{Type: FrameSubscribe, SID: 1, Payload: []byte(`{"header":{"topic":"/t/1"}}`)},
		{Type: FrameBatch, SID: 7, Payload: []byte(strings.Repeat("x", 1000))},
		{Type: FramePong},
		{Type: FrameAck, SID: 1 << 40, Payload: []byte(`{"seq":9}`)},
	}
	for _, f := range want {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	cr := &chunkReader{r: &buf}
	for i, w := range want {
		f, err := ReadFrame(cr)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != w.Type || f.SID != w.SID || !bytes.Equal(f.Payload, w.Payload) {
			t.Fatalf("frame %d = %+v, want %+v", i, f, w)
		}
	}
	if _, err := ReadFrame(cr); err != io.EOF {
		t.Fatalf("after all frames: err = %v, want io.EOF", err)
	}
}

// roundTrip runs a session round-trip over the given transport pair, with
// the receiving side reading through the 1–7-byte chunker.
func roundTrip(t *testing.T, a, b io.ReadWriteCloser) {
	t.Helper()
	col := &frameCollector{}
	sa := NewSession("a", a, HandlerFuncs{})
	sb := NewSession("b", newChunkConn(b), col)
	defer sa.Close()
	defer sb.Close()

	const n = 50
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf(`{"seq":%d,"pad":%q}`, i, strings.Repeat("p", i*13%301)))
		if err := sa.Send(Frame{Type: FrameBatch, SID: StreamID(i), Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all frames through chunked reader", func() bool { return col.count() == n })
	col.mu.Lock()
	defer col.mu.Unlock()
	for i, f := range col.frames {
		if f.SID != StreamID(i) {
			t.Fatalf("frame %d has sid %d: reordered or corrupted", i, f.SID)
		}
		want := fmt.Sprintf(`{"seq":%d,"pad":%q}`, i, strings.Repeat("p", i*13%301))
		if string(f.Payload) != want {
			t.Fatalf("frame %d payload corrupted:\n got %q\nwant %q", i, f.Payload, want)
		}
	}
}

func TestSessionRoundTripChunkedPipe(t *testing.T) {
	a, b := net.Pipe()
	roundTrip(t, a, b)
}

func TestSessionRoundTripChunkedTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	a, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	b := <-accepted
	roundTrip(t, a, b)
}
