// Command brtrace runs a seeded workload against the fully wired live
// stack with the end-to-end tracing plane on, then prints the per-hop
// latency breakdown and the assembled trace tree of one complete
// publish→…→device-apply trace. It exits nonzero unless at least one
// complete multi-hop trace was captured, which makes it CI's tracing smoke
// test.
//
// Usage:
//
//	brtrace                          # quickstart workload: 1 viewer, 3 comments
//	brtrace -workload lvc            # larger LVC run (-viewers, -events)
//	brtrace -workload chaos          # messenger under a seeded fault plan (PR 2)
//	brtrace -seed 7                  # reseed sampler, graph, and fault plan
//	brtrace -rate 0.25               # sample a quarter of mutations
//	brtrace -o trace.json            # export Chrome trace_event JSON
//	                                 # (chrome://tracing or ui.perfetto.dev)
//	brtrace -verify                  # run the workload twice and assert the
//	                                 # canonical span forests are identical
//
// -verify holds for the quickstart and lvc workloads, whose delivery order
// is serialized; the chaos workload's recovery timing is wall-clock
// dependent, so its exact span multiset may differ between runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/core"
	"bladerunner/internal/device"
	"bladerunner/internal/experiments"
	"bladerunner/internal/faults"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/trace"
)

// edgePathHops is the completeness criterion: a trace must cover the full
// device-facing pipeline to count.
var edgePathHops = []string{
	trace.HopPublish, trace.HopFanout, trace.HopFetch,
	trace.HopFlush, trace.HopRelay, trace.HopApply,
}

func main() {
	seed := flag.Int64("seed", 1, "RNG seed for the sampler, graph, and fault plan")
	workload := flag.String("workload", "quickstart", "workload: quickstart, lvc, chaos")
	events := flag.Int("events", 0, "mutations to publish (0 = workload default)")
	viewers := flag.Int("viewers", 0, "subscribed viewer devices (0 = workload default)")
	rate := flag.Float64("rate", 1, "sampling rate (0..1]")
	out := flag.String("o", "", "write Chrome trace_event JSON to this file")
	verify := flag.Bool("verify", false, "run twice and assert identical canonical span forests")
	flag.Parse()

	if err := run(*seed, *workload, *events, *viewers, *rate, *out, *verify); err != nil {
		fmt.Fprintf(os.Stderr, "brtrace: %v\n", err)
		os.Exit(1)
	}
}

func run(seed int64, workload string, events, viewers int, rate float64, out string, verify bool) error {
	plane, err := runWorkload(seed, workload, events, viewers, rate)
	if err != nil {
		return err
	}
	spans := plane.Gather()
	traces := trace.Assemble(spans)
	forest := trace.Forest(traces)

	var complete *trace.Trace
	completeN := 0
	for _, t := range traces {
		if t.Covers(edgePathHops...) {
			completeN++
			if complete == nil {
				complete = t
			}
		}
	}

	breakdown := trace.NewBreakdown()
	breakdown.Record(spans)
	fmt.Printf("workload %s, seed %d, sampling rate %g: %d spans, %d traces (%d complete), %d evicted\n\n",
		workload, seed, rate, len(spans), len(traces), completeN, plane.Evicted())
	fmt.Println(breakdown.Table())

	if complete != nil {
		fmt.Println("first complete trace:")
		fmt.Print(complete.Tree())
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeTrace(f, spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nChrome trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", out)
	}

	if verify {
		again, err := runWorkload(seed, workload, events, viewers, rate)
		if err != nil {
			return fmt.Errorf("verify re-run: %w", err)
		}
		forest2 := trace.Forest(trace.Assemble(again.Gather()))
		if forest2 != forest {
			return fmt.Errorf("verify: same seed produced different span forests\n--- run 1 ---\n%s--- run 2 ---\n%s",
				forest, forest2)
		}
		fmt.Printf("\nverify: deterministic — both runs produced the identical %d-trace forest\n", len(traces))
	}

	if complete == nil {
		return fmt.Errorf("no complete multi-hop trace captured (need %v)", edgePathHops)
	}
	return nil
}

func runWorkload(seed int64, workload string, events, viewers int, rate float64) (*trace.Plane, error) {
	switch workload {
	case "quickstart":
		return experiments.TracedLVCRun(seed, orDefault(viewers, 1), orDefault(events, 3), rate)
	case "lvc":
		return experiments.TracedLVCRun(seed, orDefault(viewers, 3), orDefault(events, 25), rate)
	case "chaos":
		return runChaos(seed, orDefault(events, 3), rate)
	default:
		return nil, fmt.Errorf("unknown workload %q (quickstart, lvc, chaos)", workload)
	}
}

func orDefault(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// runChaos drives the Messenger app through a FaultNetwork: a baseline
// message, a seeded cut/heal plan over the POPs plus a mass disconnect, and
// post-recovery messages — all with the tracing plane on, so the trace for
// a post-recovery delivery shows the same stream identity (the
// "trace-stream" header survives the rewrite/resubscribe) as the baseline.
func runChaos(seed int64, events int, rate float64) (*trace.Plane, error) {
	plane := trace.NewPlane(trace.Config{Rate: rate, Seed: seed})
	cfg := core.DefaultConfig()
	cfg.Graph.Users = 100
	cfg.Graph.BlockProb = 0
	cfg.Graph.Seed = seed
	cfg.Trace = plane
	c, err := core.NewCluster(cfg, nil)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	fn := faults.NewFaultNetwork(c.Net, nil, seed)
	sched := sim.RealClock{}

	const authorUID, viewerUID = socialgraph.UserID(90), socialgraph.UserID(10)
	author := c.NewDevice(authorUID)
	defer author.Close()
	viewer := c.NewDeviceVia(fn, device.Config{
		User:        viewerUID,
		Backoff:     faults.BackoffPolicy{Base: 10 * time.Millisecond, Max: 160 * time.Millisecond},
		BackoffSeed: seed + 1,
	})
	defer viewer.Close()
	if err := viewer.Connect(); err != nil {
		return nil, err
	}
	st, err := viewer.Subscribe(apps.AppMessenger, "messenger", nil)
	if err != nil {
		return nil, err
	}
	received := make(chan struct{}, 64)
	go func() {
		for range st.Updates {
			received <- struct{}{}
		}
	}()

	out, err := author.Mutate(fmt.Sprintf(`createThread(members: "%d,%d")`, authorUID, viewerUID))
	if err != nil {
		return nil, err
	}
	var tid uint64
	if err := json.Unmarshal(out, &tid); err != nil {
		return nil, err
	}
	waitSubscribed := func() error {
		ok := experiments.WaitUntil(sched, 15*time.Second, func() bool {
			return len(c.Pylon.Subscribers(apps.MailboxTopic(viewerUID))) >= 1
		})
		if !ok {
			return fmt.Errorf("chaos: mailbox subscription never registered with Pylon")
		}
		return nil
	}
	send := func(label string) error {
		if _, err := author.Mutate(fmt.Sprintf(
			`sendMessage(threadID: %d, text: "%s")`, tid, label)); err != nil {
			return err
		}
		select {
		case <-received:
			return nil
		case <-sim.Timeout(sched, 15*time.Second):
			return fmt.Errorf("chaos: %s message never delivered", label)
		}
	}
	if err := waitSubscribed(); err != nil {
		return nil, err
	}
	if err := send("baseline"); err != nil {
		return nil, err
	}

	// Seeded fault window over the POPs, then a mass disconnect/heal.
	pops := c.POPTargets()
	plan := faults.RandomPlan(seed, pops, 500*time.Millisecond, 2)
	done := plan.Start(fn)
	sim.Sleep(sched, plan.Horizon()+50*time.Millisecond)
	done()
	for _, pop := range pops {
		fn.Cut(pop)
	}
	sim.Sleep(sched, 50*time.Millisecond)
	for _, pop := range pops {
		fn.Heal(pop)
	}
	ok := experiments.WaitUntil(sched, 15*time.Second, func() bool {
		return viewer.Connected() && viewer.Streams() == 1
	})
	if !ok {
		return nil, fmt.Errorf("chaos: device never reconnected after the mass cut")
	}
	if err := waitSubscribed(); err != nil {
		return nil, err
	}

	for i := 0; i < events; i++ {
		if err := send(fmt.Sprintf("post-recovery %d", i)); err != nil {
			return nil, err
		}
	}
	c.Quiesce()
	return plane, nil
}
