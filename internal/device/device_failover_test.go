package device

import (
	"io"
	"testing"
	"time"

	"bladerunner/internal/edge"
	"bladerunner/internal/faults"
)

// TestReconnectResetsStreamBackoff guards the geo-failover fix in
// reconnect(): a successful session attach rewinds each stream's
// per-stream retry backoff BEFORE resubscribing. Without the reset, a
// stream whose retries escalated against a dead POP/region carries the
// saturated delay into its first retry on the healthy one, stretching
// failover by up to the backoff cap.
//
// The observable is the stream backoff's attempt counter after an attach
// whose direct resubscribe fails: pop-flaky accepts then immediately drops
// every connection, so Connect succeeds but the resubscribe send errors
// and arms a per-stream retry. With the reset in place that leaves the
// counter at exactly 1 (the failed retry's own Next); pre-fix it would sit
// at escalation+1.
func TestReconnectResetsStreamBackoff(t *testing.T) {
	n := edge.NewPipeNetwork()
	a := &fakePOP{name: "pop-a"}
	n.Register("pop-a", a.accept)
	n.Register("pop-flaky", func(rwc io.ReadWriteCloser) { rwc.Close() })
	d := New(Config{
		User:    7,
		POPs:    []string{"pop-a", "pop-flaky"},
		Backoff: faults.BackoffPolicy{Base: 10 * time.Millisecond, Max: 3 * time.Second, NoJitter: true},
	}, n, newWAS(t), nil)
	t.Cleanup(d.Close)

	if err := d.Connect(); err != nil {
		t.Fatal(err)
	}
	st, err := d.Subscribe("app", "s", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial stream on pop-a", func() bool { return a.stream(0) != nil })

	// Simulate retry history against a dying region: the stream's backoff
	// has escalated well past base by the time the device finally moves.
	for i := 0; i < 6; i++ {
		st.bo.Next()
	}
	if got := st.bo.Attempt(); got != 6 {
		t.Fatalf("escalated Attempt() = %d, want 6", got)
	}

	// Simulate a processed session loss, then drive one reconnect cycle.
	// POP rotation lands on pop-flaky: the attach succeeds, the transport
	// drops, the direct resubscribe fails and arms a per-stream retry.
	d.mu.Lock()
	d.client = nil
	d.connected = false
	d.mu.Unlock()
	d.reconnect()

	if d.Reconnects.Value() < 1 {
		t.Fatal("reconnect did not attach")
	}
	// The reset-before-resubscribe invariant: the attach rewound the
	// stream backoff, so the failed resubscribe's retry was armed at
	// base-scale delay — attempt 1, not the escalated 7.
	if got := st.bo.Attempt(); got > 1 {
		t.Fatalf("stream backoff Attempt() = %d after attach, want <= 1 "+
			"(reconnect must reset per-stream backoff before resubscribing)", got)
	}

	// And the stream recovers promptly: the flaky session's loss rotates
	// the device back onto the healthy POP and the pending base-delay
	// retry (or the reconnect itself) re-establishes the stream.
	waitFor(t, "stream recovered on pop-a", func() bool { return a.stream(1) != nil })
}
