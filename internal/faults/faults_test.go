package faults

import (
	"io"
	"strings"
	"testing"
	"time"

	"bladerunner/internal/edge"
	"bladerunner/internal/sim"
)

func TestBackoffPolicyDefaults(t *testing.T) {
	p := BackoffPolicy{}.normalized()
	if p.Base != 50*time.Millisecond || p.Max != 32*p.Base || p.Multiplier != 2 || p.Jitter != 0.5 {
		t.Errorf("defaults = %+v", p)
	}
	fixed := BackoffPolicy{NoJitter: true}.normalized()
	if fixed.Jitter != 0 {
		t.Errorf("NoJitter policy kept jitter %v", fixed.Jitter)
	}
	if s := (BackoffPolicy{}).String(); !strings.Contains(s, "base=50ms") {
		t.Errorf("String() = %q", s)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		b := NewBackoff(BackoffPolicy{}, seed)
		out := make([]time.Duration, 10)
		for i := range out {
			out[i] = b.Next()
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical jitter")
	}
}

func TestBackoffGrowthSaturationReset(t *testing.T) {
	b := NewBackoff(BackoffPolicy{
		Base: 10 * time.Millisecond, Max: 80 * time.Millisecond,
		Multiplier: 2, NoJitter: true,
	}, 1)
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Next(); got != w*time.Millisecond {
			t.Errorf("attempt %d = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	if s := b.Saturations(); s != 3 {
		t.Errorf("saturations = %d, want 3", s)
	}
	if r := b.Retries(); r != 6 {
		t.Errorf("retries = %d, want 6", r)
	}
	b.Reset()
	if b.Attempt() != 0 {
		t.Errorf("attempt after reset = %d", b.Attempt())
	}
	if got := b.Next(); got != 10*time.Millisecond {
		t.Errorf("post-reset delay = %v", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	base := 100 * time.Millisecond
	b := NewBackoff(BackoffPolicy{Base: base, Multiplier: 1, Jitter: 0.5}, 3)
	for i := 0; i < 200; i++ {
		d := b.Next()
		if d < base/2 || d > 3*base/2 {
			t.Fatalf("delay %v outside [%v, %v]", d, base/2, 3*base/2)
		}
	}
}

func TestBackoffChildSharesCounters(t *testing.T) {
	parent := NewBackoff(BackoffPolicy{Base: time.Millisecond}, 5)
	c1, c2 := parent.Child(1), parent.Child(2)
	c1.Next()
	c1.Next()
	c2.Next()
	if got := parent.Retries(); got != 3 {
		t.Errorf("shared retries = %d, want 3", got)
	}
	if c1.Attempt() != 2 || c2.Attempt() != 1 || parent.Attempt() != 0 {
		t.Errorf("attempts = %d/%d/%d, want 2/1/0",
			c1.Attempt(), c2.Attempt(), parent.Attempt())
	}
	// Children derived from the same seed+salt replay identically.
	p2 := NewBackoff(BackoffPolicy{Base: time.Millisecond}, 5)
	d1, d2 := p2.Child(1), NewBackoff(BackoffPolicy{Base: time.Millisecond}, 5).Child(1)
	for i := 0; i < 5; i++ {
		if a, b := d1.Next(), d2.Next(); a != b {
			t.Fatalf("child replay diverged at %d: %v vs %v", i, a, b)
		}
	}
}

// echoNetwork registers target with an echo server: every byte written by
// the dialer comes straight back.
func echoNetwork(t *testing.T, target string, sched sim.Scheduler, seed int64) *FaultNetwork {
	t.Helper()
	fn := NewFaultNetwork(edge.NewPipeNetwork(), sched, seed)
	fn.Register(target, func(rwc io.ReadWriteCloser) {
		go func() {
			_, _ = io.Copy(rwc, rwc)
			_ = rwc.Close()
		}()
	})
	return fn
}

func TestFaultNetworkPassthrough(t *testing.T) {
	fn := echoNetwork(t, "pop", nil, 1)
	c, err := fn.Dial("pop")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo = %q, %v", buf, err)
	}
	if got := fn.OpenConns("pop"); got != 2 {
		t.Errorf("open conns = %d, want 2 (both ends tracked)", got)
	}
}

func TestFaultNetworkCutSeversAndHealRestores(t *testing.T) {
	fn := echoNetwork(t, "pop", nil, 1)
	c, err := fn.Dial("pop")
	if err != nil {
		t.Fatal(err)
	}
	fn.Cut("pop")
	if _, err := c.Write([]byte("x")); err == nil {
		t.Error("write on severed conn succeeded")
	}
	if _, err := fn.Dial("pop"); err == nil {
		t.Error("dial to cut target succeeded")
	}
	if fn.InjectedCuts.Value() != 1 {
		t.Errorf("InjectedCuts = %d", fn.InjectedCuts.Value())
	}
	fn.Heal("pop")
	c2, err := fn.Dial("pop")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	_ = c2.Close()
}

func TestFaultNetworkDropCutsConnection(t *testing.T) {
	fn := echoNetwork(t, "pop", nil, 1)
	c, err := fn.Dial("pop")
	if err != nil {
		t.Fatal(err)
	}
	fn.SetDropProb("pop", 1)
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write with drop prob 1 succeeded")
	}
	if fn.InjectedDrops.Value() != 1 {
		t.Errorf("InjectedDrops = %d", fn.InjectedDrops.Value())
	}
	// The cut is corrupt-free: the connection is dead, not garbled.
	if _, err := c.Write([]byte("y")); err == nil {
		t.Error("write on dropped conn succeeded")
	}
}

func TestFaultNetworkBlackholeSwallowsOneDirection(t *testing.T) {
	fn := echoNetwork(t, "pop", nil, 1)
	c, err := fn.Dial("pop")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fn.SetBlackhole("pop", ToTarget, true)
	if _, err := c.Write([]byte("lost")); err != nil {
		t.Fatalf("blackholed write errored: %v", err)
	}
	if fn.BlackholedWrites.Value() != 1 {
		t.Errorf("BlackholedWrites = %d", fn.BlackholedWrites.Value())
	}
	// Nothing echoes back from the swallowed write; after clearing, the
	// link works again.
	fn.SetBlackhole("pop", ToTarget, false)
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("post-blackhole echo = %q, %v", buf, err)
	}
}

func TestFaultNetworkStallParksReaders(t *testing.T) {
	fn := echoNetwork(t, "pop", nil, 1)
	c, err := fn.Dial("pop")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	fn.Stall("pop")
	done := make(chan string, 1)
	go func() {
		buf := make([]byte, 4)
		if _, err := io.ReadFull(c, buf); err != nil {
			done <- err.Error()
			return
		}
		done <- string(buf)
	}()
	select {
	case v := <-done:
		t.Fatalf("stalled read returned %q", v)
	case <-time.After(50 * time.Millisecond):
	}
	fn.Unstall("pop")
	select {
	case v := <-done:
		if v != "ping" {
			t.Fatalf("read after unstall = %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read never released after unstall")
	}
	if fn.StalledReads.Value() == 0 {
		t.Error("StalledReads not counted")
	}
}

func TestFaultNetworkCutReleasesStalledReader(t *testing.T) {
	fn := echoNetwork(t, "pop", nil, 1)
	c, err := fn.Dial("pop")
	if err != nil {
		t.Fatal(err)
	}
	fn.Stall("pop")
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	fn.Cut("pop")
	select {
	case err := <-done:
		if err == nil {
			t.Error("read on cut conn returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cut did not release stalled reader")
	}
}

func TestFaultNetworkLatencyDelaysWrites(t *testing.T) {
	fn := echoNetwork(t, "pop", nil, 1)
	fn.SetLatency("pop", sim.Constant{V: 20 * time.Millisecond})
	c, err := fn.Dial("pop")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("write completed in %v, want >= 20ms", elapsed)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo = %q, %v", buf, err)
	}
	// The echo server's write back traverses the FromTarget wrapper with
	// the same latency, so at least two delayed writes are counted.
	if got := fn.DelayedWrites.Value(); got < 2 {
		t.Errorf("DelayedWrites = %d, want >= 2", got)
	}
}

func TestPlanScheduleDeterministicPerSeed(t *testing.T) {
	targets := []string{"pop-0", "pop-1", "pop-2"}
	a := RandomPlan(42, targets, time.Minute, 5)
	b := RandomPlan(42, targets, time.Minute, 5)
	if a.Schedule() != b.Schedule() {
		t.Fatalf("same seed, different schedules:\n%s\nvs\n%s", a.Schedule(), b.Schedule())
	}
	c := RandomPlan(43, targets, time.Minute, 5)
	if a.Schedule() == c.Schedule() {
		t.Error("different seeds produced identical schedules")
	}
	if a.Len() != 10 { // 5 cut/heal pairs
		t.Errorf("plan len = %d, want 10", a.Len())
	}
	if h := a.Horizon(); h > time.Minute*3/4 {
		t.Errorf("horizon %v exceeds fault-free tail boundary", h)
	}
}

func TestPlanRunsOnVirtualClock(t *testing.T) {
	eng := sim.NewEngine(time.Unix(0, 0))
	fn := NewFaultNetwork(edge.NewPipeNetwork(), eng, 1)
	fn.Inner().Register("pop", func(rwc io.ReadWriteCloser) {})
	plan := new(Plan).CutAt(10*time.Millisecond, "pop").HealAt(20*time.Millisecond, "pop")
	plan.Start(fn)
	eng.RunFor(15 * time.Millisecond)
	if _, err := fn.Dial("pop"); err == nil {
		t.Error("dial succeeded during scheduled outage")
	}
	eng.RunFor(15 * time.Millisecond)
	if _, err := fn.Dial("pop"); err != nil {
		t.Errorf("dial failed after scheduled heal: %v", err)
	}
	if fn.InjectedCuts.Value() != 1 {
		t.Errorf("InjectedCuts = %d", fn.InjectedCuts.Value())
	}
}

func TestPlanStartCancelStopsPendingActions(t *testing.T) {
	eng := sim.NewEngine(time.Unix(0, 0))
	fn := NewFaultNetwork(edge.NewPipeNetwork(), eng, 1)
	fn.Inner().Register("pop", func(rwc io.ReadWriteCloser) {})
	cancel := new(Plan).CutAt(10*time.Millisecond, "pop").Start(fn)
	cancel()
	eng.RunFor(time.Second)
	if fn.InjectedCuts.Value() != 0 {
		t.Errorf("cancelled plan still fired %d cuts", fn.InjectedCuts.Value())
	}
}
