package pylon

import (
	"errors"
	"testing"
	"time"

	"bladerunner/internal/sim"
)

// Publish-side admission: an over-rate publisher is shed with ErrShed
// before ID assignment or fan-out work, counted on the admission
// controller, and the bucket refills on the configured clock.
func TestPublishAdmissionSheds(t *testing.T) {
	kv := newKV(t)
	clk := sim.NewManualClock(time.Date(2021, 10, 26, 0, 0, 0, 0, time.UTC))
	cfg := DefaultConfig()
	cfg.Clock = clk
	cfg.AdmitRate = 1 // 1 publish/sec
	cfg.AdmitBurst = 4
	cfg.AdmitSeed = 7
	s := MustNew(cfg, kv)
	h := &fakeHost{id: "h"}
	s.RegisterHost(h)
	if err := s.Subscribe("/t", "h"); err != nil {
		t.Fatal(err)
	}

	admitted, shed := 0, 0
	for i := 0; i < 20; i++ {
		_, err := s.Publish(Event{Topic: "/t"})
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, ErrShed):
			shed++
		default:
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	// Seeded initial fill is within [burst/2, burst] = [2, 4] tokens.
	if admitted < 2 || admitted > 4 {
		t.Errorf("admitted = %d, want within [2, 4]", admitted)
	}
	if admitted+shed != 20 {
		t.Errorf("admitted+shed = %d, want 20", admitted+shed)
	}
	if got := s.Admit.Admitted.Value(); got != int64(admitted) {
		t.Errorf("Admitted counter = %d, want %d", got, admitted)
	}
	if got := s.Admit.Shed.Value(); got != int64(shed) {
		t.Errorf("Shed counter = %d, want %d", got, shed)
	}
	if h.count() != admitted {
		t.Errorf("host deliveries = %d, want %d", h.count(), admitted)
	}

	// Virtual time refills the bucket: one second buys exactly one token.
	clk.Advance(time.Second)
	if _, err := s.Publish(Event{Topic: "/t"}); err != nil {
		t.Fatalf("post-refill publish: %v", err)
	}
	if _, err := s.Publish(Event{Topic: "/t"}); !errors.Is(err, ErrShed) {
		t.Fatalf("second post-refill publish err = %v, want ErrShed", err)
	}
}

// Admission disabled (the default) never sheds and costs nothing: the
// Admit field stays nil and the nil receiver admits everything.
func TestPublishAdmissionDisabledByDefault(t *testing.T) {
	s, _ := newService(t)
	if s.Admit != nil {
		t.Fatal("default config built an admission controller")
	}
	h := &fakeHost{id: "h"}
	s.RegisterHost(h)
	if err := s.Subscribe("/t", "h"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := s.Publish(Event{Topic: "/t"}); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if h.count() != 100 {
		t.Errorf("deliveries = %d, want 100", h.count())
	}
}

// The admission bucket survives failover via header persistence: state
// serialized from one controller restores (clamped) into another.
func TestAdmissionHeaderSurvivesRestore(t *testing.T) {
	kv := newKV(t)
	clk := sim.NewManualClock(time.Date(2021, 10, 26, 0, 0, 0, 0, time.UTC))
	cfg := DefaultConfig()
	cfg.Clock = clk
	cfg.AdmitRate = 1
	cfg.AdmitBurst = 2
	cfg.AdmitSeed = 3
	s := MustNew(cfg, kv)
	h := &fakeHost{id: "h"}
	s.RegisterHost(h)
	if err := s.Subscribe("/t", "h"); err != nil {
		t.Fatal(err)
	}
	// Drain the bucket.
	for i := 0; i < 10; i++ {
		_, _ = s.Publish(Event{Topic: "/t"})
	}
	state := s.Admit.HeaderState()
	if state == "" {
		t.Fatal("empty header state")
	}

	s2 := MustNew(cfg, newKV(t))
	h2 := &fakeHost{id: "h2"}
	s2.RegisterHost(h2)
	if err := s2.Subscribe("/t", "h2"); err != nil {
		t.Fatal(err)
	}
	s2.Admit.RestoreHeaderState(state)
	// The drained state carried over: the replacement sheds immediately
	// instead of granting a fresh seeded burst.
	if _, err := s2.Publish(Event{Topic: "/t"}); !errors.Is(err, ErrShed) {
		t.Fatalf("publish after restoring drained state err = %v, want ErrShed", err)
	}
	clk.Advance(time.Second)
	if _, err := s2.Publish(Event{Topic: "/t"}); err != nil {
		t.Fatalf("post-refill publish: %v", err)
	}
}
