package megadevice

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"bladerunner/internal/burst"
	"bladerunner/internal/durlog"
)

// trunk is one real BURST session to a POP carrying every virtual device
// attached through that POP. Virtual devices subscribed to the same topic
// share ONE real request-stream per trunk: the cluster sees #POPs
// sessions and at most #POPs x #areas streams regardless of fleet size,
// and the fleet fans each delivered delta out to the attached devices on
// the apply path. A trunk that dies takes all its shared subscriptions
// with it; the fleet re-dials per device through backoff and the new
// trunk re-subscribes topics on first attach.
type trunk struct {
	f    *Fleet
	id   uint16
	pop  string
	sess *burst.Session // nil for virtual trunks (Dialer-less fleets)

	mu      sync.Mutex
	nextSID burst.StreamID
	subs    map[uint32]*topicSub         // area -> shared subscription
	bySID   map[burst.StreamID]*topicSub // stream id -> shared subscription
}

// topicSub is one shared real request-stream: the (trunk, area) pair and
// the virtual streams currently attached to it. streams is guarded by its
// own mutex so the per-delta apply path (trunk read goroutine) and
// attach/detach transitions (scheduler goroutine) serialize here and
// nowhere else.
type topicSub struct {
	trunk *trunk
	area  uint32
	sid   burst.StreamID

	mu      sync.Mutex
	streams []uint32
	header  burst.Header // stored request header, patched by rewrites
}

// trunkForLocked returns the live trunk for pop, dialing one if needed.
// Callers hold f.mu.
func (f *Fleet) trunkForLocked(pop string) (*trunk, error) {
	if t := f.trunks[pop]; t != nil {
		return t, nil
	}
	if len(f.trunkIDs) >= int(noTrunk) {
		return nil, fmt.Errorf("megadevice: trunk id space exhausted")
	}
	t := &trunk{
		f:     f,
		id:    uint16(len(f.trunkIDs)),
		pop:   pop,
		subs:  make(map[uint32]*topicSub),
		bySID: make(map[burst.StreamID]*topicSub),
	}
	if f.cfg.Dialer != nil {
		rwc, err := f.cfg.Dialer.Dial(pop)
		if err != nil {
			return nil, err
		}
		// The session's read loop starts immediately; its handler only
		// touches trunk/topicSub mutexes and the external queues, never
		// f.mu, so starting it under f.mu is safe.
		t.sess = burst.NewSession(fmt.Sprintf("trunk-%s-%d", pop, t.id), rwc, trunkHandler{t})
	}
	f.trunkIDs = append(f.trunkIDs, t)
	f.trunks[pop] = t
	return t, nil
}

// sub returns the shared subscription for area, sending the real
// FrameSubscribe on first use. Callers hold f.mu.
func (t *trunk) sub(area uint32) *topicSub {
	t.mu.Lock()
	if ts := t.subs[area]; ts != nil {
		t.mu.Unlock()
		return ts
	}
	t.nextSID++
	a := &t.f.cfg.Areas[area]
	ts := &topicSub{
		trunk: t,
		area:  area,
		sid:   t.nextSID,
		header: burst.Header{
			burst.HdrApp:          a.App,
			burst.HdrSubscription: a.Subscription,
			burst.HdrUser:         strconv.FormatUint(a.User, 10),
		},
	}
	if a.Cursor != "" {
		ts.header[burst.HdrCursor] = a.Cursor
	}
	t.subs[area] = ts
	t.bySID[ts.sid] = ts
	req := burst.Subscribe{Header: ts.header.Clone()}
	t.mu.Unlock()
	if t.sess != nil {
		// Fire-and-forget like burst.Client: a send failure means the
		// session is dying and HandleClose will detach everyone.
		_ = t.sess.SendMsg(burst.FrameSubscribe, ts.sid, req)
	}
	return ts
}

// resumeSub repairs a shed gap on a shared stream the durable-log way:
// cancel the shed subscription and resubscribe under a fresh stream id
// with the stored (rewrite-maintained) cursor, clamped to the highest seq
// actually applied on the stream — the trunk-model analogue of
// device.Stream.triggerCursorResume, and subject to the same
// never-raise clamp rule. One resume covers every virtual device
// attached to the stream, exactly as one OnShed point query does for the
// legacy path. Called from Service, outside all fleet locks.
func (t *trunk) resumeSub(ts *topicSub) {
	t.mu.Lock()
	if t.sess == nil || t.subs == nil || t.subs[ts.area] != ts {
		t.mu.Unlock()
		return // virtual trunk, or drained since the marker queued
	}
	oldSID := ts.sid
	t.nextSID++
	newSID := t.nextSID
	delete(t.bySID, oldSID)
	t.bySID[newSID] = ts
	ts.sid = newSID
	var last uint64
	ts.mu.Lock()
	for _, sid := range ts.streams {
		if s := atomic.LoadUint64(&t.f.tab.streamSeq[sid]); s > last {
			last = s
		}
	}
	req := burst.Subscribe{Header: ts.header.Clone()}
	ts.mu.Unlock()
	t.mu.Unlock()
	if c := req.Header[burst.HdrCursor]; c != "" {
		req.Header[burst.HdrCursor] = durlog.Clamp(c, last)
	}
	_ = t.sess.SendMsg(burst.FrameCancel, oldSID, burst.Cancel{Reason: "cursor-resume"})
	_ = t.sess.SendMsg(burst.FrameSubscribe, newSID, req)
	t.f.CursorResumes.Inc()
}

// lookupSub returns the shared subscription for area, or nil.
func (t *trunk) lookupSub(area uint32) *topicSub {
	t.mu.Lock()
	ts := t.subs[area]
	t.mu.Unlock()
	return ts
}

// trunkHandler adapts a trunk to burst.FrameHandler. Frames arrive on the
// session's single read goroutine.
type trunkHandler struct{ t *trunk }

// HandleFrame decodes downstream batches and routes each delta. Batch
// decode allocates (one JSON parse per wire batch — the same cost every
// real client pays); the per-delta payload application below it is the
// allocation-free hot path.
func (h trunkHandler) HandleFrame(fr burst.Frame) {
	if fr.Type != burst.FrameBatch {
		return
	}
	t := h.t
	t.mu.Lock()
	ts := t.bySID[fr.SID]
	t.mu.Unlock()
	if ts == nil {
		return // late frame for a drained trunk
	}
	batch, err := burst.DecodeBatch(fr.Payload)
	if err != nil {
		return
	}
	f := t.f
	for i := range batch.Deltas {
		d := &batch.Deltas[i]
		switch d.Type {
		case burst.DeltaPayload:
			f.applyPayload(ts, d.Seq)
		case burst.DeltaFlowStatus:
			f.applyFlow(ts, d)
		case burst.DeltaRewriteRequest:
			f.Rewrites.Inc()
			ts.mu.Lock()
			// Replace the stored request header (sticky-brass, resume
			// seq, ...) exactly as burst.Client does; the shared stream
			// carries it for the trunk's lifetime. A NEW trunk
			// re-subscribes from the area's original request — sticky
			// state is per-trunk here, per-device in device.Device;
			// that is part of the documented fidelity trade.
			ts.header = d.Header.Clone()
			ts.mu.Unlock()
		case burst.DeltaTermination:
			f.Terminations.Inc()
		}
	}
}

// HandleClose queues the trunk death for Service; transitions must not
// run on the read goroutine (engine schedulers are single-threaded).
func (h trunkHandler) HandleClose(error) {
	h.t.f.enqueueClosed(h.t)
}
