// Package sim provides the deterministic discrete-event simulation kernel
// used to drive Bladerunner experiments over simulated 24-hour horizons,
// along with clock abstractions shared by the live (wall-clock) system.
//
// Components in this repository never call time.Now directly; they accept a
// Clock so the same logic runs both against real time (examples, protocol
// tests) and against the event-driven virtual time used by the experiment
// harness in internal/experiments.
package sim

import (
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the system.
type Clock interface {
	// Now returns the current time. For the virtual clock this is the
	// simulation time, which only advances when events are processed.
	Now() time.Time
}

// Scheduler extends Clock with the ability to run a function at a later
// time. The live implementation uses time.AfterFunc; the virtual
// implementation enqueues a simulation event.
type Scheduler interface {
	Clock
	// After schedules fn to run d after the current time. It returns a
	// cancel function; cancelling after the callback has started is a
	// no-op. d <= 0 schedules fn for immediate execution (still
	// asynchronously with respect to the caller).
	After(d time.Duration, fn func()) (cancel func())
}

// RealClock is a Scheduler backed by the wall clock.
type RealClock struct{}

// Now returns the wall-clock time.
func (RealClock) Now() time.Time { return time.Now() }

// After schedules fn on the wall clock via time.AfterFunc.
func (RealClock) After(d time.Duration, fn func()) func() {
	if d < 0 {
		d = 0
	}
	t := time.AfterFunc(d, fn)
	return func() { t.Stop() }
}

var _ Scheduler = RealClock{}

// ManualClock is a Clock whose time is advanced explicitly by tests.
// It is safe for concurrent use.
type ManualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewManualClock returns a ManualClock starting at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now returns the current manual time.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// Set sets the clock to t. Setting time backwards is allowed (tests only).
func (c *ManualClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}

// Sleep blocks the calling goroutine until d has elapsed on s. It is the
// Clock-respecting replacement for time.Sleep: under RealClock it sleeps on
// the wall clock, under a virtual Scheduler it parks until the event engine
// reaches the wake-up time. The caller must not be the goroutine driving
// the virtual engine, or the wake-up event can never fire.
func Sleep(s Scheduler, d time.Duration) {
	<-Timeout(s, d)
}

// Timeout returns a channel that is closed once d has elapsed on s — the
// Clock-respecting replacement for time.After in selects.
func Timeout(s Scheduler, d time.Duration) <-chan struct{} {
	done := make(chan struct{})
	s.After(d, func() { close(done) })
	return done
}
