// Wire benchmarks: the same hot paths as bench.go, but with every tier
// boundary crossed over a real loopback TCP socket instead of a function
// call — the cost the multi-process deployment (cmd/brnode) adds. The
// in-process numbers are the floor; these are the over-the-wire
// counterparts, and BENCH_10.json records both plus the delta.
package bench

import (
	"io"
	"net"
	"strconv"
	"testing"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/brass"
	"bladerunner/internal/burst"
	"bladerunner/internal/ctrl"
	"bladerunner/internal/pylon"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
	"bladerunner/internal/was"
)

// wirePair returns both ends of one accepted loopback TCP connection.
func wirePair(b *testing.B) (client, server net.Conn) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	cli, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	srv := <-ch
	if srv.err != nil {
		b.Fatal(srv.err)
	}
	return cli, srv.c
}

// ctrlPair wires a served Conn (setup registers its handlers) to a client
// Conn over one loopback TCP connection.
func ctrlPair(b *testing.B, name string, setup func(*ctrl.Conn)) *ctrl.Conn {
	b.Helper()
	cliConn, srvConn := wirePair(b)
	srv := ctrl.NewConn(name+"-srv", srvConn, nil)
	setup(srv)
	srv.Start()
	cli := ctrl.NewConn(name, cliConn, nil).Start()
	b.Cleanup(func() {
		_ = cli.Close()
		_ = srv.Close()
	})
	return cli
}

// PylonPublishLocal measures one in-process publish to a single-subscriber
// topic on a bare pylon (no region plane), the apples-to-apples floor for
// PylonPublishWire.
func PylonPublishLocal(b *testing.B) {
	pyl := pylon.MustNew(benchAdmission(pylon.DefaultConfig()), NewKV())
	sink := NewSink("sink")
	pyl.RegisterHost(sink)
	if err := pyl.Subscribe("/bench", "sink"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pyl.Publish(pylon.Event{Topic: "/bench", Ref: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// PylonPublishWire measures the same publish issued through the control
// protocol over loopback TCP: marshal, socket round trip, dispatch,
// publish, ack. The delta against PylonPublishLocal is the wire tax the
// multi-process deployment pays per publish.
func PylonPublishWire(b *testing.B) {
	pyl := pylon.MustNew(benchAdmission(pylon.DefaultConfig()), NewKV())
	sink := NewSink("sink")
	pyl.RegisterHost(sink)
	if err := pyl.Subscribe("/bench", "sink"); err != nil {
		b.Fatal(err)
	}
	cli := ctrlPair(b, "bench->pylon", func(c *ctrl.Conn) {
		ctrl.ServePylon(c, pyl, nil)
	})
	pc := ctrl.NewPylonClient(cli)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pc.Publish(pylon.Event{Topic: "/bench", Ref: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// EndToEndCommentPushWire is EndToEndCommentPush with the brnode process
// topology reproduced over loopback sockets: the WAS publishes into Pylon
// through a ctrl conn, the BRASS host consumes Pylon and the WAS through
// ctrl conns, and the device session rides a real TCP connection — four
// sockets on the path of one comment.
func EndToEndCommentPushWire(b *testing.B) {
	// Pylon tier, served over ctrl.
	pyl := pylon.MustNew(pylon.DefaultConfig(), NewKV())
	pylonConnFor := func(name string) *ctrl.PylonClient {
		var pc *ctrl.PylonClient
		cli := ctrlPair(b, name, func(c *ctrl.Conn) {
			ctrl.ServePylon(c, pyl, nil)
		})
		pc = ctrl.NewPylonClient(cli)
		return pc
	}

	// WAS tier: publishes via its own ctrl conn to pylon, served over ctrl.
	store := tao.MustNewStore(tao.DefaultConfig(), nil)
	graph := socialgraph.MustGenerate(socialgraph.Config{Users: 100, MeanFriends: 5, Seed: 1})
	w := was.New(store, graph, nil, nil)
	w.Fanout = pylonConnFor("was->pylon")
	apps.NewSuite(w)
	wasCli := ctrlPair(b, "brass->was", func(c *ctrl.Conn) {
		ctrl.ServeWAS(c, w)
	})
	wc := ctrl.NewWASClient(wasCli)

	// BRASS tier: remote pylon + remote WAS, device session over TCP.
	suite := apps.NewSuite(apps.NopRegistrar{})
	host := brass.NewHost(brass.HostConfig{ID: "bench-host", Region: "us"},
		pylonConnFor("brass->pylon"), wc, nil)
	defer host.Close()
	suite.RegisterBRASS(host)

	devConn, edgeConn := wirePair(b)
	cli := burst.NewClient("bench-device", devConn, nil)
	defer cli.Close()
	host.AcceptSession("bench", io.ReadWriteCloser(edgeConn))
	st, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{
		burst.HdrApp:          apps.AppFeedComments,
		burst.HdrSubscription: "feedPostComments(postID: 1)",
		burst.HdrUser:         "1",
	}})
	if err != nil {
		b.Fatal(err)
	}
	if !pyl.WaitForSubscriber(nil, apps.PostTopic(1), 5*time.Second) {
		b.Fatal("BRASS host never subscribed to the post topic over ctrl")
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wc.MutateIn("", 2, `postFeedComment(postID: 1, text: "`+strconv.Itoa(i)+`")`); err != nil {
			b.Fatal(err)
		}
		for {
			batch, ok := <-st.Events
			if !ok {
				b.Fatal("stream closed")
			}
			done := false
			for _, d := range batch {
				if d.Type == burst.DeltaPayload {
					done = true
				}
			}
			if done {
				break
			}
		}
	}
}
