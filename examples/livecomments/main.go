// LiveVideoComments at burst scale: a popular live moment (the lunar
// eclipse of paper §2) generates a storm of comments from many users.
// Each viewer receives only the highest-ranked, privacy-checked comments,
// rate-limited to one push per interval — while every comment is durably
// stored in TAO.
//
// Run with:
//
//	go run ./examples/livecomments
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/core"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
)

const (
	videoID  = 99
	nViewers = 12
	nBurst   = 300
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Graph.Users = 500
	cluster, err := core.NewCluster(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Paper values scaled 10x for the demo: 200ms rate limit (paper: 2s),
	// 1s relevance TTL (paper: 10s), ranked buffer of 5.
	cluster.Apps.LVC.RateLimit = 200 * time.Millisecond
	cluster.Apps.LVC.BufferTTL = 1 * time.Second
	cluster.Apps.LVC.RankBeforePublish = false
	// Auto-switch to the high-volume strategy (§3.4) once the burst
	// exceeds 150 comments inside a 10s window.
	cluster.Apps.LVC.ConfigureHotDetection(150, 10*time.Second)

	// Viewers tune in through the edge.
	var delivered atomic.Int64
	for i := 0; i < nViewers; i++ {
		viewer := cluster.NewDevice(socialgraph.UserID(i + 1))
		defer viewer.Close()
		if err := viewer.Connect(); err != nil {
			log.Fatal(err)
		}
		st, err := viewer.Subscribe(apps.AppLiveComments,
			fmt.Sprintf("liveVideoComments(videoID: %d)", videoID), nil)
		if err != nil {
			log.Fatal(err)
		}
		go func(i int) {
			for delta := range st.Updates {
				var c apps.CommentPayload
				_ = json.Unmarshal(delta.Payload, &c)
				if delivered.Add(1) <= 5 {
					fmt.Printf("viewer %2d sees: %q (score %.2f)\n", i, c.Text, c.Score)
				}
			}
		}(i)
	}
	clock := sim.RealClock{}
	cluster.Pylon.WaitForSubscriber(clock, apps.LVCTopic(videoID), 10*time.Second)

	// The eclipse moment: a comment storm.
	fmt.Printf("posting %d comments in a burst...\n", nBurst)
	rng := rand.New(rand.NewSource(42))
	start := clock.Now()
	for i := 0; i < nBurst; i++ {
		author := socialgraph.UserID(100 + rng.Intn(400))
		_, err := cluster.WAS.Mutate(author, fmt.Sprintf(
			`postComment(videoID: %d, text: "eclipse comment %d")`, videoID, i))
		if err != nil {
			log.Fatal(err)
		}
	}
	burstDur := clock.Now().Sub(start)
	sim.Sleep(clock, 1500*time.Millisecond) // let rate-limited pushes drain
	cluster.Quiesce()

	stored := cluster.TAO.Stats().Writes.Value()
	_ = stored
	fmt.Printf("\nburst of %d comments posted in %v\n", nBurst, burstDur.Round(time.Millisecond))
	fmt.Printf("comments stored in TAO:      %d (all of them)\n",
		countComments(cluster))
	fmt.Printf("pylon publishes:             %d (spam dropped at WAS)\n",
		cluster.Pylon.Publishes.Value())
	fmt.Printf("BRASS decisions:             %d\n", cluster.TotalDecisions())
	fmt.Printf("pushes to viewers:           %d (rate-limited to top-ranked)\n", delivered.Load())
	fmt.Printf("per-viewer pushes:           %.1f (vs %d comments — device and last mile protected)\n",
		float64(delivered.Load())/nViewers, nBurst)
	fmt.Printf("high-volume strategy active: %v (auto-detected mid-burst; ordinary\n",
		cluster.Apps.LVC.IsHotVideo(videoID))
	fmt.Println("  comments now route via per-poster topics toward friends only)")
}

func countComments(c *core.Cluster) int {
	return c.TAO.AssocCount(tao.ObjID(videoID), "video_comment")
}
