package experiments

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"bladerunner/internal/workload"
)

// Table1 regenerates the paper's Table 1: the distribution of daily update
// counts over areas of interest. nAreas areas are sampled from the
// calibrated generator; the measured bucket fractions are compared with the
// paper's row.
func Table1(seed int64, nAreas int) Result {
	rng := rand.New(rand.NewSource(seed))
	var zero, under10, under100, over1M, over100M int
	for i := 0; i < nAreas; i++ {
		u := workload.AreaUpdates(rng, workload.Table1Buckets)
		switch {
		case u == 0:
			zero++
		case u < 10:
			under10++
		case u < 100:
			under100++
		case u > 100_000_000:
			over100M++
		case u > 1_000_000:
			over1M++
		}
	}
	r := Result{ID: "table1", Title: "Updates per area of interest over 24h"}
	f := func(c int) float64 { return float64(c) / float64(nAreas) }
	r.AddRow("areas with 0 updates", "83%", pct(f(zero)), "")
	r.AddRow("areas with <10 updates", "16%", pct(f(under10)), "")
	r.AddRow("areas with <100 updates", "0.95%", pct(f(under100)), "")
	r.AddRow("areas with >1M updates", "0.049%", pct(f(over1M)), "")
	r.AddRow("areas with >100M updates", "0.0001%", pct(f(over100M)), "rarest bucket; wide CI at this sample size")
	return r
}

// Table2 regenerates the request-stream lifetime distribution.
func Table2(seed int64, nStreams int) Result {
	rng := rand.New(rand.NewSource(seed))
	var b15m, b1h, b24h, bMore int
	for i := 0; i < nStreams; i++ {
		lt := workload.StreamLifetime(rng, workload.Table2Buckets)
		switch {
		case lt < 15*time.Minute:
			b15m++
		case lt < time.Hour:
			b1h++
		case lt < 24*time.Hour:
			b24h++
		default:
			bMore++
		}
	}
	r := Result{ID: "table2", Title: "Request-stream lifetime distribution"}
	f := func(c int) string { return pct(float64(c) / float64(nStreams)) }
	r.AddRow("<15 min", "45%", f(b15m), "")
	r.AddRow("15 min - 1 hr", "26%", f(b1h), "")
	r.AddRow("1 hr - 24 hr", "25%", f(b24h), "")
	r.AddRow("24 hr+", "4%", f(bMore), "")
	return r
}

// Figure7 regenerates the per-subscription publication-count distribution:
// request-streams sampled at twelve points in time, counting the update
// events targeting each stream's subscription over the stream's lifetime.
//
// Two effects are modelled beyond the raw generators:
//
//   - Length-biased sampling: the paper picked twelve instants and looked
//     at the streams *active at those instants*, which over-represents
//     long-lived streams in proportion to their lifetime.
//   - Popularity-biased subscription: users subscribe to what they are
//     looking at, which correlates with activity (popular live videos have
//     both more viewers and more comments). The saturating weight is the
//     one calibration constant (see DESIGN.md §4).
func Figure7(seed int64, nStreams int) Result {
	rng := rand.New(rand.NewSource(seed))

	// An area population with Table 1 daily rates.
	const nAreasPool = 100_000
	rates := make([]float64, nAreasPool)
	cum := make([]float64, nAreasPool) // cumulative weights for sampling
	var totalW float64
	for i := range rates {
		rates[i] = float64(workload.AreaUpdates(rng, workload.Table1Buckets))
		totalW += 1.0 + 1.45*rates[i]/(rates[i]+2) + 0.05*math.Log1p(rates[i])
		cum[i] = totalW
	}
	// Sample streams: pick an area by weight, a length-biased lifetime
	// from Table 2, and draw the stream's update count from
	// Poisson(rate × lifetime).
	maxLifetime := 72 * time.Hour
	var zero, b9, b99, b100 int
	for s := 0; s < nStreams; s++ {
		x := rng.Float64() * totalW
		idx := sort.SearchFloat64s(cum, x)
		if idx >= nAreasPool {
			idx = nAreasPool - 1
		}
		// Length-biased lifetime via rejection sampling.
		var lifetime time.Duration
		for {
			lifetime = workload.StreamLifetime(rng, workload.Table2Buckets)
			if rng.Float64() < float64(lifetime)/float64(maxLifetime) {
				break
			}
		}
		mean := rates[idx] * lifetime.Hours() / 24
		n := workload.Poisson(rng, mean)
		switch {
		case n == 0:
			zero++
		case n <= 9:
			b9++
		case n <= 99:
			b99++
		default:
			b100++
		}
	}
	r := Result{ID: "fig7", Title: "Publications per request-stream subscription"}
	f := func(c int) string { return pct(float64(c) / float64(nStreams)) }
	r.AddRow("0 updates", "~75%", f(zero), "paper: 74.0-75.9% across 12 samples")
	r.AddRow("1-9 updates", "~19%", f(b9), "paper: 18.3-19.5%")
	r.AddRow("10-99 updates", "~5.5%", f(b99), "paper: 5.2-6.1%")
	r.AddRow("100+ updates", "~0.6%", f(b100), "paper: 0.5-0.7%")
	return r
}
