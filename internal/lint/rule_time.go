package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoDirectTime enforces the virtual-time invariant: outside internal/sim
// (and _test.go files, which the loader never parses), code must not read
// or schedule against the wall clock directly. Components take a sim.Clock
// or sim.Scheduler so the identical logic runs under the live wall clock
// and under the deterministic discrete-event harness that regenerates the
// paper's 24-hour experiments in seconds.
type NoDirectTime struct {
	// ModPath is the module path; ModPath+"/internal/sim" is the only
	// package allowed to touch the time package's clock functions.
	ModPath string
}

// deniedTimeFuncs are the wall-clock entry points of the time package. The
// pure constructors/formatters (time.Date, time.Parse, time.Unix, …) and
// the Duration arithmetic are allowed — they are deterministic.
var deniedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"Sleep":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

func (r *NoDirectTime) Name() string { return "no-direct-time" }

func (r *NoDirectTime) Doc() string {
	return "wall-clock time package functions are only allowed in internal/sim; inject a sim.Clock/Scheduler"
}

func (r *NoDirectTime) Check(c *Context) {
	if c.Pkg.Path == r.ModPath+"/internal/sim" ||
		strings.HasPrefix(c.Pkg.Path, r.ModPath+"/internal/sim/") {
		return
	}
	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := c.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			// Methods (time.Time.After, time.Time.Since, …) are pure
			// arithmetic on existing values; only the package-level
			// wall-clock functions are denied.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if deniedTimeFuncs[fn.Name()] {
				c.Reportf(sel.Pos(), "time.%s reads the wall clock; take a sim.Clock/sim.Scheduler instead (only internal/sim may use it)", fn.Name())
			}
			return true
		})
	}
}
