package edge

import (
	"sync"

	"bladerunner/internal/burst"
)

// Router chooses the upstream target for a subscription request. avoid
// lists targets known to be failing for this stream right now (the router
// may still return one if nothing else exists).
type Router interface {
	Route(sub burst.Subscribe, avoid map[string]bool) (string, error)
}

// StaticRouter always routes to one target.
type StaticRouter string

// Route implements Router.
func (r StaticRouter) Route(burst.Subscribe, map[string]bool) (string, error) {
	return string(r), nil
}

// RoundRobinRouter cycles through targets, skipping avoided ones when
// possible — the paper's load-based routing for high-fanout applications.
type RoundRobinRouter struct {
	mu      sync.Mutex
	targets []string
	next    int
}

// NewRoundRobinRouter builds a router over targets.
func NewRoundRobinRouter(targets ...string) *RoundRobinRouter {
	cp := append([]string(nil), targets...)
	return &RoundRobinRouter{targets: cp}
}

// SetTargets replaces the target list (rebalancing, host churn).
func (r *RoundRobinRouter) SetTargets(targets ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.targets = append([]string(nil), targets...)
	r.next = 0
}

// Route implements Router.
func (r *RoundRobinRouter) Route(_ burst.Subscribe, avoid map[string]bool) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.targets) == 0 {
		return "", ErrNoRoute
	}
	for i := 0; i < len(r.targets); i++ {
		t := r.targets[r.next%len(r.targets)]
		r.next++
		if !avoid[t] {
			return t, nil
		}
	}
	return "", ErrNoRoute
}

// TopicHashRouter routes by hashing the stream's topic header so all
// streams for one topic land on the same BRASS — the paper's topic-based
// routing for low-fanout applications, which curtails the number of
// subscriptions Pylon must maintain (§3.2).
type TopicHashRouter struct {
	mu      sync.Mutex
	targets []string
}

// NewTopicHashRouter builds a router over targets.
func NewTopicHashRouter(targets ...string) *TopicHashRouter {
	return &TopicHashRouter{targets: append([]string(nil), targets...)}
}

// Route implements Router.
func (r *TopicHashRouter) Route(sub burst.Subscribe, avoid map[string]bool) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.targets) == 0 {
		return "", ErrNoRoute
	}
	key := sub.Header[burst.HdrTopic]
	if key == "" {
		key = sub.Header[burst.HdrSubscription]
	}
	h := fnv(key)
	for i := 0; i < len(r.targets); i++ {
		t := r.targets[(int(h)+i)%len(r.targets)]
		if !avoid[t] {
			return t, nil
		}
	}
	return "", ErrNoRoute
}

// StickyRouter honors the sticky-routing header written by a BRASS rewrite
// (paper §3.5): a resubscribe lands on the instance that previously served
// the stream. When the sticky target is avoided or absent, it falls back.
type StickyRouter struct {
	Fallback Router
}

// Route implements Router.
func (r StickyRouter) Route(sub burst.Subscribe, avoid map[string]bool) (string, error) {
	if target := sub.Header[burst.HdrStickyBRASS]; target != "" && !avoid[target] {
		return target, nil
	}
	return r.Fallback.Route(sub, avoid)
}

func fnv(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
