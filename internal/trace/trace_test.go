package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"bladerunner/internal/sim"
)

func TestSamplerDeterminism(t *testing.T) {
	a := NewSampler(42, 1)
	b := NewSampler(42, 1)
	for i := 0; i < 100; i++ {
		ia, ib := a.Trace(), b.Trace()
		if ia == 0 {
			t.Fatalf("rate-1 sampler returned zero ID at %d", i)
		}
		if ia != ib {
			t.Fatalf("same-seed samplers diverged at %d: %x vs %x", i, ia, ib)
		}
	}
	if c := NewSampler(42, 7); c.Trace() == NewSampler(43, 1).Trace() {
		t.Fatalf("different seeds produced the same first ID")
	}
}

func TestSamplerRate(t *testing.T) {
	if s := NewSampler(1, 0); s != nil {
		t.Fatalf("rate 0 should return a nil sampler")
	}
	var nilSampler *Sampler
	if id := nilSampler.Trace(); id != 0 {
		t.Fatalf("nil sampler sampled: %x", id)
	}
	s := NewSampler(7, 0.1)
	sampled := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if s.Trace() != 0 {
			sampled++
		}
	}
	if sampled < n/20 || sampled > n/5 {
		t.Fatalf("rate 0.1 sampled %d of %d", sampled, n)
	}
}

func TestNilTracerAndZeroIDInactive(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(1, HopPublish, "")
	if sp.Active() {
		t.Fatalf("nil tracer span is active")
	}
	sp.Annotate("k", "v")
	sp.AnnotateInt("n", 1)
	sp.End() // must not panic

	p := NewPlane(Config{Rate: 1})
	sp = p.Tracer("proc").Start(0, HopPublish, "")
	if sp.Active() {
		t.Fatalf("zero-ID span is active")
	}
	sp.End()
	if got := len(p.Gather()); got != 0 {
		t.Fatalf("inactive spans were collected: %d", got)
	}
}

func TestZeroAllocsWhenDisabled(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(0, HopFanout, HopPublish)
		sp.Annotate("topic", "/LVC/1")
		sp.AnnotateInt("shard", 3)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates: %v allocs/op", allocs)
	}
}

func TestSpanCollectAndEndIdempotent(t *testing.T) {
	clock := sim.NewManualClock(time.Unix(100, 0))
	p := NewPlane(Config{Rate: 1, Seed: 1, Clock: clock})
	tr := p.Tracer("was")

	sp := tr.Start(0xbeef, HopPublish, "")
	sp.Annotate("topic", "/LVC/9")
	clock.Advance(3 * time.Millisecond)
	sp.End()
	sp.End() // idempotent: must not double-collect
	sp.Annotate("late", "ignored")

	spans := p.Gather()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	d := spans[0]
	if d.Trace != 0xbeef || d.Hop != HopPublish || d.Proc != "was" || d.Parent != "" {
		t.Fatalf("bad span identity: %+v", d)
	}
	if d.Duration() != 3*time.Millisecond {
		t.Fatalf("duration = %v, want 3ms", d.Duration())
	}
	if d.Attr("topic") != "/LVC/9" || d.Attr("late") != "" {
		t.Fatalf("bad attrs: %+v", d.Attrs)
	}
}

func TestCollectorRingBounds(t *testing.T) {
	c := NewCollector(4)
	for i := 1; i <= 6; i++ {
		c.add(SpanData{Trace: ID(i)})
	}
	snap := c.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(snap))
	}
	for i, d := range snap {
		if want := ID(i + 3); d.Trace != want {
			t.Fatalf("snapshot[%d] = %x, want %x (oldest-first)", i, d.Trace, want)
		}
	}
	if c.Evicted() != 2 {
		t.Fatalf("evicted = %d, want 2", c.Evicted())
	}
}

// pipelineSpans builds the full canonical hop set of one trace, as the real
// pipeline would emit it across processes.
func pipelineSpans(id ID, base time.Time) []SpanData {
	at := func(hop, proc, parent string, off, dur time.Duration, attrs ...Attr) SpanData {
		return SpanData{Trace: id, Hop: hop, Proc: proc, Parent: parent,
			Start: base.Add(off), End: base.Add(off + dur), Attrs: attrs}
	}
	ms := time.Millisecond
	return []SpanData{
		at(HopPublish, "was", "", 0, 10*ms, Attr{"topic", "/LVC/5"}),
		at(HopFanout, "pylon", HopPublish, 1*ms, 2*ms),
		at(HopDeliver, "brass-us-east-0", HopFanout, 3*ms, 5*ms),
		at(HopFetch, "brass-us-east-0", HopDeliver, 4*ms, 3*ms, Attr{"cache", "miss"}),
		at(HopPrivacy, "was", HopFetch, 4*ms, 1*ms),
		at(HopResolve, "was", HopFetch, 5*ms, 1*ms),
		at(HopFlush, "brass-us-east-0", HopFetch, 7*ms, 1*ms, Attr{"stream", "s1"}),
		at(HopRelay, "proxy-us-east-0", HopFlush, 8*ms, 1*ms, Attr{"stream", "s1"}),
		at(HopRelay, "pop-0", HopFlush, 9*ms, 1*ms, Attr{"stream", "s1"}),
		at(HopApply, "device-3", HopFlush, 10*ms, 1*ms, Attr{"stream", "s1"}),
	}
}

func TestAssembleBuildsPipelineTree(t *testing.T) {
	base := time.Unix(1000, 0)
	spans := pipelineSpans(0xabc, base)
	traces := Assemble(spans)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if !tr.Covers(HopPublish, HopFanout, HopDeliver, HopFetch, HopFlush, HopRelay, HopApply) {
		t.Fatalf("trace misses hops: %v", tr.Hops())
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Hop != HopPublish {
		t.Fatalf("want single %s root, got %+v", HopPublish, tr.Roots)
	}
	tree := tr.Tree()
	for _, want := range []string{
		"was.publish [was] topic=/LVC/5",
		"  pylon.fanout [pylon]",
		"      brass.fetch [brass-us-east-0] cache=miss",
		"          edge.relay [pop-0] stream=s1",
		"          device.apply [device-3] stream=s1",
	} {
		if !strings.Contains(tree, want+"\n") {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestAssembleCanonicalUnderReordering(t *testing.T) {
	base := time.Unix(1000, 0)
	spans := pipelineSpans(0xabc, base)
	spans = append(spans, pipelineSpans(0xdef, base.Add(time.Second))...)
	forward := Forest(Assemble(spans))

	reversed := make([]SpanData, len(spans))
	for i, d := range spans {
		reversed[len(spans)-1-i] = d
	}
	if got := Forest(Assemble(reversed)); got != forward {
		t.Fatalf("forest differs under span reordering:\n%s\nvs\n%s", forward, got)
	}
	if !strings.Contains(forward, "--- trace 0 ---") || !strings.Contains(forward, "--- trace 1 ---") {
		t.Fatalf("forest did not render both traces:\n%s", forward)
	}
}

func TestAssembleOrphanBecomesRoot(t *testing.T) {
	// Drop the publish + fanout spans: deliver's parent hop never arrives,
	// so it must surface as an extra root instead of vanishing.
	base := time.Unix(1000, 0)
	spans := pipelineSpans(0x77, base)[2:]
	traces := Assemble(spans)
	if len(traces) != 1 || len(traces[0].Roots) != 1 || traces[0].Roots[0].Hop != HopDeliver {
		t.Fatalf("orphan handling wrong: %+v", traces[0].Roots)
	}
}

func TestChromeExport(t *testing.T) {
	base := time.Unix(1000, 0)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, pipelineSpans(0xabc, base)); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	meta, complete := 0, 0
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Ts < 0 || ev.Pid < 1 || ev.Tid < 1 {
				t.Fatalf("bad X event: %+v", ev)
			}
			if ev.Args["trace"] != "0000000000000abc" {
				t.Fatalf("bad trace arg: %v", ev.Args["trace"])
			}
		}
	}
	// 6 distinct procs → 6 metadata events; 10 spans → 10 X events.
	if meta != 6 || complete != 10 {
		t.Fatalf("got %d metadata + %d complete events, want 6 + 10", meta, complete)
	}
}

func TestBreakdown(t *testing.T) {
	base := time.Unix(1000, 0)
	b := NewBreakdown()
	b.Record(pipelineSpans(0xabc, base))
	stats := b.Stats()
	if s := stats[HopPublish]; s.Count != 1 || s.Mean != 10*time.Millisecond {
		t.Fatalf("publish stat wrong: %+v", s)
	}
	if s := stats[HopRelay]; s.Count != 2 {
		t.Fatalf("relay count = %d, want 2 (two proxy hops)", s.Count)
	}
	ex := b.Hist(HopPublish).Exemplars()
	if len(ex) != 1 || ex[0].TraceID != 0xabc {
		t.Fatalf("exemplar not recorded: %+v", ex)
	}
	table := b.Table()
	if !strings.Contains(table, HopPublish) || !strings.Contains(table, HopApply) {
		t.Fatalf("table missing hops:\n%s", table)
	}
	if strings.Index(table, HopPublish) > strings.Index(table, HopApply) {
		t.Fatalf("table not in pipeline order:\n%s", table)
	}
}

func TestPlaneGatherDeterministic(t *testing.T) {
	clock := sim.NewManualClock(time.Unix(0, 0))
	p := NewPlane(Config{Rate: 1, Clock: clock})
	// Register in non-sorted order; Gather must still come out sorted.
	for _, proc := range []string{"pylon", "was", "brass-0"} {
		sp := p.Tracer(proc).Start(1, HopPublish, "")
		sp.End()
	}
	spans := p.Gather()
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Proc != "brass-0" || spans[1].Proc != "pylon" || spans[2].Proc != "was" {
		t.Fatalf("gather not sorted by proc: %s %s %s", spans[0].Proc, spans[1].Proc, spans[2].Proc)
	}
	var nilPlane *Plane
	if nilPlane.Tracer("x") != nil || nilPlane.Gather() != nil || nilPlane.Evicted() != 0 {
		t.Fatalf("nil plane not inert")
	}
	if got := p.Procs(); len(got) != 3 || got[0] != "brass-0" {
		t.Fatalf("procs wrong: %v", got)
	}
}

func TestParentChain(t *testing.T) {
	want := map[string]string{
		HopPublish: "", HopFanout: HopPublish, HopDeliver: HopFanout,
		HopFetch: HopDeliver, HopPrivacy: HopFetch, HopResolve: HopFetch,
		HopFlush: HopFetch, HopRelay: HopFlush, HopApply: HopFlush,
		"unknown": "",
	}
	for hop, parent := range want {
		if got := Parent(hop); got != parent {
			t.Fatalf("Parent(%s) = %q, want %q", hop, got, parent)
		}
	}
}
