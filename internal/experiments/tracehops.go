package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/core"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/trace"
)

// TracedLVCRun boots a fully wired cluster with the tracing plane sampling
// at rate, subscribes viewers to one live video through the full edge path
// (device → POP → reverse proxy → BRASS), and posts events comments from a
// non-viewer user. Each comment is pushed to every viewer before the next
// is posted, so every sampled mutation's spans are closed — publish through
// device apply — by the time the plane is gathered. cmd/brtrace drives its
// quickstart and lvc workloads through this same function.
func TracedLVCRun(seed int64, viewers, events int, rate float64) (*trace.Plane, error) {
	plane := trace.NewPlane(trace.Config{Rate: rate, Seed: seed})
	cfg := core.DefaultConfig()
	cfg.Graph.Users = 100
	cfg.Graph.BlockProb = 0 // privacy denials would make delivery counts workload-dependent
	cfg.Graph.Seed = seed
	cfg.Trace = plane
	c, err := core.NewCluster(cfg, nil)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	c.Apps.LVC.RateLimit = 5 * time.Millisecond
	c.Apps.LVC.RankBeforePublish = false
	c.Apps.LVC.MinScore = 0

	const videoID = 7
	sched := sim.RealClock{}

	// Viewers subscribe through the edge; a per-stream counter tracks how
	// many comment pushes each has applied.
	counters := make([]*int64, viewers)
	for i := 0; i < viewers; i++ {
		d := c.NewDevice(socialgraph.UserID(i + 1))
		defer d.Close()
		if err := d.Connect(); err != nil {
			return nil, err
		}
		st, err := d.Subscribe(apps.AppLiveComments,
			fmt.Sprintf("liveVideoComments(videoID: %d)", videoID), nil)
		if err != nil {
			return nil, err
		}
		n := new(int64)
		counters[i] = n
		go func() {
			for range st.Updates {
				atomic.AddInt64(n, 1)
			}
		}()
	}
	if !c.Pylon.WaitForSubscriber(sched, apps.LVCTopic(videoID), 10*time.Second) {
		return nil, fmt.Errorf("tracehops: no BRASS subscribed to the video topic")
	}

	commenter := c.NewDevice(99)
	defer commenter.Close()
	for ev := 0; ev < events; ev++ {
		if _, err := commenter.Mutate(fmt.Sprintf(
			`postComment(videoID: %d, text: "comment %d")`, videoID, ev)); err != nil {
			return nil, err
		}
		want := int64(ev + 1)
		ok := WaitUntil(sched, 15*time.Second, func() bool {
			for _, n := range counters {
				if atomic.LoadInt64(n) < want {
					return false
				}
			}
			return true
		})
		if !ok {
			return nil, fmt.Errorf("tracehops: comment %d never reached every viewer", ev)
		}
	}
	c.Quiesce()
	return plane, nil
}

// WaitUntil polls cond through the scheduler until it holds or d elapses.
func WaitUntil(sched sim.Scheduler, d time.Duration, cond func() bool) bool {
	const step = time.Millisecond
	for elapsed := time.Duration(0); elapsed < d; elapsed += step {
		if cond() {
			return true
		}
		sim.Sleep(sched, step)
	}
	return cond()
}

// edgePathHops is the hop set a trace must cover to count as a complete
// end-to-end edge-path trace: publish → fan-out → payload fetch → flush →
// proxy relay → device apply.
var edgePathHops = []string{
	trace.HopPublish, trace.HopFanout, trace.HopFetch,
	trace.HopFlush, trace.HopRelay, trace.HopApply,
}

// TraceHops runs the traced LVC workload on the live stack and reports the
// per-hop latency breakdown the tracing plane measured, alongside trace
// completeness. The per-hop latencies are the measured decomposition of the
// end-to-end delivery latency whose distribution Fig 9 reports; the trace
// trees behind them are what cmd/brtrace renders.
func TraceHops(seed int64) Result {
	r := Result{ID: "tracehops", Title: "end-to-end tracing plane: per-hop latency breakdown (live stack)"}
	plane, err := TracedLVCRun(seed, 3, 20, 1)
	if err != nil {
		r.AddRow("error", "-", err.Error(), "")
		return r
	}
	spans := plane.Gather()
	traces := trace.Assemble(spans)
	complete := 0
	for _, t := range traces {
		if t.Covers(edgePathHops...) {
			complete++
		}
	}
	breakdown := trace.NewBreakdown()
	breakdown.Record(spans)
	stats := breakdown.Stats()
	for _, hop := range []string{
		trace.HopPublish, trace.HopFanout, trace.HopDeliver, trace.HopFetch,
		trace.HopPrivacy, trace.HopResolve, trace.HopFlush, trace.HopRelay, trace.HopApply,
	} {
		s, ok := stats[hop]
		if !ok {
			continue
		}
		r.AddRow("hop "+hop, "-",
			fmt.Sprintf("n=%d p50=%v p95=%v", s.Count, s.P50, s.P95),
			"cf. Fig 9 component latencies")
	}
	r.AddRow("traces assembled", "-", fmt.Sprintf("%d", len(traces)), "rate-1 sampling, 20 comments × 3 viewers")
	r.AddRow("complete edge-path traces", "-", fmt.Sprintf("%d", complete),
		"cover publish→fanout→fetch→flush→relay→apply")
	r.AddRow("spans evicted", "-", fmt.Sprintf("%d", plane.Evicted()),
		"0 means the collector rings held the whole run")
	return r
}
