// Package bench holds the hot-path benchmark bodies shared by the root
// `go test -bench` suite and cmd/brbench's machine-readable BENCH report.
// Keeping them in one non-test package means the numbers in BENCH_*.json
// are produced by exactly the code `go test -bench` runs, and that the
// bodies are subject to brlint (no wall-clock polling — waits go through
// pylon.WaitForSubscriber or channel receives).
package bench

import (
	"bytes"
	"fmt"
	"net"
	"strconv"
	"testing"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/brass"
	"bladerunner/internal/burst"
	"bladerunner/internal/kvstore"
	"bladerunner/internal/pylon"
	"bladerunner/internal/region"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
	"bladerunner/internal/trace"
	"bladerunner/internal/was"
)

// NewKV builds the 3-node, 3-replica cluster every benchmark publishes
// through.
func NewKV() *kvstore.Cluster {
	nodes := []*kvstore.Node{
		kvstore.NewNode("a", "us"), kvstore.NewNode("b", "eu"), kvstore.NewNode("c", "ap"),
	}
	return kvstore.MustNewCluster(nodes, 3)
}

// Sink is a delivery-counting pylon.Subscriber.
type Sink struct {
	id string
	n  int
}

func NewSink(id string) *Sink { return &Sink{id: id} }
func (s *Sink) ID() string    { return s.id }

// 0 allocs/op publish gates it exists to measure.
//
//brlint:hotpath the bench harness subscriber must not perturb the
func (s *Sink) Deliver(_ pylon.Event) { s.n++ }
func (s *Sink) Count() int            { return s.n }

// benchAdmission returns a pylon config with publish admission ENABLED at
// a rate no benchmark can exhaust. The zero-alloc gates on the hot paths
// run with the overload plane on: the token-bucket refill on every publish
// must cost nothing, or the plane is not free when idle.
func benchAdmission(cfg pylon.Config) pylon.Config {
	cfg.AdmitRate = 1e7
	cfg.AdmitBurst = 1e6
	cfg.AdmitSeed = 1
	return cfg
}

// newBenchPlane wraps an origin pylon in a two-region replication plane so
// the publish benchmarks pay the region plane's hot-path cost: origin
// delivery plus one per-link enqueue. The remote region gets its own pylon
// with subscribe applied per topic so its (off-goroutine) delivery also
// rides the cached fan-out path. Replication lag is zero — a lag
// distribution would make the link worker arm timers, and the worker's
// allocations count against the benchmark's global 0 allocs/op gate.
func newBenchPlane(b *testing.B, origin *pylon.Service, topics ...pylon.Topic) *region.Plane {
	topo, err := region.NewTopology(region.Config{Regions: []string{"east", "west"}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	remote := pylon.MustNew(benchAdmission(pylon.DefaultConfig()), NewKV())
	for _, topic := range topics {
		s := NewSink("west-" + string(topic))
		remote.RegisterHost(s)
		if err := remote.Subscribe(topic, s.ID()); err != nil {
			b.Fatal(err)
		}
	}
	plane, err := region.NewPlane(topo, nil, map[string]*pylon.Service{"east": origin, "west": remote})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(plane.Close)
	return plane
}

// PylonPublish measures one publish to a single-subscriber topic — the
// per-event floor of the fan-out path — with admission control enabled and
// the event routed through the two-region replication plane.
func PylonPublish(b *testing.B) {
	pyl := pylon.MustNew(benchAdmission(pylon.DefaultConfig()), NewKV())
	sink := NewSink("sink")
	pyl.RegisterHost(sink)
	if err := pyl.Subscribe("/bench", "sink"); err != nil {
		b.Fatal(err)
	}
	plane := newBenchPlane(b, pyl, "/bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plane.Publish(pylon.Event{Topic: "/bench", Ref: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// HotTopicFanout measures one publish to a topic with 1000 subscribed
// hosts — the paper's hot-event shape (§3.2) and the case the subscriber
// cache exists for: repeat publishes must not re-read the replicated
// subscription store per event. Admission control is enabled (at a
// non-shedding rate) so the alloc gate covers the plane.
func HotTopicFanout(b *testing.B) {
	HotTopicFanoutConfig(b, benchAdmission(pylon.DefaultConfig()))
}

// HotTopicFanoutConfig is HotTopicFanout with a caller-supplied Pylon
// config, so the hotfanout experiment can ablate the subscriber cache.
// Publishes route through the two-region plane; the asserted fan-out count
// is the synchronous origin-region one.
func HotTopicFanoutConfig(b *testing.B, cfg pylon.Config) {
	const subscribers = 1000
	pyl := pylon.MustNew(cfg, NewKV())
	topic := pylon.Topic("/bench/hot")
	for i := 0; i < subscribers; i++ {
		s := NewSink(fmt.Sprintf("sink-%d", i))
		pyl.RegisterHost(s)
		if err := pyl.Subscribe(topic, s.ID()); err != nil {
			b.Fatal(err)
		}
	}
	plane := newBenchPlane(b, pyl, topic)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := plane.Publish(pylon.Event{Topic: topic, Ref: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if n != subscribers {
			b.Fatalf("fanout reached %d of %d subscribers", n, subscribers)
		}
	}
}

// BURSTFrameRoundTrip measures encoding and decoding one batch frame with a
// 256-byte payload delta.
func BURSTFrameRoundTrip(b *testing.B) {
	payload, err := burst.EncodePayload(burst.Batch{Deltas: []burst.Delta{
		burst.PayloadDelta(7, bytes.Repeat([]byte("x"), 256)),
	}})
	if err != nil {
		b.Fatal(err)
	}
	frame := burst.Frame{Type: burst.FrameBatch, SID: 42, Payload: payload}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := burst.WriteFrame(&buf, frame); err != nil {
			b.Fatal(err)
		}
		if _, err := burst.ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// EndToEndCommentPush measures one comment's full live-stack trip: WAS
// mutation → TAO write → Pylon publish → BRASS filter+fetch → BURST push →
// client receive.
func EndToEndCommentPush(b *testing.B) {
	endToEndCommentPush(b, nil)
}

// EndToEndCommentPushHops is EndToEndCommentPush with the tracing plane on
// at rate 1: every op's hops are measured, and the per-hop latency
// sub-histograms (publish, fan-out, payload fetch, push) are folded into a
// Breakdown — with trace-ID exemplars — that cmd/brbench attaches to
// BENCH_*.json. The hop means are also reported as custom benchmark
// metrics, so `go test -bench EndToEndCommentPushHops` prints the
// breakdown inline.
func EndToEndCommentPushHops(b *testing.B) map[string]trace.HopStat {
	// 1<<16 spans per process ring: enough that a typical benchtime keeps
	// every hop of every op (the WAS collects three spans per op).
	plane := trace.NewPlane(trace.Config{Rate: 1, Capacity: 1 << 16})
	endToEndCommentPush(b, plane)
	breakdown := trace.NewBreakdown()
	breakdown.Record(plane.Gather())
	stats := breakdown.Stats()
	for hop, s := range stats {
		b.ReportMetric(float64(s.Mean), hop+"-ns")
	}
	return stats
}

func endToEndCommentPush(b *testing.B, plane *trace.Plane) {
	pyl := pylon.MustNew(pylon.DefaultConfig(), NewKV())
	store := tao.MustNewStore(tao.DefaultConfig(), nil)
	graph := socialgraph.MustGenerate(socialgraph.Config{Users: 100, MeanFriends: 5, Seed: 1})
	w := was.New(store, graph, pyl, nil)
	if plane != nil {
		w.Sampler = plane.Sampler
		w.Tracer = plane.Tracer("was")
		pyl.Tracer = plane.Tracer("pylon")
	}
	suite := apps.NewSuite(w)

	host := brass.NewHost(brass.HostConfig{
		ID: "bench-host", Region: "us", Tracer: plane.Tracer("bench-host"),
	}, pyl, w, nil)
	defer host.Close()
	suite.RegisterBRASS(host)

	cliConn, hostConn := net.Pipe()
	cli := burst.NewClient("bench-device", cliConn, nil)
	defer cli.Close()
	host.AcceptSession("bench", hostConn)
	st, err := cli.Subscribe(burst.Subscribe{Header: burst.Header{
		burst.HdrApp:          apps.AppFeedComments,
		burst.HdrSubscription: "feedPostComments(postID: 1)",
		burst.HdrUser:         "1",
	}})
	if err != nil {
		b.Fatal(err)
	}
	if !pyl.WaitForSubscriber(nil, apps.PostTopic(1), 5*time.Second) {
		b.Fatal("BRASS host never subscribed to the post topic")
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Mutate(2, `postFeedComment(postID: 1, text: "`+strconv.Itoa(i)+`")`); err != nil {
			b.Fatal(err)
		}
		// Wait for the push to arrive at the device.
		for {
			batch, ok := <-st.Events
			if !ok {
				b.Fatal("stream closed")
			}
			done := false
			for _, d := range batch {
				if d.Type == burst.DeltaPayload {
					done = true
				}
			}
			if done {
				break
			}
		}
	}
}
