// Package timeuse is a brlint fixture for the no-direct-time rule: every
// wall-clock entry point of the time package must be flagged outside
// internal/sim, while pure time.Time arithmetic and suppressed uses pass.
package timeuse

import "time"

func Bad() time.Time {
	t := time.Now()              // want `no-direct-time: time.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `no-direct-time: time.Sleep reads the wall clock`
	return t
}

func BadAfter() {
	<-time.After(time.Second)              // want `no-direct-time: time.After reads the wall clock`
	time.AfterFunc(time.Second, func() {}) // want `no-direct-time: time.AfterFunc reads the wall clock`
}

func BadSince(start time.Time) time.Duration {
	return time.Since(start) // want `no-direct-time: time.Since reads the wall clock`
}

func BadTicker() *time.Ticker {
	return time.NewTicker(time.Second) // want `no-direct-time: time.NewTicker reads the wall clock`
}

// Allowed demonstrates the escape hatch: the suppression names the rule and
// carries a reason, so the call on the next line is absorbed.
func Allowed() time.Time {
	//brlint:allow(no-direct-time) fixture: demo output wants the real wall clock
	return time.Now()
}

// Methods shows that time.Time methods sharing names with the denied
// package-level functions (After, Sub) are pure arithmetic and pass.
func Methods(a, b time.Time) bool {
	return a.After(b) && a.Sub(b) > 0
}

// Constructors shows that deterministic time constructors pass.
func Constructors() time.Time {
	return time.Date(2021, time.October, 26, 0, 0, 0, 0, time.UTC)
}
