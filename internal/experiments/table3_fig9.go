package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"bladerunner/internal/metrics"
)

// Table3 regenerates the sub-operation latency table by driving sampled
// updates through the component models and measuring each stage (plus the
// subscription-registration path), exactly as the paper's 0.1% sampling
// did.
func Table3(seed int64, samples int) Result {
	rng := rand.New(rand.NewSource(seed))
	m := DefaultLatencies()

	wasLVC := metrics.NewHistogram()
	wasOther := metrics.NewHistogram()
	pylonSmall := metrics.NewHistogram() // <10k subscribers
	pylonLarge := metrics.NewHistogram() // >=10k subscribers
	brassHist := metrics.NewHistogram()
	brassWASQ := metrics.NewHistogram()
	subReg := metrics.NewHistogram()
	subNAEU := metrics.NewHistogram()
	subAll := metrics.NewHistogram()

	for i := 0; i < samples; i++ {
		wasLVC.Observe(m.WASRanking.Sample(rng) + m.WASBase.Sample(rng))
		wasOther.Observe(m.WASBaseOther.Sample(rng))
		pylonSmall.Observe(m.PylonFanout.Sample(rng))
		pylonLarge.Observe(m.PylonFanout.Sample(rng) + m.PylonPerSubscriber)
		q := m.BRASSQueryWAS.Sample(rng)
		brassWASQ.Observe(q)
		brassHist.Observe(q + m.BRASSProcess.Sample(rng))
		subReg.Observe(m.SubscribeRegister.Sample(rng))
		subNAEU.Observe(m.MobileSubscribeNAEU.Sample(rng))
		subAll.Observe(m.MobileSubscribeAll.Sample(rng))
	}

	ms := func(d time.Duration) string { return fmt.Sprintf("%dms", d.Milliseconds()) }
	r := Result{ID: "table3", Title: "Latency of Bladerunner sub-operations (means)"}
	r.AddRow("WAS update -> publish (LVC)", "2000ms", ms(wasLVC.Mean()),
		fmt.Sprintf("ranking dominates; 1790ms of the total"))
	r.AddRow("WAS update -> publish (other)", "240ms", ms(wasOther.Mean()), "")
	r.AddRow("Pylon publish -> BRASSes (<10k subs)", "100ms", ms(pylonSmall.Mean()),
		fmt.Sprintf("p90=%s p99=%s (paper: 160ms/310ms)", ms(pylonSmall.Percentile(90)), ms(pylonSmall.Percentile(99))))
	r.AddRow("Pylon publish -> BRASSes (>=10k subs)", "109ms", ms(pylonLarge.Mean()), "")
	r.AddRow("BRASS update -> device send", "76ms", ms(brassHist.Mean()),
		fmt.Sprintf("WAS query portion %s (paper: 60ms)", ms(brassWASQ.Mean())))
	r.AddRow("subscription -> replicated on Pylon", "73ms", ms(subReg.Mean()), "backend only")
	r.AddRow("device subscribe (NA+EU)", "490ms", ms(subNAEU.Mean()),
		fmt.Sprintf("p90=%s (paper: 540ms)", ms(subNAEU.Percentile(90))))
	r.AddRow("device subscribe (all countries)", "970ms", ms(subAll.Mean()),
		fmt.Sprintf("p90=%s (paper: 1360ms)", ms(subAll.Percentile(90))))
	return r
}

// Figure9 regenerates the per-component latency CDFs for TypingIndicator
// and LiveVideoComments: edge→WAS publish, BRASS host processing,
// BRASS→device push, and the end-to-end total.
func Figure9(seed int64, samples int) Result {
	rng := rand.New(rand.NewSource(seed))
	m := DefaultLatencies()
	stream := DefaultStreamModels()

	hists := map[string]*metrics.Histogram{}
	for _, name := range []string{
		"publish-ti", "publish-lvc",
		"brass-ti", "brass-lvc",
		"push-ti", "push-lvc",
		"total-ti", "total-lvc",
	} {
		hists[name] = metrics.NewHistogram()
	}

	for i := 0; i < samples; i++ {
		// TypingIndicator: no ranking, no buffering — but privacy checks
		// and device transformations via backend calls.
		pubTI := m.EdgeToWAS.Sample(rng)
		brassTI := m.BRASSQueryWAS.Sample(rng) + m.BRASSProcess.Sample(rng) + m.PylonFanout.Sample(rng)
		pushTI := m.PushToDevice.Sample(rng)
		hists["publish-ti"].Observe(pubTI)
		hists["brass-ti"].Observe(brassTI)
		hists["push-ti"].Observe(pushTI)
		hists["total-ti"].Observe(pubTI + brassTI + pushTI)

		// LVC: ranking at the WAS, buffering + rate limiting at the
		// BRASS, pushes competing with video bytes at the edge.
		pubLVC := m.EdgeToWAS.Sample(rng)
		wait := stream.BufferWait.Sample(rng)
		if wait > stream.BufferCap {
			wait = stream.BufferCap
		}
		brassLVC := m.WASRanking.Sample(rng) + m.BRASSQueryWAS.Sample(rng) +
			m.BRASSProcess.Sample(rng) + m.PylonFanout.Sample(rng) + wait
		pushLVC := m.LVCPushToDevice.Sample(rng)
		hists["publish-lvc"].Observe(pubLVC)
		hists["brass-lvc"].Observe(brassLVC)
		hists["push-lvc"].Observe(pushLVC)
		hists["total-lvc"].Observe(pubLVC + brassLVC + pushLVC)
	}

	ms := func(d time.Duration) string { return fmt.Sprintf("%dms", d.Milliseconds()) }
	r := Result{ID: "fig9", Title: "Update latency CDFs: TypingIndicator vs LiveVideoComments"}
	r.AddRow("publish edge->WAS p50 (TI)", "~55ms", ms(hists["publish-ti"].Percentile(50)),
		"paper fig: 10-260ms band")
	r.AddRow("publish edge->WAS p99 (TI)", "<260ms", ms(hists["publish-ti"].Percentile(99)), "")
	r.AddRow("BRASS processing p50 (TI)", "~180ms", ms(hists["brass-ti"].Percentile(50)),
		"includes Pylon + backend calls")
	r.AddRow("BRASS processing p50 (LVC)", ">2000ms", ms(hists["brass-lvc"].Percentile(50)),
		"ranking + buffering dominate (log-scale fig)")
	r.AddRow("BRASS->device p50 (TI)", "~220ms", ms(hists["push-ti"].Percentile(50)), "")
	r.AddRow("BRASS->device p50 (LVC)", "~600ms", ms(hists["push-lvc"].Percentile(50)),
		"competes with video bandwidth at the edge")
	r.AddRow("total p50 (TI)", "<1s", ms(hists["total-ti"].Percentile(50)), "")
	r.AddRow("total p50 (LVC)", ">3s", ms(hists["total-lvc"].Percentile(50)), "")

	for name, h := range hists {
		r.AddSeries(name, cdfSeries(h))
	}
	return r
}

// cdfSeries renders a histogram as (fraction, milliseconds) CDF points,
// matching the figure's axes.
func cdfSeries(h *metrics.Histogram) []SeriesPoint {
	pts := h.CDF(100)
	out := make([]SeriesPoint, len(pts))
	for i, p := range pts {
		out[i] = SeriesPoint{X: p.Fraction, Y: float64(p.Value.Milliseconds())}
	}
	return out
}
