package core

import (
	"fmt"

	"bladerunner/internal/apps"
	"bladerunner/internal/brass"
	"bladerunner/internal/durlog"
	"bladerunner/internal/edge"
	"bladerunner/internal/kvstore"
	"bladerunner/internal/pylon"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
	"bladerunner/internal/was"
)

// Per-tier constructors. NewCluster assembles every tier in one process;
// cmd/brnode runs exactly one of these per process and joins them over
// the control protocol (internal/ctrl). Both paths build each tier
// through the same constructor, so a multi-process deployment is the
// in-process cluster cut at its interface seams — brass.PubSub,
// brass.Backend, was.Publisher — and nothing else.

// PylonTier is the pub/sub tier: the subscription KV cluster and the
// Pylon service over it.
type PylonTier struct {
	KV    *kvstore.Cluster
	Pylon *pylon.Service
}

// NewPylonTier builds the subscription store and Pylon for the configured
// regions (one shared cluster whose KV nodes spread across the region
// labels — the single-region-plane shape; the geo plane builds one tier
// per region instead).
func NewPylonTier(cfg Config) (*PylonTier, error) {
	kv, err := newKVCluster(cfg, cfg.Regions)
	if err != nil {
		return nil, err
	}
	pyl, err := pylon.New(cfg.Pylon, kv)
	if err != nil {
		return nil, err
	}
	return &PylonTier{KV: kv, Pylon: pyl}, nil
}

// newKVCluster builds the subscription KV nodes for the given regions.
func newKVCluster(cfg Config, regions []string) (*kvstore.Cluster, error) {
	var nodes []*kvstore.Node
	for _, r := range regions {
		for i := 0; i < cfg.KVNodesPerRegion; i++ {
			nodes = append(nodes, kvstore.NewNode(
				fmt.Sprintf("kv-%s-%d", r, i), r))
		}
	}
	replicas := cfg.KVReplicas
	if replicas > len(nodes) {
		replicas = len(nodes)
	}
	return kvstore.NewCluster(nodes, replicas)
}

// WASTier is the backend tier: the social graph, TAO, the WAS with every
// application's resolvers registered, and the app suite.
type WASTier struct {
	Graph *socialgraph.Graph
	TAO   *tao.Store
	WAS   *was.Server
	Apps  *apps.Suite
}

// NewWASTier builds the backend. pyl is the directly reachable Pylon
// (in-process); fanout, when non-nil, overrides it as the publish sink —
// the region plane in-process, a ctrl.PylonClient across processes. With
// fanout set, pyl may be nil.
func NewWASTier(cfg Config, pyl *pylon.Service, fanout was.Publisher, sched sim.Scheduler) (*WASTier, error) {
	graph, err := socialgraph.Generate(cfg.Graph)
	if err != nil {
		return nil, err
	}
	store, err := tao.NewStore(cfg.TAO, sched)
	if err != nil {
		return nil, err
	}
	w := was.New(store, graph, pyl, sched)
	w.Fanout = fanout
	return &WASTier{Graph: graph, TAO: store, WAS: w, Apps: apps.NewSuite(w)}, nil
}

// BrassTier is one region's worth of BRASS hosts for one process.
type BrassTier struct {
	Hosts []*brass.Host
}

// NewBrassTier builds cfg.BRASSHostsPerRegion hosts homed in region, each
// consuming Pylon through pubsub and the WAS through backend (either the
// in-process services or ctrl clients), with the suite's application
// halves registered. idPrefix disambiguates hosts when several processes
// serve the same region ("" uses the in-process naming brass-<region>-<i>).
func NewBrassTier(cfg Config, region, idPrefix string, suite *apps.Suite, pubsub brass.PubSub, backend brass.Backend, sched sim.Scheduler) *BrassTier {
	t := &BrassTier{}
	for i := 0; i < cfg.BRASSHostsPerRegion; i++ {
		id := fmt.Sprintf("%sbrass-%s-%d", idPrefix, region, i)
		h := brass.NewHost(brassHostConfig(cfg, id, region), pubsub, backend, sched)
		suite.RegisterBRASS(h)
		t.Hosts = append(t.Hosts, h)
	}
	return t
}

// brassHostConfig maps the cluster config onto one host's HostConfig.
func brassHostConfig(cfg Config, id, region string) brass.HostConfig {
	hcfg := brass.HostConfig{
		ID: id, Region: region, StickyRouting: cfg.StickyRouting,
		Tracer:             cfg.Trace.Tracer(id),
		LoopQueueDepth:     cfg.Overload.LoopQueueDepth,
		DeliverRate:        cfg.Overload.DeliverRate,
		DeliverBurst:       cfg.Overload.DeliverBurst,
		StreamDeliverRate:  cfg.Overload.StreamDeliverRate,
		StreamDeliverBurst: cfg.Overload.StreamDeliverBurst,
	}
	if cfg.Durlog != nil {
		hcfg.Durlog = &durlog.Config{
			HotBytes:       cfg.Durlog.HotBytes,
			Segments:       cfg.Durlog.Segments,
			SegmentEntries: cfg.Durlog.SegmentEntries,
			Retention:      cfg.Durlog.Retention,
		}
		hcfg.DurlogApps = cfg.Durlog.Apps
		if len(hcfg.DurlogApps) == 0 {
			hcfg.DurlogApps = []string{apps.AppMessenger}
		}
	}
	return hcfg
}

// NewPOPTier builds one POP proxy that routes streams (sticky-first)
// round-robin across brassTargets through dialer. The multi-process
// deployment folds the reverse-proxy tier into the POP: with one process
// per tier there is no co-located proxy fleet to fan through, and the
// POP's routing/sticky behaviour is identical.
func NewPOPTier(id string, dialer edge.Dialer, brassTargets []string) *edge.Proxy {
	router := edge.StickyRouter{Fallback: edge.NewRoundRobinRouter(brassTargets...)}
	return edge.NewProxy(id, dialer, router)
}
