package burst

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// echoServer subscribes streams and records events for assertions.
type echoServer struct {
	mu      sync.Mutex
	streams []*ServerStream
	subs    []Subscribe
	cancels []Cancel
	acks    []Ack
	closed  bool
}

func (e *echoServer) OnSubscribe(st *ServerStream, sub Subscribe) {
	e.mu.Lock()
	e.streams = append(e.streams, st)
	e.subs = append(e.subs, sub)
	e.mu.Unlock()
}

func (e *echoServer) OnCancel(st *ServerStream, c Cancel) {
	e.mu.Lock()
	e.cancels = append(e.cancels, c)
	e.mu.Unlock()
}

func (e *echoServer) OnAck(st *ServerStream, a Ack) {
	e.mu.Lock()
	e.acks = append(e.acks, a)
	e.mu.Unlock()
}

func (e *echoServer) OnSessionClose(streams []*ServerStream, err error) {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
}

func (e *echoServer) stream(i int) *ServerStream {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i >= len(e.streams) {
		return nil
	}
	return e.streams[i]
}

func newClientServer(t *testing.T) (*Client, *ServerSession, *echoServer) {
	t.Helper()
	a, b := pipePair()
	cli := NewClient("device", a, nil)
	srv := &echoServer{}
	ss := NewServerSession("brass", b, srv)
	t.Cleanup(func() { cli.Close(); ss.Close() })
	return cli, ss, srv
}

func recvBatch(t *testing.T, st *ClientStream) []Delta {
	t.Helper()
	select {
	case b, ok := <-st.Events:
		if !ok {
			t.Fatal("stream closed while expecting batch")
		}
		return b
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for batch")
		return nil
	}
}

func TestSubscribeAndDeliver(t *testing.T) {
	cli, _, srv := newClientServer(t)
	st, err := cli.Subscribe(Subscribe{Header: Header{HdrApp: "lvc", HdrTopic: "/LVC/1"}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "server sees stream", func() bool { return srv.stream(0) != nil })
	ss := srv.stream(0)
	if got := ss.Request().Header[HdrTopic]; got != "/LVC/1" {
		t.Errorf("server topic = %q", got)
	}
	if err := ss.SendBatch(PayloadDelta(1, []byte("hello")), PayloadDelta(2, []byte("world"))); err != nil {
		t.Fatal(err)
	}
	batch := recvBatch(t, st)
	if len(batch) != 2 || string(batch[0].Payload) != "hello" || string(batch[1].Payload) != "world" {
		t.Errorf("batch = %+v", batch)
	}
	if st.LastSeq() != 2 {
		t.Errorf("LastSeq = %d", st.LastSeq())
	}
}

func TestMultipleIndependentStreams(t *testing.T) {
	cli, _, srv := newClientServer(t)
	st1, _ := cli.Subscribe(Subscribe{Header: Header{HdrTopic: "/a"}})
	st2, _ := cli.Subscribe(Subscribe{Header: Header{HdrTopic: "/b"}})
	if st1.SID() == st2.SID() {
		t.Fatal("stream ids collide")
	}
	waitFor(t, "two streams", func() bool { return srv.stream(1) != nil })
	// Deliver only to stream 2.
	if err := srv.stream(1).SendBatch(PayloadDelta(0, []byte("b-data"))); err != nil {
		t.Fatal(err)
	}
	batch := recvBatch(t, st2)
	if string(batch[0].Payload) != "b-data" {
		t.Errorf("stream2 got %q", batch[0].Payload)
	}
	select {
	case b := <-st1.Events:
		t.Errorf("stream1 unexpectedly got %+v", b)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestRewriteUpdatesClientStateInvisibly(t *testing.T) {
	cli, _, srv := newClientServer(t)
	st, _ := cli.Subscribe(Subscribe{Header: Header{HdrApp: "lvc", HdrTopic: "/LVC/1"}})
	waitFor(t, "stream", func() bool { return srv.stream(0) != nil })
	ss := srv.stream(0)
	// Sticky routing: BRASS pins itself into the header.
	if err := ss.RewriteHeaderField(HdrStickyBRASS, "brass-42"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rewrite applied", func() bool {
		return st.Request().Header[HdrStickyBRASS] == "brass-42"
	})
	// The rewrite must NOT surface as an application event.
	select {
	case b := <-st.Events:
		t.Errorf("rewrite surfaced to application: %+v", b)
	case <-time.After(50 * time.Millisecond):
	}
	// Original fields preserved.
	req := st.Request()
	if req.Header[HdrTopic] != "/LVC/1" || req.Header[HdrApp] != "lvc" {
		t.Errorf("rewrite lost fields: %+v", req.Header)
	}
	// Server's own copy tracks the rewrite too.
	if got := ss.Request().Header[HdrStickyBRASS]; got != "brass-42" {
		t.Errorf("server copy = %q", got)
	}
}

func TestRewriteBodyReplacement(t *testing.T) {
	cli, _, srv := newClientServer(t)
	st, _ := cli.Subscribe(Subscribe{Header: Header{HdrApp: "m"}, Body: []byte("orig")})
	waitFor(t, "stream", func() bool { return srv.stream(0) != nil })
	if err := srv.stream(0).Rewrite(nil, []byte("new-body")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "body rewritten", func() bool { return string(st.Request().Body) == "new-body" })
	// Header untouched by nil header rewrite.
	if st.Request().Header[HdrApp] != "m" {
		t.Errorf("header lost: %+v", st.Request().Header)
	}
}

func TestResumptionViaRewrite(t *testing.T) {
	cli, _, srv := newClientServer(t)
	st, _ := cli.Subscribe(Subscribe{Header: Header{HdrApp: "msgr", HdrResumeSeq: "0"}})
	waitFor(t, "stream", func() bool { return srv.stream(0) != nil })
	ss := srv.stream(0)
	// Deliver payloads 1..3, each followed by a resume-token rewrite.
	for seq := uint64(1); seq <= 3; seq++ {
		if err := ss.SendBatch(PayloadDelta(seq, []byte("m"))); err != nil {
			t.Fatal(err)
		}
		if err := ss.RewriteHeaderField(HdrResumeSeq, "3"); err != nil && seq == 3 {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		recvBatch(t, st)
	}
	waitFor(t, "resume token", func() bool { return st.Request().Header[HdrResumeSeq] == "3" })
	// After a failure the device resubscribes with the stored request —
	// it carries the resume token without the app tracking it.
	if st.Request().Header[HdrResumeSeq] != "3" {
		t.Errorf("resume seq = %q", st.Request().Header[HdrResumeSeq])
	}
}

func TestClientCancelReachesServer(t *testing.T) {
	cli, ss, srv := newClientServer(t)
	st, _ := cli.Subscribe(Subscribe{Header: Header{HdrApp: "x"}})
	waitFor(t, "stream", func() bool { return srv.stream(0) != nil })
	if err := st.Cancel("user scrolled away"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cancel", func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.cancels) == 1
	})
	srv.mu.Lock()
	reason := srv.cancels[0].Reason
	srv.mu.Unlock()
	if reason != "user scrolled away" {
		t.Errorf("cancel reason = %q", reason)
	}
	if got := len(ss.Streams()); got != 0 {
		t.Errorf("server still tracks %d streams", got)
	}
	// Sending on the cancelled stream fails server-side.
	sst := srv.stream(0)
	if err := sst.SendBatch(PayloadDelta(0, nil)); !errors.Is(err, ErrStreamClosed) {
		t.Errorf("send after cancel: %v", err)
	}
}

func TestServerTerminateClosesClientStream(t *testing.T) {
	cli, _, srv := newClientServer(t)
	st, _ := cli.Subscribe(Subscribe{Header: Header{HdrApp: "x"}})
	waitFor(t, "stream", func() bool { return srv.stream(0) != nil })
	if err := srv.stream(0).Terminate("redirect"); err != nil {
		t.Fatal(err)
	}
	batch := recvBatch(t, st)
	if batch[0].Type != DeltaTermination || batch[0].Reason != "redirect" {
		t.Errorf("termination = %+v", batch[0])
	}
	// Channel closes after termination.
	if _, ok := <-st.Events; ok {
		t.Error("stream channel still open after termination")
	}
	if got := len(cli.Streams()); got != 0 {
		t.Errorf("client still tracks %d streams", got)
	}
}

func TestAckFlowsUpstream(t *testing.T) {
	cli, _, srv := newClientServer(t)
	st, _ := cli.Subscribe(Subscribe{Header: Header{HdrApp: "msgr"}})
	waitFor(t, "stream", func() bool { return srv.stream(0) != nil })
	if err := st.Ack(17); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "ack", func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.acks) == 1 && srv.acks[0].Seq == 17
	})
}

func TestSessionFailureSignalsAllStreams(t *testing.T) {
	a, b := pipePair()
	closed := make(chan error, 1)
	cli := NewClient("device", a, func(err error) { closed <- err })
	srv := &echoServer{}
	ss := NewServerSession("brass", b, srv)
	st1, _ := cli.Subscribe(Subscribe{Header: Header{HdrTopic: "/a"}})
	st2, _ := cli.Subscribe(Subscribe{Header: Header{HdrTopic: "/b"}})
	waitFor(t, "streams", func() bool { return srv.stream(1) != nil })
	// Kill the transport from the server side (BRASS host dies).
	ss.Close()
	for _, st := range []*ClientStream{st1, st2} {
		batch := recvBatch(t, st)
		if batch[0].Type != DeltaFlowStatus || batch[0].Flow != FlowDegraded {
			t.Errorf("stream %d got %+v, want FlowDegraded", st.SID(), batch[0])
		}
		if _, ok := <-st.Events; ok {
			t.Errorf("stream %d channel open after session loss", st.SID())
		}
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("client onClose never ran")
	}
	// Stored requests survive for resubscription.
	if st1.Request().Header[HdrTopic] != "/a" {
		t.Error("stored request lost after failure")
	}
}

func TestServerSessionCloseNotifiesStreams(t *testing.T) {
	a, b := pipePair()
	cli := NewClient("device", a, nil)
	type closeInfo struct {
		n   int
		err error
	}
	closedCh := make(chan closeInfo, 1)
	NewServerSession("brass", b, ServerHandlerFuncs{
		SessionClose: func(streams []*ServerStream, err error) {
			closedCh <- closeInfo{len(streams), err}
		},
	})
	if _, err := cli.Subscribe(Subscribe{Header: Header{HdrTopic: "/x"}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the subscribe land
	cli.Close()
	select {
	case info := <-closedCh:
		if info.n != 1 {
			t.Errorf("streams at close = %d, want 1", info.n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server session close never fired")
	}
}

func TestSubscribeAfterClientClose(t *testing.T) {
	cli, _, _ := newClientServer(t)
	cli.Close()
	waitFor(t, "closed", func() bool {
		_, err := cli.Subscribe(Subscribe{})
		return err != nil
	})
}

func TestDuplicateSIDIgnored(t *testing.T) {
	a, b := pipePair()
	srv := &echoServer{}
	NewServerSession("brass", b, srv)
	// Handcraft duplicate subscribes on the same SID.
	sess := NewSession("raw", a, HandlerFuncs{})
	defer sess.Close()
	_ = sess.SendMsg(FrameSubscribe, 9, Subscribe{Header: Header{HdrTopic: "/a"}})
	_ = sess.SendMsg(FrameSubscribe, 9, Subscribe{Header: Header{HdrTopic: "/b"}})
	waitFor(t, "first subscribe", func() bool { return srv.stream(0) != nil })
	time.Sleep(30 * time.Millisecond)
	srv.mu.Lock()
	n := len(srv.streams)
	srv.mu.Unlock()
	if n != 1 {
		t.Errorf("server registered %d streams for duplicate sid", n)
	}
}

func TestServerSessionAccessors(t *testing.T) {
	cli, ss, srv := newClientServer(t)
	if ss.Name() != "brass" {
		t.Errorf("Name = %q", ss.Name())
	}
	st, _ := cli.Subscribe(Subscribe{Header: Header{HdrApp: "x"}})
	waitFor(t, "stream", func() bool { return srv.stream(0) != nil })
	sst := srv.stream(0)
	if got := ss.Stream(sst.SID()); got != sst {
		t.Error("Stream lookup by SID failed")
	}
	if ss.Stream(9999) != nil {
		t.Error("unknown SID returned a stream")
	}
	_ = st.Cancel("done")
	ss.Close()
	select {
	case <-ss.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Done never closed")
	}
}

func TestClientResubscribeAlias(t *testing.T) {
	cli, _, srv := newClientServer(t)
	st, err := cli.Resubscribe(Subscribe{Header: Header{HdrApp: "x", HdrResumeSeq: "5"}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream", func() bool { return srv.stream(0) != nil })
	if got := srv.stream(0).Request().Header[HdrResumeSeq]; got != "5" {
		t.Errorf("resume header = %q", got)
	}
	_ = st
}

func TestStreamsAccessor(t *testing.T) {
	cli, ss, srv := newClientServer(t)
	for i := 0; i < 3; i++ {
		if _, err := cli.Subscribe(Subscribe{Header: Header{HdrApp: "x"}}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "streams", func() bool { return srv.stream(2) != nil })
	if got := len(ss.Streams()); got != 3 {
		t.Errorf("server Streams = %d", got)
	}
	if got := len(cli.Streams()); got != 3 {
		t.Errorf("client Streams = %d", got)
	}
}
