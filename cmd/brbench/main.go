// Command brbench regenerates the paper's tables and figures from this
// repository's Bladerunner implementation and prints paper-reported values
// next to measured ones.
//
// Usage:
//
//	brbench                  # run every experiment
//	brbench -exp fig6        # run one (table1, table2, table3, fig6..fig10, switchover)
//	brbench -seed 7          # change the RNG seed
//	brbench -series          # also dump the full figure series as CSV
//	brbench -bench-json F    # run the hot-path benchmarks, write ns/op and
//	                         # allocs/op to F (e.g. BENCH_3.json), skip experiments
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"
	"testing"

	"bladerunner/internal/bench"
	"bladerunner/internal/experiments"
	"bladerunner/internal/sim"
	"bladerunner/internal/trace"
)

// benchResult is one benchmark's record in the -bench-json report.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
	// Hops is the per-hop latency breakdown for benchmarks that run with
	// the tracing plane on (EndToEndCommentPushHops), keyed by hop name.
	Hops map[string]trace.HopStat `json:"hops,omitempty"`
}

// benchBaseline holds the hot-path numbers recorded at commit 5cf3a5f —
// immediately before the subscriber-cache / payload-coalescing /
// frame-pooling fast path landed — on the same reference machine the
// "after" numbers in BENCH_3.json were measured on. They are kept here so
// every regenerated report carries its before/after comparison.
var benchBaseline = []benchResult{
	{Name: "PylonPublish", NsPerOp: 3511, AllocsPerOp: 30, BytesPerOp: 2579},
	{Name: "HotTopicFanout", NsPerOp: 1599513, AllocsPerOp: 97, BytesPerOp: 810832},
	{Name: "BURSTFrameRoundTrip", NsPerOp: 156.8, AllocsPerOp: 3, BytesPerOp: 448},
	{Name: "EndToEndCommentPush", NsPerOp: 212591, AllocsPerOp: 80, BytesPerOp: 6375},
}

// benchMeta is the run metadata stamped into every -bench-json report, so
// a recorded file is traceable to the tree, seed and run that produced it.
type benchMeta struct {
	Seed        int64   `json:"seed"`
	Scenario    string  `json:"scenario"`
	WallSeconds float64 `json:"wall_seconds"`
	GitDescribe string  `json:"git_describe"`
}

// gitDescribe identifies the working tree ("unknown" outside a git
// checkout — e.g. a release tarball).
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// benchReport is the schema of the -bench-json file.
type benchReport struct {
	Meta   benchMeta     `json:"meta"`
	Before []benchResult `json:"before"` // pre-fast-path baseline (commit 5cf3a5f)
	After  []benchResult `json:"after"`  // this build
	// Overload is the OverloadStorm experiment table (bounded p99 under a
	// hot-topic storm: unbounded vs shed vs shed+admission), recorded so
	// the report carries the overload-plane evidence alongside the
	// hot-path numbers. The hot-path benches above run with admission
	// ENABLED at a non-shedding rate — the 0 allocs/op gate covers the
	// plane's per-publish cost.
	Overload []experiments.Row `json:"overload,omitempty"`
	// GeoFailover is the multi-region disaster-path experiment: per-stream
	// failover time and cross-region replication lag when a whole region is
	// cut under live streams. The CDFs back the table rows.
	GeoFailover       []experiments.Row                    `json:"geofailover,omitempty"`
	GeoFailoverSeries map[string][]experiments.SeriesPoint `json:"geofailover_series,omitempty"`
	// Durlog is the durable-log resume experiment: the overload storm
	// rerun with the per-topic edge log on, showing WAS point queries at
	// ~0 while the view still converges gap-free.
	Durlog []experiments.Row `json:"durlog,omitempty"`
}

// runBenchJSON runs the shared hot-path benchmark bodies (internal/bench —
// the same code `go test -bench` runs) plus the OverloadStorm experiment,
// and writes the report to path.
func runBenchJSON(path string, seed int64) error {
	wall := sim.RealClock{}
	start := wall.Now()
	plain := func(fn func(*testing.B)) func(*testing.B) map[string]trace.HopStat {
		return func(b *testing.B) map[string]trace.HopStat { fn(b); return nil }
	}
	cases := []struct {
		name string
		fn   func(*testing.B) map[string]trace.HopStat
	}{
		{"PylonPublish", plain(bench.PylonPublish)},
		{"HotTopicFanout", plain(bench.HotTopicFanout)},
		{"BURSTFrameRoundTrip", plain(bench.BURSTFrameRoundTrip)},
		{"EndToEndCommentPush", plain(bench.EndToEndCommentPush)},
		{"EndToEndCommentPushHops", bench.EndToEndCommentPushHops},
	}
	results := make([]benchResult, 0, len(cases))
	for _, c := range cases {
		fmt.Fprintf(os.Stderr, "bench %s...\n", c.name)
		var hops map[string]trace.HopStat
		r := testing.Benchmark(func(b *testing.B) { hops = c.fn(b) })
		if r.N == 0 {
			return fmt.Errorf("benchmark %s failed", c.name)
		}
		results = append(results, benchResult{
			Name:        c.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
			Hops:        hops,
		})
		fmt.Printf("%-22s %12.1f ns/op %8d B/op %6d allocs/op (n=%d)\n",
			c.name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp(), r.N)
	}
	fmt.Fprintln(os.Stderr, "experiment overload...")
	storm := experiments.OverloadStorm(seed)
	fmt.Println(storm)
	fmt.Fprintln(os.Stderr, "experiment geofailover...")
	geo := experiments.GeoFailover(seed)
	fmt.Println(geo)
	fmt.Fprintln(os.Stderr, "experiment durlog...")
	dlog := experiments.DurlogResume(seed)
	fmt.Println(dlog)
	out, err := json.MarshalIndent(benchReport{
		Meta: benchMeta{
			Seed:        seed,
			Scenario:    "hotpath-bench",
			WallSeconds: wall.Now().Sub(start).Seconds(),
			GitDescribe: gitDescribe(),
		},
		Before: benchBaseline, After: results, Overload: storm.Rows,
		GeoFailover: geo.Rows, GeoFailoverSeries: geo.Series,
		Durlog: dlog.Rows,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// wireReport is the schema of the -exp wire -bench-json file
// (BENCH_10.json): the over-the-wire tax of the multi-process deployment,
// in-process vs loopback-TCP for each measured hot path.
type wireReport struct {
	Meta benchMeta               `json:"meta"`
	Wire []experiments.WireBench `json:"wire"`
}

// runWireJSON runs the wire experiment and writes its machine-readable
// report (in-process vs loopback-TCP ns/op plus deltas) to path.
func runWireJSON(path string, seed int64) error {
	wall := sim.RealClock{}
	start := wall.Now()
	fmt.Fprintln(os.Stderr, "experiment wire...")
	res, rows := experiments.Wire(seed)
	fmt.Println(res)
	out, err := json.MarshalIndent(wireReport{
		Meta: benchMeta{
			Seed:        seed,
			Scenario:    "wire-tax",
			WallSeconds: wall.Now().Sub(start).Seconds(),
			GitDescribe: gitDescribe(),
		},
		Wire: rows,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func main() {
	exp := flag.String("exp", "all", "experiment id: all, table1, table2, table3, fig6, fig7, fig8, fig9, fig10, switchover, storm, hotfanout, tracehops, overload, geofailover, durlog, wire, ablations")
	seed := flag.Int64("seed", 1, "RNG seed")
	series := flag.Bool("series", false, "dump full figure series as CSV after each result")
	benchJSON := flag.String("bench-json", "", "write hot-path benchmark results (ns/op, allocs/op) to this JSON file and exit")
	flag.Parse()

	if *benchJSON != "" {
		run := runBenchJSON
		if *exp == "wire" {
			run = runWireJSON
		}
		if err := run(*benchJSON, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "brbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	runners := map[string]func() experiments.Result{
		"table1":      func() experiments.Result { return experiments.Table1(*seed, 2_000_000) },
		"table2":      func() experiments.Result { return experiments.Table2(*seed, 500_000) },
		"table3":      func() experiments.Result { return experiments.Table3(*seed, 100_000) },
		"fig6":        func() experiments.Result { return experiments.Figure6(*seed, 100_000) },
		"fig7":        func() experiments.Result { return experiments.Figure7(*seed, 200_000) },
		"fig8":        func() experiments.Result { return experiments.Figure8(*seed) },
		"fig9":        func() experiments.Result { return experiments.Figure9(*seed, 100_000) },
		"fig10":       func() experiments.Result { return experiments.Figure10(*seed) },
		"switchover":  func() experiments.Result { return experiments.Switchover(*seed) },
		"storm":       func() experiments.Result { return experiments.ReconnectStorm(*seed) },
		"hotfanout":   func() experiments.Result { return experiments.HotFanout(*seed) },
		"tracehops":   func() experiments.Result { return experiments.TraceHops(*seed) },
		"overload":    func() experiments.Result { return experiments.OverloadStorm(*seed) },
		"geofailover": func() experiments.Result { return experiments.GeoFailover(*seed) },
		"durlog":      func() experiments.Result { return experiments.DurlogResume(*seed) },
		"wire":        func() experiments.Result { r, _ := experiments.Wire(*seed); return r },
		"ablations":   nil, // expanded below
	}

	ablations := func() []experiments.Result {
		return []experiments.Result{
			experiments.AblationMetadataVsPayload(100000, 2, 0.09),
			experiments.AblationSubscriptionDedup(50, 4),
			experiments.AblationFirstResponder(10000),
			experiments.AblationRateLimitOrder(1000, 10, 0.2, nil),
		}
	}

	var results []experiments.Result
	if *exp == "all" {
		results = experiments.All(*seed)
		results = append(results, ablations()...)
	} else if *exp == "ablations" {
		results = ablations()
	} else {
		run, ok := runners[*exp]
		if !ok || run == nil {
			fmt.Fprintf(os.Stderr, "brbench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		results = []experiments.Result{run()}
	}

	for _, r := range results {
		fmt.Println(r)
		if *series && len(r.Series) > 0 {
			names := make([]string, 0, len(r.Series))
			for name := range r.Series {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Printf("# series %s/%s\n", r.ID, name)
				for _, p := range r.Series[name] {
					fmt.Printf("%g,%g\n", p.X, p.Y)
				}
			}
		}
	}
}
