// Command brbench regenerates the paper's tables and figures from this
// repository's Bladerunner implementation and prints paper-reported values
// next to measured ones.
//
// Usage:
//
//	brbench                  # run every experiment
//	brbench -exp fig6        # run one (table1, table2, table3, fig6..fig10, switchover)
//	brbench -seed 7          # change the RNG seed
//	brbench -series          # also dump the full figure series as CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"bladerunner/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: all, table1, table2, table3, fig6, fig7, fig8, fig9, fig10, switchover, storm, ablations")
	seed := flag.Int64("seed", 1, "RNG seed")
	series := flag.Bool("series", false, "dump full figure series as CSV after each result")
	flag.Parse()

	runners := map[string]func() experiments.Result{
		"table1":     func() experiments.Result { return experiments.Table1(*seed, 2_000_000) },
		"table2":     func() experiments.Result { return experiments.Table2(*seed, 500_000) },
		"table3":     func() experiments.Result { return experiments.Table3(*seed, 100_000) },
		"fig6":       func() experiments.Result { return experiments.Figure6(*seed, 100_000) },
		"fig7":       func() experiments.Result { return experiments.Figure7(*seed, 200_000) },
		"fig8":       func() experiments.Result { return experiments.Figure8(*seed) },
		"fig9":       func() experiments.Result { return experiments.Figure9(*seed, 100_000) },
		"fig10":      func() experiments.Result { return experiments.Figure10(*seed) },
		"switchover": func() experiments.Result { return experiments.Switchover(*seed) },
		"storm":      func() experiments.Result { return experiments.ReconnectStorm(*seed) },
		"ablations":  nil, // expanded below
	}

	ablations := func() []experiments.Result {
		return []experiments.Result{
			experiments.AblationMetadataVsPayload(100000, 2, 0.09),
			experiments.AblationSubscriptionDedup(50, 4),
			experiments.AblationFirstResponder(10000),
			experiments.AblationRateLimitOrder(1000, 10, 0.2, nil),
		}
	}

	var results []experiments.Result
	if *exp == "all" {
		results = experiments.All(*seed)
		results = append(results, ablations()...)
	} else if *exp == "ablations" {
		results = ablations()
	} else {
		run, ok := runners[*exp]
		if !ok || run == nil {
			fmt.Fprintf(os.Stderr, "brbench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		results = []experiments.Result{run()}
	}

	for _, r := range results {
		fmt.Println(r)
		if *series && len(r.Series) > 0 {
			names := make([]string, 0, len(r.Series))
			for name := range r.Series {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Printf("# series %s/%s\n", r.ID, name)
				for _, p := range r.Series[name] {
					fmt.Printf("%g,%g\n", p.X, p.Y)
				}
			}
		}
	}
}
