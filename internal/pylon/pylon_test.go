package pylon

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"bladerunner/internal/kvstore"
)

type fakeHost struct {
	id string

	mu     sync.Mutex
	events []Event
}

func (h *fakeHost) ID() string { return h.id }

func (h *fakeHost) Deliver(ev Event) {
	h.mu.Lock()
	h.events = append(h.events, ev)
	h.mu.Unlock()
}

func (h *fakeHost) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.events)
}

func newKV(t *testing.T) *kvstore.Cluster {
	t.Helper()
	regions := []string{"us", "eu", "ap"}
	nodes := make([]*kvstore.Node, 6)
	for i := range nodes {
		nodes[i] = kvstore.NewNode(fmt.Sprintf("kv%d", i), regions[i%3])
	}
	return kvstore.MustNewCluster(nodes, 3)
}

func newService(t *testing.T) (*Service, *kvstore.Cluster) {
	t.Helper()
	kv := newKV(t)
	return MustNew(DefaultConfig(), kv), kv
}

func TestNewValidation(t *testing.T) {
	kv := newKV(t)
	if _, err := New(Config{Shards: 0, Servers: 1}, kv); err == nil {
		t.Error("Shards=0 accepted")
	}
	if _, err := New(Config{Shards: 1, Servers: 0}, kv); err == nil {
		t.Error("Servers=0 accepted")
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("nil kv accepted")
	}
}

func TestSubscribePublishDeliver(t *testing.T) {
	s, _ := newService(t)
	h1, h2 := &fakeHost{id: "host1"}, &fakeHost{id: "host2"}
	s.RegisterHost(h1)
	s.RegisterHost(h2)
	if err := s.Subscribe("/LVC/1", "host1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Subscribe("/LVC/1", "host2"); err != nil {
		t.Fatal(err)
	}
	n, err := s.Publish(Event{Topic: "/LVC/1", Ref: 42})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("fanout = %d, want 2", n)
	}
	if h1.count() != 1 || h2.count() != 1 {
		t.Errorf("deliveries: h1=%d h2=%d", h1.count(), h2.count())
	}
	h1.mu.Lock()
	ev := h1.events[0]
	h1.mu.Unlock()
	if ev.Ref != 42 || ev.ID == 0 {
		t.Errorf("event = %+v", ev)
	}
}

func TestPublishAssignsUniqueEventIDs(t *testing.T) {
	s, _ := newService(t)
	h := &fakeHost{id: "h"}
	s.RegisterHost(h)
	if err := s.Subscribe("/t", "h"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Publish(Event{Topic: "/t"}); err != nil {
			t.Fatal(err)
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	seen := map[uint64]bool{}
	for _, ev := range h.events {
		if seen[ev.ID] {
			t.Fatalf("duplicate event id %d", ev.ID)
		}
		seen[ev.ID] = true
	}
}

func TestTopicIsolation(t *testing.T) {
	s, _ := newService(t)
	h1, h2 := &fakeHost{id: "h1"}, &fakeHost{id: "h2"}
	s.RegisterHost(h1)
	s.RegisterHost(h2)
	_ = s.Subscribe("/a", "h1")
	_ = s.Subscribe("/b", "h2")
	if _, err := s.Publish(Event{Topic: "/a"}); err != nil {
		t.Fatal(err)
	}
	if h1.count() != 1 || h2.count() != 0 {
		t.Errorf("h1=%d h2=%d", h1.count(), h2.count())
	}
}

func TestSubscribeUnknownHost(t *testing.T) {
	s, _ := newService(t)
	if err := s.Subscribe("/t", "ghost"); !errors.Is(err, ErrUnknownSubscriber) {
		t.Errorf("err = %v", err)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	s, _ := newService(t)
	h := &fakeHost{id: "h"}
	s.RegisterHost(h)
	_ = s.Subscribe("/t", "h")
	if err := s.Unsubscribe("/t", "h"); err != nil {
		t.Fatal(err)
	}
	n, err := s.Publish(Event{Topic: "/t"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || h.count() != 0 {
		t.Errorf("n=%d count=%d after unsubscribe", n, h.count())
	}
	if s.DroppedNoSub.Value() != 1 {
		t.Errorf("DroppedNoSub = %d", s.DroppedNoSub.Value())
	}
}

func TestRemoveHostDropsAllSubscriptions(t *testing.T) {
	s, _ := newService(t)
	h := &fakeHost{id: "h"}
	s.RegisterHost(h)
	for i := 0; i < 5; i++ {
		if err := s.Subscribe(Topic(fmt.Sprintf("/t/%d", i)), "h"); err != nil {
			t.Fatal(err)
		}
	}
	s.RemoveHost("h")
	for i := 0; i < 5; i++ {
		if subs := s.Subscribers(Topic(fmt.Sprintf("/t/%d", i))); len(subs) != 0 {
			t.Errorf("topic %d still has subscribers %v", i, subs)
		}
	}
}

func TestSubscribeFailsWithoutQuorum(t *testing.T) {
	kv := newKV(t)
	s := MustNew(DefaultConfig(), kv)
	h := &fakeHost{id: "h"}
	s.RegisterHost(h)
	replicas := kv.ReplicasFor("/t")
	replicas[0].SetUp(false)
	replicas[1].SetUp(false)
	if err := s.Subscribe("/t", "h"); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("err = %v", err)
	}
}

func TestFirstResponderWithStaleReplica(t *testing.T) {
	// The primary replica misses a subscriber that later replicas know;
	// Publish must still reach it via patch-forwarding, and repair the
	// primary.
	kv := newKV(t)
	s := MustNew(DefaultConfig(), kv)
	h1, h2 := &fakeHost{id: "h1"}, &fakeHost{id: "h2"}
	s.RegisterHost(h1)
	s.RegisterHost(h2)

	if err := s.Subscribe("/t", "h1"); err != nil {
		t.Fatal(err)
	}
	// Take the primary down; h2's subscription lands only on the others.
	replicas := kv.ReplicasFor("/t")
	replicas[0].SetUp(false)
	if err := s.Subscribe("/t", "h2"); err != nil {
		t.Fatal(err)
	}
	replicas[0].SetUp(true) // primary is back, but stale (missing h2)

	n, err := s.Publish(Event{Topic: "/t"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("fanout = %d, want 2 (stale primary patched-forward)", n)
	}
	if h2.count() != 1 {
		t.Error("h2 missed the event despite being subscribed")
	}
	if s.PatchForwards.Value() == 0 {
		t.Error("PatchForwards not counted")
	}
	if s.Patches.Value() == 0 {
		t.Error("no replica patched")
	}
	// After patching, the primary knows h2: a second publish needs no
	// patch-forward.
	before := s.PatchForwards.Value()
	if _, err := s.Publish(Event{Topic: "/t"}); err != nil {
		t.Fatal(err)
	}
	if s.PatchForwards.Value() != before {
		t.Error("patch did not converge the primary")
	}
}

func TestPublishAllReplicasDown(t *testing.T) {
	kv := newKV(t)
	s := MustNew(DefaultConfig(), kv)
	h := &fakeHost{id: "h"}
	s.RegisterHost(h)
	_ = s.Subscribe("/t", "h")
	for _, n := range kv.ReplicasFor("/t") {
		n.SetUp(false)
	}
	if _, err := s.Publish(Event{Topic: "/t"}); err == nil {
		t.Error("publish succeeded with all replicas down")
	}
}

func TestServerFailover(t *testing.T) {
	s, _ := newService(t)
	h := &fakeHost{id: "h"}
	s.RegisterHost(h)
	_ = s.Subscribe("/t", "h")
	// Take the owning server down; another front end takes over.
	s.SetServerUp(s.ServerFor("/t"), false)
	if _, err := s.Publish(Event{Topic: "/t"}); err != nil {
		t.Errorf("publish with one server down: %v", err)
	}
	// All servers down: unavailable.
	for i := 0; i < DefaultConfig().Servers; i++ {
		s.SetServerUp(i, false)
	}
	if _, err := s.Publish(Event{Topic: "/t"}); !errors.Is(err, ErrUnavailable) {
		t.Errorf("err = %v", err)
	}
	if err := s.Subscribe("/t", "h"); !errors.Is(err, ErrUnavailable) {
		t.Errorf("subscribe err = %v", err)
	}
}

func TestShardMappingStable(t *testing.T) {
	s, _ := newService(t)
	for _, topic := range []Topic{"/LVC/1", "/TI/5/9", "/Status/77"} {
		a, b := s.Shard(topic), s.Shard(topic)
		if a != b {
			t.Errorf("shard for %q unstable", topic)
		}
		if a < 0 || a >= DefaultConfig().Shards {
			t.Errorf("shard %d out of range", a)
		}
		srv := s.ServerFor(topic)
		if srv < 0 || srv >= DefaultConfig().Servers {
			t.Errorf("server %d out of range", srv)
		}
	}
}

func TestShardSpread(t *testing.T) {
	s, _ := newService(t)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[s.Shard(Topic(fmt.Sprintf("/LVC/%d", i)))] = true
	}
	if len(seen) < 800 {
		t.Errorf("1000 topics map to only %d shards", len(seen))
	}
}

func TestMetricsAccounting(t *testing.T) {
	s, _ := newService(t)
	h1, h2 := &fakeHost{id: "h1"}, &fakeHost{id: "h2"}
	s.RegisterHost(h1)
	s.RegisterHost(h2)
	_ = s.Subscribe("/t", "h1")
	_ = s.Subscribe("/t", "h2")
	_, _ = s.Publish(Event{Topic: "/t"})
	if s.Publishes.Value() != 1 {
		t.Errorf("Publishes = %d", s.Publishes.Value())
	}
	if s.Deliveries.Value() != 2 {
		t.Errorf("Deliveries = %d", s.Deliveries.Value())
	}
	if s.FanoutSize.Count() != 1 || s.FanoutSize.Mean() != 2 {
		t.Errorf("FanoutSize: count=%d mean=%v", s.FanoutSize.Count(), s.FanoutSize.Mean())
	}
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	s, _ := newService(t)
	hosts := make([]*fakeHost, 4)
	for i := range hosts {
		hosts[i] = &fakeHost{id: fmt.Sprintf("h%d", i)}
		s.RegisterHost(hosts[i])
	}
	var wg sync.WaitGroup
	for i := range hosts {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				topic := Topic(fmt.Sprintf("/t/%d", j%5))
				_ = s.Subscribe(topic, hosts[i].id)
				_, _ = s.Publish(Event{Topic: topic})
			}
		}()
	}
	wg.Wait()
	if s.Publishes.Value() != 200 {
		t.Errorf("Publishes = %d", s.Publishes.Value())
	}
}
