package apps

import (
	"fmt"
	"strconv"
	"time"

	"bladerunner/internal/brass"
	"bladerunner/internal/burst"
	"bladerunner/internal/pylon"
	"bladerunner/internal/socialgraph"
	"bladerunner/internal/tao"
	"bladerunner/internal/was"
)

// LiveVideoComments is the application that drove Bladerunner's design
// (paper §2, §3.4): viewers of a live video receive the most relevant
// comments at a prescribed maximum rate.
//
// WAS half: postComment writes the comment to TAO (object + association on
// the video's comment index), scores it with the quality model, discards
// spam, and publishes a metadata-only event to /LVC/videoID after the
// ranking delay.
//
// BRASS half: each stream keeps a ranked buffer (K elements) fed by
// per-viewer filtering (language, own comments, quality threshold); a
// periodic timer pops the top comment at the rate limit, fetches the
// payload from the WAS (privacy check included), and pushes it.
type LiveVideoComments struct {
	w Registrar

	// Tunables (paper values as defaults).
	RateLimit         time.Duration // max one push per stream per RateLimit
	BufferK           int           // ranked buffer size (paper: 5)
	BufferTTL         time.Duration // comments older than this are irrelevant (paper: 10 s)
	MinScore          float64       // per-viewer quality floor
	RankBeforePublish bool          // WAS-side pre-ranking of comments

	// High-volume strategy tunables (lvc_hot.go).
	HighRankCutoff   float64 // hot mode: scores >= this go to the main topic
	HotDiscardCutoff float64 // hot mode: scores < this are discarded at the WAS
	hot              *hotTracker
}

// CommentPayload is the device-facing JSON for one comment.
type CommentPayload struct {
	CommentID uint64  `json:"comment_id"`
	VideoID   uint64  `json:"video_id"`
	Author    uint64  `json:"author"`
	Text      string  `json:"text"`
	Score     float64 `json:"score"`
}

// LVCTopic returns the Pylon topic for a video's comments.
func LVCTopic(videoID uint64) pylon.Topic {
	return pylon.Topic(fmt.Sprintf("/LVC/%d", videoID))
}

// NewLiveVideoComments registers the WAS half and returns the application.
func NewLiveVideoComments(w Registrar) *LiveVideoComments {
	a := &LiveVideoComments{
		w:                 w,
		RateLimit:         2 * time.Second,
		BufferK:           5,
		BufferTTL:         10 * time.Second,
		MinScore:          0.2,
		RankBeforePublish: true,
		HighRankCutoff:    DefaultHighRankCutoff,
		HotDiscardCutoff:  DefaultHotDiscardCutoff,
		hot:               newHotTracker(DefaultHotThreshold, DefaultHotWindow),
	}

	w.RegisterMutation("postComment", func(ctx *was.Ctx, call was.FieldCall) (any, error) {
		videoID, err := call.Uint64Arg("videoID")
		if err != nil {
			return nil, err
		}
		text, err := call.StringArg("text")
		if err != nil {
			return nil, err
		}
		author := ctx.Srv.Graph.User(ctx.Viewer)
		score := was.QualityScore(author, text)

		// The comment is always stored...
		ref := ctx.Srv.TAO.ObjectAdd("comment", map[string]string{
			"text":   text,
			"author": strconv.FormatUint(uint64(author.ID), 10),
			"video":  strconv.FormatUint(videoID, 10),
			"score":  strconv.FormatFloat(score, 'f', 4, 64),
			"lang":   strconv.Itoa(int(author.Lang)),
		})
		ctx.Srv.TAO.AssocAdd(tao.ObjID(videoID), "video_comment", ref, ctx.Now, "")

		// ...but spam and junk never reach Pylon (WAS pre-ranking).
		if score < was.SpamThreshold {
			return uint64(ref), nil
		}
		meta := map[string]string{
			"author": strconv.FormatUint(uint64(author.ID), 10),
			"score":  strconv.FormatFloat(score, 'f', 4, 64),
			"lang":   strconv.Itoa(int(author.Lang)),
			"video":  strconv.FormatUint(videoID, 10),
		}
		// High-volume strategy (§3.4): on hot videos, only extremely
		// high-ranked comments hit the main topic; ordinary ones go to
		// the poster's per-user topic (delivered only toward the
		// poster's friends); the rest are discarded at the WAS.
		if a.hot.observe(videoID, ctx.Now) {
			switch {
			case score >= a.HighRankCutoff:
				ctx.Publish(pylon.Event{Topic: LVCTopic(videoID),
					Ref: uint64(ref), Meta: meta}, a.RankBeforePublish)
			case score < a.HotDiscardCutoff:
				// Discarded during the storm; still durable in TAO.
			default:
				ctx.Publish(pylon.Event{Topic: LVCUserTopic(videoID, author.ID),
					Ref: uint64(ref), Meta: meta}, a.RankBeforePublish)
			}
			return uint64(ref), nil
		}
		ctx.Publish(pylon.Event{
			Topic: LVCTopic(videoID),
			Ref:   uint64(ref),
			Meta:  meta,
		}, a.RankBeforePublish)
		return uint64(ref), nil
	})

	w.RegisterSubscription("liveVideoComments", func(ctx *was.Ctx, call was.FieldCall) ([]pylon.Topic, error) {
		videoID, err := call.Uint64Arg("videoID")
		if err != nil {
			return nil, err
		}
		topics := []pylon.Topic{LVCTopic(videoID)}
		// High-volume strategy: the BRASS additionally subscribes to
		// the per-poster topic of each of the viewer's friends, so
		// ordinary comments reach only viewers who know the poster.
		if a.hot.isHot(videoID) && ctx.Viewer != 0 {
			for _, f := range ctx.Srv.Graph.Friends(ctx.Viewer) {
				topics = append(topics, LVCUserTopic(videoID, f))
			}
		}
		return topics, nil
	})

	// The poll-model read path (used by the baseline comparison and for
	// initial state): a range query over the video's comment index.
	w.RegisterQuery("videoComments", func(ctx *was.Ctx, call was.FieldCall) (any, error) {
		videoID, err := call.Uint64Arg("videoID")
		if err != nil {
			return nil, err
		}
		limit := 20
		if n, err := call.Uint64Arg("limit"); err == nil {
			limit = int(n)
		}
		assocs := ctx.Reader().AssocRange(tao.ObjID(videoID), "video_comment", 0, limit)
		out := make([]CommentPayload, 0, len(assocs))
		for _, as := range assocs {
			p, err := a.payload(ctx, as.ID2)
			if err != nil {
				continue
			}
			out = append(out, p)
		}
		return out, nil
	})

	w.RegisterPayload(AppLiveComments, func(ctx *was.Ctx, ref tao.ObjID, ev pylon.Event) (any, error) {
		return a.payload(ctx, ref)
	})
	return a
}

func (a *LiveVideoComments) payload(ctx *was.Ctx, ref tao.ObjID) (CommentPayload, error) {
	obj, err := ctx.Reader().ObjectGet(ref)
	if err != nil {
		return CommentPayload{}, err
	}
	author, _ := strconv.ParseUint(obj.Data["author"], 10, 64)
	video, _ := strconv.ParseUint(obj.Data["video"], 10, 64)
	score, _ := strconv.ParseFloat(obj.Data["score"], 64)
	return CommentPayload{
		CommentID: uint64(ref),
		VideoID:   video,
		Author:    author,
		Text:      obj.Data["text"],
		Score:     score,
	}, nil
}

// Name implements brass.Application.
func (a *LiveVideoComments) Name() string { return AppLiveComments }

// lvcStream is the per-stream BRASS state.
type lvcStream struct {
	buffer  brass.RankedBuffer
	limiter brass.RateLimiter
	lang    string
	cancel  func()
}

type lvcInstance struct {
	app *LiveVideoComments
	rt  *brass.Runtime
}

// NewInstance implements brass.Application.
func (a *LiveVideoComments) NewInstance(rt *brass.Runtime) brass.AppInstance {
	return &lvcInstance{app: a, rt: rt}
}

func (in *lvcInstance) OnStreamOpen(st *brass.Stream) error {
	topics, err := in.rt.ResolveSubscription(st.Viewer, st.Header(burst.HdrSubscription))
	if err != nil {
		return err
	}
	state := &lvcStream{
		buffer:  brass.RankedBuffer{K: in.app.BufferK, TTL: in.app.BufferTTL},
		limiter: brass.RateLimiter{Interval: in.app.RateLimit},
		lang:    st.Header(HdrLang),
	}
	state.limiter.RestoreHeaderState(st.Header(brass.HdrRateLimiterState), in.rt.Now())
	st.State = state
	for _, t := range topics {
		if err := st.AddTopic(t); err != nil {
			return err
		}
	}
	in.scheduleFlush(st, state)
	return nil
}

// scheduleFlush arms the per-stream delivery timer at the rate limit.
func (in *lvcInstance) scheduleFlush(st *brass.Stream, state *lvcStream) {
	state.cancel = in.rt.After(in.app.RateLimit, func() {
		in.flush(st, state)
		if st.State == state { // still open
			in.scheduleFlush(st, state)
		}
	})
}

// flush pops the most relevant fresh comment and pushes it.
func (in *lvcInstance) flush(st *brass.Stream, state *lvcStream) {
	now := in.rt.Now()
	state.buffer.Expire(now)
	if !state.limiter.Allow(now) {
		return
	}
	for {
		item, ok := state.buffer.Pop(now)
		if !ok {
			return
		}
		ev := pylon.Event{Ref: item.Seq, Meta: item.Meta, Trace: item.Trace}
		payload, err := st.FetchPayload(ev)
		if err != nil {
			// Privacy denial or fetch failure: skip to next candidate.
			st.Filtered()
			continue
		}
		// Coalesce the comment payload and the limiter-state rewrite (the
		// persisted cadence a replacement BRASS resumes from after
		// failover, §3.5 "Resumption") into one batch frame.
		_ = st.QueuePayloadFor(ev, item.Seq, payload)
		_ = st.QueueRewriteHeaderField(brass.HdrRateLimiterState, state.limiter.HeaderState())
		_ = st.Flush()
		return
	}
}

func (in *lvcInstance) OnStreamClose(st *brass.Stream, reason string) {
	if state, ok := st.State.(*lvcStream); ok {
		if state.cancel != nil {
			state.cancel()
		}
		st.State = nil
	}
}

func (in *lvcInstance) OnEvent(ev pylon.Event) {
	score, _ := strconv.ParseFloat(ev.Meta["score"], 64)
	author, _ := strconv.ParseUint(ev.Meta["author"], 10, 64)
	for _, st := range in.rt.Instance().StreamsForTopic(ev.Topic) {
		state, ok := st.State.(*lvcStream)
		if !ok {
			continue
		}
		// Per-viewer filtering on metadata only — no payload fetched
		// for comments that never surface.
		if score < in.app.MinScore {
			st.Filtered()
			continue
		}
		if socialgraph.UserID(author) == st.Viewer {
			st.Filtered() // the viewer already sees their own comment locally
			continue
		}
		if state.lang != "" && ev.Meta["lang"] != "" && state.lang != ev.Meta["lang"] {
			st.Filtered()
			continue
		}
		state.buffer.Add(brass.RankedItem{
			Score: score,
			Time:  in.rt.Now(),
			Seq:   ev.Ref,
			Meta:  ev.Meta,
			Trace: ev.Trace,
		})
	}
}

func (in *lvcInstance) OnAck(st *brass.Stream, seq uint64) {}

var _ brass.Application = (*LiveVideoComments)(nil)
