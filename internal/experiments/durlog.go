package experiments

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"bladerunner/internal/apps"
	"bladerunner/internal/core"
	"bladerunner/internal/sim"
	"bladerunner/internal/socialgraph"
)

// DurlogResume reruns the overload storm on the LIVE stack twice — once in
// the pre-log posture, where every shed episode is repaired by a device
// point query against the WAS (shed-then-resync), and once with the
// durable per-topic log enabled for Messenger, where the BRASS appends
// every delivery decision to its edge log and the device repairs shed gaps
// by resubscribing from its cursor. The legacy resync machinery stays
// installed in BOTH runs; with the log on it must go unused — the run
// measures backend point queries going to ~0 while the view still
// converges gap-free.
func DurlogResume(seed int64) Result { return DurlogResumeOn(sim.RealClock{}, seed) }

// DurlogResumeOn is DurlogResume on an explicit scheduler.
func DurlogResumeOn(sched sim.Scheduler, seed int64) Result {
	const (
		authorUID = socialgraph.UserID(90)
		viewerUID = socialgraph.UserID(10)
		storm     = 150
		deadline  = 30 * time.Second
	)

	type outcome struct {
		sent          uint64
		sheds         int64
		resyncs       int64
		cursorResumes int64
		coalesced     int64
		pointQueries  int64
		logResumes    int64
		logCatchUp    int64
		logAppends    int64
		converged     bool
		fail          string
	}

	run := func(durable bool) (o outcome) {
		cfg := core.DefaultConfig()
		cfg.Graph.Users = 100
		cfg.Graph.BlockProb = 0
		// The aggressive overload posture from the chaos suite: a
		// per-stream delivery budget far under the storm rate guarantees
		// shedding, which is what both repair paths exist to fix.
		cfg.Overload = core.OverloadConfig{
			LoopQueueDepth:     16,
			StreamDeliverRate:  25,
			StreamDeliverBurst: 4,
		}
		if durable {
			cfg.Durlog = &core.DurlogConfig{}
		}
		c, err := core.NewCluster(cfg, nil)
		if err != nil {
			o.fail = err.Error()
			return o
		}
		defer c.Close()

		author := c.NewDevice(authorUID)
		viewer := c.NewDevice(viewerUID)
		defer author.Close()
		defer viewer.Close()
		if err := viewer.Connect(); err != nil {
			o.fail = err.Error()
			return o
		}
		st, err := viewer.Subscribe(apps.AppMessenger, "messenger", nil)
		if err != nil {
			o.fail = err.Error()
			return o
		}

		var (
			mu   sync.Mutex
			seqs = make(map[uint64]bool)
		)
		note := func(seq uint64) {
			mu.Lock()
			seqs[seq] = true
			mu.Unlock()
		}
		hasAll := func(n uint64) bool {
			mu.Lock()
			defer mu.Unlock()
			for s := uint64(1); s <= n; s++ {
				if !seqs[s] {
					return false
				}
			}
			return true
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for d := range st.Updates {
				var m apps.MessagePayload
				if json.Unmarshal(d.Payload, &m) == nil {
					note(m.Seq)
				}
			}
		}()
		go func() {
			defer wg.Done()
			for range st.Flow {
			}
		}()
		// Legacy shed-then-resync, installed either way: the durable-log
		// run must leave it idle.
		st.SetResync(
			func(lastSeq uint64) string { return fmt.Sprintf("mailboxSince(seq: %d)", lastSeq) },
			func(out []byte) {
				var msgs []apps.MessagePayload
				if json.Unmarshal(out, &msgs) != nil {
					return
				}
				for _, m := range msgs {
					note(m.Seq)
				}
			},
		)

		var thread uint64
		out, err := author.Mutate(fmt.Sprintf(`createThread(members: "%d,%d")`, authorUID, viewerUID))
		if err != nil {
			o.fail = err.Error()
			return o
		}
		_ = json.Unmarshal(out, &thread)

		waitUntil := func(cond func() bool) bool {
			limit := sched.Now().Add(deadline)
			for !cond() {
				if sched.Now().After(limit) {
					return false
				}
				sim.Sleep(sched, time.Millisecond)
			}
			return true
		}
		if !waitUntil(func() bool {
			return len(c.Pylon.Subscribers(apps.MailboxTopic(viewerUID))) >= 1
		}) {
			o.fail = "subscription never registered"
			return o
		}

		send := func(text string) {
			if _, err := author.Mutate(fmt.Sprintf(`sendMessage(threadID: %d, text: "%s")`, thread, text)); err == nil {
				o.sent++
			}
		}
		send("baseline")
		if !waitUntil(func() bool { return hasAll(o.sent) }) {
			o.fail = "baseline never delivered"
			return o
		}

		for i := 0; i < storm; i++ {
			send(fmt.Sprintf("storm-%d", i))
		}

		// Post-storm trickle: each message is under the admission rate, so
		// it lands, closes open shed episodes, and drives whichever repair
		// path is active until the view is gap-free.
		limit := sched.Now().Add(deadline)
		for !hasAll(o.sent) && sched.Now().Before(limit) {
			send("trickle")
			sim.Sleep(sched, 50*time.Millisecond)
		}
		o.converged = hasAll(o.sent)

		for _, h := range c.Hosts {
			o.sheds += h.StreamSheds.Value() + h.LoopOverflows.Value()
			o.logResumes += h.LogResumes.Value()
			o.logCatchUp += h.LogCatchUpDeltas.Value()
			if l := h.DurLog(); l != nil {
				o.logAppends += l.Appends.Value()
			}
		}
		o.resyncs = viewer.Resyncs.Value()
		o.cursorResumes = viewer.CursorResumes.Value()
		o.coalesced = viewer.ResyncCoalesced.Value()
		o.pointQueries = c.WAS.PointQueries.Value()

		viewer.Close()
		author.Close()
		wg.Wait()
		return o
	}

	off := run(false)
	on := run(true)

	r := Result{ID: "durlog", Title: fmt.Sprintf(
		"Durable-log resume: overload storm (%d msgs over a 25/s stream budget), WAS resync vs cursor resume", storm)}
	if off.fail != "" || on.fail != "" {
		r.AddRow("ERROR", "-", off.fail+on.fail, "run aborted")
		return r
	}
	b := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	r.AddRow("gap-free convergence (off / on)", "-",
		fmt.Sprintf("%s / %s", b(off.converged), b(on.converged)),
		"both postures must close every shed gap")
	r.AddRow("stream sheds (off / on)", "-",
		fmt.Sprintf("%d / %d", off.sheds, on.sheds),
		"the storm must actually shed for the comparison to mean anything")
	r.AddRow("WAS point queries, log off", "-", fmt.Sprintf("%d", off.pointQueries),
		"every shed episode re-reads the mailbox from the backend")
	r.AddRow("WAS point queries, log on", "~0", fmt.Sprintf("%d", on.pointQueries),
		"shed gaps replay from the edge log instead")
	r.AddRow("device point resyncs (off / on)", "-",
		fmt.Sprintf("%d / %d", off.resyncs, on.resyncs), "")
	r.AddRow("device cursor resumes, log on", "-", fmt.Sprintf("%d", on.cursorResumes),
		"cancel + resubscribe from the clamped cursor")
	r.AddRow("recovery triggers coalesced (off / on)", "-",
		fmt.Sprintf("%d / %d", off.coalesced, on.coalesced),
		"markers absorbed by an already-pending repair")
	r.AddRow("log catch-up deltas, log on", "-", fmt.Sprintf("%d", on.logCatchUp),
		"payloads served from the durable log's retained window")
	r.AddRow("log resumes served, log on", "-", fmt.Sprintf("%d", on.logResumes), "")
	r.AddRow("log appends, log on", "-", fmt.Sprintf("%d", on.logAppends),
		"every delivery decision journaled on the publish path")
	return r
}
