package ctrl

import "encoding/json"

// Node admin method names, served by every brnode role.
const (
	MethodPing  = "node.ping"
	MethodDrain = "node.drain"
)

type pingResult struct {
	Role string `json:"role"`
}

// ServeNode registers the node admin handlers: ping answers with the
// node's role (the launcher's readiness probe), drain triggers a graceful
// drain (the same path as SIGTERM) via the supplied callback.
func ServeNode(conn *Conn, role string, drain func()) {
	conn.Handle(MethodPing, func(json.RawMessage) (any, error) {
		return pingResult{Role: role}, nil
	})
	conn.Handle(MethodDrain, func(json.RawMessage) (any, error) {
		if drain != nil {
			drain()
		}
		return nil, nil
	})
}

// Ping round-trips a node.ping, returning the remote role.
func Ping(conn *Conn) (string, error) {
	var res pingResult
	if err := conn.Call(MethodPing, nil, &res); err != nil {
		return "", err
	}
	return res.Role, nil
}

// Drain asks the remote node to drain gracefully.
func Drain(conn *Conn) error {
	return conn.Call(MethodDrain, nil, nil)
}
