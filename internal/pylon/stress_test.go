package pylon

import (
	"fmt"
	"sync"
	"testing"
)

// TestChurnRaceStress drives concurrent subscribe/publish/unsubscribe and
// host register/remove churn through a single Service. It asserts almost
// nothing about outcomes — its job is to expose every lock ordering the
// production paths take to the race detector (`go test -race`). The load is
// scaled down under -short, which is how the CI race job runs it.
func TestChurnRaceStress(t *testing.T) {
	s, _ := newService(t)

	workers, rounds := 8, 150
	if testing.Short() {
		workers, rounds = 4, 40
	}

	topics := []Topic{"/stress/1", "/stress/2", "/stress/3"}
	var wg sync.WaitGroup

	// Subscriber churn: each worker owns one host identity and loops
	// register -> subscribe-all -> read -> unsubscribe-all -> remove.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("churn-%d", w)
			h := &fakeHost{id: id}
			for r := 0; r < rounds; r++ {
				s.RegisterHost(h)
				for _, tp := range topics {
					if err := s.Subscribe(tp, id); err != nil {
						t.Errorf("Subscribe(%s, %s): %v", tp, id, err)
						return
					}
				}
				_ = s.Subscribers(topics[r%len(topics)])
				for _, tp := range topics {
					if err := s.Unsubscribe(tp, id); err != nil {
						t.Errorf("Unsubscribe(%s, %s): %v", tp, id, err)
						return
					}
				}
				s.RemoveHost(id)
			}
		}(w)
	}

	// Publishers fan out against the churning subscription table the whole
	// time; fan-out counts are irrelevant, only data races matter.
	for w := 0; w < workers/2+1; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := s.Publish(Event{Topic: topics[(w+r)%len(topics)], Ref: uint64(r)}); err != nil {
					t.Errorf("Publish: %v", err)
					return
				}
			}
		}(w)
	}

	wg.Wait()

	// After all churn completes nothing may linger in the subscription
	// table: every worker unsubscribed everything it subscribed.
	for _, tp := range topics {
		if subs := s.Subscribers(tp); len(subs) != 0 {
			t.Errorf("topic %s still has subscribers after churn: %v", tp, subs)
		}
	}
}
